package provenance

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core"
)

// degradedGraph builds a tiny two-thread graph carrying one trace gap.
func degradedGraph(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph(2)
	r0, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.OnWrite(100)
	if _, err := r0.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	g.AddGap(0, core.Gap{FromAlpha: 0, ToAlpha: 0, Kind: core.GapAuxLoss, Bytes: 64})
	return g
}

// TestDegradedOnTheWire checks the additive degraded annotations: every
// result from a gapped graph carries degraded=true, stats carry the gap
// summary, and the listing marks the graph — while a complete graph's
// documents stay free of all three.
func TestDegradedOnTheWire(t *testing.T) {
	engines := map[string]*Engine{
		"gapped": NewEngine(degradedGraph(t).Analyze(), EngineOptions{}),
		"whole":  NewEngine(figure1(t), EngineOptions{}),
	}
	ts := httptest.NewServer(NewServer(engines, ServerOptions{}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	cpgs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]CPGInfo{}
	for _, info := range cpgs {
		byID[info.ID] = info
	}
	if !byID["gapped"].Degraded || byID["whole"].Degraded {
		t.Errorf("listing degraded flags wrong: %+v", byID)
	}

	st, err := c.Stats(ctx, "gapped")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Degraded {
		t.Error("stats result from gapped graph not marked degraded")
	}
	if st.Stats.GapThreads != 1 || st.Stats.GapIntervals != 1 || st.Stats.LostTraceBytes != 64 {
		t.Errorf("gap summary = %+v", st.Stats)
	}

	whole, err := c.Stats(ctx, "whole")
	if err != nil {
		t.Fatal(err)
	}
	if whole.Degraded || whole.Stats.GapIntervals != 0 {
		t.Errorf("complete graph carries gap annotations: %+v", whole)
	}
	// The raw document for a complete graph must not mention the new
	// fields at all — the omitempty contract lossless consumers pin.
	resp, err := http.Get(ts.URL + "/v1/cpgs/whole/stats")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"degraded"} {
		if _, present := raw[key]; present {
			t.Errorf("lossless document leaks %q", key)
		}
	}
}

func TestHealthAndReady(t *testing.T) {
	liveSrc := NewLiveEngine(core.NewGraph(1), EngineOptions{})
	defer liveSrc.Close()
	srv := NewServerSources(map[string]EngineSource{
		"fig1": StaticSource(NewEngine(figure1(t), EngineOptions{})),
		"live": liveSrc,
	}, ServerOptions{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	code, body := get("/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d before SetReady(false)", code)
	}
	var rs ReadyStatus
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if !rs.Ready || rs.Epochs["live"] == 0 {
		t.Errorf("ready status = %+v, want ready with live epoch", rs)
	}
	if _, static := rs.Epochs["fig1"]; static {
		t.Errorf("post-mortem graph reported an epoch: %+v", rs)
	}

	srv.SetReady(false)
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after SetReady(false) = %d, want 503", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz must stay 200 while not ready")
	}
	srv.SetReady(true)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz did not flip back to 200")
	}
}

// panicSource explodes on resolution, standing in for any handler bug.
type panicSource struct{}

func (panicSource) Engine() *Engine { panic("injected handler panic") }

func TestPanicRecoveryMiddleware(t *testing.T) {
	srv := NewServerSources(map[string]EngineSource{
		"boom": panicSource{},
		"fig1": StaticSource(NewEngine(figure1(t), EngineOptions{})),
	}, ServerOptions{Logf: func(string, ...any) {}})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The panicking id answers 500 instead of killing the connection.
	resp, err := http.Get(ts.URL + "/v1/cpgs/boom/stats")
	if err != nil {
		t.Fatalf("panic escaped the middleware: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panicking handler answered %d, want 500", resp.StatusCode)
	}
	// The daemon survives: healthy ids and probes still serve.
	c := &Client{BaseURL: ts.URL}
	if _, err := c.Stats(context.Background(), "fig1"); err != nil {
		t.Errorf("healthy id broken after a panic elsewhere: %v", err)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz broken after a panic: %v", err)
	} else {
		resp.Body.Close()
	}
}

// gateSource blocks resolution until released, pinning a request
// in-flight for as long as a test needs.
type gateSource struct {
	e    *Engine
	gate chan struct{}
}

func (g gateSource) Engine() *Engine { <-g.gate; return g.e }

func TestMaxInflightSheds(t *testing.T) {
	gate := make(chan struct{})
	srv := NewServerSources(map[string]EngineSource{
		"slow": gateSource{e: NewEngine(figure1(t), EngineOptions{}), gate: gate},
	}, ServerOptions{MaxInflight: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the only slot.
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/cpgs/slow/stats")
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	// Wait until the first request holds the slot (it blocks on the gate
	// inside the handler, after admission). The poll must not resolve the
	// gated source itself — an unknown id exercises admission (the /v1
	// prefix) and answers 404 without touching a source, so it can never
	// block; once the slot is held it answers 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/cpgs/absent/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if ra := resp.Header.Get("Retry-After"); ra != "2" {
				t.Errorf("Retry-After = %q, want \"2\"", ra)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second /v1 request was never shed")
		}
		time.Sleep(time.Millisecond)
	}
	// Probes bypass the limit. (/readyz shares the same bypass but
	// resolves every source for epoch reporting, which this test's
	// deliberately blocking source would wedge — /healthz covers the
	// admission path.)
	resp0, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d while at capacity, want 200", resp0.StatusCode)
	}
	close(gate)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d", code)
	}
	// The slot is free again.
	resp, err := http.Get(ts.URL + "/v1/cpgs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("request after release = %d", resp.StatusCode)
	}
}

func TestClientRetriesBackoff(t *testing.T) {
	real := NewServer(map[string]*Engine{"fig1": NewEngine(figure1(t), EngineOptions{})}, ServerOptions{})
	var mu sync.Mutex
	failures := 2
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		shed := failures > 0
		if shed {
			failures--
		}
		mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxRetries: 3, RetryBase: time.Millisecond}
	res, err := c.Stats(context.Background(), "fig1")
	if err != nil {
		t.Fatalf("client did not ride out two 503s: %v", err)
	}
	if res.Stats == nil || res.Stats.SubComputations == 0 {
		t.Errorf("retried request returned a hollow result: %+v", res)
	}

	// Without retries the same failure surfaces immediately.
	mu.Lock()
	failures = 1
	mu.Unlock()
	if _, err := (&Client{BaseURL: ts.URL}).Stats(context.Background(), "fig1"); err == nil {
		t.Error("MaxRetries=0 client retried anyway")
	}

	// A canceled context stops the retry loop instead of sleeping on.
	mu.Lock()
	failures = 1 << 30
	mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Stats(ctx, "fig1"); !errors.Is(err, context.Canceled) && err == nil {
		t.Error("canceled retry loop returned success")
	}
}

// TestLiveEngineFoldPanic drives the live pipeline through a panicking
// fold: the last good epoch stays servable, later folds recover, and
// Close surfaces the first fold error instead of deadlocking.
func TestLiveEngineFoldPanic(t *testing.T) {
	g := core.NewGraph(1)
	var mu sync.Mutex
	boom := false
	l := NewLiveEngine(g, EngineOptions{}, func() {
		mu.Lock()
		defer mu.Unlock()
		if boom {
			boom = false
			panic("injected fold panic")
		}
	})
	if l.Engine() == nil {
		t.Fatal("no engine after construction")
	}
	first := l.Epoch()

	// Seal a vertex, then make the next fold panic.
	r, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.OnWrite(1)
	if _, err := r.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	boom = true
	mu.Unlock()
	l.Notify()
	// Wait until the notified fold has consumed the panic — otherwise
	// Close's final fold could be the panicking one, in which case the
	// last good epoch (legitimately) stays and this test would assert
	// the wrong thing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		consumed := !boom
		mu.Unlock()
		if consumed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fold hook never ran")
		}
		time.Sleep(time.Millisecond)
	}
	// The panicking fold published nothing; the final fold via Close
	// recovers, serves the complete graph, and Close still surfaces the
	// recorded error.
	cerr := l.Close()
	if cerr == nil || !strings.Contains(cerr.Error(), "fold panicked") {
		t.Fatalf("Close() = %v, want fold panic error", cerr)
	}
	if l.Epoch() < first {
		t.Errorf("epoch went backwards after a fold panic")
	}
	res, err := l.Engine().Execute(context.Background(), Query{Kind: KindStats})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubComputations != 1 {
		t.Errorf("final epoch saw %d subs, want 1 (fold after panic must recover)", res.Stats.SubComputations)
	}
}

// TestClientBackoffHonorsCancel pins the select in Client.do: a context
// canceled while the client sleeps between retries ends the wait
// immediately with ctx's error — the backoff timer cannot hold a caller
// hostage for the duration of a long Retry-After hint.
func TestClientBackoffHonorsCancel(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Always shed, steering every attempt into the backoff sleep,
		// and stretch it: without cancellation the test would sit here
		// for minutes.
		w.Header().Set("Retry-After", "120")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{BaseURL: ts.URL, MaxRetries: 5, RetryBase: time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := c.Stats(ctx, "fig1")
		done <- err
	}()
	// Let the first attempt fail and the client enter its backoff wait,
	// then cancel mid-sleep.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still sleeping 5s after cancellation (Retry-After hint won over ctx.Done)")
	}
}
