package provenance

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core"
)

// liveFixture records sub-computations on demand so tests control
// exactly what each epoch can see.
type liveFixture struct {
	g    *core.Graph
	rec  *core.Recorder
	lock *core.SyncObject
}

func newLiveFixture(t *testing.T) *liveFixture {
	t.Helper()
	g := core.NewGraph(2)
	rec, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &liveFixture{g: g, rec: rec, lock: g.NewSyncObject("l", false)}
}

// seal records one sub-computation touching the given page.
func (f *liveFixture) seal(t *testing.T, page uint64) {
	t.Helper()
	f.rec.OnRead(page)
	f.rec.OnWrite(page)
	sc, err := f.rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: f.lock.Ref()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.rec.Release(f.lock, sc)
	f.rec.Acquire(f.lock)
}

func TestLiveEngineEpochsAdvance(t *testing.T) {
	f := newLiveFixture(t)
	live := NewLiveEngine(f.g, EngineOptions{})
	defer live.Close()

	if live.Epoch() < 1 {
		t.Fatalf("initial epoch = %d, want >= 1", live.Epoch())
	}
	res, err := live.Engine().Execute(context.Background(), Query{Kind: KindStats})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubComputations != 0 {
		t.Fatalf("empty live graph reports %d subs", res.Stats.SubComputations)
	}
	if res.Epoch == 0 {
		t.Fatal("live result carries no epoch")
	}

	f.seal(t, 7)
	before := live.Epoch()
	live.Notify()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	epoch, err := live.WaitEpoch(ctx, before+1)
	if err != nil {
		t.Fatalf("WaitEpoch: %v", err)
	}
	if epoch <= before {
		t.Fatalf("epoch did not advance: %d -> %d", before, epoch)
	}
	res, err = live.Engine().Execute(context.Background(), Query{Kind: KindStats})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubComputations != 1 {
		t.Fatalf("after seal+fold: %d subs, want 1", res.Stats.SubComputations)
	}
	if res.Epoch != epoch {
		t.Fatalf("result epoch %d, engine epoch %d", res.Epoch, epoch)
	}
}

func TestLiveEngineCloseFoldsFinalEpoch(t *testing.T) {
	f := newLiveFixture(t)
	live := NewLiveEngine(f.g, EngineOptions{})
	// Seal after the initial fold but never Notify: only Close's final
	// fold can pick these up.
	f.seal(t, 1)
	f.seal(t, 2)
	live.Close()
	res, err := live.Engine().Execute(context.Background(), Query{Kind: KindStats})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SubComputations != 2 {
		t.Fatalf("final epoch sees %d subs, want 2", res.Stats.SubComputations)
	}
	// Idempotent.
	live.Close()

	// WaitEpoch for an epoch that can never come fails with ErrLiveClosed.
	if _, err := live.WaitEpoch(context.Background(), live.Epoch()+100); err != ErrLiveClosed {
		t.Fatalf("WaitEpoch after close = %v, want ErrLiveClosed", err)
	}
}

// TestServerPinsEpochPerRequest serves a live graph and checks the
// provenance/v1 live contract: responses carry the epoch id, the listing
// reflects growth, and a request resolved at epoch N stays at epoch N
// even if the fold advances mid-request.
func TestServerPinsEpochPerRequest(t *testing.T) {
	f := newLiveFixture(t)
	live := NewLiveEngine(f.g, EngineOptions{})
	defer live.Close()
	srv := NewServerSources(map[string]EngineSource{"live": live}, ServerOptions{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	getStats := func() *Result {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/cpgs/live/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", resp.StatusCode)
		}
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return &res
	}

	first := getStats()
	if first.Epoch == 0 {
		t.Fatal("live stats response carries no epoch")
	}

	f.seal(t, 3)
	live.Notify()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := live.WaitEpoch(ctx, first.Epoch+1); err != nil {
		t.Fatal(err)
	}

	second := getStats()
	if second.Epoch <= first.Epoch {
		t.Fatalf("epoch did not advance across requests: %d -> %d", first.Epoch, second.Epoch)
	}
	if second.Stats.SubComputations != first.Stats.SubComputations+1 {
		t.Fatalf("subs %d -> %d, want +1", first.Stats.SubComputations, second.Stats.SubComputations)
	}

	// Listing carries the live epoch.
	resp, err := http.Get(ts.URL + "/v1/cpgs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list CPGList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.CPGs) != 1 || list.CPGs[0].Epoch < second.Epoch {
		t.Fatalf("listing = %+v, want live epoch >= %d", list.CPGs, second.Epoch)
	}

	// A paginated listing stays consistent against its pinned epoch: the
	// engine resolved for the request does not move even when folds
	// advance, so cursor math refers to one immutable sequence.
	eng := live.Engine()
	res1, err := eng.Execute(context.Background(), Query{Kind: KindEdges, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.seal(t, 9)
	live.Notify()
	if _, err := live.WaitEpoch(ctx, second.Epoch+1); err != nil {
		t.Fatal(err)
	}
	if res1.NextCursor != "" {
		res2, err := eng.Execute(context.Background(), Query{Kind: KindEdges, Limit: 1, Cursor: res1.NextCursor})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Epoch != res1.Epoch {
			t.Fatalf("pinned engine changed epoch mid-pagination: %d -> %d", res1.Epoch, res2.Epoch)
		}
		if res2.Total != res1.Total {
			t.Fatalf("pinned engine total moved: %d -> %d", res1.Total, res2.Total)
		}
	}
}

// TestStaticResultsCarryNoEpoch pins backward compatibility: post-mortem
// engines report epoch 0 and the field stays off the wire entirely.
func TestStaticResultsCarryNoEpoch(t *testing.T) {
	f := newLiveFixture(t)
	f.seal(t, 5)
	eng := NewEngine(f.g.Analyze(), EngineOptions{})
	res, err := eng.Execute(context.Background(), Query{Kind: KindStats})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 0 {
		t.Fatalf("batch result epoch = %d, want 0", res.Epoch)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "epoch") {
		t.Fatalf("batch wire form leaks epoch: %s", data)
	}
}
