package provenance

// Tests of the distributed fabric: ingest resume offsets, duplicate and
// reorder conformance, degraded sources, epoch push, and the
// StreamRecorder's retry/resume discipline. The load-bearing property
// throughout: the aggregator's export at epoch E is byte-identical to
// the recorder's own incremental fold at epoch E, no matter how the
// frames got there.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/wire"
)

// fabricRun is a recorded workload: its hello, the epoch-delta stream,
// and the reference export bytes after each epoch.
type fabricRun struct {
	hello   wire.Hello
	deltas  []*core.EpochDelta
	exports [][]byte
}

func (fr *fabricRun) finalEpoch() uint64 { return fr.deltas[len(fr.deltas)-1].Epoch }
func (fr *fabricRun) finalExport() []byte {
	return fr.exports[len(fr.exports)-1]
}

// recordFabric drives a deterministic random multithreaded workload,
// folding an epoch every few seals, and captures deltas plus reference
// exports.
func recordFabric(t *testing.T, threads, steps int, seed int64) *fabricRun {
	t.Helper()
	g := core.NewGraph(threads)
	recs := make([]*core.Recorder, threads)
	for i := range recs {
		rec, err := core.NewRecorder(g, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
	}
	locks := []*core.SyncObject{
		g.NewSyncObject("m0", false),
		g.NewSyncObject("m1", false),
	}
	r := rand.New(rand.NewSource(seed))
	inc := core.NewIncrementalAnalyzer(g)
	run := &fabricRun{hello: wire.Hello{
		RunID:   fmt.Sprintf("fabric-%d-%d", threads, seed),
		App:     "fabric-test",
		Threads: threads,
	}}
	fold := func() {
		a, d := inc.FoldDelta()
		run.deltas = append(run.deltas, d)
		var buf bytes.Buffer
		if err := a.ExportJSON(&buf); err != nil {
			t.Fatal(err)
		}
		run.exports = append(run.exports, buf.Bytes())
	}
	for s := 0; s < steps; s++ {
		rec := recs[r.Intn(threads)]
		for i := 0; i < 1+r.Intn(3); i++ {
			rec.OnRead(uint64(r.Intn(40)))
			rec.OnWrite(uint64(r.Intn(40)))
		}
		lock := locks[r.Intn(len(locks))]
		sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release(lock, sc)
		rec.Acquire(lock)
		if s%3 == 2 {
			fold()
		}
	}
	for _, rec := range recs {
		if _, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
			t.Fatal(err)
		}
	}
	fold()
	return run
}

// newFabricServer serves an empty static set plus an ingest hub.
func newFabricServer(t *testing.T, opts IngestOptions) (*IngestHub, *httptest.Server) {
	t.Helper()
	hub := NewIngestHub(opts)
	ts := httptest.NewServer(NewServer(nil, ServerOptions{Ingest: hub}))
	t.Cleanup(ts.Close)
	return hub, ts
}

// post encodes and ships a delta range (nil seal) and fails the test on
// encode errors only — the ingest error is returned for inspection.
func post(t *testing.T, c *Client, source string, hello wire.Hello, deltas []*core.EpochDelta, seal *wire.Seal) (*IngestStatus, error) {
	t.Helper()
	frames, err := EncodeFrames(hello, deltas, seal)
	if err != nil {
		t.Fatal(err)
	}
	return c.Ingest(context.Background(), source, frames)
}

// TestIngestOffsetContract pins the resume-offset contract: unknown
// source is 404 (start at epoch 1); NextEpoch is always last applied +
// 1; duplicates are acknowledged without reapplying; gaps are 409 and
// apply nothing.
func TestIngestOffsetContract(t *testing.T) {
	_, ts := newFabricServer(t, IngestOptions{})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	run := recordFabric(t, 2, 24, 1)

	// Unknown source: 404 surfaces as found=false, not an error.
	if _, found, err := c.IngestOffset(ctx, "src"); err != nil || found {
		t.Fatalf("fresh offset = found=%v err=%v, want found=false err=nil", found, err)
	}

	// First two epochs land; the offset names the third.
	st, err := post(t, c, "src", run.hello, run.deltas[:2], nil)
	if err != nil {
		t.Fatal(err)
	}
	wantNext := run.deltas[1].Epoch + 1
	if st.NextEpoch != wantNext || st.Accepted != 2 || st.Duplicates != 0 {
		t.Fatalf("post status = %+v, want next=%d accepted=2", st, wantNext)
	}
	off, found, err := c.IngestOffset(ctx, "src")
	if err != nil || !found || off.NextEpoch != wantNext || off.RunID != run.hello.RunID {
		t.Fatalf("offset = %+v found=%v err=%v, want next=%d run=%s", off, found, err, wantNext, run.hello.RunID)
	}

	// Re-sending the same prefix is acknowledged, not reapplied.
	st, err = post(t, c, "src", run.hello, run.deltas[:2], nil)
	if err != nil || st.Accepted != 0 || st.Duplicates != 2 || st.NextEpoch != wantNext {
		t.Fatalf("duplicate post = %+v err=%v, want 0 accepted / 2 duplicates", st, err)
	}

	// A gap (skipping deltas[2]) is 409 and leaves the offset alone.
	if _, err := post(t, c, "src", run.hello, run.deltas[3:4], nil); serverStatus(err) != http.StatusConflict {
		t.Fatalf("gap post err = %v, want HTTP 409", err)
	}
	if off, _, _ := c.IngestOffset(ctx, "src"); off == nil || off.NextEpoch != wantNext {
		t.Fatalf("offset after gap = %+v, want next=%d unchanged", off, wantNext)
	}

	// A hello naming a different run cannot rebind the source.
	other := run.hello
	other.RunID = "impostor"
	if _, err := post(t, c, "src", other, nil, nil); serverStatus(err) != http.StatusConflict {
		t.Fatalf("run-conflict post err = %v, want HTTP 409", err)
	}
}

// TestIngestExportMatchesLocalFold streams a full run (with seal) and
// requires the aggregator's export to be byte-identical to the
// recorder's local fold at the same epoch.
func TestIngestExportMatchesLocalFold(t *testing.T) {
	for _, threads := range []int{1, 4} {
		run := recordFabric(t, threads, 36, int64(threads)*13)
		_, ts := newFabricServer(t, IngestOptions{})
		c := &Client{BaseURL: ts.URL}
		ctx := context.Background()

		st, err := post(t, c, "w", run.hello, run.deltas, &wire.Seal{FinalEpoch: run.finalEpoch()})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Sealed || st.NextEpoch != run.finalEpoch()+1 {
			t.Fatalf("final status = %+v, want sealed at next=%d", st, run.finalEpoch()+1)
		}
		got, err := c.Export(ctx, "w")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, run.finalExport()) {
			t.Fatalf("threads=%d: aggregator export (%d bytes) != local fold (%d bytes)",
				threads, len(got), len(run.finalExport()))
		}
		// The ingested source shows up in the listing like any CPG.
		list, err := c.List(ctx)
		if err != nil || len(list) != 1 || list[0].ID != "w" {
			t.Fatalf("list = %+v err=%v", list, err)
		}
	}
}

// TestIngestConformanceRandomSchedules replays a run through random
// retry schedules — arbitrary batch sizes, duplicated batches, replayed
// prefixes, interleaved gap attempts, reconnects at every boundary —
// and requires the final export to stay byte-identical to the clean
// in-process fold.
func TestIngestConformanceRandomSchedules(t *testing.T) {
	run := recordFabric(t, 2, 42, 7)
	n := len(run.deltas)
	for seed := int64(0); seed < 6; seed++ {
		_, ts := newFabricServer(t, IngestOptions{})
		r := rand.New(rand.NewSource(seed * 101))
		applied := 0 // deltas[:applied] are on the server
		for applied < n {
			// Reconnect: every POST may come from a fresh client.
			c := &Client{BaseURL: ts.URL}
			if r.Intn(4) == 0 && applied < n-1 {
				// A future batch must bounce without applying anything.
				start := applied + 1 + r.Intn(n-applied-1)
				if _, err := post(t, c, "w", run.hello, run.deltas[start:start+1], nil); serverStatus(err) != http.StatusConflict {
					t.Fatalf("seed %d: gap post err = %v, want 409", seed, err)
				}
				continue
			}
			// Any contiguous range starting at or before the offset is
			// legal; the prefix dedups, the tail applies.
			start := r.Intn(applied + 1)
			end := start + 1 + r.Intn(n-start)
			st, err := post(t, &Client{BaseURL: ts.URL}, "w", run.hello, run.deltas[start:end], nil)
			if err != nil {
				t.Fatalf("seed %d: post [%d,%d) with %d applied: %v", seed, start, end, applied, err)
			}
			if applied < end {
				applied = end
			}
			if want := run.deltas[applied-1].Epoch + 1; st.NextEpoch != want {
				t.Fatalf("seed %d: next epoch = %d, want %d", seed, st.NextEpoch, want)
			}
		}
		c := &Client{BaseURL: ts.URL}
		if _, err := post(t, c, "w", run.hello, nil, &wire.Seal{FinalEpoch: run.finalEpoch()}); err != nil {
			t.Fatal(err)
		}
		got, err := c.Export(context.Background(), "w")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, run.finalExport()) {
			t.Fatalf("seed %d: export diverged after randomized schedule", seed)
		}
		ts.Close()
	}
}

// TestIngestDegradedSource pins the trust boundary: a malformed delta is
// rejected with 400, the source latches degraded (further ingest is
// 409), and the export keeps serving — the last good epoch with
// truncation gaps marked, per the degraded-trace rules.
func TestIngestDegradedSource(t *testing.T) {
	run := recordFabric(t, 2, 24, 3)
	_, ts := newFabricServer(t, IngestOptions{})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	if _, err := post(t, c, "w", run.hello, run.deltas[:2], nil); err != nil {
		t.Fatal(err)
	}
	// Forge the third delta: inflate a lens count so validation trips.
	forged := *run.deltas[2]
	forged.Lens = append([]int(nil), forged.Lens...)
	forged.Lens[0]++
	if _, err := post(t, c, "w", run.hello, []*core.EpochDelta{&forged}, nil); serverStatus(err) != http.StatusBadRequest {
		t.Fatalf("forged delta err = %v, want HTTP 400", err)
	}
	off, _, err := c.IngestOffset(ctx, "w")
	if err != nil || !off.Degraded {
		t.Fatalf("offset after poison = %+v err=%v, want degraded", off, err)
	}
	// The genuine delta is refused too: the source is poisoned for good.
	if _, err := post(t, c, "w", run.hello, run.deltas[2:3], nil); serverStatus(err) != http.StatusConflict {
		t.Fatalf("post after poison err = %v, want HTTP 409", err)
	}
	// Queries still serve, flagged degraded, and the push wire reports
	// the source closed.
	res, err := c.Stats(ctx, "w")
	if err != nil || !res.Degraded {
		t.Fatalf("stats after poison = %+v err=%v, want degraded result", res, err)
	}
	if _, err := c.Export(ctx, "w"); err != nil {
		t.Fatalf("export after poison: %v", err)
	}
	est, err := c.WaitEpoch(ctx, "w", run.deltas[1].Epoch+5, 2*time.Second)
	if err != nil || !est.Closed {
		t.Fatalf("watch after poison = %+v err=%v, want closed", est, err)
	}
}

// TestWaitEpochPush exercises the long-poll: a watcher parked above the
// current epoch wakes when ingest publishes it, and learns Closed from
// the seal.
func TestWaitEpochPush(t *testing.T) {
	run := recordFabric(t, 2, 24, 5)
	_, ts := newFabricServer(t, IngestOptions{})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	if _, err := post(t, c, "w", run.hello, run.deltas[:1], nil); err != nil {
		t.Fatal(err)
	}
	target := run.deltas[1].Epoch
	done := make(chan *EpochStatus, 1)
	go func() {
		st, err := c.WaitEpoch(ctx, "w", target, 10*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- st
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := post(t, c, "w", run.hello, run.deltas[1:2], nil); err != nil {
		t.Fatal(err)
	}
	select {
	case st := <-done:
		if st == nil || st.Epoch < target || st.Closed {
			t.Fatalf("watch woke with %+v, want epoch >= %d, open", st, target)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never woke")
	}

	// A zero-wait poll answers immediately with the current epoch.
	st, err := c.WaitEpoch(ctx, "w", target+100, 0)
	if err != nil || st.Epoch != target || st.Closed {
		t.Fatalf("immediate poll = %+v err=%v, want epoch %d open", st, err, target)
	}

	// Finish the stream; a watcher above the final epoch learns Closed.
	if _, err := post(t, c, "w", run.hello, run.deltas[2:], &wire.Seal{FinalEpoch: run.finalEpoch()}); err != nil {
		t.Fatal(err)
	}
	st, err = c.WaitEpoch(ctx, "w", run.finalEpoch()+1, 5*time.Second)
	if err != nil || !st.Closed || st.Epoch != run.finalEpoch() {
		t.Fatalf("post-seal watch = %+v err=%v, want closed at %d", st, err, run.finalEpoch())
	}
}

// driveStream replays a deterministic workload through a live graph with
// the StreamRecorder's commit hook attached, mirroring what
// inspector-run -stream does.
func driveStream(t *testing.T, g *core.Graph, threads, steps int, seed int64, hook func(core.SubID)) {
	t.Helper()
	recs := make([]*core.Recorder, threads)
	for i := range recs {
		rec, err := core.NewRecorder(g, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
	}
	locks := []*core.SyncObject{g.NewSyncObject("m0", false), g.NewSyncObject("m1", false)}
	r := rand.New(rand.NewSource(seed))
	for s := 0; s < steps; s++ {
		rec := recs[r.Intn(threads)]
		rec.OnRead(uint64(r.Intn(40)))
		rec.OnWrite(uint64(r.Intn(40)))
		lock := locks[r.Intn(len(locks))]
		sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release(lock, sc)
		rec.Acquire(lock)
		hook(sc.ID)
	}
	for _, rec := range recs {
		sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0)
		if err != nil {
			t.Fatal(err)
		}
		hook(sc.ID)
	}
}

// TestStreamRecorderMidStream503Resume pins satellite 4: the streaming
// path rides the same backoff/Retry-After discipline as queries. The
// server sheds the first several POSTs with 503; the recorder must
// retry/resync through them and converge with zero epoch loss.
func TestStreamRecorderMidStream503Resume(t *testing.T) {
	hub := NewIngestHub(IngestOptions{})
	srv := NewServer(nil, ServerOptions{Ingest: hub})
	var sheds atomic.Int32
	sheds.Store(4)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && sheds.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"shedding load"}`)
			return
		}
		srv.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxRetries: 10, RetryBase: time.Millisecond}
	g := core.NewGraph(2)
	sr, err := NewStreamRecorder(g, c, StreamOptions{
		Source: "w", RunID: "run-503", App: "fabric-test", Every: 2, Batch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveStream(t, g, 2, 30, 9, sr.CommitHook())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sr.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Zero epoch loss: the aggregator is sealed exactly at the
	// recorder's final epoch, and its export matches the recorder's own
	// final fold byte-for-byte.
	off, found, err := c.IngestOffset(context.Background(), "w")
	if err != nil || !found {
		t.Fatalf("offset = found=%v err=%v", found, err)
	}
	if !off.Sealed || off.NextEpoch != sr.Epoch()+1 {
		t.Fatalf("offset = %+v, want sealed at next=%d", off, sr.Epoch()+1)
	}
	got, err := c.Export(context.Background(), "w")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sr.Analysis().ExportJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("aggregator export != recorder's local fold after 503 storm")
	}
}

// TestStreamRecorderLatchesOnLostEpochs pins the v0 limitation: if the
// aggregator forgets acknowledged epochs (restart with no journal
// re-feed), the recorder reports a terminal error instead of silently
// producing a hole.
func TestStreamRecorderLatchesOnLostEpochs(t *testing.T) {
	// The first hub acknowledges some epochs, then the server "restarts"
	// with a fresh hub that knows nothing.
	hubA := NewIngestHub(IngestOptions{})
	hubB := NewIngestHub(IngestOptions{})
	srvA := NewServer(nil, ServerOptions{Ingest: hubA})
	srvB := NewServer(nil, ServerOptions{Ingest: hubB})
	var swapped atomic.Bool
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if swapped.Load() {
			srvB.ServeHTTP(w, r)
			return
		}
		srvA.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxRetries: 2, RetryBase: time.Millisecond}
	g := core.NewGraph(1)
	sr, err := NewStreamRecorder(g, c, StreamOptions{Source: "w", RunID: "run-lost", Every: 1, MaxResyncs: 2})
	if err != nil {
		t.Fatal(err)
	}
	hook := sr.CommitHook()
	rec, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seal := func(page uint64) {
		t.Helper()
		rec.OnWrite(page)
		sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0)
		if err != nil {
			t.Fatal(err)
		}
		hook(sc.ID)
	}
	for i := 0; i < 6; i++ {
		seal(uint64(i))
	}
	// Let the sender ack a prefix against hub A, then swap the state
	// away.
	deadline := time.Now().Add(5 * time.Second)
	for sr.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sr.Pending() > 0 {
		t.Fatal("sender never drained against hub A")
	}
	swapped.Store(true)
	seal(7)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	closeErr := sr.Close(ctx)
	if closeErr == nil {
		t.Fatal("close succeeded although the aggregator lost acknowledged epochs")
	}
	if !strings.Contains(closeErr.Error(), "re-feed from the journal") {
		t.Fatalf("close err = %v, want the lost-epochs diagnosis", closeErr)
	}
}
