// Package provenance is the versioned query surface over a Concurrent
// Provenance Graph: one typed Query, one Engine that executes it against
// a core.Analysis, and one wire representation (provenance/v1 JSON)
// shared by the library API (inspector.Runtime.Query), the cpg-query
// CLI, and the inspector-serve HTTP daemon.
//
// The paper's end product is not the trace but the queries it answers —
// lineage, slicing, and taint over the CPG (§V, §VIII). This package
// makes that the single public surface:
//
//	a := graph.Analyze()
//	eng := provenance.NewEngine(a, provenance.EngineOptions{})
//	res, err := eng.Execute(ctx, provenance.Query{
//	    Kind:   provenance.KindSlice,
//	    Target: "T0.3",
//	})
//
// Every query result is deterministic: sub-computation lists are ordered
// by (thread, alpha) and edge lists follow the canonical core order
// (control edges in program order, then sync edges, then data edges,
// each sorted by (From, To)). Determinism plus the immutability of an
// Analysis is what makes cursor-based pagination sound: a cursor is an
// opaque position in the fixed result sequence, so paging through a
// large slice from many concurrent clients needs no server-side session
// state.
//
// Execution honors context cancellation end to end — a canceled context
// stops closure traversal inside internal/core, not just the response
// write — and an Engine is safe for concurrent use by any number of
// goroutines (it only reads the Analysis).
//
// # Live graphs
//
// Queries do not require the traced execution to have finished. A
// LiveEngine folds a still-recording graph into successive immutable
// epoch Analyses (core.IncrementalAnalyzer) and always serves the
// newest one; Result.Epoch says which epoch answered, and cursors are
// valid against exactly that epoch. The Server resolves one engine per
// request (EngineSource), so a request is pinned to one epoch however
// far the fold advances while it executes. Post-mortem engines report
// epoch 0 and omit the field on the wire — the live additions are
// strictly backward compatible within provenance/v1.
//
// See DESIGN.md, sections "The query API & service" (grammar, cursor
// contract, wire format) and "The live pipeline" (epoch model,
// equivalence guarantee).
package provenance
