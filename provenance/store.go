package provenance

import (
	"container/list"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/repro/inspector/internal/cpgfile"
)

// StoreOptions configure a directory-backed CPG store.
type StoreOptions struct {
	// ResidentBudget bounds the estimated bytes of decoded analyses
	// kept resident at once. When a decode pushes the total past the
	// budget, least-recently-used analyses are dropped (the mmap
	// stays; the file re-materializes on its next query). 0 means
	// unlimited. The budget governs decoded graphs, not mapped file
	// bytes — mappings are the cheap part the kernel pages on demand.
	ResidentBudget int64
	// ResultCacheCapacity bounds the content-addressed query-result
	// cache, in entries. 0 means the default (1024); negative disables
	// the cache.
	ResultCacheCapacity int
	// Engine configures every engine the store materializes.
	Engine EngineOptions
	// Lenient skips files that fail to open or checksum, logging each
	// by name, instead of failing OpenDir — one corrupt archive must
	// not take down the healthy neighbors.
	Lenient bool
	// Logf receives lenient-skip and decode-failure lines (nil = none).
	Logf func(format string, args ...any)
}

const defaultResultCacheCapacity = 1024

// ResultCacheStats counts content-addressed result-cache traffic.
type ResultCacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// StoreStats is the GET /v1/store response body: how the bounded-memory
// serving machinery is behaving.
type StoreStats struct {
	Version string `json:"version"`
	// CPGs counts the files the store serves.
	CPGs int `json:"cpgs"`
	// ResidentBytes estimates the decoded analyses currently held;
	// ResidentBudget echoes the configured bound (omitted if unlimited).
	ResidentBytes  int64 `json:"resident_bytes"`
	ResidentBudget int64 `json:"resident_budget,omitempty"`
	// DecodedCPGs counts files whose analysis is currently resident;
	// Decodes counts materializations over the store's lifetime (a
	// file decoded, evicted, and decoded again counts twice); and
	// EngineEvictions counts budget-driven drops.
	DecodedCPGs     int              `json:"decoded_cpgs"`
	Decodes         uint64           `json:"decodes"`
	EngineEvictions uint64           `json:"engine_evictions"`
	ResultCache     ResultCacheStats `json:"result_cache"`
}

// Store serves a directory of on-disk CPG files with bounded memory.
// Every file stays cheaply memory-mapped; decoded analyses (the
// expensive part) live in an LRU governed by the resident-bytes
// budget, and repeated queries short-circuit through a result cache
// keyed by (file content hash, epoch, canonical query encoding).
// That key is sound because a CPG file is immutable and its analysis
// is immutable per epoch: same bytes, same epoch, same query — same
// result, forever. All methods are safe for concurrent use.
type Store struct {
	opts  StoreOptions
	cache *resultCache

	mu       sync.Mutex
	entries  map[string]*storeEntry
	lru      *list.List // entries with a resident engine, most recent in front
	resident int64
	decodes  uint64
	evicted  uint64
}

// storeEntry is one served file. eng/bytes/elem are guarded by the
// store mutex; m has its own synchronization.
type storeEntry struct {
	id    string
	m     *cpgfile.Mapped
	eng   *Engine
	bytes int64
	elem  *list.Element
	// hashKey caches the hex content hash once a query computes it.
	hashOnce sync.Once
	hashKey  string
}

// OpenDir opens every *.cpg file in dir (the CPG id is the file name
// without the extension) and verifies all section checksums up front —
// a sequential read per file, no decoding — so a corrupt file is
// rejected (or, with Lenient, skipped by name) at startup rather than
// surfacing mid-query.
func OpenDir(dir string, opts StoreOptions) (*Store, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.cpg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	s := &Store{
		opts:    opts,
		entries: make(map[string]*storeEntry, len(paths)),
		lru:     list.New(),
	}
	switch {
	case opts.ResultCacheCapacity == 0:
		s.cache = newResultCache(defaultResultCacheCapacity)
	case opts.ResultCacheCapacity > 0:
		s.cache = newResultCache(opts.ResultCacheCapacity)
	}
	for _, path := range paths {
		m, err := cpgfile.Open(path)
		if err == nil {
			err = m.VerifyChecksums()
		}
		if err != nil {
			if m != nil {
				m.Close()
			}
			if opts.Lenient {
				s.logf("provenance: skipping %s: %v (-lenient)", path, err)
				continue
			}
			s.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		id := strings.TrimSuffix(filepath.Base(path), ".cpg")
		if _, dup := s.entries[id]; dup {
			m.Close()
			s.Close()
			return nil, fmt.Errorf("%s: duplicate cpg id %q", path, id)
		}
		s.entries[id] = &storeEntry{id: id, m: m}
	}
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Len returns the number of served CPGs.
func (s *Store) Len() int { return len(s.entries) }

// IDs returns the served CPG ids, sorted.
func (s *Store) IDs() []string {
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Sources returns one EngineSource per served CPG, for NewServerSources.
func (s *Store) Sources() map[string]EngineSource {
	out := make(map[string]EngineSource, len(s.entries))
	for id, e := range s.entries {
		out[id] = storeSource{s: s, e: e}
	}
	return out
}

// Query executes one query against the CPG with the given id, through
// the result cache — the programmatic equivalent of the server's
// POST /v1/cpgs/{id}/query path.
func (s *Store) Query(ctx context.Context, id string, q Query) (*Result, error) {
	e, ok := s.entries[id]
	if !ok {
		return nil, fmt.Errorf("provenance: no cpg %q in store", id)
	}
	return storeSource{s: s, e: e}.RunQuery(ctx, q)
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	st := StoreStats{
		Version:         Version,
		CPGs:            len(s.entries),
		ResidentBytes:   s.resident,
		ResidentBudget:  s.opts.ResidentBudget,
		DecodedCPGs:     s.lru.Len(),
		Decodes:         s.decodes,
		EngineEvictions: s.evicted,
	}
	s.mu.Unlock()
	if s.cache != nil {
		st.ResultCache = s.cache.stats()
	}
	return st
}

// Close unmaps every file. In-flight analyses stay valid (they own
// their memory); the store must not be queried afterwards.
func (s *Store) Close() error {
	var first error
	for _, e := range s.entries {
		if err := e.m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// engine returns the entry's engine, materializing the analysis if it
// is not resident and evicting LRU analyses past the budget. The
// returned engine stays valid even if the entry is evicted immediately
// (analyses are immutable and own their memory) — eviction only
// affects what the *next* request pays.
func (s *Store) engine(e *storeEntry) (*Engine, error) {
	s.mu.Lock()
	if e.eng != nil {
		eng := e.eng
		s.touch(e)
		s.mu.Unlock()
		return eng, nil
	}
	s.mu.Unlock()

	// Decode outside the store lock: the Mapped's own mutex serializes
	// concurrent decoders of the same file, while different files
	// decode in parallel.
	a, n, err := e.m.Analysis()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.m.Path(), err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e.eng == nil {
		e.eng = NewEngine(a, s.opts.Engine)
		e.bytes = n
		s.resident += n
		s.decodes++
	}
	eng := e.eng
	s.touch(e)
	s.evict()
	return eng, nil
}

// touch marks the entry most recently used. Caller holds s.mu.
func (s *Store) touch(e *storeEntry) {
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
		return
	}
	e.elem = s.lru.PushFront(e)
}

// evict drops least-recently-used decoded analyses until the resident
// estimate fits the budget. Caller holds s.mu.
func (s *Store) evict() {
	for s.opts.ResidentBudget > 0 && s.resident > s.opts.ResidentBudget {
		el := s.lru.Back()
		if el == nil {
			return
		}
		victim := el.Value.(*storeEntry)
		s.lru.Remove(el)
		victim.elem = nil
		if victim.eng != nil {
			victim.eng = nil
			s.resident -= victim.bytes
			victim.bytes = 0
			victim.m.Drop()
			s.evicted++
		}
	}
}

// cacheKey builds the content-addressed result-cache key: file hash,
// epoch, canonical query encoding. json.Marshal of a Query is
// canonical — struct field order is fixed — so equal queries encode
// equally. ok is false when caching is disabled or the query cannot
// be encoded.
func (s *Store) cacheKey(e *storeEntry, q Query) (string, bool) {
	if s.cache == nil {
		return "", false
	}
	enc, err := json.Marshal(q)
	if err != nil {
		return "", false
	}
	e.hashOnce.Do(func() {
		h := e.m.ContentHash()
		e.hashKey = hex.EncodeToString(h[:]) + ":" + strconv.FormatUint(e.m.Header().Epoch, 10) + ":"
	})
	return e.hashKey + string(enc), true
}

// storeSource adapts one store entry to the server's source surface:
// EngineSource for the generic path, plus the lazy fast paths — cached
// query execution, listing info from the stats section, and the epoch
// hint from the header — that answer without materializing the graph.
type storeSource struct {
	s *Store
	e *storeEntry
}

// Engine materializes the entry's engine. The server's richer paths
// (RunQuery, Info, EpochHint) avoid this; it exists to satisfy
// EngineSource. A decode failure here has no error channel, so it
// panics — the server's recovery envelope turns that into a logged
// 500 instead of a crash.
func (ss storeSource) Engine() *Engine {
	eng, err := ss.s.engine(ss.e)
	if err != nil {
		panic(fmt.Sprintf("cpg store: %v", err))
	}
	return eng
}

// RunQuery executes one query with result caching.
func (ss storeSource) RunQuery(ctx context.Context, q Query) (*Result, error) {
	key, cacheable := ss.s.cacheKey(ss.e, q)
	if cacheable {
		if res, ok := ss.s.cache.get(key); ok {
			return res, nil
		}
	}
	eng, err := ss.s.engine(ss.e)
	if err != nil {
		return nil, err
	}
	res, err := eng.Execute(ctx, q)
	if err == nil && cacheable {
		ss.s.cache.put(key, res)
	}
	return res, err
}

// Info describes the CPG from its precomputed stats section and
// header — no graph decode.
func (ss storeSource) Info() CPGInfo {
	hdr := ss.e.m.Header()
	info := CPGInfo{ID: ss.e.id, Epoch: hdr.Epoch, Degraded: hdr.Degraded}
	st, err := ss.e.m.Stats()
	if err != nil {
		ss.s.logf("provenance: %s: stats section unreadable: %v", ss.e.m.Path(), err)
		return info
	}
	info.SubComputations = st.SubComputations
	info.Threads = st.Threads
	info.Edges = st.ControlEdges + st.SyncEdges + st.DataEdges
	return info
}

// EpochHint reports the file's epoch from the header alone.
func (ss storeSource) EpochHint() uint64 { return ss.e.m.Header().Epoch }

// resultCache is a capacity-bounded LRU of query results. Cached
// *Result values are shared read-only — every consumer (the server's
// JSON encoder) only reads them.
type resultCache struct {
	capacity int

	mu        sync.Mutex
	byKey     map[string]*list.Element
	lru       *list.List // of *cacheSlot
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheSlot struct {
	key string
	res *Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		byKey:    make(map[string]*list.Element, capacity),
		lru:      list.New(),
	}
}

func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheSlot).res, true
}

func (c *resultCache) put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheSlot).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheSlot{key: key, res: res})
	for c.lru.Len() > c.capacity {
		el := c.lru.Back()
		slot := el.Value.(*cacheSlot)
		c.lru.Remove(el)
		delete(c.byKey, slot.key)
		c.evictions++
	}
}

func (c *resultCache) stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Entries:   c.lru.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
