package provenance

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ServerError is a non-2xx API response, carrying the HTTP status so
// callers can tell a missing resource (404: start streaming at epoch 1)
// from a conflict (409: re-read the resume offset) without string
// matching.
type ServerError struct {
	Status int
	Msg    string
}

func (e *ServerError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("provenance: server: %s (HTTP %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("provenance: server returned HTTP %d", e.Status)
}

// serverStatus extracts the HTTP status from a ServerError chain (0
// when err is not a server response).
func serverStatus(err error) int {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Status
	}
	return 0
}

// Client speaks the provenance/v1 HTTP API (inspector-serve, or any
// handler built from NewServer). The zero HTTPClient uses
// http.DefaultClient. cpg-query -remote is a thin wrapper around it.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:7777".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after a retryable failure — a
	// transport error, or HTTP 502/503/504 (the statuses a draining or
	// load-shedding daemon answers with). 0 disables retries: each call
	// issues exactly one request, the pre-hardening behaviour.
	MaxRetries int
	// RetryBase is the first backoff delay (default 100ms). Delays
	// double per attempt with ±50% jitter, capped at 5s; a server
	// Retry-After hint overrides the computed delay, and context
	// cancellation interrupts the wait.
	RetryBase time.Duration
}

// List fetches the served CPGs.
func (c *Client) List(ctx context.Context) ([]CPGInfo, error) {
	var list CPGList
	if err := c.do(ctx, http.MethodGet, "/v1/cpgs", nil, "", &list); err != nil {
		return nil, err
	}
	if list.Version != Version {
		return nil, fmt.Errorf("provenance: server speaks %q, this client %q", list.Version, Version)
	}
	return list.CPGs, nil
}

// Query executes q against the CPG with the given id.
func (c *Client) Query(ctx context.Context, id string, q Query) (*Result, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := c.do(ctx, http.MethodPost, "/v1/cpgs/"+id+"/query", body, "application/json", &res); err != nil {
		return nil, err
	}
	return checkVersion(&res)
}

// Stats fetches the summary of one CPG.
func (c *Client) Stats(ctx context.Context, id string) (*Result, error) {
	var res Result
	if err := c.do(ctx, http.MethodGet, "/v1/cpgs/"+id+"/stats", nil, "", &res); err != nil {
		return nil, err
	}
	return checkVersion(&res)
}

func checkVersion(res *Result) (*Result, error) {
	if res.Version != Version {
		return nil, fmt.Errorf("provenance: server speaks %q, this client %q", res.Version, Version)
	}
	return res, nil
}

// do issues a request with bounded retries and decodes the JSON
// response, surfacing the server's error body on non-2xx statuses.
// Retryable failures (transport errors, 502/503/504) back off
// exponentially with jitter, honoring the server's Retry-After hint and
// the context's cancellation; everything else fails immediately. Every
// client path — queries, ingest streaming, epoch watching — rides this
// one loop, so they share one backoff discipline.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string, out any) error {
	delay := c.RetryBase
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	const maxDelay = 5 * time.Second
	for attempt := 0; ; attempt++ {
		err, retryAfter, retryable := c.doOnce(ctx, method, path, body, contentType, out)
		if err == nil || !retryable || attempt >= c.MaxRetries || ctx.Err() != nil {
			return err
		}
		wait := delay
		if retryAfter > 0 {
			wait = retryAfter
		}
		// ±50% jitter keeps retrying clients from re-converging on the
		// very load spike that shed them.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait)))
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// doOnce issues exactly one request. It reports the server's Retry-After
// hint (0 when absent) and whether the failure is worth retrying.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, contentType string, out any) (err error, retryAfter time.Duration, retryable bool) {
	url := strings.TrimSuffix(c.BaseURL, "/") + path
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err, 0, false
	}
	if body != nil && contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		// Transport-level failures (connection refused, reset) are the
		// textbook retry case — unless the caller's context ended.
		return err, 0, ctx.Err() == nil
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err, 0, ctx.Err() == nil
	}
	if resp.StatusCode != http.StatusOK {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		retryable = resp.StatusCode == http.StatusBadGateway ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusGatewayTimeout
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return &ServerError{Status: resp.StatusCode, Msg: ae.Error}, retryAfter, retryable
		}
		return &ServerError{Status: resp.StatusCode}, retryAfter, retryable
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return nil, 0, false
	}
	return json.Unmarshal(data, out), 0, false
}

// WaitEpoch long-polls the push wire: it returns once the source's
// published epoch reaches min, the server-side wait expires (the
// returned status simply carries the current epoch; re-poll), or the
// source reports Closed. Retries and Retry-After handling are the same
// as for queries.
func (c *Client) WaitEpoch(ctx context.Context, id string, min uint64, wait time.Duration) (*EpochStatus, error) {
	path := "/v1/cpgs/" + id + "/epochs?min=" + strconv.FormatUint(min, 10)
	if wait > 0 {
		path += "&wait=" + wait.String()
	}
	var st EpochStatus
	if err := c.do(ctx, http.MethodGet, path, nil, "", &st); err != nil {
		return nil, err
	}
	if st.Version != Version {
		return nil, fmt.Errorf("provenance: server speaks %q, this client %q", st.Version, Version)
	}
	return &st, nil
}

// IngestOffset fetches a source's resume offset. ok=false with a nil
// error means the aggregator does not know the source: start streaming
// at epoch 1.
func (c *Client) IngestOffset(ctx context.Context, source string) (st *IngestStatus, ok bool, err error) {
	var got IngestStatus
	if err := c.do(ctx, http.MethodGet, "/v1/ingest/"+source, nil, "", &got); err != nil {
		if serverStatus(err) == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	return &got, true, nil
}

// Ingest posts one body of epoch-delta frames (hello + deltas +
// optional seal, encoded with EncodeFrames) to the aggregator. The
// frame body is replayable, so transport failures and 502/503/504
// retry under the shared backoff; the server's dedup makes the retries
// harmless.
func (c *Client) Ingest(ctx context.Context, source string, frames []byte) (*IngestStatus, error) {
	var st IngestStatus
	if err := c.do(ctx, http.MethodPost, "/v1/ingest/"+source, frames, "application/octet-stream", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Export fetches a CPG's full deterministic analysis export — the
// fabric's byte-comparison surface.
func (c *Client) Export(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/v1/cpgs/"+id+"/export", nil, "", &raw); err != nil {
		return nil, err
	}
	return raw, nil
}
