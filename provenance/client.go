package provenance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client speaks the provenance/v1 HTTP API (inspector-serve, or any
// handler built from NewServer). The zero HTTPClient uses
// http.DefaultClient. cpg-query -remote is a thin wrapper around it.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:7777".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

// List fetches the served CPGs.
func (c *Client) List(ctx context.Context) ([]CPGInfo, error) {
	var list CPGList
	if err := c.do(ctx, http.MethodGet, "/v1/cpgs", nil, &list); err != nil {
		return nil, err
	}
	if list.Version != Version {
		return nil, fmt.Errorf("provenance: server speaks %q, this client %q", list.Version, Version)
	}
	return list.CPGs, nil
}

// Query executes q against the CPG with the given id.
func (c *Client) Query(ctx context.Context, id string, q Query) (*Result, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := c.do(ctx, http.MethodPost, "/v1/cpgs/"+id+"/query", body, &res); err != nil {
		return nil, err
	}
	return checkVersion(&res)
}

// Stats fetches the summary of one CPG.
func (c *Client) Stats(ctx context.Context, id string) (*Result, error) {
	var res Result
	if err := c.do(ctx, http.MethodGet, "/v1/cpgs/"+id+"/stats", nil, &res); err != nil {
		return nil, err
	}
	return checkVersion(&res)
}

func checkVersion(res *Result) (*Result, error) {
	if res.Version != Version {
		return nil, fmt.Errorf("provenance: server speaks %q, this client %q", res.Version, Version)
	}
	return res, nil
}

// do issues one request and decodes the JSON response, surfacing the
// server's error body on non-2xx statuses.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	url := strings.TrimSuffix(c.BaseURL, "/") + path
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("provenance: server: %s (HTTP %d)", ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("provenance: server returned HTTP %d", resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}
