package provenance

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/core/cpgbench"
)

// figure1 records the paper's Figure 1 execution (lock handoff
// T0.0 -> T1.0 -> T0.1 with data flow on pages 100/101).
func figure1(t *testing.T) *core.Analysis {
	t.Helper()
	g := core.NewGraph(2)
	lock := g.NewSyncObject("lock", false)
	rel := core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}
	r0, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.NewRecorder(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.OnRead(101)
	r0.OnWrite(100)
	r0.OnWrite(101)
	s0, err := r0.EndSub(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.Release(lock, s0)
	r1.Acquire(lock)
	r1.OnRead(100)
	r1.OnWrite(101)
	s1, err := r1.EndSub(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1.Release(lock, s1)
	r0.Acquire(lock)
	r0.OnRead(101)
	if _, err := r0.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	return g.Analyze()
}

func mustExecute(t *testing.T, e *Engine, q Query) *Result {
	t.Helper()
	res, err := e.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("Execute(%+v): %v", q, err)
	}
	if res.Version != Version {
		t.Fatalf("result version = %q", res.Version)
	}
	if res.Kind != q.Kind {
		t.Fatalf("result kind = %q, want %q", res.Kind, q.Kind)
	}
	return res
}

func TestEngineQueryKinds(t *testing.T) {
	e := NewEngine(figure1(t), EngineOptions{})

	res := mustExecute(t, e, Query{Kind: KindStats})
	if res.Stats == nil || res.Stats.SubComputations != 4 || res.Stats.Threads != 2 {
		t.Errorf("stats = %+v", res.Stats)
	}

	res = mustExecute(t, e, Query{Kind: KindVerify})
	if res.Valid == nil || !*res.Valid || res.Detail != "" {
		t.Errorf("verify = %+v / %q", res.Valid, res.Detail)
	}

	res = mustExecute(t, e, Query{Kind: KindSlice, Target: "T0.1"})
	if !reflect.DeepEqual(res.IDs, []string{"T0.0", "T1.0"}) {
		t.Errorf("slice ids = %v", res.IDs)
	}
	if res.Total != 2 || res.NextCursor != "" {
		t.Errorf("slice total/cursor = %d/%q", res.Total, res.NextCursor)
	}

	res = mustExecute(t, e, Query{Kind: KindTaint, Target: "T0.0"})
	if len(res.IDs) == 0 {
		t.Error("taint found no descendants")
	}

	res = mustExecute(t, e, Query{Kind: KindEdges})
	if res.Total != len(e.Analysis().Edges()) || len(res.Edges) != res.Total {
		t.Errorf("edges total = %d, want %d", res.Total, len(e.Analysis().Edges()))
	}
	// Wire order follows the canonical core order exactly.
	for i, edge := range e.Analysis().Edges() {
		if res.Edges[i].From != edge.From.String() || res.Edges[i].Kind != edge.Kind.String() {
			t.Fatalf("edge %d reordered: %+v vs %+v", i, res.Edges[i], edge)
		}
	}

	page := uint64(101)
	res = mustExecute(t, e, Query{Kind: KindLineage, Target: "T0.1", Page: &page})
	if len(res.Lineages) != 1 || res.Lineages[0].Writer != "T1.0" || res.Lineages[0].Reader != "T0.1" {
		t.Errorf("lineage = %+v", res.Lineages)
	}

	res = mustExecute(t, e, Query{Kind: KindPath, From: "T0.0", To: "T0.1"})
	if len(res.Edges) == 0 || res.Edges[0].From != "T0.0" || res.Edges[len(res.Edges)-1].To != "T0.1" {
		t.Errorf("path = %+v", res.Edges)
	}
	// A pair with no chain is an empty result, not an error.
	res = mustExecute(t, e, Query{Kind: KindPath, From: "T0.1", To: "T0.0"})
	if res.Total != 0 || len(res.Edges) != 0 {
		t.Errorf("reverse path = %+v", res.Edges)
	}
}

func TestEngineFilters(t *testing.T) {
	e := NewEngine(figure1(t), EngineOptions{})

	// Kind filter on edges.
	res := mustExecute(t, e, Query{Kind: KindEdges, EdgeKinds: []string{"sync"}})
	for _, edge := range res.Edges {
		if edge.Kind != "sync" {
			t.Errorf("kind-filtered edges include %+v", edge)
		}
	}
	if res.Total == 0 {
		t.Error("no sync edges found")
	}

	// Thread filter on ids.
	th := 1
	res = mustExecute(t, e, Query{Kind: KindSlice, Target: "T0.1", Thread: &th})
	if !reflect.DeepEqual(res.IDs, []string{"T1.0"}) {
		t.Errorf("thread-filtered slice = %v", res.IDs)
	}

	// Alpha window on ids.
	lo, hi := uint64(1), uint64(1)
	res = mustExecute(t, e, Query{Kind: KindSlice, Target: "T0.1", AlphaMin: &lo, AlphaMax: &hi})
	if len(res.IDs) != 0 {
		t.Errorf("alpha-windowed slice = %v", res.IDs)
	}

	// Page window keeps only data edges carrying a page in range.
	pLo, pHi := uint64(101), uint64(101)
	res = mustExecute(t, e, Query{Kind: KindEdges, PageMin: &pLo, PageMax: &pHi})
	if res.Total == 0 {
		t.Fatal("page-windowed edges empty")
	}
	for _, edge := range res.Edges {
		if edge.Kind != "data" {
			t.Errorf("page window kept %s edge", edge.Kind)
		}
		hit := false
		for _, p := range edge.Pages {
			hit = hit || p == 101
		}
		if !hit {
			t.Errorf("page window kept edge without page 101: %+v", edge)
		}
	}

	// Kind restriction on the slice traversal: only sync+control
	// reachability.
	res = mustExecute(t, e, Query{Kind: KindSlice, Target: "T0.1", EdgeKinds: []string{"sync"}})
	if !reflect.DeepEqual(res.IDs, []string{"T0.0", "T1.0"}) {
		t.Errorf("sync-only slice = %v", res.IDs)
	}
}

func TestEnginePagination(t *testing.T) {
	// A graph big enough for multi-page listings.
	g := cpgbench.BuildRandomGraph(4, 400, 32, 2, 7)
	e := NewEngine(g.Analyze(), EngineOptions{})

	full := mustExecute(t, e, Query{Kind: KindEdges})
	if full.Total < 100 {
		t.Fatalf("scenario too small: %d edges", full.Total)
	}

	// Walk the cursor chain with a small page size and reassemble.
	var walked []Edge
	q := Query{Kind: KindEdges, Limit: 37}
	pages := 0
	for {
		res := mustExecute(t, e, q)
		if res.Total != full.Total {
			t.Fatalf("page total = %d, want %d", res.Total, full.Total)
		}
		if len(res.Edges) > 37 {
			t.Fatalf("page overflow: %d", len(res.Edges))
		}
		walked = append(walked, res.Edges...)
		pages++
		if res.NextCursor == "" {
			break
		}
		q.Cursor = res.NextCursor
	}
	if pages < 3 {
		t.Errorf("pagination degenerate: %d pages", pages)
	}
	if !reflect.DeepEqual(walked, full.Edges) {
		t.Error("cursor walk does not reassemble the full listing")
	}

	// MaxResults clamps any request.
	capped := NewEngine(g.Analyze(), EngineOptions{MaxResults: 10})
	res := mustExecute(t, capped, Query{Kind: KindEdges, Limit: 100000})
	if len(res.Edges) != 10 || res.NextCursor == "" {
		t.Errorf("MaxResults clamp: %d edges, cursor %q", len(res.Edges), res.NextCursor)
	}
	// ids paginate the same way.
	var target core.SubID
	for _, sc := range g.Subs() {
		if sc.ID.Thread == 0 {
			target = sc.ID
		}
	}
	res = mustExecute(t, capped, Query{Kind: KindSlice, Target: target.String()})
	if res.Total > 10 && (len(res.IDs) != 10 || res.NextCursor == "") {
		t.Errorf("slice clamp: %d/%d ids, cursor %q", len(res.IDs), res.Total, res.NextCursor)
	}
}

func TestEngineBadQueries(t *testing.T) {
	e := NewEngine(figure1(t), EngineOptions{})
	bad := []Query{
		{Kind: "nonsense"},
		{Kind: KindSlice},                                     // missing target
		{Kind: KindSlice, Target: "x"},                        // malformed target
		{Kind: KindPath, From: "T0.0"},                        // missing to
		{Kind: KindLineage, Target: "T0.1"},                   // missing page
		{Kind: KindEdges, EdgeKinds: []string{"bogus"}},       // unknown kind name
		{Kind: KindEdges, Cursor: "???"},                      // unrecognized cursor
		{Kind: KindSlice, Target: "T0.1", Cursor: "v2:boooo"}, // wrong cursor version
	}
	for _, q := range bad {
		if _, err := e.Execute(context.Background(), q); !errors.Is(err, ErrBadQuery) {
			t.Errorf("Execute(%+v) err = %v, want ErrBadQuery", q, err)
		}
	}

	// Unknown-but-well-formed targets are empty results, not errors.
	res := mustExecute(t, e, Query{Kind: KindSlice, Target: "T7.9"})
	if res.Total != 0 {
		t.Errorf("unknown target slice total = %d", res.Total)
	}
}

func TestEngineCancellation(t *testing.T) {
	g := cpgbench.BuildRandomGraph(4, 4000, 16, 1, 44)
	e := NewEngine(g.Analyze(), EngineOptions{})
	var target core.SubID
	for _, sc := range g.Subs() {
		if sc.ID.Thread == 0 {
			target = sc.ID
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Execute(ctx, Query{Kind: KindSlice, Target: target.String()}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled slice err = %v", err)
	}
	if _, err := e.Execute(ctx, Query{Kind: KindVerify}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled verify err = %v", err)
	}
}
