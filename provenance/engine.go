package provenance

import (
	"context"
	"sync"

	"github.com/repro/inspector/internal/core"
)

// EngineOptions configure an Engine.
type EngineOptions struct {
	// MaxResults caps the page size of any listing result (ids, edges,
	// lineages). 0 means unlimited. A Query.Limit above the cap is
	// clamped to it; results beyond the page are reachable through the
	// cursor.
	MaxResults int

	// FoldWorkers caps the worker goroutines a LiveEngine's epoch folds
	// fan data-edge derivation across: 0 means GOMAXPROCS, 1 forces the
	// serial path. Engines over completed analyses ignore it.
	FoldWorkers int

	// FoldWorkerHook, when set, runs at the start of every fold
	// derivation worker of a LiveEngine with the worker's index (fault
	// injection: the slow-fold point fires here). A panic escaping the
	// hook surfaces like any fold panic — the last good epoch stays
	// served. Engines over completed analyses ignore it.
	FoldWorkerHook func(worker int)
}

// Engine executes Queries against one completed Analysis. It performs
// only reads, so one Engine serves any number of concurrent goroutines —
// the property inspector-serve builds on.
type Engine struct {
	a    *core.Analysis
	opts EngineOptions

	// statsOnce caches the graph summary: the Analysis is immutable, so
	// repeated stats queries (monitoring clients poll them) cost O(1)
	// after the first.
	statsOnce sync.Once
	statsVal  *Stats
}

// NewEngine wraps a completed Analysis. The Analysis must not be
// mutated afterwards (graphs still being recorded should be analyzed
// again per query instead).
func NewEngine(a *core.Analysis, opts EngineOptions) *Engine {
	return &Engine{a: a, opts: opts}
}

// Analysis returns the wrapped Analysis.
func (e *Engine) Analysis() *core.Analysis { return e.a }

// Epoch returns the analysis epoch this engine serves: 0 for a
// post-mortem batch analysis, ≥ 1 for a live fold (see LiveEngine).
func (e *Engine) Epoch() uint64 { return e.a.Epoch() }

// Execute answers one query. Malformed queries fail with an error
// wrapping ErrBadQuery; a canceled or expired context surfaces as that
// context's error with the traversal stopped early.
func (e *Engine) Execute(ctx context.Context, q Query) (*Result, error) {
	res := &Result{Version: Version, Kind: q.Kind, Epoch: e.a.Epoch(), Degraded: e.a.Degraded()}
	offset, err := decodeCursor(q.Cursor)
	if err != nil {
		return nil, err
	}
	kinds, err := parseEdgeKinds(q.EdgeKinds)
	if err != nil {
		return nil, err
	}

	switch q.Kind {
	case KindStats:
		st := *e.stats() // copy: callers must not reach the cache
		res.Stats = &st
		res.Total = 1

	case KindVerify:
		valid := true
		if err := e.a.VerifyCtx(ctx); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			valid = false
			res.Detail = err.Error()
		}
		res.Valid = &valid
		res.Total = 1

	case KindEdges:
		// Filter on the core representation and materialize wire form
		// (string conversions) only for the returned page, so paging
		// through a huge listing costs one scan per page, not one full
		// re-materialization.
		var matched []core.Edge
		for _, edge := range e.a.Edges() {
			if !edgeKindIn(edge.Kind, kinds) || !q.matchEdge(edge) {
				continue
			}
			matched = append(matched, edge)
		}
		res.Total = len(matched)
		page, next := paginate(matched, offset, e.pageLimit(q.Limit))
		res.Edges, res.NextCursor = wireEdges(page), next

	case KindSlice, KindTaint:
		id, err := requireSubID(q.Target, "target")
		if err != nil {
			return nil, err
		}
		var ids []core.SubID
		if q.Kind == KindSlice {
			ids, err = e.a.AncestorsCtx(ctx, id, kinds...)
		} else {
			// Taint is forward *data* flow by definition; the kind
			// filter does not apply.
			ids, err = e.a.TaintedByCtx(ctx, id)
		}
		if err != nil {
			return nil, err
		}
		matched := ids[:0:0]
		for _, id := range ids {
			if q.matchID(id) {
				matched = append(matched, id)
			}
		}
		res.Total = len(matched)
		page, next := paginate(matched, offset, e.pageLimit(q.Limit))
		out := make([]string, len(page))
		for i, id := range page {
			out[i] = id.String()
		}
		if len(out) == 0 {
			out = nil
		}
		res.IDs, res.NextCursor = out, next

	case KindLineage:
		id, err := requireSubID(q.Target, "target")
		if err != nil {
			return nil, err
		}
		if q.Page == nil {
			return nil, badQueryf("lineage query needs a page")
		}
		lins, err := e.a.PageLineageCtx(ctx, *q.Page, id)
		if err != nil {
			return nil, err
		}
		res.Total = len(lins)
		page, next := paginate(lins, offset, e.pageLimit(q.Limit))
		out := make([]LineageEntry, 0, len(page))
		for _, l := range page {
			entry := LineageEntry{
				Page:      l.Page,
				Reader:    q.Target,
				Writer:    l.Writer.String(),
				ViaObject: l.ViaObject,
			}
			for _, u := range l.Upstream {
				entry.Upstream = append(entry.Upstream, u.String())
			}
			out = append(out, entry)
		}
		if len(out) == 0 {
			out = nil
		}
		res.Lineages, res.NextCursor = out, next

	case KindPath:
		from, err := requireSubID(q.From, "from")
		if err != nil {
			return nil, err
		}
		to, err := requireSubID(q.To, "to")
		if err != nil {
			return nil, err
		}
		chain, err := e.a.PathCtx(ctx, from, to, kinds...)
		if err != nil {
			return nil, err
		}
		res.Total = len(chain)
		page, next := paginate(chain, offset, e.pageLimit(q.Limit))
		res.Edges, res.NextCursor = wireEdges(page), next

	default:
		return nil, badQueryf("unknown query kind %q", q.Kind)
	}
	return res, nil
}

// stats summarizes the wrapped graph (the same aggregation the stats
// subcommand always printed), computed once and cached — the Analysis
// never changes.
func (e *Engine) stats() *Stats {
	e.statsOnce.Do(func() { e.statsVal = e.computeStats() })
	return e.statsVal
}

func (e *Engine) computeStats() *Stats {
	st := &Stats{}
	threads := map[int]bool{}
	// The analysis prefix, not Graph.Subs: during a live run the graph
	// may already hold vertices this epoch does not cover, and the stats
	// must describe the epoch the response's cursors refer to.
	for _, sc := range e.a.Subs() {
		st.SubComputations++
		threads[sc.ID.Thread] = true
		st.Thunks += len(sc.Thunks)
		st.ReadSetPages += sc.ReadSet.Len()
		st.WriteSetPages += sc.WriteSet.Len()
	}
	st.Threads = len(threads)
	comp := e.a.Completeness()
	st.GapThreads = comp.GapThreads
	st.GapIntervals = comp.GapIntervals
	st.LostTraceBytes = comp.LostBytes
	for _, edge := range e.a.Edges() {
		switch edge.Kind {
		case core.EdgeControl:
			st.ControlEdges++
		case core.EdgeSync:
			st.SyncEdges++
		case core.EdgeData:
			st.DataEdges++
		}
	}
	return st
}

// pageLimit resolves a query's limit against the engine cap. 0 means
// unlimited.
func (e *Engine) pageLimit(limit int) int {
	if limit < 0 {
		limit = 0
	}
	if e.opts.MaxResults > 0 && (limit == 0 || limit > e.opts.MaxResults) {
		return e.opts.MaxResults
	}
	return limit
}

// paginate slices one page out of the deterministic full sequence and
// returns the cursor to the next page ("" on the last).
func paginate[T any](items []T, offset, limit int) ([]T, string) {
	if offset >= len(items) {
		return nil, ""
	}
	items = items[offset:]
	if limit <= 0 || len(items) <= limit {
		return items, ""
	}
	return items[:limit], encodeCursor(offset + limit)
}

// requireSubID parses a mandatory SubID field.
func requireSubID(s, field string) (core.SubID, error) {
	if s == "" {
		return core.SubID{}, badQueryf("missing %s sub-computation id", field)
	}
	id, err := ParseSubID(s)
	if err != nil {
		return core.SubID{}, badQueryf("%v", err)
	}
	return id, nil
}

// parseEdgeKinds maps the wire names to core kinds.
func parseEdgeKinds(names []string) ([]core.EdgeKind, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]core.EdgeKind, 0, len(names))
	for _, n := range names {
		k, err := ParseEdgeKind(n)
		if err != nil {
			return nil, badQueryf("%v", err)
		}
		out = append(out, k)
	}
	return out, nil
}

// edgeKindIn reports whether k passes the kind filter (empty = all).
func edgeKindIn(k core.EdgeKind, kinds []core.EdgeKind) bool {
	if len(kinds) == 0 {
		return true
	}
	for _, want := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

// hasVertexFilter reports whether the query constrains vertices.
func (q *Query) hasVertexFilter() bool {
	return q.Thread != nil || q.AlphaMin != nil || q.AlphaMax != nil
}

// matchID applies the thread/alpha-window filter to one vertex.
func (q *Query) matchID(id core.SubID) bool {
	if q.Thread != nil && id.Thread != *q.Thread {
		return false
	}
	if q.AlphaMin != nil && id.Alpha < *q.AlphaMin {
		return false
	}
	if q.AlphaMax != nil && id.Alpha > *q.AlphaMax {
		return false
	}
	return true
}

// matchEdge applies the vertex filter (an edge passes when either
// endpoint does) and the page window (data edges carrying a page inside
// it; edges without pages drop when a window is set).
func (q *Query) matchEdge(e core.Edge) bool {
	if q.hasVertexFilter() && !q.matchID(e.From) && !q.matchID(e.To) {
		return false
	}
	if q.PageMin != nil || q.PageMax != nil {
		hit := false
		for _, p := range e.Pages {
			if (q.PageMin == nil || p >= *q.PageMin) && (q.PageMax == nil || p <= *q.PageMax) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// wireEdge converts a core edge to wire form.
func wireEdge(e core.Edge) Edge {
	return Edge{
		From:   e.From.String(),
		To:     e.To.String(),
		Kind:   e.Kind.String(),
		Object: e.Object,
		Pages:  e.Pages,
	}
}

// wireEdges converts one result page (nil in, nil out, so empty pages
// keep omitting the field on the wire).
func wireEdges(edges []core.Edge) []Edge {
	if len(edges) == 0 {
		return nil
	}
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = wireEdge(e)
	}
	return out
}
