package provenance

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/wire"
)

// The ingest side of the distributed fabric: recorder processes stream
// CRC-checksummed epoch-delta frames (the journal's record format, see
// internal/wire) over HTTP, and the aggregator folds each source's
// deltas through the same IncrementalAnalyzer path a local recording
// uses. The correctness anchor is replay equivalence: the per-source
// CPG served here is byte-for-byte the one the recorder's own fold
// produced at the same epoch.
//
// The resume contract, pinned by the conformance tests:
//
//   - Deltas are strictly sequential, so "next expected epoch" is the
//     whole resume offset. GET /v1/ingest/{source} returns it; an
//     unknown source is 404 (start at epoch 1).
//   - A delta whose epoch is already applied is acknowledged and
//     skipped (first write wins); re-sending a prefix is always safe.
//   - A delta that skips ahead is rejected with 409 and applies
//     nothing; the client re-reads the offset and resumes.
//   - A delta that fails validation poisons the source: the last good
//     epoch stays served, marked degraded, and every later ingest is
//     refused. Malformed input is never silently wrong.

// Ingest error classes, surfaced as typed errors so the HTTP layer maps
// them to distinct statuses (and clients can tell retryable from
// fatal).
var (
	// ErrEpochGap reports a delta beyond the next expected epoch.
	ErrEpochGap = errors.New("provenance: delta skips ahead of the next expected epoch")
	// ErrSourceSealed reports ingest after a seal frame.
	ErrSourceSealed = errors.New("provenance: source is sealed")
	// ErrSourceDegraded reports ingest after a poisoning delta.
	ErrSourceDegraded = errors.New("provenance: source is degraded")
	// ErrRunConflict reports a hello whose run identity does not match
	// the source's bound run.
	ErrRunConflict = errors.New("provenance: run identity conflict")
)

// IngestStatus is the ingest wire status: the GET /v1/ingest/{source}
// offset document and the POST response. NextEpoch is the whole resume
// contract — the only epoch the aggregator will accept next.
type IngestStatus struct {
	Version string `json:"version"`
	Source  string `json:"source"`
	RunID   string `json:"run_id,omitempty"`
	// NextEpoch is the next epoch the source will apply (last applied
	// epoch + 1; 1 for a fresh source).
	NextEpoch uint64 `json:"next_epoch"`
	// Accepted and Duplicates count this POST's applied and
	// acknowledged-but-already-durable deltas (POST responses only).
	Accepted   int  `json:"accepted,omitempty"`
	Duplicates int  `json:"duplicates,omitempty"`
	Sealed     bool `json:"sealed,omitempty"`
	Degraded   bool `json:"degraded,omitempty"`
}

// EpochStatus is the GET /v1/cpgs/{id}/epochs response body: the
// newest published epoch, and whether the source can still advance.
// Closed=true means no epoch beyond Epoch will ever be published (the
// source is post-mortem, sealed, or degraded).
type EpochStatus struct {
	Version string `json:"version"`
	ID      string `json:"id"`
	Epoch   uint64 `json:"epoch"`
	Closed  bool   `json:"closed,omitempty"`
}

// IngestOptions configure an IngestHub.
type IngestOptions struct {
	// Engine configures the per-source query engines (result caps, fold
	// worker fan-out).
	Engine EngineOptions
	// MaxSources bounds concurrently tracked sources (default 256).
	MaxSources int
	// MaxFrameBytes bounds one frame's payload (default
	// wire.DefaultMaxFrameBytes). The length prefix is untrusted.
	MaxFrameBytes int64
	// MaxBodyBytes bounds one ingest request body (default 1 GiB).
	MaxBodyBytes int64
	// MaxThreads bounds a hello's thread-slot capacity (default 1024);
	// the aggregator allocates a graph that wide per source.
	MaxThreads int
}

func (o IngestOptions) maxSources() int {
	if o.MaxSources > 0 {
		return o.MaxSources
	}
	return 256
}

func (o IngestOptions) maxFrame() uint32 {
	if o.MaxFrameBytes > 0 {
		return uint32(o.MaxFrameBytes)
	}
	return wire.DefaultMaxFrameBytes
}

func (o IngestOptions) maxBody() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	return 1 << 30
}

func (o IngestOptions) maxThreads() int {
	if o.MaxThreads > 0 {
		return o.MaxThreads
	}
	return 1024
}

// IngestHub tracks the sources an aggregating Server has accepted
// streams for. Sources appear dynamically (the first hello creates
// one) and are served by the same Server alongside its static and live
// sources.
type IngestHub struct {
	opts IngestOptions

	mu      sync.Mutex
	sources map[string]*IngestSource
}

// NewIngestHub builds an empty hub.
func NewIngestHub(opts IngestOptions) *IngestHub {
	return &IngestHub{opts: opts, sources: make(map[string]*IngestSource)}
}

// Source returns the named ingest source.
func (h *IngestHub) Source(name string) (*IngestSource, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	src, ok := h.sources[name]
	return src, ok
}

// IDs returns the tracked source names, sorted.
func (h *IngestHub) IDs() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.sources))
	for name := range h.sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// bind resolves a hello against the hub: it returns the existing source
// when the run identity matches, creates one when the name is new, and
// rejects conflicts.
func (h *IngestHub) bind(name string, hello wire.Hello) (*IngestSource, error) {
	if hello.RunID == "" {
		return nil, fmt.Errorf("provenance: hello carries no run id")
	}
	if hello.Threads < 1 || hello.Threads > h.opts.maxThreads() {
		return nil, fmt.Errorf("provenance: hello thread capacity %d out of range [1,%d]", hello.Threads, h.opts.maxThreads())
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if src, ok := h.sources[name]; ok {
		if src.hello.RunID != hello.RunID || src.hello.Threads != hello.Threads {
			return nil, fmt.Errorf("%w: source %q is bound to run %s (%d threads), hello names run %s (%d threads)",
				ErrRunConflict, name, src.hello.RunID, src.hello.Threads, hello.RunID, hello.Threads)
		}
		return src, nil
	}
	if len(h.sources) >= h.opts.maxSources() {
		return nil, fmt.Errorf("provenance: ingest source limit reached (%d)", h.opts.maxSources())
	}
	src := newIngestSource(name, hello, h.opts.Engine)
	h.sources[name] = src
	return src, nil
}

// IngestSource is one recorder's CPG as the aggregator rebuilds it:
// a graph plus an IncrementalAnalyzer fed by ApplyDelta, folded once
// per applied delta so analyzer epochs and delta epochs coincide — the
// invariant behind byte-identical exports.
type IngestSource struct {
	name  string
	hello wire.Hello
	eopts EngineOptions

	// cur is the newest published epoch's engine; epoch mirrors the
	// last applied delta epoch for lock-free hinting.
	cur   atomic.Pointer[Engine]
	epoch atomic.Uint64

	mu       sync.Mutex
	g        *core.Graph
	inc      *core.IncrementalAnalyzer
	lastLens []int
	sealed   bool
	poison   error
	// watch is replaced (and the old one closed) on every publish;
	// closed is closed once no further epochs can arrive (seal or
	// poison). Mirrors LiveEngine's subscription machinery.
	watch     chan struct{}
	closedCh  chan struct{}
	closeOnce sync.Once
}

func newIngestSource(name string, hello wire.Hello, eopts EngineOptions) *IngestSource {
	g := core.NewGraph(hello.Threads)
	inc := core.NewIncrementalAnalyzer(g)
	inc.SetFoldWorkers(eopts.FoldWorkers)
	s := &IngestSource{
		name:     name,
		hello:    hello,
		eopts:    eopts,
		g:        g,
		inc:      inc,
		watch:    make(chan struct{}),
		closedCh: make(chan struct{}),
	}
	// Serve an empty epoch-0 analysis until the first delta arrives, so
	// Engine never returns nil. The analyzer itself stays at epoch 0:
	// its first fold must land on delta epoch 1.
	s.cur.Store(NewEngine(core.NewGraph(hello.Threads).Analyze(), eopts))
	return s
}

// Engine returns the newest published epoch's engine (EngineSource).
func (s *IngestSource) Engine() *Engine { return s.cur.Load() }

// EpochHint returns the last applied delta epoch without materializing
// anything (epochHinter).
func (s *IngestSource) EpochHint() uint64 { return s.epoch.Load() }

// RunID returns the run identity the source is bound to.
func (s *IngestSource) RunID() string { return s.hello.RunID }

// Status summarizes the source for the offset endpoint.
func (s *IngestSource) Status() IngestStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return IngestStatus{
		Version:   Version,
		Source:    s.name,
		RunID:     s.hello.RunID,
		NextEpoch: s.epoch.Load() + 1,
		Sealed:    s.sealed,
		Degraded:  s.poison != nil,
	}
}

// apply ingests one delta under the resume contract. It reports whether
// the delta advanced the source (false = duplicate, acknowledged and
// skipped). A validation failure poisons the source and is returned.
func (s *IngestSource) apply(d *core.EpochDelta) (applied bool, err error) {
	if d == nil {
		return false, fmt.Errorf("core: nil epoch delta")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poison != nil {
		return false, fmt.Errorf("%w: %v", ErrSourceDegraded, s.poison)
	}
	cur := s.epoch.Load()
	if d.Epoch <= cur {
		// Duplicate delivery (a replayed prefix, a retried batch): the
		// epoch is already durable here; first write wins.
		return false, nil
	}
	if s.sealed {
		return false, fmt.Errorf("%w: source %q sealed at epoch %d", ErrSourceSealed, s.name, cur)
	}
	if d.Epoch != cur+1 {
		return false, fmt.Errorf("%w: got epoch %d, want %d", ErrEpochGap, d.Epoch, cur+1)
	}
	if err := core.ApplyDelta(s.g, d); err != nil {
		// ApplyDelta is atomic, so the graph still holds exactly the
		// last good epoch. Latch the poison, mark the loss the way
		// journal recovery marks a torn tail, and publish the degraded
		// epoch so queries stop claiming completeness.
		s.poison = err
		for t, n := range s.lastLens {
			if n > 0 {
				s.g.AddGap(t, core.Gap{FromAlpha: uint64(n - 1), ToAlpha: uint64(n), Kind: core.GapTruncated})
			}
		}
		s.publishLocked(s.inc.Fold())
		s.closeOnce.Do(func() { close(s.closedCh) })
		return false, err
	}
	a := s.inc.Fold()
	s.lastLens = d.Lens
	s.epoch.Store(d.Epoch)
	s.publishLocked(a)
	return true, nil
}

// seal records the clean end of the stream. Sealing is idempotent for a
// matching final epoch.
func (s *IngestSource) seal(finalEpoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poison != nil {
		return fmt.Errorf("%w: %v", ErrSourceDegraded, s.poison)
	}
	cur := s.epoch.Load()
	if finalEpoch != cur {
		return fmt.Errorf("%w: seal names epoch %d, source is at %d", ErrEpochGap, finalEpoch, cur)
	}
	if s.sealed {
		return nil
	}
	s.sealed = true
	s.closeOnce.Do(func() { close(s.closedCh) })
	return nil
}

// publishLocked installs the engine for a freshly folded epoch and
// wakes WaitEpoch callers. Callers hold s.mu.
func (s *IngestSource) publishLocked(a *core.Analysis) {
	s.cur.Store(NewEngine(a, s.eopts))
	close(s.watch)
	s.watch = make(chan struct{})
}

// WaitEpoch blocks until the published epoch reaches min (returning the
// epoch that satisfied it) or ctx is done (returning the newest epoch
// alongside ctx's error). Once the source is sealed or poisoned it
// returns ErrLiveClosed for epochs that will never arrive — the same
// contract as LiveEngine.WaitEpoch, so the push wire serves both.
func (s *IngestSource) WaitEpoch(ctx context.Context, min uint64) (uint64, error) {
	for {
		s.mu.Lock()
		w := s.watch
		s.mu.Unlock()
		if e := s.epoch.Load(); e >= min {
			return e, nil
		}
		select {
		case <-w:
		case <-ctx.Done():
			return s.epoch.Load(), ctx.Err()
		case <-s.closedCh:
			if e := s.epoch.Load(); e >= min {
				return e, nil
			}
			return s.epoch.Load(), ErrLiveClosed
		}
	}
}
