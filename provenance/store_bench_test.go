package provenance_test

// The bounded-memory store benchmark suite. Scenario bodies live in
// provenance/storebench — shared verbatim with `inspector-bench
// -experiment cpg`, which snapshots them into the committed
// BENCH_cpg.json. This file is an external test package because
// storebench imports provenance.

import (
	"strings"
	"testing"

	"github.com/repro/inspector/provenance/storebench"
)

// BenchmarkStore runs every store scenario as a subtest
// (BenchmarkStore/n16/cold, .../warm, n256 likewise). Cold rounds pay
// mmap-backed decode under LRU eviction; warm rounds hit the
// content-addressed result cache. Each reports p50_ns/p99_ns/resident_B
// alongside ns/op.
func BenchmarkStore(b *testing.B) {
	for _, c := range storebench.Cases() {
		b.Run(strings.TrimPrefix(c.Name, "Store/"), func(b *testing.B) {
			b.ReportAllocs()
			c.Fn(b)
		})
	}
}
