package provenance

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/core/cpgbench"
)

// newTestServer serves the Figure 1 graph under id "fig1" and a larger
// random graph under id "dense".
func newTestServer(t *testing.T, opts ServerOptions) (*Server, *httptest.Server) {
	t.Helper()
	engines := map[string]*Engine{
		"fig1":  NewEngine(figure1(t), EngineOptions{}),
		"dense": NewEngine(cpgbench.BuildRandomGraph(4, 1000, 24, 2, 9).Analyze(), EngineOptions{}),
	}
	s := NewServer(engines, opts)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestServerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, ServerOptions{})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	cpgs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpgs) != 2 || cpgs[0].ID != "dense" || cpgs[1].ID != "fig1" {
		t.Fatalf("list = %+v", cpgs)
	}
	if cpgs[1].SubComputations != 4 || cpgs[1].Threads != 2 {
		t.Errorf("fig1 info = %+v", cpgs[1])
	}

	// Every query kind round-trips the wire and matches local execution.
	local := NewEngine(figure1(t), EngineOptions{})
	page := uint64(101)
	queries := []Query{
		{Kind: KindStats},
		{Kind: KindVerify},
		{Kind: KindEdges},
		{Kind: KindEdges, EdgeKinds: []string{"data"}},
		{Kind: KindSlice, Target: "T0.1"},
		{Kind: KindTaint, Target: "T0.0"},
		{Kind: KindLineage, Target: "T0.1", Page: &page},
		{Kind: KindPath, From: "T0.0", To: "T0.1"},
	}
	for _, q := range queries {
		want, err := local.Execute(ctx, q)
		if err != nil {
			t.Fatalf("local %+v: %v", q, err)
		}
		got, err := c.Query(ctx, "fig1", q)
		if err != nil {
			t.Fatalf("remote %+v: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("remote result diverges for %+v:\n got %+v\nwant %+v", q, got, want)
		}
	}

	// Stats endpoint matches the stats query.
	st, err := c.Stats(ctx, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	wantSt, _ := local.Execute(ctx, Query{Kind: KindStats})
	if !reflect.DeepEqual(st, wantSt) {
		t.Errorf("GET stats = %+v, want %+v", st, wantSt)
	}
}

func TestServerErrors(t *testing.T) {
	_, ts := newTestServer(t, ServerOptions{})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	// Unknown CPG id: 404 surfaced with the server's message.
	if _, err := c.Query(ctx, "nope", Query{Kind: KindStats}); err == nil ||
		!strings.Contains(err.Error(), "unknown cpg") {
		t.Errorf("unknown cpg err = %v", err)
	}
	if _, err := c.Stats(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "unknown cpg") {
		t.Errorf("unknown cpg stats err = %v", err)
	}

	// Malformed query: 400.
	if _, err := c.Query(ctx, "fig1", Query{Kind: "wat"}); err == nil ||
		!strings.Contains(err.Error(), "bad query") {
		t.Errorf("bad kind err = %v", err)
	}

	// Malformed body: 400.
	resp, err := http.Post(ts.URL+"/v1/cpgs/fig1/query", "application/json",
		strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated body status = %d", resp.StatusCode)
	}
}

func TestServerTimeoutCancelsTraversal(t *testing.T) {
	// A deadline far below the dense graph's slice cost must cancel the
	// in-flight closure traversal and surface 504 — the observable proof
	// that a request deadline reaches internal/core, not just the
	// response writer.
	_, ts := newTestServer(t, ServerOptions{Timeout: time.Nanosecond})
	c := &Client{BaseURL: ts.URL}

	var target core.SubID
	dense := cpgbench.BuildRandomGraph(4, 1000, 24, 2, 9)
	for _, sc := range dense.Subs() {
		if sc.ID.Thread == 0 {
			target = sc.ID
		}
	}
	_, err := c.Query(context.Background(), "dense", Query{Kind: KindSlice, Target: target.String()})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("timed-out query err = %v", err)
	}
	var probe struct {
		Error string `json:"error"`
	}
	resp, herr := http.Get(ts.URL + "/v1/cpgs/dense/stats")
	if herr == nil {
		defer resp.Body.Close()
		_ = json.NewDecoder(resp.Body).Decode(&probe)
		if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
			t.Errorf("stats under deadline status = %d (%s)", resp.StatusCode, probe.Error)
		}
	}
}

// TestServerConcurrentClients holds the acceptance bar: at least 32
// in-flight queries against one shared immutable Analysis, race-free
// (CI runs this package under -race) and all agreeing with local
// execution.
func TestServerConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, ServerOptions{})
	ctx := context.Background()

	dense := cpgbench.BuildRandomGraph(4, 1000, 24, 2, 9)
	var target core.SubID
	for _, sc := range dense.Subs() {
		if sc.ID.Thread == 0 {
			target = sc.ID
		}
	}
	local := NewEngine(dense.Analyze(), EngineOptions{})
	page := uint64(3)
	queries := []Query{
		{Kind: KindSlice, Target: target.String()},
		{Kind: KindTaint, Target: "T1.0"},
		{Kind: KindLineage, Target: target.String(), Page: &page},
		{Kind: KindPath, From: "T1.0", To: target.String()},
		{Kind: KindEdges, EdgeKinds: []string{"data"}, Limit: 50},
		{Kind: KindStats},
		{Kind: KindVerify},
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		w, err := local.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	const clients = 48
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &Client{BaseURL: ts.URL}
			for j := 0; j < 4; j++ {
				qi := (i + j) % len(queries)
				got, err := c.Query(ctx, "dense", queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[qi]) {
					errs <- &mismatchError{}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent remote result diverged from local" }
