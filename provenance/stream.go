package provenance

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/wire"
)

// The recorder side of the fabric: a StreamRecorder hangs off the
// threading runtime's commit hook exactly like journal.Recorder — fold
// an epoch delta every N seals — but ships the deltas to an aggregator
// instead of (or alongside) a local journal. Recording never blocks on
// the network: folds enqueue, a sender goroutine batches uploads, and a
// dead aggregator costs queue memory, not workload progress. The
// journal stays the durability anchor — after a recorder SIGKILL,
// inspector-recover -stream replays the journal's deltas and the
// aggregator's dedup makes the resend converge.

// EncodeFrames builds one ingest request body: the hello, then the
// deltas in epoch order, then the optional seal. BaseEpoch is stamped
// from the first delta.
func EncodeFrames(hello wire.Hello, deltas []*core.EpochDelta, seal *wire.Seal) ([]byte, error) {
	if len(deltas) > 0 {
		hello.BaseEpoch = deltas[0].Epoch
	}
	buf, err := wire.AppendFrame(nil, wire.KindHeader, &hello)
	if err != nil {
		return nil, err
	}
	for _, d := range deltas {
		if buf, err = wire.AppendFrame(buf, wire.KindDelta, d); err != nil {
			return nil, err
		}
	}
	if seal != nil {
		if buf, err = wire.AppendFrame(buf, wire.KindSeal, seal); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// UploadDeltas streams a recorded delta sequence to an aggregator in
// batches — the journal-replay resume path. The server's dedup skips
// epochs it already holds, so uploading from epoch 1 after a partial
// earlier stream is safe and cheap. The returned status is the final
// batch's, with Accepted and Duplicates accumulated across the whole
// upload.
func UploadDeltas(ctx context.Context, c *Client, source string, hello wire.Hello, deltas []*core.EpochDelta, batch int, seal *wire.Seal) (*IngestStatus, error) {
	if batch <= 0 {
		batch = 64
	}
	if len(deltas) == 0 {
		frames, err := EncodeFrames(hello, nil, seal)
		if err != nil {
			return nil, err
		}
		return c.Ingest(ctx, source, frames)
	}
	var last *IngestStatus
	var accepted, dups int
	for start := 0; start < len(deltas); start += batch {
		end := start + batch
		if end > len(deltas) {
			end = len(deltas)
		}
		var s *wire.Seal
		if end == len(deltas) {
			s = seal
		}
		frames, err := EncodeFrames(hello, deltas[start:end], s)
		if err != nil {
			return nil, err
		}
		if last, err = c.Ingest(ctx, source, frames); err != nil {
			return nil, err
		}
		accepted += last.Accepted
		dups += last.Duplicates
	}
	last.Accepted, last.Duplicates = accepted, dups
	return last, nil
}

// StreamOptions configure a StreamRecorder.
type StreamOptions struct {
	// Source names the per-source CPG on the aggregator (required;
	// [A-Za-z0-9._-]{1,128}).
	Source string
	// RunID binds the stream to a run identity (required). Use the same
	// id for the journal when both are active, so a journal-based
	// resume matches the aggregator's binding.
	RunID string
	// App names the workload (informational).
	App string
	// Every folds an epoch delta every N commit seals (default 1).
	Every uint64
	// Batch bounds deltas per POST (default 64).
	Batch int
	// MaxResyncs bounds consecutive offset re-reads after upload
	// failures before the sender latches a terminal error (default 8).
	// A successful upload resets the count.
	MaxResyncs int
	// RequestTimeout bounds one upload attempt including the client's
	// internal retries (default 60s).
	RequestTimeout time.Duration
	// OnEpoch observes every folded epoch (analysis + delta), before it
	// is queued for upload. Runs on the recording goroutine.
	OnEpoch func(*core.Analysis, *core.EpochDelta)
}

func (o StreamOptions) every() uint64 {
	if o.Every > 0 {
		return o.Every
	}
	return 1
}

func (o StreamOptions) batch() int {
	if o.Batch > 0 {
		return o.Batch
	}
	return 64
}

func (o StreamOptions) maxResyncs() int {
	if o.MaxResyncs > 0 {
		return o.MaxResyncs
	}
	return 8
}

func (o StreamOptions) requestTimeout() time.Duration {
	if o.RequestTimeout > 0 {
		return o.RequestTimeout
	}
	return 60 * time.Second
}

// StreamRecorder folds the live graph into epoch deltas on the commit
// path and uploads them asynchronously. Its own IncrementalAnalyzer
// makes it the in-process reference for the aggregator's folds: after
// Close, Analysis() is byte-for-byte what the aggregator serves at the
// same epoch.
type StreamRecorder struct {
	c     *Client
	opts  StreamOptions
	hello wire.Hello

	mu      sync.Mutex
	inc     *core.IncrementalAnalyzer
	seals   uint64
	epoch   uint64
	lastA   *core.Analysis
	pending []*core.EpochDelta
	sendErr error
	closed  bool

	notify     chan struct{}
	done       chan struct{}
	senderDone chan struct{}
	ctx        context.Context
	cancel     context.CancelFunc
}

// NewStreamRecorder builds a recorder streaming g's epoch deltas to c's
// aggregator and starts its sender goroutine.
func NewStreamRecorder(g *core.Graph, c *Client, opts StreamOptions) (*StreamRecorder, error) {
	if !validSourceName(opts.Source) {
		return nil, fmt.Errorf("provenance: bad stream source name %q", opts.Source)
	}
	if opts.RunID == "" {
		return nil, fmt.Errorf("provenance: stream needs a run id")
	}
	r := &StreamRecorder{
		c:    c,
		opts: opts,
		hello: wire.Hello{
			RunID:   opts.RunID,
			App:     opts.App,
			Threads: g.Threads(),
		},
		inc:        core.NewIncrementalAnalyzer(g),
		notify:     make(chan struct{}, 1),
		done:       make(chan struct{}),
		senderDone: make(chan struct{}),
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	go r.sender()
	return r, nil
}

// CommitHook returns the function to register with
// threading.Runtime.RegisterCommitHook: every opts.Every seals it folds
// one epoch delta and queues it for upload.
func (r *StreamRecorder) CommitHook() func(core.SubID) {
	every := r.opts.every()
	return func(core.SubID) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return
		}
		r.seals++
		if r.seals%every == 0 {
			r.foldLocked()
		}
	}
}

// foldLocked captures one epoch and wakes the sender. Callers hold r.mu.
func (r *StreamRecorder) foldLocked() {
	a, d := r.inc.FoldDelta()
	r.lastA, r.epoch = a, d.Epoch
	r.pending = append(r.pending, d)
	if r.opts.OnEpoch != nil {
		r.opts.OnEpoch(a, d)
	}
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// Analysis returns the newest folded epoch's analysis (nil before the
// first fold) — the byte-identity reference for the aggregator.
func (r *StreamRecorder) Analysis() *core.Analysis {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastA
}

// Epoch returns the newest folded epoch.
func (r *StreamRecorder) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Err returns the sender's latched terminal error, if any. Recording
// itself never fails on upload errors; the journal (when present)
// still holds every epoch.
func (r *StreamRecorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sendErr
}

// Pending returns the count of folded-but-unacknowledged epochs.
func (r *StreamRecorder) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// sender is the upload goroutine: batch, POST, prune acknowledged.
func (r *StreamRecorder) sender() {
	defer close(r.senderDone)
	for {
		select {
		case <-r.notify:
			r.drain(false)
		case <-r.done:
			r.drain(true)
			return
		}
	}
}

// latch records the first terminal sender error.
func (r *StreamRecorder) latch(err error) {
	r.mu.Lock()
	if r.sendErr == nil {
		r.sendErr = err
	}
	r.mu.Unlock()
}

// snapshot copies up to one batch of pending deltas.
func (r *StreamRecorder) snapshot() []*core.EpochDelta {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.pending)
	if max := r.opts.batch(); n > max {
		n = max
	}
	out := make([]*core.EpochDelta, n)
	copy(out, r.pending[:n])
	return out
}

// ack drops pending deltas the aggregator acknowledged (epoch <
// nextEpoch).
func (r *StreamRecorder) ack(nextEpoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	keep := 0
	for keep < len(r.pending) && r.pending[keep].Epoch < nextEpoch {
		keep++
	}
	r.pending = r.pending[keep:]
}

// drain ships pending batches until the queue is empty (then, when
// final, the seal) or a terminal error latches. Upload failures trigger
// an offset resync: re-read the aggregator's next expected epoch, drop
// what it already holds, and try again — a reconnecting recorder never
// re-sends an acknowledged epoch and never skips one.
func (r *StreamRecorder) drain(final bool) {
	resyncs := 0
	for {
		if r.Err() != nil {
			return
		}
		batch := r.snapshot()
		if len(batch) == 0 {
			if final {
				r.sendSeal()
			}
			return
		}
		st, err := r.ship(batch, nil)
		if err == nil {
			resyncs = 0
			r.ack(st.NextEpoch)
			continue
		}
		if r.ctx.Err() != nil {
			r.latch(err)
			return
		}
		// Conflicts (the aggregator is ahead, or bound to another run)
		// and transport-class failures resync against the offset; bad
		// input (400) is terminal — re-sending it cannot help.
		if code := serverStatus(err); code != 0 && code != http.StatusConflict &&
			code != http.StatusBadGateway && code != http.StatusServiceUnavailable && code != http.StatusGatewayTimeout {
			r.latch(err)
			return
		}
		if resyncs++; resyncs > r.opts.maxResyncs() {
			r.latch(fmt.Errorf("provenance: stream upload failed after %d resyncs: %w", resyncs-1, err))
			return
		}
		if rerr := r.resync(); rerr != nil {
			r.latch(rerr)
			return
		}
	}
}

// resync re-reads the resume offset and reconciles the queue with it.
func (r *StreamRecorder) resync() error {
	ctx, cancel := context.WithTimeout(r.ctx, r.opts.requestTimeout())
	defer cancel()
	st, found, err := r.c.IngestOffset(ctx, r.opts.Source)
	if err != nil {
		return nil // transient: the retry loop will come back around
	}
	if !found {
		// The aggregator has no state for the source. Everything still
		// queued uploads from its own epoch; that only works if nothing
		// acknowledged-and-pruned is missing.
		r.mu.Lock()
		defer r.mu.Unlock()
		if len(r.pending) > 0 && r.pending[0].Epoch > 1 {
			return fmt.Errorf("provenance: aggregator lost source %s (wants epoch 1, oldest queued is %d); re-feed from the journal",
				r.opts.Source, r.pending[0].Epoch)
		}
		return nil
	}
	if st.RunID != r.hello.RunID {
		return fmt.Errorf("%w: source %s bound to run %s, this recorder is run %s",
			ErrRunConflict, r.opts.Source, st.RunID, r.hello.RunID)
	}
	r.ack(st.NextEpoch)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pending) > 0 && r.pending[0].Epoch > st.NextEpoch {
		return fmt.Errorf("provenance: aggregator lost epochs [%d,%d) of source %s; re-feed from the journal",
			st.NextEpoch, r.pending[0].Epoch, r.opts.Source)
	}
	return nil
}

// ship uploads one batch (and/or seal) under the per-request timeout.
func (r *StreamRecorder) ship(batch []*core.EpochDelta, seal *wire.Seal) (*IngestStatus, error) {
	frames, err := EncodeFrames(r.hello, batch, seal)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(r.ctx, r.opts.requestTimeout())
	defer cancel()
	return r.c.Ingest(ctx, r.opts.Source, frames)
}

// sendSeal marks the stream cleanly finished.
func (r *StreamRecorder) sendSeal() {
	r.mu.Lock()
	final := r.epoch
	r.mu.Unlock()
	if _, err := r.ship(nil, &wire.Seal{FinalEpoch: final}); err != nil {
		r.latch(fmt.Errorf("provenance: seal upload: %w", err))
	}
}

// Close folds the final epoch, flushes the queue (seal included), and
// stops the sender. ctx bounds the flush: on expiry the in-flight
// upload is aborted and Close returns with the queue possibly
// non-empty — the journal, when present, still has everything. Close
// returns the sender's first terminal error, if any.
func (r *StreamRecorder) Close(ctx context.Context) error {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.foldLocked()
		close(r.done)
	}
	r.mu.Unlock()
	select {
	case <-r.senderDone:
	case <-ctx.Done():
		r.cancel()
		<-r.senderDone
	}
	r.cancel()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sendErr != nil {
		return r.sendErr
	}
	if n := len(r.pending); n > 0 {
		return fmt.Errorf("provenance: stream closed with %d epochs unshipped", n)
	}
	return nil
}
