package provenance

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// CPGInfo describes one graph a server exposes (the GET /v1/cpgs
// listing).
type CPGInfo struct {
	ID              string `json:"id"`
	SubComputations int    `json:"sub_computations"`
	Threads         int    `json:"threads"`
	Edges           int    `json:"edges"`
}

// CPGList is the GET /v1/cpgs response body.
type CPGList struct {
	Version string    `json:"version"`
	CPGs    []CPGInfo `json:"cpgs"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// ServerOptions configure the HTTP query service.
type ServerOptions struct {
	// Timeout bounds each request's query execution; the deadline
	// cancels the in-flight graph traversal. 0 means no server-imposed
	// deadline (client disconnects still cancel).
	Timeout time.Duration
}

// Server is the provenance/v1 HTTP API over a set of completed graphs:
//
//	GET  /v1/cpgs             list the served graphs
//	GET  /v1/cpgs/{id}/stats  summary of one graph
//	POST /v1/cpgs/{id}/query  execute a Query (JSON body) against one graph
//
// All state is immutable after construction — engines only read their
// Analysis — so the handler serves any number of concurrent clients
// without synchronization. inspector-serve wraps this in a daemon;
// httptest wraps it in tests; cpg-query -remote speaks to either.
type Server struct {
	engines map[string]*Engine
	infos   []CPGInfo
	opts    ServerOptions
	mux     *http.ServeMux
}

// NewServer builds the handler over the given engines, keyed by CPG id
// (the id segment of the URL paths). The listing is sorted by id.
func NewServer(engines map[string]*Engine, opts ServerOptions) *Server {
	s := &Server{engines: engines, opts: opts, mux: http.NewServeMux()}
	for id, eng := range engines {
		st := eng.stats()
		s.infos = append(s.infos, CPGInfo{
			ID:              id,
			SubComputations: st.SubComputations,
			Threads:         st.Threads,
			Edges:           st.ControlEdges + st.SyncEdges + st.DataEdges,
		})
	}
	sort.Slice(s.infos, func(i, j int) bool { return s.infos[i].ID < s.infos[j].ID })
	s.mux.HandleFunc("GET /v1/cpgs", s.handleList)
	s.mux.HandleFunc("GET /v1/cpgs/{id}/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/cpgs/{id}/query", s.handleQuery)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// IDs returns the served CPG ids, sorted.
func (s *Server) IDs() []string {
	out := make([]string, len(s.infos))
	for i, info := range s.infos {
		out[i] = info.ID
	}
	return out
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CPGList{Version: Version, CPGs: s.infos})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.engines[r.PathValue("id")]
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown cpg " + r.PathValue("id")})
		return
	}
	s.execute(w, r, eng, Query{Kind: KindStats})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.engines[r.PathValue("id")]
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown cpg " + r.PathValue("id")})
		return
	}
	var q Query
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad query body: " + err.Error()})
		return
	}
	s.execute(w, r, eng, q)
}

// execute runs one query under the request context (plus the
// server-imposed deadline) and writes the wire result.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, eng *Engine, q Query) {
	ctx := r.Context()
	if s.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.Timeout)
		defer cancel()
	}
	res, err := eng.Execute(ctx, q)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrBadQuery):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout,
			apiError{Error: fmt.Sprintf("query exceeded the %v server deadline", s.opts.Timeout)})
	case errors.Is(err, context.Canceled):
		// The client went away; the traversal already stopped and
		// nothing can be written back.
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; a write error has no recourse
}
