package provenance

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// CPGInfo describes one graph a server exposes (the GET /v1/cpgs
// listing). Epoch is 0 (omitted) for post-mortem graphs and the newest
// published epoch for live ones, so monitors can watch a live graph
// grow from the listing alone.
type CPGInfo struct {
	ID              string `json:"id"`
	SubComputations int    `json:"sub_computations"`
	Threads         int    `json:"threads"`
	Edges           int    `json:"edges"`
	Epoch           uint64 `json:"epoch,omitempty"`
}

// CPGList is the GET /v1/cpgs response body.
type CPGList struct {
	Version string    `json:"version"`
	CPGs    []CPGInfo `json:"cpgs"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// ServerOptions configure the HTTP query service.
type ServerOptions struct {
	// Timeout bounds each request's query execution; the deadline
	// cancels the in-flight graph traversal. 0 means no server-imposed
	// deadline (client disconnects still cancel).
	Timeout time.Duration
}

// Server is the provenance/v1 HTTP API over a set of graphs:
//
//	GET  /v1/cpgs             list the served graphs
//	GET  /v1/cpgs/{id}/stats  summary of one graph
//	POST /v1/cpgs/{id}/query  execute a Query (JSON body) against one graph
//
// Each id is backed by an EngineSource: a static source for a completed
// (post-mortem) graph, or a LiveEngine for an execution still being
// recorded. A request resolves its source exactly once, so every request
// is pinned to one immutable epoch Analysis — concurrent clients need no
// synchronization, cursors stay valid within the epoch that issued them,
// and responses carry the epoch id. inspector-serve wraps this in a
// daemon; httptest wraps it in tests; cpg-query -remote speaks to
// either.
type Server struct {
	sources map[string]EngineSource
	ids     []string
	opts    ServerOptions
	mux     *http.ServeMux
}

// NewServer builds the handler over completed engines, keyed by CPG id
// (the id segment of the URL paths) — the post-mortem form. Use
// NewServerSources to mix in live graphs.
func NewServer(engines map[string]*Engine, opts ServerOptions) *Server {
	sources := make(map[string]EngineSource, len(engines))
	for id, eng := range engines {
		sources[id] = StaticSource(eng)
	}
	return NewServerSources(sources, opts)
}

// NewServerSources builds the handler over engine sources, keyed by CPG
// id. The listing is sorted by id.
func NewServerSources(sources map[string]EngineSource, opts ServerOptions) *Server {
	s := &Server{sources: sources, opts: opts, mux: http.NewServeMux()}
	for id := range sources {
		s.ids = append(s.ids, id)
	}
	sort.Strings(s.ids)
	s.mux.HandleFunc("GET /v1/cpgs", s.handleList)
	s.mux.HandleFunc("GET /v1/cpgs/{id}/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/cpgs/{id}/query", s.handleQuery)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// IDs returns the served CPG ids, sorted.
func (s *Server) IDs() []string {
	out := make([]string, len(s.ids))
	copy(out, s.ids)
	return out
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// The listing is assembled per request: live sources advance between
	// requests, and each entry must describe one pinned epoch. Static
	// engines cache their stats, so repeated listings of post-mortem
	// graphs stay O(1) per graph.
	infos := make([]CPGInfo, 0, len(s.ids))
	for _, id := range s.ids {
		eng := s.sources[id].Engine()
		st := eng.stats()
		infos = append(infos, CPGInfo{
			ID:              id,
			SubComputations: st.SubComputations,
			Threads:         st.Threads,
			Edges:           st.ControlEdges + st.SyncEdges + st.DataEdges,
			Epoch:           eng.Epoch(),
		})
	}
	writeJSON(w, http.StatusOK, CPGList{Version: Version, CPGs: infos})
}

// resolve pins one epoch's engine for a request.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*Engine, bool) {
	src, ok := s.sources[r.PathValue("id")]
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown cpg " + r.PathValue("id")})
		return nil, false
	}
	return src.Engine(), true
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.resolve(w, r)
	if !ok {
		return
	}
	s.execute(w, r, eng, Query{Kind: KindStats})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.resolve(w, r)
	if !ok {
		return
	}
	var q Query
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad query body: " + err.Error()})
		return
	}
	s.execute(w, r, eng, q)
}

// execute runs one query under the request context (plus the
// server-imposed deadline) and writes the wire result.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, eng *Engine, q Query) {
	ctx := r.Context()
	if s.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.Timeout)
		defer cancel()
	}
	res, err := eng.Execute(ctx, q)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrBadQuery):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout,
			apiError{Error: fmt.Sprintf("query exceeded the %v server deadline", s.opts.Timeout)})
	case errors.Is(err, context.Canceled):
		// The client went away; the traversal already stopped and
		// nothing can be written back.
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; a write error has no recourse
}
