package provenance

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// CPGInfo describes one graph a server exposes (the GET /v1/cpgs
// listing). Epoch is 0 (omitted) for post-mortem graphs and the newest
// published epoch for live ones, so monitors can watch a live graph
// grow from the listing alone. Degraded is omitted (false) for complete
// recordings; true marks graphs carrying trace-loss gaps.
type CPGInfo struct {
	ID              string `json:"id"`
	SubComputations int    `json:"sub_computations"`
	Threads         int    `json:"threads"`
	Edges           int    `json:"edges"`
	Epoch           uint64 `json:"epoch,omitempty"`
	Degraded        bool   `json:"degraded,omitempty"`
}

// ReadyStatus is the GET /readyz response body. Epochs maps each
// live-served CPG id to its newest published epoch (post-mortem graphs,
// whose epoch is 0, are omitted), so monitors read live analysis
// progress straight from the readiness probe.
type ReadyStatus struct {
	Ready  bool              `json:"ready"`
	Epochs map[string]uint64 `json:"epochs,omitempty"`
}

// CPGList is the GET /v1/cpgs response body.
type CPGList struct {
	Version string    `json:"version"`
	CPGs    []CPGInfo `json:"cpgs"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// ServerOptions configure the HTTP query service.
type ServerOptions struct {
	// Timeout bounds each request's query execution; the deadline
	// cancels the in-flight graph traversal. 0 means no server-imposed
	// deadline (client disconnects still cancel).
	Timeout time.Duration
	// MaxInflight bounds concurrently executing /v1/ requests; excess
	// requests are shed with 503 and a Retry-After hint instead of
	// queueing until the process falls over. 0 means unlimited. Health
	// probes (/healthz, /readyz) always bypass the limit.
	MaxInflight int
	// RetryAfter is the hint (in whole seconds, minimum 1) sent with
	// shed requests. 0 defaults to 1s.
	RetryAfter time.Duration
	// Logf receives panic-recovery log lines (nil = log.Printf).
	Logf func(format string, args ...any)
	// Store, when the server fronts a directory-backed CPG store,
	// additionally exposes GET /v1/store with the store's resident-set
	// and result-cache counters. The store's sources still register
	// through NewServerSources like any others.
	Store *Store
	// Ingest, when set, turns the server into an aggregator: recorders
	// stream epoch-delta frames to POST /v1/ingest/{source}, and the
	// resulting per-source live CPGs are served alongside the static
	// sources (listing, stats, queries, epochs, export).
	Ingest *IngestHub
	// WatchTimeout caps how long GET /v1/cpgs/{id}/epochs may hold a
	// long-poll open, whatever the client asked for (default 30s). A
	// timed-out poll answers 200 with the current epoch, so re-polling
	// is idempotent.
	WatchTimeout time.Duration
}

// The server consults richer source surfaces when a source offers
// them, so directory-backed (lazy) CPGs are never decoded just to be
// listed or probed. All three are optional per source; EngineSource
// alone remains sufficient.
type (
	// queryRunner executes a query itself — e.g. through a result
	// cache — instead of handing out an engine.
	queryRunner interface {
		RunQuery(ctx context.Context, q Query) (*Result, error)
	}
	// infoProvider describes its CPG for the listing without
	// materializing it.
	infoProvider interface {
		Info() CPGInfo
	}
	// epochHinter reports its current epoch without materializing.
	epochHinter interface {
		EpochHint() uint64
	}
	// epochWaiter blocks until a minimum epoch is published —
	// LiveEngine and IngestSource both satisfy it, so the push wire
	// (GET /v1/cpgs/{id}/epochs) serves local live folds and ingested
	// streams identically. ErrLiveClosed means the awaited epoch will
	// never arrive.
	epochWaiter interface {
		WaitEpoch(ctx context.Context, min uint64) (uint64, error)
	}
)

// Server is the provenance/v1 HTTP API over a set of graphs:
//
//	GET  /v1/cpgs             list the served graphs
//	GET  /v1/cpgs/{id}/stats  summary of one graph
//	POST /v1/cpgs/{id}/query  execute a Query (JSON body) against one graph
//
// Each id is backed by an EngineSource: a static source for a completed
// (post-mortem) graph, or a LiveEngine for an execution still being
// recorded. A request resolves its source exactly once, so every request
// is pinned to one immutable epoch Analysis — concurrent clients need no
// synchronization, cursors stay valid within the epoch that issued them,
// and responses carry the epoch id. inspector-serve wraps this in a
// daemon; httptest wraps it in tests; cpg-query -remote speaks to
// either.
type Server struct {
	sources map[string]EngineSource
	ids     []string
	opts    ServerOptions
	mux     *http.ServeMux
	// notReady, while set, makes /readyz answer 503 — the daemon flips
	// it once its listener is up and every CPG is loaded. Construction
	// starts ready (embedders already hold loaded sources).
	notReady atomic.Bool
	// inflight is the /v1/ admission semaphore (nil = unlimited).
	inflight chan struct{}
}

// NewServer builds the handler over completed engines, keyed by CPG id
// (the id segment of the URL paths) — the post-mortem form. Use
// NewServerSources to mix in live graphs.
func NewServer(engines map[string]*Engine, opts ServerOptions) *Server {
	sources := make(map[string]EngineSource, len(engines))
	for id, eng := range engines {
		sources[id] = StaticSource(eng)
	}
	return NewServerSources(sources, opts)
}

// NewServerSources builds the handler over engine sources, keyed by CPG
// id. The listing is sorted by id.
func NewServerSources(sources map[string]EngineSource, opts ServerOptions) *Server {
	s := &Server{sources: sources, opts: opts, mux: http.NewServeMux()}
	for id := range sources {
		s.ids = append(s.ids, id)
	}
	sort.Strings(s.ids)
	if opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInflight)
	}
	s.mux.HandleFunc("GET /v1/cpgs", s.handleList)
	s.mux.HandleFunc("GET /v1/cpgs/{id}/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/cpgs/{id}/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/cpgs/{id}/epochs", s.handleEpochs)
	s.mux.HandleFunc("GET /v1/cpgs/{id}/export", s.handleExport)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	if opts.Ingest != nil {
		s.mux.HandleFunc("POST /v1/ingest/{source}", s.handleIngest)
		s.mux.HandleFunc("GET /v1/ingest/{source}", s.handleIngestOffset)
	}
	if opts.Store != nil {
		s.mux.HandleFunc("GET /v1/store", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, opts.Store.Stats())
		})
	}
	return s
}

// SetReady flips the /readyz verdict. The daemon serves not-ready
// during startup (listener up, CPGs still loading) and flips to ready
// once every graph is queryable.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// ServeHTTP implements http.Handler. It is the hardening envelope
// around the route mux: a panicking handler is logged and answered with
// 500 instead of killing the daemon's connection goroutine silently,
// and when MaxInflight is set, excess /v1/ requests are shed with
// 503 + Retry-After before they touch a graph.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			s.logf("provenance: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			if !sw.wrote {
				writeJSON(sw, http.StatusInternalServerError, apiError{Error: "internal error"})
			}
		}
	}()
	if s.inflight != nil && strings.HasPrefix(r.URL.Path, "/v1/") {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			retry := s.opts.RetryAfter
			if retry < time.Second {
				retry = time.Second
			}
			sw.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)))
			writeJSON(sw, http.StatusServiceUnavailable, apiError{Error: "server at capacity"})
			return
		}
	}
	s.mux.ServeHTTP(sw, r)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// statusWriter remembers whether a header has been written, so the
// panic recovery knows if a 500 can still be sent.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.wrote = true
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(b)
}

// handleHealth is the liveness probe: the process can answer HTTP.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{OK: true})
}

// handleReady is the readiness probe: 503 until the daemon marks its
// CPGs loaded, then 200 with live epoch progress per source.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.notReady.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyStatus{Ready: false})
		return
	}
	st := ReadyStatus{Ready: true}
	for _, id := range s.IDs() {
		src, ok := s.source(id)
		if !ok {
			continue
		}
		var e uint64
		if eh, ok := src.(epochHinter); ok {
			e = eh.EpochHint()
		} else {
			e = src.Engine().Epoch()
		}
		if e > 0 {
			if st.Epochs == nil {
				st.Epochs = make(map[string]uint64)
			}
			st.Epochs[id] = e
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// IDs returns the served CPG ids, sorted. With an ingest hub attached
// the listing is dynamic: sources a recorder has streamed since the
// server started are included.
func (s *Server) IDs() []string {
	out := make([]string, len(s.ids))
	copy(out, s.ids)
	if s.opts.Ingest != nil {
		for _, id := range s.opts.Ingest.IDs() {
			if _, clash := s.sources[id]; !clash {
				out = append(out, id)
			}
		}
		sort.Strings(out)
	}
	return out
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// The listing is assembled per request: live sources advance between
	// requests, and each entry must describe one pinned epoch. Static
	// engines cache their stats, so repeated listings of post-mortem
	// graphs stay O(1) per graph.
	ids := s.IDs()
	infos := make([]CPGInfo, 0, len(ids))
	for _, id := range ids {
		src, ok := s.source(id)
		if !ok {
			continue
		}
		// Lazy (directory-backed) sources describe themselves from
		// their stats section; listing never decodes a graph.
		if ip, ok := src.(infoProvider); ok {
			infos = append(infos, ip.Info())
			continue
		}
		eng := src.Engine()
		st := eng.stats()
		infos = append(infos, CPGInfo{
			ID:              id,
			SubComputations: st.SubComputations,
			Threads:         st.Threads,
			Edges:           st.ControlEdges + st.SyncEdges + st.DataEdges,
			Epoch:           eng.Epoch(),
			Degraded:        eng.a.Degraded(),
		})
	}
	writeJSON(w, http.StatusOK, CPGList{Version: Version, CPGs: infos})
}

// source looks an id up across the static sources and (when
// aggregating) the ingest hub. Static registrations win name clashes;
// the ingest path refuses to bind a statically served name.
func (s *Server) source(id string) (EngineSource, bool) {
	if src, ok := s.sources[id]; ok {
		return src, true
	}
	if s.opts.Ingest != nil {
		if src, ok := s.opts.Ingest.Source(id); ok {
			return src, true
		}
	}
	return nil, false
}

// resolve finds the request's source. Engine resolution (which pins
// one epoch, and for lazy sources may decode) is deferred to execute,
// so sources that answer without an engine never materialize one.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (EngineSource, bool) {
	src, ok := s.source(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown cpg " + r.PathValue("id")})
		return nil, false
	}
	return src, true
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	src, ok := s.resolve(w, r)
	if !ok {
		return
	}
	s.execute(w, r, src, Query{Kind: KindStats})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, ok := s.resolve(w, r)
	if !ok {
		return
	}
	var q Query
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad query body: " + err.Error()})
		return
	}
	s.execute(w, r, src, q)
}

// execute runs one query under the request context (plus the
// server-imposed deadline) and writes the wire result. A source that
// runs queries itself (the store's cached path) is preferred over
// resolving an engine.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, src EngineSource, q Query) {
	ctx := r.Context()
	if s.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.Timeout)
		defer cancel()
	}
	var res *Result
	var err error
	if qr, ok := src.(queryRunner); ok {
		res, err = qr.RunQuery(ctx, q)
	} else {
		res, err = src.Engine().Execute(ctx, q)
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, ErrBadQuery):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout,
			apiError{Error: fmt.Sprintf("query exceeded the %v server deadline", s.opts.Timeout)})
	case errors.Is(err, context.Canceled):
		// The client went away; the traversal already stopped and
		// nothing can be written back.
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; a write error has no recourse
}
