// Package enginebench is the query-engine benchmark harness: the
// scenario bodies behind BenchmarkQueryEngine* in the provenance
// package's go-test suite and the QueryEngine/* rows of
// `inspector-bench -experiment cpg` (BENCH_cpg.json). It lives beside
// the engine (rather than in internal/core/cpgbench) because it drives
// the public provenance API, which internal/core's tests cannot import
// without a cycle.
//
// The scenarios run slice and taint — the two closure-heavy query
// kinds — against the dense cpgbench scenario (24 pages, 4 accesses per
// sub-computation over 8 threads: a rich happens-before web), serially
// and 8-way parallel. Serial and parallel perform the same per-op work,
// so their ratio exposes how well concurrent clients share one
// immutable Analysis — the inspector-serve scaling story.
package enginebench

import (
	"context"
	"sync"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/core/cpgbench"
	"github.com/repro/inspector/provenance"
)

// queryWorkers is the fan-out of the parallel scenarios.
const queryWorkers = 8

// Case is one benchmark scenario (mirrors cpgbench.Case).
type Case struct {
	// Name follows the BENCH_cpg.json row naming ("QueryEngine/slice", ...).
	Name string
	// Bytes, when non-zero, is the payload size per op for MB/s.
	Bytes int64
	Fn    func(b *testing.B)
}

// Cases returns the query-engine scenarios.
func Cases() []Case {
	// The dense cpgbench scenario (same shape and seed as
	// DataEdges/dense, so BENCH_cpg.json rows describe one graph).
	g := cpgbench.BuildRandomGraph(8, 2000, 24, 4, 43)
	eng := provenance.NewEngine(g.Analyze(), provenance.EngineOptions{})
	var target core.SubID
	for _, sc := range g.Subs() {
		if sc.ID.Thread == 0 {
			target = sc.ID
		}
	}
	ctx := context.Background()
	sliceQ := provenance.Query{Kind: provenance.KindSlice, Target: target.String()}
	taintQ := provenance.Query{Kind: provenance.KindTaint, Target: "T1.0"}

	serial := func(q provenance.Query) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Execute(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// parallel runs queryWorkers concurrent executions per op (the same
	// total work as queryWorkers serial ops), so ns/op divided by the
	// serial row measures scaling, not a smaller workload.
	parallel := func(q provenance.Query) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, queryWorkers)
				for w := 0; w < queryWorkers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := eng.Execute(ctx, q); err != nil {
							errs <- err
						}
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
		}
	}

	return []Case{
		{Name: "QueryEngine/slice", Fn: serial(sliceQ)},
		{Name: "QueryEngine/slice-par8", Fn: parallel(sliceQ)},
		{Name: "QueryEngine/taint", Fn: serial(taintQ)},
		{Name: "QueryEngine/taint-par8", Fn: parallel(taintQ)},
	}
}
