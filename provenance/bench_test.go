package provenance_test

// The query-engine benchmark suite. Scenario bodies live in
// provenance/enginebench — shared verbatim with `inspector-bench
// -experiment cpg`, which snapshots them into the committed
// BENCH_cpg.json next to the core scenarios. This file is an external
// test package because enginebench imports provenance.

import (
	"sync"
	"testing"

	"github.com/repro/inspector/provenance/enginebench"
)

// cases memoizes enginebench.Cases(): the fixture (one dense graph and
// its analysis) is read-only across scenarios.
var cases = sync.OnceValue(enginebench.Cases)

func runCase(b *testing.B, name string) {
	b.Helper()
	for _, c := range cases() {
		if c.Name == name {
			b.ReportAllocs()
			b.ResetTimer()
			c.Fn(b)
			return
		}
	}
	b.Fatalf("no enginebench case %q", name)
}

// BenchmarkQueryEngine measures one backward slice through the Engine
// (query validation, closure traversal, wire conversion) on the dense
// cpgbench scenario.
func BenchmarkQueryEngine(b *testing.B) { runCase(b, "QueryEngine/slice") }

// BenchmarkQueryEngineParallel runs 8 concurrent slices per op against
// the shared engine — the inspector-serve concurrency story.
func BenchmarkQueryEngineParallel(b *testing.B) { runCase(b, "QueryEngine/slice-par8") }

// BenchmarkQueryEngineTaint measures forward taint through the Engine.
func BenchmarkQueryEngineTaint(b *testing.B) { runCase(b, "QueryEngine/taint") }

// BenchmarkQueryEngineTaintParallel is the 8-way taint variant.
func BenchmarkQueryEngineTaintParallel(b *testing.B) { runCase(b, "QueryEngine/taint-par8") }
