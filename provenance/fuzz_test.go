package provenance

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/wire"
)

// FuzzIngestFrames throws arbitrary bytes at the ingest endpoint — the
// fabric's untrusted boundary. The handler must never panic: every
// input answers 200 or a 4xx with a JSON body, and a hostile frame can
// at worst poison its own source, never the server.
func FuzzIngestFrames(f *testing.F) {
	// Seed with a well-formed stream and systematic corruptions of it.
	g := core.NewGraph(2)
	inc := core.NewIncrementalAnalyzer(g)
	_, d := inc.FoldDelta()
	frames, err := EncodeFrames(wire.Hello{RunID: "r", App: "fuzz", Threads: 2},
		[]*core.EpochDelta{d}, &wire.Seal{FinalEpoch: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frames)
	f.Add(frames[:len(frames)/2])
	f.Add(frames[:3])
	corrupt := append([]byte(nil), frames...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte("not frames at all"))
	// A hostile length prefix: claims a giant frame.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, body []byte) {
		hub := NewIngestHub(IngestOptions{MaxFrameBytes: 1 << 20, MaxBodyBytes: 1 << 20})
		srv := NewServer(nil, ServerOptions{Ingest: hub})
		req := httptest.NewRequest("POST", "/v1/ingest/src", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		resp := w.Result()
		if resp.StatusCode != 200 && (resp.StatusCode < 400 || resp.StatusCode > 499) {
			t.Fatalf("ingest answered %d for %d-byte body", resp.StatusCode, len(body))
		}
		data, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			t.Fatal(rerr)
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("non-JSON response (%d): %q", resp.StatusCode, data)
		}
	})
}
