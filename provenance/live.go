package provenance

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/repro/inspector/internal/core"
)

// ErrLiveClosed reports that the live pipeline has published its final
// epoch: no epoch a WaitEpoch caller is still waiting for will ever
// arrive.
var ErrLiveClosed = errors.New("provenance: live analysis closed")

// EngineSource yields the Engine a request should execute against. A
// static source always returns the same Engine (a completed, post-mortem
// analysis); a LiveEngine returns the newest folded epoch's Engine. The
// Server resolves its source exactly once per request, so each request
// is pinned to one epoch: its cursors, totals, and ordering all refer to
// that epoch's immutable Analysis, however far the live fold has moved
// on by the time the response is written.
type EngineSource interface {
	Engine() *Engine
}

// staticSource pins one completed engine forever.
type staticSource struct{ e *Engine }

func (s staticSource) Engine() *Engine { return s.e }

// StaticSource wraps a completed Engine as an EngineSource.
func StaticSource(e *Engine) EngineSource { return staticSource{e: e} }

// LiveEngine serves provenance queries against a CPG that is still being
// recorded. It owns an analysis goroutine that folds the graph into
// successive immutable epoch Analyses (core.IncrementalAnalyzer) and
// republishes an Engine over the newest one; Notify — wired to the
// threading runtime's commit hook — wakes the goroutine whenever new
// sub-computations seal. Signals coalesce: however fast the workload
// commits, at most one fold is in flight, and each fold sweeps
// everything sealed since the last.
//
// Engine never returns nil (construction folds epoch 1 immediately, even
// over an empty graph), and every returned Engine is an ordinary
// read-only Engine any number of goroutines may share. Close performs
// the final fold after recording quiesces, so post-run queries see the
// complete graph.
type LiveEngine struct {
	inc  *core.IncrementalAnalyzer
	opts EngineOptions
	cur  atomic.Pointer[Engine]
	// hooks run before every fold, in order. Fault injection and tests
	// use them to delay or crash a fold deliberately.
	hooks []func()

	notify    chan struct{}
	done      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once

	// watch is replaced (and the old one closed) on every publish;
	// WaitEpoch blocks on it. foldErr records the first fold panic.
	mu      sync.Mutex
	watch   chan struct{}
	foldErr error
}

// NewLiveEngine starts the analysis pipeline over g. The first epoch is
// folded synchronously, so the returned LiveEngine is immediately
// queryable. The optional foldHooks run before every fold (fault
// injection; tests).
func NewLiveEngine(g *core.Graph, opts EngineOptions, foldHooks ...func()) *LiveEngine {
	inc := core.NewIncrementalAnalyzer(g)
	inc.SetFoldWorkers(opts.FoldWorkers)
	if opts.FoldWorkerHook != nil {
		inc.SetWorkerHook(opts.FoldWorkerHook)
	}
	l := &LiveEngine{
		inc:    inc,
		opts:   opts,
		hooks:  foldHooks,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		closed: make(chan struct{}),
		watch:  make(chan struct{}),
	}
	if !l.foldAndPublish() {
		// Even a panicking first fold (only reachable through an
		// injected hook) must not leave Engine() nil: serve an empty
		// epoch-0 analysis until a later fold succeeds.
		l.cur.Store(NewEngine(core.NewGraph(g.Threads()).Analyze(), opts))
	}
	go l.loop()
	return l
}

// loop is the analysis goroutine: fold on demand until Close.
func (l *LiveEngine) loop() {
	for {
		select {
		case <-l.notify:
			l.foldAndPublish()
		case <-l.done:
			// Final fold: recording has quiesced, so this epoch covers
			// the complete graph (including anything a pending notify
			// would have announced).
			l.foldAndPublish()
			close(l.closed)
			return
		}
	}
}

// tryFold runs one fold, converting a panic into an error so a crashing
// fold cannot kill the analysis goroutine (which would deadlock every
// WaitEpoch and Close caller).
func (l *LiveEngine) tryFold() (a *core.Analysis, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("provenance: live analysis fold panicked: %v", r)
		}
	}()
	for _, h := range l.hooks {
		h()
	}
	return l.inc.Fold(), nil
}

// foldAndPublish runs one fold and publishes its epoch. On a fold panic
// the last good epoch stays servable, the first error is recorded for
// Close to surface, and false is returned.
func (l *LiveEngine) foldAndPublish() bool {
	a, err := l.tryFold()
	if err != nil {
		l.mu.Lock()
		if l.foldErr == nil {
			l.foldErr = err
		}
		l.mu.Unlock()
		return false
	}
	l.publish(a)
	return true
}

// publish installs the engine for a freshly folded epoch and wakes
// waiters.
func (l *LiveEngine) publish(a *core.Analysis) {
	l.cur.Store(NewEngine(a, l.opts))
	l.mu.Lock()
	close(l.watch)
	l.watch = make(chan struct{})
	l.mu.Unlock()
}

// Engine returns the newest epoch's engine (EngineSource).
func (l *LiveEngine) Engine() *Engine { return l.cur.Load() }

// Epoch returns the newest published epoch (≥ 1).
func (l *LiveEngine) Epoch() uint64 { return l.Engine().Epoch() }

// Notify announces that new sub-computations have sealed. It never
// blocks; signals coalesce into at most one pending fold.
func (l *LiveEngine) Notify() {
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

// WaitEpoch blocks until the published epoch reaches min (returning the
// epoch that satisfied it) or ctx is done (returning the newest epoch
// alongside ctx's error). It is the subscription primitive monitors
// poll-free consumers build on.
func (l *LiveEngine) WaitEpoch(ctx context.Context, min uint64) (uint64, error) {
	for {
		l.mu.Lock()
		w := l.watch
		l.mu.Unlock()
		if e := l.Epoch(); e >= min {
			return e, nil
		}
		select {
		case <-w:
		case <-ctx.Done():
			return l.Epoch(), ctx.Err()
		case <-l.closed:
			// No further folds are coming; re-check once and give up.
			if e := l.Epoch(); e >= min {
				return e, nil
			}
			return l.Epoch(), ErrLiveClosed
		}
	}
}

// Close performs the final fold and stops the analysis goroutine. Call
// it after recording has quiesced (the workload's Run returned); queries
// issued after Close see the complete graph. Close is idempotent,
// returns once the final epoch is published, and surfaces the first
// fold panic (if any) — the last good epoch remained servable
// throughout, but the caller learns the analysis did not complete.
func (l *LiveEngine) Close() error {
	l.closeOnce.Do(func() { close(l.done) })
	<-l.closed
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.foldErr
}
