package provenance

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/core/cpgbench"
	"github.com/repro/inspector/internal/cpgfile"
)

// writeStoreDir writes n deterministic CPG files into a fresh dir and
// returns the dir plus the source analyses keyed by id.
func writeStoreDir(t testing.TB, n int) (string, map[string]*core.Analysis) {
	t.Helper()
	dir := t.TempDir()
	analyses := make(map[string]*core.Analysis, n)
	for i := 0; i < n; i++ {
		g := cpgbench.BuildRandomGraph(2, 40, 24, 4, int64(i+1))
		if i%7 == 0 {
			g.AddGap(0, core.Gap{FromAlpha: 0, ToAlpha: 1, Kind: core.GapAuxLoss, Bytes: 32})
		}
		a := g.Analyze()
		id := fmt.Sprintf("cpg-%03d", i)
		if err := cpgfile.Write(filepath.Join(dir, id+".cpg"), a, cpgfile.Meta{RunID: id, App: "store-test"}); err != nil {
			t.Fatal(err)
		}
		analyses[id] = a
	}
	return dir, analyses
}

// postQuery POSTs a raw query body and returns status + body bytes.
func postQuery(t testing.TB, base, id, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/cpgs/"+id+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestStoreServesManyUnderBudget pins the acceptance criterion: 256
// on-disk CPGs served under a resident budget far below their total
// decoded size, every response byte-identical to the eager in-memory
// path, with the budget enforced and the result cache hitting.
func TestStoreServesManyUnderBudget(t *testing.T) {
	const n = 256
	dir, analyses := writeStoreDir(t, n)

	store, err := OpenDir(dir, StoreOptions{ResidentBudget: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != n {
		t.Fatalf("store serves %d CPGs, want %d", store.Len(), n)
	}

	lazy := httptest.NewServer(NewServerSources(store.Sources(), ServerOptions{Store: store}))
	defer lazy.Close()
	engines := make(map[string]*Engine, n)
	for id, a := range analyses {
		engines[id] = NewEngine(a, EngineOptions{})
	}
	eager := httptest.NewServer(NewServer(engines, ServerOptions{}))
	defer eager.Close()

	queries := []string{
		`{"kind":"stats"}`,
		`{"kind":"edges","edge_kinds":["data"],"limit":5}`,
		`{"kind":"slice","target":"T0.1"}`,
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("cpg-%03d", i)
		for _, q := range queries {
			ls, lb := postQuery(t, lazy.URL, id, q)
			es, eb := postQuery(t, eager.URL, id, q)
			if ls != es || !bytes.Equal(lb, eb) {
				t.Fatalf("%s %s: lazy (%d) and eager (%d) responses differ:\n%s\n%s", id, q, ls, es, lb, eb)
			}
		}
	}

	st := store.Stats()
	if st.ResidentBudget != 256<<10 || st.ResidentBytes > st.ResidentBudget {
		t.Fatalf("resident %d over budget %d", st.ResidentBytes, st.ResidentBudget)
	}
	if st.EngineEvictions == 0 {
		t.Fatal("no evictions: budget was not exercised (total decoded size must exceed it)")
	}
	if st.Decodes <= uint64(st.DecodedCPGs) {
		t.Fatalf("decodes = %d with %d resident: eviction+re-decode cycle not exercised", st.Decodes, st.DecodedCPGs)
	}

	// A repeated query is a pure cache hit and still byte-identical.
	before := store.Stats().ResultCache
	_, first := postQuery(t, lazy.URL, "cpg-000", queries[0])
	_, second := postQuery(t, lazy.URL, "cpg-000", queries[0])
	if !bytes.Equal(first, second) {
		t.Fatal("cached response differs from computed response")
	}
	after := store.Stats().ResultCache
	if after.Hits <= before.Hits {
		t.Fatalf("result cache hits did not advance: %+v -> %+v", before, after)
	}

	// The listing path never decodes: a fresh store must answer
	// GET /v1/cpgs for all 256 files with zero materializations.
	drained, err := OpenDir(dir, StoreOptions{ResidentBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drained.Close()
	ds := httptest.NewServer(NewServerSources(drained.Sources(), ServerOptions{Store: drained}))
	defer ds.Close()
	resp, err := http.Get(ds.URL + "/v1/cpgs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	if got := drained.Stats(); got.Decodes != 0 {
		t.Fatalf("listing decoded %d graphs; must answer from stats sections", got.Decodes)
	}
}

// TestStoreListingMatchesEagerListing pins that the stats-section
// listing agrees with the engine-computed listing field by field.
func TestStoreListingMatchesEagerListing(t *testing.T) {
	dir, analyses := writeStoreDir(t, 8)
	store, err := OpenDir(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	lazy := httptest.NewServer(NewServerSources(store.Sources(), ServerOptions{Store: store}))
	defer lazy.Close()
	engines := make(map[string]*Engine)
	for id, a := range analyses {
		engines[id] = NewEngine(a, EngineOptions{})
	}
	eager := httptest.NewServer(NewServer(engines, ServerOptions{}))
	defer eager.Close()

	get := func(base string) []byte {
		resp, err := http.Get(base + "/v1/cpgs")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	lb, eb := get(lazy.URL), get(eager.URL)
	if !bytes.Equal(lb, eb) {
		t.Fatalf("listings differ:\nlazy:  %s\neager: %s", lb, eb)
	}
}

// TestStoreOpenDirStrictAndLenient pins corrupt-file handling: strict
// open fails naming the file; lenient open skips it by name and serves
// the healthy neighbors.
func TestStoreOpenDirStrictAndLenient(t *testing.T) {
	dir, _ := writeStoreDir(t, 4)
	victim := filepath.Join(dir, "cpg-002.cpg")
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x20
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenDir(dir, StoreOptions{}); err == nil || !strings.Contains(err.Error(), "cpg-002.cpg") {
		t.Fatalf("strict OpenDir = %v, want error naming cpg-002.cpg", err)
	}

	var logs []string
	store, err := OpenDir(dir, StoreOptions{
		Lenient: true,
		Logf:    func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatalf("lenient OpenDir: %v", err)
	}
	defer store.Close()
	if got := store.IDs(); len(got) != 3 || got[0] != "cpg-000" || got[1] != "cpg-001" || got[2] != "cpg-003" {
		t.Fatalf("lenient store ids = %v", got)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "cpg-002.cpg") || !strings.Contains(logs[0], "-lenient") {
		t.Fatalf("lenient skip log = %q", logs)
	}
	// The survivors still answer.
	ts := httptest.NewServer(NewServerSources(store.Sources(), ServerOptions{Store: store}))
	defer ts.Close()
	if status, body := postQuery(t, ts.URL, "cpg-003", `{"kind":"stats"}`); status != http.StatusOK {
		t.Fatalf("query on healthy neighbor: %d %s", status, body)
	}
}

// TestStoreConcurrentQueries hammers a tiny-budget store from many
// goroutines so decode, eviction, and the result cache race (run under
// -race in CI).
func TestStoreConcurrentQueries(t *testing.T) {
	dir, analyses := writeStoreDir(t, 12)
	store, err := OpenDir(dir, StoreOptions{ResidentBudget: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ts := httptest.NewServer(NewServerSources(store.Sources(), ServerOptions{Store: store}))
	defer ts.Close()

	want := make(map[string][]byte)
	eager := make(map[string]*Engine)
	for id, a := range analyses {
		eager[id] = NewEngine(a, EngineOptions{})
	}
	es := httptest.NewServer(NewServer(eager, ServerOptions{}))
	defer es.Close()
	for id := range analyses {
		_, b := postQuery(t, es.URL, id, `{"kind":"stats"}`)
		want[id] = b
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				id := fmt.Sprintf("cpg-%03d", (w*5+i)%12)
				resp, err := http.Post(ts.URL+"/v1/cpgs/"+id+"/query", "application/json",
					strings.NewReader(`{"kind":"stats"}`))
				if err != nil {
					errc <- err
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d: %s", id, resp.StatusCode, b)
					return
				}
				if !bytes.Equal(b, want[id]) {
					errc <- fmt.Errorf("%s: response drifted under concurrency", id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := store.Stats(); st.ResidentBytes > st.ResidentBudget {
		t.Fatalf("resident %d over budget %d", st.ResidentBytes, st.ResidentBudget)
	}
}
