// Package storebench is the bounded-memory serving benchmark harness:
// the scenario bodies behind BenchmarkStore in the provenance package's
// go-test suite and the Store/* rows of `inspector-bench -experiment
// cpg` (BENCH_cpg.json). It measures the cost model the on-disk CPG
// store trades on: a cold query pays mmap-backed decode plus traversal
// under LRU eviction pressure, a warm query is a content-addressed
// result-cache hit. Each scenario reports per-op p50/p99 latency and
// the resident-bytes estimate alongside the usual ns/op, so the
// snapshot records both the tail the eviction churn produces and the
// memory ceiling the budget holds.
//
// It lives beside the store (rather than in internal/core/cpgbench)
// because it drives the public provenance API.
package storebench

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core/cpgbench"
	"github.com/repro/inspector/internal/cpgfile"
	"github.com/repro/inspector/provenance"
)

// storeBudget is the resident-bytes budget every scenario runs under —
// deliberately far below the fleet's total decoded size, so the cold
// rounds measure decode-under-eviction rather than a warm LRU.
const storeBudget = 256 << 10

// Case is one benchmark scenario (mirrors enginebench.Case).
type Case struct {
	// Name follows the BENCH_cpg.json row naming ("Store/n16/cold", ...).
	Name string
	// Bytes, when non-zero, is the payload size per op for MB/s.
	Bytes int64
	Fn    func(b *testing.B)
}

// Cases returns the store scenarios: fleet sizes 16 and 256, each cold
// (round-robin over the fleet, result cache disabled — every op decodes
// and traverses) and warm (repeated identical query — every op after
// the first is a pure result-cache hit).
func Cases() []Case {
	var cases []Case
	for _, n := range []int{16, 256} {
		cases = append(cases,
			Case{Name: fmt.Sprintf("Store/n%d/cold", n), Fn: benchStore(n, false)},
			Case{Name: fmt.Sprintf("Store/n%d/warm", n), Fn: benchStore(n, true)},
		)
	}
	return cases
}

// benchStore writes an n-file fleet, opens it under the tiny budget,
// and times one query per op. Setup (graph generation, encoding,
// OpenDir's checksum sweep) is untimed.
func benchStore(n int, warm bool) func(b *testing.B) {
	return func(b *testing.B) {
		dir := b.TempDir()
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			g := cpgbench.BuildRandomGraph(2, 200, 24, 4, int64(i+1))
			id := fmt.Sprintf("cpg-%03d", i)
			if err := cpgfile.Write(filepath.Join(dir, id+".cpg"), g.Analyze(), cpgfile.Meta{RunID: id}); err != nil {
				b.Fatal(err)
			}
			ids[i] = id
		}
		opts := provenance.StoreOptions{ResidentBudget: storeBudget}
		if !warm {
			// Cold must pay decode + traversal every op; with the cache
			// on, the second lap over the fleet would be all hits.
			opts.ResultCacheCapacity = -1
		}
		store, err := provenance.OpenDir(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()

		ctx := context.Background()
		q := provenance.Query{Kind: provenance.KindSlice, Target: "T0.1"}
		durs := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[0]
			if !warm {
				id = ids[i%n]
			}
			start := time.Now()
			if _, err := store.Query(ctx, id, q); err != nil {
				b.Fatal(err)
			}
			durs = append(durs, time.Since(start))
		}
		b.StopTimer()
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		b.ReportMetric(float64(durs[len(durs)/2].Nanoseconds()), "p50_ns")
		b.ReportMetric(float64(durs[len(durs)*99/100].Nanoseconds()), "p99_ns")
		st := store.Stats()
		if st.ResidentBudget > 0 && st.ResidentBytes > st.ResidentBudget {
			b.Fatalf("resident %d over budget %d", st.ResidentBytes, st.ResidentBudget)
		}
		b.ReportMetric(float64(st.ResidentBytes), "resident_B")
	}
}
