package provenance

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/repro/inspector/internal/core"
)

// Version identifies the wire format. Every Result carries it, the HTTP
// API serves under the /v1 prefix, and clients reject responses from a
// different major version.
const Version = "provenance/v1"

// Kind selects what a Query asks.
type Kind string

// Query kinds.
const (
	// KindEdges lists CPG edges, optionally filtered.
	KindEdges Kind = "edges"
	// KindSlice is the backward program slice of Target (§VIII
	// debugging): everything that may have affected it.
	KindSlice Kind = "slice"
	// KindTaint is forward information flow from Target (§VIII DIFT):
	// everything that transitively consumed its writes.
	KindTaint Kind = "taint"
	// KindLineage explains a page read: the writers of Page visible to
	// Target and their upstream data sources.
	KindLineage Kind = "lineage"
	// KindPath returns one shortest dependency chain From -> To.
	KindPath Kind = "path"
	// KindStats summarizes the graph (vertex/edge/page-set counts).
	KindStats Kind = "stats"
	// KindVerify checks the CPG's structural invariants.
	KindVerify Kind = "verify"
)

// Kinds lists every query kind, in the order the docs present them.
func Kinds() []Kind {
	return []Kind{KindEdges, KindSlice, KindTaint, KindLineage, KindPath, KindStats, KindVerify}
}

// ErrBadQuery tags validation failures: the query itself is malformed
// (unknown kind, missing target, bad cursor). The HTTP server maps it to
// 400; everything else is an execution error.
var ErrBadQuery = errors.New("provenance: bad query")

// badQueryf wraps ErrBadQuery with detail.
func badQueryf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadQuery, fmt.Sprintf(format, args...))
}

// Query is one provenance question in wire form (provenance/v1). The
// zero value of every optional field means "no constraint"; pointers
// distinguish "unset" from a meaningful zero (thread 0, page 0).
type Query struct {
	// Kind selects the question.
	Kind Kind `json:"kind"`

	// Target is the subject sub-computation ("T<thread>.<alpha>") for
	// slice, taint, and lineage queries.
	Target string `json:"target,omitempty"`
	// From and To bound a path query.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Page is the page a lineage query asks about.
	Page *uint64 `json:"page,omitempty"`

	// EdgeKinds restricts the edge kinds considered ("control", "sync",
	// "data"). Empty means all. For slice and path it restricts the
	// traversal; for edges it filters the listing. Taint ignores it:
	// forward taint is data-edge flow by definition.
	EdgeKinds []string `json:"edge_kinds,omitempty"`
	// Thread restricts results to one thread: IDs on that thread, edges
	// touching it.
	Thread *int `json:"thread,omitempty"`
	// AlphaMin/AlphaMax window the sub-computation index: IDs inside the
	// window, edges with an endpoint inside it.
	AlphaMin *uint64 `json:"alpha_min,omitempty"`
	AlphaMax *uint64 `json:"alpha_max,omitempty"`
	// PageMin/PageMax keep only data edges carrying a page in the
	// window (control and sync edges carry no pages and are dropped
	// when a page window is set). Ignored for ID results.
	PageMin *uint64 `json:"page_min,omitempty"`
	PageMax *uint64 `json:"page_max,omitempty"`

	// Limit caps the result page size. 0 means the engine's MaxResults
	// (unlimited if that is 0 too); the engine clamps to MaxResults.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes a paginated listing where the previous Result's
	// NextCursor left off. Opaque; valid only for the same query shape
	// against the same Analysis.
	Cursor string `json:"cursor,omitempty"`
}

// Edge is one CPG edge in wire form.
type Edge struct {
	From   string   `json:"from"`
	To     string   `json:"to"`
	Kind   string   `json:"kind"`
	Object string   `json:"object,omitempty"`
	Pages  []uint64 `json:"pages,omitempty"`
}

// LineageEntry is one provenance explanation for a page read.
type LineageEntry struct {
	Page      uint64   `json:"page"`
	Reader    string   `json:"reader"`
	Writer    string   `json:"writer"`
	Upstream  []string `json:"upstream,omitempty"`
	ViaObject string   `json:"via_object,omitempty"`
}

// Stats summarizes one graph. The gap fields are additive and omitted
// (zero) for complete recordings, so documents for lossless runs are
// byte-identical to what pre-degradation consumers pinned.
type Stats struct {
	SubComputations int `json:"sub_computations"`
	Threads         int `json:"threads"`
	Thunks          int `json:"thunks"`
	ReadSetPages    int `json:"read_set_pages"`
	WriteSetPages   int `json:"write_set_pages"`
	ControlEdges    int `json:"control_edges"`
	SyncEdges       int `json:"sync_edges"`
	DataEdges       int `json:"data_edges"`
	// GapThreads / GapIntervals / LostTraceBytes summarize trace loss:
	// how many threads carry gaps, the total gap interval count, and the
	// trace bytes the PT layer reported lost. All zero (omitted) for a
	// complete recording.
	GapThreads     int    `json:"gap_threads,omitempty"`
	GapIntervals   int    `json:"gap_intervals,omitempty"`
	LostTraceBytes uint64 `json:"lost_trace_bytes,omitempty"`
}

// Result is the answer to one Query, in wire form (provenance/v1).
// Exactly one of the payload fields is populated, matching Kind.
type Result struct {
	// Version is always "provenance/v1".
	Version string `json:"version"`
	// Kind echoes the query.
	Kind Kind `json:"kind"`
	// Epoch identifies the analysis prefix the result was computed over:
	// 0 (omitted on the wire) for a post-mortem batch analysis, ≥ 1 for
	// an epoch of a live, still-recording execution. The field is
	// additive and backward compatible — provenance/v1 consumers that
	// predate it see the same documents for post-mortem graphs. Cursors
	// are only valid against the epoch that issued them; a client that
	// sees the epoch advance between pages should restart the listing.
	Epoch uint64 `json:"epoch,omitempty"`
	// Degraded marks results computed over a graph with trace-loss gaps:
	// the answer is sound for what was recorded, but dependencies inside
	// a gap are invisible. Omitted (false) for complete recordings, so
	// lossless documents are unchanged on the wire.
	Degraded bool `json:"degraded,omitempty"`

	// IDs answers slice and taint queries, ordered by (thread, alpha).
	IDs []string `json:"ids,omitempty"`
	// Edges answers edges and path queries. For path it is one
	// continuous chain (empty when no chain exists).
	Edges []Edge `json:"edges,omitempty"`
	// Lineages answers lineage queries.
	Lineages []LineageEntry `json:"lineages,omitempty"`
	// Stats answers stats queries.
	Stats *Stats `json:"stats,omitempty"`
	// Valid answers verify queries; Detail carries the violated
	// invariant when false.
	Valid  *bool  `json:"valid,omitempty"`
	Detail string `json:"detail,omitempty"`

	// Total counts the full (post-filter, pre-pagination) result set.
	Total int `json:"total"`
	// NextCursor resumes the listing when the page was truncated; empty
	// on the final page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// ParseSubID parses the wire form "T<thread>.<alpha>" of a
// sub-computation ID.
func ParseSubID(s string) (core.SubID, error) {
	if !strings.HasPrefix(s, "T") {
		return core.SubID{}, fmt.Errorf("bad sub-computation id %q (want T<thread>.<alpha>)", s)
	}
	parts := strings.SplitN(s[1:], ".", 2)
	if len(parts) != 2 {
		return core.SubID{}, fmt.Errorf("bad sub-computation id %q", s)
	}
	th, err := strconv.Atoi(parts[0])
	if err != nil {
		return core.SubID{}, fmt.Errorf("bad thread in %q: %w", s, err)
	}
	alpha, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return core.SubID{}, fmt.Errorf("bad alpha in %q: %w", s, err)
	}
	return core.SubID{Thread: th, Alpha: alpha}, nil
}

// ParseEdgeKind maps the wire name of an edge kind to its core value.
func ParseEdgeKind(s string) (core.EdgeKind, error) {
	switch s {
	case "control":
		return core.EdgeControl, nil
	case "sync":
		return core.EdgeSync, nil
	case "data":
		return core.EdgeData, nil
	default:
		return 0, fmt.Errorf("unknown edge kind %q", s)
	}
}

// cursor is the opaque pagination token: "v1:<offset>" into the
// deterministic result sequence. It stays sound because a completed
// Analysis never changes.
const cursorPrefix = "v1:"

func encodeCursor(offset int) string {
	return cursorPrefix + strconv.Itoa(offset)
}

func decodeCursor(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	rest, ok := strings.CutPrefix(s, cursorPrefix)
	if !ok {
		return 0, badQueryf("unrecognized cursor %q", s)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, badQueryf("unrecognized cursor %q", s)
	}
	return n, nil
}
