package provenance

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/wire"
)

// The distributed-fabric endpoints:
//
//	POST /v1/ingest/{source}            stream epoch-delta frames in
//	GET  /v1/ingest/{source}            resume offset (next expected epoch)
//	GET  /v1/cpgs/{id}/epochs?min=&wait=  long-poll epoch push
//	GET  /v1/cpgs/{id}/export           the pinned epoch's full analysis export
//
// Ingest routes register only when ServerOptions.Ingest is set; epochs
// and export serve every source kind (static, live, ingested).

// defaultWatchTimeout caps the epochs long-poll when
// ServerOptions.WatchTimeout is unset.
const defaultWatchTimeout = 30 * time.Second

// handleEpochs is the push wire: block (bounded) until the source
// publishes epoch >= min, then report the newest epoch. A timed-out
// wait still answers 200 with the current epoch — re-polling is
// idempotent — and Closed tells the client no further epoch will come.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	src, ok := s.resolve(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	var min uint64
	if v := q.Get("min"); v != "" {
		var err error
		if min, err = strconv.ParseUint(v, 10, 64); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad min epoch " + strconv.Quote(v)})
			return
		}
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		var err error
		if wait, err = time.ParseDuration(v); err != nil || wait < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad wait duration " + strconv.Quote(v)})
			return
		}
	}
	maxWait := s.opts.WatchTimeout
	if maxWait <= 0 {
		maxWait = defaultWatchTimeout
	}
	if wait > maxWait {
		wait = maxWait
	}

	id := r.PathValue("id")
	waiter, live := src.(epochWaiter)
	cur := src.Engine().Epoch()
	if !live || wait <= 0 || cur >= min {
		writeJSON(w, http.StatusOK, EpochStatus{Version: Version, ID: id, Epoch: cur, Closed: !live})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	e, err := waiter.WaitEpoch(ctx, min)
	st := EpochStatus{Version: Version, ID: id, Epoch: e, Closed: errors.Is(err, ErrLiveClosed)}
	writeJSON(w, http.StatusOK, st)
}

// handleExport streams the pinned epoch's deterministic analysis
// export — the byte-comparison surface the fabric's correctness anchor
// rests on: these bytes must equal the recorder's own fold at the same
// epoch (inspector-recover -analysis produces the reference).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	src, ok := s.resolve(w, r)
	if !ok {
		return
	}
	eng := src.Engine()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Inspector-Epoch", strconv.FormatUint(eng.Epoch(), 10))
	// A mid-stream write error has no recourse; the status line is out.
	_ = eng.Analysis().ExportJSON(w)
}

// validSourceName keeps ingest source names usable as CPG ids and URL
// segments: 1-128 chars of [A-Za-z0-9._-].
func validSourceName(name string) bool {
	if len(name) == 0 || len(name) > 128 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ingestStatusCode maps an ingest error to its HTTP status: conflicts a
// client can reconcile (offset re-read, different run) are 409;
// malformed input is 400.
func ingestStatusCode(err error) int {
	switch {
	case errors.Is(err, ErrEpochGap), errors.Is(err, ErrSourceSealed),
		errors.Is(err, ErrSourceDegraded), errors.Is(err, ErrRunConflict):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// handleIngestOffset serves the resume offset. 404 means the source is
// unknown: start at epoch 1.
func (s *Server) handleIngestOffset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("source")
	if src, ok := s.opts.Ingest.Source(name); ok {
		writeJSON(w, http.StatusOK, src.Status())
		return
	}
	writeJSON(w, http.StatusNotFound, apiError{Error: "unknown ingest source " + name})
}

// handleIngest consumes one POST body of frames: a hello, then deltas,
// optionally a seal. Deltas apply as they stream, so a connection cut
// mid-body retains the applied prefix — the client re-reads the offset
// and resumes. Any error stops the read and reports it; everything
// already applied stays durable.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	hub := s.opts.Ingest
	name := r.PathValue("source")
	if !validSourceName(name) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad source name " + strconv.Quote(name)})
		return
	}
	if _, taken := s.sources[name]; taken {
		writeJSON(w, http.StatusConflict, apiError{Error: "source name " + name + " is served statically"})
		return
	}
	fr := wire.NewReader(http.MaxBytesReader(w, r.Body, hub.opts.maxBody()), hub.opts.maxFrame())
	kind, body, err := fr.Next()
	if err != nil {
		msg := "empty ingest body"
		if err != io.EOF {
			msg = "hello frame: " + err.Error()
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: msg})
		return
	}
	if kind != wire.KindHeader {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "first frame must be a header (hello)"})
		return
	}
	var hello wire.Hello
	if err := wire.Decode(body, &hello); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "hello decode: " + err.Error()})
		return
	}
	src, err := hub.bind(name, hello)
	if err != nil {
		writeJSON(w, ingestStatusCode(err), apiError{Error: err.Error()})
		return
	}

	var accepted, dups int
	for {
		kind, body, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "frame: " + err.Error()})
			return
		}
		switch kind {
		case wire.KindDelta:
			d := new(core.EpochDelta)
			if err := wire.Decode(body, d); err != nil {
				writeJSON(w, http.StatusBadRequest, apiError{Error: "delta decode: " + err.Error()})
				return
			}
			applied, err := src.apply(d)
			if err != nil {
				writeJSON(w, ingestStatusCode(err), apiError{Error: err.Error()})
				return
			}
			if applied {
				accepted++
			} else {
				dups++
			}
		case wire.KindSeal:
			var seal wire.Seal
			if err := wire.Decode(body, &seal); err != nil {
				writeJSON(w, http.StatusBadRequest, apiError{Error: "seal decode: " + err.Error()})
				return
			}
			if err := src.seal(seal.FinalEpoch); err != nil {
				writeJSON(w, ingestStatusCode(err), apiError{Error: err.Error()})
				return
			}
		default:
			writeJSON(w, http.StatusBadRequest, apiError{Error: "unknown frame kind " + strconv.Itoa(int(kind))})
			return
		}
	}
	st := src.Status()
	st.Accepted, st.Duplicates = accepted, dups
	writeJSON(w, http.StatusOK, st)
}
