// DIFT case study (paper §VIII, "Security"): dynamic information flow
// tracking over the CPG. A taint seeded on sensitive input propagates
// along data-dependence edges; a policy checker at the output boundary
// refuses to emit data whose provenance reaches the sensitive source —
// the paper's proposed glibc-wrapper policy check, built on TaintedBy.
//
// Run with: go run ./examples/dift
package main

import (
	"fmt"
	"log"

	inspector "github.com/repro/inspector"
)

func main() {
	rt, err := inspector.New(inspector.Options{AppName: "dift"})
	if err != nil {
		log.Fatal(err)
	}

	// Two inputs: a public dataset and a sensitive credentials blob.
	publicAddr, err := rt.MapInput("public.csv", []byte("price,qty\n10,3\n20,7\n"))
	if err != nil {
		log.Fatal(err)
	}
	secretAddr, err := rt.MapInput("credentials.txt", []byte("api-key: hunter2"))
	if err != nil {
		log.Fatal(err)
	}

	m := rt.NewMutex("results")
	var pubOut, secOut inspector.Addr

	_, err = rt.Run(func(main *inspector.Thread) {
		pubOut = main.Malloc(8)
		// Page-granularity provenance cannot distinguish two flows that
		// share a page, so keep the sensitive output on its own page.
		_ = main.Malloc(8192) // spacer
		secOut = main.Malloc(8)

		// Worker 1 aggregates the public data.
		w1 := main.Spawn(func(w *inspector.Thread) {
			var sum uint64
			for i := 0; i < 3; i++ {
				sum += uint64(w.Load8(publicAddr + inspector.Addr(i)))
				w.Branch("agg.loop", i < 2)
			}
			m.Lock(w)
			w.Store64(pubOut, sum)
			m.Unlock(w)
		})
		// Worker 2 derives a session token FROM THE SECRET.
		w2 := main.Spawn(func(w *inspector.Thread) {
			tok := uint64(w.Load8(secretAddr)) * 31
			m.Lock(w)
			w.Store64(secOut, tok)
			m.Unlock(w)
		})
		main.Join(w1)
		main.Join(w2)

		// Main "emits" each result through its own output call, so the
		// two flows land in distinct sub-computations the policy checker
		// can judge independently.
		m.Lock(main)
		_ = main.Load64(pubOut)
		m.Unlock(main)
		m.Lock(main)
		_ = main.Load64(secOut)
		m.Unlock(main)
	})
	if err != nil {
		log.Fatal(err)
	}

	analysis := rt.CPG().Analyze()

	// Seed: every sub-computation that read a page of the sensitive
	// mapping is a taint source.
	// Taint propagates along data edges (cross-thread flows through
	// shared pages) and control edges (within a thread, a value derived
	// from the secret survives in registers across sub-computation
	// boundaries — page-granularity tracking must be conservative here).
	secretPage := uint64(secretAddr) / 4096
	taint := map[inspector.SubID]bool{}
	for _, sc := range rt.CPG().Subs() {
		if sc.ReadSet.Contains(secretPage) {
			taint[sc.ID] = true
			for _, id := range analysis.Descendants(sc.ID, inspector.EdgeData, inspector.EdgeControl) {
				taint[id] = true
			}
		}
	}
	fmt.Printf("tainted sub-computations (touched data derived from credentials.txt):\n")
	for _, sc := range rt.CPG().Subs() {
		if taint[sc.ID] {
			fmt.Printf("  %v\n", sc.ID)
		}
	}

	// Policy check at the "output" boundary: an emit is allowed only if
	// the emitting sub-computation is untainted.
	fmt.Println("\npolicy decisions for the output syscalls:")
	pubPage, secPage := uint64(pubOut)/4096, uint64(secOut)/4096
	for _, sc := range rt.CPG().Subs() {
		if sc.ID.Thread != 0 {
			continue
		}
		emitsPub := sc.ReadSet.Contains(pubPage)
		emitsSec := sc.ReadSet.Contains(secPage)
		if !emitsPub && !emitsSec {
			continue
		}
		verdict := "ALLOW"
		if taint[sc.ID] {
			verdict = "DENY (tainted by sensitive input)"
		}
		fmt.Printf("  write() from %v -> %s\n", sc.ID, verdict)
	}
}
