// NUMA case study (paper §VIII, "Efficiency"): derive memory-placement
// advice from the CPG. The read/write sets record which thread touches
// which pages; aggregating them yields a page-affinity map, from which a
// NUMA-aware allocator could pin pages next to their dominant consumer —
// the MemProf-style optimization the paper proposes building on
// INSPECTOR.
//
// Run with: go run ./examples/numa
package main

import (
	"fmt"
	"log"
	"sort"

	inspector "github.com/repro/inspector"
)

// nodeOf models a two-socket machine: even thread slots on node 0, odd
// on node 1.
func nodeOf(thread int) int { return thread % 2 }

func main() {
	rt, err := inspector.New(inspector.Options{AppName: "numa"})
	if err != nil {
		log.Fatal(err)
	}

	const threads = 4
	const pagesPerThread = 8
	bar := rt.NewBarrier("phase", threads)

	_, err = rt.Run(func(main *inspector.Thread) {
		// Each worker owns a private region but also polls one shared
		// page — the classic mixed-affinity layout.
		shared := main.Malloc(8)
		regions := make([]inspector.Addr, threads)
		for i := range regions {
			regions[i] = main.Malloc(pagesPerThread * 4096)
		}
		var ws []*inspector.Thread
		for i := 1; i < threads; i++ {
			i := i
			ws = append(ws, main.Spawn(func(w *inspector.Thread) {
				work(w, regions[i], shared, bar)
			}))
		}
		work(main, regions[0], shared, bar)
		for _, w := range ws {
			main.Join(w)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate page affinity from the CPG's access sets.
	type affinity struct {
		touches map[int]int // thread -> touch count
	}
	pages := map[uint64]*affinity{}
	for _, sc := range rt.CPG().Subs() {
		for _, set := range []inspector.SubID{} {
			_ = set
		}
		record := func(p uint64) {
			a := pages[p]
			if a == nil {
				a = &affinity{touches: map[int]int{}}
				pages[p] = a
			}
			a.touches[sc.ID.Thread]++
		}
		for _, p := range sc.ReadSet.Sorted() {
			record(p)
		}
		for _, p := range sc.WriteSet.Sorted() {
			record(p)
		}
	}

	var ids []uint64
	for p := range pages {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	fmt.Println("page      dominant-thread  node  advice")
	var local, remote, contended int
	for _, p := range ids {
		a := pages[p]
		best, bestN, total := -1, 0, 0
		for th, n := range a.touches {
			total += n
			if n > bestN {
				best, bestN = th, n
			}
		}
		switch {
		case bestN*2 > total && len(a.touches) == 1:
			local++
			fmt.Printf("%-9d T%-15d %-5d bind to node %d (exclusive)\n", p, best, nodeOf(best), nodeOf(best))
		case bestN*2 > total:
			remote++
			fmt.Printf("%-9d T%-15d %-5d bind to node %d (dominant: %d/%d touches)\n",
				p, best, nodeOf(best), nodeOf(best), bestN, total)
		default:
			contended++
			fmt.Printf("%-9d -%-15s %-5s interleave (no dominant consumer)\n", p, "", "-")
		}
	}
	fmt.Printf("\nsummary: %d exclusive pages, %d dominant pages, %d contended pages\n",
		local, remote, contended)
}

// work touches the private region heavily and the shared page lightly.
func work(w *inspector.Thread, region, shared inspector.Addr, bar *inspector.Barrier) {
	for round := 0; round < 3; round++ {
		for p := 0; p < pagesPerThreadConst; p++ {
			addr := region + inspector.Addr(p*4096)
			w.Store64(addr, w.Load64(addr)+1)
			w.Branch("numa.page", p+1 < pagesPerThreadConst)
		}
		_ = w.Load64(shared)
		bar.Wait(w)
	}
}

const pagesPerThreadConst = 8
