// Debugging case study (paper §VIII, "Dependability"): explain *why* a
// multithreaded program reached a bad state, not just *what* the state
// is.
//
// A bank account is updated by a depositor and a fee collector. The fee
// collector has an order-dependent bug: it applies a percentage fee, so
// the final balance depends on whether the fee lands before or after the
// deposit. A core dump would only show the wrong balance; the CPG shows
// which interleaving produced it and which sub-computations fed the
// value.
//
// Run with: go run ./examples/debugging
package main

import (
	"context"
	"fmt"
	"log"

	inspector "github.com/repro/inspector"
)

func main() {
	rt, err := inspector.New(inspector.Options{AppName: "debugging"})
	if err != nil {
		log.Fatal(err)
	}
	m := rt.NewMutex("account")

	var balanceAddr inspector.Addr
	var final uint64

	report, err := rt.Run(func(main *inspector.Thread) {
		balanceAddr = main.Malloc(8)
		main.Store64(balanceAddr, 1000) // opening balance

		depositor := main.Spawn(func(w *inspector.Thread) {
			m.Lock(w)
			w.Store64(balanceAddr, w.Load64(balanceAddr)+500)
			m.Unlock(w)
		})
		feeCollector := main.Spawn(func(w *inspector.Thread) {
			m.Lock(w)
			// BUG: percentage fee makes the outcome order-dependent.
			bal := w.Load64(balanceAddr)
			w.Store64(balanceAddr, bal-bal/10)
			m.Unlock(w)
		})
		main.Join(depositor)
		main.Join(feeCollector)

		m.Lock(main)
		final = main.Load64(balanceAddr)
		m.Unlock(main)
	})
	if err != nil {
		log.Fatal(err)
	}
	_ = report

	fmt.Printf("final balance: %d (1400 if the fee ran first, 1350 if the deposit ran first)\n\n", final)

	// Live snapshots are a separate facility: TakeSnapshot's ok result
	// distinguishes "snapshot mode is off" (this run) from "an empty
	// capture" (possible early in a SnapshotMode run).
	if _, ok := rt.TakeSnapshot(); !ok {
		fmt.Println("(no live snapshots: set Options.SnapshotMode to capture consistent cuts mid-run)")
	}

	// Post-mortem through the versioned query API — the same queries
	// cpg-query and inspector-serve answer. The data edges name the
	// exact sub-computations whose writes produced the value, and the
	// sync edges expose the schedule.
	ctx := context.Background()
	if res, err := rt.Query(ctx, inspector.Query{Kind: inspector.QueryVerify}); err != nil {
		log.Fatal(err)
	} else if !*res.Valid {
		log.Fatalf("CPG invalid: %s", res.Detail)
	}

	// Find the main thread's final balance-reading sub-computation.
	page := uint64(balanceAddr) / 4096
	var lastReader inspector.SubID
	for _, sc := range rt.CPG().Subs() {
		if sc.ID.Thread == 0 && sc.ReadSet.Contains(page) {
			lastReader = sc.ID
		}
	}
	fmt.Printf("the final read of the balance page happened in %v\n", lastReader)

	lineage, err := rt.Query(ctx, inspector.Query{
		Kind:   inspector.QueryLineage,
		Target: lastReader.String(),
		Page:   &page,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, lin := range lineage.Lineages {
		fmt.Printf("value came from a write in %v", lin.Writer)
		if len(lin.Upstream) > 0 {
			fmt.Printf(", which itself consumed data from %v", lin.Upstream)
		}
		fmt.Println()
	}

	fmt.Println("\nschedule dependencies through the account lock:")
	edges, err := rt.Query(ctx, inspector.Query{
		Kind:      inspector.QueryEdges,
		EdgeKinds: []string{"sync"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range edges.Edges {
		if e.Object == "mutex:account" {
			fmt.Printf("  %v released the lock to %v\n", e.From, e.To)
		}
	}

	fmt.Println("\nbackward slice of the final read (everything that may have affected it):")
	slice, err := rt.Query(ctx, inspector.Query{
		Kind:   inspector.QuerySlice,
		Target: lastReader.String(),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range slice.IDs {
		fmt.Printf("  %v\n", id)
	}
}
