// Quickstart: record the provenance of a small multithreaded computation
// and inspect the resulting Concurrent Provenance Graph.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	inspector "github.com/repro/inspector"
)

func main() {
	rt, err := inspector.New(inspector.Options{AppName: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}

	m := rt.NewMutex("shared")

	// The classic Figure-1 execution from the paper: two threads update
	// shared variables x and y under a lock.
	report, err := rt.Run(func(main *inspector.Thread) {
		x := main.Malloc(8)
		y := main.Malloc(8)

		// T1.a: x = ++y (y starts at zero).
		m.Lock(main)
		yv := main.Load64(y) + 1
		main.Store64(y, yv)
		if main.Branch("flag.if", yv%2 == 1) {
			main.Store64(x, yv)
		} else {
			main.Store64(x, yv+5)
		}
		m.Unlock(main)

		// T2: y = 2 * x.
		t2 := main.Spawn(func(w *inspector.Thread) {
			m.Lock(w)
			w.Store64(y, 2*w.Load64(x))
			m.Unlock(w)
		})
		main.Join(t2)

		// T1.b: y = y / 2.
		m.Lock(main)
		main.Store64(y, main.Load64(y)/2)
		m.Unlock(main)

		fmt.Printf("final y = %d\n", main.Load64(y))
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: time=%v work=%v faults=%d trace=%dB\n",
		report.Time, report.Work, report.Faults(), report.TraceBytes)

	// The CPG records what happened: sub-computations per thread, the
	// schedule dependencies through the lock, and the data flow between
	// the threads' read/write sets.
	cpg := rt.CPG()
	analysis := cpg.Analyze()
	if err := analysis.Verify(); err != nil {
		log.Fatalf("invalid CPG: %v", err)
	}
	fmt.Printf("CPG: %d sub-computations\n", cpg.NumSubs())
	for _, e := range analysis.Edges() {
		fmt.Printf("  %v -> %v (%v %s)\n", e.From, e.To, e.Kind, e.Object)
	}

	// The PT traces reconstruct the exact control flow.
	counts, err := rt.DecodeTraces()
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Printf("PT: %d branch events reconstructed from %d traces\n", total, len(counts))

	// Export for cpg-query / Graphviz.
	if err := rt.WriteDOT(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
