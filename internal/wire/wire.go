// Package wire is the frame codec shared by the on-disk journal and the
// network ingest stream. A frame is
//
//	[uint32 payload length | uint32 CRC-32C of payload | payload]
//
// little-endian, where the payload's first byte is the record kind and
// the rest is a self-contained gob stream. Every record carries its own
// gob type definitions on purpose: records stay independently decodable,
// so a torn tail (disk) or a cut connection (network) never poisons the
// frames before it.
//
// The package is a leaf (stdlib only). The journal writes frames into
// segment files behind a magic/version preamble; the ingest path writes
// the same frames into an HTTP request body with no preamble — the URL
// names the source, and every body restates its run identity in a
// header frame, so a reconnecting recorder's next POST is
// self-describing.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// Magic opens every journal segment file. "ISJ" = inspector
	// journal. Network streams do not carry it; HTTP already frames the
	// conversation.
	Magic = "INSPISJ1"
	// Version is the frame format version.
	Version = 1
	// PreambleLen is the segment preamble size: magic + LE uint32
	// version.
	PreambleLen = 12

	// Record kinds (first payload byte).
	KindHeader byte = 0
	KindDelta  byte = 1
	KindSeal   byte = 2

	// FrameOverhead is the per-frame framing cost: length + CRC.
	FrameOverhead = 8

	// DefaultMaxFrameBytes bounds a single frame's payload when reading
	// from an untrusted stream. The length prefix is attacker-
	// controlled; without a cap a 4-byte header could demand a 4 GiB
	// allocation.
	DefaultMaxFrameBytes = 64 << 20
)

// crcTable is the Castagnoli polynomial (CRC-32C, the iSCSI/ext4
// checksum), chosen over IEEE for its error-detection properties on
// storage payloads.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC checksums a frame payload.
func CRC(payload []byte) uint32 { return crc32.Checksum(payload, crcTable) }

// Preamble returns the segment file preamble: magic plus version.
func Preamble() []byte {
	pre := make([]byte, PreambleLen)
	copy(pre, Magic)
	binary.LittleEndian.PutUint32(pre[8:], Version)
	return pre
}

// Parse errors. Their Error strings double as the journal recovery
// reason strings, so both consumers of the codec report tears
// identically.
var (
	ErrShortHeader   = errors.New("short frame header")
	ErrEmptyFrame    = errors.New("empty frame")
	ErrShortFrame    = errors.New("short frame")
	ErrBadCRC        = errors.New("bad CRC")
	ErrFrameTooLarge = errors.New("frame exceeds size limit")
)

// AppendFrame frames one record onto buf: gob-encode the payload behind
// the kind byte, checksum, and prepend the length/CRC header. The frame
// is appended as a contiguous region so callers can issue it as a
// single write.
func AppendFrame(buf []byte, kind byte, payload any) ([]byte, error) {
	base := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = append(buf, kind)
	sw := sliceWriter(buf)
	if err := gob.NewEncoder(&sw).Encode(payload); err != nil {
		return buf[:base], fmt.Errorf("wire: encode record: %w", err)
	}
	buf = []byte(sw)
	body := buf[base+FrameOverhead:]
	binary.LittleEndian.PutUint32(buf[base:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[base+4:], CRC(body))
	return buf, nil
}

// sliceWriter lets gob append directly to the frame buffer.
type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// ParseFrame parses the first frame in data. It returns the record kind,
// the gob body (payload minus the kind byte, aliasing data), and the
// total frame length. maxPayload, when non-zero, bounds the payload
// length before any allocation or checksum work.
func ParseFrame(data []byte, maxPayload uint32) (kind byte, body []byte, frameLen int64, err error) {
	if len(data) < FrameOverhead {
		return 0, nil, 0, ErrShortHeader
	}
	plen := binary.LittleEndian.Uint32(data)
	wantCRC := binary.LittleEndian.Uint32(data[4:])
	if plen == 0 {
		return 0, nil, 0, ErrEmptyFrame
	}
	if maxPayload > 0 && plen > maxPayload {
		return 0, nil, 0, ErrFrameTooLarge
	}
	if int64(plen) > int64(len(data)-FrameOverhead) {
		return 0, nil, 0, ErrShortFrame
	}
	payload := data[FrameOverhead : FrameOverhead+int64(plen)]
	if CRC(payload) != wantCRC {
		return 0, nil, 0, ErrBadCRC
	}
	return payload[0], payload[1:], FrameOverhead + int64(plen), nil
}

// Decode gob-decodes a frame body (as returned by ParseFrame or
// Reader.Next) into v.
func Decode(body []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}

// Reader reads a sequence of frames from an untrusted stream (an HTTP
// request body). Frame payloads are bounded by maxPayload; the returned
// body is only valid until the next call to Next.
type Reader struct {
	r   *bufio.Reader
	max uint32
	buf []byte
}

// NewReader wraps r. maxPayload 0 means DefaultMaxFrameBytes.
func NewReader(r io.Reader, maxPayload uint32) *Reader {
	if maxPayload == 0 {
		maxPayload = DefaultMaxFrameBytes
	}
	return &Reader{r: bufio.NewReader(r), max: maxPayload}
}

// Next reads one frame. It returns io.EOF when the stream ends exactly
// on a frame boundary; a stream cut inside a frame yields ErrShortHeader
// or ErrShortFrame, and a corrupt frame yields ErrEmptyFrame, ErrBadCRC,
// or ErrFrameTooLarge.
func (fr *Reader) Next() (kind byte, body []byte, err error) {
	var hdr [FrameOverhead]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return 0, nil, io.EOF // clean boundary (covers empty stream)
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		return 0, nil, ErrShortHeader
	}
	plen := binary.LittleEndian.Uint32(hdr[:])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if plen == 0 {
		return 0, nil, ErrEmptyFrame
	}
	if plen > fr.max {
		return 0, nil, ErrFrameTooLarge
	}
	if uint32(cap(fr.buf)) < plen {
		fr.buf = make([]byte, plen)
	}
	payload := fr.buf[:plen]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, ErrShortFrame
	}
	if CRC(payload) != wantCRC {
		return 0, nil, ErrBadCRC
	}
	return payload[0], payload[1:], nil
}

// Hello is the first frame of every ingest request body: the stream
// analogue of the journal segment header. It binds the request to a run
// identity so the aggregator detects a different run re-using a source
// name instead of splicing unrelated runs together.
type Hello struct {
	// RunID ties a run's uploads together. The aggregator rejects a
	// hello whose RunID differs from the source's bound identity.
	RunID string
	// App names the recorded workload (informational).
	App string
	// Threads is the graph's thread-slot capacity; the aggregator
	// rebuilds the per-source graph with it.
	Threads int
	// BaseEpoch is the first epoch this request carries (informational;
	// the server's dedup keys on each delta's own epoch).
	BaseEpoch uint64
}

// Seal is the clean-close marker: the recorder finished and no further
// epochs will arrive for the source.
type Seal struct {
	// FinalEpoch must match the last streamed delta's epoch.
	FinalEpoch uint64
}
