package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

type testRec struct {
	Name string
	N    uint64
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	var err error
	recs := []testRec{{"alpha", 1}, {"beta", 2}, {"gamma", 3}}
	for i, r := range recs {
		buf, err = AppendFrame(buf, byte(i), &r)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}

	// Slice-based parse.
	rest := buf
	for i, want := range recs {
		kind, body, flen, err := ParseFrame(rest, 0)
		if err != nil {
			t.Fatalf("ParseFrame %d: %v", i, err)
		}
		if kind != byte(i) {
			t.Fatalf("frame %d kind = %d", i, kind)
		}
		var got testRec
		if err := Decode(body, &got); err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
		rest = rest[flen:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after parsing all frames", len(rest))
	}

	// Stream-based parse.
	fr := NewReader(bytes.NewReader(buf), 0)
	for i, want := range recs {
		kind, body, err := fr.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if kind != byte(i) {
			t.Fatalf("stream frame %d kind = %d", i, kind)
		}
		var got testRec
		if err := Decode(body, &got); err != nil {
			t.Fatalf("stream Decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("stream frame %d = %+v, want %+v", i, got, want)
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("Next at end = %v, want io.EOF", err)
	}
}

func TestParseFrameErrors(t *testing.T) {
	frame, err := AppendFrame(nil, KindDelta, &testRec{"x", 9})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, max uint32, want error) {
		t.Helper()
		if _, _, _, err := ParseFrame(data, max); !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}
	check("short header", frame[:FrameOverhead-1], 0, ErrShortHeader)
	check("short body", frame[:len(frame)-1], 0, ErrShortFrame)
	check("too large", frame, 1, ErrFrameTooLarge)

	empty := make([]byte, FrameOverhead)
	check("empty", empty, 0, ErrEmptyFrame)

	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x40
	check("bad crc", flipped, 0, ErrBadCRC)
}

func TestReaderErrors(t *testing.T) {
	frame, err := AppendFrame(nil, KindDelta, &testRec{"x", 9})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, max uint32, want error) {
		t.Helper()
		fr := NewReader(bytes.NewReader(data), max)
		if _, _, err := fr.Next(); !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}
	check("cut in header", frame[:3], 0, ErrShortHeader)
	check("cut in body", frame[:len(frame)-2], 0, ErrShortFrame)
	check("over cap", frame, 4, ErrFrameTooLarge)

	flipped := append([]byte(nil), frame...)
	flipped[FrameOverhead+2] ^= 0x01
	check("bad crc", flipped, 0, ErrBadCRC)

	// A hostile length prefix must be rejected before allocation.
	huge := make([]byte, FrameOverhead)
	binary.LittleEndian.PutUint32(huge, 1<<31)
	check("hostile length", huge, 0, ErrFrameTooLarge)
}

func TestPreamble(t *testing.T) {
	pre := Preamble()
	if len(pre) != PreambleLen {
		t.Fatalf("preamble length %d, want %d", len(pre), PreambleLen)
	}
	if string(pre[:8]) != Magic {
		t.Fatalf("preamble magic %q", pre[:8])
	}
	if v := binary.LittleEndian.Uint32(pre[8:]); v != Version {
		t.Fatalf("preamble version %d", v)
	}
}
