package mem

import (
	"errors"
	"testing"
)

func mustBacking(t *testing.T, name string, base Addr, size, ps int) *Backing {
	t.Helper()
	b, err := NewBacking(name, base, size, ps)
	if err != nil {
		t.Fatalf("NewBacking(%s): %v", name, err)
	}
	return b
}

func TestProtString(t *testing.T) {
	tests := []struct {
		p    Prot
		want string
	}{
		{ProtNone, "--"}, {ProtRead, "r-"}, {ProtWrite, "-w"}, {ProtRead | ProtWrite, "rw"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Prot(%d).String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessRead.String() != "read" || AccessWrite.String() != "write" {
		t.Error("access kind strings wrong")
	}
	if AccessKind(0).String() != "unknown" {
		t.Error("zero access kind should be unknown")
	}
}

func TestNewBackingValidation(t *testing.T) {
	if _, err := NewBacking("x", 0x1000, 4096, 100); !errors.Is(err, ErrMisalignment) {
		t.Errorf("non power-of-two page size: err = %v", err)
	}
	if _, err := NewBacking("x", 0x1001, 4096, 4096); !errors.Is(err, ErrBadRegion) {
		t.Errorf("unaligned base: err = %v", err)
	}
	if _, err := NewBacking("x", 0x1000, 0, 4096); !errors.Is(err, ErrBadRegion) {
		t.Errorf("zero size: err = %v", err)
	}
}

func TestBackingReadZeroFill(t *testing.T) {
	b := mustBacking(t, "g", 0x1000, 8192, 4096)
	buf := []byte{0xff, 0xff, 0xff}
	if err := b.ReadAt(0x1100, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Errorf("byte %d = %#x, want zero fill", i, v)
		}
	}
}

func TestBackingWriteReadRoundTrip(t *testing.T) {
	b := mustBacking(t, "g", 0x1000, 16384, 4096)
	data := []byte("hello, shared memory")
	if _, err := b.WriteAt(0x1ff0, data, 1); err != nil {
		t.Fatal(err) // crosses a page boundary on purpose
	}
	got := make([]byte, len(data))
	if err := b.ReadAt(0x1ff0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("round trip = %q, want %q", got, data)
	}
}

func TestBackingOutOfRange(t *testing.T) {
	b := mustBacking(t, "g", 0x1000, 4096, 4096)
	var seg *SegfaultError
	if err := b.ReadAt(0x5000, make([]byte, 1)); !errors.As(err, &seg) {
		t.Errorf("out-of-range read: err = %v", err)
	}
	if err := b.ReadAt(0x1ffe, make([]byte, 8)); !errors.As(err, &seg) {
		t.Errorf("read past end: err = %v", err)
	}
	if _, err := b.WriteAt(0x0, []byte{1}, 0); !errors.Is(err, ErrUnmapped) {
		t.Errorf("unmapped write: err = %v", err)
	}
}

func TestFalseSharingConflicts(t *testing.T) {
	b := mustBacking(t, "g", 0x1000, 4096, 4096)
	// Thread 1 writes a line, thread 2 writes the same line: conflict.
	if c, _ := b.WriteAt(0x1000, []byte{1}, 1); c != 0 {
		t.Errorf("first write conflicts = %d, want 0", c)
	}
	if c, _ := b.WriteAt(0x1004, []byte{2}, 2); c != 1 {
		t.Errorf("second writer conflicts = %d, want 1", c)
	}
	// Once two threads have fought over the line it stays contended:
	// every subsequent write pays (the line ping-pongs in reality).
	if c, _ := b.WriteAt(0x1008, []byte{3}, 2); c != 1 {
		t.Errorf("write to contended line conflicts = %d, want 1 (sticky)", c)
	}
	// A different cache line does not conflict.
	if c, _ := b.WriteAt(0x1040, []byte{4}, 1); c != 0 {
		t.Errorf("different line conflicts = %d, want 0", c)
	}
}

// faultRecorder collects faults for assertions.
type faultRecorder struct {
	faults []Fault
}

func (f *faultRecorder) OnFault(ft Fault) { f.faults = append(f.faults, ft) }

func newTestSpace(t *testing.T, tracking bool) (*Space, *faultRecorder, *Backing) {
	t.Helper()
	b := mustBacking(t, "heap", 0x10000, 1<<20, 4096)
	rec := &faultRecorder{}
	return NewSpace(7, []*Backing{b}, rec, tracking), rec, b
}

func TestSpaceFirstTouchFaults(t *testing.T) {
	s, rec, _ := newTestSpace(t, true)
	buf := make([]byte, 4)

	if err := s.Read(0x10000, buf); err != nil {
		t.Fatal(err)
	}
	if len(rec.faults) != 1 || rec.faults[0].Kind != AccessRead {
		t.Fatalf("after first read: faults = %+v", rec.faults)
	}
	// Second read of same page: no new fault.
	if err := s.Read(0x10100, buf); err != nil {
		t.Fatal(err)
	}
	if len(rec.faults) != 1 {
		t.Fatalf("second read faulted: %+v", rec.faults)
	}
	// First write to same page: one write fault.
	if _, err := s.Write(0x10000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if len(rec.faults) != 2 || rec.faults[1].Kind != AccessWrite {
		t.Fatalf("after first write: faults = %+v", rec.faults)
	}
	// Subsequent read and write: silent.
	if _, err := s.Write(0x10001, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(0x10002, buf); err != nil {
		t.Fatal(err)
	}
	if len(rec.faults) != 2 {
		t.Fatalf("silent accesses faulted: %+v", rec.faults)
	}
}

func TestSpaceWriteFirstImpliesReadable(t *testing.T) {
	s, rec, _ := newTestSpace(t, true)
	if _, err := s.Write(0x10000, []byte{9}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := s.Read(0x10000, buf); err != nil {
		t.Fatal(err)
	}
	if len(rec.faults) != 1 {
		t.Fatalf("read after write faulted: %+v", rec.faults)
	}
	if buf[0] != 9 {
		t.Errorf("read own write = %d, want 9", buf[0])
	}
	if got := s.ProtOf(0x10000); got != ProtRead|ProtWrite {
		t.Errorf("prot = %v, want rw", got)
	}
}

func TestSpaceIsolationUntilCommit(t *testing.T) {
	b := mustBacking(t, "heap", 0x10000, 1<<20, 4096)
	s1 := NewSpace(1, []*Backing{b}, nil, true)
	s2 := NewSpace(2, []*Backing{b}, nil, true)

	if _, err := s1.StoreU64(0x10000, 42); err != nil {
		t.Fatal(err)
	}
	// s2 must not see the uncommitted write (RC isolation).
	v, err := s2.LoadU64(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("s2 saw uncommitted write: %d", v)
	}
	res := s1.Commit()
	if res.DirtyPages != 1 || res.CommittedBytes == 0 {
		t.Errorf("commit result = %+v", res)
	}
	// s2's view was established pre-commit; it must commit (drop) to see it.
	s2.Commit()
	v, err = s2.LoadU64(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("s2 after sync = %d, want 42", v)
	}
}

func TestSpaceCommitLastWriterWins(t *testing.T) {
	b := mustBacking(t, "heap", 0x10000, 1<<20, 4096)
	s1 := NewSpace(1, []*Backing{b}, nil, true)
	s2 := NewSpace(2, []*Backing{b}, nil, true)

	if _, err := s1.StoreU64(0x10000, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.StoreU64(0x10000, 2); err != nil {
		t.Fatal(err)
	}
	s1.Commit()
	s2.Commit() // later commit wins
	s3 := NewSpace(3, []*Backing{b}, nil, true)
	v, err := s3.LoadU64(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("value = %d, want 2 (last writer wins)", v)
	}
}

func TestSpaceCommitDisjointWritesMerge(t *testing.T) {
	// Two threads write disjoint halves of the same page; both commits
	// must survive (diff-based merge, not whole-page copy).
	b := mustBacking(t, "heap", 0x10000, 1<<20, 4096)
	s1 := NewSpace(1, []*Backing{b}, nil, true)
	s2 := NewSpace(2, []*Backing{b}, nil, true)

	if _, err := s1.StoreU64(0x10000, 111); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.StoreU64(0x10800, 222); err != nil {
		t.Fatal(err)
	}
	s1.Commit()
	s2.Commit()
	s3 := NewSpace(3, []*Backing{b}, nil, true)
	v1, _ := s3.LoadU64(0x10000)
	v2, _ := s3.LoadU64(0x10800)
	if v1 != 111 || v2 != 222 {
		t.Errorf("merged values = %d, %d; want 111, 222", v1, v2)
	}
}

func TestSpaceCommitResetsTracking(t *testing.T) {
	s, rec, _ := newTestSpace(t, true)
	if _, err := s.Write(0x10000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	s.Commit()
	if s.TrackedPages() != 0 {
		t.Errorf("pages tracked after commit = %d", s.TrackedPages())
	}
	// Next access faults again (new sub-computation).
	if err := s.Read(0x10000, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if len(rec.faults) != 2 {
		t.Errorf("faults = %d, want 2", len(rec.faults))
	}
}

func TestSpaceNativeMode(t *testing.T) {
	s, rec, b := newTestSpace(t, false)
	if _, err := s.StoreU64(0x10000, 5); err != nil {
		t.Fatal(err)
	}
	if len(rec.faults) != 0 {
		t.Errorf("native mode faulted: %+v", rec.faults)
	}
	// Write is immediately visible in the backing (no isolation).
	got := make([]byte, 8)
	if err := b.ReadAt(0x10000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Errorf("backing byte = %d, want 5", got[0])
	}
	if res := s.Commit(); res.DirtyPages != 0 {
		t.Errorf("native commit did work: %+v", res)
	}
}

func TestSpaceSegfault(t *testing.T) {
	s, _, _ := newTestSpace(t, true)
	err := s.Read(0xdead0000, make([]byte, 1))
	var seg *SegfaultError
	if !errors.As(err, &seg) {
		t.Fatalf("err = %v, want SegfaultError", err)
	}
	if seg.Addr != 0xdead0000 {
		t.Errorf("fault addr = %#x", uint64(seg.Addr))
	}
	if seg.Error() == "" {
		t.Error("empty error message")
	}
}

func TestSpaceStatsCounts(t *testing.T) {
	s, _, _ := newTestSpace(t, true)
	for i := 0; i < 10; i++ {
		if _, err := s.StoreU8(Addr(0x10000+i*4096), 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Commit()
	st := s.Stats()
	if st.WriteFaults != 10 {
		t.Errorf("WriteFaults = %d, want 10", st.WriteFaults)
	}
	if st.TwinCopies != 10 {
		t.Errorf("TwinCopies = %d, want 10", st.TwinCopies)
	}
	if st.CommittedPages != 10 {
		t.Errorf("CommittedPages = %d, want 10", st.CommittedPages)
	}
	if st.Faults() != 10 {
		t.Errorf("Faults() = %d, want 10", st.Faults())
	}
	if st.Writes != 10 {
		t.Errorf("Writes = %d", st.Writes)
	}
}

func TestTypedAccessors(t *testing.T) {
	s, _, _ := newTestSpace(t, true)
	if _, err := s.StoreU32(0x10010, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v32, err := s.LoadU32(0x10010)
	if err != nil || v32 != 0xdeadbeef {
		t.Errorf("u32 = %#x, err=%v", v32, err)
	}
	if _, err := s.StoreF64(0x10018, 3.25); err != nil {
		t.Fatal(err)
	}
	f, err := s.LoadF64(0x10018)
	if err != nil || f != 3.25 {
		t.Errorf("f64 = %v, err=%v", f, err)
	}
	if _, err := s.StoreU8(0x10020, 200); err != nil {
		t.Fatal(err)
	}
	v8, err := s.LoadU8(0x10020)
	if err != nil || v8 != 200 {
		t.Errorf("u8 = %d, err=%v", v8, err)
	}
}

func TestDefaultLayoutDisjoint(t *testing.T) {
	l := DefaultLayout()
	type region struct {
		base Addr
		size int
	}
	regions := []region{
		{l.GlobalsBase, l.GlobalsSize},
		{l.HeapBase, l.HeapSize},
		{l.InputBase, l.InputSize},
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			aEnd := uint64(a.base) + uint64(a.size)
			bEnd := uint64(b.base) + uint64(b.size)
			if uint64(a.base) < bEnd && uint64(b.base) < aEnd {
				t.Errorf("regions %d and %d overlap", i, j)
			}
		}
	}
}
