package mem

import (
	"math/bits"
	"sort"
)

// Space is one process's private view of the shared backings — the
// simulated equivalent of a forked process's address space in the
// threads-as-processes design (§V-A). A Space is owned by exactly one
// simulated thread; only the shared Backing layer is synchronized.
//
// Life cycle per sub-computation:
//
//  1. ProtectAll: every known page drops to PROT_NONE (the paper calls
//     mprotect(PROT_NONE) at the start of each sub-computation).
//  2. Accesses fault on first read / first write per page; the FaultHandler
//     records the access, then the Space upgrades protection. First write
//     also materializes a private copy-on-write page plus a twin snapshot.
//  3. Commit: dirty pages diff against their twins and publish to the
//     shared backing; private copies drop so the next sub-computation
//     observes other threads' committed writes (Release Consistency).
//
// Because every tracked access funnels through here, the lookup path is
// engineered flat: page ids derive by shift (uniform page size), a one-entry
// cache short-circuits consecutive accesses to the same page (the
// overwhelmingly common pattern), backings resolve by binary search over a
// base-sorted slice, and Commit recycles page buffers and spacePage structs
// through a free list instead of re-allocating ~2 pages per first write.
type Space struct {
	pid      int32
	pageSize int
	// pageShift/pageMask replace div/mod on every access; valid only when
	// uniform (all backings share one page size — the runtime always
	// configures them that way, but nothing in the API forces it).
	pageShift uint
	pageMask  uint64
	uniform   bool
	backings  []*Backing // sorted by base address
	handler   FaultHandler
	tracking  bool

	pages map[PageID]*spacePage

	// One-entry page cache: the last page resolved by pageFor. lastSP is
	// nil whenever the cache is invalid (startup and after Commit).
	lastID PageID
	lastSP *spacePage
	// lastB caches the last backing resolved, serving both the
	// non-tracking access path and page materialization.
	lastB *Backing

	pool pagePool

	stats SpaceStats
}

// spacePage is the per-process state of one page.
type spacePage struct {
	backing *Backing
	prot    Prot
	priv    []byte // private CoW copy; nil until first write
	twin    []byte // snapshot at first write, for diffing
}

// pagePool recycles page buffers and spacePage structs between
// sub-computations. A Space is single-owner, so plain free lists beat
// sync.Pool (no atomics); the lists are bounded by the peak per-sub
// working set. Recycled buffers are fully overwritten before reuse
// (SnapshotPage writes every byte), which TestPoolRecycledTwinNoLeak pins.
type pagePool struct {
	bufs  [][]byte
	metas []*spacePage
}

// getBuf returns a recycled page buffer or allocates a fresh one.
func (p *pagePool) getBuf(size int) []byte {
	if n := len(p.bufs); n > 0 {
		b := p.bufs[n-1]
		p.bufs[n-1] = nil
		p.bufs = p.bufs[:n-1]
		if len(b) == size {
			return b
		}
	}
	return make([]byte, size)
}

// putBuf returns a page buffer to the free list.
func (p *pagePool) putBuf(b []byte) {
	if b != nil {
		p.bufs = append(p.bufs, b)
	}
}

// getMeta returns a recycled (zeroed) spacePage or a fresh one.
func (p *pagePool) getMeta() *spacePage {
	if n := len(p.metas); n > 0 {
		sp := p.metas[n-1]
		p.metas[n-1] = nil
		p.metas = p.metas[:n-1]
		return sp
	}
	return new(spacePage)
}

// putMeta clears and recycles a spacePage.
func (p *pagePool) putMeta(sp *spacePage) {
	*sp = spacePage{}
	p.metas = append(p.metas, sp)
}

// SpaceStats counts the events the evaluation tables report.
type SpaceStats struct {
	// ReadFaults and WriteFaults are protection faults taken (Table 7).
	ReadFaults  uint64
	WriteFaults uint64
	// TwinCopies counts pages duplicated for diffing.
	TwinCopies uint64
	// CommittedPages and CommittedBytes measure shared-memory commits.
	CommittedPages uint64
	CommittedBytes uint64
	// DiffedBytes counts bytes compared during diffing.
	DiffedBytes uint64
	// Reads/Writes count tracked accesses (not faults).
	Reads  uint64
	Writes uint64
}

// Faults returns total protection faults.
func (s SpaceStats) Faults() uint64 { return s.ReadFaults + s.WriteFaults }

// NewSpace creates a process view over the given backings. If tracking is
// false the space is a native view: no protection checks, writes go
// straight to the shared backing (the pthreads baseline).
func NewSpace(pid int32, backings []*Backing, handler FaultHandler, tracking bool) *Space {
	ps := DefaultPageSize
	if len(backings) > 0 {
		ps = backings[0].PageSize()
	}
	sorted := make([]*Backing, len(backings))
	copy(sorted, backings)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].base < sorted[j].base })
	uniform := true
	for _, b := range sorted {
		if b.PageSize() != ps {
			uniform = false
			break
		}
	}
	return &Space{
		pid:       pid,
		pageSize:  ps,
		pageShift: uint(bits.TrailingZeros(uint(ps))),
		pageMask:  uint64(ps) - 1,
		uniform:   uniform,
		backings:  sorted,
		handler:   handler,
		tracking:  tracking,
		pages:     make(map[PageID]*spacePage),
	}
}

// PID returns the owning process id.
func (s *Space) PID() int32 { return s.pid }

// Tracking reports whether the space enforces protection (INSPECTOR mode).
func (s *Space) Tracking() bool { return s.tracking }

// Stats returns a copy of the per-space counters.
func (s *Space) Stats() SpaceStats { return s.stats }

// PageSize returns the page size.
func (s *Space) PageSize() int { return s.pageSize }

// backingFor locates the backing containing a, or nil. The last resolved
// backing is checked first; misses binary-search the base-sorted slice.
func (s *Space) backingFor(a Addr) *Backing {
	if b := s.lastB; b != nil && b.Contains(a) {
		return b
	}
	// First backing with base+size > a; it contains a iff base <= a.
	lo, hi := 0, len(s.backings)
	for lo < hi {
		mid := (lo + hi) / 2
		b := s.backings[mid]
		if uint64(a) < uint64(b.base)+uint64(b.size) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(s.backings) && s.backings[lo].base <= a {
		s.lastB = s.backings[lo]
		return s.backings[lo]
	}
	return nil
}

// pageFor returns (materializing if needed) the per-process page state.
// Consecutive accesses to the same page resolve through the one-entry
// cache without touching the map or the backing list.
func (s *Space) pageFor(a Addr) (*spacePage, PageID, error) {
	if s.uniform {
		id := PageID(uint64(a) >> s.pageShift)
		// The bounds check keeps cache hits from reaching past a backing
		// whose size is not a page multiple (its tail page extends beyond
		// the region): such an access must segfault, as the scan path does.
		if sp := s.lastSP; sp != nil && id == s.lastID && sp.backing.Contains(a) {
			return sp, id, nil
		}
		return s.pageForSlow(a, id)
	}
	b := s.backingFor(a)
	if b == nil {
		return nil, 0, &SegfaultError{Addr: a, Kind: AccessRead}
	}
	return s.pageLookup(b, b.PageOf(a))
}

// pageForSlow handles a one-entry-cache miss on the uniform-page-size path.
func (s *Space) pageForSlow(a Addr, id PageID) (*spacePage, PageID, error) {
	b := s.backingFor(a)
	if b == nil {
		return nil, 0, &SegfaultError{Addr: a, Kind: AccessRead}
	}
	return s.pageLookup(b, id)
}

// pageLookup finds or materializes the spacePage and refills the cache.
func (s *Space) pageLookup(b *Backing, id PageID) (*spacePage, PageID, error) {
	sp := s.pages[id]
	if sp == nil {
		sp = s.pool.getMeta()
		sp.backing = b
		sp.prot = ProtNone
		s.pages[id] = sp
	}
	s.lastID, s.lastSP = id, sp
	return sp, id, nil
}

// fault delivers a protection fault to the handler and upgrades the page.
func (s *Space) fault(sp *spacePage, id PageID, a Addr, kind AccessKind) {
	f := Fault{Page: id, Addr: a, Kind: kind}
	if kind == AccessRead {
		s.stats.ReadFaults++
	} else {
		s.stats.WriteFaults++
	}
	if s.handler != nil {
		s.handler.OnFault(f)
	}
	switch kind {
	case AccessRead:
		sp.prot |= ProtRead
	case AccessWrite:
		// A write fault makes the page writable; the private copy it
		// materializes is necessarily readable too, so subsequent
		// reads of a written page do not fault again (matching real
		// mprotect upgrades to PROT_READ|PROT_WRITE).
		sp.prot |= ProtRead | ProtWrite
	}
}

// ensurePrivate materializes the CoW copy and twin for a page about to be
// written. Buffers come from the pool; SnapshotPage overwrites every byte
// of the recycled buffer before it is read, so no bytes can leak from a
// previous sub-computation.
func (s *Space) ensurePrivate(sp *spacePage, id PageID) {
	if sp.priv != nil {
		return
	}
	sp.priv = s.pool.getBuf(s.pageSize)
	sp.backing.SnapshotPage(id, sp.priv)
	sp.twin = s.pool.getBuf(s.pageSize)
	copy(sp.twin, sp.priv)
	s.stats.TwinCopies++
}

// Read copies len(dst) bytes from address a into dst, faulting as needed.
func (s *Space) Read(a Addr, dst []byte) error {
	if len(dst) == 0 {
		return nil
	}
	if !s.tracking {
		b := s.backingFor(a)
		if b == nil {
			return &SegfaultError{Addr: a, Kind: AccessRead}
		}
		s.stats.Reads++
		return b.ReadAt(a, dst)
	}
	s.stats.Reads++
	off := 0
	for off < len(dst) {
		cur := a + Addr(off)
		sp, id, err := s.pageFor(cur)
		if err != nil {
			return err
		}
		if sp.prot&ProtRead == 0 {
			s.fault(sp, id, cur, AccessRead)
		}
		po := int(uint64(cur) & s.pageMask)
		if !s.uniform {
			po = int(uint64(cur) % uint64(s.pageSize))
		}
		n := s.pageSize - po
		if n > len(dst)-off {
			n = len(dst) - off
		}
		if sp.priv != nil {
			copy(dst[off:off+n], sp.priv[po:po+n])
		} else if err := sp.backing.ReadAt(cur, dst[off:off+n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Write stores src at address a, faulting and copying-on-write as needed.
// In native (non-tracking) mode it returns the false-sharing conflict
// count so the caller can charge the coherence penalty.
func (s *Space) Write(a Addr, src []byte) (conflicts int, err error) {
	if len(src) == 0 {
		return 0, nil
	}
	if !s.tracking {
		b := s.backingFor(a)
		if b == nil {
			return 0, &SegfaultError{Addr: a, Kind: AccessWrite}
		}
		s.stats.Writes++
		return b.WriteAt(a, src, s.pid)
	}
	s.stats.Writes++
	off := 0
	for off < len(src) {
		cur := a + Addr(off)
		sp, id, err := s.pageFor(cur)
		if err != nil {
			return 0, err
		}
		if sp.prot&ProtWrite == 0 {
			s.fault(sp, id, cur, AccessWrite)
		}
		s.ensurePrivate(sp, id)
		po := int(uint64(cur) & s.pageMask)
		if !s.uniform {
			po = int(uint64(cur) % uint64(s.pageSize))
		}
		n := s.pageSize - po
		if n > len(src)-off {
			n = len(src) - off
		}
		copy(sp.priv[po:po+n], src[off:off+n])
		off += n
	}
	return 0, nil
}

// CommitResult reports the work done by one shared-memory commit; the
// threading library converts it into virtual-time charges.
type CommitResult struct {
	DirtyPages     int
	DiffedBytes    int
	CommittedBytes int
}

// Commit diffs every dirty page against its twin, publishes the changes to
// the shared backing (last-writer-wins), and drops all private copies and
// protections so the next sub-computation starts cold and observes other
// threads' commits. This is the synchronization-point step of §V-A.
// Dropped page buffers and page records return to the pool for the next
// sub-computation's first writes.
func (s *Space) Commit() CommitResult {
	var res CommitResult
	if !s.tracking {
		return res
	}
	for id, sp := range s.pages {
		if sp.priv != nil {
			ranges := Diff(sp.priv, sp.twin, 8)
			res.DiffedBytes += s.pageSize
			if n := DiffBytes(ranges); n > 0 {
				sp.backing.ApplyDiff(id, sp.priv, ranges)
				res.DirtyPages++
				res.CommittedBytes += n
			}
			s.pool.putBuf(sp.priv)
			s.pool.putBuf(sp.twin)
		}
		s.pool.putMeta(sp)
	}
	clear(s.pages)
	s.lastSP = nil
	s.stats.CommittedPages += uint64(res.DirtyPages)
	s.stats.CommittedBytes += uint64(res.CommittedBytes)
	s.stats.DiffedBytes += uint64(res.DiffedBytes)
	return res
}

// ProtectAll drops every materialized page to PROT_NONE without committing
// (used by tests and by the snapshot facility to force re-faulting).
func (s *Space) ProtectAll() {
	for _, sp := range s.pages {
		sp.prot = ProtNone
	}
}

// TrackedPages returns the number of pages this space currently tracks.
func (s *Space) TrackedPages() int { return len(s.pages) }

// ProtOf returns the current protection of the page containing a, for
// tests and debugging. Unknown pages report ProtNone.
func (s *Space) ProtOf(a Addr) Prot {
	b := s.backingFor(a)
	if b == nil {
		return ProtNone
	}
	if sp := s.pages[b.PageOf(a)]; sp != nil {
		return sp.prot
	}
	return ProtNone
}
