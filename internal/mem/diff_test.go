package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDiffIdentical(t *testing.T) {
	a := bytes.Repeat([]byte{7}, 256)
	b := bytes.Repeat([]byte{7}, 256)
	if got := Diff(a, b, 8); len(got) != 0 {
		t.Errorf("identical pages diff = %v", got)
	}
}

func TestDiffSingleByte(t *testing.T) {
	a := make([]byte, 128)
	b := make([]byte, 128)
	a[64] = 1
	got := Diff(a, b, 8)
	if len(got) != 1 || got[0].Off != 64 || got[0].Len != 1 {
		t.Errorf("diff = %v, want one range at 64 len 1", got)
	}
}

func TestDiffCoalescesNearbyRuns(t *testing.T) {
	a := make([]byte, 128)
	b := make([]byte, 128)
	a[10] = 1
	a[14] = 1 // gap of 3 < minGap 8: must coalesce
	got := Diff(a, b, 8)
	if len(got) != 1 {
		t.Fatalf("diff = %v, want single coalesced range", got)
	}
	if got[0].Off != 10 || got[0].Len != 5 {
		t.Errorf("coalesced range = %+v, want {10 5}", got[0])
	}
}

func TestDiffSplitsDistantRuns(t *testing.T) {
	a := make([]byte, 128)
	b := make([]byte, 128)
	a[0] = 1
	a[100] = 1
	got := Diff(a, b, 8)
	if len(got) != 2 {
		t.Fatalf("diff = %v, want two ranges", got)
	}
}

func TestDiffWholePage(t *testing.T) {
	a := bytes.Repeat([]byte{1}, 64)
	b := make([]byte, 64)
	got := Diff(a, b, 8)
	if len(got) != 1 || got[0].Off != 0 || got[0].Len != 64 {
		t.Errorf("diff = %v", got)
	}
	if DiffBytes(got) != 64 {
		t.Errorf("DiffBytes = %d, want 64", DiffBytes(got))
	}
}

func TestDiffMismatchedSizes(t *testing.T) {
	got := Diff(make([]byte, 10), make([]byte, 5), 8)
	if len(got) != 1 || got[0].Len != 5 {
		t.Errorf("mismatched sizes diff = %v", got)
	}
	if got := Diff(nil, nil, 8); got != nil {
		t.Errorf("nil diff = %v", got)
	}
	if got := Diff(make([]byte, 3), nil, 8); len(got) != 0 {
		t.Errorf("empty twin diff = %v", got)
	}
}

func TestDiffTrailingChange(t *testing.T) {
	a := make([]byte, 32)
	b := make([]byte, 32)
	a[31] = 9
	got := Diff(a, b, 4)
	if len(got) != 1 || got[0].Off != 31 || got[0].Len != 1 {
		t.Errorf("trailing diff = %v", got)
	}
}

// applyRanges replays diff ranges from priv onto base, as Backing.ApplyDiff
// does, so the property test can verify reconstruction.
func applyRanges(base, priv []byte, ranges []DiffRange) {
	for _, r := range ranges {
		copy(base[r.Off:r.Off+r.Len], priv[r.Off:r.Off+r.Len])
	}
}

func TestQuickDiffReconstructs(t *testing.T) {
	// For any twin and any set of mutations: applying Diff(priv, twin)
	// ranges onto a copy of twin must reproduce priv exactly, for any
	// coalescing gap.
	f := func(seed int64, gap8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		gap := int(gap8%16) + 1
		twin := make([]byte, 256)
		r.Read(twin)
		priv := make([]byte, 256)
		copy(priv, twin)
		for i := 0; i < r.Intn(40); i++ {
			priv[r.Intn(len(priv))] = byte(r.Intn(256))
		}
		ranges := Diff(priv, twin, gap)
		rebuilt := make([]byte, len(twin))
		copy(rebuilt, twin)
		applyRanges(rebuilt, priv, ranges)
		return bytes.Equal(rebuilt, priv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDiffRangesSortedDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		twin := make([]byte, 128)
		priv := make([]byte, 128)
		r.Read(priv)
		ranges := Diff(priv, twin, 8)
		last := -1
		for _, rg := range ranges {
			if rg.Off <= last || rg.Len <= 0 || rg.Off+rg.Len > len(priv) {
				return false
			}
			last = rg.Off + rg.Len - 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// mutate applies a random write pattern to priv: single bytes, short runs,
// word stores, and occasional long memset-style stretches — the store mix
// the tracked workloads generate.
func mutate(r *rand.Rand, priv []byte) {
	for i := 0; i < r.Intn(24); i++ {
		switch r.Intn(4) {
		case 0: // single byte
			priv[r.Intn(len(priv))] = byte(r.Intn(256))
		case 1: // 8-byte word
			off := r.Intn(len(priv))
			for k := off; k < off+8 && k < len(priv); k++ {
				priv[k] = byte(r.Intn(256))
			}
		case 2: // short run
			off := r.Intn(len(priv))
			n := r.Intn(32)
			for k := off; k < off+n && k < len(priv); k++ {
				priv[k] = byte(r.Intn(256))
			}
		case 3: // long stretch
			off := r.Intn(len(priv))
			n := r.Intn(len(priv)/2 + 1)
			v := byte(r.Intn(256))
			for k := off; k < off+n && k < len(priv); k++ {
				priv[k] = v
			}
		}
	}
}

// TestQuickDiffMatchesReference pins the word-wise Diff to the retained
// byte-at-a-time reference: for random pages, random write patterns, and
// every coalescing gap the system uses, the returned ranges are identical.
func TestQuickDiffMatchesReference(t *testing.T) {
	for _, minGap := range []int{1, 4, 8, 64} {
		f := func(seed int64, odd uint8) bool {
			r := rand.New(rand.NewSource(seed))
			// Mix page-sized and odd-sized buffers so boundary fixups at
			// non-word-multiple lengths are exercised too.
			size := 4096
			if odd%3 != 0 {
				size = r.Intn(700) + 1
			}
			twin := make([]byte, size)
			r.Read(twin)
			priv := make([]byte, size)
			copy(priv, twin)
			mutate(r, priv)
			got := Diff(priv, twin, minGap)
			want := diffReference(priv, twin, minGap)
			if len(got) != len(want) {
				t.Logf("minGap=%d size=%d: got %v want %v", minGap, size, got, want)
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("minGap=%d size=%d range %d: got %v want %v", minGap, size, i, got[i], want[i])
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("minGap=%d: %v", minGap, err)
		}
	}
}

// TestQuickApplyDiffReconstructs drives the full commit data path: a page
// lives in a real Backing, a twin snapshot is taken, the private copy
// mutates, and ApplyDiff publishes Diff's ranges — after which the backing
// holds priv exactly, for every coalescing gap.
func TestQuickApplyDiffReconstructs(t *testing.T) {
	for _, minGap := range []int{1, 4, 8, 64} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			const base = 0x1000_0000
			b, err := NewBacking("g", base, 1<<20, DefaultPageSize)
			if err != nil {
				t.Fatal(err)
			}
			init := make([]byte, DefaultPageSize)
			r.Read(init)
			if _, err := b.WriteAt(base, init, 0); err != nil {
				t.Fatal(err)
			}
			id := b.PageOf(base)
			twin := make([]byte, DefaultPageSize)
			b.SnapshotPage(id, twin)
			priv := make([]byte, DefaultPageSize)
			copy(priv, twin)
			mutate(r, priv)
			b.ApplyDiff(id, priv, Diff(priv, twin, minGap))
			got := make([]byte, DefaultPageSize)
			if err := b.ReadAt(base, got); err != nil {
				t.Fatal(err)
			}
			return bytes.Equal(got, priv)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("minGap=%d: %v", minGap, err)
		}
	}
}

func BenchmarkDiffSparse(b *testing.B) {
	priv := make([]byte, 4096)
	twin := make([]byte, 4096)
	priv[100] = 1
	priv[3000] = 2
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Diff(priv, twin, 8)
	}
}

func BenchmarkDiffDense(b *testing.B) {
	priv := bytes.Repeat([]byte{1}, 4096)
	twin := make([]byte, 4096)
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		Diff(priv, twin, 8)
	}
}
