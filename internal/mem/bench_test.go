package mem

import (
	"testing"
)

// The substrate benchmark suite. Every tracked access in the system funnels
// through Space.Read/Write and every synchronization boundary through
// Space.Commit, so these microbenchmarks bound the reproduction's Figure 5/6
// overhead numbers. cmd/inspector-bench re-runs the same scenarios
// (self-timed) to emit the BENCH_mem.json perf snapshot.

const benchRegionBase = 0x4000_0000

func benchBacking(b *testing.B) *Backing {
	b.Helper()
	bk, err := NewBacking("heap", benchRegionBase, 64<<20, DefaultPageSize)
	if err != nil {
		b.Fatal(err)
	}
	return bk
}

func benchSpace(b *testing.B) *Space {
	b.Helper()
	return NewSpace(1, []*Backing{benchBacking(b)}, nil, true)
}

// diffPage builds a 4 KiB priv/twin pair with the given mutation pattern.
func diffPage(pattern string) (priv, twin []byte) {
	priv = make([]byte, DefaultPageSize)
	twin = make([]byte, DefaultPageSize)
	switch pattern {
	case "identical":
	case "sparse":
		priv[100] = 1
		priv[3000] = 2
	case "words":
		// One 8-byte word touched in every 64-byte line — pointer-update
		// style write patterns.
		for i := 0; i < len(priv); i += 64 {
			priv[i] = byte(i)
		}
	case "dense":
		for i := range priv {
			priv[i] = byte(i + 1)
		}
	default:
		panic("unknown diff pattern " + pattern)
	}
	return priv, twin
}

func BenchmarkDiff(b *testing.B) {
	for _, pattern := range []string{"identical", "sparse", "words", "dense"} {
		b.Run(pattern, func(b *testing.B) {
			priv, twin := diffPage(pattern)
			b.ReportAllocs()
			b.SetBytes(DefaultPageSize)
			for i := 0; i < b.N; i++ {
				Diff(priv, twin, 8)
			}
		})
	}
}

// BenchmarkCommit measures one full sub-computation write burst: fault and
// copy-on-write 16 pages, dirty a cache line in each, then diff and publish
// at the synchronization boundary. This is the paper's per-sync-point cost.
func BenchmarkCommit(b *testing.B) {
	const pages = 16
	s := benchSpace(b)
	var line [64]byte
	for i := range line {
		line[i] = byte(i + 1)
	}
	b.ReportAllocs()
	b.SetBytes(pages * DefaultPageSize)
	for i := 0; i < b.N; i++ {
		for p := 0; p < pages; p++ {
			a := Addr(benchRegionBase + p*DefaultPageSize + (i%32)*64)
			if _, err := s.Write(a, line[:]); err != nil {
				b.Fatal(err)
			}
		}
		s.Commit()
	}
}

// BenchmarkReadWrite measures the steady-state tracked access fast path:
// pages already faulted and private, no commits. "seq" walks words within a
// page (the overwhelmingly common access pattern); "strided" hops to a new
// page on every access, defeating any same-page caching.
func BenchmarkReadWrite(b *testing.B) {
	const pages = 16
	run := func(b *testing.B, stride Addr) {
		s := benchSpace(b)
		// Warm every page: fault, CoW, make readable+writable.
		for p := 0; p < pages; p++ {
			if _, err := s.StoreU64(Addr(benchRegionBase+p*DefaultPageSize), 1); err != nil {
				b.Fatal(err)
			}
		}
		span := Addr(pages * DefaultPageSize)
		b.ReportAllocs()
		b.ResetTimer()
		var a Addr
		for i := 0; i < b.N; i++ {
			addr := Addr(benchRegionBase) + a
			v, err := s.LoadU64(addr)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.StoreU64(addr, v+1); err != nil {
				b.Fatal(err)
			}
			a += stride
			if a >= span {
				a = (a + 8) % 4096 % span
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, 8) })
	b.Run("strided", func(b *testing.B) { run(b, DefaultPageSize) })
}

// BenchmarkReadClean measures tracked reads of pages that were never
// written in the current sub-computation (no private copy: reads go to the
// shared backing).
func BenchmarkReadClean(b *testing.B) {
	const pages = 16
	s := benchSpace(b)
	// Materialize backing pages and fault them readable.
	var buf [8]byte
	for p := 0; p < pages; p++ {
		if err := s.Read(Addr(benchRegionBase+p*DefaultPageSize), buf[:]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var a Addr
	for i := 0; i < b.N; i++ {
		if _, err := s.LoadU64(Addr(benchRegionBase) + a); err != nil {
			b.Fatal(err)
		}
		a = (a + 8) % (pages * DefaultPageSize)
	}
}
