// Package mem simulates the virtual-memory machinery INSPECTOR builds on:
// paged address spaces with per-page protection bits, protection faults
// delivered to a user handler (the mprotect(PROT_NONE) + SIGSEGV discipline
// of paper §V-A), private copy-on-write views per process
// (threads-as-processes), twin pages, byte-level diffs, and the shared
// memory commit of the Release Consistency model (TreadMarks/Munin style).
//
// The real system protects pages with mprotect and fields SIGSEGV; here
// every tracked access performs an explicit protection check and calls the
// registered FaultHandler on the first read and first write of each page in
// each sub-computation. The handler records the access in the current
// sub-computation's read/write set and upgrades the page protection so
// subsequent accesses proceed without faulting — exactly the paper's
// first-touch discipline, with identical fault-count behaviour.
//
// # Contract
//
// A Backing is the shared truth of one region; each process holds a
// Space, a private copy-on-write view over the backings. Writes stay
// private until Space.Commit diffs dirty pages against their twins and
// publishes the changed bytes — the shared-memory commit at every
// synchronization boundary. Fault delivery is synchronous and carries
// the resolved page id (Fault.Page); layers above must not re-derive it
// from the address. Space.Read/Write and the typed accessors are the
// hot path: single-page accesses take a pooled, allocation-free fast
// path, and Diff is word-wise with the byte-wise reference retained for
// property tests.
//
// See DESIGN.md, section "The tracked-memory fast path".
package mem
