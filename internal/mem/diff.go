package mem

// DiffRange is one contiguous run of changed bytes within a page.
type DiffRange struct {
	Off int
	Len int
}

// Diff compares a dirty private page against its twin (the copy taken at
// the first write fault) and returns the changed byte ranges — the
// byte-level comparison of paper §V-A. Adjacent changed bytes coalesce
// into one range; runs of unchanged bytes shorter than minGap do not split
// a range (real DSM systems coalesce to reduce per-range bookkeeping).
func Diff(priv, twin []byte, minGap int) []DiffRange {
	if len(priv) != len(twin) {
		// Caller bug; diffing different-sized buffers has no meaning.
		// Treat everything as changed to stay safe.
		n := len(priv)
		if len(twin) < n {
			n = len(twin)
		}
		if n == 0 {
			return nil
		}
		return []DiffRange{{Off: 0, Len: n}}
	}
	var out []DiffRange
	i := 0
	n := len(priv)
	for i < n {
		if priv[i] == twin[i] {
			i++
			continue
		}
		start := i
		end := i + 1
		gap := 0
		for j := end; j < n; j++ {
			if priv[j] != twin[j] {
				end = j + 1
				gap = 0
				continue
			}
			gap++
			if gap >= minGap {
				break
			}
		}
		out = append(out, DiffRange{Off: start, Len: end - start})
		i = end + gap
	}
	return out
}

// DiffBytes returns the total changed bytes across ranges.
func DiffBytes(ranges []DiffRange) int {
	total := 0
	for _, r := range ranges {
		total += r.Len
	}
	return total
}
