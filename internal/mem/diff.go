package mem

import (
	"bytes"
	"encoding/binary"
	"math/bits"
)

// diffChunk is the stride of the bytes.Equal prefix scan. Unchanged spans
// (the common case: most of a dirty page is untouched) skip at this
// granularity through the runtime's vectorized memequal before the scan
// drops to word- and byte-precision at run boundaries.
const diffChunk = 512

// DiffRange is one contiguous run of changed bytes within a page.
type DiffRange struct {
	Off int
	Len int
}

// Diff compares a dirty private page against its twin (the copy taken at
// the first write fault) and returns the changed byte ranges — the
// byte-level comparison of paper §V-A. Adjacent changed bytes coalesce
// into one range; runs of unchanged bytes shorter than minGap do not split
// a range (real DSM systems coalesce to reduce per-range bookkeeping).
//
// The scan compares eight bytes at a time (the word-wise coalescing of the
// DSM lineage this design borrows from) with byte-precise fixups at run
// boundaries; the ranges returned are identical to the byte-at-a-time
// reference implementation diffReference, which the property tests verify.
func Diff(priv, twin []byte, minGap int) []DiffRange {
	if len(priv) != len(twin) {
		// Caller bug; diffing different-sized buffers has no meaning.
		// Treat everything as changed to stay safe.
		n := len(priv)
		if len(twin) < n {
			n = len(twin)
		}
		if n == 0 {
			return nil
		}
		return []DiffRange{{Off: 0, Len: n}}
	}
	var out []DiffRange
	i := 0
	n := len(priv)
	for i < n {
		// Skip the unchanged prefix: chunk-wise, then word-wise, then the
		// exact first changed byte from the xor of the mismatching word.
		for i+diffChunk <= n && bytes.Equal(priv[i:i+diffChunk], twin[i:i+diffChunk]) {
			i += diffChunk
		}
		for i+8 <= n {
			x := binary.LittleEndian.Uint64(priv[i:]) ^ binary.LittleEndian.Uint64(twin[i:])
			if x != 0 {
				i += bits.TrailingZeros64(x) >> 3
				break
			}
			i += 8
		}
		for i < n && priv[i] == twin[i] {
			i++
		}
		if i >= n {
			break
		}
		// A changed run starts at i. Extend it until minGap consecutive
		// unchanged bytes terminate it. end tracks one past the last
		// changed byte seen; gap counts verified-unchanged bytes past end.
		start := i
		end := i + 1
		gap := 0
		j := end
		for j+8 <= n && gap < minGap {
			x := binary.LittleEndian.Uint64(priv[j:]) ^ binary.LittleEndian.Uint64(twin[j:])
			if x == 0 {
				gap += 8
				j += 8
				continue
			}
			if minGap >= 7 && x&0xff != 0 && x>>56 != 0 {
				// Both boundary bytes changed: the run swallows the whole
				// word (interior unchanged bytes are < minGap) and no gap
				// carries across either edge. Fast-forward such words —
				// the steady state of densely rewritten pages.
				end = j + 8
				gap = 0
				j += 8
				for j+8 <= n {
					x = binary.LittleEndian.Uint64(priv[j:]) ^ binary.LittleEndian.Uint64(twin[j:])
					if x == 0 || x&0xff == 0 || x>>56 == 0 {
						break
					}
					end = j + 8
					j += 8
				}
				continue
			}
			// Unchanged bytes at the low end of the word extend the gap;
			// if that completes minGap the run ended before this word's
			// first change (the extra equal bytes skipped beyond minGap
			// are unchanged, so the resume below lands identically).
			if gap+bits.TrailingZeros64(x)>>3 >= minGap {
				gap += bits.TrailingZeros64(x) >> 3
				break
			}
			if minGap >= 7 {
				// No interior unchanged run of a word (≤6 bytes between
				// two changed bytes) can reach minGap, so the word's last
				// change wins: whatever trails it becomes the new gap.
				lz := bits.LeadingZeros64(x) >> 3
				end = j + 8 - lz
				gap = lz
				j += 8
				continue
			}
			// Small minGap: an unchanged run inside this word could split
			// the range. Replay the word byte-precise.
			for k := j; k < j+8 && gap < minGap; k++ {
				if priv[k] != twin[k] {
					end = k + 1
					gap = 0
				} else {
					gap++
				}
			}
			j += 8
		}
		for ; j < n && gap < minGap; j++ {
			if priv[j] != twin[j] {
				end = j + 1
				gap = 0
			} else {
				gap++
			}
		}
		if out == nil {
			// One right-sized allocation covers typical range counts
			// instead of growing through the tiny append size classes.
			out = make([]DiffRange, 0, 16)
		}
		out = append(out, DiffRange{Off: start, Len: end - start})
		i = end + gap
	}
	return out
}

// diffReference is the original byte-at-a-time diff, retained as the
// executable specification for Diff: the property tests assert the
// word-wise scan produces identical ranges for arbitrary pages and gaps.
func diffReference(priv, twin []byte, minGap int) []DiffRange {
	if len(priv) != len(twin) {
		n := len(priv)
		if len(twin) < n {
			n = len(twin)
		}
		if n == 0 {
			return nil
		}
		return []DiffRange{{Off: 0, Len: n}}
	}
	var out []DiffRange
	i := 0
	n := len(priv)
	for i < n {
		if priv[i] == twin[i] {
			i++
			continue
		}
		start := i
		end := i + 1
		gap := 0
		for j := end; j < n; j++ {
			if priv[j] != twin[j] {
				end = j + 1
				gap = 0
				continue
			}
			gap++
			if gap >= minGap {
				break
			}
		}
		out = append(out, DiffRange{Off: start, Len: end - start})
		i = end + gap
	}
	return out
}

// DiffBytes returns the total changed bytes across ranges.
func DiffBytes(ranges []DiffRange) int {
	total := 0
	for _, r := range ranges {
		total += r.Len
	}
	return total
}
