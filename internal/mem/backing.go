package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Backing is a shared backing store for one address range — the simulated
// equivalent of the memory-mapped file behind INSPECTOR's globals and heap
// regions (§V-A "shared memory commit"). All processes map the same
// Backing; each process overlays private copy-on-write pages on top of it.
//
// Pages materialize lazily: the region can be declared huge and only the
// touched pages consume memory.
//
// The Backing additionally carries the false-sharing model used to cost
// *native* (pthreads-style) executions: concurrent writes by different
// threads to the same cache line are detected by tracking the last writer
// of each line. INSPECTOR runs do not consult it — private address spaces
// cannot false-share, which is why linear_regression runs faster under
// INSPECTOR than native in the paper (§VII-A, citing Sheriff).
type Backing struct {
	name     string
	base     Addr
	size     int
	pageSize int

	mu    sync.RWMutex
	pages map[PageID][]byte

	// lineOwners tracks the last writing thread per cache line for the
	// false-sharing model. Keyed by line index within the backing.
	lineOwners sync.Map // map[uint64]int32

	// commits counts shared-memory commits applied to this backing.
	commits atomic.Uint64
	// committedBytes counts bytes published by commits.
	committedBytes atomic.Uint64
}

// NewBacking creates a shared backing store covering [base, base+size).
func NewBacking(name string, base Addr, size, pageSize int) (*Backing, error) {
	if !validPageSize(pageSize) {
		return nil, ErrMisalignment
	}
	if size <= 0 || uint64(base)%uint64(pageSize) != 0 {
		return nil, fmt.Errorf("%w: %s base=0x%x size=%d", ErrBadRegion, name, uint64(base), size)
	}
	return &Backing{
		name:     name,
		base:     base,
		size:     size,
		pageSize: pageSize,
		pages:    make(map[PageID][]byte),
	}, nil
}

// Name returns the region name ("globals", "heap", "input", ...).
func (b *Backing) Name() string { return b.name }

// Base returns the first address covered.
func (b *Backing) Base() Addr { return b.base }

// Size returns the number of bytes covered.
func (b *Backing) Size() int { return b.size }

// PageSize returns the page size of the backing.
func (b *Backing) PageSize() int { return b.pageSize }

// Contains reports whether the address falls inside the backing.
func (b *Backing) Contains(a Addr) bool {
	return a >= b.base && uint64(a) < uint64(b.base)+uint64(b.size)
}

// PageOf returns the global page ID containing address a.
func (b *Backing) PageOf(a Addr) PageID {
	return PageID(uint64(a) / uint64(b.pageSize))
}

// pageBase returns the first address of page id.
func (b *Backing) pageBase(id PageID) Addr {
	return Addr(uint64(id) * uint64(b.pageSize))
}

// getPageRLocked returns the page data if materialized, else nil.
func (b *Backing) getPage(id PageID) []byte {
	b.mu.RLock()
	p := b.pages[id]
	b.mu.RUnlock()
	return p
}

// ensurePage materializes (zero-filled) and returns the page data.
func (b *Backing) ensurePage(id PageID) []byte {
	b.mu.Lock()
	p := b.pages[id]
	if p == nil {
		p = make([]byte, b.pageSize)
		b.pages[id] = p
	}
	b.mu.Unlock()
	return p
}

// ReadAt copies len(dst) bytes at address a into dst. Unmaterialized pages
// read as zero. The read must not cross the backing's end.
func (b *Backing) ReadAt(a Addr, dst []byte) error {
	if !b.Contains(a) || uint64(a)+uint64(len(dst)) > uint64(b.base)+uint64(b.size) {
		return &SegfaultError{Addr: a, Kind: AccessRead}
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	off := 0
	for off < len(dst) {
		id := b.PageOf(a + Addr(off))
		po := int(uint64(a+Addr(off)) % uint64(b.pageSize))
		n := b.pageSize - po
		if n > len(dst)-off {
			n = len(dst) - off
		}
		if p := b.pages[id]; p != nil {
			copy(dst[off:off+n], p[po:po+n])
		} else {
			clear(dst[off : off+n])
		}
		off += n
	}
	return nil
}

// WriteAt writes src at address a directly into the shared backing. This is
// the native-execution path (no isolation, no commit). It returns the
// number of false-sharing line conflicts the write incurred for thread tid.
func (b *Backing) WriteAt(a Addr, src []byte, tid int32) (conflicts int, err error) {
	if !b.Contains(a) || uint64(a)+uint64(len(src)) > uint64(b.base)+uint64(b.size) {
		return 0, &SegfaultError{Addr: a, Kind: AccessWrite}
	}
	off := 0
	for off < len(src) {
		cur := a + Addr(off)
		id := b.PageOf(cur)
		po := int(uint64(cur) % uint64(b.pageSize))
		n := b.pageSize - po
		if n > len(src)-off {
			n = len(src) - off
		}
		p := b.getPage(id)
		if p == nil {
			p = b.ensurePage(id)
		}
		b.mu.RLock()
		copy(p[po:po+n], src[off:off+n])
		b.mu.RUnlock()
		conflicts += b.touchLines(cur, n, tid)
		off += n
	}
	return conflicts, nil
}

// touchLines updates cache-line ownership for [a, a+n) and counts
// coherence penalties. A line written by two distinct threads becomes
// *contended* permanently: real falsely-shared lines ping-pong on every
// write once two cores fight over them, and making the state sticky keeps
// the penalty deterministic rather than dependent on the host scheduler's
// interleaving. Contended lines are marked by negating the stored owner.
func (b *Backing) touchLines(a Addr, n int, tid int32) int {
	first := uint64(a) / CacheLineSize
	last := (uint64(a) + uint64(n) - 1) / CacheLineSize
	conflicts := 0
	for line := first; line <= last; line++ {
		prev, loaded := b.lineOwners.Swap(line, tid)
		if !loaded {
			continue
		}
		owner, ok := prev.(int32)
		if !ok {
			continue
		}
		if owner < 0 {
			// Already contended: stay contended, always penalize.
			b.lineOwners.Store(line, int32(-1))
			conflicts++
			continue
		}
		if owner != tid {
			b.lineOwners.Store(line, int32(-1))
			conflicts++
		}
	}
	return conflicts
}

// ApplyDiff publishes changed byte ranges of a page into the shared
// backing under the commit lock — the "deltas are then atomically copied
// to the shared memory page" step of §V-A. Overlapping writes resolve
// last-writer-wins by commit order.
func (b *Backing) ApplyDiff(id PageID, priv []byte, ranges []DiffRange) {
	if len(ranges) == 0 {
		return
	}
	p := b.ensurePage(id)
	b.mu.Lock()
	var bytes int
	for _, r := range ranges {
		copy(p[r.Off:r.Off+r.Len], priv[r.Off:r.Off+r.Len])
		bytes += r.Len
	}
	b.mu.Unlock()
	b.commits.Add(1)
	b.committedBytes.Add(uint64(bytes))
}

// SnapshotPage copies the current shared contents of page id into dst
// (which must be pageSize long). Unmaterialized pages copy as zeros.
// Every byte of dst is overwritten — the page pool's reuse safety relies
// on this. One lock round-trip covers lookup and copy: this runs on every
// first write of a page (twin materialization), so it stays lean.
func (b *Backing) SnapshotPage(id PageID, dst []byte) {
	b.mu.RLock()
	p := b.pages[id]
	if p != nil {
		copy(dst, p)
	}
	b.mu.RUnlock()
	if p == nil {
		clear(dst)
	}
}

// Stats returns cumulative commit statistics.
func (b *Backing) Stats() BackingStats {
	b.mu.RLock()
	mat := len(b.pages)
	b.mu.RUnlock()
	return BackingStats{
		MaterializedPages: mat,
		Commits:           b.commits.Load(),
		CommittedBytes:    b.committedBytes.Load(),
	}
}

// BackingStats summarizes a backing's activity.
type BackingStats struct {
	MaterializedPages int
	Commits           uint64
	CommittedBytes    uint64
}
