package mem

import (
	"encoding/binary"
	"math"
)

// Typed accessors over a Space. All multi-byte values use little-endian
// layout, matching the x86 target of the original system. Each accessor
// reuses a small on-stack buffer; the Space methods never retain it.
//
// Accesses wholly inside one tracked page — the overwhelmingly common case
// — take a single-page fast path: one cached page lookup, the protection
// check, and a direct load/store on the private copy, skipping the generic
// multi-page Read/Write loop and all intermediate copies.

// fastReadPage resolves the page for an n-byte tracked read contained in a
// single page, bumping stats and faulting exactly as the generic path
// does. ok is false when the access must take the generic path (native
// mode, non-uniform page sizes, or a page-straddling access).
func (s *Space) fastReadPage(a Addr, n int) (sp *spacePage, po int, err error, ok bool) {
	if !s.tracking || !s.uniform {
		return nil, 0, nil, false
	}
	po = int(uint64(a) & s.pageMask)
	if po+n > s.pageSize {
		return nil, 0, nil, false
	}
	s.stats.Reads++
	sp, id, err := s.pageFor(a)
	if err != nil {
		return nil, 0, err, true
	}
	if sp.prot&ProtRead == 0 {
		s.fault(sp, id, a, AccessRead)
	}
	return sp, po, nil, true
}

// fastWritePage is fastReadPage for stores: it additionally materializes
// the private copy and twin, and returns the writable in-page slice.
func (s *Space) fastWritePage(a Addr, n int) (dst []byte, err error, ok bool) {
	if !s.tracking || !s.uniform {
		return nil, nil, false
	}
	po := int(uint64(a) & s.pageMask)
	if po+n > s.pageSize {
		return nil, nil, false
	}
	s.stats.Writes++
	sp, id, err := s.pageFor(a)
	if err != nil {
		return nil, err, true
	}
	if sp.prot&ProtWrite == 0 {
		s.fault(sp, id, a, AccessWrite)
	}
	s.ensurePrivate(sp, id)
	return sp.priv[po : po+n], nil, true
}

// LoadU8 reads one byte.
func (s *Space) LoadU8(a Addr) (uint8, error) {
	if sp, po, err, ok := s.fastReadPage(a, 1); ok {
		if err != nil {
			return 0, err
		}
		if sp.priv != nil {
			return sp.priv[po], nil
		}
		var buf [1]byte
		if err := sp.backing.ReadAt(a, buf[:]); err != nil {
			return 0, err
		}
		return buf[0], nil
	}
	var buf [1]byte
	if err := s.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// StoreU8 writes one byte.
func (s *Space) StoreU8(a Addr, v uint8) (int, error) {
	if dst, err, ok := s.fastWritePage(a, 1); ok {
		if err != nil {
			return 0, err
		}
		dst[0] = v
		return 0, nil
	}
	buf := [1]byte{v}
	return s.Write(a, buf[:])
}

// LoadU32 reads a little-endian uint32.
func (s *Space) LoadU32(a Addr) (uint32, error) {
	if sp, po, err, ok := s.fastReadPage(a, 4); ok {
		if err != nil {
			return 0, err
		}
		if sp.priv != nil {
			return binary.LittleEndian.Uint32(sp.priv[po : po+4]), nil
		}
		var buf [4]byte
		if err := sp.backing.ReadAt(a, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:]), nil
	}
	var buf [4]byte
	if err := s.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// StoreU32 writes a little-endian uint32.
func (s *Space) StoreU32(a Addr, v uint32) (int, error) {
	if dst, err, ok := s.fastWritePage(a, 4); ok {
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(dst, v)
		return 0, nil
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return s.Write(a, buf[:])
}

// LoadU64 reads a little-endian uint64.
func (s *Space) LoadU64(a Addr) (uint64, error) {
	if sp, po, err, ok := s.fastReadPage(a, 8); ok {
		if err != nil {
			return 0, err
		}
		if sp.priv != nil {
			return binary.LittleEndian.Uint64(sp.priv[po : po+8]), nil
		}
		var buf [8]byte
		if err := sp.backing.ReadAt(a, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	var buf [8]byte
	if err := s.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// StoreU64 writes a little-endian uint64.
func (s *Space) StoreU64(a Addr, v uint64) (int, error) {
	if dst, err, ok := s.fastWritePage(a, 8); ok {
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint64(dst, v)
		return 0, nil
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return s.Write(a, buf[:])
}

// LoadF64 reads a little-endian float64.
func (s *Space) LoadF64(a Addr) (float64, error) {
	v, err := s.LoadU64(a)
	return math.Float64frombits(v), err
}

// StoreF64 writes a little-endian float64.
func (s *Space) StoreF64(a Addr, v float64) (int, error) {
	return s.StoreU64(a, math.Float64bits(v))
}
