package mem

import (
	"encoding/binary"
	"math"
)

// Typed accessors over a Space. All multi-byte values use little-endian
// layout, matching the x86 target of the original system. Each accessor
// reuses a small on-stack buffer; the Space methods never retain it.

// LoadU8 reads one byte.
func (s *Space) LoadU8(a Addr) (uint8, error) {
	var buf [1]byte
	if err := s.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// StoreU8 writes one byte.
func (s *Space) StoreU8(a Addr, v uint8) (int, error) {
	buf := [1]byte{v}
	return s.Write(a, buf[:])
}

// LoadU32 reads a little-endian uint32.
func (s *Space) LoadU32(a Addr) (uint32, error) {
	var buf [4]byte
	if err := s.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

// StoreU32 writes a little-endian uint32.
func (s *Space) StoreU32(a Addr, v uint32) (int, error) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return s.Write(a, buf[:])
}

// LoadU64 reads a little-endian uint64.
func (s *Space) LoadU64(a Addr) (uint64, error) {
	var buf [8]byte
	if err := s.Read(a, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// StoreU64 writes a little-endian uint64.
func (s *Space) StoreU64(a Addr, v uint64) (int, error) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return s.Write(a, buf[:])
}

// LoadF64 reads a little-endian float64.
func (s *Space) LoadF64(a Addr) (float64, error) {
	v, err := s.LoadU64(a)
	return math.Float64frombits(v), err
}

// StoreF64 writes a little-endian float64.
func (s *Space) StoreF64(a Addr, v float64) (int, error) {
	return s.StoreU64(a, math.Float64bits(v))
}
