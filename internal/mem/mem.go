package mem

import (
	"errors"
	"fmt"
)

// DefaultPageSize is the simulated page size. The paper tracks read/write
// sets at 4 KiB page granularity; the ablation benchmarks vary this.
const DefaultPageSize = 4096

// CacheLineSize is used by the false-sharing model for native executions.
const CacheLineSize = 64

// Addr is a simulated virtual address.
type Addr uint64

// PageID identifies a page globally: addr / pageSize.
type PageID uint64

// Prot is a page protection bit set, mirroring PROT_NONE/READ/WRITE.
type Prot uint8

// Protection bits. ProtNone is the zero value: all access faults.
const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
)

// String renders the protection like "r-", "rw", "--".
func (p Prot) String() string {
	b := [2]byte{'-', '-'}
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	return string(b[:])
}

// AccessKind distinguishes read from write faults and accesses.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota + 1
	AccessWrite
)

// String returns "read" or "write".
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	default:
		return "unknown"
	}
}

// Fault describes one protection fault delivered to the handler.
type Fault struct {
	// Page is the faulting page.
	Page PageID
	// Addr is the exact faulting address.
	Addr Addr
	// Kind is the access kind that faulted.
	Kind AccessKind
}

// FaultHandler receives protection faults. The handler runs on the
// faulting thread (as a signal handler does) and typically records the
// access into the current sub-computation's read or write set. After the
// handler returns, the space upgrades the page protection and retries the
// access.
type FaultHandler interface {
	OnFault(f Fault)
}

// FaultHandlerFunc adapts a function to the FaultHandler interface.
type FaultHandlerFunc func(f Fault)

// OnFault calls fn(f).
func (fn FaultHandlerFunc) OnFault(f Fault) { fn(f) }

// Errors reported by address-space operations. A failed mapping lookup is
// the simulated equivalent of SIGSEGV with no handler installed.
var (
	ErrUnmapped     = errors.New("mem: access to unmapped address")
	ErrCrossRegion  = errors.New("mem: access crosses region boundary")
	ErrRegionFull   = errors.New("mem: region exhausted")
	ErrBadRegion    = errors.New("mem: invalid region definition")
	ErrMisalignment = errors.New("mem: page size must be a power of two >= 64")
)

// SegfaultError wraps ErrUnmapped with the faulting address.
type SegfaultError struct {
	Addr Addr
	Kind AccessKind
}

// Error implements error.
func (e *SegfaultError) Error() string {
	return fmt.Sprintf("mem: segmentation fault: %s at 0x%x", e.Kind, uint64(e.Addr))
}

// Unwrap lets errors.Is(err, ErrUnmapped) match.
func (e *SegfaultError) Unwrap() error { return ErrUnmapped }

// Layout defines the canonical simulated address-space layout used by the
// runtime: a globals region, a heap region, and an input-mapping region,
// mirroring the regions the paper backs with memory-mapped files.
type Layout struct {
	GlobalsBase Addr
	GlobalsSize int
	HeapBase    Addr
	HeapSize    int
	InputBase   Addr
	InputSize   int
}

// DefaultLayout returns the layout used by the INSPECTOR runtime. Sizes are
// generous: the regions are sparse (pages materialize on demand), so large
// sizes cost nothing until touched.
func DefaultLayout() Layout {
	return Layout{
		GlobalsBase: 0x1000_0000,
		GlobalsSize: 64 << 20,
		HeapBase:    0x4000_0000,
		HeapSize:    1 << 30,
		InputBase:   0x1_0000_0000,
		InputSize:   1 << 30,
	}
}

func validPageSize(ps int) bool {
	return ps >= 64 && ps&(ps-1) == 0
}
