package mem

import (
	"testing"
)

const poolTestBase = 0x1000_0000

func poolTestSpace(t *testing.T) *Space {
	t.Helper()
	b, err := NewBacking("g", poolTestBase, 1<<20, DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	return NewSpace(1, []*Backing{b}, nil, true)
}

// TestPoolRecyclesBuffers verifies Commit actually returns priv/twin
// buffers and page records to the pool and the next sub-computation's
// first writes consume them instead of allocating.
func TestPoolRecyclesBuffers(t *testing.T) {
	s := poolTestSpace(t)
	const pages = 4
	for p := 0; p < pages; p++ {
		if _, err := s.StoreU64(Addr(poolTestBase+p*DefaultPageSize), 7); err != nil {
			t.Fatal(err)
		}
	}
	s.Commit()
	if got := len(s.pool.bufs); got != 2*pages {
		t.Fatalf("pool buffers after commit = %d, want %d (priv+twin per dirty page)", got, 2*pages)
	}
	if got := len(s.pool.metas); got != pages {
		t.Fatalf("pool page records after commit = %d, want %d", got, pages)
	}
	if _, err := s.StoreU64(poolTestBase, 8); err != nil {
		t.Fatal(err)
	}
	if got := len(s.pool.bufs); got != 2*pages-2 {
		t.Errorf("pool buffers after one first-write = %d, want %d (recycled, not allocated)", got, 2*pages-2)
	}
	if got := len(s.pool.metas); got != pages-1 {
		t.Errorf("pool page records after one first-write = %d, want %d", got, pages-1)
	}
}

// TestPoolRecycledTwinNoLeak pins the pool's safety property: a recycled
// twin (and priv) is fully overwritten from the backing snapshot before
// use, so bytes written in a previous sub-computation can never show
// through into a later diff. A leak would surface as phantom committed
// bytes: the twin would disagree with the untouched backing page.
func TestPoolRecycledTwinNoLeak(t *testing.T) {
	s := poolTestSpace(t)
	// Sub-computation 1: poison a full page with 0xAA and commit, leaving
	// poisoned buffers in the pool.
	poison := make([]byte, DefaultPageSize)
	for i := range poison {
		poison[i] = 0xAA
	}
	if _, err := s.Write(poolTestBase, poison); err != nil {
		t.Fatal(err)
	}
	res := s.Commit()
	if res.CommittedBytes != DefaultPageSize {
		t.Fatalf("poison commit = %+v, want full page", res)
	}
	// Sub-computation 2: one-byte write to a different (zero) page. Its
	// priv and twin are recycled poisoned buffers; both must re-initialize
	// from the backing, so exactly one byte diffs.
	if _, err := s.StoreU8(poolTestBase+DefaultPageSize+5, 1); err != nil {
		t.Fatal(err)
	}
	res = s.Commit()
	if res.DirtyPages != 1 || res.CommittedBytes != 1 {
		t.Errorf("commit after recycle = %+v, want exactly 1 committed byte (twin/priv leaked pool bytes?)", res)
	}
	// The backing page must hold only that byte.
	got := make([]byte, DefaultPageSize)
	if err := s.backingFor(poolTestBase+DefaultPageSize).ReadAt(poolTestBase+DefaultPageSize, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := byte(0)
		if i == 5 {
			want = 1
		}
		if v != want {
			t.Fatalf("backing byte %d = %#x, want %#x", i, v, want)
		}
	}
}

// TestPoolRecycledPageRecordIsCold verifies a recycled spacePage record
// carries no protection or buffers: the next sub-computation's first
// access to any page faults exactly as a cold page would.
func TestPoolRecycledPageRecordIsCold(t *testing.T) {
	s := poolTestSpace(t)
	if _, err := s.StoreU64(poolTestBase, 1); err != nil {
		t.Fatal(err)
	}
	s.Commit()
	base := s.Stats()
	// Same page again: must re-fault (write fault + twin copy), proving
	// the recycled record did not retain prot bits or a private copy.
	if _, err := s.StoreU64(poolTestBase, 2); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WriteFaults != base.WriteFaults+1 {
		t.Errorf("write faults = %d, want %d (recycled page record kept protection?)", st.WriteFaults, base.WriteFaults+1)
	}
	if st.TwinCopies != base.TwinCopies+1 {
		t.Errorf("twin copies = %d, want %d", st.TwinCopies, base.TwinCopies+1)
	}
}

// TestLastPageCacheBoundsChecked guards against the page cache letting an
// access slip past the end of a backing whose size is not a page multiple:
// the tail page extends beyond the region, so a cache hit on it must still
// segfault for addresses outside the backing, exactly as the scan path
// does.
func TestLastPageCacheBoundsChecked(t *testing.T) {
	b, err := NewBacking("odd", 0x1000, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSpace(1, []*Backing{b}, nil, true)
	// Valid access in the tail page (addresses 0x1040..0x1063) primes the
	// cache with that page.
	if _, err := s.StoreU8(0x1040, 1); err != nil {
		t.Fatal(err)
	}
	// 0x1070 is past the backing end (0x1064) but in the same page.
	if _, err := s.StoreU8(0x1070, 2); err == nil {
		t.Error("store past backing end succeeded via page cache, want segfault")
	}
	if err := s.Read(0x1070, make([]byte, 1)); err == nil {
		t.Error("read past backing end succeeded via page cache, want segfault")
	}
	// The valid tail-page address still works afterwards.
	if v, err := s.LoadU8(0x1040); err != nil || v != 1 {
		t.Errorf("valid tail-page load = %d, %v", v, err)
	}
}

// TestLastPageCacheInvalidatedByCommit guards the one-entry page cache:
// Commit drops every page, so a stale cache hit afterwards would bypass
// the fault discipline entirely.
func TestLastPageCacheInvalidatedByCommit(t *testing.T) {
	s := poolTestSpace(t)
	if _, err := s.StoreU64(poolTestBase, 1); err != nil {
		t.Fatal(err)
	}
	if v, err := s.LoadU64(poolTestBase); err != nil || v != 1 {
		t.Fatalf("load = %d, %v", v, err)
	}
	s.Commit()
	faults := s.Stats().Faults()
	if v, err := s.LoadU64(poolTestBase); err != nil || v != 1 {
		t.Fatalf("load after commit = %d, %v", v, err)
	}
	if got := s.Stats().Faults(); got != faults+1 {
		t.Errorf("faults after post-commit load = %d, want %d (stale page cache?)", got, faults+1)
	}
}
