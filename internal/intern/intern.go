// Package intern provides a concurrency-safe string intern table: a
// bijection between strings and dense uint32 ids in first-intern order.
// It is a leaf utility with no provenance semantics, shared by the CPG
// core (symbol table for branch sites and sync-object names) and the
// program image (label → SiteID table) without making either depend on
// the other.
package intern

import "sync"

// Interner is the intern table. Intern order — and therefore the numeric
// value of an id — may differ between runs of a multithreaded program;
// callers must not let ids leak into serialized artifacts.
type Interner struct {
	mu   sync.RWMutex
	strs []string
	ids  map[string]uint32
}

// New returns an empty interner.
func New() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns s's id, assigning the next dense id on first use.
func (in *Interner) Intern(s string) uint32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	id = uint32(len(in.strs))
	in.strs = append(in.strs, s)
	in.ids[s] = id
	return id
}

// Find returns s's id without interning it.
func (in *Interner) Find(s string) (uint32, bool) {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	return id, ok
}

// Name returns the string for id, or "" if id was never assigned.
func (in *Interner) Name(id uint32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.strs) {
		return ""
	}
	return in.strs[id]
}

// Len returns the number of interned strings.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.strs)
}

// Tail returns a copy of the table entries with id >= from, in id
// order. Incremental consumers (the epoch-delta capture) call it with
// the previous Len to see each interned string exactly once.
func (in *Interner) Tail(from int) []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if from >= len(in.strs) {
		return nil
	}
	out := make([]string, len(in.strs)-from)
	copy(out, in.strs[from:])
	return out
}

// Snapshot returns a copy of the table in id order.
func (in *Interner) Snapshot() []string {
	in.mu.RLock()
	out := make([]string, len(in.strs))
	copy(out, in.strs)
	in.mu.RUnlock()
	return out
}
