package intern

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	in := New()
	a := in.Intern("alpha")
	b := in.Intern("beta")
	if a == b {
		t.Fatalf("distinct strings share id %d", a)
	}
	if got := in.Intern("alpha"); got != a {
		t.Errorf("re-intern alpha: got %d, want %d", got, a)
	}
	if got := in.Name(a); got != "alpha" {
		t.Errorf("Name(%d) = %q, want alpha", a, got)
	}
	if got := in.Name(99); got != "" {
		t.Errorf("Name(unassigned) = %q, want empty", got)
	}
	if id, ok := in.Find("beta"); !ok || id != b {
		t.Errorf("Find(beta) = %d,%v, want %d,true", id, ok, b)
	}
	if _, ok := in.Find("gamma"); ok {
		t.Error("Find(gamma) found an uninterned string")
	}
}

func TestTail(t *testing.T) {
	in := New()
	for i := 0; i < 5; i++ {
		in.Intern(fmt.Sprintf("s%d", i))
	}
	if got := in.Tail(0); !reflect.DeepEqual(got, in.Snapshot()) {
		t.Errorf("Tail(0) = %v, want full snapshot", got)
	}
	if got := in.Tail(3); !reflect.DeepEqual(got, []string{"s3", "s4"}) {
		t.Errorf("Tail(3) = %v, want [s3 s4]", got)
	}
	if got := in.Tail(5); got != nil {
		t.Errorf("Tail(Len) = %v, want nil", got)
	}
	if got := in.Tail(99); got != nil {
		t.Errorf("Tail(beyond) = %v, want nil", got)
	}
	if got := in.Tail(-1); !reflect.DeepEqual(got, in.Snapshot()) {
		t.Errorf("Tail(-1) = %v, want full snapshot", got)
	}
	// Tail(prev Len) chunks reassemble the full table.
	var all []string
	for from := 0; from < in.Len(); from += 2 {
		chunk := in.Tail(from)
		if len(chunk) > 2 {
			chunk = chunk[:2]
		}
		all = append(all, chunk...)
	}
	if !reflect.DeepEqual(all, in.Snapshot()) {
		t.Errorf("chunked tails = %v, want %v", all, in.Snapshot())
	}
}

func TestTailConcurrent(t *testing.T) {
	in := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.Intern(fmt.Sprintf("w%d-%d", w, i%50))
				in.Tail(i % 10)
			}
		}(w)
	}
	wg.Wait()
	if in.Len() != 200 {
		t.Errorf("Len = %d, want 200", in.Len())
	}
}
