// Package atomicio writes artifact files crash-atomically: content goes
// to a temp file in the destination directory, is fsynced, and only
// then renamed over the target. A crash at any point leaves either the
// old file or the new one — never a half-written artifact. Provenance
// exports are trust anchors (PR 6's failure model marks everything else
// degraded rather than guessing), so a torn CPG or analysis JSON on
// disk must be impossible, not merely unlikely.
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile streams enc's output to path atomically. The temp file
// lives in path's directory so the final rename never crosses a
// filesystem boundary. On any error the temp file is removed and the
// existing target, if any, is left untouched.
func WriteFile(path string, enc func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = enc(f); err != nil {
		return err
	}
	// CreateTemp uses 0600; artifacts follow the usual umask-style mode.
	if err = f.Chmod(0o644); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// WriteFileBytes is WriteFile for pre-rendered content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
