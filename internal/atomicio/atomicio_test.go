package atomicio_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/repro/inspector/internal/atomicio"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := atomicio.WriteFileBytes(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", fi.Mode().Perm())
	}
	if err := atomicio.WriteFileBytes(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("content after replace = %q", got)
	}
}

func TestWriteFileFailedEncoderLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := atomicio.WriteFileBytes(path, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encoder exploded")
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the encoder's error", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "stable" {
		t.Fatalf("target clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteFileMissingDirFails(t *testing.T) {
	err := atomicio.WriteFileBytes(filepath.Join(t.TempDir(), "nope", "out.json"), []byte("x"))
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
