package cpgfile

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/core/cpgbench"
)

// buildAnalysis produces a deterministic analysis to serialize,
// optionally degraded by recorded gaps.
func buildAnalysis(t *testing.T, seed int64, degraded bool) *core.Analysis {
	t.Helper()
	g := cpgbench.BuildRandomGraph(4, 200, 64, 8, seed)
	if degraded {
		g.AddGap(1, core.Gap{FromAlpha: 2, ToAlpha: 5, Kind: core.GapAuxLoss, Bytes: 128})
		g.AddGap(3, core.Gap{FromAlpha: 0, ToAlpha: 1, Kind: core.GapTruncated})
	}
	return g.Analyze()
}

// exportJSON renders the canonical analysis document.
func exportJSON(t *testing.T, a *core.Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	return buf.Bytes()
}

// writeTemp serializes the analysis to a temp file and returns its path.
func writeTemp(t *testing.T, a *core.Analysis, meta Meta) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.cpg")
	if err := Write(path, a, meta); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path
}

func TestRoundTripLoad(t *testing.T) {
	for _, degraded := range []bool{false, true} {
		a := buildAnalysis(t, 1, degraded)
		meta := Meta{RunID: "run-1", App: "histogram"}
		path := writeTemp(t, a, meta)

		got, hdr, err := Load(path)
		if err != nil {
			t.Fatalf("Load (degraded=%v): %v", degraded, err)
		}
		if hdr.RunID != meta.RunID || hdr.App != meta.App {
			t.Fatalf("header meta = %q/%q, want %q/%q", hdr.RunID, hdr.App, meta.RunID, meta.App)
		}
		if hdr.Threads != 4 || hdr.Epoch != a.Epoch() || hdr.Degraded != degraded {
			t.Fatalf("header = %+v", hdr)
		}
		if want, have := exportJSON(t, a), exportJSON(t, got); !bytes.Equal(want, have) {
			t.Fatalf("degraded=%v: loaded analysis exports different document", degraded)
		}
		if got.Degraded() != degraded {
			t.Fatalf("loaded Degraded = %v, want %v", got.Degraded(), degraded)
		}
		if degraded {
			if c := got.Completeness(); c.GapIntervals != 2 || c.LostBytes != 128 {
				t.Fatalf("loaded completeness = %+v", c)
			}
		}
		if err := got.Verify(); err != nil {
			t.Fatalf("loaded analysis fails verification: %v", err)
		}
	}
}

func TestMappedLazyAndDrop(t *testing.T) {
	a := buildAnalysis(t, 2, true)
	path := writeTemp(t, a, Meta{RunID: "r", App: "a"})

	m, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close()
	if err := m.VerifyChecksums(); err != nil {
		t.Fatalf("VerifyChecksums: %v", err)
	}
	st, err := m.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.SubComputations == 0 || st.GapIntervals != 2 {
		t.Fatalf("stats = %+v", st)
	}

	got, n, err := m.Analysis()
	if err != nil {
		t.Fatalf("Analysis: %v", err)
	}
	if n <= 0 {
		t.Fatalf("footprint = %d, want > 0", n)
	}
	if got2, n2, _ := m.Analysis(); got2 != got || n2 != n {
		t.Fatal("second Analysis call did not return the cached value")
	}
	want := exportJSON(t, a)
	if !bytes.Equal(want, exportJSON(t, got)) {
		t.Fatal("mapped analysis exports different document")
	}
	// Stats section must agree with the engine-visible counts.
	if st.SubComputations != got.NumVertices() {
		t.Fatalf("stats subs = %d, analysis has %d", st.SubComputations, got.NumVertices())
	}

	if freed := m.Drop(); freed != n {
		t.Fatalf("Drop freed %d, footprint was %d", freed, n)
	}
	// The old analysis stays valid after Drop and Close; the next
	// Analysis call re-materializes an equal one.
	got3, _, err := m.Analysis()
	if err != nil {
		t.Fatalf("Analysis after Drop: %v", err)
	}
	if got3 == got {
		t.Fatal("Drop did not discard the cached analysis")
	}
	if !bytes.Equal(want, exportJSON(t, got3)) {
		t.Fatal("re-materialized analysis exports different document")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(want, exportJSON(t, got)) {
		t.Fatal("analysis invalidated by Close")
	}
}

// TestMappedConcurrentReaders shares one Mapped across goroutines that
// materialize, export, and drop concurrently (meaningful under -race).
// Every reader must see a complete, correct analysis no matter how Drop
// interleaves with Analysis.
func TestMappedConcurrentReaders(t *testing.T) {
	a := buildAnalysis(t, 5, true)
	want := exportJSON(t, a)
	path := writeTemp(t, a, Meta{RunID: "r"})
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, n, err := m.Analysis()
				if err != nil {
					errc <- err
					return
				}
				if n <= 0 {
					errc <- fmt.Errorf("footprint = %d", n)
					return
				}
				var buf bytes.Buffer
				if err := got.ExportJSON(&buf); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(want, buf.Bytes()) {
					errc <- fmt.Errorf("worker %d iter %d: export drifted", w, i)
					return
				}
				if i%3 == w%3 {
					m.Drop()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestContentHashStable(t *testing.T) {
	a := buildAnalysis(t, 3, false)
	var one, two bytes.Buffer
	if err := Encode(&one, a, Meta{RunID: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&two, a, Meta{RunID: "x"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
	if err := Encode(&two, a, Meta{RunID: "y"}); err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(t.TempDir(), "a.cpg")
	if err := os.WriteFile(p1, one.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(p1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.ContentHash() != m.ContentHash() {
		t.Fatal("hash not stable")
	}
}

func TestCorruptionIsTypedAndNamed(t *testing.T) {
	a := buildAnalysis(t, 4, true)
	var buf bytes.Buffer
	if err := Encode(&buf, a, Meta{RunID: "r"}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()

	load := func(t *testing.T, b []byte) error {
		path := filepath.Join(dir, "c.cpg")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Load(path)
		return err
	}

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xFF
		if err := load(t, b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(Magic)] = 99
		if err := load(t, b); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, preambleLen, len(good) / 2, len(good) - 1} {
			err := load(t, good[:cut])
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("cut=%d: err = %v, want *CorruptError", cut, err)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d: not ErrCorrupt", cut)
			}
		}
	})
	t.Run("bit flips name a section", func(t *testing.T) {
		flipped := 0
		for off := preambleLen; off < len(good); off += 31 {
			b := append([]byte(nil), good...)
			b[off] ^= 0x40
			err := load(t, b)
			if err == nil {
				// A flip inside a section must fail its CRC; only a
				// flip that CRC-compensates could pass, and single-bit
				// flips cannot.
				t.Fatalf("flip at %d: corruption not detected", off)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip at %d: err = %v, want *CorruptError", off, err)
			}
			if ce.Section == "" {
				t.Fatalf("flip at %d: error does not name a section", off)
			}
			flipped++
		}
		if flipped == 0 {
			t.Fatal("no offsets exercised")
		}
	})
	t.Run("verify checksums catches section damage", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)-2] ^= 0x10
		path := filepath.Join(dir, "v.cpg")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := Open(path)
		if err != nil {
			t.Fatalf("Open should defer section checks, got %v", err)
		}
		defer m.Close()
		err = m.VerifyChecksums()
		var ce *CorruptError
		if !errors.As(err, &ce) || !strings.Contains(ce.Section, "stats") {
			t.Fatalf("VerifyChecksums = %v, want corrupt stats section", err)
		}
	})
}
