//go:build !unix

package cpgfile

import "os"

// mmapFile on platforms without a usable mmap reads the whole file.
// The lazy-decode contract still holds — only decoding is deferred —
// but resident memory includes the raw file bytes.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
