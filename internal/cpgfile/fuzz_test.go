package cpgfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/core/cpgbench"
)

// fuzzSeeds returns a few valid encodings to seed the corpus: small,
// multi-thread, and degraded graphs, so mutations start from inputs
// that reach deep into every section decoder.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for i, build := range []func() *core.Analysis{
		func() *core.Analysis { return core.NewGraph(1).Analyze() },
		func() *core.Analysis { return cpgbench.BuildRandomGraph(2, 40, 16, 4, 1).Analyze() },
		func() *core.Analysis {
			g := cpgbench.BuildRandomGraph(3, 60, 16, 4, 2)
			g.AddGap(0, core.Gap{FromAlpha: 1, ToAlpha: 3, Kind: core.GapAuxLoss, Bytes: 64})
			return g.Analyze()
		},
	} {
		var buf bytes.Buffer
		if err := Encode(&buf, build(), Meta{RunID: "seed", App: "fuzz"}); err != nil {
			f.Fatalf("seed %d: %v", i, err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// checkDecodeError asserts the decode-error contract: nil, a typed
// *CorruptError naming a section, or one of the named sentinels —
// never a panic, never an anonymous error.
func checkDecodeError(t *testing.T, err error) {
	t.Helper()
	if err == nil || errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion) {
		return
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("decode error is not typed: %T %v", err, err)
	}
	if ce.Section == "" {
		t.Fatalf("CorruptError does not name a section: %v", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CorruptError does not match ErrCorrupt: %v", err)
	}
}

// FuzzCPGFileHeader drives the preamble/header parser: arbitrary bytes
// must parse or fail with a typed error, never panic.
func FuzzCPGFileHeader(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		f.Add(seed[:preambleLen])
		f.Add(seed[:len(seed)/2])
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		lay, err := parseFile(data)
		checkDecodeError(t, err)
		if err == nil && lay == nil {
			t.Fatal("nil layout without error")
		}
	})
}

// FuzzCPGFileSections drives the full decode paths — Load, Mapped
// stats, and analysis materialization — over mutated files. Whatever
// the damage, the result is a decoded analysis or a typed error
// naming the bad section.
func FuzzCPGFileSections(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.cpg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		a, _, err := Load(path)
		checkDecodeError(t, err)
		if err == nil {
			// A file that decodes must also serve the lazy path with
			// identical content.
			var want bytes.Buffer
			if err := a.ExportJSON(&want); err != nil {
				t.Fatalf("ExportJSON on loaded analysis: %v", err)
			}
			m, err := Open(path)
			if err != nil {
				t.Fatalf("Open after successful Load: %v", err)
			}
			defer m.Close()
			if _, err := m.Stats(); err != nil {
				t.Fatalf("Stats after successful Load: %v", err)
			}
			ma, _, err := m.Analysis()
			if err != nil {
				t.Fatalf("Mapped analysis after successful Load: %v", err)
			}
			var got bytes.Buffer
			if err := ma.ExportJSON(&got); err != nil {
				t.Fatalf("ExportJSON on mapped analysis: %v", err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatal("Load and Mapped disagree on the same file")
			}
			return
		}
		// Load failed; the lazy path must fail typed too, at open,
		// checksum sweep, or materialization.
		m, operr := Open(path)
		checkDecodeError(t, operr)
		if operr != nil {
			return
		}
		defer m.Close()
		if verr := m.VerifyChecksums(); verr != nil {
			checkDecodeError(t, verr)
		}
		_, serr := m.Stats()
		checkDecodeError(t, serr)
		_, _, aerr := m.Analysis()
		checkDecodeError(t, aerr)
		if aerr == nil && serr == nil {
			t.Fatal("Load rejected a file the lazy path fully accepts")
		}
	})
}
