package cpgfile

import (
	"encoding/binary"
	"hash/crc32"
	"io"

	"github.com/repro/inspector/internal/atomicio"
	"github.com/repro/inspector/internal/core"
)

// preambleLen is the fixed prefix before the header payload: magic,
// version, header length, header CRC.
const preambleLen = len(Magic) + 4 + 4 + 4

// tableEntryLen is the fixed width of one section-table entry: u32
// kind, u64 offset, u64 length, u32 CRC. Fixed width breaks the
// circularity between section offsets and header length — the header's
// size is known before any offset is.
const tableEntryLen = 4 + 8 + 8 + 4

// Write serializes the analysis to path in CPG file format, through
// the crash-safe temp+fsync+rename path every durable artifact in this
// repo uses: a reader never observes a half-written file.
func Write(path string, a *core.Analysis, meta Meta) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return Encode(w, a, meta)
	})
}

// Encode serializes the analysis to w. The output is deterministic:
// the same analysis prefix and meta always produce the same bytes
// (sections serialize the canonical in-memory forms), which is what
// makes the file's content hash a sound cache key.
func Encode(w io.Writer, a *core.Analysis, meta Meta) error {
	g := a.Graph()
	lens := a.ThreadLens()
	subs := a.Subs()
	syncEdges, dataEdges := a.EdgeSections()
	comp := a.Completeness()

	// Resolve sync-edge object refs before snapshotting the symbol
	// table, so a ref can never point past the serialized table.
	syncObjRefs := make([]core.ObjRef, len(syncEdges))
	for i := range syncEdges {
		syncObjRefs[i] = g.InternObject(syncEdges[i].Object)
	}

	sections := make([][]byte, 0, numSections)

	// Section 1: symbols — the interner snapshot in ref order, so a
	// serialized ref r names the r'th string of this table.
	var b []byte
	syms := g.Symbols()
	b = binary.AppendUvarint(b, uint64(len(syms)))
	for _, s := range syms {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	sections = append(sections, b)

	// Section 2: vertices — the per-thread layout, then each vertex's
	// scalar columns in (thread, alpha) order.
	b = nil
	b = binary.AppendUvarint(b, uint64(len(lens)))
	for _, n := range lens {
		b = binary.AppendUvarint(b, uint64(n))
	}
	for _, sc := range subs {
		b = binary.AppendUvarint(b, uint64(len(sc.Clock)))
		for _, v := range sc.Clock {
			b = binary.AppendUvarint(b, v)
		}
		b = append(b, byte(sc.End.Kind))
		b = binary.AppendUvarint(b, uint64(sc.End.Object))
		b = binary.AppendUvarint(b, uint64(sc.Start))
		b = binary.AppendUvarint(b, uint64(sc.Finish))
		b = binary.AppendUvarint(b, sc.Instructions)
	}
	sections = append(sections, b)

	// Sections 3 and 4: read and write sets, one canonical
	// uvarint-delta PageSet per vertex in the same order.
	b = nil
	for _, sc := range subs {
		b = appendPages(b, sc.ReadSet.Sorted())
	}
	sections = append(sections, b)
	b = nil
	for _, sc := range subs {
		b = appendPages(b, sc.WriteSet.Sorted())
	}
	sections = append(sections, b)

	// Section 5: thunks — the control-path column.
	b = nil
	for _, sc := range subs {
		b = binary.AppendUvarint(b, uint64(len(sc.Thunks)))
		for _, th := range sc.Thunks {
			b = binary.AppendUvarint(b, th.Index)
			b = binary.AppendUvarint(b, uint64(th.Site))
			var flags byte
			if th.Taken {
				flags |= 1
			}
			if th.Indirect {
				flags |= 2
			}
			b = append(b, flags)
			b = binary.AppendUvarint(b, uint64(th.Target))
			b = binary.AppendUvarint(b, th.Instructions)
		}
	}
	sections = append(sections, b)

	// Section 6: sync edges, already in canonical order.
	b = nil
	b = binary.AppendUvarint(b, uint64(len(syncEdges)))
	for i := range syncEdges {
		b = appendSubID(b, syncEdges[i].From)
		b = appendSubID(b, syncEdges[i].To)
		b = binary.AppendUvarint(b, uint64(syncObjRefs[i]))
	}
	sections = append(sections, b)

	// Section 7: data edges — the derived adjacency, stored so the
	// load path never re-runs derivation.
	b = nil
	b = binary.AppendUvarint(b, uint64(len(dataEdges)))
	for i := range dataEdges {
		b = appendSubID(b, dataEdges[i].From)
		b = appendSubID(b, dataEdges[i].To)
		b = appendPages(b, dataEdges[i].Pages)
	}
	sections = append(sections, b)

	// Section 8: gap intervals, per thread.
	b = nil
	b = binary.AppendUvarint(b, uint64(len(comp.Gaps)))
	for _, tg := range comp.Gaps {
		b = binary.AppendUvarint(b, uint64(tg.Thread))
		b = binary.AppendUvarint(b, uint64(len(tg.Gaps)))
		for _, gp := range tg.Gaps {
			b = binary.AppendUvarint(b, gp.FromAlpha)
			b = binary.AppendUvarint(b, gp.ToAlpha)
			b = append(b, byte(gp.Kind))
			b = binary.AppendUvarint(b, gp.Bytes)
		}
	}
	sections = append(sections, b)

	// Section 9: precomputed stats, so listing a CPG never costs a
	// decode. Definitions match the query engine's stats exactly.
	st := statsOf(subs, lens, len(syncEdges), len(dataEdges), comp)
	b = nil
	for _, v := range []uint64{
		uint64(st.SubComputations), uint64(st.Threads), uint64(st.Thunks),
		uint64(st.ReadSetPages), uint64(st.WriteSetPages),
		uint64(st.ControlEdges), uint64(st.SyncEdges), uint64(st.DataEdges),
		uint64(st.GapThreads), uint64(st.GapIntervals), st.LostTraceBytes,
	} {
		b = binary.AppendUvarint(b, v)
	}
	sections = append(sections, b)

	// Header payload: identity fields, then the fixed-width section
	// table with absolute offsets.
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(meta.RunID)))
	hdr = append(hdr, meta.RunID...)
	hdr = binary.AppendUvarint(hdr, uint64(len(meta.App)))
	hdr = append(hdr, meta.App...)
	hdr = binary.AppendUvarint(hdr, uint64(g.Threads()))
	hdr = binary.AppendUvarint(hdr, a.Epoch())
	if a.Degraded() {
		hdr = append(hdr, 1)
	} else {
		hdr = append(hdr, 0)
	}
	hdr = binary.AppendUvarint(hdr, numSections)
	offset := uint64(preambleLen + len(hdr) + numSections*tableEntryLen)
	for i, sec := range sections {
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(i+1))
		hdr = binary.LittleEndian.AppendUint64(hdr, offset)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(sec)))
		hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(sec, castagnoli))
		offset += uint64(len(sec))
	}

	var pre []byte
	pre = append(pre, Magic...)
	pre = binary.LittleEndian.AppendUint32(pre, Version)
	pre = binary.LittleEndian.AppendUint32(pre, uint32(len(hdr)))
	pre = binary.LittleEndian.AppendUint32(pre, crc32.Checksum(hdr, castagnoli))
	if _, err := w.Write(pre); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, sec := range sections {
		if _, err := w.Write(sec); err != nil {
			return err
		}
	}
	return nil
}

// appendPages appends a page list in the canonical PageSet wire form:
// count, first page, then strictly-positive deltas.
func appendPages(b []byte, pages []uint64) []byte {
	b = binary.AppendUvarint(b, uint64(len(pages)))
	for i, p := range pages {
		if i == 0 {
			b = binary.AppendUvarint(b, p)
		} else {
			b = binary.AppendUvarint(b, p-pages[i-1])
		}
	}
	return b
}

// appendSubID appends a vertex id as thread, alpha.
func appendSubID(b []byte, id core.SubID) []byte {
	b = binary.AppendUvarint(b, uint64(id.Thread))
	return binary.AppendUvarint(b, id.Alpha)
}

// statsOf computes the stats section's numbers with the query engine's
// definitions: prefix vertices, distinct threads, and derived-edge
// counts (control edges are Σ max(0, len−1), never stored).
func statsOf(subs []*core.SubComputation, lens []int, syncEdges, dataEdges int, comp core.Completeness) Stats {
	st := Stats{SyncEdges: syncEdges, DataEdges: dataEdges}
	threads := map[int]bool{}
	for _, sc := range subs {
		st.SubComputations++
		threads[sc.ID.Thread] = true
		st.Thunks += len(sc.Thunks)
		st.ReadSetPages += sc.ReadSet.Len()
		st.WriteSetPages += sc.WriteSet.Len()
	}
	st.Threads = len(threads)
	for _, n := range lens {
		if n > 1 {
			st.ControlEdges += n - 1
		}
	}
	st.GapThreads = comp.GapThreads
	st.GapIntervals = comp.GapIntervals
	st.LostTraceBytes = comp.LostBytes
	return st
}
