// Package cpgfile is the on-disk columnar CPG format: a provenance
// graph that outlives the run that produced it, cheap to archive and
// cheap to serve. A file holds one analyzed CPG prefix — exactly the
// sealed core.Analysis surface — laid out as independently
// checksummed columnar sections behind a small self-describing header:
//
//	magic "INSPCPG1"
//	u32   format version (1)
//	u32   header length
//	u32   header CRC-32C
//	header: run id, app, thread count, epoch, degraded flag,
//	        section table {kind, offset, length, CRC-32C} × n
//	sections: symbols | vertices | read sets | write sets | thunks |
//	          sync edges | data edges | gaps | stats
//
// The layout cashes in the columnar in-memory design: interned symbols
// become a table of len-prefixed strings, PageSets serialize in their
// canonical uvarint-delta form, and the sync/data adjacency is stored
// as the already-derived canonical edge sections, so loading never
// re-derives anything. Two read paths share one parser: Load fully
// decodes a file into a core.Analysis, and Mapped keeps the file
// mmapped, answering header/stats queries straight from their sections
// and materializing the full analysis only on demand (and dropping it
// again under memory pressure — see provenance.Store).
//
// Integrity is per section: every read path verifies the CRC of each
// section it touches before decoding it, and every decode error is a
// *CorruptError naming the offending section, so a torn or bit-flipped
// file is diagnosed by name instead of panicking or mis-answering.
//
// Symbol refs inside a file index the file's own embedded symbol table
// and nothing else — the in-memory rule that interner refs never leak
// across runs holds here because the table travels with the refs, and
// the decoder re-interns through a remap table rather than trusting
// raw ref values.
package cpgfile

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a CPG file: 7 format bytes + the major version
// digit, so incompatible future layouts change the magic itself.
const Magic = "INSPCPG1"

// Version is the current format version.
const Version = 1

// castagnoli is the CRC-32C polynomial table shared by all checksums
// in the format (hardware-accelerated on the platforms we serve from).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Section kinds, in their required file order.
const (
	secSymbols   = 1
	secVertices  = 2
	secReadSets  = 3
	secWriteSets = 4
	secThunks    = 5
	secSyncEdges = 6
	secDataEdges = 7
	secGaps      = 8
	secStats     = 9
	numSections  = 9
)

// sectionName names a section kind for error messages; 0 is the
// header, which errors treat as a pseudo-section.
func sectionName(kind uint32) string {
	switch kind {
	case 0:
		return "header"
	case secSymbols:
		return "symbols"
	case secVertices:
		return "vertices"
	case secReadSets:
		return "readsets"
	case secWriteSets:
		return "writesets"
	case secThunks:
		return "thunks"
	case secSyncEdges:
		return "syncedges"
	case secDataEdges:
		return "dataedges"
	case secGaps:
		return "gaps"
	case secStats:
		return "stats"
	default:
		return fmt.Sprintf("unknown(%d)", kind)
	}
}

// Meta is the write-time identity recorded in the header: which run
// produced the graph. Both fields are informational.
type Meta struct {
	RunID string
	App   string
}

// Header is the decoded file header.
type Header struct {
	Version  uint32
	RunID    string
	App      string
	Threads  int
	Epoch    uint64
	Degraded bool
}

// Stats is the precomputed summary stored in the stats section, so a
// server can list and describe a CPG without materializing it. The
// numbers are computed at write time from the same analysis the file
// serializes, with the same definitions the query engine uses.
type Stats struct {
	SubComputations int
	Threads         int
	Thunks          int
	ReadSetPages    int
	WriteSetPages   int
	ControlEdges    int
	SyncEdges       int
	DataEdges       int
	GapThreads      int
	GapIntervals    int
	LostTraceBytes  uint64
}

// Sentinel errors. Every corruption-shaped failure from this package
// matches errors.Is(err, ErrCorrupt); magic and version mismatches are
// distinguishable because "not a CPG file" and "a CPG file from the
// future" call for different operator responses than "damaged file".
var (
	ErrCorrupt    = errors.New("corrupt CPG file")
	ErrBadMagic   = errors.New("not a CPG file (bad magic)")
	ErrBadVersion = errors.New("unsupported CPG file version")
)

// CorruptError reports a damaged file, naming the section where the
// damage was detected ("header" for failures before any section).
type CorruptError struct {
	Section string
	Err     error
}

// Error renders like `cpgfile: corrupt section "syncedges": ...`.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("cpgfile: corrupt section %q: %v", e.Section, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *CorruptError) Unwrap() error { return e.Err }

// Is matches ErrCorrupt, so callers can class-test without knowing the
// section.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// corruptf wraps a decode failure in a section-named CorruptError.
func corruptf(section uint32, format string, args ...any) error {
	return &CorruptError{Section: sectionName(section), Err: fmt.Errorf(format, args...)}
}

// corruptHeaderf is corruptf for failures before any section exists.
func corruptHeaderf(format string, args ...any) error {
	return &CorruptError{Section: "header", Err: fmt.Errorf(format, args...)}
}
