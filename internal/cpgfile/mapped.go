package cpgfile

import (
	"crypto/sha256"
	"hash/crc32"
	"sync"

	"github.com/repro/inspector/internal/core"
)

// Mapped is the lazy read path: the file stays memory-mapped and only
// the sections a caller touches are ever decoded. Header fields and
// the precomputed stats come straight from their (CRC-verified)
// sections; the full analysis materializes on first demand and is
// cached until Drop. The serving layer leans on exactly this split —
// thousands of Mapped CPGs cost pages of mapped file, while the
// resident-bytes budget governs how many carry a decoded analysis.
//
// Decoded values never alias the mapping (every string and slice is
// copied out), so an analysis obtained from Analysis remains valid
// after Drop and even after Close. Methods are safe for concurrent
// use; Close must not race other calls.
type Mapped struct {
	path  string
	data  []byte
	unmap func() error
	lay   *fileLayout

	mu        sync.Mutex
	a         *core.Analysis
	footprint int64
	hash      [sha256.Size]byte
	hashed    bool
}

// Open maps the CPG file at path and parses its preamble and header.
// No section is decoded; Open of a multi-gigabyte archive costs the
// header bytes only. Corruption inside a section surfaces later, from
// the read that touches it — callers that must front-load detection
// (a server refusing to advertise a damaged CPG) follow Open with
// VerifyChecksums.
func Open(path string) (*Mapped, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	lay, err := parseFile(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	return &Mapped{path: path, data: data, unmap: unmap, lay: lay}, nil
}

// Path returns the file path the mapping was opened from.
func (m *Mapped) Path() string { return m.path }

// Size returns the mapped file size in bytes.
func (m *Mapped) Size() int64 { return int64(len(m.data)) }

// Header returns the decoded file header.
func (m *Mapped) Header() Header { return m.lay.hdr }

// Stats decodes the precomputed stats section — a handful of uvarints,
// never the graph.
func (m *Mapped) Stats() (Stats, error) {
	return decodeStats(m.data, m.lay)
}

// VerifyChecksums sweeps every section's CRC-32C over the mapping
// without decoding anything: one sequential read of the file. It
// returns the first mismatch as a *CorruptError naming the section.
func (m *Mapped) VerifyChecksums() error {
	for kind := uint32(1); kind <= numSections; kind++ {
		s := m.lay.secs[kind]
		if got := crc32.Checksum(m.data[s.off:s.off+s.length], castagnoli); got != s.crc {
			return corruptf(kind, "CRC mismatch: stored %08x, computed %08x", s.crc, got)
		}
	}
	return nil
}

// ContentHash returns the SHA-256 of the file bytes, computed on first
// call and cached. Encoding is deterministic, so equal analyses have
// equal hashes — the content-addressed result cache keys on this.
func (m *Mapped) ContentHash() [sha256.Size]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hashed {
		m.hash = sha256.Sum256(m.data)
		m.hashed = true
	}
	return m.hash
}

// Analysis materializes the full analysis, decoding every section on
// first call and returning the cached value afterwards. The second
// result is the estimated resident footprint of the decoded analysis
// in bytes — what a budget-keeping caller accounts for, and what Drop
// gives back.
func (m *Mapped) Analysis() (*core.Analysis, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.a != nil {
		return m.a, m.footprint, nil
	}
	a, footprint, err := decodeAnalysis(m.data, m.lay)
	if err != nil {
		return nil, 0, err
	}
	m.a, m.footprint = a, footprint
	return a, footprint, nil
}

// Drop discards the cached decoded analysis, keeping the mapping, and
// returns the estimated bytes released. Analyses handed out earlier
// remain valid — they own their memory — so eviction under a budget
// can never invalidate an in-flight query.
func (m *Mapped) Drop() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.footprint
	m.a, m.footprint = nil, 0
	return n
}

// Close unmaps the file. The Mapped must not be used afterwards;
// previously returned analyses stay valid.
func (m *Mapped) Close() error {
	m.mu.Lock()
	m.a, m.footprint = nil, 0
	m.mu.Unlock()
	if m.unmap == nil {
		return nil
	}
	unmap := m.unmap
	m.unmap = nil
	return unmap()
}
