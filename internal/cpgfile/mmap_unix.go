//go:build unix

package cpgfile

import (
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the bytes plus the unmap
// function. The descriptor is closed immediately — the mapping
// outlives it. Stdlib syscall only: the no-new-dependencies rule
// holds even for the platform layer.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
