package cpgfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/vclock"
	"github.com/repro/inspector/internal/vtime"
)

// Decoder hard limits. A CPG file is untrusted input (fuzzed,
// potentially torn or flipped on disk), so no count read from the file
// is ever trusted for an allocation: counts are bounded by the bytes
// that could plausibly back them, and slices grow by append beyond a
// small cap hint.
const (
	maxThreads   = 1 << 20
	maxHeaderLen = 1 << 24
	capHintMax   = 1024
)

// Rough per-object resident sizes used for the decoded-footprint
// estimate the serving layer budgets against. Estimates, not
// accounting: the budget bounds order-of-magnitude memory, and these
// deliberately round up (struct + pointer + container slot).
const (
	fpPerSub    = 208
	fpPerThunk  = 40
	fpPerEdge   = 80
	fpPerWord   = 8
	fpPerSymbol = 48
)

// capHint bounds an up-front slice capacity for an untrusted count.
func capHint(n uint64) int {
	if n > capHintMax {
		return capHintMax
	}
	return int(n)
}

// span locates one section inside the file.
type span struct {
	off, length uint64
	crc         uint32
}

// fileLayout is the parsed preamble + header: everything needed to
// find and verify a section without touching it.
type fileLayout struct {
	hdr  Header
	secs [numSections + 1]span
}

// reader is a bounds-checked cursor over one section's bytes. Every
// failure is a CorruptError naming the section.
type reader struct {
	b   []byte
	off int
	sec uint32
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, corruptf(r.sec, "truncated or overlong uvarint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, corruptf(r.sec, "truncated at byte %d", r.off)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *reader) take(n uint64) ([]byte, error) {
	if n > uint64(r.remaining()) {
		return nil, corruptf(r.sec, "field of %d bytes exceeds the %d remaining", n, r.remaining())
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *reader) expectDone() error {
	if r.remaining() != 0 {
		return corruptf(r.sec, "%d trailing bytes", r.remaining())
	}
	return nil
}

// parseFile validates the preamble and header and returns the layout.
// Section payloads are located and bounds-checked but not read.
func parseFile(data []byte) (*fileLayout, error) {
	if len(data) < preambleLen {
		return nil, corruptHeaderf("file of %d bytes is shorter than the %d-byte preamble", len(data), preambleLen)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint32(data[len(Magic):])
	if version != Version {
		return nil, fmt.Errorf("cpgfile: %w: %d (this build reads %d)", ErrBadVersion, version, Version)
	}
	hdrLen := binary.LittleEndian.Uint32(data[len(Magic)+4:])
	hdrCRC := binary.LittleEndian.Uint32(data[len(Magic)+8:])
	if uint64(hdrLen) > maxHeaderLen || uint64(hdrLen) > uint64(len(data)-preambleLen) {
		return nil, corruptHeaderf("header length %d exceeds file size %d", hdrLen, len(data))
	}
	hdr := data[preambleLen : preambleLen+int(hdrLen)]
	if got := crc32.Checksum(hdr, castagnoli); got != hdrCRC {
		return nil, corruptHeaderf("header CRC mismatch: stored %08x, computed %08x", hdrCRC, got)
	}

	lay := &fileLayout{hdr: Header{Version: version}}
	r := &reader{b: hdr, sec: 0} // section 0 renders as the header
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	runID, err := r.take(n)
	if err != nil {
		return nil, err
	}
	lay.hdr.RunID = string(runID)
	if n, err = r.uvarint(); err != nil {
		return nil, err
	}
	app, err := r.take(n)
	if err != nil {
		return nil, err
	}
	lay.hdr.App = string(app)
	threads, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if threads > maxThreads {
		return nil, corruptHeaderf("thread count %d exceeds limit %d", threads, maxThreads)
	}
	lay.hdr.Threads = int(threads)
	if lay.hdr.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	degraded, err := r.byte()
	if err != nil {
		return nil, err
	}
	if degraded > 1 {
		return nil, corruptHeaderf("degraded flag byte %d is not 0 or 1", degraded)
	}
	lay.hdr.Degraded = degraded == 1

	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if count != numSections {
		return nil, corruptHeaderf("section table holds %d entries, format v1 requires %d", count, numSections)
	}
	end := uint64(preambleLen) + uint64(hdrLen)
	for i := 0; i < numSections; i++ {
		entry, err := r.take(tableEntryLen)
		if err != nil {
			return nil, err
		}
		kind := binary.LittleEndian.Uint32(entry)
		off := binary.LittleEndian.Uint64(entry[4:])
		length := binary.LittleEndian.Uint64(entry[12:])
		crc := binary.LittleEndian.Uint32(entry[20:])
		if kind != uint32(i+1) {
			return nil, corruptHeaderf("section table entry %d has kind %s, want %s",
				i, sectionName(kind), sectionName(uint32(i+1)))
		}
		if off != end {
			return nil, corruptHeaderf("section %s starts at offset %d, want %d", sectionName(kind), off, end)
		}
		if length > uint64(len(data)) || off > uint64(len(data))-length {
			return nil, corruptHeaderf("section %s (%d bytes at %d) exceeds file size %d",
				sectionName(kind), length, off, len(data))
		}
		lay.secs[kind] = span{off: off, length: length, crc: crc}
		end = off + length
	}
	if err := r.expectDone(); err != nil {
		return nil, err
	}
	if end != uint64(len(data)) {
		return nil, corruptHeaderf("%d bytes past the last section", uint64(len(data))-end)
	}
	return lay, nil
}

// section verifies one section's CRC and returns a cursor over it.
func (lay *fileLayout) section(data []byte, kind uint32) (*reader, error) {
	s := lay.secs[kind]
	b := data[s.off : s.off+s.length]
	if got := crc32.Checksum(b, castagnoli); got != s.crc {
		return nil, corruptf(kind, "CRC mismatch: stored %08x, computed %08x", s.crc, got)
	}
	return &reader{b: b, sec: kind}, nil
}

// Load fully decodes the CPG file at path. The returned analysis owns
// all of its memory — nothing aliases the file.
func Load(path string) (*core.Analysis, Header, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Header{}, err
	}
	lay, err := parseFile(data)
	if err != nil {
		return nil, Header{}, err
	}
	a, _, err := decodeAnalysis(data, lay)
	if err != nil {
		return nil, Header{}, err
	}
	// The graph decode never touches the stats section; verify it too,
	// so a successful Load vouches for every byte of the file.
	if _, err := decodeStats(data, lay); err != nil {
		return nil, Header{}, err
	}
	return a, lay.hdr, nil
}

// decodeAnalysis materializes the full analysis from a parsed file,
// returning it with the estimated resident footprint of the decode.
func decodeAnalysis(data []byte, lay *fileLayout) (*core.Analysis, int64, error) {
	var footprint int64

	// Symbols: re-intern through a remap table. Refs in the file index
	// this table; nothing trusts them as in-memory refs directly.
	rs, err := lay.section(data, secSymbols)
	if err != nil {
		return nil, 0, err
	}
	symCount, err := rs.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if symCount > uint64(rs.remaining())+1 {
		return nil, 0, corruptf(secSymbols, "symbol count %d exceeds the section's %d bytes", symCount, rs.remaining())
	}
	g := core.NewGraph(lay.hdr.Threads)
	remap := make([]uint32, 0, capHint(symCount))
	for i := uint64(0); i < symCount; i++ {
		n, err := rs.uvarint()
		if err != nil {
			return nil, 0, err
		}
		sym, err := rs.take(n)
		if err != nil {
			return nil, 0, err
		}
		remap = append(remap, uint32(g.InternSite(string(sym))))
		footprint += fpPerSymbol + int64(n)
	}
	if err := rs.expectDone(); err != nil {
		return nil, 0, err
	}
	mapRef := func(sec uint32, ref uint64) (uint32, error) {
		if ref >= uint64(len(remap)) {
			return 0, corruptf(sec, "symbol ref %d outside the %d-entry table", ref, len(remap))
		}
		return remap[ref], nil
	}

	// Vertices + per-vertex columns: four cursors advance in lockstep,
	// one vertex at a time, in (thread, alpha) order.
	rv, err := lay.section(data, secVertices)
	if err != nil {
		return nil, 0, err
	}
	rr, err := lay.section(data, secReadSets)
	if err != nil {
		return nil, 0, err
	}
	rw, err := lay.section(data, secWriteSets)
	if err != nil {
		return nil, 0, err
	}
	rt, err := lay.section(data, secThunks)
	if err != nil {
		return nil, 0, err
	}
	nthreads, err := rv.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if nthreads != uint64(lay.hdr.Threads) {
		return nil, 0, corruptf(secVertices, "vertex layout covers %d threads, header says %d", nthreads, lay.hdr.Threads)
	}
	lens := make([]int, nthreads)
	var total uint64
	for t := range lens {
		n, err := rv.uvarint()
		if err != nil {
			return nil, 0, err
		}
		total += n
		// Each vertex costs ≥ 6 bytes in this section, so an absurd
		// length is rejected before any per-vertex work.
		if total > uint64(rv.remaining())/6+1 {
			return nil, 0, corruptf(secVertices, "%d vertices cannot fit in the section's %d bytes", total, rv.remaining())
		}
		lens[t] = int(n)
	}
	for t, n := range lens {
		for alpha := 0; alpha < n; alpha++ {
			sc := &core.SubComputation{ID: core.SubID{Thread: t, Alpha: uint64(alpha)}}
			cn, err := rv.uvarint()
			if err != nil {
				return nil, 0, err
			}
			if cn > uint64(rv.remaining())+1 {
				return nil, 0, corruptf(secVertices, "clock of %d entries exceeds the section's %d bytes", cn, rv.remaining())
			}
			clock := make(vclock.Clock, 0, capHint(cn))
			for i := uint64(0); i < cn; i++ {
				v, err := rv.uvarint()
				if err != nil {
					return nil, 0, err
				}
				clock = append(clock, v)
			}
			sc.Clock = clock
			kind, err := rv.byte()
			if err != nil {
				return nil, 0, err
			}
			if kind > uint8(core.SyncRelease) {
				return nil, 0, corruptf(secVertices, "vertex %v has sync kind byte %d", sc.ID, kind)
			}
			sc.End.Kind = core.SyncOpKind(kind)
			objRef, err := rv.uvarint()
			if err != nil {
				return nil, 0, err
			}
			obj, err := mapRef(secVertices, objRef)
			if err != nil {
				return nil, 0, err
			}
			sc.End.Object = core.ObjRef(obj)
			start, err := rv.uvarint()
			if err != nil {
				return nil, 0, err
			}
			finish, err := rv.uvarint()
			if err != nil {
				return nil, 0, err
			}
			sc.Start, sc.Finish = vtime.Cycles(start), vtime.Cycles(finish)
			if sc.Instructions, err = rv.uvarint(); err != nil {
				return nil, 0, err
			}

			pages, err := decodePages(rr)
			if err != nil {
				return nil, 0, err
			}
			if sc.ReadSet, err = pageSet(secReadSets, pages); err != nil {
				return nil, 0, err
			}
			if pages, err = decodePages(rw); err != nil {
				return nil, 0, err
			}
			if sc.WriteSet, err = pageSet(secWriteSets, pages); err != nil {
				return nil, 0, err
			}
			footprint += fpPerWord * int64(len(sc.Clock)+sc.ReadSet.Len()+sc.WriteSet.Len())

			tn, err := rt.uvarint()
			if err != nil {
				return nil, 0, err
			}
			if tn > uint64(rt.remaining())/5+1 {
				return nil, 0, corruptf(secThunks, "%d thunks cannot fit in the section's %d bytes", tn, rt.remaining())
			}
			thunks := make([]core.Thunk, 0, capHint(tn))
			for i := uint64(0); i < tn; i++ {
				var th core.Thunk
				if th.Index, err = rt.uvarint(); err != nil {
					return nil, 0, err
				}
				site, err := rt.uvarint()
				if err != nil {
					return nil, 0, err
				}
				ref, err := mapRef(secThunks, site)
				if err != nil {
					return nil, 0, err
				}
				th.Site = core.SiteRef(ref)
				flags, err := rt.byte()
				if err != nil {
					return nil, 0, err
				}
				if flags > 3 {
					return nil, 0, corruptf(secThunks, "vertex %v thunk %d has flags byte %d", sc.ID, i, flags)
				}
				th.Taken, th.Indirect = flags&1 != 0, flags&2 != 0
				target, err := rt.uvarint()
				if err != nil {
					return nil, 0, err
				}
				if ref, err = mapRef(secThunks, target); err != nil {
					return nil, 0, err
				}
				th.Target = core.SiteRef(ref)
				if th.Instructions, err = rt.uvarint(); err != nil {
					return nil, 0, err
				}
				thunks = append(thunks, th)
			}
			sc.Thunks = thunks
			footprint += fpPerSub + fpPerThunk*int64(len(thunks))
			if err := g.AppendSub(sc); err != nil {
				return nil, 0, corruptf(secVertices, "vertex %v rejected: %v", sc.ID, err)
			}
		}
	}
	for _, r := range []*reader{rv, rr, rw, rt} {
		if err := r.expectDone(); err != nil {
			return nil, 0, err
		}
	}

	syncEdges, err := decodeSyncEdges(lay, data, g, lens, mapRef)
	if err != nil {
		return nil, 0, err
	}
	dataEdges, err := decodeDataEdges(lay, data, lens)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range syncEdges {
		footprint += fpPerEdge + int64(len(e.Object))
	}
	for _, e := range dataEdges {
		footprint += fpPerEdge + fpPerWord*int64(len(e.Pages))
	}

	if err := decodeGaps(lay, data, g, lens); err != nil {
		return nil, 0, err
	}

	a, err := core.NewAnalysisFromSections(g, lens, lay.hdr.Epoch, syncEdges, dataEdges)
	if err != nil {
		// The decoder pre-validated order and endpoints per section, so
		// anything left is a vertex-layout inconsistency.
		return nil, 0, corruptf(secVertices, "%v", err)
	}
	// The CSR + indexes roughly double the edge storage.
	footprint += fpPerEdge * int64(len(syncEdges)+len(dataEdges))
	return a, footprint, nil
}

// decodePages reads one canonical uvarint-delta page list: count,
// first page, strictly-positive deltas.
func decodePages(r *reader) ([]uint64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(r.remaining())+1 {
		return nil, corruptf(r.sec, "page list of %d entries exceeds the section's %d bytes", n, r.remaining())
	}
	pages := make([]uint64, 0, capHint(n))
	var prev uint64
	for i := uint64(0); i < n; i++ {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = v
		} else {
			if v == 0 {
				return nil, corruptf(r.sec, "zero page delta at entry %d", i)
			}
			next := prev + v
			if next < prev {
				return nil, corruptf(r.sec, "page delta overflow at entry %d", i)
			}
			prev = next
		}
		pages = append(pages, prev)
	}
	return pages, nil
}

// pageSet converts a decoded page list to the in-memory PageSet.
func pageSet(sec uint32, pages []uint64) (core.PageSet, error) {
	ps, err := core.PageSetFromSorted(pages)
	if err != nil {
		return core.PageSet{}, corruptf(sec, "%v", err)
	}
	return ps, nil
}

// decodeSubID reads a vertex id and bounds-checks it against the
// vertex layout.
func decodeSubID(r *reader, lens []int) (core.SubID, error) {
	t, err := r.uvarint()
	if err != nil {
		return core.SubID{}, err
	}
	if t >= uint64(len(lens)) {
		return core.SubID{}, corruptf(r.sec, "edge endpoint thread %d outside the %d-thread layout", t, len(lens))
	}
	alpha, err := r.uvarint()
	if err != nil {
		return core.SubID{}, err
	}
	if alpha >= uint64(lens[t]) {
		return core.SubID{}, corruptf(r.sec, "edge endpoint T%d.%d outside the thread's %d vertices", t, alpha, lens[t])
	}
	return core.SubID{Thread: int(t), Alpha: alpha}, nil
}

// decodeSyncEdges reads the canonical sync-edge section, restoring the
// graph's per-thread sync-edge log as it goes.
func decodeSyncEdges(lay *fileLayout, data []byte, g *core.Graph, lens []int, mapRef func(uint32, uint64) (uint32, error)) ([]core.Edge, error) {
	r, err := lay.section(data, secSyncEdges)
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining())/5+1 {
		return nil, corruptf(secSyncEdges, "%d edges cannot fit in the section's %d bytes", n, r.remaining())
	}
	edges := make([]core.Edge, 0, capHint(n))
	for i := uint64(0); i < n; i++ {
		from, err := decodeSubID(r, lens)
		if err != nil {
			return nil, err
		}
		to, err := decodeSubID(r, lens)
		if err != nil {
			return nil, err
		}
		objRef, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		obj, err := mapRef(secSyncEdges, objRef)
		if err != nil {
			return nil, err
		}
		g.RestoreSyncEdge(from, to, core.ObjRef(obj))
		e := core.Edge{From: from, To: to, Kind: core.EdgeSync, Object: g.ObjectName(core.ObjRef(obj))}
		if len(edges) > 0 && core.EdgeCanonicalLess(e, edges[len(edges)-1]) {
			return nil, corruptf(secSyncEdges, "edge %d out of canonical order", i)
		}
		edges = append(edges, e)
	}
	if err := r.expectDone(); err != nil {
		return nil, err
	}
	return edges, nil
}

// decodeDataEdges reads the derived data-edge section.
func decodeDataEdges(lay *fileLayout, data []byte, lens []int) ([]core.Edge, error) {
	r, err := lay.section(data, secDataEdges)
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining())/5+1 {
		return nil, corruptf(secDataEdges, "%d edges cannot fit in the section's %d bytes", n, r.remaining())
	}
	edges := make([]core.Edge, 0, capHint(n))
	for i := uint64(0); i < n; i++ {
		from, err := decodeSubID(r, lens)
		if err != nil {
			return nil, err
		}
		to, err := decodeSubID(r, lens)
		if err != nil {
			return nil, err
		}
		pages, err := decodePages(r)
		if err != nil {
			return nil, err
		}
		e := core.Edge{From: from, To: to, Kind: core.EdgeData, Pages: pages}
		if len(edges) > 0 && core.EdgeCanonicalLess(e, edges[len(edges)-1]) {
			return nil, corruptf(secDataEdges, "edge %d out of canonical order", i)
		}
		edges = append(edges, e)
	}
	if err := r.expectDone(); err != nil {
		return nil, err
	}
	return edges, nil
}

// decodeGaps restores the per-thread trace-loss intervals.
func decodeGaps(lay *fileLayout, data []byte, g *core.Graph, lens []int) error {
	r, err := lay.section(data, secGaps)
	if err != nil {
		return err
	}
	nt, err := r.uvarint()
	if err != nil {
		return err
	}
	if nt > uint64(len(lens)) {
		return corruptf(secGaps, "%d gap threads exceed the %d-thread layout", nt, len(lens))
	}
	for i := uint64(0); i < nt; i++ {
		t, err := r.uvarint()
		if err != nil {
			return err
		}
		if t >= uint64(len(lens)) {
			return corruptf(secGaps, "gap thread %d outside the %d-thread layout", t, len(lens))
		}
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(r.remaining())/4+1 {
			return corruptf(secGaps, "%d gaps cannot fit in the section's %d bytes", n, r.remaining())
		}
		for j := uint64(0); j < n; j++ {
			var gp core.Gap
			if gp.FromAlpha, err = r.uvarint(); err != nil {
				return err
			}
			if gp.ToAlpha, err = r.uvarint(); err != nil {
				return err
			}
			kind, err := r.byte()
			if err != nil {
				return err
			}
			if kind == 0 || kind > uint8(core.GapPanic) {
				return corruptf(secGaps, "thread %d gap %d has kind byte %d", t, j, kind)
			}
			gp.Kind = core.GapKind(kind)
			if gp.Bytes, err = r.uvarint(); err != nil {
				return err
			}
			g.AddGap(int(t), gp)
		}
	}
	return r.expectDone()
}

// decodeStats reads the precomputed stats section.
func decodeStats(data []byte, lay *fileLayout) (Stats, error) {
	r, err := lay.section(data, secStats)
	if err != nil {
		return Stats{}, err
	}
	var v [11]uint64
	for i := range v {
		if v[i], err = r.uvarint(); err != nil {
			return Stats{}, err
		}
	}
	if err := r.expectDone(); err != nil {
		return Stats{}, err
	}
	return Stats{
		SubComputations: int(v[0]), Threads: int(v[1]), Thunks: int(v[2]),
		ReadSetPages: int(v[3]), WriteSetPages: int(v[4]),
		ControlEdges: int(v[5]), SyncEdges: int(v[6]), DataEdges: int(v[7]),
		GapThreads: int(v[8]), GapIntervals: int(v[9]), LostTraceBytes: v[10],
	}, nil
}
