package perf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// RecordType enumerates the perf event record kinds this model emits,
// mirroring the PERF_RECORD_* constants that matter to PT decoding.
type RecordType uint8

// Record types.
const (
	// RecordMMAP announces a loadable mapping; the decoder needs these
	// to map trace IPs onto binaries (paper §V-B: "we track mmap events
	// to know the location of each loadable during the execution").
	RecordMMAP RecordType = iota + 1
	// RecordCOMM names a process.
	RecordCOMM
	// RecordAUX carries a chunk of PT trace data.
	RecordAUX
	// RecordLOST reports dropped trace bytes (ring overrun).
	RecordLOST
	// RecordITraceStart marks the start of instruction tracing for a
	// process.
	RecordITraceStart
	// RecordExit marks process exit.
	RecordExit
)

// String names the record type like perf report does.
func (t RecordType) String() string {
	switch t {
	case RecordMMAP:
		return "MMAP"
	case RecordCOMM:
		return "COMM"
	case RecordAUX:
		return "AUX"
	case RecordLOST:
		return "LOST"
	case RecordITraceStart:
		return "ITRACE_START"
	case RecordExit:
		return "EXIT"
	default:
		return "UNKNOWN"
	}
}

// Record is one perf event record. Only the fields relevant to the record
// type are populated.
type Record struct {
	Type RecordType
	PID  int32
	Time uint64 // virtual cycles

	// MMAP fields.
	Addr     uint64
	MapLen   uint64
	Filename string

	// COMM field.
	Comm string

	// AUX fields.
	Data []byte

	// LOST field.
	LostBytes uint64
}

// File format constants.
var fileMagic = [8]byte{'P', 'E', 'R', 'F', 'S', 'I', 'M', 1}

// Errors for the file layer.
var (
	ErrBadMagic  = errors.New("perf: bad file magic")
	ErrBadRecord = errors.New("perf: malformed record")
)

// WriteRecords serializes records in a compact perf.data-like layout.
func WriteRecords(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return fmt.Errorf("perf: write magic: %w", err)
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(records)))
	if _, err := bw.Write(scratch[:4]); err != nil {
		return fmt.Errorf("perf: write count: %w", err)
	}
	for i := range records {
		if err := writeRecord(bw, &records[i]); err != nil {
			return fmt.Errorf("perf: record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

func writeString(w io.Writer, s string) error {
	var n [2]byte
	if len(s) > 0xFFFF {
		return fmt.Errorf("%w: string too long", ErrBadRecord)
	}
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeBytes(w io.Writer, b []byte) error {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func writeRecord(w io.Writer, r *Record) error {
	var hdr [13]byte
	hdr[0] = byte(r.Type)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(r.PID))
	binary.LittleEndian.PutUint64(hdr[5:13], r.Time)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var scratch [16]byte
	switch r.Type {
	case RecordMMAP:
		binary.LittleEndian.PutUint64(scratch[:8], r.Addr)
		binary.LittleEndian.PutUint64(scratch[8:16], r.MapLen)
		if _, err := w.Write(scratch[:16]); err != nil {
			return err
		}
		return writeString(w, r.Filename)
	case RecordCOMM:
		return writeString(w, r.Comm)
	case RecordAUX:
		return writeBytes(w, r.Data)
	case RecordLOST:
		binary.LittleEndian.PutUint64(scratch[:8], r.LostBytes)
		_, err := w.Write(scratch[:8])
		return err
	case RecordITraceStart, RecordExit:
		return nil
	default:
		return fmt.Errorf("%w: unknown type %d", ErrBadRecord, r.Type)
	}
}

// ReadRecords parses a stream produced by WriteRecords.
func ReadRecords(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("perf: read magic: %w", err)
	}
	if magic != fileMagic {
		return nil, ErrBadMagic
	}
	var cnt [4]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("perf: read count: %w", err)
	}
	n := binary.LittleEndian.Uint32(cnt[:])
	out := make([]Record, 0, n)
	for i := uint32(0); i < n; i++ {
		rec, err := readRecord(br)
		if err != nil {
			return nil, fmt.Errorf("perf: record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func readString(r io.Reader) (string, error) {
	var n [2]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	buf := make([]byte, binary.LittleEndian.Uint16(n[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readBytes(r io.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, binary.LittleEndian.Uint32(n[:]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func readRecord(r io.Reader) (Record, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, err
	}
	rec := Record{
		Type: RecordType(hdr[0]),
		PID:  int32(binary.LittleEndian.Uint32(hdr[1:5])),
		Time: binary.LittleEndian.Uint64(hdr[5:13]),
	}
	var scratch [16]byte
	var err error
	switch rec.Type {
	case RecordMMAP:
		if _, err = io.ReadFull(r, scratch[:16]); err != nil {
			return Record{}, err
		}
		rec.Addr = binary.LittleEndian.Uint64(scratch[:8])
		rec.MapLen = binary.LittleEndian.Uint64(scratch[8:16])
		rec.Filename, err = readString(r)
	case RecordCOMM:
		rec.Comm, err = readString(r)
	case RecordAUX:
		rec.Data, err = readBytes(r)
	case RecordLOST:
		if _, err = io.ReadFull(r, scratch[:8]); err != nil {
			return Record{}, err
		}
		rec.LostBytes = binary.LittleEndian.Uint64(scratch[:8])
	case RecordITraceStart, RecordExit:
	default:
		return Record{}, fmt.Errorf("%w: type %d", ErrBadRecord, hdr[0])
	}
	if err != nil {
		return Record{}, err
	}
	return rec, nil
}
