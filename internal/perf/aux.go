// Package perf simulates the Linux perf_event machinery INSPECTOR uses to
// expose Intel PT to user space (§V-B): per-process AUX ring buffers in
// full-trace and snapshot modes, the perf.data-style record stream (MMAP,
// COMM, AUX, LOST, ITRACE_START), and cgroup-scoped trace sessions.
//
// Two properties of the real interface matter to the paper and are
// preserved here:
//
//   - In full-trace mode the kernel never overwrites data the consumer has
//     not collected; if the consumer falls behind, *new* data is dropped
//     and the trace has gaps.
//   - In snapshot mode the ring constantly overwrites the oldest data, and
//     a consumer can capture the current window around an event of
//     interest — the basis of INSPECTOR's live snapshot facility (§VI).
package perf

import (
	"sync"
)

// Mode selects the AUX buffer's overwrite behaviour.
type Mode int

// Modes.
const (
	// ModeFullTrace preserves unread data; producers lose new data when
	// the ring is full.
	ModeFullTrace Mode = iota + 1
	// ModeSnapshot lets the producer overwrite the oldest data; the
	// consumer captures windows on demand.
	ModeSnapshot
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeFullTrace:
		return "full-trace"
	case ModeSnapshot:
		return "snapshot"
	default:
		return "unknown"
	}
}

// AuxBuffer is one AUX area ring buffer. It is safe for one producer and
// one consumer operating concurrently.
type AuxBuffer struct {
	mu   sync.Mutex
	data []byte
	head uint64 // absolute produced offset
	tail uint64 // absolute consumed offset
	mode Mode
	lost uint64
}

// NewAuxBuffer allocates a ring of the given size.
func NewAuxBuffer(size int, mode Mode) *AuxBuffer {
	if size <= 0 {
		size = 1
	}
	return &AuxBuffer{data: make([]byte, size), mode: mode}
}

// Size returns the ring capacity in bytes.
func (b *AuxBuffer) Size() int { return len(b.data) }

// Mode returns the buffer's mode.
func (b *AuxBuffer) Mode() Mode { return b.mode }

// Lost returns the bytes dropped due to overrun (full-trace mode only).
func (b *AuxBuffer) Lost() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lost
}

// Len returns the number of unread bytes currently buffered.
func (b *AuxBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.head - b.tail)
}

// copyIn copies p into the ring starting at absolute offset at, in at
// most two straight copies (the span up to the wrap point, then the
// remainder from the ring's start) instead of a byte-at-a-time modulo
// loop. len(p) must not exceed the ring size.
func (b *AuxBuffer) copyIn(at uint64, p []byte) {
	off := int(at % uint64(len(b.data)))
	n := copy(b.data[off:], p)
	copy(b.data, p[n:])
}

// copyOut copies n ring bytes starting at absolute offset from into a
// fresh slice, again in at most two straight copies.
func (b *AuxBuffer) copyOut(from uint64, n int) []byte {
	out := make([]byte, n)
	off := int(from % uint64(len(b.data)))
	m := copy(out, b.data[off:])
	copy(out[m:], b.data[:n-m])
	return out
}

// WriteTrace implements pt.ByteSink. In full-trace mode it accepts at most
// the free space and reports how much was accepted; in snapshot mode it
// accepts everything, advancing the window over the oldest bytes.
func (b *AuxBuffer) WriteTrace(p []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(p)
	size := uint64(len(b.data))
	if b.mode == ModeFullTrace {
		free := size - (b.head - b.tail)
		if uint64(n) > free {
			b.lost += uint64(n) - free
			n = int(free)
		}
	}
	if uint64(n) >= size {
		// Only the newest ring-full of bytes survives; skip the rest.
		b.copyIn(b.head+uint64(n)-size, p[uint64(n)-size:n])
	} else {
		b.copyIn(b.head, p[:n])
	}
	b.head += uint64(n)
	if b.mode == ModeSnapshot && b.head-b.tail > size {
		b.tail = b.head - size
	}
	return n
}

// Read consumes up to max unread bytes (full-trace drain). A negative max
// drains everything.
func (b *AuxBuffer) Read(max int) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	avail := int(b.head - b.tail)
	if max >= 0 && avail > max {
		avail = max
	}
	out := b.copyOut(b.tail, avail)
	b.tail += uint64(avail)
	return out
}

// SnapshotWindow copies the current window (the most recent Size() bytes,
// or everything produced if less) without consuming it — the snapshot-mode
// capture triggered by SIGUSR2 in the paper's perf integration.
func (b *AuxBuffer) SnapshotWindow() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	size := uint64(len(b.data))
	start := b.tail
	if b.head-start > size {
		start = b.head - size
	}
	return b.copyOut(start, int(b.head-start))
}
