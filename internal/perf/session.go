package perf

import (
	"io"
	"sync"

	"github.com/repro/inspector/internal/cgroup"
)

// SessionOptions configure a trace session.
type SessionOptions struct {
	// Filter restricts tracing to processes inside this cgroup (and its
	// descendants). Nil traces everything, but INSPECTOR always filters:
	// the threading library forks processes whose PIDs are unknown in
	// advance, so the paper creates a dedicated cgroup for the app.
	Filter *cgroup.Group
	// Mode selects full-trace or snapshot AUX buffers.
	Mode Mode
	// AuxSize is the per-process AUX ring size in bytes (default 4 MiB,
	// the slot size used by the paper's snapshot ring).
	AuxSize int
	// AutoDrain makes full-trace streams move ring contents into the
	// session store when the ring is half full, emulating the perf
	// tool's periodic reads. Disable in tests that exercise overruns.
	AutoDrain bool
	// Clock supplies timestamps for records (virtual cycles).
	Clock func() uint64
}

// DefaultAuxSize is the default per-process AUX ring size.
const DefaultAuxSize = 4 << 20

// Session is one perf tracing session over a set of processes, the
// equivalent of a `perf record -e intel_pt//` invocation scoped to a
// cgroup.
type Session struct {
	opts SessionOptions

	mu      sync.Mutex
	streams map[int32]*Stream
	records []Record
}

// Stream is the per-process trace: an AUX ring plus the drained store.
// It implements pt.ByteSink, so a pt.Encoder can write directly into it.
type Stream struct {
	sess *Session
	pid  int32
	aux  *AuxBuffer

	mu    sync.Mutex
	store []byte
}

// NewSession creates a session.
func NewSession(opts SessionOptions) *Session {
	if opts.AuxSize <= 0 {
		opts.AuxSize = DefaultAuxSize
	}
	if opts.Mode == 0 {
		opts.Mode = ModeFullTrace
	}
	return &Session{
		opts:    opts,
		streams: make(map[int32]*Stream),
	}
}

// now returns the session timestamp.
func (s *Session) now() uint64 {
	if s.opts.Clock != nil {
		return s.opts.Clock()
	}
	return 0
}

// Attach creates (or returns) the trace stream for pid. It returns false
// if the session's cgroup filter excludes the process — the event simply
// does not count for it, as with real cgroup-scoped perf events.
func (s *Session) Attach(pid int32) (*Stream, bool) {
	if s.opts.Filter != nil && !s.opts.Filter.Contains(pid) {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[pid]; ok {
		return st, true
	}
	st := &Stream{
		sess: s,
		pid:  pid,
		aux:  NewAuxBuffer(s.opts.AuxSize, s.opts.Mode),
	}
	s.streams[pid] = st
	s.records = append(s.records, Record{Type: RecordITraceStart, PID: pid, Time: s.now()})
	return st, true
}

// Stream returns the stream for pid if attached.
func (s *Session) Stream(pid int32) (*Stream, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[pid]
	return st, ok
}

// PIDs returns the attached process IDs (unordered).
func (s *Session) PIDs() []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int32, 0, len(s.streams))
	for pid := range s.streams {
		out = append(out, pid)
	}
	return out
}

// RecordMMAP logs a loadable mapping event.
func (s *Session) RecordMMAP(pid int32, addr, length uint64, filename string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, Record{
		Type: RecordMMAP, PID: pid, Time: s.now(),
		Addr: addr, MapLen: length, Filename: filename,
	})
}

// RecordComm logs a process-name event.
func (s *Session) RecordComm(pid int32, comm string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, Record{Type: RecordCOMM, PID: pid, Time: s.now(), Comm: comm})
}

// RecordExit logs process exit.
func (s *Session) RecordExit(pid int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, Record{Type: RecordExit, PID: pid, Time: s.now()})
}

// Records returns a copy of the non-AUX record stream.
func (s *Session) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// WriteTrace implements pt.ByteSink for the process's PT encoder.
func (st *Stream) WriteTrace(p []byte) int {
	n := st.aux.WriteTrace(p)
	if st.sess.opts.AutoDrain && st.aux.Mode() == ModeFullTrace && st.aux.Len() >= st.aux.Size()/2 {
		st.Drain()
	}
	return n
}

// Drain moves unread ring contents into the stream's store (the perf
// tool reading the AUX mmap and appending to perf.data).
func (st *Stream) Drain() {
	data := st.aux.Read(-1)
	if len(data) == 0 {
		return
	}
	st.mu.Lock()
	st.store = append(st.store, data...)
	st.mu.Unlock()
}

// Trace drains the ring and returns the complete stored trace.
func (st *Stream) Trace() []byte {
	st.Drain()
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]byte, len(st.store))
	copy(out, st.store)
	return out
}

// StoredBytes returns the bytes accumulated in the store plus unread ring
// contents, without consuming anything.
func (st *Stream) StoredBytes() int {
	st.mu.Lock()
	n := len(st.store)
	st.mu.Unlock()
	return n + st.aux.Len()
}

// Lost returns trace bytes dropped by ring overrun.
func (st *Stream) Lost() uint64 { return st.aux.Lost() }

// Aux exposes the underlying ring (snapshot capture needs it).
func (st *Stream) Aux() *AuxBuffer { return st.aux }

// PID returns the traced process id.
func (st *Stream) PID() int32 { return st.pid }

// TotalTraceBytes sums stored trace bytes over all streams — the size of
// the provenance log perf would have written (Table 9's "Size" column).
func (s *Session) TotalTraceBytes() uint64 {
	s.mu.Lock()
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	var total uint64
	for _, st := range streams {
		total += uint64(st.StoredBytes())
	}
	return total
}

// TotalLost sums dropped bytes over all streams.
func (s *Session) TotalLost() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, st := range s.streams {
		total += st.aux.Lost()
	}
	return total
}

// Serialize writes the session — meta records followed by one AUX
// record per stream (plus LOST records where the ring overran) — in the
// perf.data-like format.
func (s *Session) Serialize(w io.Writer) error {
	recs := s.Records()
	s.mu.Lock()
	streams := make([]*Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	for _, st := range streams {
		recs = append(recs, Record{Type: RecordAUX, PID: st.pid, Time: s.now(), Data: st.Trace()})
		if lost := st.Lost(); lost > 0 {
			recs = append(recs, Record{Type: RecordLOST, PID: st.pid, Time: s.now(), LostBytes: lost})
		}
	}
	return WriteRecords(w, recs)
}
