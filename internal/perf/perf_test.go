package perf

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/repro/inspector/internal/cgroup"
)

func TestAuxFullTraceBasic(t *testing.T) {
	b := NewAuxBuffer(16, ModeFullTrace)
	if n := b.WriteTrace([]byte("hello")); n != 5 {
		t.Fatalf("write = %d", n)
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	if got := b.Read(-1); string(got) != "hello" {
		t.Fatalf("read = %q", got)
	}
	if b.Len() != 0 {
		t.Fatalf("Len after drain = %d", b.Len())
	}
}

func TestAuxFullTraceOverrunLoses(t *testing.T) {
	b := NewAuxBuffer(8, ModeFullTrace)
	if n := b.WriteTrace([]byte("12345678")); n != 8 {
		t.Fatalf("first write = %d", n)
	}
	// Ring full, consumer behind: new data must be dropped, old kept.
	if n := b.WriteTrace([]byte("ABCD")); n != 0 {
		t.Fatalf("overrun write accepted %d bytes", n)
	}
	if b.Lost() != 4 {
		t.Fatalf("Lost = %d, want 4", b.Lost())
	}
	if got := b.Read(-1); string(got) != "12345678" {
		t.Fatalf("read = %q, old data must be preserved", got)
	}
}

func TestAuxFullTracePartialAccept(t *testing.T) {
	b := NewAuxBuffer(8, ModeFullTrace)
	b.WriteTrace([]byte("123456"))
	if n := b.WriteTrace([]byte("ABCD")); n != 2 {
		t.Fatalf("partial write = %d, want 2", n)
	}
	if got := b.Read(-1); string(got) != "123456AB" {
		t.Fatalf("read = %q", got)
	}
}

func TestAuxWrapAround(t *testing.T) {
	b := NewAuxBuffer(8, ModeFullTrace)
	b.WriteTrace([]byte("abcdef"))
	if got := b.Read(4); string(got) != "abcd" {
		t.Fatalf("read = %q", got)
	}
	b.WriteTrace([]byte("ghij")) // wraps
	if got := b.Read(-1); string(got) != "efghij" {
		t.Fatalf("wrapped read = %q", got)
	}
}

func TestAuxSnapshotOverwrites(t *testing.T) {
	b := NewAuxBuffer(8, ModeSnapshot)
	for i := 0; i < 4; i++ {
		if n := b.WriteTrace([]byte("0123")); n != 4 {
			t.Fatalf("snapshot write = %d", n)
		}
	}
	if b.Lost() != 0 {
		t.Fatalf("snapshot mode lost = %d", b.Lost())
	}
	win := b.SnapshotWindow()
	if len(win) != 8 {
		t.Fatalf("window = %d bytes, want 8", len(win))
	}
	if string(win) != "01230123" {
		t.Fatalf("window = %q", win)
	}
}

func TestAuxSnapshotWindowSmallerThanRing(t *testing.T) {
	b := NewAuxBuffer(64, ModeSnapshot)
	b.WriteTrace([]byte("xyz"))
	win := b.SnapshotWindow()
	if string(win) != "xyz" {
		t.Fatalf("window = %q", win)
	}
	// Window capture does not consume.
	if string(b.SnapshotWindow()) != "xyz" {
		t.Fatal("second capture differs")
	}
}

func TestQuickAuxFullTraceNeverCorrupts(t *testing.T) {
	// Whatever the write/read interleaving, the consumer must read back
	// exactly the accepted prefix of the produced stream.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewAuxBuffer(32+r.Intn(64), ModeFullTrace)
		var produced, accepted, consumed []byte
		for i := 0; i < 50; i++ {
			if r.Intn(2) == 0 {
				chunk := make([]byte, r.Intn(24))
				r.Read(chunk)
				n := b.WriteTrace(chunk)
				produced = append(produced, chunk...)
				accepted = append(accepted, chunk[:n]...)
			} else {
				consumed = append(consumed, b.Read(r.Intn(40))...)
			}
		}
		consumed = append(consumed, b.Read(-1)...)
		return bytes.Equal(consumed, accepted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecordCOMM, PID: 1, Time: 10, Comm: "blackscholes"},
		{Type: RecordMMAP, PID: 1, Time: 20, Addr: 0x400000, MapLen: 4096, Filename: "/app/bin"},
		{Type: RecordITraceStart, PID: 2, Time: 30},
		{Type: RecordAUX, PID: 2, Time: 40, Data: []byte{1, 2, 3, 4}},
		{Type: RecordLOST, PID: 2, Time: 50, LostBytes: 999},
		{Type: RecordExit, PID: 2, Time: 60},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		a, b := recs[i], got[i]
		if a.Type != b.Type || a.PID != b.PID || a.Time != b.Time ||
			a.Addr != b.Addr || a.MapLen != b.MapLen || a.Filename != b.Filename ||
			a.Comm != b.Comm || a.LostBytes != b.LostBytes || !bytes.Equal(a.Data, b.Data) {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, b, a)
		}
	}
}

func TestReadRecordsBadMagic(t *testing.T) {
	if _, err := ReadRecords(bytes.NewReader([]byte("NOTPERF0xxxx"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
}

func TestReadRecordsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecords(&buf, []Record{{Type: RecordCOMM, PID: 1, Comm: "x"}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadRecords(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Error("truncated file parsed successfully")
	}
}

func TestRecordTypeString(t *testing.T) {
	for _, ty := range []RecordType{RecordMMAP, RecordCOMM, RecordAUX, RecordLOST, RecordITraceStart, RecordExit} {
		if ty.String() == "UNKNOWN" {
			t.Errorf("type %d renders UNKNOWN", ty)
		}
	}
	if RecordType(200).String() != "UNKNOWN" {
		t.Error("unknown type must render UNKNOWN")
	}
	if ModeFullTrace.String() != "full-trace" || ModeSnapshot.String() != "snapshot" || Mode(0).String() != "unknown" {
		t.Error("mode strings wrong")
	}
}

func TestSessionCgroupFilter(t *testing.T) {
	h := cgroup.NewHierarchy()
	g, err := h.Create("/inspector")
	if err != nil {
		t.Fatal(err)
	}
	g.AddProcess(100)
	h.Fork(100, 101) // forked thread inherits the group

	s := NewSession(SessionOptions{Filter: g, AutoDrain: true})
	if _, ok := s.Attach(100); !ok {
		t.Error("group member rejected")
	}
	if _, ok := s.Attach(101); !ok {
		t.Error("forked child rejected — cgroup inheritance broken")
	}
	if _, ok := s.Attach(999); ok {
		t.Error("outsider attached despite filter")
	}
	if got := len(s.PIDs()); got != 2 {
		t.Errorf("PIDs = %d, want 2", got)
	}
}

func TestSessionStreamStoreAndDrain(t *testing.T) {
	s := NewSession(SessionOptions{AuxSize: 64, AutoDrain: true})
	st, ok := s.Attach(1)
	if !ok {
		t.Fatal("attach failed")
	}
	// Write more than the ring size: auto-drain must prevent loss.
	var want []byte
	for i := 0; i < 50; i++ {
		chunk := []byte{byte(i), byte(i + 1), byte(i + 2)}
		if n := st.WriteTrace(chunk); n != 3 {
			t.Fatalf("write %d accepted %d", i, n)
		}
		want = append(want, chunk...)
	}
	if got := st.Trace(); !bytes.Equal(got, want) {
		t.Fatalf("trace mismatch: %d vs %d bytes", len(got), len(want))
	}
	if st.Lost() != 0 {
		t.Errorf("lost = %d with auto-drain", st.Lost())
	}
	if s.TotalTraceBytes() != uint64(len(want)) {
		t.Errorf("TotalTraceBytes = %d, want %d", s.TotalTraceBytes(), len(want))
	}
}

func TestSessionNoAutoDrainOverruns(t *testing.T) {
	s := NewSession(SessionOptions{AuxSize: 16, AutoDrain: false})
	st, _ := s.Attach(1)
	for i := 0; i < 10; i++ {
		st.WriteTrace([]byte("abcdefgh"))
	}
	if st.Lost() == 0 {
		t.Error("expected ring overrun without auto-drain")
	}
	if s.TotalLost() != st.Lost() {
		t.Errorf("TotalLost = %d, stream lost = %d", s.TotalLost(), st.Lost())
	}
}

func TestSessionAttachIdempotent(t *testing.T) {
	s := NewSession(SessionOptions{})
	a, _ := s.Attach(5)
	b, _ := s.Attach(5)
	if a != b {
		t.Error("re-attach returned a different stream")
	}
	got, ok := s.Stream(5)
	if !ok || got != a {
		t.Error("Stream lookup failed")
	}
	if _, ok := s.Stream(6); ok {
		t.Error("unknown pid stream lookup succeeded")
	}
}

func TestSessionRecordsAndSerialize(t *testing.T) {
	var now uint64
	s := NewSession(SessionOptions{AutoDrain: true, Clock: func() uint64 { now += 5; return now }})
	st, _ := s.Attach(1)
	s.RecordComm(1, "histogram")
	s.RecordMMAP(1, 0x400000, 8192, "histogram.bin")
	st.WriteTrace([]byte{0xAA, 0xBB})
	s.RecordExit(1)

	var buf bytes.Buffer
	if err := s.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var haveAux, haveComm, haveMmap, haveExit bool
	for _, r := range recs {
		switch r.Type {
		case RecordAUX:
			haveAux = bytes.Equal(r.Data, []byte{0xAA, 0xBB})
		case RecordCOMM:
			haveComm = r.Comm == "histogram"
		case RecordMMAP:
			haveMmap = r.Filename == "histogram.bin" && r.MapLen == 8192
		case RecordExit:
			haveExit = true
		}
	}
	if !haveAux || !haveComm || !haveMmap || !haveExit {
		t.Errorf("missing records: aux=%v comm=%v mmap=%v exit=%v", haveAux, haveComm, haveMmap, haveExit)
	}
	// Timestamps must be monotonically increasing via the clock.
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Errorf("timestamps not monotone: %d then %d", recs[i-1].Time, recs[i].Time)
		}
	}
}

func BenchmarkAuxWrite(b *testing.B) {
	buf := NewAuxBuffer(1<<20, ModeSnapshot)
	chunk := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.WriteTrace(chunk)
	}
}
