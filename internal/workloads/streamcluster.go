package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// streamcluster is the PARSEC online k-median clustering kernel (paper
// parameters "2 5 1 10 10 5 none output.txt 16"). It is barrier-heavy
// (two barriers per gain-evaluation pass) and has the suite's highest
// branch rate — its provenance log is the paper's largest at 29.3 GB,
// which even forced the authors to drop to 14/15 threads to fit the log
// in tmpfs (§VII-A). The reproduction keeps both properties: most
// branches, most barrier crossings.
type streamcluster struct{}

func init() { register(streamcluster{}) }

// Name implements Workload.
func (streamcluster) Name() string { return "streamcluster" }

// MaxThreads implements Workload.
func (streamcluster) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// Run implements Workload.
func (streamcluster) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	const dim = 5
	points := 1200 * cfg.Size.scale()
	batches := 10
	r := rng(cfg.Seed)

	in := make([]byte, 0, points*dim*8)
	for i := 0; i < points*dim; i++ {
		in = appendF64(in, r.Float64()*100)
	}
	inAddr, err := rt.MapInput("stream.dat", in)
	if err != nil {
		return err
	}

	var centers, assign mem.Addr
	barGain := rt.NewBarrier("sc.gain", cfg.Threads)
	barOpen := rt.NewBarrier("sc.open", cfg.Threads)
	var opened uint64

	_, err = runMain(rt, func(main *threading.Thread) {
		maxCenters := 64
		centers = main.Malloc(maxCenters * dim * 8)
		assign = main.Malloc(points * 8)
		// First point opens the first center.
		for d := 0; d < dim; d++ {
			main.StoreF64(centers+mem.Addr(d*8), main.LoadF64(inAddr+mem.Addr(d*8)))
		}
		nCenters := 1

		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			for b := 0; b < batches; b++ {
				lo, hi := chunk(points, cfg.Threads, idx)
				// Gain evaluation: branch per point per candidate —
				// the branch firehose that makes this app's PT log
				// enormous.
				for p := lo; p < hi; p++ {
					var px [dim]float64
					for d := 0; d < dim; d++ {
						px[d] = w.LoadF64(inAddr + mem.Addr((p*dim+d)*8))
					}
					best, bestD := 0, 1e300
					for c := 0; c < nCenters; c++ {
						var dist float64
						// One tracked load per candidate center; the rest of
						// the coordinates ride the same page.
						cx := w.LoadF64(centers + mem.Addr(c*dim*8))
						dist += (px[0] - cx) * (px[0] - cx)
						for d := 1; d < dim; d++ {
							dist += (px[d] - cx) * (px[d] - cx)
						}
						w.Compute(200)
						if w.Branch("sc.closer", dist < bestD) {
							bestD, best = dist, c
						}
					}
					w.Store64(assign+mem.Addr(p*8), uint64(best))
					w.Branch("sc.gainloop", p+1 < hi)
				}
				barGain.Wait(w)
				// Thread 0 decides whether to open a new center this
				// batch (weight threshold on the batch index).
				if idx == 0 {
					if w.Branch("sc.open", nCenters < maxCenters && b%2 == 0) {
						src := (b * 37) % points
						for d := 0; d < dim; d++ {
							v := w.LoadF64(inAddr + mem.Addr((src*dim+d)*8))
							w.StoreF64(centers+mem.Addr((nCenters*dim+d)*8), v)
						}
						nCenters++
						opened++
					}
				}
				barOpen.Wait(w)
			}
		})
	})
	if err != nil {
		return err
	}
	if opened == 0 {
		return fmt.Errorf("streamcluster: no centers opened")
	}
	return nil
}
