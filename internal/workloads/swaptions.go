package workloads

import (
	"fmt"
	"math"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// swaptions is the PARSEC Heath-Jarrow-Morton Monte-Carlo swaption
// pricer (paper parameters "-ns 128 -sm 50000 -nt 16", scaled). Almost
// no shared-memory traffic — each thread prices its own swaptions — but
// an enormous stream of random-outcome branches from the Monte-Carlo
// paths, which is why its 7 GB log compresses only 8x in Table 9.
type swaptions struct{}

func init() { register(swaptions{}) }

// Name implements Workload.
func (swaptions) Name() string { return "swaptions" }

// MaxThreads implements Workload.
func (swaptions) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// Run implements Workload.
func (swaptions) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	ns := 32 * cfg.Size.scale() // swaptions
	sims := 4000                // Monte-Carlo trials per swaption
	r := rng(cfg.Seed)

	in := make([]byte, 0, ns*16)
	for i := 0; i < ns; i++ {
		in = appendF64(in, 0.02+0.08*r.Float64()) // strike
		in = appendF64(in, 0.5+4.5*r.Float64())   // maturity
	}
	inAddr, err := rt.MapInput("swaptions.dat", in)
	if err != nil {
		return err
	}

	var prices mem.Addr
	var sumPrices float64

	_, err = runMain(rt, func(main *threading.Thread) {
		prices = main.Malloc(ns * 8)
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			lo, hi := chunk(ns, cfg.Threads, idx)
			for s := lo; s < hi; s++ {
				strike := w.LoadF64(inAddr + mem.Addr(s*16))
				maturity := w.LoadF64(inAddr + mem.Addr(s*16+8))
				// xorshift PRNG per swaption for deterministic paths.
				state := uint64(cfg.Seed) + uint64(s)*2685821657736338717 + 1
				var payoffSum float64
				for trial := 0; trial < sims; trial++ {
					state ^= state << 13
					state ^= state >> 7
					state ^= state << 17
					// Forward-rate path: the sign of each step is a
					// random branch (HJM path simulation).
					rate := strike
					up := state&1 == 0
					if w.Branch("swp.path", up) {
						rate *= 1.02
					} else {
						rate *= 0.98
					}
					payoff := rate - strike
					if w.Branch("swp.itm", payoff > 0) {
						payoffSum += payoff * math.Exp(-0.03*maturity)
					}
					w.Compute(280) // per-path discounting math
				}
				w.StoreF64(prices+mem.Addr(s*8), payoffSum/float64(sims))
				w.Branch("swp.swaption", s+1 < hi)
			}
		})
		for s := 0; s < ns; s++ {
			sumPrices += main.LoadF64(prices + mem.Addr(s*8))
		}
	})
	if err != nil {
		return err
	}
	if sumPrices <= 0 || math.IsNaN(sumPrices) {
		return fmt.Errorf("swaptions: implausible price sum %f", sumPrices)
	}
	return nil
}
