package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// pca is the Phoenix principal-component-analysis kernel (paper
// parameters "-r 4000 -c 4000 -s 100", scaled): a row-means phase and a
// covariance phase separated by a barrier. The covariance phase reads
// row pairs — a quadratic page-read pattern that yields the suite's
// mid-range fault counts (5.34E5 in Table 7).
type pca struct{}

func init() { register(pca{}) }

// Name implements Workload.
func (pca) Name() string { return "pca" }

// MaxThreads implements Workload.
func (pca) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// Run implements Workload.
func (pca) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	rows := 128 * cfg.Size.scale()
	cols := 128 * cfg.Size.scale()
	r := rng(cfg.Seed)

	in := make([]byte, 0, rows*cols*8)
	for i := 0; i < rows*cols; i++ {
		in = appendF64(in, float64(r.Intn(100)))
	}
	mAddr, err := rt.MapInput("matrix.dat", in)
	if err != nil {
		return err
	}

	var means, cov mem.Addr
	bar := rt.NewBarrier("pca.phase", cfg.Threads)
	var covTrace float64

	_, err = runMain(rt, func(main *threading.Thread) {
		means = main.Malloc(rows * 8)
		cov = main.Malloc(rows * rows * 8)
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			// Phase 1: per-row means.
			lo, hi := chunk(rows, cfg.Threads, idx)
			for i := lo; i < hi; i++ {
				var sum float64
				for j := 0; j < cols; j += 4 {
					sum += w.LoadF64(mAddr + mem.Addr((i*cols+j)*8))
				}
				w.Compute(uint64(cols) * 8)
				w.StoreF64(means+mem.Addr(i*8), sum*4/float64(cols))
				w.Branch("pca.mean", i+1 < hi)
			}
			bar.Wait(w)
			// Phase 2: covariance of row pairs (upper triangle,
			// distributed round-robin to balance the triangle).
			for i := idx; i < rows; i += cfg.Threads {
				mi := w.LoadF64(means + mem.Addr(i*8))
				for j := i; j < rows; j++ {
					mj := w.LoadF64(means + mem.Addr(j*8))
					var s float64
					for k := 0; k < cols; k += 16 {
						a := w.LoadF64(mAddr + mem.Addr((i*cols+k)*8))
						b := w.LoadF64(mAddr + mem.Addr((j*cols+k)*8))
						s += (a - mi) * (b - mj)
					}
					w.Compute(uint64(cols) * 24)
					w.StoreF64(cov+mem.Addr((i*rows+j)*8), s/float64(cols-1))
					w.Branch("pca.cov", j+1 < rows)
				}
			}
		})
		for i := 0; i < rows; i++ {
			covTrace += main.LoadF64(cov + mem.Addr((i*rows+i)*8))
		}
	})
	if err != nil {
		return err
	}
	if covTrace <= 0 {
		return fmt.Errorf("pca: implausible covariance trace %f", covTrace)
	}
	return nil
}
