// Package workloads re-implements the twelve benchmark applications the
// paper evaluates (§VII, Table 7) — the Phoenix 2.0 suite (histogram,
// kmeans, linear_regression, matrix_multiply, pca, reverse_index,
// string_match, word_count) and the PARSEC 3.0 applications
// (blackscholes, canneal, streamcluster, swaptions) — against the
// INSPECTOR threading API.
//
// Each workload preserves the characteristics that drive the paper's
// results rather than the exact numerics of the originals:
//
//   - parallel structure (data-parallel fork/join, locks, barriers,
//     per-iteration thread spawning for kmeans);
//   - page-touch patterns (canneal's scattered writes, reverse_index's
//     allocator churn, histogram's sequential input scans);
//   - branch profiles (streamcluster's branch-heavy inner loops,
//     string_match/swaptions' data-dependent outcomes that compress
//     poorly, regular loop branches that compress well);
//   - false sharing (linear_regression's adjacent per-thread
//     accumulators, which INSPECTOR's process isolation fixes).
//
// Inputs are synthetic and deterministic per (size, seed): the paper's
// datasets (500 MB key files, BMP images, .nets files) are not
// redistributable, and absolute input sizes are scaled to simulator
// scale. Sizes S/M/L keep the paper's relative proportions for the
// Figure 8 input-scaling experiment.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/repro/inspector/internal/threading"
)

// Size selects the input scale, mirroring the S/M/L datasets of §VII-C.
type Size int

// Input sizes.
const (
	Small Size = iota + 1
	Medium
	Large
)

// String names the size as the paper's figures do.
func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return "unknown"
	}
}

// scale returns a multiplier for input sizes: S=1, M=2, L=4 (the paper's
// datasets roughly double per step; Figure 8's right axis).
func (s Size) scale() int {
	switch s {
	case Small:
		return 1
	case Large:
		return 4
	default:
		return 2
	}
}

// Config parameterizes one run.
type Config struct {
	Size    Size
	Threads int
	Seed    int64
}

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.Size == 0 {
		c.Size = Medium
	}
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Workload is one benchmark application.
type Workload interface {
	// Name returns the benchmark's canonical name (Table 7 spelling).
	Name() string
	// MaxThreads returns the thread-slot requirement for the given
	// config (kmeans spawns threads every iteration).
	MaxThreads(cfg Config) int
	// Run executes the workload on the runtime. It returns an error if
	// the computation produced an implausible result — a self-check
	// that the memory substrate delivered correct values.
	Run(rt *threading.Runtime, cfg Config) error
}

var (
	registryMu sync.Mutex
	registry   []Workload
)

// register adds a workload at package init.
func register(w Workload) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = append(registry, w)
}

// All returns every registered workload sorted by name — the twelve rows
// of Table 7.
func All() []Workload {
	registryMu.Lock()
	out := make([]Workload, len(registry))
	copy(out, registry)
	registryMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Get returns the workload with the given name.
func Get(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns the registered workload names.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name()
	}
	return out
}

// chunk splits n items across threads, returning [lo,hi) for thread i.
func chunk(n, threads, i int) (int, int) {
	per := (n + threads - 1) / threads
	lo := i * per
	hi := lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// rng builds the deterministic generator for input synthesis.
func rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// spawnJoin forks `threads` workers running body(worker, index) and joins
// them all — the fork/join skeleton shared by the data-parallel apps.
func spawnJoin(main *threading.Thread, threads int, body func(w *threading.Thread, idx int)) {
	workers := make([]*threading.Thread, 0, threads-1)
	for i := 1; i < threads; i++ {
		idx := i
		workers = append(workers, main.Spawn(func(w *threading.Thread) {
			body(w, idx)
		}))
	}
	body(main, 0)
	for _, w := range workers {
		main.Join(w)
	}
}
