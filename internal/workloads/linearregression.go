package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// linearregression is the Phoenix least-squares kernel over a key file of
// (x, y) points. Phoenix lays the per-thread accumulator structs out
// contiguously, so adjacent threads' accumulators share cache lines and
// every update ping-pongs the line — textbook false sharing. The paper
// observes linear_regression running *faster* under INSPECTOR than
// native pthreads because threads-as-processes gives each thread a
// private page, eliminating the coherence storm (§VII-A, citing
// Sheriff). The native run here pays the false-sharing penalty per
// conflicting write; the INSPECTOR run does not.
type linearregression struct{}

func init() { register(linearregression{}) }

// Name implements Workload.
func (linearregression) Name() string { return "linear_regression" }

// MaxThreads implements Workload.
func (linearregression) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// accStride is the per-thread accumulator stride in bytes. Five u64
// fields packed at 40 bytes: adjacent threads overlap 64-byte lines.
const accStride = 40

// Run implements Workload.
func (linearregression) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	points := 48000 * cfg.Size.scale()
	r := rng(cfg.Seed)

	in := make([]byte, 0, points*16)
	for i := 0; i < points; i++ {
		x := uint64(r.Intn(1000))
		y := 3*x + uint64(r.Intn(50))
		for _, v := range []uint64{x, y} {
			for b := 0; b < 8; b++ {
				in = append(in, byte(v>>(8*b)))
			}
		}
	}
	inAddr, err := rt.MapInput("key_file_500MB.txt", in)
	if err != nil {
		return err
	}

	var acc mem.Addr
	var sx, sy uint64

	_, err = runMain(rt, func(main *threading.Thread) {
		acc = main.Malloc(cfg.Threads*accStride + 64)
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			lo, hi := chunk(points, cfg.Threads, idx)
			base := acc + mem.Addr(idx*accStride)
			for p := lo; p < hi; p++ {
				x := w.Load64(inAddr + mem.Addr(p*16))
				y := w.Load64(inAddr + mem.Addr(p*16+8))
				// The Phoenix kernel accumulates IN MEMORY each point:
				// SX += x; SY += y; SXX += x*x; SYY += y*y; SXY += x*y.
				// These five stores to the shared accumulator block are
				// the false-sharing hot spot.
				w.Store64(base, w.Load64(base)+x)
				w.Store64(base+8, w.Load64(base+8)+y)
				w.Store64(base+16, w.Load64(base+16)+x*x)
				w.Store64(base+24, w.Load64(base+24)+y*y)
				w.Store64(base+32, w.Load64(base+32)+x*y)
				w.Compute(240)
				w.Branch("linreg.scan", p+1 < hi)
			}
		})
		// Reduce the per-thread accumulators.
		for i := 0; i < cfg.Threads; i++ {
			base := acc + mem.Addr(i*accStride)
			sx += main.Load64(base)
			sy += main.Load64(base + 8)
			main.Branch("linreg.reduce", i+1 < cfg.Threads)
		}
	})
	if err != nil {
		return err
	}
	if sx == 0 || sy < sx {
		return fmt.Errorf("linear_regression: implausible sums sx=%d sy=%d", sx, sy)
	}
	return nil
}
