package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// histogram is the Phoenix kernel that computes per-channel pixel
// histograms over a bitmap. It scans the mmap'd input sequentially
// (read-set = the whole input file, one fault per page) and merges small
// per-thread tables at the end — the canonical "provenance from input"
// workload, and one of the four apps in the Figure 8 input-scaling
// experiment.
type histogram struct{}

func init() { register(histogram{}) }

// Name implements Workload.
func (histogram) Name() string { return "histogram" }

// MaxThreads implements Workload.
func (histogram) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// Run implements Workload.
func (histogram) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	pixels := 256 * 1024 * cfg.Size.scale() // 3 bytes per pixel
	r := rng(cfg.Seed)
	bmp := make([]byte, pixels*3)
	r.Read(bmp)
	inAddr, err := rt.MapInput("large.bmp", bmp)
	if err != nil {
		return err
	}

	var hist mem.Addr // 3 x 256 u64 buckets, shared
	merge := rt.NewMutex("merge")
	var checked uint64

	_, err = runMain(rt, func(main *threading.Thread) {
		hist = main.Malloc(3 * 256 * 8)
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			lo, hi := chunk(pixels, cfg.Threads, idx)
			var local [3][256]uint64
			// Scan 8 input bytes per load; the per-word branch is the
			// scan loop's back edge (highly predictable: compresses
			// extremely well, cf. the 34x lz4 ratio in Table 9).
			start, end := lo*3, hi*3
			for off := start; off < end; off += 8 {
				word := w.Load64(inAddr + mem.Addr(off))
				nb := end - off
				if nb > 8 {
					nb = 8
				}
				for b := 0; b < nb; b++ {
					ch := (off + b) % 3
					local[ch][byte(word>>(8*b))]++
				}
				w.Compute(uint64(nb) * 14)
				w.Branch("hist.scan", off+8 < end)
			}
			// Merge under the lock: writes confined to two pages.
			merge.Lock(w)
			for ch := 0; ch < 3; ch++ {
				for v := 0; v < 256; v += 1 {
					if local[ch][v] == 0 {
						continue
					}
					slot := hist + mem.Addr((ch*256+v)*8)
					w.Store64(slot, w.Load64(slot)+local[ch][v])
				}
			}
			merge.Unlock(w)
		})
		// Self-check: bucket mass equals byte count.
		var total uint64
		for i := 0; i < 3*256; i++ {
			total += main.Load64(hist + mem.Addr(i*8))
			if i%64 == 0 {
				main.Branch("hist.check", i+64 < 3*256)
			}
		}
		checked = total
	})
	if err != nil {
		return err
	}
	if checked != uint64(pixels*3) {
		return fmt.Errorf("histogram: counted %d bytes, want %d", checked, pixels*3)
	}
	return nil
}
