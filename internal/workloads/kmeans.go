package workloads

import (
	"fmt"
	"math"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// kmeans is the Phoenix clustering kernel with the paper's parameters
// "-d 3 -c 500 -p 50000 -s 500" scaled down. Crucially, Phoenix kmeans
// spawns a fresh set of worker threads on *every* iteration of the
// convergence loop; §VII-A reports it "creates more than 400 threads
// until the cluster coefficient converges". Under INSPECTOR each of
// those is a clone()d process, so the ProcessSpawn cost dominates — the
// explanation for kmeans's Figure 5 outlier overhead.
type kmeans struct{}

func init() { register(kmeans{}) }

// Name implements Workload.
func (kmeans) Name() string { return "kmeans" }

// kmeansIters is the fixed iteration budget; with 16 threads it yields
// 416 spawns, matching the paper's ">400 threads" observation.
const kmeansIters = 26

// MaxThreads implements Workload.
func (kmeans) MaxThreads(cfg Config) int {
	cfg = cfg.normalize()
	return kmeansIters*cfg.Threads + 2
}

// Run implements Workload.
func (kmeans) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	const dim = 3
	points := 600 * cfg.Size.scale()
	clusters := 16

	r := rng(cfg.Seed)
	in := make([]byte, 0, points*dim*8)
	for i := 0; i < points*dim; i++ {
		in = appendF64(in, r.Float64()*1000)
	}
	inAddr, err := rt.MapInput("points.dat", in)
	if err != nil {
		return err
	}

	var centroids, sums, counts mem.Addr
	accum := rt.NewMutex("accumulators")
	var moved float64

	_, err = runMain(rt, func(main *threading.Thread) {
		centroids = main.Malloc(clusters * dim * 8)
		sums = main.Malloc(clusters * dim * 8)
		counts = main.Malloc(clusters * 8)
		// Seed centroids from the first points.
		for c := 0; c < clusters; c++ {
			for d := 0; d < dim; d++ {
				v := main.LoadF64(inAddr + mem.Addr((c*dim+d)*8))
				main.StoreF64(centroids+mem.Addr((c*dim+d)*8), v)
			}
			main.Branch("kmeans.seed", c+1 < clusters)
		}

		for iter := 0; iter < kmeansIters; iter++ {
			// Zero the accumulators.
			for i := 0; i < clusters*dim; i++ {
				main.StoreF64(sums+mem.Addr(i*8), 0)
			}
			for c := 0; c < clusters; c++ {
				main.Store64(counts+mem.Addr(c*8), 0)
			}
			// Fresh worker threads every iteration (the Phoenix
			// pattern): each computes assignments for its chunk.
			spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
				lo, hi := chunk(points, cfg.Threads, idx)
				// Load the centroid table once per thread.
				cent := make([]float64, clusters*dim)
				for i := range cent {
					cent[i] = w.LoadF64(centroids + mem.Addr(i*8))
				}
				localSum := make([]float64, clusters*dim)
				localCnt := make([]uint64, clusters)
				for p := lo; p < hi; p++ {
					var pt [dim]float64
					for d := 0; d < dim; d++ {
						pt[d] = w.LoadF64(inAddr + mem.Addr((p*dim+d)*8))
					}
					best, bestD := 0, math.MaxFloat64
					for c := 0; c < clusters; c++ {
						var dist float64
						for d := 0; d < dim; d++ {
							diff := pt[d] - cent[c*dim+d]
							dist += diff * diff
						}
						if dist < bestD {
							bestD, best = dist, c
						}
					}
					w.Compute(uint64(clusters * dim * 3)) // distance math
					w.Branch("kmeans.assign", best%2 == 0)
					for d := 0; d < dim; d++ {
						localSum[best*dim+d] += pt[d]
					}
					localCnt[best]++
				}
				accum.Lock(w)
				for c := 0; c < clusters; c++ {
					if localCnt[c] == 0 {
						continue
					}
					for d := 0; d < dim; d++ {
						slot := sums + mem.Addr((c*dim+d)*8)
						w.StoreF64(slot, w.LoadF64(slot)+localSum[c*dim+d])
					}
					cslot := counts + mem.Addr(c*8)
					w.Store64(cslot, w.Load64(cslot)+localCnt[c])
				}
				accum.Unlock(w)
			})
			// Recompute centroids.
			moved = 0
			for c := 0; c < clusters; c++ {
				n := main.Load64(counts + mem.Addr(c*8))
				if main.Branch("kmeans.empty", n == 0) {
					continue
				}
				for d := 0; d < dim; d++ {
					slot := centroids + mem.Addr((c*dim+d)*8)
					old := main.LoadF64(slot)
					mean := main.LoadF64(sums+mem.Addr((c*dim+d)*8)) / float64(n)
					moved += math.Abs(mean - old)
					main.StoreF64(slot, mean)
				}
				main.Compute(uint64(dim * 4))
			}
			main.Branch("kmeans.converged", moved < 1e-3)
		}
	})
	if err != nil {
		return err
	}
	if math.IsNaN(moved) {
		return fmt.Errorf("kmeans: centroid movement is NaN")
	}
	return nil
}
