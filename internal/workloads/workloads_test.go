package workloads

import (
	"testing"

	"github.com/repro/inspector/internal/threading"
)

func TestRegistryComplete(t *testing.T) {
	// The twelve rows of Table 7.
	want := []string{
		"blackscholes", "canneal", "histogram", "kmeans",
		"linear_regression", "matrix_multiply", "pca", "reverse_index",
		"streamcluster", "string_match", "swaptions", "word_count",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %d workloads, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("workload %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGet(t *testing.T) {
	w, err := Get("histogram")
	if err != nil || w.Name() != "histogram" {
		t.Errorf("Get(histogram) = %v, %v", w, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload found")
	}
}

func TestSizeStringsAndScale(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" || Size(0).String() != "unknown" {
		t.Error("size strings")
	}
	if Small.scale() != 1 || Medium.scale() != 2 || Large.scale() != 4 {
		t.Error("size scales")
	}
}

func TestChunkCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 101} {
		for _, threads := range []int{1, 2, 3, 16} {
			covered := 0
			last := 0
			for i := 0; i < threads; i++ {
				lo, hi := chunk(n, threads, i)
				if lo < last {
					t.Errorf("n=%d t=%d: chunk %d overlaps", n, threads, i)
				}
				covered += hi - lo
				last = hi
			}
			if covered != n {
				t.Errorf("n=%d t=%d: covered %d", n, threads, covered)
			}
		}
	}
}

// runWorkload executes one workload in the given mode at small size.
func runWorkload(t *testing.T, w Workload, mode threading.Mode, threads int) *threading.Runtime {
	t.Helper()
	cfg := Config{Size: Small, Threads: threads, Seed: 42}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    w.Name(),
		Mode:       mode,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(rt, cfg); err != nil {
		t.Fatalf("%s [%v]: %v", w.Name(), mode, err)
	}
	return rt
}

// TestAllWorkloadsNative runs every benchmark natively: the self-checks
// validate the computation over the shared-memory substrate.
func TestAllWorkloadsNative(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			runWorkload(t, w, threading.ModeNative, 4)
		})
	}
}

// TestAllWorkloadsInspector runs every benchmark under the full stack and
// validates the recorded CPG.
func TestAllWorkloadsInspector(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			rt := runWorkload(t, w, threading.ModeInspector, 4)
			if rt.Graph().NumSubs() == 0 {
				t.Error("no sub-computations recorded")
			}
			if err := rt.Graph().Analyze().Verify(); err != nil {
				t.Errorf("CPG verify: %v", err)
			}
		})
	}
}

// TestAllWorkloadTracesDecode checks every app's PT stream reconstructs.
func TestAllWorkloadTracesDecode(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			rt := runWorkload(t, w, threading.ModeInspector, 2)
			counts, err := rt.DecodeTraces()
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			var total int
			for _, n := range counts {
				total += n
			}
			if total == 0 {
				t.Error("no branch events decoded")
			}
		})
	}
}

// TestWorkloadsDeterministicInput checks input generation is seed-stable:
// two native runs with the same seed must touch identical page counts.
func TestWorkloadsDeterministicInput(t *testing.T) {
	w, err := Get("histogram")
	if err != nil {
		t.Fatal(err)
	}
	r1 := runWorkload(t, w, threading.ModeInspector, 2)
	r2 := runWorkload(t, w, threading.ModeInspector, 2)
	if r1.Graph().NumSubs() != r2.Graph().NumSubs() {
		t.Errorf("sub counts differ across identical runs: %d vs %d",
			r1.Graph().NumSubs(), r2.Graph().NumSubs())
	}
}

// TestKmeansSpawnsManyProcesses verifies the per-iteration spawn pattern
// that the paper blames for kmeans's overhead.
func TestKmeansSpawnsManyProcesses(t *testing.T) {
	w, err := Get("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Size: Small, Threads: 4, Seed: 1}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    "kmeans",
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(rt, cfg); err != nil {
		t.Fatal(err)
	}
	// 26 iterations x 3 spawned workers (+ main) > 70 processes.
	g := rt.Graph()
	if g.NumSubs() < 70 {
		t.Errorf("kmeans recorded %d subs; expected per-iteration spawning", g.NumSubs())
	}
}
