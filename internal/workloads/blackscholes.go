package workloads

import (
	"fmt"
	"math"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// blackscholes is the PARSEC option-pricing kernel: embarrassingly
// parallel, compute-dominated, one conditional branch per option (call
// vs put). Paper parameters: "16 in_64K.txt prices.txt" — 64K options.
// The paper measures low page-fault pressure (2.49E4 faults) and mostly
// PT-dominated overhead (~1.3x).
type blackscholes struct{}

func init() { register(blackscholes{}) }

// Name implements Workload.
func (blackscholes) Name() string { return "blackscholes" }

// MaxThreads implements Workload.
func (blackscholes) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// optWords is the per-option record size in 8-byte words:
// S, K, r, v, T, isCall.
const optWords = 6

// Run implements Workload.
func (blackscholes) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	n := 32000 * cfg.Size.scale()
	r := rng(cfg.Seed)

	// Input: option parameter table, as the mmap'd prices file.
	in := make([]byte, 0, n*optWords*8)
	for i := 0; i < n; i++ {
		s := 20 + 80*r.Float64()
		k := 20 + 80*r.Float64()
		rate := 0.01 + 0.05*r.Float64()
		vol := 0.1 + 0.5*r.Float64()
		tm := 0.25 + 2*r.Float64()
		call := float64(i % 2)
		for _, v := range []float64{s, k, rate, vol, tm, call} {
			in = appendF64(in, v)
		}
	}
	inAddr, err := rt.MapInput("in_64K.txt", in)
	if err != nil {
		return err
	}

	var out mem.Addr
	var priced uint64
	var mu = rt.NewMutex("result")
	_, err = runMain(rt, func(main *threading.Thread) {
		out = main.Malloc(n * 8)
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			lo, hi := chunk(n, cfg.Threads, idx)
			local := uint64(0)
			for i := lo; i < hi; i++ {
				base := inAddr + mem.Addr(i*optWords*8)
				s := w.LoadF64(base)
				k := w.LoadF64(base + 8)
				rate := w.LoadF64(base + 16)
				vol := w.LoadF64(base + 24)
				tm := w.LoadF64(base + 32)
				call := w.LoadF64(base + 40)

				// CNDF-based Black-Scholes; the branch on option type is
				// the kernel's one data-dependent conditional.
				d1 := (math.Log(s/k) + (rate+vol*vol/2)*tm) / (vol * math.Sqrt(tm))
				d2 := d1 - vol*math.Sqrt(tm)
				w.Branch("bs.cndf", d1 > 0) // CNDF's sign branch
				price := s*cndf(d1) - k*math.Exp(-rate*tm)*cndf(d2)
				w.Compute(1200) // the FP pipeline work of the closed form
				if w.Branch("bs.otype", call > 0.5) {
					// Put via parity.
					price = price - s + k*math.Exp(-rate*tm)
					w.Compute(60)
				}
				w.StoreF64(out+mem.Addr(i*8), price)
				local++
				w.Branch("bs.loop", i+1 < hi)
			}
			mu.Lock(w)
			priced += local // Go-side tally; shared-memory result is `out`
			mu.Unlock(w)
		})
	})
	if err != nil {
		return err
	}
	if priced != uint64(n) {
		return fmt.Errorf("blackscholes: priced %d of %d options", priced, n)
	}
	return nil
}

// cndf is the cumulative normal distribution (Abramowitz-Stegun).
func cndf(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	k := 1 / (1 + 0.2316419*x)
	p := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-x*x/2)*
		k*(0.319381530+k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	if neg {
		return 1 - p
	}
	return p
}

// appendF64 appends a little-endian float64.
func appendF64(b []byte, v float64) []byte {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b = append(b, byte(bits>>(8*i)))
	}
	return b
}

// runMain adapts rt.Run to error-return style shared by the workloads.
func runMain(rt *threading.Runtime, fn func(*threading.Thread)) (*threading.Report, error) {
	return rt.Run(fn)
}
