package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// matrixmultiply is the Phoenix dense matrix-multiply kernel (paper
// parameters "2000 2000", scaled). Threads own row blocks of C; reads of
// A are sequential, reads of B stride across pages, writes land in the
// thread's own C rows. Low branch rate (Table 9 shows its 4.05E8
// branches/sec as the suite's lowest) because the inner loop is pure FP.
type matrixmultiply struct{}

func init() { register(matrixmultiply{}) }

// Name implements Workload.
func (matrixmultiply) Name() string { return "matrix_multiply" }

// MaxThreads implements Workload.
func (matrixmultiply) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// Run implements Workload.
func (matrixmultiply) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	n := 128 * cfg.Size.scale() // matrix dimension (compute charged at the paper's 2000x2000 density)
	r := rng(cfg.Seed)

	// A and B arrive as the mmap'd input.
	in := make([]byte, 0, 2*n*n*8)
	for i := 0; i < 2*n*n; i++ {
		in = appendF64(in, float64(r.Intn(8)))
	}
	aAddr, err := rt.MapInput("matrices.dat", in)
	if err != nil {
		return err
	}
	bAddr := aAddr + mem.Addr(n*n*8)

	var cAddr mem.Addr
	var trace float64

	_, err = runMain(rt, func(main *threading.Thread) {
		cAddr = main.Malloc(n * n * 8)
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			lo, hi := chunk(n, cfg.Threads, idx)
			row := make([]float64, n)
			col := make([]float64, n)
			for i := lo; i < hi; i++ {
				// Load row i of A.
				for k := 0; k < n; k++ {
					row[k] = w.LoadF64(aAddr + mem.Addr((i*n+k)*8))
				}
				for j := 0; j < n; j++ {
					// Sample B's column through tracked memory every
					// 8th element; the rest rides the same pages.
					var sum float64
					for k := 0; k < n; k++ {
						if k%32 == 0 {
							col[k] = w.LoadF64(bAddr + mem.Addr((k*n+j)*8))
						}
						sum += row[k] * col[k&^31]
					}
					// Charge the inner product at the paper's n=2000 density:
					// the simulated matrix is smaller, but each output cell
					// stands for the full-scale FMA chain.
					w.Compute(4000)
					w.StoreF64(cAddr+mem.Addr((i*n+j)*8), sum)
					w.Branch("mm.col", j+1 < n)
				}
				w.Branch("mm.row", i+1 < hi)
			}
		})
		for i := 0; i < n; i++ {
			trace += main.LoadF64(cAddr + mem.Addr((i*n+i)*8))
		}
	})
	if err != nil {
		return err
	}
	if trace <= 0 {
		return fmt.Errorf("matrix_multiply: implausible trace %f", trace)
	}
	return nil
}
