package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// wordcount is the Phoenix kernel that counts word frequencies in a text
// file: a branchy tokenizer over the mmap'd input, thread-local counting,
// and a merge phase into a shared hash table under striped locks with an
// allocation per distinct word per thread. Table 7 shows the suite's
// highest fault rate per second (54.34E4): the merge writes hash-table
// and freshly-allocated node pages from every thread.
type wordcount struct{}

func init() { register(wordcount{}) }

// Name implements Workload.
func (wordcount) Name() string { return "word_count" }

// MaxThreads implements Workload.
func (wordcount) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// wcBuckets is the shared hash-table size.
const wcBuckets = 1024

// Run implements Workload.
func (wordcount) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	words := 100000 * cfg.Size.scale()
	vocab := 800
	r := rng(cfg.Seed)

	// Text: space-separated words of varying length from a skewed
	// vocabulary.
	var in []byte
	for i := 0; i < words; i++ {
		id := r.Intn(vocab-1)*r.Intn(vocab-1)/vocab + 1
		word := fmt.Sprintf("w%04d", id)
		if id%7 == 0 {
			word += "longsuffix"
		}
		in = append(in, word...)
		in = append(in, ' ')
	}
	inAddr, err := rt.MapInput("word_100MB.txt", in)
	if err != nil {
		return err
	}

	var table mem.Addr // wcBuckets x u64 counts, shared
	const stripes = 8
	locks := make([]*threading.Mutex, stripes)
	for i := range locks {
		locks[i] = rt.NewMutex(fmt.Sprintf("stripe%d", i))
	}
	var counted uint64

	_, err = runMain(rt, func(main *threading.Thread) {
		table = main.Malloc(wcBuckets * 8)
		n := len(in)
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			lo, hi := chunk(n, cfg.Threads, idx)
			// Scan phase: tokenize the chunk, counting locally.
			local := make(map[uint64]uint64)
			var hash uint64
			inWord := false
			for off := lo; off < hi; off += 8 {
				wd := w.Load64(inAddr + mem.Addr(off))
				nb := hi - off
				if nb > 8 {
					nb = 8
				}
				for b := 0; b < nb; b++ {
					ch := byte(wd >> (8 * b))
					if ch == ' ' {
						if inWord {
							local[hash%wcBuckets]++
							hash = 0
							inWord = false
						}
					} else {
						hash = hash*31 + uint64(ch)
						inWord = true
					}
				}
				w.Compute(uint64(nb) * 16) // per-byte tokenizing + hashing
				w.Branch("wc.scan", off+8 < hi)
			}
			// Merge phase: one pass per stripe, allocating a key node
			// per distinct bucket (the Phoenix keyval allocations) and
			// bumping the shared counts.
			for s := 0; s < stripes; s++ {
				lk := locks[s]
				lk.Lock(w)
				for bkt, cnt := range local {
					if int(bkt)%stripes != s {
						continue
					}
					node := w.Malloc(16) // key node for this thread's entry
					w.Store64(node, bkt)
					slot := table + mem.Addr(bkt*8)
					w.Store64(slot, w.Load64(slot)+cnt)
					w.Branch("wc.merge", true)
				}
				lk.Unlock(w)
			}
		})
		// Self-check: table mass equals words counted (chunk-boundary
		// words may split; allow slack).
		var total uint64
		for b := 0; b < wcBuckets; b++ {
			total += main.Load64(table + mem.Addr(b*8))
			if b%128 == 0 {
				main.Branch("wc.check", b+128 < wcBuckets)
			}
		}
		counted = total
	})
	if err != nil {
		return err
	}
	slack := uint64(cfg.Threads * 2)
	if counted+slack < uint64(words) || counted > uint64(words)+slack {
		return fmt.Errorf("word_count: counted %d words, want ~%d", counted, words)
	}
	return nil
}
