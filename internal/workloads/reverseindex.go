package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// reverseindex is the Phoenix kernel that builds a link reverse-index
// over a tree of HTML files. Its signature behaviour is "a lot of small
// memory allocations across threads" (§VII-A): every extracted link
// allocates an index node through the wrapped allocator, whose header
// writes land on shared allocator pages — the segmentation-fault churn
// that puts reverse_index among the paper's three outliers, dominated by
// the threading library rather than PT.
type reverseindex struct{}

func init() { register(reverseindex{}) }

// Name implements Workload.
func (reverseindex) Name() string { return "reverse_index" }

// MaxThreads implements Workload.
func (reverseindex) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// pendingLink is a parsed link awaiting batched insertion.
type pendingLink struct {
	node   mem.Addr
	bucket int
}

// Run implements Workload.
func (reverseindex) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	files := 120 * cfg.Size.scale()
	linksPerFile := 24
	const buckets = 64
	r := rng(cfg.Seed)

	// Input: concatenated pseudo-HTML files; each link is a fixed-width
	// record naming a target URL id.
	fileBytes := linksPerFile * 16
	in := make([]byte, 0, files*fileBytes)
	for f := 0; f < files; f++ {
		for l := 0; l < linksPerFile; l++ {
			url := uint64(r.Intn(911))
			rec := fmt.Sprintf("<a href=%07d>", url)
			in = append(in, rec[:16]...)
		}
	}
	inAddr, err := rt.MapInput("datafiles", in)
	if err != nil {
		return err
	}

	var bucketHeads mem.Addr
	locks := make([]*threading.Mutex, 8)
	for i := range locks {
		locks[i] = rt.NewMutex(fmt.Sprintf("bucket%d", i))
	}
	var indexed uint64
	tally := rt.NewMutex("tally")

	_, err = runMain(rt, func(main *threading.Thread) {
		bucketHeads = main.Malloc(buckets * 8)
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			lo, hi := chunk(files, cfg.Threads, idx)
			local := uint64(0)
			var pending []pendingLink
			for f := lo; f < hi; f++ {
				base := inAddr + mem.Addr(f*fileBytes)
				for l := 0; l < linksPerFile; l++ {
					rec := base + mem.Addr(l*16)
					// Parse the record: a couple of loads plus the
					// branchy scanning the parser does per character.
					w0 := w.Load64(rec)
					w1 := w.Load64(rec + 8)
					url := (w0 ^ w1) % 911
					w.Compute(160) // per-char tokenizing
					w.Branch("ridx.islink", true)
					// One small allocation per link: the node stores
					// (url, file, next) and is threaded onto a shared
					// bucket list. Insertions batch two links per lock
					// acquisition, as the original buffers per-file.
					node := w.Malloc(24)
					w.Store64(node, url)
					w.Store64(node+8, uint64(f))
					b := int(url % buckets)
					pending = append(pending, pendingLink{node: node, bucket: b})
					if len(pending) == 2 || l == linksPerFile-1 {
						lk := locks[pending[0].bucket%len(locks)]
						lk.Lock(w)
						for _, pl := range pending {
							head := bucketHeads + mem.Addr(pl.bucket*8)
							w.Store64(pl.node+16, w.Load64(head))
							w.Store64(head, uint64(pl.node))
						}
						lk.Unlock(w)
						pending = pending[:0]
					}
					local++
					w.Branch("ridx.links", l+1 < linksPerFile)
				}
				w.Branch("ridx.files", f+1 < hi)
			}
			tally.Lock(w)
			indexed += local
			tally.Unlock(w)
		})
	})
	if err != nil {
		return err
	}
	if indexed != uint64(files*linksPerFile) {
		return fmt.Errorf("reverse_index: indexed %d links, want %d", indexed, files*linksPerFile)
	}
	return nil
}
