package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// stringmatch is the Phoenix kernel that checks a key file against an
// encrypted dictionary: per-byte comparisons whose outcomes depend on
// the data, producing the least-compressible branch stream in the suite
// (Table 9 shows string_match's lz4 ratio at 6x, the minimum). Reads
// dominate; writes are a single match counter per thread.
type stringmatch struct{}

func init() { register(stringmatch{}) }

// Name implements Workload.
func (stringmatch) Name() string { return "string_match" }

// MaxThreads implements Workload.
func (stringmatch) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// Run implements Workload.
func (stringmatch) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	keys := 30000 * cfg.Size.scale()
	const keyLen = 16
	dict := []string{"key_abcdefghijk1", "key_lmnopqrstuv2", "key_wxyzabcdefg3", "key_hijklmnopqr4"}
	r := rng(cfg.Seed)

	in := make([]byte, 0, keys*keyLen)
	planted := 0
	for i := 0; i < keys; i++ {
		if r.Intn(64) == 0 {
			in = append(in, dict[r.Intn(len(dict))]...)
			planted++
		} else {
			for j := 0; j < keyLen; j++ {
				in = append(in, byte('a'+r.Intn(26)))
			}
		}
	}
	inAddr, err := rt.MapInput("key_file_500MB.txt", in)
	if err != nil {
		return err
	}

	var matches uint64
	tally := rt.NewMutex("matches")

	_, err = runMain(rt, func(main *threading.Thread) {
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			lo, hi := chunk(keys, cfg.Threads, idx)
			local := uint64(0)
			for k := lo; k < hi; k++ {
				base := inAddr + mem.Addr(k*keyLen)
				lo64 := w.Load64(base)
				hi64 := w.Load64(base + 8)
				w.Compute(500) // the "encrypt" hash of the key
				for _, d := range dict {
					// Byte-wise compare with early exit: each byte is
					// a data-dependent branch (random on mismatching
					// keys — the incompressible TNT source).
					match := true
					for b := 0; b < keyLen; b++ {
						var got byte
						if b < 8 {
							got = byte(lo64 >> (8 * b))
						} else {
							got = byte(hi64 >> (8 * (b - 8)))
						}
						if !w.Branch("sm.cmp", got == d[b]) {
							match = false
							break
						}
					}
					if w.Branch("sm.match", match) {
						local++
						break
					}
				}
				w.Branch("sm.keys", k+1 < hi)
			}
			tally.Lock(w)
			matches += local
			tally.Unlock(w)
		})
	})
	if err != nil {
		return err
	}
	if matches != uint64(planted) {
		return fmt.Errorf("string_match: found %d keys, planted %d", matches, planted)
	}
	return nil
}
