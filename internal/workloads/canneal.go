package workloads

import (
	"fmt"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/threading"
)

// canneal is the PARSEC simulated-annealing netlist placement kernel.
// Threads repeatedly swap random element positions under a lock, touching
// two scattered heap pages per swap. This is the paper's worst case
// (Table 7: 2.11E6 faults; Figure 5: far beyond the 8x axis): every
// lock/unlock pair bounds a sub-computation whose pages must be
// re-protected and diffed, so the scattered writes translate directly
// into fault and commit storms in the threading library.
type canneal struct{}

func init() { register(canneal{}) }

// Name implements Workload.
func (canneal) Name() string { return "canneal" }

// MaxThreads implements Workload.
func (canneal) MaxThreads(cfg Config) int { return cfg.Threads + 1 }

// Run implements Workload.
func (canneal) Run(rt *threading.Runtime, cfg Config) error {
	cfg = cfg.normalize()
	elements := 12000 * cfg.Size.scale()
	swapsPerThread := 600 * cfg.Size.scale()
	r := rng(cfg.Seed)

	// The netlist: per-element (x, y) position, 16 bytes each, spread
	// over many pages.
	var positions mem.Addr
	lock := rt.NewMutex("netlist")
	var totalSwaps uint64
	tally := rt.NewMutex("tally")

	_, err := runMain(rt, func(main *threading.Thread) {
		positions = main.Malloc(elements * 16)
		// Initial placement (sequential, one pass).
		for i := 0; i < elements; i += 8 {
			main.Store64(positions+mem.Addr(i*16), uint64(i%997))
			main.Branch("canneal.init", i+8 < elements)
		}
		// Per-thread deterministic swap streams.
		seeds := make([]int64, cfg.Threads)
		for i := range seeds {
			seeds[i] = cfg.Seed + int64(i)*7919
		}
		_ = r
		spawnJoin(main, cfg.Threads, func(w *threading.Thread, idx int) {
			wr := rng(seeds[idx])
			local := uint64(0)
			temperature := 100.0
			for s := 0; s < swapsPerThread; s++ {
				i := wr.Intn(elements)
				j := wr.Intn(elements)
				// Routing-cost delta evaluation runs outside the critical
				// section (the real kernel evaluates speculatively).
				w.Compute(1200)
				lock.Lock(w)
				ai := positions + mem.Addr(i*16)
				aj := positions + mem.Addr(j*16)
				xi := w.Load64(ai)
				xj := w.Load64(aj)
				// Accept/reject on the annealing schedule: a
				// data-dependent branch per swap.
				delta := int64(xi) - int64(xj)
				accept := delta%3 != 0 || temperature > 1.0
				if w.Branch("canneal.accept", accept) {
					w.Store64(ai, xj)
					w.Store64(aj, xi)
					local++
				}
				lock.Unlock(w)
				temperature *= 0.999
				w.Branch("canneal.swaps", s+1 < swapsPerThread)
			}
			tally.Lock(w)
			totalSwaps += local
			tally.Unlock(w)
		})
	})
	if err != nil {
		return err
	}
	if totalSwaps == 0 {
		return fmt.Errorf("canneal: no swaps accepted")
	}
	return nil
}
