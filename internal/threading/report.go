package threading

import (
	"errors"
	"fmt"
	"io"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/pt"
	"github.com/repro/inspector/internal/vtime"
)

// Report summarizes one run with every statistic the evaluation section
// reports (Figures 5-9).
type Report struct {
	App     string
	Mode    Mode
	Threads int // thread slots used

	// Time is the end-to-end virtual runtime (critical path) — the
	// paper's "time" metric.
	Time vtime.Cycles
	// Work is the summed CPU time over all threads — the paper's "work"
	// metric (cpuacct).
	Work vtime.Cycles

	// Per-category cycle totals (Figure 6's breakdown).
	AppCycles       vtime.Cycles
	ThreadingCycles vtime.Cycles
	PTCycles        vtime.Cycles

	// Instruction counters.
	Loads, Stores, Branches, ALU uint64

	// Memory-tracking statistics (Table 7).
	ReadFaults, WriteFaults uint64
	TwinCopies              uint64
	CommittedPages          uint64
	CommittedBytes          uint64
	DiffedBytes             uint64

	// Trace statistics (Table 9).
	TraceBytes     uint64
	LostTraceBytes uint64
	PT             pt.Stats

	// ProcessesSpawned counts clone() calls (kmeans's nemesis).
	ProcessesSpawned uint64
	// SubComputations is the CPG vertex count.
	SubComputations int
}

// Faults returns total page faults.
func (r *Report) Faults() uint64 { return r.ReadFaults + r.WriteFaults }

// FaultsPerSec returns the fault rate over the run (Table 7's right
// column).
func (r *Report) FaultsPerSec() float64 {
	secs := r.Time.Seconds()
	if secs == 0 {
		return 0
	}
	return float64(r.Faults()) / secs
}

// TraceBandwidthMBps returns provenance-log bandwidth in MB/s (Table 9).
func (r *Report) TraceBandwidthMBps() float64 {
	secs := r.Time.Seconds()
	if secs == 0 {
		return 0
	}
	return float64(r.TraceBytes) / 1e6 / secs
}

// BranchesPerSec returns retired branch rate (Table 9's last column).
func (r *Report) BranchesPerSec() float64 {
	secs := r.Time.Seconds()
	if secs == 0 {
		return 0
	}
	return float64(r.Branches) / secs
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s[%s]: time=%v work=%v faults=%d trace=%dB subs=%d",
		r.App, r.Mode, r.Time, r.Work, r.Faults(), r.TraceBytes, r.SubComputations)
}

// buildReport aggregates all per-thread and per-substrate statistics.
func (rt *Runtime) buildReport(main *Thread) (*Report, error) {
	rep := &Report{
		App:  rt.opts.AppName,
		Mode: rt.opts.Mode,
		Time: main.clk.Now(),
		Work: rt.acct.Work(),
	}
	rt.threadsMu.Lock()
	threads := make([]*Thread, len(rt.threads))
	copy(threads, rt.threads)
	rt.threadsMu.Unlock()
	rep.Threads = len(threads)

	for _, t := range threads {
		rep.AppCycles += t.appCycles
		rep.ThreadingCycles += t.threadingCycles
		rep.PTCycles += t.ptCycles
		rep.Loads += t.loads
		rep.Stores += t.stores
		rep.Branches += t.branches
		rep.ALU += t.alu
		st := t.p.Space.Stats()
		rep.ReadFaults += st.ReadFaults
		rep.WriteFaults += st.WriteFaults
		rep.TwinCopies += st.TwinCopies
		rep.CommittedPages += st.CommittedPages
		rep.CommittedBytes += st.CommittedBytes
		rep.DiffedBytes += st.DiffedBytes
		if t.enc != nil {
			rep.PT.Add(t.enc.Stats())
		}
	}
	rep.TraceBytes = rt.sess.TotalTraceBytes()
	rep.LostTraceBytes = rt.sess.TotalLost()
	rep.ProcessesSpawned = rt.table.Spawned()
	rep.SubComputations = rt.graph.NumSubs()
	rt.ptStats = rep.PT
	return rep, nil
}

// DecodeTraces decodes every process's PT trace against the program image
// and returns per-PID event counts — the `perf script` + decoder-library
// step that turns raw packets back into control flow. It verifies the
// trace is decodable end to end, streaming events through Decoder.Next
// rather than materializing every event in memory.
func (rt *Runtime) DecodeTraces() (map[int32]int, error) {
	out := make(map[int32]int)
	for _, pid := range rt.sess.PIDs() {
		stream, ok := rt.sess.Stream(pid)
		if !ok {
			continue
		}
		d := pt.NewDecoder(rt.img, stream.Trace())
		n := 0
		for {
			_, err := d.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("threading: decode trace pid %d: %w", pid, err)
			}
			n++
		}
		out[pid] = n
	}
	return out, nil
}

// ThreadSubs returns the completed sub-computation count per thread slot,
// a convenience for tests.
func (rt *Runtime) ThreadSubs(slot int) []*core.SubComputation {
	return rt.graph.ThreadSeq(slot)
}

// decodeEvents decodes one raw PT trace against the runtime's image.
func decodeEvents(rt *Runtime, trace []byte) ([]pt.Event, error) {
	return pt.DecodeAll(rt.img, trace)
}
