package threading

import (
	"errors"
	"strings"
	"testing"

	"github.com/repro/inspector/internal/mem"
)

func newRT(t *testing.T, mode Mode) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Options{AppName: "test", Mode: mode, MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestModeString(t *testing.T) {
	if ModeNative.String() != "native" || ModeInspector.String() != "inspector" || Mode(0).String() != "unknown" {
		t.Error("mode strings")
	}
}

func TestRunSingleThread(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	rep, err := rt.Run(func(th *Thread) {
		th.Store64(base, 42)
		if got := th.Load64(base); got != 42 {
			t.Errorf("load = %d", got)
		}
		th.Compute(100)
		th.Branch("main.loop", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time == 0 || rep.Work == 0 {
		t.Error("no time accounted")
	}
	if rep.Loads != 1 || rep.Stores != 1 || rep.Branches != 1 || rep.ALU != 100 {
		t.Errorf("counters: %+v", rep)
	}
	if rep.WriteFaults != 1 {
		t.Errorf("write faults = %d, want 1", rep.WriteFaults)
	}
	// One store then load on the same page: the load must not fault.
	if rep.ReadFaults != 0 {
		t.Errorf("read faults = %d, want 0", rep.ReadFaults)
	}
	if rep.SubComputations != 1 {
		t.Errorf("subs = %d, want 1 (single thread, no sync)", rep.SubComputations)
	}
	if rep.TraceBytes == 0 {
		t.Error("no PT trace produced")
	}
}

func TestRunTwiceFails(t *testing.T) {
	rt := newRT(t, ModeInspector)
	if _, err := rt.Run(func(*Thread) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(*Thread) {}); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestSpawnJoinVisibility(t *testing.T) {
	// RC model: child's writes become visible to the parent after join
	// (join is an acquire of the child's exit release).
	for _, mode := range []Mode{ModeInspector, ModeNative} {
		rt := newRT(t, mode)
		base := rt.GlobalsBase()
		rep, err := rt.Run(func(main *Thread) {
			child := main.Spawn(func(w *Thread) {
				w.Store64(base, 7)
			})
			main.Join(child)
			if got := main.Load64(base); got != 7 {
				t.Errorf("[%v] parent sees %d after join, want 7", mode, got)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Threads != 2 {
			t.Errorf("[%v] threads = %d", mode, rep.Threads)
		}
	}
}

func TestSpawnChildSeesParentWrites(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	_, err := rt.Run(func(main *Thread) {
		main.Store64(base, 99)
		child := main.Spawn(func(w *Thread) {
			if got := w.Load64(base); got != 99 {
				t.Errorf("child sees %d, want 99 (spawn is a release)", got)
			}
		})
		main.Join(child)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMutexTransfersData(t *testing.T) {
	// The Figure 1 pattern as an actual concurrent execution.
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	m := rt.NewMutex("m")
	_, err := rt.Run(func(main *Thread) {
		m.Lock(main)
		main.Store64(base, 1)
		m.Unlock(main)
		child := main.Spawn(func(w *Thread) {
			m.Lock(w)
			v := w.Load64(base)
			w.Store64(base+8, v*2)
			m.Unlock(w)
		})
		main.Join(child)
		m.Lock(main)
		if got := main.Load64(base + 8); got != 2 {
			t.Errorf("after child: %d, want 2", got)
		}
		m.Unlock(main)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Graph must be a valid CPG.
	if verr := rt.Graph().Analyze().Verify(); verr != nil {
		t.Errorf("CPG verify: %v", verr)
	}
}

func TestCPGStructureForMutexHandoff(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	m := rt.NewMutex("m")
	_, err := rt.Run(func(main *Thread) {
		child := main.Spawn(func(w *Thread) {
			m.Lock(w)
			w.Store64(base, 5)
			m.Unlock(w)
		})
		main.Join(child)
		m.Lock(main)
		_ = main.Load64(base)
		m.Unlock(main)
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	// There must exist a data edge on the page of `base` from a child
	// sub-computation (slot 1) to a main sub-computation (slot 0).
	page := uint64(base) / uint64(rt.PageSize())
	var found bool
	for _, e := range g.DataEdges() {
		if e.From.Thread == 1 && e.To.Thread == 0 {
			for _, p := range e.Pages {
				if p == page {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("no data edge child->main for page %d; edges: %+v", page, g.DataEdges())
	}
	// Sync edges must mention the mutex and the join object.
	var sawMutex, sawJoin bool
	for _, e := range g.SyncEdges() {
		if strings.HasPrefix(e.Object, "mutex:") {
			sawMutex = true
		}
		if strings.HasPrefix(e.Object, "join:") {
			sawJoin = true
		}
	}
	if !sawMutex || !sawJoin {
		t.Errorf("sync edges missing mutex(%v)/join(%v): %+v", sawMutex, sawJoin, g.SyncEdges())
	}
}

func TestPTTraceDecodes(t *testing.T) {
	rt := newRT(t, ModeInspector)
	_, err := rt.Run(func(main *Thread) {
		for i := 0; i < 100; i++ {
			main.Branch("main.loop", i < 99)
			main.Compute(10)
		}
		child := main.Spawn(func(w *Thread) {
			for i := 0; i < 50; i++ {
				w.Branch("child.loop", i%2 == 0)
			}
			w.Indirect("child.dispatch")
			w.Branch("child.tail", true)
		})
		main.Join(child)
	})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := rt.DecodeTraces()
	if err != nil {
		t.Fatalf("DecodeTraces: %v", err)
	}
	var total int
	for _, n := range counts {
		total += n
	}
	// 100 main branches + 50+1+1 child events.
	if total != 152 {
		t.Errorf("decoded %d events, want 152 (per-pid: %v)", total, counts)
	}
}

func TestBarrier(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	const n = 4
	bar := rt.NewBarrier("phase", n)
	_, err := rt.Run(func(main *Thread) {
		var workers []*Thread
		for i := 1; i < n; i++ {
			i := i
			workers = append(workers, main.Spawn(func(w *Thread) {
				w.Store64(base+mem.Addr(8*i), uint64(i))
				bar.Wait(w)
				// After the barrier every thread's write is visible.
				for j := 0; j < n; j++ {
					want := uint64(j)
					if got := w.Load64(base + mem.Addr(8*j)); got != want {
						t.Errorf("worker %d sees slot %d = %d, want %d", i, j, got, want)
					}
				}
			}))
		}
		main.Store64(base, 0)
		bar.Wait(main)
		for j := 0; j < n; j++ {
			if got := main.Load64(base + mem.Addr(8*j)); got != uint64(j) {
				t.Errorf("main sees slot %d = %d", j, got)
			}
		}
		for _, w := range workers {
			main.Join(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := rt.Graph().Analyze().Verify(); verr != nil {
		t.Errorf("CPG verify: %v", verr)
	}
}

func TestSemaphore(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	sem := rt.NewSemaphore("items", 0)
	_, err := rt.Run(func(main *Thread) {
		producer := main.Spawn(func(p *Thread) {
			p.Store64(base, 123)
			sem.Post(p)
		})
		sem.Wait(main)
		if got := main.Load64(base); got != 123 {
			t.Errorf("consumer sees %d, want 123 (post is a release)", got)
		}
		main.Join(producer)
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := rt.Graph().Analyze().Verify(); verr != nil {
		t.Errorf("CPG verify: %v", verr)
	}
}

func TestCondVar(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	m := rt.NewMutex("state")
	cv := rt.NewCond("ready", m)
	_, err := rt.Run(func(main *Thread) {
		waiter := main.Spawn(func(w *Thread) {
			m.Lock(w)
			for w.Load64(base) == 0 {
				w.Branch("waiter.check", true)
				cv.Wait(w)
			}
			w.Branch("waiter.check", false)
			if got := w.Load64(base + 8); got != 77 {
				t.Errorf("waiter sees payload %d, want 77", got)
			}
			m.Unlock(w)
		})
		m.Lock(main)
		main.Store64(base+8, 77) // payload
		main.Store64(base, 1)    // flag
		m.Unlock(main)
		cv.Signal(main)
		main.Join(waiter)
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := rt.Graph().Analyze().Verify(); verr != nil {
		t.Errorf("CPG verify: %v", verr)
	}
}

func TestNativeModeHasNoProvenance(t *testing.T) {
	rt := newRT(t, ModeNative)
	base := rt.GlobalsBase()
	rep, err := rt.Run(func(main *Thread) {
		main.Store64(base, 1)
		main.Branch("b", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults() != 0 {
		t.Errorf("native faults = %d", rep.Faults())
	}
	if rep.TraceBytes != 0 {
		t.Errorf("native trace bytes = %d", rep.TraceBytes)
	}
	if rep.SubComputations != 0 {
		t.Errorf("native subs = %d", rep.SubComputations)
	}
	if rep.ThreadingCycles != 0 || rep.PTCycles != 0 {
		t.Errorf("native charged overhead categories: %+v", rep)
	}
}

func TestInspectorOverheadExceedsNative(t *testing.T) {
	run := func(mode Mode) *Report {
		rt := newRT(t, mode)
		base := rt.GlobalsBase()
		m := rt.NewMutex("m")
		rep, err := rt.Run(func(main *Thread) {
			for i := 0; i < 200; i++ {
				m.Lock(main)
				main.Store64(base+mem.Addr((i%64)*int(rt.PageSize())), uint64(i))
				m.Unlock(main)
				main.Branch("loop", i < 199)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	nat := run(ModeNative)
	insp := run(ModeInspector)
	if insp.Time <= nat.Time {
		t.Errorf("inspector time %v not above native %v", insp.Time, nat.Time)
	}
	if insp.ThreadingCycles == 0 || insp.PTCycles == 0 {
		t.Error("overhead categories not populated")
	}
}

func TestMallocTracksAllocatorPages(t *testing.T) {
	rt := newRT(t, ModeInspector)
	rep, err := rt.Run(func(main *Thread) {
		a := main.Malloc(64)
		b := main.Malloc(64)
		if a == b {
			t.Error("allocations alias")
		}
		if a%16 != 0 || b%16 != 0 {
			t.Error("allocations not 16-byte aligned")
		}
		main.Store64(a, 1)
		main.Store64(b, 2)
		if main.Load64(a) != 1 || main.Load64(b) != 2 {
			t.Error("heap data corrupt")
		}
		main.Free(a)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Malloc header writes fault on allocator pages.
	if rep.WriteFaults == 0 {
		t.Error("malloc caused no faults")
	}
}

func TestMapInput(t *testing.T) {
	rt := newRT(t, ModeInspector)
	data := []byte("hello input file")
	addr, err := rt.MapInput("input.txt", data)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(main *Thread) {
		buf := make([]byte, len(data))
		main.Read(addr, buf)
		if string(buf) != string(data) {
			t.Errorf("read %q", buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Input pages must land in the read set (provenance from input).
	subs := rt.ThreadSubs(0)
	if len(subs) == 0 {
		t.Fatal("no subs")
	}
	page := uint64(addr) / uint64(rt.PageSize())
	if !subs[0].ReadSet.Contains(page) {
		t.Errorf("input page %d not in read set %v", page, subs[0].ReadSet.Sorted())
	}
	// An MMAP record for the input must exist.
	var sawMmap bool
	for _, rec := range rt.Session().Records() {
		if rec.Filename == "input.txt" {
			sawMmap = true
		}
	}
	if !sawMmap {
		t.Error("no MMAP record for input")
	}
}

func TestThreadSlotExhaustion(t *testing.T) {
	rt, err := NewRuntime(Options{AppName: "x", Mode: ModeNative, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The spawn panic is recovered by Run and surfaces as an error; the
	// host process must survive.
	_, err = rt.Run(func(main *Thread) {
		c1 := main.Spawn(func(*Thread) {})
		main.Join(c1)
		c2 := main.Spawn(func(*Thread) {}) // slot 2 of 2: must fail
		main.Join(c2)
	})
	if !errors.Is(err, ErrWorkloadPanic) {
		t.Fatalf("Run error = %v, want ErrWorkloadPanic", err)
	}
	if !strings.Contains(err.Error(), ErrTooManyThreads.Error()) {
		t.Errorf("error %q does not name the slot exhaustion", err)
	}
}

func TestSegfaultPanics(t *testing.T) {
	rt := newRT(t, ModeInspector)
	// The simulated SIGSEGV unwinds the workload body; Run recovers it
	// into an error instead of killing the process.
	_, err := rt.Run(func(main *Thread) {
		main.Load64(0xdeadbeef0000)
	})
	if !errors.Is(err, ErrWorkloadPanic) {
		t.Fatalf("Run error = %v, want ErrWorkloadPanic", err)
	}
	if !strings.Contains(err.Error(), "load64") {
		t.Errorf("error %q does not describe the faulting access", err)
	}
}

func TestFalseSharingPenalizesNativeOnly(t *testing.T) {
	run := func(mode Mode) *Report {
		rt := newRT(t, mode)
		base := rt.GlobalsBase()
		rep, err := rt.Run(func(main *Thread) {
			// Two threads hammer adjacent words in one cache line.
			c := main.Spawn(func(w *Thread) {
				for i := 0; i < 500; i++ {
					w.Store64(base+8, uint64(i))
				}
			})
			for i := 0; i < 500; i++ {
				main.Store64(base, uint64(i))
			}
			main.Join(c)
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	_ = run(ModeNative)
	insp := run(ModeInspector)
	// The assertion that matters for Figure 5's linear_regression shape:
	// INSPECTOR's isolated spaces never charge the false-sharing penalty.
	// (Charging shows up inside AppCycles, so compare store cost bounds.)
	storeCost := uint64(insp.Stores) * uint64(vtimeDefaultStore)
	if uint64(insp.AppCycles) < storeCost {
		t.Errorf("inspector app cycles %d below pure store cost %d", insp.AppCycles, storeCost)
	}
}

// vtimeDefaultStore mirrors vtime.Default().Store for the bound check.
const vtimeDefaultStore = 4

func TestWorkExceedsTimeWithParallelism(t *testing.T) {
	rt := newRT(t, ModeNative)
	rep, err := rt.Run(func(main *Thread) {
		var ws []*Thread
		for i := 0; i < 4; i++ {
			ws = append(ws, main.Spawn(func(w *Thread) {
				w.Compute(1_000_000)
			}))
		}
		for _, w := range ws {
			main.Join(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Four threads of equal work: total work must be well above the
	// critical path.
	if rep.Work < rep.Time*2 {
		t.Errorf("work %v vs time %v: parallelism not reflected", rep.Work, rep.Time)
	}
	// And time must cover at least one thread's compute.
	if rep.Time < 1_000_000 {
		t.Errorf("time %v below single thread's work", rep.Time)
	}
}

func TestCgroupAccountsWork(t *testing.T) {
	rt := newRT(t, ModeInspector)
	rep, err := rt.Run(func(main *Thread) {
		main.Compute(1000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Cgroup().CPUUsage(); got != rep.Work {
		t.Errorf("cgroup usage %v != work %v", got, rep.Work)
	}
}

func TestSnapshotHookFires(t *testing.T) {
	rt := newRT(t, ModeInspector)
	var fired int
	rt.RegisterSnapshotHook(func() { fired++ })
	m := rt.NewMutex("m")
	_, err := rt.Run(func(main *Thread) {
		m.Lock(main)
		m.Unlock(main)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Error("snapshot hook never fired")
	}
	if rt.SyncSeq() == 0 {
		t.Error("sync seq not counted")
	}
}
