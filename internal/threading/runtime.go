// Package threading implements the INSPECTOR threading library (§V-A):
// the pthreads-replacement runtime that executes a multithreaded workload
// while transparently building its Concurrent Provenance Graph.
//
// A Runtime owns the shared substrates of one execution:
//
//   - shared memory backings for globals, heap and mapped input, with each
//     "thread" running as a simulated process holding a private
//     copy-on-write view (threads-as-processes, clone());
//   - a cgroup that every forked process inherits, used both to scope the
//     perf/PT trace session and for cpuacct-style work accounting;
//   - one perf session with a per-process AUX ring receiving each
//     process's Intel-PT-style branch trace;
//   - the CPG under construction (internal/core) and the program image
//     the PT decoder will need (internal/image);
//   - the deterministic virtual-time cost model standing in for the
//     paper's Xeon D-1540 wall clock.
//
// The same Runtime also runs workloads in native mode — the pthreads
// baseline of the evaluation — where all tracking is disabled, threads
// share memory directly (paying false-sharing penalties INSPECTOR's
// isolation avoids), and only the base costs are charged.
package threading

import (
	"errors"
	"fmt"
	"sync"

	"github.com/repro/inspector/internal/cgroup"
	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/image"
	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/perf"
	"github.com/repro/inspector/internal/proc"
	"github.com/repro/inspector/internal/pt"
	"github.com/repro/inspector/internal/vtime"
)

// Mode selects the execution mode.
type Mode int

// Execution modes.
const (
	// ModeNative is the pthreads baseline: no provenance, no isolation.
	ModeNative Mode = iota + 1
	// ModeInspector runs under the full INSPECTOR stack.
	ModeInspector
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeInspector:
		return "inspector"
	default:
		return "unknown"
	}
}

// Options configure a Runtime.
type Options struct {
	// AppName names the application (perf COMM records, reports).
	AppName string
	// Mode selects native or INSPECTOR execution. Default ModeInspector.
	Mode Mode
	// MaxThreads bounds the number of thread slots (vector clock width).
	// Default 64; kmeans-style workloads that spawn hundreds of threads
	// must raise it, and pay proportionally larger clock merges — the
	// effect behind kmeans's Figure 5 overhead.
	MaxThreads int
	// PageSize is the tracking granularity. Default 4096.
	PageSize int
	// Model is the virtual-time cost model. Zero value selects defaults.
	Model vtime.CostModel
	// AuxSize is the per-process AUX ring size. Default 4 MiB.
	AuxSize int
	// TraceMode selects full-trace or snapshot AUX rings.
	TraceMode perf.Mode
	// AutoDrain drains AUX rings into the trace store (default true via
	// NewRuntime; set DisableAutoDrain to exercise overruns).
	DisableAutoDrain bool
	// PSBPeriod is the PT sync-point interval in bytes (default 4096).
	PSBPeriod int
	// WrapTraceSink, when set, wraps each thread's PT byte sink before
	// the encoder attaches. Fault injection uses it to interpose a lossy
	// sink (internal/faultinject); loss shows up exactly as a real AUX
	// ring overrun would — a partial WriteTrace accept — so every layer
	// above sees injected and genuine loss identically.
	WrapTraceSink func(pt.ByteSink) pt.ByteSink
}

// Runtime is one execution of one workload.
type Runtime struct {
	opts   Options
	model  vtime.CostModel
	layout mem.Layout

	globals  *mem.Backing
	heap     *mem.Backing
	input    *mem.Backing
	backings []*mem.Backing

	img   *image.Image
	graph *core.Graph
	table *proc.Table
	hier  *cgroup.Hierarchy
	cg    *cgroup.Group
	sess  *perf.Session
	acct  vtime.Accounting

	allocMu  sync.Mutex
	heapNext mem.Addr
	inputMu  sync.Mutex
	inputOff mem.Addr

	slotMu   sync.Mutex
	nextSlot int

	threadsMu sync.Mutex
	threads   []*Thread
	wg        sync.WaitGroup

	finished   bool
	ptStats    pt.Stats
	lastReport *Report

	snapMu      sync.Mutex
	snapHooks   []func()
	commitHooks []func(core.SubID)
	syncSeq     uint64

	errMu   sync.Mutex
	runErrs []error
}

// Errors returned by the runtime.
var (
	ErrTooManyThreads = errors.New("threading: thread slots exhausted (raise Options.MaxThreads)")
	ErrFinished       = errors.New("threading: runtime already finished")
	ErrInputTooLarge  = errors.New("threading: input region exhausted")
	// ErrWorkloadPanic tags Run errors caused by a panicking workload
	// body: the run still completes with a partial, gap-marked CPG
	// instead of crashing the host process.
	ErrWorkloadPanic = errors.New("threading: workload panicked")
)

// NewRuntime builds a runtime for the given options.
func NewRuntime(opts Options) (*Runtime, error) {
	if opts.Mode == 0 {
		opts.Mode = ModeInspector
	}
	if opts.MaxThreads <= 0 {
		opts.MaxThreads = 64
	}
	if opts.PageSize <= 0 {
		opts.PageSize = mem.DefaultPageSize
	}
	if opts.AppName == "" {
		opts.AppName = "app"
	}
	model := opts.Model
	if model == (vtime.CostModel{}) {
		model = vtime.Default()
	}
	layout := mem.DefaultLayout()
	globals, err := mem.NewBacking("globals", layout.GlobalsBase, layout.GlobalsSize, opts.PageSize)
	if err != nil {
		return nil, fmt.Errorf("threading: globals region: %w", err)
	}
	heap, err := mem.NewBacking("heap", layout.HeapBase, layout.HeapSize, opts.PageSize)
	if err != nil {
		return nil, fmt.Errorf("threading: heap region: %w", err)
	}
	input, err := mem.NewBacking("input", layout.InputBase, layout.InputSize, opts.PageSize)
	if err != nil {
		return nil, fmt.Errorf("threading: input region: %w", err)
	}
	hier := cgroup.NewHierarchy()
	cg, err := hier.Create("/inspector-" + opts.AppName)
	if err != nil {
		return nil, fmt.Errorf("threading: cgroup: %w", err)
	}
	rt := &Runtime{
		opts:     opts,
		model:    model,
		layout:   layout,
		globals:  globals,
		heap:     heap,
		input:    input,
		backings: []*mem.Backing{globals, heap, input},
		img:      image.New(),
		graph:    core.NewGraph(opts.MaxThreads),
		table:    proc.NewTable(1000),
		hier:     hier,
		cg:       cg,
		heapNext: layout.HeapBase,
		inputOff: layout.InputBase,
	}
	rt.sess = perf.NewSession(perf.SessionOptions{
		Filter:    cg,
		Mode:      opts.TraceMode,
		AuxSize:   opts.AuxSize,
		AutoDrain: !opts.DisableAutoDrain,
		Clock:     func() uint64 { return uint64(rt.acct.MaxNow()) },
	})
	return rt, nil
}

// Mode returns the runtime's execution mode.
func (rt *Runtime) Mode() Mode { return rt.opts.Mode }

// Model returns the cost model in effect.
func (rt *Runtime) Model() vtime.CostModel { return rt.model }

// Graph returns the CPG under construction.
func (rt *Runtime) Graph() *core.Graph { return rt.graph }

// Image returns the synthetic program image.
func (rt *Runtime) Image() *image.Image { return rt.img }

// Session returns the perf trace session.
func (rt *Runtime) Session() *perf.Session { return rt.sess }

// Cgroup returns the runtime's control group.
func (rt *Runtime) Cgroup() *cgroup.Group { return rt.cg }

// PageSize returns the tracking granularity.
func (rt *Runtime) PageSize() int { return rt.opts.PageSize }

// GlobalsBase returns the first address of the globals region, a
// convenient place for workloads to lay out shared variables.
func (rt *Runtime) GlobalsBase() mem.Addr { return rt.layout.GlobalsBase }

// MapInput copies data into the input-mapping region (the simulated
// mmap() of an input file) and returns its base address. The mapping is
// announced to the perf session as an MMAP record, as INSPECTOR's input
// shim does (§V-A "Input support"), so the input pages are attributable
// in the provenance graph.
func (rt *Runtime) MapInput(name string, data []byte) (mem.Addr, error) {
	rt.inputMu.Lock()
	defer rt.inputMu.Unlock()
	base := rt.inputOff
	ps := mem.Addr(rt.opts.PageSize)
	need := (mem.Addr(len(data)) + ps - 1) / ps * ps
	if need == 0 {
		need = ps
	}
	end := uint64(base) + uint64(need)
	if end > uint64(rt.layout.InputBase)+uint64(rt.layout.InputSize) {
		return 0, fmt.Errorf("%w: mapping %s (%d bytes)", ErrInputTooLarge, name, len(data))
	}
	rt.inputOff = base + need
	if _, err := rt.input.WriteAt(base, data, 0); err != nil {
		return 0, fmt.Errorf("threading: map input %s: %w", name, err)
	}
	rt.sess.RecordMMAP(0, uint64(base), uint64(len(data)), name)
	return base, nil
}

// InputBytes returns the total bytes mapped into the input region
// (page-rounded), the x-axis of the Figure 8 input-scaling experiment.
func (rt *Runtime) InputBytes() uint64 {
	rt.inputMu.Lock()
	defer rt.inputMu.Unlock()
	return uint64(rt.inputOff - rt.layout.InputBase)
}

// allocSlot reserves a thread slot.
func (rt *Runtime) allocSlot() (int, error) {
	rt.slotMu.Lock()
	defer rt.slotMu.Unlock()
	if rt.nextSlot >= rt.opts.MaxThreads {
		return 0, ErrTooManyThreads
	}
	s := rt.nextSlot
	rt.nextSlot++
	return s, nil
}

// Run executes main as thread slot 0 and waits for every spawned thread
// to finish, then assembles the report. Run may be called once.
//
// A panicking workload body does not crash the host process: the panic
// is recovered, the interrupted sub-computation is marked as a trace gap,
// and Run returns an error wrapping ErrWorkloadPanic alongside the
// partial report — the graph remains queryable, flagged degraded.
func (rt *Runtime) Run(main func(*Thread)) (*Report, error) {
	if rt.finished {
		return nil, ErrFinished
	}
	slot, err := rt.allocSlot()
	if err != nil {
		return nil, err
	}
	t, err := rt.newThread(nil, slot, rt.opts.AppName)
	if err != nil {
		return nil, err
	}
	rt.runBody(t, main)
	rt.finishThread(t)
	// Wait for any threads the workload spawned but never joined (the
	// process would reap them at exit).
	rt.wg.Wait()
	rt.finished = true
	rep, rerr := rt.buildReport(t)
	rt.lastReport = rep
	return rep, errors.Join(rt.runErr(), rerr)
}

// runBody executes one thread's workload function, converting a panic
// into a recorded error plus a gap on the interrupted sub-computation.
func (rt *Runtime) runBody(t *Thread, fn func(*Thread)) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if t.rec != nil {
			cur := t.rec.Alpha()
			t.rec.MarkGap(core.Gap{FromAlpha: cur, ToAlpha: cur, Kind: core.GapPanic})
		}
		rt.noteErr(fmt.Errorf("%w: thread %d: %v", ErrWorkloadPanic, t.p.Slot, r))
	}()
	fn(t)
}

// finishThread closes a thread, absorbing a teardown panic: either the
// workload body already failed and left the recorder unable to seal
// cleanly, or third-party code on the teardown path (a commit hook on
// the final seal) panicked. Both count as workload panics and mark a
// gap; the join channel always ends up closed, so parents blocked in
// Join are released either way.
func (rt *Runtime) finishThread(t *Thread) {
	defer func() {
		if r := recover(); r != nil {
			if t.rec != nil {
				// The recorder may itself be the broken party here; a
				// failed gap mark must not mask the original panic.
				func() {
					defer func() { _ = recover() }()
					cur := t.rec.Alpha()
					t.rec.MarkGap(core.Gap{FromAlpha: cur, ToAlpha: cur, Kind: core.GapPanic})
				}()
			}
			rt.noteErr(fmt.Errorf("%w: thread %d teardown: %v", ErrWorkloadPanic, t.p.Slot, r))
			select {
			case <-t.joinCh:
			default:
				close(t.joinCh)
			}
		}
	}()
	t.finish()
}

// noteErr records one thread's failure; Run joins them all.
func (rt *Runtime) noteErr(err error) {
	rt.errMu.Lock()
	rt.runErrs = append(rt.runErrs, err)
	rt.errMu.Unlock()
}

// runErr joins the recorded thread failures (nil when none).
func (rt *Runtime) runErr() error {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return errors.Join(rt.runErrs...)
}

// LastReport returns the report of the completed Run (nil before Run
// finishes). Harnesses use it when the workload owns the Run call.
func (rt *Runtime) LastReport() *Report { return rt.lastReport }

// RegisterSnapshotHook adds a callback invoked by the snapshot facility
// at consistent-cut points (used by internal/snapshot).
func (rt *Runtime) RegisterSnapshotHook(fn func()) {
	rt.snapMu.Lock()
	rt.snapHooks = append(rt.snapHooks, fn)
	rt.snapMu.Unlock()
}

// RegisterCommitHook adds a callback invoked after every sub-computation
// is sealed and published to the graph — the commit boundary of §V-A,
// which is also the publication point of the live analysis pipeline: by
// the time the hook fires, the vertex is visible to Graph readers, so a
// fold triggered by it will observe the vertex. Hooks run on the
// recording thread's goroutine and must be cheap (the live pipeline just
// pokes a buffered channel). Register hooks before Run.
func (rt *Runtime) RegisterCommitHook(fn func(id core.SubID)) {
	rt.snapMu.Lock()
	rt.commitHooks = append(rt.commitHooks, fn)
	rt.snapMu.Unlock()
}

// notifyCommit runs commit hooks for one sealed sub-computation.
func (rt *Runtime) notifyCommit(id core.SubID) {
	rt.snapMu.Lock()
	hooks := rt.commitHooks
	rt.snapMu.Unlock()
	for _, fn := range hooks {
		fn(id)
	}
}

// notifySyncPoint runs snapshot hooks; called at every synchronization
// boundary (the points at which a consistent cut may be taken, §VI).
func (rt *Runtime) notifySyncPoint() {
	rt.snapMu.Lock()
	rt.syncSeq++
	hooks := rt.snapHooks
	rt.snapMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// SyncSeq returns the number of synchronization boundaries crossed so far.
func (rt *Runtime) SyncSeq() uint64 {
	rt.snapMu.Lock()
	defer rt.snapMu.Unlock()
	return rt.syncSeq
}
