package threading

import (
	"sync/atomic"
	"testing"
)

func TestRWMutexWriteVisibility(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	rw := rt.NewRWMutex("table")
	_, err := rt.Run(func(main *Thread) {
		rw.Lock(main)
		main.Store64(base, 77)
		rw.Unlock(main)
		readers := make([]*Thread, 0, 3)
		for i := 0; i < 3; i++ {
			readers = append(readers, main.Spawn(func(w *Thread) {
				rw.RLock(w)
				if got := w.Load64(base); got != 77 {
					t.Errorf("reader sees %d, want 77", got)
				}
				rw.RUnlock(w)
			}))
		}
		for _, r := range readers {
			main.Join(r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := rt.Graph().Analyze().Verify(); verr != nil {
		t.Errorf("CPG verify: %v", verr)
	}
	// Readers must happen-after the writer's release: a sync edge from
	// the writer's unlock sub to each reader's lock sub.
	var rwEdges int
	for _, e := range rt.Graph().SyncEdges() {
		if e.Object == "rwlock:table" {
			rwEdges++
		}
	}
	if rwEdges < 3 {
		t.Errorf("rwlock edges = %d, want >= 3 (one per reader)", rwEdges)
	}
}

func TestRWMutexNative(t *testing.T) {
	rt := newRT(t, ModeNative)
	base := rt.GlobalsBase()
	rw := rt.NewRWMutex("t")
	_, err := rt.Run(func(main *Thread) {
		rw.Lock(main)
		main.Store64(base, 1)
		rw.Unlock(main)
		rw.RLock(main)
		_ = main.Load64(base)
		rw.RUnlock(main)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryLock(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	m := rt.NewMutex("m")
	_, err := rt.Run(func(main *Thread) {
		if !m.TryLock(main) {
			t.Fatal("uncontended TryLock failed")
		}
		main.Store64(base, 5)

		// A second thread's TryLock must fail while main holds it; the
		// gate channel makes the attempt deterministic.
		attempted := make(chan bool, 1)
		child := main.Spawn(func(w *Thread) {
			attempted <- m.TryLock(w)
		})
		if got := <-attempted; got {
			t.Error("TryLock succeeded while lock held")
		}
		m.Unlock(main)
		main.Join(child)

		// After release, TryLock succeeds and sees the write.
		if !m.TryLock(main) {
			t.Fatal("TryLock after unlock failed")
		}
		if got := main.Load64(base); got != 5 {
			t.Errorf("value = %d", got)
		}
		m.Unlock(main)
	})
	if err != nil {
		t.Fatal(err)
	}
	if verr := rt.Graph().Analyze().Verify(); verr != nil {
		t.Errorf("CPG verify: %v", verr)
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	rt := newRT(t, ModeInspector)
	base := rt.GlobalsBase()
	once := rt.NewOnce("init")
	var runs atomic.Int32
	_, err := rt.Run(func(main *Thread) {
		init := func(w *Thread) {
			runs.Add(1)
			w.Store64(base, 99)
		}
		var ws []*Thread
		for i := 0; i < 4; i++ {
			ws = append(ws, main.Spawn(func(w *Thread) {
				once.Do(w, init)
				// Every caller must observe the initialization.
				if got := w.Load64(base); got != 99 {
					t.Errorf("after Do: %d, want 99", got)
				}
			}))
		}
		once.Do(main, init)
		if got := main.Load64(base); got != 99 {
			t.Errorf("main after Do: %d", got)
		}
		for _, w := range ws {
			main.Join(w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("init ran %d times", got)
	}
	if verr := rt.Graph().Analyze().Verify(); verr != nil {
		t.Errorf("CPG verify: %v", verr)
	}
}

// TestThunksMatchPTDecode cross-checks the two control-flow recorders:
// the thunk sequence captured in the CPG (software side, Algorithm 2's
// onBranchAccess) must equal the branch events reconstructed from the
// compressed PT packet stream (hardware side). This is the paper's core
// integration point — the CPG's control edges come from PT.
func TestThunksMatchPTDecode(t *testing.T) {
	rt := newRT(t, ModeInspector)
	_, err := rt.Run(func(main *Thread) {
		for i := 0; i < 300; i++ {
			main.Branch("a", i%3 == 0)
			if i%5 == 0 {
				main.Indirect("disp")
			}
			main.Branch("b", i%7 < 3)
		}
		child := main.Spawn(func(w *Thread) {
			for i := 0; i < 100; i++ {
				w.Branch("c", i%2 == 0)
			}
		})
		main.Join(child)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Gather per-thread thunk sequences from the CPG.
	for slot := 0; slot < 2; slot++ {
		type ev struct {
			site     string
			taken    bool
			indirect bool
		}
		var recorded []ev
		for _, sc := range rt.Graph().ThreadSeq(slot) {
			for _, th := range sc.Thunks {
				recorded = append(recorded, ev{site: rt.Graph().SiteName(th.Site), taken: th.Taken, indirect: th.Indirect})
			}
		}
		// Decode the same thread's PT stream.
		var pid int32 = -1
		for _, thr := range rt.threads {
			if thr.p.Slot == slot {
				pid = thr.p.PID
			}
		}
		stream, ok := rt.Session().Stream(pid)
		if !ok {
			t.Fatalf("no stream for slot %d", slot)
		}
		events, err := decodeEvents(rt, stream.Trace())
		if err != nil {
			t.Fatalf("slot %d decode: %v", slot, err)
		}
		if len(events) != len(recorded) {
			t.Fatalf("slot %d: PT decoded %d events, CPG recorded %d thunks",
				slot, len(events), len(recorded))
		}
		for i := range events {
			r := recorded[i]
			if events[i].Site.Label != r.site {
				t.Fatalf("slot %d event %d: PT site %s, thunk site %s",
					slot, i, events[i].Site.Label, r.site)
			}
			if !r.indirect && events[i].Taken != r.taken {
				t.Fatalf("slot %d event %d: PT taken %v, thunk %v",
					slot, i, events[i].Taken, r.taken)
			}
		}
	}
}
