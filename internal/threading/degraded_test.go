package threading

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/faultinject"
)

// TestLosslessRunHasNoGaps pins the default: without injected faults or
// ring overruns, the recorded graph carries no gap intervals and is not
// degraded — the invariant the byte-identical drift corpora rest on.
func TestLosslessRunHasNoGaps(t *testing.T) {
	rt := newRT(t, ModeInspector)
	m := rt.NewMutex("m")
	if _, err := rt.Run(func(main *Thread) {
		for i := 0; i < 5; i++ {
			m.Lock(main)
			main.Store64(rt.GlobalsBase(), uint64(i))
			m.Unlock(main)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if rt.Graph().Degraded() {
		t.Fatalf("lossless run marked degraded: %+v", rt.Graph().Gaps())
	}
	if gaps := rt.Graph().Gaps(); gaps != nil {
		t.Errorf("lossless run recorded gaps: %+v", gaps)
	}
}

// TestInjectedAuxLossMarksGaps runs a workload under an aux-loss
// schedule and checks the tentpole path end to end: the lossy sink's
// partial accepts surface as per-thread gap intervals in the graph, with
// the loss attributed to sealed sub-computations, and the analysis
// summarizes them as incompleteness.
func TestInjectedAuxLossMarksGaps(t *testing.T) {
	in := faultinject.New(faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: faultinject.AuxLoss, After: 2, Every: 3},
	}})
	rt, err := NewRuntime(Options{
		AppName:       "test",
		Mode:          ModeInspector,
		MaxThreads:    8,
		WrapTraceSink: in.WrapSink,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutex("m")
	if _, err := rt.Run(func(main *Thread) {
		for i := 0; i < 20; i++ {
			m.Lock(main)
			main.Store64(rt.GlobalsBase(), uint64(i))
			// Branches are what PT actually traces; without them the
			// encoder emits nothing and the lossy sink never fires.
			for j := 0; j < 10; j++ {
				main.Branch("main.loop", j%2 == 0)
			}
			m.Unlock(main)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if in.Fired(faultinject.AuxLoss) == 0 {
		t.Fatal("schedule never fired; the test exercises nothing")
	}
	g := rt.Graph()
	if !g.Degraded() {
		t.Fatal("injected loss did not mark the graph degraded")
	}
	comp := g.Completeness()
	if comp.Complete || comp.GapIntervals == 0 || comp.LostBytes == 0 {
		t.Fatalf("completeness = %+v", comp)
	}
	maxAlpha := uint64(0)
	for _, sc := range g.Subs() {
		if sc.ID.Thread == 0 && sc.ID.Alpha > maxAlpha {
			maxAlpha = sc.ID.Alpha
		}
	}
	for _, tg := range g.Gaps() {
		for _, gp := range tg.Gaps {
			if gp.Kind != core.GapAuxLoss && gp.Kind != core.GapTruncated {
				t.Errorf("unexpected gap kind %v", gp.Kind)
			}
			if gp.ToAlpha > maxAlpha {
				t.Errorf("gap %v beyond the last sealed sub α%d", gp, maxAlpha)
			}
			if gp.Bytes == 0 {
				t.Errorf("gap %v carries no byte count", gp)
			}
		}
	}
	// The analysis carries the same summary, and the degraded flag rides
	// into every Analysis built over this graph.
	a := g.Analyze()
	if !a.Degraded() || a.Completeness().GapIntervals != comp.GapIntervals {
		t.Errorf("analysis completeness %+v disagrees with graph %+v", a.Completeness(), comp)
	}
	// The gob round-trip preserves the gaps: a degraded CPG stays marked
	// degraded after export and reload.
	var buf bytes.Buffer
	if err := g.EncodeGob(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.DecodeGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bc := back.Completeness()
	if !back.Degraded() || bc.GapThreads != comp.GapThreads ||
		bc.GapIntervals != comp.GapIntervals || bc.LostBytes != comp.LostBytes {
		t.Errorf("gob round-trip lost gaps: %+v vs %+v", bc, comp)
	}
}

// TestWorkloadPanicRecovered is the satellite regression: a panicking
// workload no longer crashes the process — Run returns ErrWorkloadPanic,
// the runtime still produces a report, and the panic is marked as a gap
// on the panicking thread.
func TestWorkloadPanicRecovered(t *testing.T) {
	rt := newRT(t, ModeInspector)
	_, err := rt.Run(func(main *Thread) {
		main.Store64(rt.GlobalsBase(), 1)
		panic("deliberate workload bug")
	})
	if !errors.Is(err, ErrWorkloadPanic) {
		t.Fatalf("Run() = %v, want ErrWorkloadPanic", err)
	}
	if !strings.Contains(err.Error(), "deliberate workload bug") {
		t.Errorf("panic value lost from the error: %v", err)
	}
	if rt.LastReport() == nil {
		t.Fatal("no report after a recovered panic")
	}
	found := false
	for _, tg := range rt.Graph().Gaps() {
		for _, gp := range tg.Gaps {
			if gp.Kind == core.GapPanic {
				found = true
			}
		}
	}
	if !found {
		t.Error("panic left no GapPanic mark in the graph")
	}
}

// TestCommitHookPanicAtTeardownIsWorkloadPanic pins the classification
// the chaos suite first caught missing: a commit hook that panics on
// the thread's final seal — which happens inside teardown, after a
// healthy body — must still surface as ErrWorkloadPanic with a
// GapPanic mark, not as an unclassified teardown error.
func TestCommitHookPanicAtTeardownIsWorkloadPanic(t *testing.T) {
	rt := newRT(t, ModeInspector)
	rt.RegisterCommitHook(func(core.SubID) { panic("hook bug") })
	// No sync boundaries in the body: the only seal (and so the only
	// hook invocation) is the teardown one.
	_, err := rt.Run(func(main *Thread) {
		main.Store64(rt.GlobalsBase(), 1)
	})
	if !errors.Is(err, ErrWorkloadPanic) {
		t.Fatalf("Run() = %v, want ErrWorkloadPanic", err)
	}
	if !strings.Contains(err.Error(), "hook bug") {
		t.Errorf("panic value lost from the error: %v", err)
	}
	if !rt.Graph().Degraded() {
		t.Error("teardown hook panic left the graph unmarked")
	}
}

// TestChildPanicReleasesJoin checks the cross-thread half: a child
// thread's panic must still close its join object (the parent cannot
// hang) and surface in Run's error.
func TestChildPanicReleasesJoin(t *testing.T) {
	rt := newRT(t, ModeInspector)
	_, err := rt.Run(func(main *Thread) {
		child := main.Spawn(func(w *Thread) {
			panic("child bug")
		})
		main.Join(child)
		main.Store64(rt.GlobalsBase(), 7)
	})
	if !errors.Is(err, ErrWorkloadPanic) {
		t.Fatalf("Run() = %v, want ErrWorkloadPanic from the child", err)
	}
	if !strings.Contains(err.Error(), "child bug") {
		t.Errorf("child panic value lost: %v", err)
	}
}
