package threading

import (
	"fmt"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/image"
	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/proc"
	"github.com/repro/inspector/internal/pt"
	"github.com/repro/inspector/internal/vtime"
)

// Category attributes virtual-time charges to the overhead classes the
// paper's Figure 6 separates.
type Category int

// Charge categories.
const (
	// CatApp is work the application itself performs (also charged by
	// the native baseline).
	CatApp Category = iota + 1
	// CatThreading is INSPECTOR threading-library overhead: page faults,
	// twin copies, diffs, commits, vector clocks, process spawns.
	CatThreading
	// CatPT is Intel-PT overhead: per-branch packet generation plus
	// moving trace bytes out of the AUX area.
	CatPT
)

// Thread is one application thread — under INSPECTOR, a forked process
// with a private address space. All methods must be called from the
// goroutine running the thread's function.
type Thread struct {
	rt     *Runtime
	p      *proc.Process
	rec    *core.Recorder // nil in native mode
	enc    *pt.Encoder    // nil in native mode
	tracer *pt.Tracer     // nil in native mode
	clk    *vtime.Clock

	lastPTBytes uint64
	// lastLostBytes is the encoder loss counter observed at the previous
	// boundary check; a positive delta marks a trace gap on the sealing
	// sub-computation.
	lastLostBytes uint64

	// condSites/indSites cache label -> site resolutions per thread, so
	// the per-branch path skips the image's RWMutex + shared map. Each
	// entry pairs the image site (for the PT tracer) with the CPG's
	// interned site ref (for the recorder), so a branch resolves both
	// with one lookup and the recorder never sees a string. Kind
	// consistency still holds: each cache is only ever filled through
	// MustSite with its own kind, so a label misused across kinds fails
	// on its first use exactly as before.
	condSites map[string]cachedSite
	indSites  map[string]cachedSite

	appCycles       vtime.Cycles
	threadingCycles vtime.Cycles
	ptCycles        vtime.Cycles

	loads, stores, branches, alu uint64

	joinObj  *core.SyncObject
	joinVT   *vtime.SyncPoint
	joinCh   chan struct{}
	joinSub  core.SubID
	finished bool
}

// cachedSite is one thread-local site-cache entry: the image site the PT
// encoder needs and the interned ref the CPG recorder stores.
type cachedSite struct {
	site *image.Site
	ref  core.SiteRef
}

// faultSink routes protection faults into the thread's recorder and cost
// accounting (the SIGSEGV handler of §V-A). Fault.Page is the page id the
// memory substrate resolved during its (cached) page lookup; it flows
// into the recorder's read/write sets as-is, so no layer re-derives the
// id from the faulting address.
type faultSink struct{ t *Thread }

// OnFault implements mem.FaultHandler.
func (f faultSink) OnFault(ft mem.Fault) {
	t := f.t
	t.charge(CatThreading, t.rt.model.PageFault)
	switch ft.Kind {
	case mem.AccessRead:
		t.rec.OnRead(uint64(ft.Page))
	case mem.AccessWrite:
		// The write fault also pays for the twin copy made for diffing.
		t.charge(CatThreading, t.rt.model.TwinCopyPerPage)
		t.rec.OnWrite(uint64(ft.Page))
	}
}

// newThread creates the process, recorder, and PT plumbing for one thread.
// parent is nil for the main thread.
func (rt *Runtime) newThread(parent *Thread, slot int, name string) (*Thread, error) {
	t := &Thread{rt: rt}
	tracking := rt.opts.Mode == ModeInspector

	var origin vtime.Cycles
	var parentPID int32
	if parent != nil {
		origin = parent.clk.Now()
		parentPID = parent.p.PID
	}
	var handler mem.FaultHandler
	if tracking {
		handler = faultSink{t: t}
	}
	t.p = rt.table.Spawn(proc.SpawnConfig{
		Parent:      parentPID,
		Name:        name,
		Slot:        slot,
		Backings:    rt.backings,
		Handler:     handler,
		Tracking:    tracking,
		ClockOrigin: origin,
	})
	t.clk = t.p.Clock
	rt.acct.Register(t.clk)

	// cgroup membership: the main thread joins the app group; children
	// inherit through fork, which is what keeps the PT session's filter
	// matching every process the threading library creates.
	if parent == nil {
		rt.cg.AddProcess(t.p.PID)
	} else {
		rt.hier.Fork(parentPID, t.p.PID)
	}

	if tracking {
		rec, err := core.NewRecorder(rt.graph, slot, t.clk.Now())
		if err != nil {
			return nil, err
		}
		t.rec = rec
		stream, ok := rt.sess.Attach(t.p.PID)
		if !ok {
			return nil, fmt.Errorf("threading: perf filter rejected pid %d", t.p.PID)
		}
		rt.sess.RecordComm(t.p.PID, name)
		rt.sess.RecordMMAP(t.p.PID, image.CodeBase, uint64(rt.img.Len()*image.SiteSpacing), rt.opts.AppName+".text")
		var sink pt.ByteSink = stream
		if rt.opts.WrapTraceSink != nil {
			sink = rt.opts.WrapTraceSink(stream)
		}
		t.enc = pt.NewEncoder(sink, pt.EncoderOptions{
			PSBPeriod: rt.opts.PSBPeriod,
			TSC:       func() uint64 { return uint64(t.clk.Now()) },
		})
		tracer, err := pt.NewTracer(t.enc, rt.img, fmt.Sprintf("__exit_t%d__", slot))
		if err != nil {
			return nil, err
		}
		t.tracer = tracer
		t.condSites = make(map[string]cachedSite)
		t.indSites = make(map[string]cachedSite)
	}

	t.joinObj = rt.graph.NewSyncObject(fmt.Sprintf("join:t%d", slot), false)
	t.joinVT = &vtime.SyncPoint{}
	t.joinCh = make(chan struct{})

	rt.threadsMu.Lock()
	rt.threads = append(rt.threads, t)
	rt.threadsMu.Unlock()
	return t, nil
}

// charge adds cycles to the thread's clock under the given category.
func (t *Thread) charge(cat Category, c vtime.Cycles) {
	if c == 0 {
		return
	}
	t.clk.Advance(c)
	switch cat {
	case CatThreading:
		t.threadingCycles += c
	case CatPT:
		t.ptCycles += c
	default:
		t.appCycles += c
	}
}

// onLoad and onStore fold the per-access bookkeeping — operation count,
// one retired instruction, the app-category cycle charge — into a single
// call without charge's category dispatch. Every tracked access pays this
// path, so it stays flat: two counter bumps, one clock advance, one
// recorder bump.
func (t *Thread) onLoad() {
	t.loads++
	if t.rec != nil {
		t.rec.OnInstructions(1)
	}
	c := t.rt.model.Load
	t.clk.Advance(c)
	t.appCycles += c
}

func (t *Thread) onStore() {
	t.stores++
	if t.rec != nil {
		t.rec.OnInstructions(1)
	}
	c := t.rt.model.Store
	t.clk.Advance(c)
	t.appCycles += c
}

// chargePTBytes charges the consumer-side cost of trace bytes emitted
// since the last call.
func (t *Thread) chargePTBytes() {
	if t.enc == nil {
		return
	}
	b := t.enc.BytesWritten()
	if delta := b - t.lastPTBytes; delta > 0 {
		t.charge(CatPT, vtime.Cycles(delta)*t.rt.model.PTBytePersist)
		t.lastPTBytes = b
	}
}

// Slot returns the thread's dense slot index.
func (t *Thread) Slot() int { return t.p.Slot }

// PID returns the backing process id.
func (t *Thread) PID() int32 { return t.p.PID }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Now returns the thread's virtual time.
func (t *Thread) Now() vtime.Cycles { return t.clk.Now() }

// segv converts an address-space error into a simulated SIGSEGV crash.
// The real library would deliver a fatal signal; a workload touching
// unmapped memory is a bug in the workload, not a recoverable condition.
func (t *Thread) segv(op string, addr mem.Addr, err error) {
	panic(fmt.Sprintf("thread %d: %s at %#x: %v", t.p.Slot, op, uint64(addr), err))
}

// Load8 reads one byte of tracked memory.
func (t *Thread) Load8(a mem.Addr) uint8 {
	t.onLoad()
	v, err := t.p.Space.LoadU8(a)
	if err != nil {
		t.segv("load8", a, err)
	}
	return v
}

// Load32 reads a uint32.
func (t *Thread) Load32(a mem.Addr) uint32 {
	t.onLoad()
	v, err := t.p.Space.LoadU32(a)
	if err != nil {
		t.segv("load32", a, err)
	}
	return v
}

// Load64 reads a uint64.
func (t *Thread) Load64(a mem.Addr) uint64 {
	t.onLoad()
	v, err := t.p.Space.LoadU64(a)
	if err != nil {
		t.segv("load64", a, err)
	}
	return v
}

// LoadF64 reads a float64.
func (t *Thread) LoadF64(a mem.Addr) float64 {
	t.onLoad()
	v, err := t.p.Space.LoadF64(a)
	if err != nil {
		t.segv("loadf64", a, err)
	}
	return v
}

// Store8 writes one byte.
func (t *Thread) Store8(a mem.Addr, v uint8) {
	t.onStore()
	conflicts, err := t.p.Space.StoreU8(a, v)
	if err != nil {
		t.segv("store8", a, err)
	}
	t.chargeConflicts(conflicts)
}

// Store32 writes a uint32.
func (t *Thread) Store32(a mem.Addr, v uint32) {
	t.onStore()
	conflicts, err := t.p.Space.StoreU32(a, v)
	if err != nil {
		t.segv("store32", a, err)
	}
	t.chargeConflicts(conflicts)
}

// Store64 writes a uint64.
func (t *Thread) Store64(a mem.Addr, v uint64) {
	t.onStore()
	conflicts, err := t.p.Space.StoreU64(a, v)
	if err != nil {
		t.segv("store64", a, err)
	}
	t.chargeConflicts(conflicts)
}

// StoreF64 writes a float64.
func (t *Thread) StoreF64(a mem.Addr, v float64) {
	t.onStore()
	conflicts, err := t.p.Space.StoreF64(a, v)
	if err != nil {
		t.segv("storef64", a, err)
	}
	t.chargeConflicts(conflicts)
}

// Read copies tracked memory into buf, costed per 8-byte word.
func (t *Thread) Read(a mem.Addr, buf []byte) {
	words := uint64(len(buf)+7) / 8
	t.loads += words
	t.countInstr(words)
	t.charge(CatApp, vtime.Cycles(words)*t.rt.model.Load)
	if err := t.p.Space.Read(a, buf); err != nil {
		t.segv("read", a, err)
	}
}

// Write copies data into tracked memory, costed per 8-byte word.
func (t *Thread) Write(a mem.Addr, data []byte) {
	words := uint64(len(data)+7) / 8
	t.stores += words
	t.countInstr(words)
	t.charge(CatApp, vtime.Cycles(words)*t.rt.model.Store)
	conflicts, err := t.p.Space.Write(a, data)
	if err != nil {
		t.segv("write", a, err)
	}
	t.chargeConflicts(conflicts)
}

// chargeConflicts applies the native-mode false-sharing penalty.
func (t *Thread) chargeConflicts(conflicts int) {
	if conflicts > 0 {
		t.charge(CatApp, vtime.Cycles(conflicts)*t.rt.model.FalseSharingPenalty)
	}
}

// countInstr counts retired instructions into the current thunk.
func (t *Thread) countInstr(n uint64) {
	if t.rec != nil {
		t.rec.OnInstructions(n)
	}
}

// Compute charges n generic ALU instructions of pure computation.
func (t *Thread) Compute(n uint64) {
	t.alu += n
	t.charge(CatApp, vtime.Cycles(n)*t.rt.model.ALU)
	if t.rec != nil {
		t.rec.OnInstructions(n)
	}
}

// Branch records a conditional branch at the labelled site and returns
// cond so it can wrap a Go condition inline:
//
//	for t.Branch("loop.head", i < n) { ... }
//
// Under INSPECTOR the branch emits a TNT bit into the thread's PT trace
// and closes the current thunk.
func (t *Thread) Branch(label string, cond bool) bool {
	t.branches++
	t.charge(CatApp, t.rt.model.Branch)
	if t.rec != nil {
		cs, ok := t.condSites[label]
		if !ok {
			cs = cachedSite{
				site: t.rt.img.MustSite(label, image.Conditional),
				ref:  t.rt.graph.InternSite(label),
			}
			t.condSites[label] = cs
		}
		t.rec.OnBranch(cs.ref, cond)
		t.tracer.OnCond(cs.site, cond)
		t.charge(CatPT, t.rt.model.PTBranchOverhead)
		t.chargePTBytes()
	}
	return cond
}

// Indirect records an indirect control transfer (function pointer call,
// return) at the labelled site. Under INSPECTOR it emits a TIP packet.
func (t *Thread) Indirect(label string) {
	t.branches++
	t.charge(CatApp, t.rt.model.Branch)
	if t.rec != nil {
		cs, ok := t.indSites[label]
		if !ok {
			cs = cachedSite{
				site: t.rt.img.MustSite(label, image.Indirect),
				ref:  t.rt.graph.InternSite(label),
			}
			t.indSites[label] = cs
		}
		// The indirect's target is the next executed site; the recorder
		// thunk records the site now (target ref 0 = unresolved) and the
		// tracer resolves the target from the following event.
		t.rec.OnIndirect(cs.ref, 0)
		t.tracer.OnIndirect(cs.site)
		t.charge(CatPT, t.rt.model.PTBranchOverhead)
		t.chargePTBytes()
	}
}

// Malloc allocates size bytes from the shared heap through the wrapped
// allocator. The allocation header is written through tracked memory, so
// allocator-heavy workloads (reverse_index) fault on allocator pages —
// the effect §VII-A blames for that benchmark's overhead.
func (t *Thread) Malloc(size int) mem.Addr {
	if size <= 0 {
		size = 1
	}
	rt := t.rt
	rt.allocMu.Lock()
	const header = 16
	base := rt.heapNext
	total := mem.Addr((size + header + 15) & ^15)
	rt.heapNext += total
	rt.allocMu.Unlock()
	cat := CatApp
	if rt.opts.Mode == ModeInspector {
		cat = CatThreading
	}
	t.charge(cat, rt.model.MallocOp)
	// Header write through tracked space (allocation size bookkeeping).
	t.stores++
	conflicts, err := t.p.Space.StoreU64(base, uint64(size))
	if err != nil {
		t.segv("malloc header", base, err)
	}
	t.chargeConflicts(conflicts)
	return base + header
}

// Free releases an allocation (bookkeeping cost only; the bump allocator
// does not recycle).
func (t *Thread) Free(addr mem.Addr) {
	cat := CatApp
	if t.rt.opts.Mode == ModeInspector {
		cat = CatThreading
	}
	t.charge(cat, t.rt.model.MallocOp)
	_ = addr
}

// syncBoundary ends the current sub-computation: commit the dirty pages
// (shared-memory commit of §V-A), charge the diff/commit costs, and close
// the vertex. Returns the completed sub-computation (nil in native mode).
func (t *Thread) syncBoundary(ev core.SyncEvent) *core.SubComputation {
	t.charge(CatApp, t.rt.model.SyncOp)
	if t.rec == nil {
		t.rt.notifySyncPoint()
		return nil
	}
	res := t.p.Space.Commit()
	m := t.rt.model
	t.charge(CatThreading,
		vtime.Cycles(res.DiffedBytes)*m.DiffPerByte+
			vtime.Cycles(res.CommittedBytes)*m.CommitPerByte+
			vtime.Cycles(t.rt.opts.MaxThreads)*m.VectorClockPerSlot)
	t.checkTraceLoss(core.GapAuxLoss)
	sub, err := t.rec.EndSub(ev, t.clk.Now())
	if err != nil {
		// An out-of-order alpha is an internal invariant violation.
		panic(fmt.Sprintf("thread %d: %v", t.p.Slot, err))
	}
	t.rt.notifyCommit(sub.ID)
	t.rt.notifySyncPoint()
	return sub
}

// checkTraceLoss polls the encoder's loss counter and, on a positive
// delta since the previous check, marks a gap of the given kind on the
// sub-computation currently being sealed. Between two boundaries exactly
// one sub-computation records, so the delta attributes to the current
// alpha. This is how AUX ring overruns (and injected loss — both appear
// as partial sink accepts) become first-class uncertainty in the CPG.
func (t *Thread) checkTraceLoss(kind core.GapKind) {
	if t.enc == nil {
		return
	}
	lost := t.enc.LostBytes()
	if lost <= t.lastLostBytes {
		return
	}
	cur := t.rec.Alpha()
	t.rec.MarkGap(core.Gap{FromAlpha: cur, ToAlpha: cur, Kind: kind, Bytes: lost - t.lastLostBytes})
	t.lastLostBytes = lost
}

// Spawn creates a new thread running fn — the pthread_create wrapper.
// Under INSPECTOR the child is forked as a process (clone()), which costs
// ProcessSpawn rather than ThreadSpawn; the difference dominates
// thread-churning workloads like kmeans.
func (t *Thread) Spawn(fn func(*Thread)) *Thread {
	rt := t.rt
	slot, err := rt.allocSlot()
	if err != nil {
		panic(fmt.Sprintf("thread %d: spawn: %v", t.p.Slot, err))
	}
	spawnObj := rt.graph.NewSyncObject(fmt.Sprintf("spawn:t%d", slot), false)
	spawnVT := &vtime.SyncPoint{}

	// Parent side: the spawn is a release to the child.
	if rt.opts.Mode == ModeInspector {
		t.charge(CatThreading, rt.model.ProcessSpawn)
		sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: spawnObj.Ref()})
		t.rec.Release(spawnObj, sub)
	} else {
		t.charge(CatApp, rt.model.ThreadSpawn)
	}
	spawnVT.Release(t.clk.Now())

	child, err := rt.newThread(t, slot, fmt.Sprintf("%s-w%d", rt.opts.AppName, slot))
	if err != nil {
		panic(fmt.Sprintf("thread %d: spawn: %v", t.p.Slot, err))
	}

	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		// Child side: starting is an acquire of the parent's release.
		// Under INSPECTOR the child also pays its own process setup
		// (perf attach, address-space init) on its own clock, so sibling
		// setups overlap — only the parent's clone() calls serialize.
		spawnVT.Acquire(child.clk)
		if child.rec != nil {
			child.charge(CatThreading, rt.model.ProcessSpawn)
			child.rec.Acquire(spawnObj)
		}
		// A panicking child degrades the recording (gap + error on the
		// runtime) instead of crashing the process; finishThread still
		// seals the thread and releases any parent blocked in Join.
		rt.runBody(child, fn)
		rt.finishThread(child)
	}()
	return child
}

// Join blocks until the child thread finishes — the pthread_join wrapper.
func (t *Thread) Join(child *Thread) {
	if t.rec != nil {
		t.syncBoundary(core.SyncEvent{Kind: core.SyncAcquire, Object: child.joinObj.Ref()})
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	<-child.joinCh
	child.joinVT.Acquire(t.clk)
	if t.rec != nil {
		t.rec.Acquire(child.joinObj)
	}
}

// finish closes the thread: final sub-computation, join release, PT trace
// termination, perf exit record.
func (t *Thread) finish() {
	if t.finished {
		return
	}
	t.finished = true
	if t.rec != nil {
		sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: t.joinObj.Ref()})
		t.rec.Release(t.joinObj, sub)
		t.joinSub = sub.ID
		t.tracer.Close()
		t.chargePTBytes()
		// Trace bytes flushed by the tracer teardown can still be refused
		// by the ring; that loss belongs to the just-sealed final
		// sub-computation and marks the stream as truncated.
		if lost := t.enc.LostBytes(); lost > t.lastLostBytes {
			last := sub.ID.Alpha
			t.rec.MarkGap(core.Gap{
				FromAlpha: last, ToAlpha: last,
				Kind: core.GapTruncated, Bytes: lost - t.lastLostBytes,
			})
			t.lastLostBytes = lost
		}
		if stream, ok := t.rt.sess.Stream(t.p.PID); ok {
			stream.Drain()
		}
		t.rt.sess.RecordExit(t.p.PID)
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	t.joinVT.Release(t.clk.Now())
	t.rt.cg.ChargeCPU(t.clk.Work())
	t.rt.hier.Exit(t.p.PID)
	t.rt.table.Exit(t.p.PID)
	close(t.joinCh)
}
