package threading

import (
	"sync"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/vtime"
)

// RWMutex is the pthread_rwlock replacement. Writers are acquire+release
// like a mutex; readers are acquires of the last writer's release (so a
// reader's sub-computation happens-after the write it observes) and
// their own unlocks do not publish new causality to later readers.
type RWMutex struct {
	rt   *Runtime
	name string
	mu   sync.RWMutex
	obj  *core.SyncObject
	vt   vtime.SyncPoint
}

// NewRWMutex creates a named reader/writer lock.
func (rt *Runtime) NewRWMutex(name string) *RWMutex {
	return &RWMutex{
		rt:   rt,
		name: name,
		obj:  rt.graph.NewSyncObject("rwlock:"+name, false),
	}
}

// Name returns the lock's name.
func (rw *RWMutex) Name() string { return rw.name }

// Lock acquires the lock exclusively (write side).
func (rw *RWMutex) Lock(t *Thread) {
	if t.rec != nil {
		t.syncBoundary(core.SyncEvent{Kind: core.SyncAcquire, Object: rw.obj.Ref()})
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	rw.mu.Lock()
	rw.vt.Acquire(t.clk)
	if t.rec != nil {
		t.rec.Acquire(rw.obj)
	}
}

// Unlock releases the exclusive lock.
func (rw *RWMutex) Unlock(t *Thread) {
	if t.rec != nil {
		sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: rw.obj.Ref()})
		t.rec.Release(rw.obj, sub)
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	rw.vt.Release(t.clk.Now())
	rw.mu.Unlock()
}

// RLock acquires the lock shared (read side): an acquire with no release
// publication.
func (rw *RWMutex) RLock(t *Thread) {
	if t.rec != nil {
		t.syncBoundary(core.SyncEvent{Kind: core.SyncAcquire, Object: rw.obj.Ref()})
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	rw.mu.RLock()
	rw.vt.Acquire(t.clk)
	if t.rec != nil {
		t.rec.Acquire(rw.obj)
	}
}

// RUnlock releases the shared lock. Readers still commit their
// sub-computation (they may have written private data elsewhere), but do
// not publish causality into the lock object.
func (rw *RWMutex) RUnlock(t *Thread) {
	if t.rec != nil {
		t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: rw.obj.Ref()})
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	rw.vt.Release(t.clk.Now())
	rw.mu.RUnlock()
}

// TryLock attempts the mutex without blocking — pthread_mutex_trylock.
// On success it has full acquire semantics; on failure no sub-computation
// boundary is created (the thread continues uninterrupted, as the real
// library's trylock shim does when EBUSY comes back).
func (m *Mutex) TryLock(t *Thread) bool {
	if !m.mu.TryLock() {
		t.charge(CatApp, t.rt.model.SyncOp)
		return false
	}
	// Locked: now record the boundary and acquire semantics. The real
	// sub-computation split happens after the successful CAS, which is
	// safe because no blocking occurred.
	if t.rec != nil {
		t.syncBoundary(core.SyncEvent{Kind: core.SyncAcquire, Object: m.obj.Ref()})
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	m.vt.Acquire(t.clk)
	if t.rec != nil {
		t.rec.Acquire(m.obj)
	}
	return true
}

// Once is the pthread_once replacement: the winner's initialization
// happens-before every other caller's return.
type Once struct {
	rt   *Runtime
	name string
	mu   sync.Mutex
	done bool
	obj  *core.SyncObject
	vt   vtime.SyncPoint
}

// NewOnce creates a named once-control.
func (rt *Runtime) NewOnce(name string) *Once {
	return &Once{
		rt:   rt,
		name: name,
		obj:  rt.graph.NewSyncObject("once:"+name, false),
	}
}

// Do runs fn exactly once across all threads; every caller synchronizes
// with the initializer's completion.
func (o *Once) Do(t *Thread, fn func(*Thread)) {
	if t.rec != nil {
		t.syncBoundary(core.SyncEvent{Kind: core.SyncAcquire, Object: o.obj.Ref()})
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	o.mu.Lock()
	if !o.done {
		fn(t)
		o.done = true
		if t.rec != nil {
			sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: o.obj.Ref()})
			t.rec.Release(o.obj, sub)
		}
		o.vt.Release(t.clk.Now())
	}
	o.mu.Unlock()
	o.vt.Acquire(t.clk)
	if t.rec != nil {
		t.rec.Acquire(o.obj)
	}
}
