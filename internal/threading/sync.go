package threading

import (
	"sync"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/vtime"
)

// Mutex is the pthread_mutex replacement. Each Lock/Unlock is a
// sub-computation boundary under INSPECTOR: the current sub-computation
// commits its dirty pages and closes, the operation's acquire/release
// semantics update vector clocks, and a fresh sub-computation begins.
type Mutex struct {
	rt   *Runtime
	name string
	mu   sync.Mutex
	obj  *core.SyncObject
	vt   vtime.SyncPoint
}

// NewMutex creates a named mutex.
func (rt *Runtime) NewMutex(name string) *Mutex {
	return &Mutex{
		rt:   rt,
		name: name,
		obj:  rt.graph.NewSyncObject("mutex:"+name, false),
	}
}

// Name returns the mutex's name.
func (m *Mutex) Name() string { return m.name }

// Lock acquires the mutex (an acquire operation in the RC model).
func (m *Mutex) Lock(t *Thread) {
	if t.rec != nil {
		t.syncBoundary(core.SyncEvent{Kind: core.SyncAcquire, Object: m.obj.Ref()})
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	m.mu.Lock()
	m.vt.Acquire(t.clk)
	if t.rec != nil {
		t.rec.Acquire(m.obj)
	}
}

// Unlock releases the mutex (a release operation in the RC model).
func (m *Mutex) Unlock(t *Thread) {
	if t.rec != nil {
		sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: m.obj.Ref()})
		t.rec.Release(m.obj, sub)
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	m.vt.Release(t.clk.Now())
	m.mu.Unlock()
}

// Barrier is the pthread_barrier replacement. An arrival is a release;
// a departure is an acquire that synchronizes with every arrival of the
// same generation.
type Barrier struct {
	rt    *Runtime
	name  string
	n     int
	obj   *core.SyncObject
	vt    vtime.SyncPoint
	mu    sync.Mutex
	count int
	gen   uint64
	gate  chan struct{}
	// arrivals collects the releasing sub-computations of the current
	// generation for explicit schedule edges.
	arrivals []core.SubID
	departed []core.SubID
}

// NewBarrier creates a barrier for n participants.
func (rt *Runtime) NewBarrier(name string, n int) *Barrier {
	if n < 1 {
		n = 1
	}
	return &Barrier{
		rt:   rt,
		name: name,
		n:    n,
		obj:  rt.graph.NewSyncObject("barrier:"+name, true),
		gate: make(chan struct{}),
	}
}

// Name returns the barrier's name.
func (b *Barrier) Name() string { return b.name }

// Wait blocks until n threads arrive, then releases them all.
func (b *Barrier) Wait(t *Thread) {
	// Arrival: release.
	var sub *core.SubComputation
	if t.rec != nil {
		sub = t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: b.obj.Ref()})
		t.rec.Release(b.obj, sub)
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	b.vt.Release(t.clk.Now())

	b.mu.Lock()
	if sub != nil {
		b.arrivals = append(b.arrivals, sub.ID)
	}
	b.count++
	gate := b.gate
	if b.count == b.n {
		// Last arrival: capture this generation and open the gate.
		b.departed = b.arrivals
		b.arrivals = nil
		b.count = 0
		b.gen++
		b.gate = make(chan struct{})
		b.obj.ResetReleasers()
		close(gate)
	}
	departedRef := &b.departed
	b.mu.Unlock()

	<-gate

	// Departure: acquire, synchronizing with the whole generation.
	b.vt.Acquire(t.clk)
	if t.rec != nil {
		t.rec.MergeAcquire(b.obj)
		b.mu.Lock()
		departs := *departedRef
		b.mu.Unlock()
		for _, from := range departs {
			if from.Thread == t.p.Slot {
				continue
			}
			t.rec.AddScheduleEdge(from, b.obj.Ref())
		}
		t.charge(CatThreading, vtime.Cycles(t.rt.opts.MaxThreads)*t.rt.model.VectorClockPerSlot)
	}
}

// Semaphore is the sem_t replacement: Post is a release, Wait an acquire.
type Semaphore struct {
	rt   *Runtime
	name string
	ch   chan struct{}
	obj  *core.SyncObject
	vt   vtime.SyncPoint
}

// NewSemaphore creates a counting semaphore with the given initial value.
func (rt *Runtime) NewSemaphore(name string, initial int) *Semaphore {
	s := &Semaphore{
		rt:   rt,
		name: name,
		ch:   make(chan struct{}, 1<<20),
		obj:  rt.graph.NewSyncObject("sem:"+name, true),
	}
	for i := 0; i < initial; i++ {
		s.ch <- struct{}{}
	}
	return s
}

// Name returns the semaphore's name.
func (s *Semaphore) Name() string { return s.name }

// Post increments the semaphore (release).
func (s *Semaphore) Post(t *Thread) {
	if t.rec != nil {
		sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: s.obj.Ref()})
		t.rec.Release(s.obj, sub)
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	s.vt.Release(t.clk.Now())
	s.ch <- struct{}{}
}

// Wait decrements the semaphore, blocking at zero (acquire).
func (s *Semaphore) Wait(t *Thread) {
	if t.rec != nil {
		t.syncBoundary(core.SyncEvent{Kind: core.SyncAcquire, Object: s.obj.Ref()})
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	<-s.ch
	s.vt.Acquire(t.clk)
	if t.rec != nil {
		t.rec.Acquire(s.obj)
	}
}

// Cond is the pthread_cond replacement, always used with a Mutex held.
type Cond struct {
	rt   *Runtime
	name string
	m    *Mutex
	c    *sync.Cond
	obj  *core.SyncObject
	vt   vtime.SyncPoint
}

// NewCond creates a condition variable tied to m.
func (rt *Runtime) NewCond(name string, m *Mutex) *Cond {
	return &Cond{
		rt:   rt,
		name: name,
		m:    m,
		c:    sync.NewCond(&m.mu),
		obj:  rt.graph.NewSyncObject("cond:"+name, true),
	}
}

// Name returns the condition variable's name.
func (c *Cond) Name() string { return c.name }

// Wait atomically releases the mutex and blocks until signalled, then
// re-acquires the mutex: release(m); ...; acquire(c); acquire(m).
func (c *Cond) Wait(t *Thread) {
	if t.rec != nil {
		sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: c.m.obj.Ref()})
		t.rec.Release(c.m.obj, sub)
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	c.m.vt.Release(t.clk.Now())

	c.c.Wait() // releases m.mu while blocked, re-acquires on wake

	c.vt.Acquire(t.clk)
	c.m.vt.Acquire(t.clk)
	if t.rec != nil {
		t.rec.Acquire(c.obj)
		t.rec.MergeAcquire(c.m.obj)
	}
}

// Signal wakes one waiter (release on the condition object). POSIX allows
// signalling with or without the mutex held; the provenance semantics are
// the same.
func (c *Cond) Signal(t *Thread) {
	if t.rec != nil {
		sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: c.obj.Ref()})
		t.rec.Release(c.obj, sub)
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	c.vt.Release(t.clk.Now())
	c.c.Signal()
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(t *Thread) {
	if t.rec != nil {
		sub := t.syncBoundary(core.SyncEvent{Kind: core.SyncRelease, Object: c.obj.Ref()})
		t.rec.Release(c.obj, sub)
	} else {
		t.charge(CatApp, t.rt.model.SyncOp)
	}
	c.vt.Release(t.clk.Now())
	c.c.Broadcast()
}
