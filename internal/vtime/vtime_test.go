package vtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCyclesSeconds(t *testing.T) {
	if got := Cycles(Frequency).Seconds(); got != 1.0 {
		t.Errorf("one frequency worth of cycles = %v sec, want 1", got)
	}
	if got := Cycles(0).Seconds(); got != 0 {
		t.Errorf("zero cycles = %v sec, want 0", got)
	}
}

func TestCyclesString(t *testing.T) {
	tests := []struct {
		c    Cycles
		want string
	}{
		{5, "5cy"},
		{2_500, "2.50Kcy"},
		{3_000_000, "3.00Mcy"},
		{7_500_000_000, "7.50Gcy"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", uint64(tt.c), got, tt.want)
		}
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := Default()
	if m.PageFault <= m.SyncOp {
		t.Error("a page fault must cost more than a sync op")
	}
	if m.ProcessSpawn <= m.ThreadSpawn {
		t.Error("clone-as-process must cost more than pthread_create")
	}
	if m.Load == 0 || m.Store == 0 || m.Branch == 0 {
		t.Error("basic instruction costs must be non-zero")
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(100)
	c.Advance(50)
	if c.Now() != 150 {
		t.Errorf("Now = %d, want 150", c.Now())
	}
	if c.Work() != 50 {
		t.Errorf("Work = %d, want 50 (origin is not work)", c.Work())
	}
}

func TestClockWaitUntil(t *testing.T) {
	c := NewClock(0)
	c.Advance(10)
	c.WaitUntil(100)
	if c.Now() != 100 {
		t.Errorf("Now = %d, want 100", c.Now())
	}
	if c.Work() != 10 {
		t.Errorf("Work = %d, want 10 (waiting is not work)", c.Work())
	}
	// Waiting into the past is a no-op.
	c.WaitUntil(5)
	if c.Now() != 100 {
		t.Errorf("WaitUntil moved clock backwards to %d", c.Now())
	}
}

func TestSyncPointPropagatesTime(t *testing.T) {
	var sp SyncPoint
	releaser := NewClock(0)
	releaser.Advance(1000)
	sp.Release(releaser.Now())

	acquirer := NewClock(0)
	acquirer.Advance(10)
	now := sp.Acquire(acquirer)
	if now != 1000 {
		t.Errorf("acquirer lifted to %d, want 1000", now)
	}
	if acquirer.Work() != 10 {
		t.Errorf("acquirer work = %d, want 10", acquirer.Work())
	}
}

func TestSyncPointKeepsMax(t *testing.T) {
	var sp SyncPoint
	sp.Release(100)
	sp.Release(50) // older release must not regress the point
	if sp.Last() != 100 {
		t.Errorf("Last = %d, want 100", sp.Last())
	}
}

func TestSyncPointAcquireAheadOfRelease(t *testing.T) {
	var sp SyncPoint
	sp.Release(10)
	c := NewClock(500)
	if got := sp.Acquire(c); got != 500 {
		t.Errorf("acquire regressed clock to %d", got)
	}
}

func TestAccounting(t *testing.T) {
	var acc Accounting
	a, b := NewClock(0), NewClock(0)
	acc.Register(a)
	acc.Register(b)
	a.Advance(30)
	b.Advance(70)
	b.WaitUntil(500)
	if got := acc.Work(); got != 100 {
		t.Errorf("Work = %d, want 100", got)
	}
	if got := acc.MaxNow(); got != 500 {
		t.Errorf("MaxNow = %d, want 500", got)
	}
	if got := acc.Threads(); got != 2 {
		t.Errorf("Threads = %d, want 2", got)
	}
}

func TestClockConcurrentWaitUntil(t *testing.T) {
	// WaitUntil must be monotone under concurrent lifts.
	c := NewClock(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(target Cycles) {
			defer wg.Done()
			c.WaitUntil(target)
		}(Cycles(i * 1000))
	}
	wg.Wait()
	if c.Now() != 7000 {
		t.Errorf("concurrent WaitUntil settled at %d, want 7000", c.Now())
	}
}

func TestQuickWaitUntilMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		c := NewClock(Cycles(a))
		c.WaitUntil(Cycles(b))
		want := Cycles(a)
		if Cycles(b) > want {
			want = Cycles(b)
		}
		return c.Now() == want && c.Work() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAdvanceAccumulates(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock(0)
		var sum Cycles
		for _, s := range steps {
			c.Advance(Cycles(s))
			sum += Cycles(s)
		}
		return c.Now() == sum && c.Work() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkClockAdvance(b *testing.B) {
	c := NewClock(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Advance(1)
	}
}

func BenchmarkSyncPointRoundTrip(b *testing.B) {
	var sp SyncPoint
	c := NewClock(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Advance(1)
		sp.Release(c.Now())
		sp.Acquire(c)
	}
}
