// Package vtime provides the deterministic virtual-time substrate used in
// place of the paper's wall-clock measurements.
//
// The paper evaluates INSPECTOR on a 16-hyperthread Intel Xeon D-1540
// (2.00 GHz) and reports two metrics per run (§VII): "time", the end-to-end
// runtime, and "work", the total CPU utilization over all threads. This
// reproduction cannot measure the authors' hardware, so both metrics are
// computed over a virtual clock instead:
//
//   - every simulated thread owns a Clock that advances by a cost-model
//     charge for each operation it executes (instruction, page fault,
//     diff byte, PT byte, process spawn, ...);
//   - synchronization propagates virtual time exactly as blocking does on
//     real hardware: an acquire lifts the acquiring thread's clock to at
//     least the releasing thread's clock (see SyncPoint);
//   - "time" is the main thread's clock at exit (the critical path), and
//     "work" is the sum of all per-thread clock advances.
//
// The model is deterministic, so every experiment is exactly reproducible;
// the relative shape of the paper's figures is preserved by construction of
// the per-operation costs rather than by measurement noise.
package vtime

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Cycles counts virtual CPU cycles.
type Cycles uint64

// Frequency is the nominal clock rate used to convert Cycles to seconds for
// rate statistics (faults/sec, MB/sec, instructions/sec). It matches the
// paper's 2.00 GHz Xeon D-1540.
const Frequency = 2_000_000_000 // cycles per second

// Seconds converts a cycle count to seconds at the nominal Frequency.
func (c Cycles) Seconds() float64 {
	return float64(c) / Frequency
}

// String renders the cycle count with an engineering suffix.
func (c Cycles) String() string {
	switch {
	case c >= 1_000_000_000:
		return fmt.Sprintf("%.2fGcy", float64(c)/1e9)
	case c >= 1_000_000:
		return fmt.Sprintf("%.2fMcy", float64(c)/1e6)
	case c >= 1_000:
		return fmt.Sprintf("%.2fKcy", float64(c)/1e3)
	default:
		return fmt.Sprintf("%dcy", uint64(c))
	}
}

// CostModel assigns a virtual-cycle price to every event class in the
// system. The default values are loosely calibrated against published
// micro-architectural costs (a SIGSEGV round trip is tens of thousands of
// cycles, a clone() is hundreds of thousands, an L1 hit is ~4) so that the
// *relative* overheads of the paper's Figures 5-8 emerge from first
// principles rather than from per-benchmark fudge factors.
type CostModel struct {
	// ALU is the cost of a generic arithmetic instruction.
	ALU Cycles
	// Load and Store are the costs of a cache-friendly memory access.
	Load  Cycles
	Store Cycles
	// Branch is the cost of a (predicted) branch instruction.
	Branch Cycles
	// PTBranchOverhead is the hardware-side cost Intel PT adds per
	// retired branch while tracing is enabled (packet generation).
	PTBranchOverhead Cycles
	// PTBytePersist is the cost per PT trace byte that the perf consumer
	// must move out of the AUX area (copy + page-cache write).
	PTBytePersist Cycles
	// PageFault is the cost of one protection fault round trip: trap,
	// kernel, SIGSEGV delivery, user handler, mprotect, return.
	PageFault Cycles
	// TwinCopyPerPage is the cost of duplicating a page when a write
	// fault creates the twin used later for diffing.
	TwinCopyPerPage Cycles
	// DiffPerByte is the cost of the byte-level compare in the shared
	// memory commit.
	DiffPerByte Cycles
	// CommitPerByte is the cost of publishing one changed byte to the
	// shared mapping.
	CommitPerByte Cycles
	// SyncOp is the base cost of a synchronization operation
	// (lock/unlock/wait/post) excluding commit work.
	SyncOp Cycles
	// VectorClockPerSlot is the cost per slot of a vector clock merge.
	VectorClockPerSlot Cycles
	// ThreadSpawn is the native pthread_create cost.
	ThreadSpawn Cycles
	// ProcessSpawn is the clone()-as-process cost paid by INSPECTOR's
	// threads-as-processes design (dominates kmeans, §VII-A).
	ProcessSpawn Cycles
	// FalseSharingPenalty is the extra cost a *native* execution pays per
	// write to a cache line concurrently written by another thread.
	// INSPECTOR's private address spaces do not pay it (the paper credits
	// this, via Sheriff, for linear_regression running faster than
	// pthreads).
	FalseSharingPenalty Cycles
	// MallocOp is the cost of one heap allocation in the wrapped
	// allocator.
	MallocOp Cycles
	// InputBytePerRead is the cost per byte of reading mapped input.
	InputByteRead Cycles
}

// Default returns the calibrated cost model used by all experiments.
// Values approximate published micro-architectural costs at 2 GHz: a
// SIGSEGV+mprotect round trip ~5 us, clone() ~75 us, pthread_create
// ~7 us, a coherence miss on a falsely-shared line ~75 ns. PT costs are
// per *simulated* branch, which stands in for a basic block of real
// branches, so they carry the block's worth of packet-generation and
// log-persistence work.
func Default() CostModel {
	return CostModel{
		ALU:                 1,
		Load:                4,
		Store:               4,
		Branch:              2,
		PTBranchOverhead:    45,
		PTBytePersist:       120,
		PageFault:           8_000,
		TwinCopyPerPage:     1_024,
		DiffPerByte:         1,
		CommitPerByte:       2,
		SyncOp:              400,
		VectorClockPerSlot:  8,
		ThreadSpawn:         15_000,
		ProcessSpawn:        120_000,
		FalseSharingPenalty: 150,
		MallocOp:            250,
		InputByteRead:       0,
	}
}

// Clock is a single simulated thread's cycle counter. It is owned by one
// goroutine; Advance is not synchronized. Cross-thread reads (for work
// accounting and sync propagation) go through the atomic now field.
type Clock struct {
	now atomic.Uint64
	// advanced accumulates the total cycles charged to this clock,
	// excluding jumps from synchronization waits. It is the thread's
	// contribution to "work".
	advanced atomic.Uint64
}

// NewClock returns a clock starting at the given origin. A child thread
// starts at its parent's clock value at spawn time.
func NewClock(origin Cycles) *Clock {
	c := &Clock{}
	c.now.Store(uint64(origin))
	return c
}

// Advance charges n cycles of computation to the clock.
func (c *Clock) Advance(n Cycles) {
	c.now.Add(uint64(n))
	c.advanced.Add(uint64(n))
}

// Now returns the clock's current virtual time.
func (c *Clock) Now() Cycles {
	return Cycles(c.now.Load())
}

// Work returns the total cycles charged via Advance (waiting excluded).
func (c *Clock) Work() Cycles {
	return Cycles(c.advanced.Load())
}

// WaitUntil advances the clock to at least t without charging work,
// modelling time spent blocked on another thread.
func (c *Clock) WaitUntil(t Cycles) {
	for {
		cur := c.now.Load()
		if uint64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, uint64(t)) {
			return
		}
	}
}

// SyncPoint carries virtual time between threads through a synchronization
// object, mirroring how a blocked acquire cannot complete before the
// corresponding release. Release publishes the releaser's clock; Acquire
// lifts the acquirer's clock to the latest published release time.
type SyncPoint struct {
	mu   sync.Mutex
	last Cycles
}

// Release records that the releasing thread reached time t.
func (s *SyncPoint) Release(t Cycles) {
	s.mu.Lock()
	if t > s.last {
		s.last = t
	}
	s.mu.Unlock()
}

// Acquire lifts clk to at least the last release time and returns the
// resulting clock value.
func (s *SyncPoint) Acquire(clk *Clock) Cycles {
	s.mu.Lock()
	last := s.last
	s.mu.Unlock()
	clk.WaitUntil(last)
	return clk.Now()
}

// Last returns the most recent release time recorded.
func (s *SyncPoint) Last() Cycles {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Accounting aggregates per-thread clocks into the two paper metrics.
type Accounting struct {
	mu     sync.Mutex
	clocks []*Clock
}

// Register adds a thread clock to the accounting group.
func (a *Accounting) Register(c *Clock) {
	a.mu.Lock()
	a.clocks = append(a.clocks, c)
	a.mu.Unlock()
}

// Work returns the summed Advance charges of all registered clocks — the
// paper's "work" metric (total CPU utilization, measured there via the
// cgroup cpuacct controller).
func (a *Accounting) Work() Cycles {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total Cycles
	for _, c := range a.clocks {
		total += c.Work()
	}
	return total
}

// MaxNow returns the largest clock value across registered threads.
func (a *Accounting) MaxNow() Cycles {
	a.mu.Lock()
	defer a.mu.Unlock()
	var m Cycles
	for _, c := range a.clocks {
		if n := c.Now(); n > m {
			m = n
		}
	}
	return m
}

// Threads returns the number of registered clocks.
func (a *Accounting) Threads() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.clocks)
}
