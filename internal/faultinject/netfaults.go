package faultinject

// Network fault points for the distributed fabric: an
// http.RoundTripper wrapper that cuts uploads mid-body, duplicates
// deliveries, reorders them, or slows them — the loss modes a recorder
// streaming epoch deltas over a real network sees. Like every other
// point, firing is schedule-driven and deterministic; the wrapper adds
// no randomness of its own.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Network fault points (WrapRoundTripper wires them).
const (
	// NetDisconnect cuts the connection mid-request: roughly half the
	// body reaches the server, then the transport reports an injected
	// error. The server keeps whatever frames arrived whole.
	NetDisconnect Point = "net-disconnect"
	// NetDuplicate delivers the request twice; the caller sees the
	// second (duplicate) delivery's response.
	NetDuplicate Point = "net-duplicate"
	// NetReorder stashes the request and reports a transport error; the
	// stale request is delivered after the next request succeeds —
	// frames arriving out of order.
	NetReorder Point = "net-reorder"
	// NetSlow delays the request a few milliseconds before sending.
	NetSlow Point = "net-slow"
)

// WrapRoundTripper interposes the network fault points on an HTTP
// transport (nil inner = http.DefaultTransport). Request bodies are
// buffered so faulted deliveries can replay them; responses to
// duplicate and reordered deliveries are drained and discarded.
func (in *Injector) WrapRoundTripper(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &faultyTransport{inner: inner, in: in}
}

type faultyTransport struct {
	inner http.RoundTripper
	in    *Injector

	mu          sync.Mutex
	stashed     *http.Request
	stashedBody []byte
}

// cutReader feeds through n bytes, then fails — the read error aborts
// the transport's body upload partway, like a connection reset.
type cutReader struct {
	r io.Reader
	n int64
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.n <= 0 {
		return 0, fmt.Errorf("%w: net-disconnect mid-frame", ErrInjected)
	}
	if int64(len(p)) > c.n {
		p = p[:c.n]
	}
	n, err := c.r.Read(p)
	c.n -= int64(n)
	return n, err
}

// bufferBody drains and returns a request's body (nil body = nil).
func bufferBody(req *http.Request) ([]byte, error) {
	if req.Body == nil {
		return nil, nil
	}
	defer req.Body.Close()
	return io.ReadAll(req.Body)
}

// withBody clones the request around a replayable in-memory body.
func withBody(req *http.Request, body []byte) *http.Request {
	r := req.Clone(req.Context())
	if body == nil {
		r.Body = nil
		return r
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	r.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(body)), nil
	}
	return r
}

// discard drains and closes a response nobody will read.
func discard(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// RoundTrip implements http.RoundTripper with the four network points.
func (t *faultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	body, err := bufferBody(req)
	if err != nil {
		return nil, err
	}
	if t.in.Fire(NetSlow) {
		time.Sleep(2 * time.Millisecond)
	}
	if t.in.Fire(NetDisconnect) {
		if len(body) > 0 {
			// Deliver a truncated body so the server really sees a
			// mid-frame cut, then surface the injected transport error.
			r := req.Clone(req.Context())
			r.Body = io.NopCloser(&cutReader{r: bytes.NewReader(body), n: int64(len(body) / 2)})
			r.ContentLength = int64(len(body))
			if resp, err := t.inner.RoundTrip(r); err == nil {
				discard(resp)
			}
		}
		return nil, fmt.Errorf("%w: net-disconnect", ErrInjected)
	}
	if t.in.Fire(NetReorder) {
		t.mu.Lock()
		t.stashed, t.stashedBody = req.Clone(req.Context()), body
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: net-reorder delayed the request", ErrInjected)
	}
	resp, err := t.inner.RoundTrip(withBody(req, body))
	if err == nil && t.in.Fire(NetDuplicate) {
		discard(resp)
		resp, err = t.inner.RoundTrip(withBody(req, body))
	}
	if err == nil {
		// A stashed (reordered) request arrives late, after this newer
		// delivery succeeded. Its response is stale; drop it.
		t.mu.Lock()
		stale, staleBody := t.stashed, t.stashedBody
		t.stashed, t.stashedBody = nil, nil
		t.mu.Unlock()
		if stale != nil {
			if r2, e2 := t.inner.RoundTrip(withBody(stale, staleBody)); e2 == nil {
				discard(r2)
			}
		}
	}
	return resp, err
}
