package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "aux-loss:after=20,every=7;panic:after=500,count=1;sink-error"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(s.Rules))
	}
	if got := s.Rules[0]; got != (Rule{Point: AuxLoss, After: 20, Every: 7}) {
		t.Errorf("rule 0 = %+v", got)
	}
	if got := s.Rules[1]; got != (Rule{Point: WorkloadPanic, After: 500, Count: 1}) {
		t.Errorf("rule 1 = %+v", got)
	}
	reparsed, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.String() != s.String() {
		t.Errorf("spec does not round-trip: %q vs %q", reparsed.String(), s.String())
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	for _, spec := range []string{"warp-core-breach", "aux-loss:frequency=3", "aux-loss:after"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestEmptyScheduleNeverFires(t *testing.T) {
	in := New(Schedule{})
	for i := 0; i < 1000; i++ {
		for _, p := range Points() {
			if in.Fire(p) {
				t.Fatalf("empty schedule fired at %s", p)
			}
		}
	}
}

func TestRuleCounters(t *testing.T) {
	in := New(Schedule{Rules: []Rule{{Point: AuxLoss, After: 3, Every: 2, Count: 2}}})
	var fires []int
	for i := 1; i <= 12; i++ {
		if in.Fire(AuxLoss) {
			fires = append(fires, i)
		}
	}
	// Skip 3 hits, then every 2nd, at most twice: hits 4 and 6.
	if len(fires) != 2 || fires[0] != 4 || fires[1] != 6 {
		t.Errorf("fired at hits %v, want [4 6]", fires)
	}
	if in.Fired(AuxLoss) != 2 {
		t.Errorf("Fired = %d, want 2", in.Fired(AuxLoss))
	}
}

func TestRandomizedDeterministicBySeed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := Randomized(seed), Randomized(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d yields differing schedules: %q vs %q", seed, a, b)
		}
	}
	// Some pair of seeds must differ, or the derivation is broken.
	distinct := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		distinct[Randomized(seed).String()] = true
	}
	if len(distinct) < 2 {
		t.Error("20 seeds yielded a single schedule")
	}
}

type countingSink struct{ accepted int }

func (c *countingSink) WriteTrace(b []byte) int { c.accepted += len(b); return len(b) }

func TestWrapSinkTruncates(t *testing.T) {
	inner := &countingSink{}
	in := New(Schedule{Rules: []Rule{{Point: AuxLoss, Every: 2}}})
	sink := in.WrapSink(inner)
	buf := make([]byte, 10)
	// Hit 1 fires (After 0, every 2nd starting at the first eligible):
	// only half is offered; hit 2 passes through.
	if n := sink.WriteTrace(buf); n != 5 {
		t.Errorf("faulted write accepted %d, want 5", n)
	}
	if n := sink.WriteTrace(buf); n != 10 {
		t.Errorf("clean write accepted %d, want 10", n)
	}
	if in.DroppedBytes() != 5 {
		t.Errorf("DroppedBytes = %d, want 5", in.DroppedBytes())
	}
}

func TestWrapWriterFails(t *testing.T) {
	var out bytes.Buffer
	in := New(Schedule{Rules: []Rule{{Point: SinkError, After: 1, Count: 1}}})
	w := in.WrapWriter(&out)
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if _, err := w.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write error = %v, want ErrInjected", err)
	}
	if _, err := w.Write([]byte("ok2")); err != nil {
		t.Fatalf("third write failed: %v", err)
	}
	if out.String() != "okok2" {
		t.Errorf("inner writer saw %q", out.String())
	}
}

func TestWrapReaderCorrupts(t *testing.T) {
	in := New(Schedule{Rules: []Rule{{Point: GobCorrupt, Count: 1}}})
	r := in.WrapReader(strings.NewReader("abcd"))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("abcd")) {
		t.Error("reader did not corrupt the stream")
	}
	if in.Fired(GobCorrupt) != 1 {
		t.Errorf("Fired = %d, want 1", in.Fired(GobCorrupt))
	}
}

func TestSummary(t *testing.T) {
	in := New(Schedule{Rules: []Rule{{Point: AuxLoss}, {Point: WorkloadPanic, Count: 1}}})
	in.Fire(AuxLoss)
	in.Fire(AuxLoss)
	in.Fire(WorkloadPanic)
	if got := in.Summary(); got != "aux-loss=2 panic=1" {
		t.Errorf("Summary = %q", got)
	}
}

func TestParseJournalPoints(t *testing.T) {
	s, err := Parse("crash:after=4,count=1;journal-torn;journal-short-prefix;journal-bit-flip:every=3;journal-fsync-error")
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{Crash, JournalTorn, JournalShortPrefix, JournalBitFlip, JournalFsyncError}
	if len(s.Rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(s.Rules), len(want))
	}
	for i, p := range want {
		if s.Rules[i].Point != p {
			t.Errorf("rule %d point = %s, want %s", i, s.Rules[i].Point, p)
		}
	}
}

func TestWrapJournalFileTorn(t *testing.T) {
	var out bytes.Buffer
	in := New(Schedule{Rules: []Rule{{Point: JournalTorn, After: 1, Count: 1}}})
	f := in.WrapJournalFile(nopJournalFile{&out})
	frame := []byte("0123456789abcdef")
	if n, err := f.Write(frame); err != nil || n != len(frame) {
		t.Fatalf("clean write = %d,%v", n, err)
	}
	n, err := f.Write(frame)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v, want ErrInjected", err)
	}
	if n != len(frame)/2 {
		t.Errorf("torn write persisted %d bytes, want %d", n, len(frame)/2)
	}
	if out.Len() != len(frame)+len(frame)/2 {
		t.Errorf("inner file holds %d bytes, want %d", out.Len(), len(frame)+len(frame)/2)
	}
}

func TestWrapJournalFileShortPrefix(t *testing.T) {
	var out bytes.Buffer
	in := New(Schedule{Rules: []Rule{{Point: JournalShortPrefix, Count: 1}}})
	f := in.WrapJournalFile(nopJournalFile{&out})
	n, err := f.Write([]byte("0123456789abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short-prefix write error = %v, want ErrInjected", err)
	}
	if n != 3 || out.Len() != 3 {
		t.Errorf("persisted %d bytes (inner %d), want 3", n, out.Len())
	}
}

func TestWrapJournalFileBitFlip(t *testing.T) {
	var out bytes.Buffer
	in := New(Schedule{Rules: []Rule{{Point: JournalBitFlip, Count: 1}}})
	f := in.WrapJournalFile(nopJournalFile{&out})
	frame := []byte("0123456789abcdef")
	n, err := f.Write(frame)
	if err != nil || n != len(frame) {
		t.Fatalf("bit-flip write = %d,%v; the writer must not notice", n, err)
	}
	if bytes.Equal(out.Bytes(), frame) {
		t.Error("no byte was flipped")
	}
	diff := 0
	for i := range frame {
		if out.Bytes()[i] != frame[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	if !bytes.Equal(frame, []byte("0123456789abcdef")) {
		t.Error("caller's buffer was mutated")
	}
}

func TestWrapJournalFileFsyncError(t *testing.T) {
	in := New(Schedule{Rules: []Rule{{Point: JournalFsyncError, After: 1, Count: 1}}})
	f := in.WrapJournalFile(nopJournalFile{io.Discard})
	if err := f.Sync(); err != nil {
		t.Fatalf("clean sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync error = %v, want ErrInjected", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// nopJournalFile adapts a plain io.Writer to the journal file shape.
type nopJournalFile struct{ w io.Writer }

func (n nopJournalFile) Write(b []byte) (int, error) { return n.w.Write(b) }
func (n nopJournalFile) Sync() error                 { return nil }
func (n nopJournalFile) Close() error                { return nil }
