// Package faultinject provides deterministic, schedule-driven fault
// injection for the recording and serving pipeline. A Schedule names
// fault points and counter-based firing rules; an Injector executes it
// with no wall-clock or global-randomness dependence, so a fixed
// schedule reproduces the exact same fault sequence run after run — the
// property the chaos suite's determinism invariants build on.
//
// Faults are wired behind interfaces the pipeline already has:
//
//   - WrapSink interposes on pt.ByteSink, truncating accepted writes
//     exactly as an overrunning AUX ring does, so injected loss flows
//     through the same LostBytes accounting as genuine loss;
//   - WrapWriter fails io.Writer writes (export sinks);
//   - WrapReader corrupts bytes on an io.Reader (gob load paths);
//   - Fire is the generic hook for call-site faults (workload panics at
//     commit boundaries, slowed analysis folds).
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/repro/inspector/internal/pt"
)

// Point names one fault-injection site.
type Point string

// Fault points the pipeline exposes.
const (
	// AuxLoss truncates PT sink writes (AUX ring overrun semantics).
	AuxLoss Point = "aux-loss"
	// SinkError fails writes on a wrapped io.Writer.
	SinkError Point = "sink-error"
	// WorkloadPanic panics on the recording thread at a commit boundary.
	WorkloadPanic Point = "panic"
	// GobCorrupt flips a byte on a wrapped reader (CPG load paths).
	GobCorrupt Point = "gob-corrupt"
	// SlowFold delays a live analysis fold. It fires inside the fold's
	// data-edge derivation workers (one hit per worker per fold), so a
	// parallel fold can stall on any subset of its workers.
	SlowFold Point = "slow-fold"
	// Crash SIGKILLs the process at a commit boundary (inspector-run
	// wires it behind -faults; the kill-recover chaos sweep drives it).
	Crash Point = "crash"
	// JournalTorn cuts a journal frame write in half and fails it — the
	// classic torn record a mid-write crash leaves.
	JournalTorn Point = "journal-torn"
	// JournalShortPrefix cuts a journal frame write inside its 8-byte
	// length/CRC prefix, the smallest possible tear.
	JournalShortPrefix Point = "journal-short-prefix"
	// JournalBitFlip flips one byte mid-frame but reports the write as
	// fully successful — silent media corruption a CRC must catch.
	JournalBitFlip Point = "journal-bit-flip"
	// JournalFsyncError fails a journal segment fsync.
	JournalFsyncError Point = "journal-fsync-error"
	// CPGFileTorn cuts a columnar CPG file write in half and fails it —
	// the truncated artifact a crash mid-export leaves behind.
	CPGFileTorn Point = "cpgfile-torn"
	// CPGFileBitFlip flips one byte mid-write but reports full success —
	// silent media corruption the section CRCs must catch on read.
	CPGFileBitFlip Point = "cpgfile-bit-flip"
)

// Points lists every defined fault point. The network points stay at
// the end: Randomized draws per point in this order, so appending keeps
// every existing seed's schedule for the older points unchanged.
func Points() []Point {
	return []Point{
		AuxLoss, SinkError, WorkloadPanic, GobCorrupt, SlowFold,
		Crash, JournalTorn, JournalShortPrefix, JournalBitFlip, JournalFsyncError,
		CPGFileTorn, CPGFileBitFlip,
		NetDisconnect, NetDuplicate, NetReorder, NetSlow,
	}
}

// ErrInjected tags failures produced by injected faults.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule fires faults at one point on a deterministic hit counter: skip
// the first After hits, then fire every Every-th hit (Every 0 or 1 means
// every hit), at most Count times (0 = unlimited).
type Rule struct {
	Point Point
	After uint64
	Every uint64
	Count uint64
}

// String renders the rule in schedule-spec form.
func (r Rule) String() string {
	parts := []string{}
	if r.After > 0 {
		parts = append(parts, "after="+strconv.FormatUint(r.After, 10))
	}
	if r.Every > 1 {
		parts = append(parts, "every="+strconv.FormatUint(r.Every, 10))
	}
	if r.Count > 0 {
		parts = append(parts, "count="+strconv.FormatUint(r.Count, 10))
	}
	if len(parts) == 0 {
		return string(r.Point)
	}
	return string(r.Point) + ":" + strings.Join(parts, ",")
}

// Schedule is a full fault plan: one or more rules.
type Schedule struct {
	Rules []Rule
}

// String renders the schedule in the spec form Parse accepts.
func (s Schedule) String() string {
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// Parse reads a schedule spec: semicolon-separated rules of the form
//
//	<point>[:after=N][,every=N][,count=N]
//
// e.g. "aux-loss:after=20,every=7;panic:after=500,count=1". An empty
// spec is the empty (fault-free) schedule.
func Parse(spec string) (Schedule, error) {
	var s Schedule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, argstr, _ := strings.Cut(part, ":")
		r := Rule{Point: Point(strings.TrimSpace(name))}
		if !validPoint(r.Point) {
			return Schedule{}, fmt.Errorf("faultinject: unknown fault point %q (have %v)", name, Points())
		}
		if argstr != "" {
			for _, arg := range strings.Split(argstr, ",") {
				key, val, ok := strings.Cut(strings.TrimSpace(arg), "=")
				if !ok {
					return Schedule{}, fmt.Errorf("faultinject: bad rule argument %q in %q", arg, part)
				}
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return Schedule{}, fmt.Errorf("faultinject: bad value in %q: %w", part, err)
				}
				switch key {
				case "after":
					r.After = n
				case "every":
					r.Every = n
				case "count":
					r.Count = n
				default:
					return Schedule{}, fmt.Errorf("faultinject: unknown rule key %q in %q", key, part)
				}
			}
		}
		s.Rules = append(s.Rules, r)
	}
	return s, nil
}

func validPoint(p Point) bool {
	for _, known := range Points() {
		if p == known {
			return true
		}
	}
	return false
}

// Randomized derives a schedule from a seed over the given points (all
// defined points if none given). Derivation uses its own PRNG instance,
// so equal seeds always yield equal schedules — the chaos suite sweeps
// seeds and replays any failure by seed alone. Roughly half the points
// get a rule; rule parameters are drawn small enough to actually fire
// inside short test workloads.
func Randomized(seed int64, points ...Point) Schedule {
	if len(points) == 0 {
		points = Points()
	}
	rng := rand.New(rand.NewSource(seed))
	var s Schedule
	for _, p := range points {
		if rng.Intn(2) == 0 {
			continue
		}
		s.Rules = append(s.Rules, Rule{
			Point: p,
			After: uint64(rng.Intn(50)),
			Every: uint64(1 + rng.Intn(8)),
			Count: uint64(rng.Intn(4)), // 0 = unlimited
		})
	}
	return s
}

// ruleState is one rule's live counters.
type ruleState struct {
	rule  Rule
	hits  uint64
	fired uint64
}

// fire advances the hit counter and reports whether this hit faults.
func (st *ruleState) fire() bool {
	st.hits++
	if st.hits <= st.rule.After {
		return false
	}
	if st.rule.Count > 0 && st.fired >= st.rule.Count {
		return false
	}
	every := st.rule.Every
	if every == 0 {
		every = 1
	}
	if (st.hits-st.rule.After-1)%every != 0 {
		return false
	}
	st.fired++
	return true
}

// Injector executes one Schedule. Safe for concurrent use: recording
// threads, the serving path, and test assertions may all hit it.
type Injector struct {
	mu      sync.Mutex
	rules   map[Point][]*ruleState
	dropped uint64
}

// New builds an injector for the schedule.
func New(s Schedule) *Injector {
	in := &Injector{rules: make(map[Point][]*ruleState)}
	for _, r := range s.Rules {
		in.rules[r.Point] = append(in.rules[r.Point], &ruleState{rule: r})
	}
	return in
}

// Fire counts one hit at point p and reports whether a fault fires.
// Call sites decide what the fault means (truncate, error, panic,
// sleep); the injector only sequences them deterministically.
func (in *Injector) Fire(p Point) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	hit := false
	for _, st := range in.rules[p] {
		if st.fire() {
			hit = true
		}
	}
	return hit
}

// Fired returns how many faults have fired at point p.
func (in *Injector) Fired(p Point) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, st := range in.rules[p] {
		n += st.fired
	}
	return n
}

// DroppedBytes returns the trace bytes the lossy sink wrapper dropped.
func (in *Injector) DroppedBytes() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dropped
}

// Summary renders the fired counters, points sorted, for reports:
// "aux-loss=3 panic=1" ("" when nothing fired).
func (in *Injector) Summary() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	totals := map[Point]uint64{}
	for p, states := range in.rules {
		for _, st := range states {
			totals[p] += st.fired
		}
	}
	var keys []string
	for p, n := range totals {
		if n > 0 {
			keys = append(keys, fmt.Sprintf("%s=%d", p, n))
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

// WrapSink interposes the aux-loss point on a PT byte sink. When the
// point fires, only half the buffered bytes are offered to the inner
// sink — a partial accept, byte-for-byte the contract of an overrunning
// AUX ring — so the encoder's LostBytes accounting and everything above
// it see injected loss exactly as genuine loss.
func (in *Injector) WrapSink(inner pt.ByteSink) pt.ByteSink {
	return &lossySink{inner: inner, in: in}
}

type lossySink struct {
	inner pt.ByteSink
	in    *Injector
}

// WriteTrace implements pt.ByteSink.
func (s *lossySink) WriteTrace(b []byte) int {
	if !s.in.Fire(AuxLoss) {
		return s.inner.WriteTrace(b)
	}
	keep := len(b) / 2
	n := s.inner.WriteTrace(b[:keep])
	s.in.mu.Lock()
	s.in.dropped += uint64(len(b) - n)
	s.in.mu.Unlock()
	return n
}

// WrapWriter interposes the sink-error point on an io.Writer: when the
// point fires, the write fails with an error wrapping ErrInjected.
func (in *Injector) WrapWriter(w io.Writer) io.Writer {
	return &failingWriter{inner: w, in: in}
}

type failingWriter struct {
	inner io.Writer
	in    *Injector
}

func (f *failingWriter) Write(b []byte) (int, error) {
	if f.in.Fire(SinkError) {
		return 0, fmt.Errorf("%w: sink write error", ErrInjected)
	}
	return f.inner.Write(b)
}

// WrapReader interposes the gob-corrupt point on an io.Reader: when the
// point fires, the first byte of the chunk read is flipped — the
// smallest corruption a decoder must survive gracefully.
func (in *Injector) WrapReader(r io.Reader) io.Reader {
	return &corruptReader{inner: r, in: in}
}

type corruptReader struct {
	inner io.Reader
	in    *Injector
}

func (c *corruptReader) Read(b []byte) (int, error) {
	n, err := c.inner.Read(b)
	if n > 0 && c.in.Fire(GobCorrupt) {
		b[0] ^= 0xFF
	}
	return n, err
}

// WrapJournalFile interposes the journal crash points on a journal
// segment file. The Writer issues each record as one Write call, so
// the wrappers model real crash shapes precisely:
//
//   - journal-torn: write half the frame, then fail (a crash mid-write
//     leaves a prefix whose CRC cannot match);
//   - journal-short-prefix: write at most 3 bytes — the tear lands
//     inside the frame's own length/CRC prefix;
//   - journal-bit-flip: flip one byte mid-frame and report full
//     success (the writer never learns; only recovery's CRC can);
//   - journal-fsync-error: fail Sync.
func (in *Injector) WrapJournalFile(inner journalFile) journalFile {
	return &faultyJournalFile{inner: inner, in: in}
}

// journalFile mirrors journal.File structurally, so this package stays
// a leaf (no import of internal/journal) while wrappers still satisfy
// the journal's Options.OpenFile hook.
type journalFile interface {
	io.Writer
	Sync() error
	Close() error
}

type faultyJournalFile struct {
	inner journalFile
	in    *Injector
}

func (f *faultyJournalFile) Write(b []byte) (int, error) {
	switch {
	case f.in.Fire(JournalShortPrefix):
		keep := min(3, len(b))
		n, _ := f.inner.Write(b[:keep])
		return n, fmt.Errorf("%w: journal write torn inside frame prefix", ErrInjected)
	case f.in.Fire(JournalTorn):
		n, _ := f.inner.Write(b[:len(b)/2])
		return n, fmt.Errorf("%w: journal write torn mid-record", ErrInjected)
	case len(b) > 0 && f.in.Fire(JournalBitFlip):
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 0x10
		if n, err := f.inner.Write(flipped); err != nil {
			return n, err
		}
		return len(b), nil
	}
	return f.inner.Write(b)
}

func (f *faultyJournalFile) Sync() error {
	if f.in.Fire(JournalFsyncError) {
		return fmt.Errorf("%w: journal fsync error", ErrInjected)
	}
	return f.inner.Sync()
}

func (f *faultyJournalFile) Close() error { return f.inner.Close() }

// WrapCPGFile interposes the columnar-CPG crash points on an export
// writer:
//
//   - cpgfile-torn: write half the chunk, then fail (a crash mid-export;
//     with atomicio the temp file is discarded, without it a truncated
//     artifact survives and the header/section parse must reject it);
//   - cpgfile-bit-flip: flip one byte mid-chunk and report full success
//     (the writer never learns; only a section CRC can).
func (in *Injector) WrapCPGFile(w io.Writer) io.Writer {
	return &faultyCPGWriter{inner: w, in: in}
}

type faultyCPGWriter struct {
	inner io.Writer
	in    *Injector
}

func (f *faultyCPGWriter) Write(b []byte) (int, error) {
	switch {
	case f.in.Fire(CPGFileTorn):
		n, _ := f.inner.Write(b[:len(b)/2])
		return n, fmt.Errorf("%w: cpg file write torn mid-chunk", ErrInjected)
	case len(b) > 0 && f.in.Fire(CPGFileBitFlip):
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 0x04
		if n, err := f.inner.Write(flipped); err != nil {
			return n, err
		}
		return len(b), nil
	}
	return f.inner.Write(b)
}
