package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// netRecorder is a server that logs every delivered body.
type netRecorder struct {
	mu     sync.Mutex
	bodies [][]byte
}

func (nr *netRecorder) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Read what arrives, even a truncated body: the prefix that made
		// it through a cut connection is exactly what we must observe.
		data, _ := io.ReadAll(r.Body)
		nr.mu.Lock()
		nr.bodies = append(nr.bodies, data)
		nr.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (nr *netRecorder) deliveries() [][]byte {
	nr.mu.Lock()
	defer nr.mu.Unlock()
	return append([][]byte(nil), nr.bodies...)
}

func post(t *testing.T, c *http.Client, url string, body []byte) error {
	t.Helper()
	resp, err := c.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return err
}

func TestNetDisconnectDeliversPrefixThenErrors(t *testing.T) {
	nr := &netRecorder{}
	ts := httptest.NewServer(nr.handler())
	defer ts.Close()
	in := New(Schedule{Rules: []Rule{{Point: NetDisconnect, Count: 1}}})
	c := &http.Client{Transport: in.WrapRoundTripper(nil)}
	body := bytes.Repeat([]byte("frame"), 100)

	if err := post(t, c, ts.URL, body); !errors.Is(err, ErrInjected) {
		t.Fatalf("first post err = %v, want injected disconnect", err)
	}
	// The retry goes through untouched.
	if err := post(t, c, ts.URL, body); err != nil {
		t.Fatal(err)
	}
	got := nr.deliveries()
	if len(got) != 2 {
		t.Fatalf("server saw %d deliveries, want 2 (cut prefix + retry)", len(got))
	}
	if len(got[0]) >= len(body) || !bytes.Equal(got[0], body[:len(got[0])]) {
		t.Fatalf("cut delivery carried %d bytes, want a strict prefix of %d", len(got[0]), len(body))
	}
	if !bytes.Equal(got[1], body) {
		t.Fatal("retry body corrupted")
	}
}

func TestNetDuplicateDeliversTwice(t *testing.T) {
	nr := &netRecorder{}
	ts := httptest.NewServer(nr.handler())
	defer ts.Close()
	in := New(Schedule{Rules: []Rule{{Point: NetDuplicate, Count: 1}}})
	c := &http.Client{Transport: in.WrapRoundTripper(nil)}
	body := []byte("hello frames")

	if err := post(t, c, ts.URL, body); err != nil {
		t.Fatal(err)
	}
	got := nr.deliveries()
	if len(got) != 2 || !bytes.Equal(got[0], body) || !bytes.Equal(got[1], body) {
		t.Fatalf("server saw %d deliveries, want the same body twice", len(got))
	}
}

func TestNetReorderDeliversStaleAfterNext(t *testing.T) {
	nr := &netRecorder{}
	ts := httptest.NewServer(nr.handler())
	defer ts.Close()
	in := New(Schedule{Rules: []Rule{{Point: NetReorder, Count: 1}}})
	c := &http.Client{Transport: in.WrapRoundTripper(nil)}

	first, second := []byte("first-batch"), []byte("second-batch")
	if err := post(t, c, ts.URL, first); !errors.Is(err, ErrInjected) {
		t.Fatalf("reordered post err = %v, want injected", err)
	}
	if err := post(t, c, ts.URL, second); err != nil {
		t.Fatal(err)
	}
	got := nr.deliveries()
	if len(got) != 2 || !bytes.Equal(got[0], second) || !bytes.Equal(got[1], first) {
		t.Fatalf("deliveries = %q, want newer first then the stale one", got)
	}
}

func TestNetSlowStillDelivers(t *testing.T) {
	nr := &netRecorder{}
	ts := httptest.NewServer(nr.handler())
	defer ts.Close()
	in := New(Schedule{Rules: []Rule{{Point: NetSlow}}})
	c := &http.Client{Transport: in.WrapRoundTripper(nil)}
	if err := post(t, c, ts.URL, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if n := in.Fired(NetSlow); n == 0 {
		t.Fatal("net-slow never fired")
	}
	if got := nr.deliveries(); len(got) != 1 || !bytes.Equal(got[0], []byte("x")) {
		t.Fatalf("deliveries = %q", got)
	}
}
