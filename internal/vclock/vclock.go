// Package vclock implements fixed-width vector clocks as used by the
// INSPECTOR provenance algorithm (Mattern, "Virtual Time and Global States
// of Distributed Systems", 1989).
//
// A clock is a vector of logical timestamps, one slot per thread in the
// system. The provenance algorithm (paper §IV-B) maintains one clock per
// thread, per synchronization object, and per sub-computation; release
// operations publish the releasing thread's clock into the object's clock,
// and acquire operations merge the object's clock into the acquiring
// thread's clock. The component-wise partial order over the recorded
// sub-computation clocks is exactly the happens-before relation of the
// execution.
package vclock

import (
	"fmt"
	"strconv"
	"strings"
)

// Clock is a vector clock over a fixed set of threads. The zero-length
// Clock is valid and represents "no knowledge". Clocks are not safe for
// concurrent mutation; callers synchronize externally (in INSPECTOR every
// mutation happens inside a synchronization operation that is already
// serialized on the synchronization object).
type Clock []uint64

// New returns a zeroed clock with one slot per thread.
func New(threads int) Clock {
	return make(Clock, threads)
}

// Copy returns an independent copy of c.
func (c Clock) Copy() Clock {
	out := make(Clock, len(c))
	copy(out, c)
	return out
}

// Tick increments the slot for thread t and returns the new value.
func (c Clock) Tick(t int) uint64 {
	c[t]++
	return c[t]
}

// Set assigns value v to the slot for thread t.
func (c Clock) Set(t int, v uint64) {
	c[t] = v
}

// Get returns the value of slot t, or 0 if t is out of range. Out-of-range
// reads are defined because clocks of different widths may be compared when
// threads join an execution late.
func (c Clock) Get(t int) uint64 {
	if t < 0 || t >= len(c) {
		return 0
	}
	return c[t]
}

// Merge sets every slot of c to the maximum of its value and the
// corresponding slot of other. It implements the max-merge performed on
// both release (object <- thread) and acquire (thread <- object) in
// Algorithm 2. If other is wider than c, c is NOT grown; callers size
// clocks to the maximum thread count up front.
func (c Clock) Merge(other Clock) {
	n := len(c)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if other[i] > c[i] {
			c[i] = other[i]
		}
	}
}

// Merged returns a fresh clock holding the component-wise maximum of c and
// other, sized to the wider of the two.
func Merged(a, b Clock) Clock {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Clock, n)
	copy(out, a)
	out.Merge(b)
	return out
}

// Ordering is the result of comparing two vector clocks.
type Ordering int

const (
	// Equal means both clocks hold identical values in every slot.
	Equal Ordering = iota + 1
	// Before means the receiver happens-before the argument.
	Before
	// After means the argument happens-before the receiver.
	After
	// Concurrent means neither clock dominates the other.
	Concurrent
)

// String returns the conventional symbol for the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "="
	case Before:
		return "->"
	case After:
		return "<-"
	case Concurrent:
		return "||"
	default:
		return "?"
	}
}

// Compare returns the ordering of c relative to other under the standard
// component-wise vector-clock partial order.
func (c Clock) Compare(other Clock) Ordering {
	less, greater := false, false
	n := len(c)
	if len(other) > n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		a, b := c.Get(i), other.Get(i)
		switch {
		case a < b:
			less = true
		case a > b:
			greater = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// HappensBefore reports whether c strictly happens-before other.
func (c Clock) HappensBefore(other Clock) bool {
	return c.Compare(other) == Before
}

// ConcurrentWith reports whether c and other are incomparable.
func (c Clock) ConcurrentWith(other Clock) bool {
	return c.Compare(other) == Concurrent
}

// Equals reports whether the two clocks hold identical values (treating
// missing slots as zero).
func (c Clock) Equals(other Clock) bool {
	return c.Compare(other) == Equal
}

// String renders the clock as "[v0 v1 ...]".
func (c Clock) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, v := range c {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.FormatUint(v, 10))
	}
	sb.WriteByte(']')
	return sb.String()
}

// Parse parses the String representation back into a Clock. It accepts the
// exact format produced by String.
func Parse(s string) (Clock, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return nil, fmt.Errorf("vclock: parse %q: missing brackets", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return Clock{}, nil
	}
	fields := strings.Fields(body)
	out := make(Clock, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vclock: parse %q: slot %d: %w", s, i, err)
		}
		out[i] = v
	}
	return out, nil
}
