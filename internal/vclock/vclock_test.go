package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	c := New(4)
	if len(c) != 4 {
		t.Fatalf("len = %d, want 4", len(c))
	}
	for i, v := range c {
		if v != 0 {
			t.Errorf("slot %d = %d, want 0", i, v)
		}
	}
}

func TestTick(t *testing.T) {
	c := New(3)
	if got := c.Tick(1); got != 1 {
		t.Errorf("first tick = %d, want 1", got)
	}
	if got := c.Tick(1); got != 2 {
		t.Errorf("second tick = %d, want 2", got)
	}
	if c[0] != 0 || c[2] != 0 {
		t.Errorf("tick leaked into other slots: %v", c)
	}
}

func TestSetGet(t *testing.T) {
	c := New(2)
	c.Set(0, 7)
	if got := c.Get(0); got != 7 {
		t.Errorf("Get(0) = %d, want 7", got)
	}
	if got := c.Get(5); got != 0 {
		t.Errorf("out-of-range Get = %d, want 0", got)
	}
	if got := c.Get(-1); got != 0 {
		t.Errorf("negative Get = %d, want 0", got)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	c := Clock{1, 2, 3}
	d := c.Copy()
	d.Set(0, 99)
	if c[0] != 1 {
		t.Errorf("copy aliased original: %v", c)
	}
}

func TestMergeTakesMax(t *testing.T) {
	a := Clock{1, 5, 3}
	b := Clock{2, 4, 3}
	a.Merge(b)
	want := Clock{2, 5, 3}
	if !a.Equals(want) {
		t.Errorf("merge = %v, want %v", a, want)
	}
}

func TestMergeShorterOther(t *testing.T) {
	a := Clock{1, 1, 1}
	a.Merge(Clock{5})
	if !a.Equals(Clock{5, 1, 1}) {
		t.Errorf("merge with shorter = %v", a)
	}
}

func TestMergedWidens(t *testing.T) {
	a := Clock{3}
	b := Clock{1, 2}
	m := Merged(a, b)
	if !m.Equals(Clock{3, 2}) {
		t.Errorf("Merged = %v, want [3 2]", m)
	}
	// Inputs untouched.
	if !a.Equals(Clock{3}) || !b.Equals(Clock{1, 2}) {
		t.Errorf("Merged mutated inputs: %v %v", a, b)
	}
}

func TestCompareCases(t *testing.T) {
	tests := []struct {
		name string
		a, b Clock
		want Ordering
	}{
		{"equal", Clock{1, 2}, Clock{1, 2}, Equal},
		{"before", Clock{1, 2}, Clock{1, 3}, Before},
		{"before strict all", Clock{0, 0}, Clock{1, 1}, Before},
		{"after", Clock{4, 2}, Clock{1, 2}, After},
		{"concurrent", Clock{1, 0}, Clock{0, 1}, Concurrent},
		{"different widths equal", Clock{1, 0}, Clock{1}, Equal},
		{"different widths before", Clock{1}, Clock{1, 4}, Before},
		{"empty vs empty", Clock{}, Clock{}, Equal},
		{"empty vs nonzero", Clock{}, Clock{1}, Before},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	a := Clock{1, 2, 3}
	b := Clock{2, 2, 3}
	if a.Compare(b) != Before || b.Compare(a) != After {
		t.Errorf("antisymmetry violated: %v vs %v", a.Compare(b), b.Compare(a))
	}
}

func TestHappensBeforePredicates(t *testing.T) {
	a := Clock{1, 0}
	b := Clock{1, 1}
	if !a.HappensBefore(b) {
		t.Error("a should happen before b")
	}
	if b.HappensBefore(a) {
		t.Error("b should not happen before a")
	}
	c := Clock{0, 2}
	if !a.ConcurrentWith(c) {
		t.Error("a and c should be concurrent")
	}
	if a.HappensBefore(a) {
		t.Error("happens-before must be irreflexive")
	}
}

func TestOrderingString(t *testing.T) {
	tests := []struct {
		o    Ordering
		want string
	}{
		{Equal, "="}, {Before, "->"}, {After, "<-"}, {Concurrent, "||"}, {Ordering(0), "?"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Ordering(%d).String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	cases := []Clock{{}, {0}, {1, 2, 3}, {18446744073709551615}}
	for _, c := range cases {
		s := c.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !got.Equals(c) {
			t.Errorf("round trip %q -> %v, want %v", s, got, c)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "1 2", "[1 x]", "[", "1 2]"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

// randomClock generates bounded clocks so that quick-check explores
// comparable as well as concurrent pairs.
func randomClock(r *rand.Rand, n int) Clock {
	c := New(n)
	for i := range c {
		c[i] = uint64(r.Intn(4))
	}
	return c
}

func TestQuickMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClock(r, 5), randomClock(r, 5)
		return Merged(a, b).Equals(Merged(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomClock(r, 5)
		return Merged(a, a).Equals(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomClock(r, 4), randomClock(r, 4), randomClock(r, 4)
		return Merged(Merged(a, b), c).Equals(Merged(a, Merged(b, c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeDominates(t *testing.T) {
	// a <= merge(a,b) and b <= merge(a,b).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClock(r, 5), randomClock(r, 5)
		m := Merged(a, b)
		oa, ob := a.Compare(m), b.Compare(m)
		return (oa == Before || oa == Equal) && (ob == Before || ob == Equal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareDual(t *testing.T) {
	// Compare(a,b) is the dual of Compare(b,a).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomClock(r, 4), randomClock(r, 4)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			return ba == Equal
		case Before:
			return ba == After
		case After:
			return ba == Before
		case Concurrent:
			return ba == Concurrent
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHappensBeforeTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomClock(r, 4)
		b := Merged(a, randomClock(r, 4))
		b.Tick(0)
		c := Merged(b, randomClock(r, 4))
		c.Tick(1)
		// a < b and b < c by construction, so a < c must hold.
		return a.HappensBefore(b) && b.HappensBefore(c) && a.HappensBefore(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerge(b *testing.B) {
	a := New(16)
	c := New(16)
	for i := range c {
		c[i] = uint64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}

func BenchmarkCompare(b *testing.B) {
	x := Clock{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	y := x.Copy()
	y[7] = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}
