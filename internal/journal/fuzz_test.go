package journal_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/repro/inspector/internal/journal"
)

// FuzzJournalRecords throws arbitrary bytes at the segment decoder as a
// lone journal-000001.isj. The contract under attack: Recover never
// panics, and on any input it either fails cleanly (nothing to recover)
// or returns a Recovery whose invariants hold — epoch equals replayed
// records, a tear or missing seal always reads as unsealed, and asking
// again for the epoch it just recovered reproduces the same answer.
func FuzzJournalRecords(f *testing.F) {
	// Seed with a real journal and characteristic damage so the fuzzer
	// starts inside the format rather than rediscovering the magic.
	seedDir := f.TempDir()
	writeJournal(&testing.T{}, seedDir, 2, 12, 99, journal.Options{})
	segs, err := filepath.Glob(filepath.Join(seedDir, "journal-*.isj"))
	if err != nil || len(segs) == 0 {
		f.Fatalf("seed journal: %v (%d segments)", err, len(segs))
	}
	valid, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:13]) // inside the preamble
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)*2/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("INSPISJ1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal-000001.isj"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := journal.Recover(dir, journal.RecoverOptions{})
		if err != nil {
			return // rejected cleanly: nothing usable to recover
		}
		if rep.Graph == nil || rep.Analysis == nil {
			t.Fatalf("accepted input yielded nil graph/analysis")
		}
		if rep.Epoch != uint64(rep.Records) {
			t.Fatalf("epoch %d != %d replayed records", rep.Epoch, rep.Records)
		}
		if rep.Sealed && rep.Degraded() {
			t.Fatal("sealed recovery marked degraded")
		}
		if rep.Epoch > 0 {
			again, err := journal.Recover(dir, journal.RecoverOptions{MaxEpoch: rep.Epoch})
			if err != nil {
				t.Fatalf("re-recover at epoch %d: %v", rep.Epoch, err)
			}
			if again.Epoch != rep.Epoch {
				t.Fatalf("re-recover epoch %d != %d", again.Epoch, rep.Epoch)
			}
		}
	})
}
