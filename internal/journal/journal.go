// Package journal makes CPG recording crash-durable: a write-ahead
// epoch journal that appends one checksummed record per analysis epoch,
// so a SIGKILL, OOM kill, or power cut loses at most the epochs after
// the last durable record instead of the whole run.
//
// A journal is a directory of segment files (journal-000001.isj,
// journal-000002.isj, ...). Each segment starts with an 8-byte magic
// and a little-endian uint32 format version, followed by a sequence of
// frames:
//
//	[uint32 payload length | uint32 CRC-32C of payload | payload]
//
// The payload's first byte is the record kind (header, epoch delta,
// seal); the rest is a self-contained gob stream. Every record carries
// its own gob type definitions on purpose: records stay independently
// decodable, so a torn tail never poisons the frames before it. The
// first frame of every segment is a header naming the run (random run
// id, app, thread capacity, segment sequence number, first epoch), so
// recovery detects mixed, reordered, or missing segments instead of
// splicing unrelated runs together.
//
// Epoch-delta payloads are core.EpochDelta values — exactly what
// IncrementalAnalyzer.FoldDelta emits — and recovery replays them
// through core.ApplyDelta + Fold, reproducing the recording's per-epoch
// Analyses byte-for-byte up to the last durable record (see
// delta_test.go in internal/core for the property). A clean close
// appends a seal record; its absence tells recovery the run was cut
// short, and the result is marked degraded with a truncated gap rather
// than passed off as complete.
package journal

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/wire"
)

// The frame codec (length/CRC framing, record kinds, segment preamble)
// lives in internal/wire, shared with the network ingest stream. The
// journal keeps local aliases for readability.
const (
	recHeader = wire.KindHeader
	recDelta  = wire.KindDelta
	recSeal   = wire.KindSeal

	frameOverhead = wire.FrameOverhead

	// DefaultSegmentBytes is the segment roll threshold.
	DefaultSegmentBytes = 64 << 20
	// DefaultSyncEvery is PolicyInterval's records-per-fsync.
	DefaultSyncEvery = 32
)

// Policy selects when appended records are fsynced to stable storage.
type Policy uint8

// Fsync policies.
const (
	// PolicyInterval fsyncs every SyncEvery records, at segment rolls,
	// and at seal — bounded loss, amortized cost. The default.
	PolicyInterval Policy = iota
	// PolicyAlways fsyncs after every record: an epoch is durable
	// before the workload proceeds past it.
	PolicyAlways
	// PolicyNone never fsyncs; durability is whatever the OS page
	// cache provides. Process death (SIGKILL) still loses nothing —
	// dirty pages belong to the kernel — but a machine crash can.
	PolicyNone
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyNone:
		return "none"
	default:
		return "interval"
	}
}

// ParsePolicy parses "always", "none", "interval", or "interval:N"
// (fsync every N records). The returned every is 0 unless the
// interval:N form was used.
func ParsePolicy(s string) (p Policy, every int, err error) {
	switch {
	case s == "always":
		return PolicyAlways, 0, nil
	case s == "none":
		return PolicyNone, 0, nil
	case s == "interval" || s == "":
		return PolicyInterval, 0, nil
	case len(s) > len("interval:") && s[:len("interval:")] == "interval:":
		if _, err := fmt.Sscanf(s[len("interval:"):], "%d", &every); err != nil || every < 1 {
			return 0, 0, fmt.Errorf("journal: bad fsync interval %q", s)
		}
		return PolicyInterval, every, nil
	}
	return 0, 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval[:N], none)", s)
}

// File is the handle a Writer appends to. *os.File satisfies it; tests
// and the fault injector substitute wrappers via Options.OpenFile.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Header is the first record of every segment.
type Header struct {
	// RunID ties a run's segments together (random hex unless the
	// caller pins one).
	RunID string
	// App names the recorded workload (informational).
	App string
	// Threads is the graph's thread-slot capacity; recovery rebuilds
	// the graph with it.
	Threads int
	// Segment is this file's 1-based sequence number.
	Segment uint64
	// BaseEpoch is the first epoch this segment records (the previous
	// segments' record count plus one).
	BaseEpoch uint64
}

// sealRecord is the clean-close marker.
type sealRecord struct {
	// FinalEpoch must match the last delta's epoch.
	FinalEpoch uint64
}

// Options configures a Writer.
type Options struct {
	// Dir is the journal directory (created if absent; must not
	// already contain journal segments).
	Dir string
	// Threads is the recorded graph's thread-slot capacity (required).
	Threads int
	// RunID overrides the generated run identity (tests).
	RunID string
	// App names the workload (informational, lands in headers).
	App string
	// Fsync is the durability policy.
	Fsync Policy
	// SyncEvery is PolicyInterval's records-per-fsync (default
	// DefaultSyncEvery).
	SyncEvery int
	// SegmentBytes rolls segments at this size (default
	// DefaultSegmentBytes).
	SegmentBytes int64
	// OpenFile creates segment files; the default is an exclusive
	// os.OpenFile. Tests and the fault injector interpose here.
	OpenFile func(name string) (File, error)
}

// segName returns the path of segment seq under dir.
func segName(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%06d.isj", seq))
}

// Writer appends epoch deltas to a journal. Methods are not
// goroutine-safe; the Recorder serializes access. The first write or
// sync error latches: every later call returns it and nothing more
// touches the file, so a torn record is the *last* thing in the
// journal, never the middle.
type Writer struct {
	opts      Options
	f         File
	seg       uint64
	segBytes  int64
	sinceSync int
	epoch     uint64
	err       error
	buf       []byte
}

// Create opens a fresh journal in opts.Dir and writes segment 1's
// header.
func Create(opts Options) (*Writer, error) {
	if opts.Threads < 1 {
		return nil, fmt.Errorf("journal: Threads must be positive, got %d", opts.Threads)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.OpenFile == nil {
		opts.OpenFile = func(name string) (File, error) {
			return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		}
	}
	if opts.RunID == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("journal: run id: %w", err)
		}
		opts.RunID = hex.EncodeToString(b[:])
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if segs, err := listSegments(opts.Dir); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		return nil, fmt.Errorf("journal: %s already contains %d segment(s); refusing to mix runs", opts.Dir, len(segs))
	}
	w := &Writer{opts: opts}
	if err := w.openSegment(1, 1); err != nil {
		return nil, err
	}
	return w, nil
}

// RunID returns the journal's run identity.
func (w *Writer) RunID() string { return w.opts.RunID }

// Err returns the latched error, if any.
func (w *Writer) Err() error { return w.err }

// openSegment creates segment seq and writes magic, version, and the
// header record.
func (w *Writer) openSegment(seq, baseEpoch uint64) error {
	f, err := w.opts.OpenFile(segName(w.opts.Dir, seq))
	if err != nil {
		w.err = fmt.Errorf("journal: open segment %d: %w", seq, err)
		return w.err
	}
	w.f, w.seg, w.segBytes, w.sinceSync = f, seq, 0, 0
	pre := wire.Preamble()
	if _, err := f.Write(pre); err != nil {
		w.err = fmt.Errorf("journal: segment %d preamble: %w", seq, err)
		return w.err
	}
	w.segBytes += int64(len(pre))
	return w.appendRecord(recHeader, &Header{
		RunID:     w.opts.RunID,
		App:       w.opts.App,
		Threads:   w.opts.Threads,
		Segment:   seq,
		BaseEpoch: baseEpoch,
	})
}

// appendRecord frames and writes one record via the shared codec, then
// issues the whole frame as a single Write (so an injected short write
// models a torn record, not interleaved garbage).
func (w *Writer) appendRecord(kind byte, payload any) error {
	if w.err != nil {
		return w.err
	}
	buf, err := wire.AppendFrame(w.buf[:0], kind, payload)
	if err != nil {
		w.err = fmt.Errorf("journal: %w", err)
		return w.err
	}
	w.buf = buf
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("journal: segment %d append: %w", w.seg, err)
		return w.err
	}
	w.segBytes += int64(len(w.buf))
	return nil
}

// Append journals one epoch delta, rolling the segment and applying the
// fsync policy as configured.
func (w *Writer) Append(d *core.EpochDelta) error {
	if w.err != nil {
		return w.err
	}
	// Roll before the append when the segment has content and this
	// record would cross the threshold. The estimate uses the previous
	// record sizes only through segBytes; an oversized single record
	// simply lands in its own segment.
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.roll(d.Epoch); err != nil {
			return err
		}
	}
	if err := w.appendRecord(recDelta, d); err != nil {
		return err
	}
	w.epoch = d.Epoch
	w.sinceSync++
	switch w.opts.Fsync {
	case PolicyAlways:
		return w.sync()
	case PolicyInterval:
		if w.sinceSync >= w.opts.SyncEvery {
			return w.sync()
		}
	}
	return nil
}

// roll syncs and closes the current segment and opens the next.
func (w *Writer) roll(baseEpoch uint64) error {
	if w.opts.Fsync != PolicyNone {
		if err := w.sync(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("journal: segment %d close: %w", w.seg, err)
		return w.err
	}
	return w.openSegment(w.seg+1, baseEpoch)
}

// sync fsyncs the current segment.
func (w *Writer) sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: segment %d fsync: %w", w.seg, err)
		return w.err
	}
	w.sinceSync = 0
	return nil
}

// Seal appends the clean-close record, makes the journal durable
// (subject to PolicyNone), and closes it. finalEpoch must be the last
// appended delta's epoch; recovery cross-checks it.
func (w *Writer) Seal(finalEpoch uint64) error {
	if w.err != nil {
		return w.err
	}
	if finalEpoch != w.epoch {
		w.err = fmt.Errorf("journal: seal epoch %d, last appended %d", finalEpoch, w.epoch)
		return w.err
	}
	if err := w.appendRecord(recSeal, &sealRecord{FinalEpoch: finalEpoch}); err != nil {
		return err
	}
	if w.opts.Fsync != PolicyNone {
		if err := w.sync(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("journal: segment %d close: %w", w.seg, err)
		return w.err
	}
	w.f = nil
	return nil
}

// Close closes the journal without sealing it (the error path: the
// journal reads as cut short, which is the truth). Best-effort sync
// first; a latched error is returned but does not block the close.
func (w *Writer) Close() error {
	if w.f == nil {
		return w.err
	}
	if w.err == nil && w.opts.Fsync != PolicyNone {
		w.sync()
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = fmt.Errorf("journal: segment %d close: %w", w.seg, err)
	}
	w.f = nil
	return w.err
}
