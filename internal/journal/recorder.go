package journal

import (
	"sync"

	"github.com/repro/inspector/internal/core"
)

// Recorder drives journaling from the runtime's commit hook: every N
// sealed sub-computations it folds one epoch (FoldDelta) and appends
// the delta to the Writer, synchronously on the sealing thread. The
// synchronous discipline is the durability contract — under
// PolicyAlways a workload cannot proceed past a seal whose epoch is not
// on stable storage — and it makes single-thread runs journal
// deterministically, which the kill-recover chaos sweep leans on.
//
// A journal write error latches: recording continues unharmed (the
// journal is an observer, never a gate on the workload), no further
// appends are attempted, and Err surfaces the failure at close.
type Recorder struct {
	// OnEpoch, when set before recording starts, observes every
	// journaled epoch (tests use it to capture the in-process analyses
	// the recovery property compares against). Called with the
	// recorder's lock held; keep it cheap.
	OnEpoch func(*core.Analysis, *core.EpochDelta)

	mu    sync.Mutex
	inc   *core.IncrementalAnalyzer
	w     *Writer
	every uint64
	seals uint64
	err   error
}

// NewRecorder prepares a recorder folding g into w every `every` seals
// (minimum 1: every seal journals an epoch).
func NewRecorder(g *core.Graph, w *Writer, every int) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{inc: core.NewIncrementalAnalyzer(g), w: w, every: uint64(every)}
}

// SetFoldWorkers caps the fold's data-edge derivation fan-out (0 =
// GOMAXPROCS, 1 = serial; see core.IncrementalAnalyzer.SetFoldWorkers).
// Call it before recording starts.
func (r *Recorder) SetFoldWorkers(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inc.SetFoldWorkers(n)
}

// CommitHook returns the callback to pass to RegisterCommitHook.
func (r *Recorder) CommitHook() func(core.SubID) {
	return func(core.SubID) {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.err != nil {
			return
		}
		r.seals++
		if r.seals%r.every == 0 {
			r.foldLocked()
		}
	}
}

// foldLocked seals one epoch and appends its delta.
func (r *Recorder) foldLocked() {
	a, d := r.inc.FoldDelta()
	if err := r.w.Append(d); err != nil {
		r.err = err
		return
	}
	if r.OnEpoch != nil {
		r.OnEpoch(a, d)
	}
}

// Epoch returns the number of journaled epochs so far.
func (r *Recorder) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inc.Epoch()
}

// Err returns the latched journal error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close folds a final epoch covering everything sealed since the last
// append and seals the journal (the clean-close marker recovery uses to
// distinguish a finished run from a killed one). On a latched error it
// closes the file without sealing — the journal then truthfully reads
// as cut short — and returns the original error.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.foldLocked()
	}
	if r.err != nil {
		r.w.Close()
		return r.err
	}
	if err := r.w.Seal(r.inc.Epoch()); err != nil {
		r.err = err
	}
	return r.err
}
