package journal_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/faultinject"
	"github.com/repro/inspector/internal/journal"
)

// liveRecording drives a deterministic random multithreaded recording
// step by step (the incremental-analysis test driver, reproduced here:
// journal tests need the same arbitrary-prefix control).
type liveRecording struct {
	g     *core.Graph
	recs  []*core.Recorder
	locks []*core.SyncObject
	r     *rand.Rand
}

func newLiveRecording(t testing.TB, threads int, seed int64) *liveRecording {
	t.Helper()
	g := core.NewGraph(threads)
	lr := &liveRecording{g: g, r: rand.New(rand.NewSource(seed))}
	for i := 0; i < threads; i++ {
		rec, err := core.NewRecorder(g, i, 0)
		if err != nil {
			t.Fatalf("recorder %d: %v", i, err)
		}
		lr.recs = append(lr.recs, rec)
	}
	lr.locks = []*core.SyncObject{
		g.NewSyncObject("m0", false),
		g.NewSyncObject("m1", false),
	}
	return lr
}

func (lr *liveRecording) step(t testing.TB) {
	t.Helper()
	rec := lr.recs[lr.r.Intn(len(lr.recs))]
	for i := 0; i < 1+lr.r.Intn(3); i++ {
		rec.OnRead(uint64(lr.r.Intn(32)))
		rec.OnWrite(uint64(lr.r.Intn(32)))
	}
	lock := lr.locks[lr.r.Intn(len(lr.locks))]
	sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}, 0)
	if err != nil {
		t.Fatalf("EndSub: %v", err)
	}
	rec.Release(lock, sc)
	rec.Acquire(lock)
}

func (lr *liveRecording) finish(t testing.TB) {
	t.Helper()
	for _, rec := range lr.recs {
		if _, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
			t.Fatalf("EndSub: %v", err)
		}
	}
}

func exportBytes(t testing.TB, a *core.Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	return buf.Bytes()
}

func dumpJSON(t testing.TB, g *core.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	return buf.Bytes()
}

// writeJournal records `steps` random steps with a fold every `foldEvery`
// seals, seals the journal, and returns the original graph plus the
// per-epoch in-process exports.
func writeJournal(t testing.TB, dir string, threads, steps int, seed int64, opts journal.Options) (*core.Graph, [][]byte) {
	t.Helper()
	opts.Dir = dir
	opts.Threads = threads
	w, err := journal.Create(opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	lr := newLiveRecording(t, threads, seed)
	rec := journal.NewRecorder(lr.g, w, 1)
	var exports [][]byte
	rec.OnEpoch = func(a *core.Analysis, _ *core.EpochDelta) {
		exports = append(exports, exportBytes(t, a))
	}
	hook := rec.CommitHook()
	for s := 0; s < steps; s++ {
		lr.step(t)
		hook(core.SubID{})
	}
	lr.finish(t)
	for range lr.recs {
		hook(core.SubID{})
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	return lr.g, exports
}

func TestRoundTripSealed(t *testing.T) {
	dir := t.TempDir()
	g, exports := writeJournal(t, dir, 2, 40, 1, journal.Options{App: "unit"})

	rep, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.Sealed || rep.Torn != nil || rep.Stopped {
		t.Fatalf("clean journal reads sealed=%v torn=%v stopped=%v", rep.Sealed, rep.Torn, rep.Stopped)
	}
	if rep.Epoch != uint64(len(exports)) || rep.Records != len(exports) {
		t.Fatalf("recovered %d records epoch %d, want %d", rep.Records, rep.Epoch, len(exports))
	}
	if rep.Header.App != "unit" || rep.Header.Threads != 2 || rep.Header.RunID == "" {
		t.Fatalf("header = %+v", rep.Header)
	}
	if got, want := dumpJSON(t, rep.Graph), dumpJSON(t, g); !bytes.Equal(got, want) {
		t.Fatal("recovered dump diverges from original graph")
	}
	if got, want := exportBytes(t, rep.Analysis), exports[len(exports)-1]; !bytes.Equal(got, want) {
		t.Fatal("recovered analysis diverges from final in-process fold")
	}
	if rep.Degraded() {
		t.Fatal("sealed journal recovered as degraded")
	}
}

func TestRecoverMaxEpochMatchesEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	_, exports := writeJournal(t, dir, 2, 30, 2, journal.Options{})
	for e := 1; e <= len(exports); e++ {
		rep, err := journal.Recover(dir, journal.RecoverOptions{MaxEpoch: uint64(e)})
		if err != nil {
			t.Fatalf("Recover(MaxEpoch=%d): %v", e, err)
		}
		if rep.Epoch != uint64(e) {
			t.Fatalf("MaxEpoch=%d recovered epoch %d", e, rep.Epoch)
		}
		if e < len(exports) && !rep.Stopped {
			t.Fatalf("MaxEpoch=%d not marked stopped", e)
		}
		if got, want := exportBytes(t, rep.Analysis), exports[e-1]; !bytes.Equal(got, want) {
			t.Fatalf("epoch %d replay diverges from in-process fold", e)
		}
		if rep.Stopped && rep.Degraded() {
			t.Fatalf("deliberate prefix replay at epoch %d marked degraded", e)
		}
	}
}

func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	g, exports := writeJournal(t, dir, 2, 60, 3, journal.Options{SegmentBytes: 2 << 10})
	rep, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rep.Segments) < 3 {
		t.Fatalf("only %d segments with a 2KiB threshold", len(rep.Segments))
	}
	if !rep.Sealed || rep.Epoch != uint64(len(exports)) {
		t.Fatalf("sealed=%v epoch=%d, want true/%d", rep.Sealed, rep.Epoch, len(exports))
	}
	if got, want := dumpJSON(t, rep.Graph), dumpJSON(t, g); !bytes.Equal(got, want) {
		t.Fatal("multi-segment recovery diverges from original graph")
	}
}

func TestUnsealedJournalMarkedTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := journal.Create(journal.Options{Dir: dir, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	lr := newLiveRecording(t, 1, 4)
	rec := journal.NewRecorder(lr.g, w, 1)
	hook := rec.CommitHook()
	for s := 0; s < 10; s++ {
		lr.step(t)
		hook(core.SubID{})
	}
	// No Close: the process "died" here.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Sealed || rep.Torn != nil {
		t.Fatalf("unsealed intact journal: sealed=%v torn=%v", rep.Sealed, rep.Torn)
	}
	if rep.Epoch != 10 {
		t.Fatalf("recovered epoch %d, want 10", rep.Epoch)
	}
	if !rep.Degraded() {
		t.Fatal("unsealed journal not marked degraded")
	}
	comp := rep.Analysis.Completeness()
	if comp.Complete || comp.GapIntervals != 1 {
		t.Fatalf("completeness = %+v, want one gap interval", comp)
	}
	gaps := rep.Graph.Gaps()
	if len(gaps) != 1 || len(gaps[0].Gaps) != 1 || gaps[0].Gaps[0].Kind != core.GapTruncated {
		t.Fatalf("gaps = %+v, want one truncated interval", gaps)
	}
}

// corrupt recovers a clean journal's segment list, applies mutate to the
// files, and returns the recovery of the damaged journal.
func damage(t testing.TB, dir string, mutate func(t testing.TB, segs []string)) *journal.Recovery {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.isj"))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, segs)
	rep, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover after damage: %v", err)
	}
	return rep
}

func TestTornTailTruncatedAtFirstBadByte(t *testing.T) {
	dir := t.TempDir()
	_, exports := writeJournal(t, dir, 2, 30, 5, journal.Options{})

	// Chop the single segment mid-way: recovery must stop at the torn
	// frame, report the cut, and still replay every complete record
	// byte-identically.
	rep := damage(t, dir, func(t testing.TB, segs []string) {
		data, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segs[0], data[:len(data)*2/3], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if rep.Sealed {
		t.Fatal("chopped journal reads sealed")
	}
	if rep.Torn == nil {
		t.Fatal("chopped journal reports no tear")
	}
	if rep.Epoch == 0 || rep.Epoch >= uint64(len(exports)) {
		t.Fatalf("recovered epoch %d of %d", rep.Epoch, len(exports))
	}
	if got, want := exportBytes(t, rep.Analysis), exports[rep.Epoch-1]; !bytes.Equal(got, want) {
		t.Fatal("torn-tail recovery diverges from the fold at the same epoch")
	}
	if !rep.Degraded() {
		t.Fatal("torn journal not marked degraded")
	}
	if rep.Torn.Epoch != rep.Epoch {
		t.Fatalf("torn info epoch %d, recovered %d", rep.Torn.Epoch, rep.Epoch)
	}
	if !strings.Contains(rep.Torn.String(), "short frame") && !strings.Contains(rep.Torn.String(), "decode") {
		t.Fatalf("unexpected tear reason: %s", rep.Torn)
	}
}

func TestBitFlipStopsReplayAtCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	_, exports := writeJournal(t, dir, 2, 30, 6, journal.Options{})

	// Flip one byte ~60% in: everything before must replay, everything
	// after — even though well-formed — must be dropped.
	var flipAt int
	rep := damage(t, dir, func(t testing.TB, segs []string) {
		data, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		flipAt = len(data) * 3 / 5
		data[flipAt] ^= 0x01
		if err := os.WriteFile(segs[0], data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if rep.Sealed {
		t.Fatal("bit-flipped journal reads sealed")
	}
	if rep.Torn == nil || rep.Torn.Reason != "bad CRC" {
		t.Fatalf("torn = %v, want a bad-CRC tear", rep.Torn)
	}
	if rep.Torn.Offset > int64(flipAt) {
		t.Fatalf("tear reported at 0x%x, after the flipped byte 0x%x", rep.Torn.Offset, flipAt)
	}
	if rep.Epoch == 0 || rep.Epoch >= uint64(len(exports)) {
		t.Fatalf("recovered epoch %d of %d", rep.Epoch, len(exports))
	}
	if got, want := exportBytes(t, rep.Analysis), exports[rep.Epoch-1]; !bytes.Equal(got, want) {
		t.Fatal("bit-flip recovery diverges from the fold at the same epoch")
	}
	if !rep.Degraded() {
		t.Fatal("bit-flipped journal not marked degraded")
	}
}

func TestTruncateRemovesTornTailPhysically(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 2, 40, 7, journal.Options{SegmentBytes: 2 << 10})

	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.isj"))
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, have %d", len(segs))
	}
	// Corrupt segment 2 mid-file; segments 3+ become unreachable.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := journal.Recover(dir, journal.RecoverOptions{Truncate: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn == nil {
		t.Fatal("no tear reported")
	}
	left, _ := filepath.Glob(filepath.Join(dir, "journal-*.isj"))
	if len(left) != 2 {
		t.Fatalf("%d segments left after truncation, want 2", len(left))
	}
	// The truncated journal re-recovers cleanly (still unsealed).
	rep2, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Torn != nil {
		t.Fatalf("tear survives physical truncation: %v", rep2.Torn)
	}
	if rep2.Sealed {
		t.Fatal("truncated journal reads sealed")
	}
	if rep2.Epoch != rep.Epoch {
		t.Fatalf("re-recovery epoch %d, want %d", rep2.Epoch, rep.Epoch)
	}
	if got, want := exportBytes(t, rep2.Analysis), exportBytes(t, rep.Analysis); !bytes.Equal(got, want) {
		t.Fatal("re-recovery diverges after truncation")
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	if _, err := journal.Recover(t.TempDir(), journal.RecoverOptions{}); err == nil {
		t.Error("empty directory accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal-000001.isj"), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Recover(dir, journal.RecoverOptions{}); err == nil {
		t.Error("garbage segment 1 accepted")
	}
}

func TestCreateRefusesExistingJournal(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, 1, 5, 8, journal.Options{})
	if _, err := journal.Create(journal.Options{Dir: dir, Threads: 1}); err == nil {
		t.Error("Create over an existing journal accepted")
	}
}

// syncCounter counts Sync calls through the OpenFile hook.
type syncCounter struct {
	f     journal.File
	syncs *int
}

func (s *syncCounter) Write(b []byte) (int, error) { return s.f.Write(b) }
func (s *syncCounter) Sync() error                 { *s.syncs++; return s.f.Sync() }
func (s *syncCounter) Close() error                { return s.f.Close() }

func countingOpts(syncs *int) journal.Options {
	return journal.Options{
		OpenFile: func(name string) (journal.File, error) {
			f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
			if err != nil {
				return nil, err
			}
			return &syncCounter{f: f, syncs: syncs}, nil
		},
	}
}

func TestFsyncPolicies(t *testing.T) {
	const steps = 20
	run := func(t testing.TB, opts journal.Options) int {
		syncs := 0
		o := countingOpts(&syncs)
		o.Fsync, o.SyncEvery = opts.Fsync, opts.SyncEvery
		writeJournal(t, t.TempDir(), 1, steps, 9, o)
		return syncs
	}
	// Every delta append plus the seal: one sync each. The recording
	// drives one epoch per step plus the finish seals and final fold.
	always := run(t, journal.Options{Fsync: journal.PolicyAlways})
	if always < steps {
		t.Errorf("PolicyAlways synced %d times over %d epochs", always, steps)
	}
	interval := run(t, journal.Options{Fsync: journal.PolicyInterval, SyncEvery: 8})
	if interval >= always || interval == 0 {
		t.Errorf("PolicyInterval(8) synced %d times (always: %d)", interval, always)
	}
	none := run(t, journal.Options{Fsync: journal.PolicyNone})
	if none != 0 {
		t.Errorf("PolicyNone synced %d times", none)
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in    string
		p     journal.Policy
		every int
		ok    bool
	}{
		{"always", journal.PolicyAlways, 0, true},
		{"none", journal.PolicyNone, 0, true},
		{"interval", journal.PolicyInterval, 0, true},
		{"", journal.PolicyInterval, 0, true},
		{"interval:4", journal.PolicyInterval, 4, true},
		{"interval:0", 0, 0, false},
		{"interval:x", 0, 0, false},
		{"sometimes", 0, 0, false},
	}
	for _, c := range cases {
		p, every, err := journal.ParsePolicy(c.in)
		if (err == nil) != c.ok || (c.ok && (p != c.p || every != c.every)) {
			t.Errorf("ParsePolicy(%q) = %v,%d,%v; want %v,%d ok=%v", c.in, p, every, err, c.p, c.every, c.ok)
		}
	}
}

// injected builds Options whose segment files run through the fault
// injector's journal wrapper.
func injectedOpts(in *faultinject.Injector) journal.Options {
	return journal.Options{
		OpenFile: func(name string) (journal.File, error) {
			f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
			if err != nil {
				return nil, err
			}
			return in.WrapJournalFile(f), nil
		},
	}
}

// recordWithFaults records steps through a faulty journal file and
// returns the recorder's latched error plus the per-epoch exports that
// succeeded before it.
func recordWithFaults(t testing.TB, dir string, steps int, in *faultinject.Injector) (error, [][]byte) {
	t.Helper()
	opts := injectedOpts(in)
	opts.Dir, opts.Threads, opts.Fsync = dir, 1, journal.PolicyAlways
	w, err := journal.Create(opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	lr := newLiveRecording(t, 1, 11)
	rec := journal.NewRecorder(lr.g, w, 1)
	var exports [][]byte
	rec.OnEpoch = func(a *core.Analysis, _ *core.EpochDelta) {
		exports = append(exports, exportBytes(t, a))
	}
	hook := rec.CommitHook()
	for s := 0; s < steps; s++ {
		lr.step(t)
		hook(core.SubID{})
	}
	lr.finish(t)
	hook(core.SubID{})
	return rec.Close(), exports
}

func TestInjectedTornRecord(t *testing.T) {
	for _, spec := range []string{
		"journal-torn:after=8,count=1",
		"journal-short-prefix:after=8,count=1",
	} {
		t.Run(spec, func(t *testing.T) {
			sched, err := faultinject.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			closeErr, exports := recordWithFaults(t, dir, 20, faultinject.New(sched))
			if !errors.Is(closeErr, faultinject.ErrInjected) {
				t.Fatalf("recorder close error = %v, want injected fault", closeErr)
			}
			rep, err := journal.Recover(dir, journal.RecoverOptions{})
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if rep.Sealed {
				t.Fatal("journal with torn record reads sealed")
			}
			if rep.Torn == nil {
				t.Fatal("torn record not detected")
			}
			if rep.Epoch != uint64(len(exports)) {
				t.Fatalf("recovered epoch %d, %d clean appends", rep.Epoch, len(exports))
			}
			if rep.Epoch > 0 {
				if got, want := exportBytes(t, rep.Analysis), exports[rep.Epoch-1]; !bytes.Equal(got, want) {
					t.Fatal("recovery diverges from last clean epoch")
				}
			}
			if !rep.Degraded() {
				t.Fatal("torn journal not marked degraded")
			}
		})
	}
}

func TestInjectedBitFlip(t *testing.T) {
	sched, err := faultinject.Parse("journal-bit-flip:after=8,count=1")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// The writer never sees the flip: the run completes and seals.
	closeErr, exports := recordWithFaults(t, dir, 20, faultinject.New(sched))
	if closeErr != nil {
		t.Fatalf("recorder close: %v", closeErr)
	}
	rep, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Sealed {
		t.Fatal("recovery trusted records past a bad CRC")
	}
	if rep.Torn == nil || rep.Torn.Reason != "bad CRC" {
		t.Fatalf("torn = %v, want bad CRC", rep.Torn)
	}
	if rep.Epoch == 0 || rep.Epoch >= uint64(len(exports)) {
		t.Fatalf("recovered epoch %d of %d: the flip must cut mid-journal", rep.Epoch, len(exports))
	}
	if got, want := exportBytes(t, rep.Analysis), exports[rep.Epoch-1]; !bytes.Equal(got, want) {
		t.Fatal("recovery diverges from the last epoch before the flip")
	}
}

func TestInjectedFsyncError(t *testing.T) {
	sched, err := faultinject.Parse("journal-fsync-error:after=5,count=1")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	closeErr, exports := recordWithFaults(t, dir, 20, faultinject.New(sched))
	if !errors.Is(closeErr, faultinject.ErrInjected) {
		t.Fatalf("recorder close error = %v, want injected fsync error", closeErr)
	}
	rep, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Sealed {
		t.Fatal("fsync-failed journal reads sealed")
	}
	// The record whose fsync failed did reach the file (only its
	// durability guarantee was lost), so recovery may see one epoch more
	// than was acknowledged — but never fewer.
	if rep.Epoch < uint64(len(exports)) || rep.Epoch > uint64(len(exports))+1 {
		t.Fatalf("recovered epoch %d, %d acknowledged appends", rep.Epoch, len(exports))
	}
	at, err := journal.Recover(dir, journal.RecoverOptions{MaxEpoch: uint64(len(exports))})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := exportBytes(t, at.Analysis), exports[len(exports)-1]; !bytes.Equal(got, want) {
		t.Fatal("acknowledged prefix diverges after fsync failure")
	}
}

func TestWriterErrorLatches(t *testing.T) {
	sched, err := faultinject.Parse("journal-torn:after=3")
	if err != nil {
		t.Fatal(err)
	}
	in := faultinject.New(sched)
	opts := injectedOpts(in)
	opts.Dir, opts.Threads = t.TempDir(), 1
	w, err := journal.Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	g := core.NewGraph(1)
	inc := core.NewIncrementalAnalyzer(g)
	var first error
	for i := 0; i < 10; i++ {
		_, d := inc.FoldDelta()
		if err := w.Append(d); err != nil {
			first = err
			break
		}
	}
	if first == nil {
		t.Fatal("torn writes never surfaced")
	}
	for i := 0; i < 3; i++ {
		_, d := inc.FoldDelta()
		if err := w.Append(d); !errors.Is(err, first) && err != first {
			t.Fatalf("latched error changed: %v vs %v", err, first)
		}
	}
	if fired := in.Fired(faultinject.JournalTorn); fired != 1 {
		t.Fatalf("injector fired %d times after the latch, want 1", fired)
	}
	if err := w.Close(); err != first {
		t.Fatalf("Close = %v, want latched %v", err, first)
	}
}
