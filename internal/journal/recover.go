package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/wire"
)

// Recovery semantics: replay everything durable, stop at the first
// frame that fails its CRC, decodes badly, or breaks the epoch/segment
// chain, and *truncate* there — every frame after a bad one is
// unreachable by design, because a tear means the writer latched an
// error and stopped, while a mid-file flip means the medium lied and
// nothing later can be trusted against this run's sequence. The
// recovered graph is never silently short: unless the journal carries
// its seal record (clean close) the result is marked degraded with a
// core.GapTruncated interval, so PR 6's completeness machinery — wire
// fields included — reports the cut to every downstream consumer.

// TornInfo describes where and why replay stopped early.
type TornInfo struct {
	// Segment is the path of the offending segment file.
	Segment string
	// Offset is the byte offset of the first unusable frame (the
	// physical truncation point).
	Offset int64
	// Reason says what failed ("bad CRC", "short frame", ...).
	Reason string
	// Epoch is the last epoch recovered before the tear.
	Epoch uint64
}

// String renders like "journal-000002.isj+0x1a4: bad CRC (after epoch 17)".
func (ti *TornInfo) String() string {
	return fmt.Sprintf("%s+0x%x: %s (after epoch %d)", ti.Segment, ti.Offset, ti.Reason, ti.Epoch)
}

// RecoverOptions configures Recover.
type RecoverOptions struct {
	// MaxEpoch stops replay after this epoch (0 = replay everything
	// durable). A deliberate prefix replay is not marked truncated.
	MaxEpoch uint64
	// Truncate physically removes the torn tail: the first bad frame
	// and everything after it in its segment, plus any later segments.
	// A subsequent Recover sees a clean (if unsealed) journal.
	Truncate bool
	// FoldWorkers caps the replay folds' data-edge derivation fan-out
	// (0 = GOMAXPROCS, 1 = serial). Replay is equivalent either way; the
	// knob only trades recovery latency against CPU.
	FoldWorkers int
	// KeepDeltas retains the replayed delta records on Recovery.Deltas,
	// in epoch order — the re-streaming path: feeding a recovered
	// journal back to an aggregator after the recorder died.
	KeepDeltas bool
}

// Recovery is the result of replaying a journal.
type Recovery struct {
	// Header is segment 1's header (run identity).
	Header Header
	// Graph and Analysis are the rebuilt CPG and its last epoch's
	// analysis (Analysis is the batch analysis when no epoch was
	// recovered).
	Graph    *core.Graph
	Analysis *core.Analysis
	// Epoch is the last recovered epoch (0 when none).
	Epoch uint64
	// Records counts replayed delta records.
	Records int
	// Sealed reports a clean close: the journal ends with a seal
	// record matching the final epoch.
	Sealed bool
	// Stopped reports that replay hit RecoverOptions.MaxEpoch.
	Stopped bool
	// Torn is non-nil when replay cut a corrupt or half-written tail.
	Torn *TornInfo
	// Segments lists the segment files read, in order.
	Segments []string
	// Deltas holds the replayed records when RecoverOptions.KeepDeltas
	// was set (nil otherwise).
	Deltas []*core.EpochDelta
}

// Degraded reports whether the recovered graph is marked incomplete —
// true for any unsealed journal that recovered at least one vertex.
func (r *Recovery) Degraded() bool { return r.Graph.Degraded() }

var segmentRE = regexp.MustCompile(`^journal-(\d{6})\.isj$`)

// listSegments returns dir's segment paths in sequence order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && segmentRE.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out, nil
}

// segSeq parses a segment path's sequence number (0 when malformed,
// which never matches an expected sequence).
func segSeq(path string) uint64 {
	m := segmentRE.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return 0
	}
	var seq uint64
	fmt.Sscanf(m[1], "%d", &seq)
	return seq
}

// rawRecord is one parsed delta record with its physical location.
type rawRecord struct {
	delta *core.EpochDelta
	seg   string
	off   int64
}

// Recover replays the journal in dir. It returns an error only when
// there is nothing to recover (no directory, no segments, segment 1
// unreadable as a journal); any corruption past that point is reported
// through Recovery.Torn, never as a failure — a torn journal is the
// expected input after a crash.
func Recover(dir string, opts RecoverOptions) (*Recovery, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("journal: no segments in %s", dir)
	}

	rep := &Recovery{}
	var recs []rawRecord
	nextEpoch := uint64(1)
	nextSeg := uint64(1)

	torn := func(seg string, off int64, reason string) {
		rep.Torn = &TornInfo{Segment: seg, Offset: off, Reason: reason, Epoch: nextEpoch - 1}
	}

scan:
	for i, path := range segs {
		if seq := segSeq(path); seq != nextSeg {
			torn(path, 0, fmt.Sprintf("missing segment %d", nextSeg))
			break
		}
		data, err := os.ReadFile(path)
		if err != nil {
			if i == 0 {
				return nil, fmt.Errorf("journal: %w", err)
			}
			torn(path, 0, fmt.Sprintf("unreadable segment: %v", err))
			break
		}
		rep.Segments = append(rep.Segments, path)
		if len(data) < wire.PreambleLen || string(data[:8]) != wire.Magic {
			if i == 0 {
				return nil, fmt.Errorf("journal: %s is not a journal segment (bad magic)", path)
			}
			torn(path, 0, "bad magic")
			break
		}
		if v := binary.LittleEndian.Uint32(data[8:]); v != wire.Version {
			if i == 0 {
				return nil, fmt.Errorf("journal: %s has format version %d, want %d", path, v, wire.Version)
			}
			torn(path, 8, fmt.Sprintf("format version %d", v))
			break
		}
		off := int64(wire.PreambleLen)
		sawHeader := false
		for off < int64(len(data)) {
			// A failure before the segment's header record leaves nothing
			// of the segment usable; report offset 0 so physical
			// truncation drops the whole file.
			foff := off
			if !sawHeader {
				foff = 0
			}
			kind, body, flen, ferr := wire.ParseFrame(data[off:], 0)
			if ferr != nil {
				torn(path, foff, ferr.Error())
				break scan
			}
			switch {
			case !sawHeader:
				if kind != recHeader {
					if i == 0 {
						return nil, fmt.Errorf("journal: %s does not start with a header record", path)
					}
					torn(path, 0, "segment missing header record")
					break scan
				}
				var h Header
				if err := wire.Decode(body, &h); err != nil {
					if i == 0 {
						return nil, fmt.Errorf("journal: %s header: %w", path, err)
					}
					torn(path, 0, fmt.Sprintf("header decode: %v", err))
					break scan
				}
				if i == 0 {
					if h.Threads < 1 {
						return nil, fmt.Errorf("journal: %s header has %d threads", path, h.Threads)
					}
					rep.Header = h
				} else if h.RunID != rep.Header.RunID || h.Threads != rep.Header.Threads ||
					h.Segment != nextSeg || h.BaseEpoch != nextEpoch {
					torn(path, 0, fmt.Sprintf("header mismatch (run %s seg %d base %d, want run %s seg %d base %d)",
						h.RunID, h.Segment, h.BaseEpoch, rep.Header.RunID, nextSeg, nextEpoch))
					break scan
				}
				sawHeader = true
			case kind == recDelta:
				d := new(core.EpochDelta)
				if err := wire.Decode(body, d); err != nil {
					torn(path, off, fmt.Sprintf("record decode: %v", err))
					break scan
				}
				if d.Epoch != nextEpoch {
					torn(path, off, fmt.Sprintf("epoch %d out of sequence (want %d)", d.Epoch, nextEpoch))
					break scan
				}
				recs = append(recs, rawRecord{delta: d, seg: path, off: off})
				nextEpoch++
				if opts.MaxEpoch > 0 && d.Epoch == opts.MaxEpoch {
					rep.Stopped = true
					break scan
				}
			case kind == recSeal:
				var s sealRecord
				if err := wire.Decode(body, &s); err != nil {
					torn(path, off, fmt.Sprintf("seal decode: %v", err))
					break scan
				}
				if s.FinalEpoch != nextEpoch-1 {
					torn(path, off, fmt.Sprintf("seal names epoch %d, journal ends at %d", s.FinalEpoch, nextEpoch-1))
					break scan
				}
				rep.Sealed = true
				// The seal must be the journal's last byte; anything
				// after it was never supposed to be written.
				if end := off + flen; end != int64(len(data)) {
					torn(path, end, "trailing data after seal")
				} else if i != len(segs)-1 {
					torn(segs[i+1], 0, "segment after seal")
				}
				break scan
			default:
				torn(path, off, fmt.Sprintf("unknown record kind %d", kind))
				break scan
			}
			off += flen
		}
		if !sawHeader {
			if i == 0 {
				return nil, fmt.Errorf("journal: %s carries no header record", path)
			}
			torn(path, 0, "no header record")
			break
		}
		nextSeg++
	}
	if rep.Header.Threads < 1 {
		// Segment 1 tore inside its own header frame: there is no run
		// identity to recover under.
		reason := "empty journal"
		if rep.Torn != nil {
			reason = rep.Torn.Reason
		}
		return nil, fmt.Errorf("journal: %s has no usable header: %s", dir, reason)
	}

	// Semantic validation pass on a throwaway graph: a record that
	// passed its CRC can still be forged or stale; finding the first
	// bad one here lets the real replay below mark the truncation gap
	// *before* its final fold, so the last Analysis carries the
	// degraded completeness.
	probe := core.NewGraph(rep.Header.Threads)
	for i, r := range recs {
		if err := core.ApplyDelta(probe, r.delta); err != nil {
			rep.Torn = &TornInfo{
				Segment: r.seg,
				Offset:  r.off,
				Reason:  fmt.Sprintf("invalid delta: %v", err),
				Epoch:   r.delta.Epoch - 1,
			}
			rep.Sealed = false
			recs = recs[:i]
			break
		}
	}

	if opts.Truncate && rep.Torn != nil {
		if err := truncateTail(segs, rep.Torn); err != nil {
			return nil, err
		}
	}

	// Replay for real: apply + fold per record, so the Analysis epoch
	// counter lands exactly on the recovered epoch. An unsealed or torn
	// journal gets its truncated gap *before* the final fold.
	g := core.NewGraph(rep.Header.Threads)
	inc := core.NewIncrementalAnalyzer(g)
	inc.SetFoldWorkers(opts.FoldWorkers)
	mark := !rep.Sealed && (rep.Torn != nil || !rep.Stopped)
	for i, r := range recs {
		if err := core.ApplyDelta(g, r.delta); err != nil {
			// The probe pass vetted every record; failing here is a bug.
			return nil, fmt.Errorf("journal: replay diverged from validation: %w", err)
		}
		if i == len(recs)-1 && mark {
			markTruncated(g, r.delta.Lens)
		}
		rep.Analysis = inc.Fold()
		if opts.KeepDeltas {
			rep.Deltas = append(rep.Deltas, r.delta)
		}
	}
	rep.Graph = g
	rep.Records = len(recs)
	rep.Epoch = inc.Epoch()
	if rep.Analysis == nil {
		rep.Analysis = g.Analyze()
	}
	return rep, nil
}

// markTruncated records the everything-after-here uncertainty on every
// thread that has vertices: the run continued past the last durable
// epoch (or would have), so each thread's recording may be missing an
// arbitrary suffix. The interval is anchored on the last recovered
// vertex so prefix-scoped completeness (gapsForPrefix) retains it.
func markTruncated(g *core.Graph, lens []int) {
	for t, n := range lens {
		if n > 0 {
			g.AddGap(t, core.Gap{
				FromAlpha: uint64(n - 1),
				ToAlpha:   uint64(n),
				Kind:      core.GapTruncated,
			})
		}
	}
}

// truncateTail physically removes the torn tail identified by ti: later
// segments entirely, the torn segment from the bad frame on (the whole
// file when the tear is in its preamble or header).
func truncateTail(segs []string, ti *TornInfo) error {
	drop := false
	for _, path := range segs {
		switch {
		case path == ti.Segment:
			drop = true
			// A tear before the first post-header frame means the
			// segment never carried a usable record.
			if ti.Offset == 0 {
				if err := os.Remove(path); err != nil {
					return fmt.Errorf("journal: truncate: %w", err)
				}
				continue
			}
			if err := os.Truncate(path, ti.Offset); err != nil {
				return fmt.Errorf("journal: truncate: %w", err)
			}
		case drop:
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("journal: truncate: %w", err)
			}
		}
	}
	return nil
}
