package core_test

// Tests of the epoch-based incremental analysis path. The load-bearing
// property: at any quiesced point, the IncrementalAnalyzer's folded
// Analysis must be indistinguishable from a from-scratch Graph.Analyze
// over the same prefix — ExportJSON byte-identical — for random
// workload prefixes, fold points, and thread counts. That equivalence is
// what lets every query surface (Runtime.Query, cpg-query,
// inspector-serve) swap between the batch and live paths freely.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"github.com/repro/inspector/internal/core"
)

// liveRecording drives a deterministic random multithreaded recording
// one step at a time, so tests can interleave folds at arbitrary
// prefixes. Each step makes one thread read/write random pages, seal its
// sub-computation, and transfer one of a few mutexes (release then
// acquire), which builds a rich happens-before web across threads.
type liveRecording struct {
	g     *core.Graph
	recs  []*core.Recorder
	locks []*core.SyncObject
	r     *rand.Rand
}

func newLiveRecording(t *testing.T, threads, pageRange int, seed int64) *liveRecording {
	t.Helper()
	g := core.NewGraph(threads)
	lr := &liveRecording{g: g, r: rand.New(rand.NewSource(seed))}
	for i := 0; i < threads; i++ {
		rec, err := core.NewRecorder(g, i, 0)
		if err != nil {
			t.Fatalf("recorder %d: %v", i, err)
		}
		lr.recs = append(lr.recs, rec)
	}
	lr.locks = []*core.SyncObject{
		g.NewSyncObject("m0", false),
		g.NewSyncObject("m1", false),
		g.NewSyncObject("bar", true),
	}
	return lr
}

// step seals one random sub-computation. Occasionally it leaves an
// acquire freshly logged with its sub-computation still open, so folds
// exercise the deferred (pending) sync-edge path.
func (lr *liveRecording) step(t *testing.T, pageRange int) {
	t.Helper()
	rec := lr.recs[lr.r.Intn(len(lr.recs))]
	for i := 0; i < 1+lr.r.Intn(3); i++ {
		rec.OnRead(uint64(lr.r.Intn(pageRange)))
		rec.OnWrite(uint64(lr.r.Intn(pageRange)))
	}
	lock := lr.locks[lr.r.Intn(len(lr.locks))]
	sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}, 0)
	if err != nil {
		t.Fatalf("EndSub: %v", err)
	}
	rec.Release(lock, sc)
	rec.Acquire(lock)
}

// finish seals every thread's in-progress sub-computation, as thread
// exit does in real runs.
func (lr *liveRecording) finish(t *testing.T) {
	t.Helper()
	for _, rec := range lr.recs {
		if _, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
			t.Fatalf("EndSub: %v", err)
		}
	}
}

// exportBytes renders an analysis through the deterministic export.
func exportBytes(t *testing.T, a *core.Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	return buf.Bytes()
}

// TestIncrementalMatchesBatchOverRandomPrefixes is the equivalence
// property: fold at random prefixes of random executions and require the
// epoch Analysis to export byte-identically to a from-scratch Analyze of
// the same prefix, across 1 and 4 threads.
func TestIncrementalMatchesBatchOverRandomPrefixes(t *testing.T) {
	for _, threads := range []int{1, 4} {
		for seed := int64(0); seed < 8; seed++ {
			lr := newLiveRecording(t, threads, 48, seed)
			inc := core.NewIncrementalAnalyzer(lr.g)
			foldR := rand.New(rand.NewSource(seed * 7731))
			steps := 60 + int(seed)*17
			folds := 0
			for s := 0; s < steps; s++ {
				lr.step(t, 48)
				if foldR.Intn(9) != 0 {
					continue
				}
				folds++
				a := inc.Fold()
				want := exportBytes(t, lr.g.Analyze())
				got := exportBytes(t, a)
				if !bytes.Equal(got, want) {
					t.Fatalf("threads=%d seed=%d step=%d: epoch %d export diverges from batch",
						threads, seed, s, a.Epoch())
				}
				if err := a.Verify(); err != nil {
					t.Fatalf("threads=%d seed=%d step=%d: epoch analysis invalid: %v",
						threads, seed, s, err)
				}
			}
			lr.finish(t)
			final := inc.Fold()
			if got, want := exportBytes(t, final), exportBytes(t, lr.g.Analyze()); !bytes.Equal(got, want) {
				t.Fatalf("threads=%d seed=%d: final epoch diverges from batch", threads, seed)
			}
			if final.Epoch() != uint64(folds+1) {
				t.Fatalf("threads=%d seed=%d: epoch = %d after %d folds", threads, seed, final.Epoch(), folds+1)
			}
		}
	}
}

// TestIncrementalEmptyAndIdleFolds covers the degenerate epochs: folding
// an empty graph, and folding with nothing new sealed in between.
func TestIncrementalEmptyAndIdleFolds(t *testing.T) {
	lr := newLiveRecording(t, 2, 16, 1)
	inc := core.NewIncrementalAnalyzer(lr.g)
	a1 := inc.Fold()
	if a1.Epoch() != 1 || a1.NumVertices() != 0 {
		t.Fatalf("empty fold: epoch %d, %d vertices", a1.Epoch(), a1.NumVertices())
	}
	if got, want := exportBytes(t, a1), exportBytes(t, lr.g.Analyze()); !bytes.Equal(got, want) {
		t.Fatal("empty fold diverges from batch")
	}
	lr.step(t, 16)
	a2 := inc.Fold()
	a3 := inc.Fold()
	if a3.Epoch() != 3 {
		t.Fatalf("idle fold epoch = %d", a3.Epoch())
	}
	if got, want := exportBytes(t, a3), exportBytes(t, a2); !bytes.Equal(got, want) {
		t.Fatal("idle fold changed the analysis")
	}
}

// TestIncrementalPendingAcquireDeferred pins the deferred sync-edge
// path directly: an acquire logs its schedule edge before the acquiring
// sub-computation seals, so a fold taken in between must withhold the
// edge and a fold after the seal must include it.
func TestIncrementalPendingAcquireDeferred(t *testing.T) {
	g := core.NewGraph(2)
	r0, _ := core.NewRecorder(g, 0, 0)
	r1, _ := core.NewRecorder(g, 1, 0)
	m := g.NewSyncObject("m", false)
	sc, err := r0.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: m.Ref()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.Release(m, sc)
	r1.Acquire(m) // edge T0.0 -> T1.0 logged; T1.0 still open

	inc := core.NewIncrementalAnalyzer(g)
	a := inc.Fold()
	for _, e := range a.Edges() {
		if e.Kind == core.EdgeSync {
			t.Fatalf("sync edge %v -> %v included before its acquirer sealed", e.From, e.To)
		}
	}
	if got, want := exportBytes(t, a), exportBytes(t, g.Analyze()); !bytes.Equal(got, want) {
		t.Fatal("mid-acquire fold diverges from batch")
	}

	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r0.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	a = inc.Fold()
	found := false
	for _, e := range a.Edges() {
		if e.Kind == core.EdgeSync && e.From == sc.ID && e.To == (core.SubID{Thread: 1, Alpha: 0}) {
			found = true
		}
	}
	if !found {
		t.Fatal("deferred sync edge never included after its acquirer sealed")
	}
	if got, want := exportBytes(t, a), exportBytes(t, g.Analyze()); !bytes.Equal(got, want) {
		t.Fatal("post-seal fold diverges from batch")
	}
}

// TestIncrementalFoldDuringConcurrentRecording races folds against live
// recorder appends (run under -race in CI): every epoch must be a valid
// CPG over a causally consistent prefix, and the final fold — after the
// recorders quiesce — must match the batch analysis exactly.
func TestIncrementalFoldDuringConcurrentRecording(t *testing.T) {
	const threads = 4
	g := core.NewGraph(threads)
	lock := g.NewSyncObject("l", false)
	inc := core.NewIncrementalAnalyzer(g)

	var wg sync.WaitGroup
	for slot := 0; slot < threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			rec, err := core.NewRecorder(g, slot, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 300; i++ {
				rec.OnRead(uint64((slot*31 + i) % 64))
				rec.OnWrite(uint64((slot*17 + i) % 64))
				sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}, 0)
				if err != nil {
					t.Error(err)
					return
				}
				rec.Release(lock, sc)
				rec.Acquire(lock)
			}
			if _, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
				t.Error(err)
			}
		}(slot)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		a := inc.Fold()
		if err := a.Verify(); err != nil {
			t.Fatalf("epoch %d invalid during recording: %v", a.Epoch(), err)
		}
	}
	final := inc.Fold()
	if got, want := exportBytes(t, final), exportBytes(t, g.Analyze()); !bytes.Equal(got, want) {
		t.Fatal("final fold diverges from batch after quiesce")
	}
}
