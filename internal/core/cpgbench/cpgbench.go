// Package cpgbench is the shared CPG-core benchmark harness: one set of
// scenario bodies consumed both by internal/core's go-test suite and by
// `inspector-bench -experiment cpg`, so the committed BENCH_cpg.json
// snapshot measures exactly what `go test -bench` measures and the two
// can never drift apart. Everything drives the public core API only, so
// the same scenarios remain valid across store rewrites — the baseline
// section of BENCH_cpg.json was produced by running these scenario
// shapes against the pre-columnar (global-RWMutex, map-backed) core.
package cpgbench

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/repro/inspector/internal/core"
)

const (
	// endSubBatch is the sub-computations recorded per op in the EndSub
	// scenarios; batching keeps the graph (which retains every vertex)
	// freshly rebuilt each op so memory stays bounded at any b.N.
	endSubBatch = 1000
	// endSubWorkers is the recording-thread count of the parallel
	// scenario. Serial and parallel record the same total work per op,
	// so their ns/op are directly comparable: the gap is pure
	// contention on the vertex-append path.
	endSubWorkers = 8
)

func newRecorder(g *core.Graph, slot int) *core.Recorder {
	r, err := core.NewRecorder(g, slot, 0)
	if err != nil {
		panic(err)
	}
	return r
}

// endSubs drives n sub-computations through one recorder: 4 reads, 4
// writes, 2 branches, then the sync boundary.
func endSubs(g *core.Graph, rec *core.Recorder, n int, pageBase uint64) {
	sa := g.InternSite("bench.a")
	sb := g.InternSite("bench.b")
	ev := core.SyncEvent{Kind: core.SyncRelease, Object: g.InternObject("l")}
	for i := 0; i < n; i++ {
		p := pageBase + uint64(i%29)
		rec.OnRead(p)
		rec.OnRead(p + 3)
		rec.OnRead(p + 7)
		rec.OnRead(p + 11)
		rec.OnWrite(p + 1)
		rec.OnWrite(p + 5)
		rec.OnWrite(p + 9)
		rec.OnWrite(p + 13)
		rec.OnBranch(sa, i%2 == 0)
		rec.OnBranch(sb, i%3 == 0)
		if _, err := rec.EndSub(ev, 0); err != nil {
			panic(err)
		}
	}
}

// BuildRandomGraph records a deterministic random execution: steps
// sub-computations spread over threads recorders, each reading/writing rw
// random pages in [0, pageRange) and transferring one mutex, which gives
// the derivation a rich happens-before web.
func BuildRandomGraph(threads, steps, pageRange, rw int, seed int64) *core.Graph {
	r := rand.New(rand.NewSource(seed))
	g := core.NewGraph(threads)
	recs := make([]*core.Recorder, threads)
	for i := range recs {
		recs[i] = newRecorder(g, i)
	}
	lock := g.NewSyncObject("l", false)
	ev := core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}
	for s := 0; s < steps; s++ {
		rec := recs[r.Intn(threads)]
		for i := 0; i < rw; i++ {
			rec.OnRead(uint64(r.Intn(pageRange)))
			rec.OnWrite(uint64(r.Intn(pageRange)))
		}
		sc, err := rec.EndSub(ev, 0)
		if err != nil {
			panic(err)
		}
		rec.Release(lock, sc)
		rec.Acquire(lock)
	}
	return g
}

// pageSetInput is the PageSet/add workload: 96 draws over 1024 pages
// (duplicates included, as fault streams produce them).
var pageSetInput = func() []uint64 {
	r := rand.New(rand.NewSource(7))
	out := make([]uint64, 96)
	for i := range out {
		out[i] = uint64(r.Intn(1024))
	}
	return out
}()

// Case is one benchmark scenario.
type Case struct {
	// Name follows the BENCH_cpg.json row naming ("EndSub/serial", ...).
	Name string
	// Bytes, when non-zero, is the payload size per op for MB/s.
	Bytes int64
	Fn    func(b *testing.B)
}

// liveSchedule is one deterministic pre-drawn recording schedule, so
// the incremental-analysis scenarios replay identical executions per op
// without re-seeding rand inside the timed region.
type liveSchedule struct {
	threads int
	// thread[i], pages[i] drive step i: thread[i] reads pages[i][0..rw)
	// and writes pages[i][rw..2rw), then transfers the mutex.
	thread []int
	pages  [][]uint64
}

func drawSchedule(threads, steps, pageRange, rw int, seed int64) *liveSchedule {
	r := rand.New(rand.NewSource(seed))
	s := &liveSchedule{threads: threads}
	for i := 0; i < steps; i++ {
		s.thread = append(s.thread, r.Intn(threads))
		ps := make([]uint64, 2*rw)
		for j := range ps {
			ps[j] = uint64(r.Intn(pageRange))
		}
		s.pages = append(s.pages, ps)
	}
	return s
}

// replay records schedule steps [lo, hi) into g.
func (s *liveSchedule) replay(g *core.Graph, recs []*core.Recorder, lock *core.SyncObject, lo, hi int) {
	ev := core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}
	for i := lo; i < hi; i++ {
		rec := recs[s.thread[i]]
		ps := s.pages[i]
		for j := 0; j < len(ps)/2; j++ {
			rec.OnRead(ps[j])
			rec.OnWrite(ps[len(ps)/2+j])
		}
		sc, err := rec.EndSub(ev, 0)
		if err != nil {
			panic(err)
		}
		rec.Release(lock, sc)
		rec.Acquire(lock)
	}
}

// runLive replays the schedule in `epochs` evenly sized chunks, calling
// analyze after each chunk. Recording happens off the clock
// (b.StopTimer), so the measured cost is purely the analysis work — the
// number the live pipeline pays per run at a given epoch cadence.
func (s *liveSchedule) runLive(b *testing.B, epochs int, analyze func(g *core.Graph) *core.Analysis) {
	steps := len(s.thread)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := core.NewGraph(s.threads)
		recs := make([]*core.Recorder, s.threads)
		for t := range recs {
			recs[t] = newRecorder(g, t)
		}
		lock := g.NewSyncObject("l", false)
		done := 0
		for e := 1; e <= epochs; e++ {
			upto := steps * e / epochs
			s.replay(g, recs, lock, done, upto)
			done = upto
			b.StartTimer()
			analyze(g)
			b.StopTimer()
		}
		b.StartTimer()
	}
}

// Cases returns the CPG-core scenarios: the EndSub append path serial
// and contended, the data-edge derivation sparse and dense, analysis
// construction, a wide backward slice (the sortSubIDs regression), the
// full invariant check, the PageSet hot path, and the live pipeline's
// epoch folds (IncrementalAnalyze vs. the naive full re-Analyze at the
// same cadence).
func Cases() []Case {
	sparse := BuildRandomGraph(8, 2000, 64, 1, 42)
	dense := BuildRandomGraph(8, 2000, 24, 4, 43)
	wide := BuildRandomGraph(4, 4000, 16, 1, 44)
	wideA := wide.Analyze()
	var wideTarget core.SubID
	for _, sc := range wide.Subs() {
		if sc.ID.Thread == 0 {
			wideTarget = sc.ID
		}
	}
	sparseA := sparse.Analyze()

	return []Case{
		{Name: "EndSub/serial", Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := core.NewGraph(endSubWorkers)
				endSubs(g, newRecorder(g, 0), endSubBatch, 0)
			}
		}},
		{Name: "EndSub/parallel8", Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := core.NewGraph(endSubWorkers)
				var wg sync.WaitGroup
				for w := 0; w < endSubWorkers; w++ {
					wg.Add(1)
					go func(slot int) {
						defer wg.Done()
						endSubs(g, newRecorder(g, slot), endSubBatch/endSubWorkers, uint64(slot)*64)
					}(w)
				}
				wg.Wait()
			}
		}},
		{Name: "DataEdges/sparse", Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sparse.DataEdges()
			}
		}},
		{Name: "DataEdges/dense", Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dense.DataEdges()
			}
		}},
		{Name: "Analyze/sparse", Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sparse.Analyze()
			}
		}},
		{Name: "Slice/wide", Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wideA.Slice(wideTarget)
			}
		}},
		{Name: "Verify/sparse", Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sparseA.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "PageSet/add", Fn: func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewPageSet()
				for _, p := range pageSetInput {
					s.Add(p)
				}
			}
		}},
	}
}

// incAnalyzeFn returns a runLive analyze callback that folds each epoch
// with one analyzer per graph. reference selects the retained serial
// full-rebuild fold (NewReferenceAnalyzer, the pre-incremental
// implementation and the equivalence oracle); otherwise workers pins
// the fold's data-edge derivation fan-out (0 = GOMAXPROCS).
func incAnalyzeFn(workers int, reference bool) func(g *core.Graph) *core.Analysis {
	var inc *core.IncrementalAnalyzer
	var last *core.Graph
	return func(g *core.Graph) *core.Analysis {
		if g != last {
			if reference {
				inc = core.NewReferenceAnalyzer(g)
			} else {
				inc = core.NewIncrementalAnalyzer(g)
				inc.SetFoldWorkers(workers)
			}
			last = g
		}
		return inc.Fold()
	}
}

// LiveCases returns the live-pipeline scenarios: the same 2000-step
// 8-thread execution as DataEdges/sparse, recorded off the clock and
// analyzed at a 1/8/64-epoch cadence. IncrementalAnalyze/* folds each
// epoch with one shared IncrementalAnalyzer (default worker fan-out);
// IncrementalAnalyzeParallel/* pins the fold's derivation fan-out to 8
// workers; ReAnalyze/* runs the post-mortem batch Analyze at every
// epoch boundary instead — the naive way to serve queries mid-run,
// quadratic in total graph size. The per-op number is the cumulative
// analysis cost of the whole run at that cadence.
func LiveCases() []Case {
	sched := drawSchedule(8, 2000, 64, 1, 42)
	cases := []Case{}
	for _, epochs := range []int{1, 8, 64} {
		epochs := epochs
		cases = append(cases,
			Case{Name: fmt.Sprintf("IncrementalAnalyze/epochs%d", epochs), Fn: func(b *testing.B) {
				sched.runLive(b, epochs, incAnalyzeFn(0, false))
			}},
			Case{Name: fmt.Sprintf("ReAnalyze/epochs%d", epochs), Fn: func(b *testing.B) {
				sched.runLive(b, epochs, func(g *core.Graph) *core.Analysis {
					return g.Analyze()
				})
			}},
		)
	}
	for _, epochs := range []int{8, 64} {
		epochs := epochs
		cases = append(cases, Case{
			Name: fmt.Sprintf("IncrementalAnalyzeParallel/epochs%d", epochs),
			Fn: func(b *testing.B) {
				sched.runLive(b, epochs, incAnalyzeFn(8, false))
			},
		})
	}
	return cases
}

// largeEpochs is the fold cadence of the large-graph scenarios.
const largeEpochs = 64

// largeSchedule draws the large-graph execution lazily (and at most
// once), so benchmark runs that filter the Large rows out never pay the
// 2^20-step draw or its memory.
var largeSchedule = sync.OnceValue(func() *liveSchedule {
	return drawSchedule(8, 1<<20, 4096, 2, 46)
})

// LargeCases returns the large-graph live scenarios: a 2^20-step
// 8-thread execution (>=10^6 vertices) folded at a 64-epoch cadence.
// "serial" is the retained full-rebuild reference fold — per epoch it
// re-derives nothing but rebuilds the whole CSR from scratch, which is
// what every fold cost before the incremental store; workers1 and
// workers8 run the incremental delta-overlay fold with the data-edge
// derivation fan-out pinned to 1 and 8 workers. The per-op number is
// the cumulative analysis cost of the whole run.
func LargeCases() []Case {
	rows := []struct {
		name      string
		workers   int
		reference bool
	}{
		{"IncrementalAnalyzeLarge/serial", 1, true},
		{"IncrementalAnalyzeLarge/workers1", 1, false},
		{"IncrementalAnalyzeLarge/workers8", 8, false},
	}
	var cases []Case
	for _, r := range rows {
		r := r
		cases = append(cases, Case{Name: r.name, Fn: func(b *testing.B) {
			largeSchedule().runLive(b, largeEpochs, incAnalyzeFn(r.workers, r.reference))
		}})
	}
	return cases
}
