package cpgbench

// The reduced-size cut of the IncrementalAnalyzeLarge scenario, run as
// a test (and in CI's -race sweep): the benchmark rows compare the
// retained full-rebuild reference fold against the incremental
// delta-overlay fold, so this pins that all three produce byte-identical
// exports at every epoch — the perf comparison is only meaningful if
// they compute the same thing.

import (
	"bytes"
	"testing"

	"github.com/repro/inspector/internal/core"
)

// TestIncrementalLargeScheduleEquivalence replays the large-scenario
// shape (same threads/pageRange/rw/seed, fewer steps) at a 16-epoch
// cadence through the reference fold and the incremental fold at 1 and
// 8 workers, requiring byte-identical ExportJSON output per epoch, and
// a final export identical to the post-mortem batch Analyze.
func TestIncrementalLargeScheduleEquivalence(t *testing.T) {
	steps, epochs := 20000, 16
	if testing.Short() {
		steps, epochs = 4000, 8
	}
	sched := drawSchedule(8, steps, 4096, 2, 46)

	replayFolds := func(mk func(g *core.Graph) *core.IncrementalAnalyzer,
		onEpoch func(e int, a *core.Analysis)) *core.Graph {
		g := core.NewGraph(sched.threads)
		recs := make([]*core.Recorder, sched.threads)
		for i := range recs {
			recs[i] = newRecorder(g, i)
		}
		lock := g.NewSyncObject("l", false)
		inc := mk(g)
		done := 0
		for e := 1; e <= epochs; e++ {
			upto := steps * e / epochs
			sched.replay(g, recs, lock, done, upto)
			done = upto
			onEpoch(e, inc.Fold())
		}
		return g
	}
	export := func(a *core.Analysis) []byte {
		var buf bytes.Buffer
		if err := a.ExportJSON(&buf); err != nil {
			t.Fatalf("export: %v", err)
		}
		return buf.Bytes()
	}

	want := make([][]byte, 0, epochs)
	g := replayFolds(core.NewReferenceAnalyzer, func(_ int, a *core.Analysis) {
		want = append(want, export(a))
	})

	for _, workers := range []int{1, 8} {
		replayFolds(func(g *core.Graph) *core.IncrementalAnalyzer {
			inc := core.NewIncrementalAnalyzer(g)
			inc.SetFoldWorkers(workers)
			return inc
		}, func(e int, a *core.Analysis) {
			if got := export(a); !bytes.Equal(got, want[e-1]) {
				t.Fatalf("workers=%d: epoch %d export differs from reference fold", workers, e)
			}
		})
	}

	if got := export(g.Analyze()); !bytes.Equal(got, want[epochs-1]) {
		t.Fatalf("batch Analyze export differs from final fold")
	}
}
