package core

import (
	"strings"
	"testing"
)

func TestAnalysisPath(t *testing.T) {
	g, _ := buildFigure1(t)
	a := g.Analyze()
	t1a := SubID{Thread: 0, Alpha: 0}
	t1b := SubID{Thread: 0, Alpha: 1}
	t2a := SubID{Thread: 1, Alpha: 0}

	// T1.a reaches T1.b both directly (program order) and through T2.a;
	// BFS returns a shortest chain, which is the single control edge.
	chain := a.Path(t1a, t1b)
	if len(chain) != 1 || chain[0].From != t1a || chain[0].To != t1b {
		t.Fatalf("path T1.a -> T1.b = %+v", chain)
	}

	// Restricted to sync edges the chain must route through T2.a.
	chain = a.Path(t1a, t1b, EdgeSync)
	if len(chain) != 2 || chain[0].To != t2a || chain[1].From != t2a {
		t.Fatalf("sync-only path = %+v", chain)
	}
	for _, e := range chain {
		if e.Kind != EdgeSync {
			t.Errorf("sync-only path contains %v edge", e.Kind)
		}
	}

	// Chain continuity: each edge starts where the previous ended.
	chain = a.Path(t1a, t1b, EdgeData)
	for i := 1; i < len(chain); i++ {
		if chain[i].From != chain[i-1].To {
			t.Fatalf("discontinuous chain: %+v", chain)
		}
	}

	// No backward chain exists in a DAG.
	if got := a.Path(t1b, t1a); got != nil {
		t.Errorf("path against the DAG = %+v", got)
	}
	// Unknown endpoints return nil.
	if got := a.Path(SubID{Thread: 9, Alpha: 0}, t1b); got != nil {
		t.Errorf("path from unknown vertex = %+v", got)
	}
	if got := a.Path(t1a, t1a); got != nil {
		t.Errorf("self path = %+v", got)
	}
}

func TestVerifyChecksDataEdgePages(t *testing.T) {
	// Invariant 3: a data edge whose page list escapes the endpoints'
	// recorded read/write sets must be rejected. Derived edges can't
	// violate this, so tamper with the analysis directly.
	g, _ := buildFigure1(t)
	a := g.Analyze()
	if err := a.Verify(); err != nil {
		t.Fatalf("untampered graph: %v", err)
	}
	tampered := false
	edges := a.Edges()
	for i := range edges {
		if edges[i].Kind == EdgeData {
			edges[i].Pages = append(edges[i].Pages, 999)
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no data edge to tamper with")
	}
	err := a.Verify()
	if err == nil || !strings.Contains(err.Error(), "not in writer's write set") {
		t.Errorf("tampered pages not caught: %v", err)
	}
}

func TestVerifyChecksVertexSlots(t *testing.T) {
	// Invariant 3: a vertex whose recorded ID disagrees with its slot in
	// the store must be rejected.
	g, _ := buildFigure1(t)
	sc, _ := g.Sub(SubID{Thread: 1, Alpha: 0})
	sc.ID = SubID{Thread: 1, Alpha: 7}
	defer func() { sc.ID = SubID{Thread: 1, Alpha: 0} }()
	err := g.Analyze().Verify()
	if err == nil || !strings.Contains(err.Error(), "records ID") {
		t.Errorf("slot mismatch not caught: %v", err)
	}
}

func TestVerifyRejectsEmptyDataEdge(t *testing.T) {
	g, _ := buildFigure1(t)
	a := g.Analyze()
	edges := a.Edges()
	for i := range edges {
		if edges[i].Kind == EdgeData {
			edges[i].Pages = nil
			break
		}
	}
	err := a.Verify()
	if err == nil || !strings.Contains(err.Error(), "carries no pages") {
		t.Errorf("empty data edge not caught: %v", err)
	}
}

func TestFromDumpValidatesThreads(t *testing.T) {
	d := &Dump{
		Threads: 1,
		Subs: []*wireSub{
			{ID: SubID{Thread: 3, Alpha: 0}},
		},
	}
	if _, err := FromDump(d); err == nil {
		t.Error("out-of-range sub thread accepted")
	}
	d = &Dump{
		Threads:   1,
		SyncEdges: []Edge{{From: SubID{}, To: SubID{Thread: 5}, Kind: EdgeSync}},
	}
	if _, err := FromDump(d); err == nil {
		t.Error("out-of-range sync edge accepted")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("alpha")
	b := in.Intern("beta")
	if a == b {
		t.Fatal("distinct strings share an id")
	}
	if got := in.Intern("alpha"); got != a {
		t.Errorf("re-intern moved id: %d vs %d", got, a)
	}
	if got := in.Name(a); got != "alpha" {
		t.Errorf("Name(%d) = %q", a, got)
	}
	if got := in.Name(12345); got != "" {
		t.Errorf("Name of unassigned id = %q", got)
	}
	if id, ok := in.Find("beta"); !ok || id != b {
		t.Errorf("Find(beta) = %d,%v", id, ok)
	}
	if _, ok := in.Find("gamma"); ok {
		t.Error("Find invented an id")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d", in.Len())
	}
	snap := in.Snapshot()
	if len(snap) != 2 || snap[a] != "alpha" || snap[b] != "beta" {
		t.Errorf("Snapshot = %v", snap)
	}
}

func TestGraphSymbolTable(t *testing.T) {
	g := NewGraph(1)
	if got := g.SiteName(0); got != "" {
		t.Errorf("ref 0 = %q, want empty string", got)
	}
	s := g.InternSite("loop.head")
	o := g.InternObject("mutex:m")
	if g.SiteName(s) != "loop.head" || g.ObjectName(o) != "mutex:m" {
		t.Error("symbol round trip failed")
	}
	// Sites and objects share one table: same string, same id.
	if uint32(g.InternSite("mutex:m")) != uint32(o) {
		t.Error("shared table assigned two ids to one string")
	}
}
