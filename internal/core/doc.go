// Package core implements the paper's central contribution: the Concurrent
// Provenance Graph (CPG, §IV-A) and the parallel provenance algorithm that
// builds it (§IV-B, Algorithms 1 and 2).
//
// The CPG is a DAG whose vertices are sub-computations — the instruction
// sequences a thread executes between two pthreads synchronization calls —
// and whose edges record three dependency kinds:
//
//   - control edges: intra-thread program order, refined within each
//     sub-computation by thunks (branch-delimited instruction runs);
//   - synchronization edges: inter-thread happens-before derived from the
//     acquire/release ordering of synchronization operations;
//   - data edges: update-use relationships derived from per-sub-computation
//     page-granularity read/write sets combined with the happens-before
//     partial order.
//
// The algorithm is fully decentralized: each thread maintains a vector
// clock, synchronization objects carry clocks between releasers and
// acquirers, and every completed sub-computation is stamped with its
// thread's clock. Standard vector-clock comparison over those stamps is
// the happens-before relation.
//
// The store mirrors that decentralization: vertices live in per-thread
// shards (a Recorder appends to its own shard without any global lock),
// synchronization edges in per-thread logs keyed by the acquiring thread,
// and symbols — branch-site labels, indirect targets, synchronization
// object names — are interned once into dense refs so the per-vertex
// records carry ints, not strings. String forms are materialized only at
// export and query time.
//
// # Contract
//
// Recording threads are the only writers, each through its own Recorder,
// and a published SubComputation is immutable. Everything else is a
// reader: Graph accessors copy under per-shard read locks, and the two
// analysis paths build immutable queryable views —
//
//   - Graph.Analyze derives every edge of the current prefix from
//     scratch (the post-mortem path, and the executable reference the
//     incremental path is property-tested against);
//   - IncrementalAnalyzer.Fold extends the previous epoch's state with
//     only the newly sealed vertices, over a causally consistent cut,
//     and is guaranteed to produce an Analysis equivalent to a batch
//     Analyze over the same prefix (ExportJSON byte-identical).
//
// See DESIGN.md, sections "The columnar CPG core" (store layout, CSR
// adjacency, derivation fast paths) and "The live pipeline" (epoch
// model, cut consistency, equivalence guarantee).
package core
