package core

import (
	"fmt"
	"sync"

	"github.com/repro/inspector/internal/vclock"
	"github.com/repro/inspector/internal/vtime"
)

// SyncObject is the provenance-side state of one synchronization object S:
// its vector clock CS (the "messaging medium" of Algorithm 2) plus the set
// of releaser sub-computations whose releases the next acquire observes
// (for explicit schedule edges). The actual blocking behaviour lives in
// the threading library; this object only records causality.
type SyncObject struct {
	name string
	ref  ObjRef

	mu        sync.Mutex
	clock     vclock.Clock
	releasers []SubID
	// accumulate keeps earlier releasers in the set (barriers, condition
	// variables, semaphores); mutexes replace, since an acquire of a
	// mutex synchronizes only with the previous release.
	accumulate bool
}

// NewSyncObject creates the provenance state for object name, interned
// into the graph's symbol table, with the graph's vector-clock width.
// accumulate selects whether successive releases pile up (barrier/cond/
// sem semantics) or replace (mutex semantics).
func (g *Graph) NewSyncObject(name string, accumulate bool) *SyncObject {
	return &SyncObject{
		name:       name,
		ref:        g.InternObject(name),
		clock:      vclock.New(g.Threads()),
		accumulate: accumulate,
	}
}

// Name returns the object's name.
func (s *SyncObject) Name() string { return s.name }

// Ref returns the object's interned name; boundary events and schedule
// edges carry this instead of the string.
func (s *SyncObject) Ref() ObjRef { return s.ref }

// release folds the releasing thread's clock into CS and records the
// releasing sub-computation: ∀i: CS[i] <- max(CS[i], Ct[i]).
func (s *SyncObject) release(threadClock vclock.Clock, from SubID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock.Merge(threadClock)
	if s.accumulate {
		s.releasers = append(s.releasers, from)
	} else {
		s.releasers = s.releasers[:0]
		s.releasers = append(s.releasers, from)
	}
}

// acquire folds CS into the acquiring thread's clock and returns the
// releasers the acquire synchronizes with: ∀i: Ct[i] <- max(CS[i], Ct[i]).
func (s *SyncObject) acquire(threadClock vclock.Clock) []SubID {
	s.mu.Lock()
	defer s.mu.Unlock()
	threadClock.Merge(s.clock)
	out := make([]SubID, len(s.releasers))
	copy(out, s.releasers)
	return out
}

// ResetReleasers clears the releaser set (barrier generation roll-over).
func (s *SyncObject) ResetReleasers() {
	s.mu.Lock()
	s.releasers = s.releasers[:0]
	s.mu.Unlock()
}

// Recorder is the per-thread state of the provenance algorithm: the thread
// clock Ct, the sub-computation counter α, the thunk counter β, and the
// in-progress sub-computation. A Recorder is owned by one thread; only the
// SyncObject interactions synchronize with other threads — the algorithm's
// decentralization property (§IV-B). EndSub appends to the thread's own
// graph shard, so the append path takes no global lock.
type Recorder struct {
	graph  *Graph
	thread int
	clock  vclock.Clock
	alpha  uint64
	beta   uint64

	cur          *SubComputation
	instructions uint64 // current thunk's instruction count
	// thunkCap predicts the next sub-computation's thunk count from the
	// last completed one, so the Thunks slice is sized once up front
	// instead of re-growing (and re-copying) on the per-branch path.
	// Completed sub-computations keep their slices forever in the graph,
	// so true pooling is impossible; right-sized single allocation is
	// the next best thing.
	thunkCap int
}

// NewRecorder initializes a thread recorder (initThread(t) in Algorithm 2:
// α <- 0, Ct <- 0) and opens the first sub-computation at virtual time
// now.
func NewRecorder(g *Graph, thread int, now vtime.Cycles) (*Recorder, error) {
	if thread < 0 || thread >= g.Threads() {
		return nil, fmt.Errorf("core: thread slot %d out of range [0,%d)", thread, g.Threads())
	}
	r := &Recorder{
		graph:  g,
		thread: thread,
		clock:  vclock.New(g.Threads()),
	}
	r.startSub(now)
	return r, nil
}

// Thread returns the recorder's thread slot.
func (r *Recorder) Thread() int { return r.thread }

// Alpha returns the current sub-computation counter.
func (r *Recorder) Alpha() uint64 { return r.alpha }

// Clock returns the thread's current vector clock (not a copy; callers
// must not mutate it).
func (r *Recorder) Clock() vclock.Clock { return r.clock }

// Graph returns the graph the recorder appends to.
func (r *Recorder) Graph() *Graph { return r.graph }

// Current returns the in-progress sub-computation's ID.
func (r *Recorder) Current() SubID {
	return SubID{Thread: r.thread, Alpha: r.alpha}
}

// startSub opens sub-computation Lt[α] (startSub-computation() in
// Algorithm 2): β <- 0, Ct[t] <- α+1, Lt[α].C <- Ct.
//
// Deviation from the paper's literal "Ct[t] <- α": slots here are 1-based.
// With 0-based slots a thread's first sub-computation carries an all-zero
// clock, which the component-wise comparison orders before *every* other
// sub-computation — including ones it never synchronized with. Using α+1
// restores the standard vector-clock theorem (V_e < V_f iff e
// happens-before f), which TestQuickHappensBeforeMatchesEdgeReachability
// verifies against explicit edge reachability.
func (r *Recorder) startSub(now vtime.Cycles) {
	r.beta = 0
	r.instructions = 0
	r.clock.Set(r.thread, r.alpha+1)
	r.cur = &SubComputation{
		ID:    SubID{Thread: r.thread, Alpha: r.alpha},
		Clock: r.clock.Copy(),
		Start: now,
	}
	if r.thunkCap > 0 {
		r.cur.Thunks = make([]Thunk, 0, r.thunkCap)
	}
}

// OnRead records a load's page into the read set (onMemoryAccess). The
// page id arrives already resolved by the memory substrate's cached page
// lookup (mem.Fault.Page); no layer above mem re-derives it from the
// address.
func (r *Recorder) OnRead(page uint64) { r.cur.ReadSet.Add(page) }

// OnWrite records a store's page into the write set (onMemoryAccess). The
// page id is the one resolved in mem, as for OnRead.
func (r *Recorder) OnWrite(page uint64) { r.cur.WriteSet.Add(page) }

// OnInstructions counts instructions retired in the current thunk. This is
// the per-access hot path (every tracked load/store lands here), so it
// only bumps the running thunk counter; the per-sub-computation total
// folds in lazily when a thunk or the sub-computation closes.
func (r *Recorder) OnInstructions(n uint64) {
	r.instructions += n
}

// closeThunk folds the running instruction count into the sub-computation
// total and appends the completed thunk.
func (r *Recorder) closeThunk(th Thunk) {
	th.Index = r.beta
	th.Instructions = r.instructions
	r.cur.Instructions += r.instructions
	r.cur.Thunks = append(r.cur.Thunks, th)
	r.beta++
	r.instructions = 0
}

// OnBranch closes the current thunk with the (interned) branch site that
// terminated it and opens thunk β+1 (onBranchAccess in Algorithm 2).
func (r *Recorder) OnBranch(site SiteRef, taken bool) {
	r.closeThunk(Thunk{Site: site, Taken: taken})
}

// OnIndirect is OnBranch for indirect transfers. Target 0 (the empty
// string) marks an unresolved destination; the PT decoder resolves
// targets offline from the trace.
func (r *Recorder) OnIndirect(site, target SiteRef) {
	r.closeThunk(Thunk{Site: site, Indirect: true, Target: target})
}

// EndSub closes the current sub-computation at a synchronization point
// (the α <- α+1 step of Algorithm 1) and returns it after adding it to
// the graph.
func (r *Recorder) EndSub(ev SyncEvent, now vtime.Cycles) (*SubComputation, error) {
	// Fold the tail thunk's instructions (retired since the last branch)
	// into the sub-computation total.
	r.cur.Instructions += r.instructions
	r.instructions = 0
	r.cur.End = ev
	r.cur.Finish = now
	done := r.cur
	r.thunkCap = len(done.Thunks)
	// The graph retains every completed sub-computation, so a slice
	// whose prediction badly overshot would pin its oversized backing
	// array forever; copy-shrink before publishing. Branchless subs
	// publish nil, exactly as they did before pre-sizing existed (the
	// CPG JSON encodes nil as null, and drift checks byte-compare it).
	if len(done.Thunks) == 0 {
		done.Thunks = nil
	} else if c := cap(done.Thunks); c > 16 && c > 4*len(done.Thunks) {
		done.Thunks = append([]Thunk(nil), done.Thunks...)
	}
	if err := r.graph.add(done); err != nil {
		return nil, err
	}
	r.alpha++
	r.startSub(now)
	return done, nil
}

// MarkGap records a trace-loss interval on the recorder's thread. The
// instrumentation layer calls it when it observes lost trace bytes at a
// sub-computation boundary (AUX ring overrun, truncated stream) or when
// the workload body unwinds mid-sub-computation; the interval names the
// alphas whose recorded detail the loss affects.
func (r *Recorder) MarkGap(gp Gap) {
	r.graph.AddGap(r.thread, gp)
}

// Release performs the provenance side of a release operation on S
// (case release(S) in onSynchronization): the *completed* sub-computation
// from is what the next acquirer synchronizes with, and it is from's
// stamped clock — not the thread's current clock — that folds into CS.
//
// Algorithm 1 orders the steps as: α <- α+1, then onSynchronization(S),
// then startSub-computation (which bumps Ct[t]). EndSub here opens the
// next sub-computation eagerly, so by the time Release runs the thread
// clock already carries the *next* sub's slot value; publishing it would
// falsely order the releaser's next sub-computation before the acquirer.
// Using the completed sub's stamp reproduces the algorithm's ordering
// exactly (the clock never changes during a sub-computation's execution).
func (r *Recorder) Release(s *SyncObject, from *SubComputation) {
	s.release(from.Clock, from.ID)
}

// Acquire performs the provenance side of an acquire operation on S,
// merging CS into Ct and adding schedule edges from the releasers it
// synchronizes with to the thread's current (fresh) sub-computation.
func (r *Recorder) Acquire(s *SyncObject) {
	releasers := s.acquire(r.clock)
	// The acquire binds to the sub-computation that starts after the
	// synchronization call; its clock must reflect the merge.
	r.cur.Clock = r.clock.Copy()
	to := r.Current()
	for _, from := range releasers {
		if from.Thread == to.Thread && from.Alpha+1 == to.Alpha {
			// Program order already covers this edge.
			continue
		}
		r.graph.addSyncEdge(from, to, s.Ref())
	}
}

// MergeAcquire folds S's clock into the thread clock without touching the
// releaser bookkeeping. Barriers use it together with AddScheduleEdge:
// the barrier implementation tracks per-generation arrival sets itself, so
// edges come from the captured generation rather than the object's
// accumulated releaser list.
func (r *Recorder) MergeAcquire(s *SyncObject) {
	s.acquire(r.clock)
	r.cur.Clock = r.clock.Copy()
}

// AddScheduleEdge records an explicit release -> acquire edge from a
// known releaser to the recorder's current sub-computation, skipping
// edges already implied by program order.
func (r *Recorder) AddScheduleEdge(from SubID, object ObjRef) {
	to := r.Current()
	if from.Thread == to.Thread && from.Alpha+1 == to.Alpha {
		return
	}
	r.graph.addSyncEdge(from, to, object)
}
