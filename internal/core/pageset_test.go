package core

import (
	"testing"
)

func TestPageSetBasics(t *testing.T) {
	s := NewPageSet()
	if s.Len() != 0 || s.Contains(1) {
		t.Fatal("new set not empty")
	}
	s.Add(5)
	s.Add(5)
	s.Add(3)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(5) || !s.Contains(3) || s.Contains(4) {
		t.Error("membership wrong")
	}
	got := s.Sorted()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Sorted = %v", got)
	}
}

func TestPageSetIntersect(t *testing.T) {
	a := NewPageSet()
	b := NewPageSet()
	for _, p := range []uint64{1, 2, 3, 4} {
		a.Add(p)
	}
	for _, p := range []uint64{3, 4, 5} {
		b.Add(p)
	}
	got := a.Intersect(b)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("Intersect = %v", got)
	}
	// Symmetric.
	got2 := b.Intersect(a)
	if len(got2) != len(got) {
		t.Error("intersection not symmetric")
	}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects = false")
	}
	c := NewPageSet()
	c.Add(99)
	if a.Intersects(c) {
		t.Error("disjoint sets intersect")
	}
	if got := a.Intersect(c); len(got) != 0 {
		t.Errorf("disjoint Intersect = %v", got)
	}
}

func TestPageSetClone(t *testing.T) {
	a := NewPageSet()
	a.Add(1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Error("clone aliases original")
	}
	if !b.Contains(1) {
		t.Error("clone missing original member")
	}
}
