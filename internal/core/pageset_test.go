package core

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageSetBasics(t *testing.T) {
	s := NewPageSet()
	if s.Len() != 0 || s.Contains(1) {
		t.Fatal("new set not empty")
	}
	s.Add(5)
	s.Add(5)
	s.Add(3)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(5) || !s.Contains(3) || s.Contains(4) {
		t.Error("membership wrong")
	}
	got := s.Sorted()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Sorted = %v", got)
	}
}

func TestPageSetSpill(t *testing.T) {
	// Cross the inline → spill boundary in descending order, so inserts
	// exercise the shifting paths of both representations.
	s := NewPageSet()
	const n = 4 * pageSetInline
	for i := n; i >= 1; i-- {
		s.Add(uint64(i * 10))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	got := s.Sorted()
	for i := 0; i < n; i++ {
		if got[i] != uint64((i+1)*10) {
			t.Fatalf("Sorted[%d] = %d", i, got[i])
		}
		if !s.Contains(uint64((i + 1) * 10)) {
			t.Fatalf("missing %d", (i+1)*10)
		}
		if s.Contains(uint64((i+1)*10 + 1)) {
			t.Fatalf("phantom %d", (i+1)*10+1)
		}
	}
}

func TestPageSetIntersect(t *testing.T) {
	a := NewPageSet()
	b := NewPageSet()
	for _, p := range []uint64{1, 2, 3, 4} {
		a.Add(p)
	}
	for _, p := range []uint64{3, 4, 5} {
		b.Add(p)
	}
	got := a.Intersect(b)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("Intersect = %v", got)
	}
	// Symmetric.
	got2 := b.Intersect(a)
	if len(got2) != len(got) {
		t.Error("intersection not symmetric")
	}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects = false")
	}
	c := NewPageSet()
	c.Add(99)
	if a.Intersects(c) {
		t.Error("disjoint sets intersect")
	}
	if got := a.Intersect(c); len(got) != 0 {
		t.Errorf("disjoint Intersect = %v", got)
	}
}

func TestPageSetClone(t *testing.T) {
	a := NewPageSet()
	a.Add(1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Error("clone aliases original")
	}
	if !b.Contains(1) {
		t.Error("clone missing original member")
	}
	// Clone a spilled set and check independence of the spill slice.
	for i := uint64(0); i < 3*pageSetInline; i++ {
		a.Add(i * 7)
	}
	c := a.Clone()
	c.Add(1_000_000)
	if a.Contains(1_000_000) || c.Len() != a.Len()+1 {
		t.Error("spilled clone aliases original")
	}
}

// TestQuickPageSetMatchesReference drives the hybrid PageSet and the
// retained map reference (PageSetMap) through identical random operation
// sequences and asserts every observable agrees — the property pinning
// the compact representation to its specification.
func TestQuickPageSetMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hybrid := NewPageSet()
		ref := NewPageSetMap()
		other := NewPageSet()
		otherRef := NewPageSetMap()
		for op := 0; op < 200; op++ {
			p := uint64(r.Intn(40)) // small range forces duplicates
			switch r.Intn(4) {
			case 0, 1:
				hybrid.Add(p)
				ref.Add(p)
			case 2:
				other.Add(p)
				otherRef.Add(p)
			case 3:
				if hybrid.Contains(p) != ref.Contains(p) {
					return false
				}
			}
			if hybrid.Len() != ref.Len() {
				return false
			}
		}
		hs, rs := hybrid.Sorted(), ref.Sorted()
		if len(hs) != len(rs) {
			return false
		}
		for i := range hs {
			if hs[i] != rs[i] {
				return false
			}
		}
		hi, ri := hybrid.Intersect(other), ref.Intersect(otherRef)
		if len(hi) != len(ri) {
			return false
		}
		for i := range hi {
			if hi[i] != ri[i] {
				return false
			}
		}
		return hybrid.Intersects(other) == ref.Intersects(otherRef)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPageSetGobRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, pageSetInline, pageSetInline + 1, 100} {
		s := NewPageSet()
		for i := 0; i < n; i++ {
			s.Add(uint64(i * i))
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
			t.Fatal(err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		var got PageSet
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatal(err)
		}
		gs, ss := got.Sorted(), s.Sorted()
		if len(gs) != len(ss) {
			t.Fatalf("n=%d: round trip lost pages: %v vs %v", n, gs, ss)
		}
		for i := range gs {
			if gs[i] != ss[i] {
				t.Fatalf("n=%d: round trip changed pages", n)
			}
		}
		// Canonical: re-encoding reproduces the bytes.
		var buf2 bytes.Buffer
		if err := gob.NewEncoder(&buf2).Encode(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("n=%d: gob encoding not canonical", n)
		}
	}
}

func TestPageSetGobDecodeCorrupt(t *testing.T) {
	// A forged count far beyond the payload must error, not panic make.
	var s PageSet
	if err := s.GobDecode([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f}); err == nil {
		t.Error("forged huge count accepted")
	}
	if err := s.GobDecode(nil); err == nil {
		t.Error("empty payload accepted")
	}
	// Truncated page list: count 2 but only one varint follows.
	if err := s.GobDecode([]byte{2, 5}); err == nil {
		t.Error("truncated payload accepted")
	}
	// Zero delta (duplicate page) is non-canonical.
	if err := s.GobDecode([]byte{2, 5, 0}); err == nil {
		t.Error("non-ascending payload accepted")
	}
	// Delta wrapping uint64 must not smuggle in an unsorted set.
	wrap := []byte{2}
	wrap = append(wrap, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01) // first = 2^64-1
	wrap = append(wrap, 5)                                                          // prev+5 wraps
	if err := s.GobDecode(wrap); err == nil {
		t.Error("wrapping delta accepted")
	}
}

func TestPageSetJSON(t *testing.T) {
	s := NewPageSet()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty set = %s, want []", data)
	}
	s.Add(9)
	s.Add(2)
	data, err = json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[2,9]" {
		t.Fatalf("set = %s, want [2,9]", data)
	}
	var got PageSet
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !got.Contains(2) || !got.Contains(9) {
		t.Fatalf("unmarshal = %v", got.Sorted())
	}
}
