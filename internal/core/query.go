package core

import (
	"fmt"

	"github.com/repro/inspector/internal/vclock"
)

// Analysis is a queryable view of a completed CPG with precomputed edges
// and adjacency. Build one with Graph.Analyze after recording finishes.
type Analysis struct {
	g     *Graph
	edges []Edge
	preds map[SubID][]Edge
	succs map[SubID][]Edge
}

// Analyze derives all edges and builds adjacency indexes.
func (g *Graph) Analyze() *Analysis {
	a := &Analysis{
		g:     g,
		edges: g.Edges(),
		preds: make(map[SubID][]Edge),
		succs: make(map[SubID][]Edge),
	}
	for _, e := range a.edges {
		a.preds[e.To] = append(a.preds[e.To], e)
		a.succs[e.From] = append(a.succs[e.From], e)
	}
	return a
}

// Graph returns the underlying CPG.
func (a *Analysis) Graph() *Graph { return a.g }

// Edges returns all derived edges.
func (a *Analysis) Edges() []Edge { return a.edges }

// kindIn reports whether k is in kinds (empty kinds means all).
func kindIn(k EdgeKind, kinds []EdgeKind) bool {
	if len(kinds) == 0 {
		return true
	}
	for _, want := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

// Ancestors returns the backward closure of id over the selected edge
// kinds (all kinds if none given), excluding id itself, ordered by
// (thread, alpha).
func (a *Analysis) Ancestors(id SubID, kinds ...EdgeKind) []SubID {
	seen := map[SubID]bool{id: true}
	stack := []SubID{id}
	var out []SubID
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.preds[cur] {
			if !kindIn(e.Kind, kinds) || seen[e.From] {
				continue
			}
			seen[e.From] = true
			out = append(out, e.From)
			stack = append(stack, e.From)
		}
	}
	sortSubIDs(out)
	return out
}

// Descendants returns the forward closure of id over the selected edge
// kinds, excluding id itself.
func (a *Analysis) Descendants(id SubID, kinds ...EdgeKind) []SubID {
	seen := map[SubID]bool{id: true}
	stack := []SubID{id}
	var out []SubID
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range a.succs[cur] {
			if !kindIn(e.Kind, kinds) || seen[e.To] {
				continue
			}
			seen[e.To] = true
			out = append(out, e.To)
			stack = append(stack, e.To)
		}
	}
	sortSubIDs(out)
	return out
}

// Slice returns the backward program slice of id: every sub-computation
// whose execution may have affected id, through any dependency kind. This
// is the query the paper's debugging case study builds on (§VIII).
func (a *Analysis) Slice(id SubID) []SubID {
	return a.Ancestors(id)
}

// PageLineage explains where the contents of page p seen by reader `at`
// may have come from: the maximal writers of p that happen-before `at`,
// each paired with its own data-dependency ancestors.
func (a *Analysis) PageLineage(p uint64, at SubID) []Lineage {
	var out []Lineage
	for _, e := range a.preds[at] {
		if e.Kind != EdgeData {
			continue
		}
		for _, page := range e.Pages {
			if page == p {
				out = append(out, Lineage{
					Writer:    e.From,
					Page:      p,
					Upstream:  a.Ancestors(e.From, EdgeData),
					ViaObject: e.Object,
				})
				break
			}
		}
	}
	return out
}

// Lineage is one provenance explanation for a page read.
type Lineage struct {
	// Writer is the sub-computation whose write may be the source.
	Writer SubID
	// Page is the page in question.
	Page uint64
	// Upstream lists Writer's own transitive data-dependency sources.
	Upstream []SubID
	// ViaObject names the sync object on the edge, if any.
	ViaObject string
}

// TaintedBy computes forward information flow: all sub-computations that
// transitively consumed data written by source (the DIFT case study's
// primitive, §VIII). Flow propagates over data edges.
func (a *Analysis) TaintedBy(source SubID) []SubID {
	return a.Descendants(source, EdgeData)
}

// Verify checks structural invariants of the recorded CPG:
//
//  1. every edge agrees with the vector-clock happens-before order;
//  2. the combined edge relation is acyclic;
//  3. read/write sets only appear on recorded vertices.
//
// It returns nil if the graph is a valid CPG.
func (a *Analysis) Verify() error {
	for _, e := range a.edges {
		sa, ok := a.g.Sub(e.From)
		if !ok {
			return fmt.Errorf("core: edge from unknown vertex %v", e.From)
		}
		sb, ok := a.g.Sub(e.To)
		if !ok {
			return fmt.Errorf("core: edge to unknown vertex %v", e.To)
		}
		if e.From.Thread == e.To.Thread {
			if e.From.Alpha >= e.To.Alpha {
				return fmt.Errorf("core: intra-thread edge %v -> %v against program order", e.From, e.To)
			}
			continue
		}
		if ord := sa.Clock.Compare(sb.Clock); ord != vclock.Before {
			return fmt.Errorf("core: %s edge %v -> %v has clock order %v, want ->",
				e.Kind, e.From, e.To, ord)
		}
	}
	return a.checkAcyclic()
}

// checkAcyclic runs Kahn's algorithm over the explicit edge set.
func (a *Analysis) checkAcyclic() error {
	indeg := make(map[SubID]int)
	for _, sc := range a.g.Subs() {
		indeg[sc.ID] = 0
	}
	for _, e := range a.edges {
		indeg[e.To]++
	}
	var queue []SubID
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	removed := 0
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, e := range a.succs[cur] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if removed != len(indeg) {
		return fmt.Errorf("core: CPG contains a cycle (%d of %d vertices sorted)", removed, len(indeg))
	}
	return nil
}

func sortSubIDs(ids []SubID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j].Less(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
