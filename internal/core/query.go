package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"

	"github.com/repro/inspector/internal/vclock"
)

// ErrUnverifiable tags Verify failures whose implicated vertices lie
// inside a recorded trace-loss gap: the invariant could not be
// established from the degraded recording, which is different from
// having observed a violation. errors.Is distinguishes the two.
var ErrUnverifiable = errors.New("core: unverifiable across a trace gap")

// cancelCheckEvery is the traversal granularity of context cancellation:
// closures, path searches, and verification probe ctx.Err() once per this
// many visited vertices (or checked edges), bounding both the check
// overhead and the latency of honoring a cancellation.
const cancelCheckEvery = 64

// Analysis is a queryable view of a CPG prefix. Build one with
// Graph.Analyze after recording finishes, or fold successive ones during
// recording with an IncrementalAnalyzer. Either way the Analysis itself
// is immutable: it covers exactly the per-thread vertex prefix captured
// at construction and never observes later appends, which is what lets
// one Analysis serve any number of concurrent readers.
//
// Vertices are densely indexed in (thread, alpha) order — index(id) =
// base[thread] + alpha. Derived edges live in two shared append-only
// arenas (csr.go); adjacency is a sealed CSR base plus small per-epoch
// overlay layers, so an incremental fold publishes a new epoch in time
// proportional to the delta while batch analyses seal everything into
// the base outright. Control edges are never stored: they are fully
// determined by the prefix lens and synthesized during traversal and
// export.
type Analysis struct {
	g *Graph
	// epoch numbers the fold that produced this Analysis: 0 for a batch
	// Analyze, 1.. for successive IncrementalAnalyzer folds.
	epoch uint64
	// base[t] is thread t's first dense index; lens[t] its sequence
	// length.
	base []int32
	lens []int
	// comp snapshots the trace-loss gaps visible inside the analyzed
	// prefix at construction time, so completeness answers stay
	// consistent with the epoch even while the graph keeps recording.
	comp Completeness

	// Edge storage and adjacency (csr.go): arena views, per-thread
	// predecessor arrays, sealed successor base + overlay layers.
	ar      arenaPair
	predOff [][]int32
	predRef [][]edgeRef
	succ    *succIndex
	layers  []succLayer

	// flat is the lazily materialized canonical edge sequence (control,
	// sync, data) — built on first Edges() call, shared by all readers.
	flatOnce sync.Once
	flat     []Edge
}

// Analyze derives all edges over the graph's current vertex prefix and
// builds the adjacency indexes. Sync-edge log entries whose endpoints
// are not yet recorded vertices (an acquire logs its edge before the
// acquiring sub-computation seals, so mid-run graphs contain such
// entries) are left out: the analysis covers exactly the recorded prefix,
// the same contract the incremental fold maintains per epoch. After a
// completed Run no such entries remain, so post-mortem analyses see every
// logged edge.
func (g *Graph) Analyze() *Analysis {
	lens := g.threadLens()
	syncEdges, dataEdges := g.prefixSections(lens)
	return newAnalysis(g, syncEdges, dataEdges, lens, 0)
}

// prefixSections derives the canonical sync and data edge sections of
// the vertex prefix bounded by lens: sync edges with both endpoints
// inside the prefix (sorted), and data edges derived over the prefix
// vertices (sorted). Together with the synthesized control edges these
// form the canonical edge sequence; the incremental fold produces the
// identical sequence by extension, and the equivalence property tests
// hold the two byte-identical.
func (g *Graph) prefixSections(lens []int) (syncEdges, dataEdges []Edge) {
	for t := range lens {
		for _, rec := range g.syncEdgeTail(t, 0) {
			if !subInPrefix(rec.From, lens) || !subInPrefix(rec.To, lens) {
				continue
			}
			syncEdges = append(syncEdges, Edge{
				From:   rec.From,
				To:     rec.To,
				Kind:   EdgeSync,
				Object: g.ObjectName(rec.Object),
			})
		}
	}
	sortEdges(syncEdges)
	dataEdges = deriveDataEdges(g.prefixSubs(lens), runtimeWorkers())
	return syncEdges, dataEdges
}

// controlEdgesFor generates the program-order edges of a vertex prefix.
func controlEdgesFor(lens []int) []Edge {
	var out []Edge
	for t, n := range lens {
		for i := 1; i < n; i++ {
			out = append(out, Edge{
				From: SubID{Thread: t, Alpha: uint64(i - 1)},
				To:   SubID{Thread: t, Alpha: uint64(i)},
				Kind: EdgeControl,
			})
		}
	}
	return out
}

// subInPrefix reports whether id lies inside the prefix bounded by lens.
func subInPrefix(id SubID, lens []int) bool {
	return id.Thread >= 0 && id.Thread < len(lens) && id.Alpha < uint64(lens[id.Thread])
}

// newAnalysis builds a fully sealed analysis over already-derived sync
// and data sections (each canonically sorted): the whole edge set goes
// into one sealed successor base with no overlay. The batch Analyze and
// the incremental reference fold land here; the live incremental fold
// builds structurally equivalent analyses through incStore.view, and
// the equivalence property tests pin the two byte-identical.
func newAnalysis(g *Graph, syncEdges, dataEdges []Edge, lens []int, epoch uint64) *Analysis {
	a := &Analysis{g: g, epoch: epoch, lens: lens}
	a.comp = summarizeGaps(g.gapsForPrefix(lens))
	a.base = make([]int32, len(a.lens)+1)
	for t, n := range a.lens {
		a.base[t+1] = a.base[t] + int32(n)
	}
	a.ar = arenaPair{sync: syncEdges, data: dataEdges}
	syncSeq := refSeq(0, len(syncEdges), false)
	dataSeq := refSeq(0, len(dataEdges), true)
	a.succ = buildSuccIndex(a.ar, syncSeq, dataSeq, lens)
	a.predOff, a.predRef = buildPredIndex(a.ar, syncSeq, dataSeq, lens)
	return a
}

// vertexIndex maps a SubID to its dense index.
func (a *Analysis) vertexIndex(id SubID) (int32, bool) {
	if id.Thread < 0 || id.Thread >= len(a.lens) || id.Alpha >= uint64(a.lens[id.Thread]) {
		return 0, false
	}
	return a.base[id.Thread] + int32(id.Alpha), true
}

// idAt is vertexIndex's inverse: the SubID at dense index vi.
func (a *Analysis) idAt(vi int32) SubID {
	t, _ := slices.BinarySearchFunc(a.base[1:], vi, func(b, v int32) int {
		return int(b) - int(v)
	})
	// BinarySearch finds the first t with base[t+1] >= vi; an exact hit
	// means vi starts the next thread's range.
	for a.base[t+1] == vi {
		t++
	}
	return SubID{Thread: t, Alpha: uint64(vi - a.base[t])}
}

// Graph returns the underlying CPG.
func (a *Analysis) Graph() *Graph { return a.g }

// Edges returns all derived edges in the canonical order (control, then
// sync, then data, each section sorted). The flat sequence is
// materialized lazily on first call and cached; traversals never touch
// it — only exports and full-sweep consumers pay for it.
func (a *Analysis) Edges() []Edge {
	a.flatOnce.Do(func() {
		syncSeq, dataSeq := canonicalRefSeqs(a.ar, a.succ, a.layers)
		out := controlEdgesFor(a.lens)
		out = slices.Grow(out, len(syncSeq)+len(dataSeq))
		for _, r := range syncSeq {
			out = append(out, *a.ar.edge(r))
		}
		for _, r := range dataSeq {
			out = append(out, *a.ar.edge(r))
		}
		a.flat = out
	})
	return a.flat
}

// Epoch returns the fold number that produced this Analysis: 0 for a
// batch Analyze, 1.. for successive IncrementalAnalyzer folds. Query
// results carry it so clients can tell which prefix of a still-running
// execution they are looking at.
func (a *Analysis) Epoch() uint64 { return a.epoch }

// NumVertices returns the vertex count of the analyzed prefix.
func (a *Analysis) NumVertices() int { return int(a.base[len(a.lens)]) }

// Completeness returns the trace-loss summary of the analyzed prefix,
// snapshotted at construction. Complete=true is the common case.
func (a *Analysis) Completeness() Completeness { return a.comp }

// Degraded reports whether the analyzed prefix contains any trace-loss
// gap — results over a degraded analysis are sound for what was
// recorded but may miss dependencies inside the gap intervals.
func (a *Analysis) Degraded() bool { return !a.comp.Complete }

// inGap reports whether id falls inside a recorded gap interval.
func (a *Analysis) inGap(id SubID) bool {
	for _, tg := range a.comp.Gaps {
		if tg.Thread != id.Thread {
			continue
		}
		for _, gp := range tg.Gaps {
			if id.Alpha >= gp.FromAlpha && id.Alpha <= gp.ToAlpha {
				return true
			}
		}
	}
	return false
}

// gapVerdict downgrades a verification failure to ErrUnverifiable when
// any implicated vertex lies inside a trace-loss gap: the recording
// cannot vouch for the invariant there, which is weaker than having
// witnessed a violation.
func (a *Analysis) gapVerdict(err error, ids ...SubID) error {
	for _, id := range ids {
		if a.inGap(id) {
			return fmt.Errorf("%w: %v", ErrUnverifiable, err)
		}
	}
	return err
}

// Subs returns the analyzed prefix's vertices in (thread, alpha) order.
// Unlike Graph.Subs it never sees vertices appended after the fold, so
// consumers that must stay consistent with the analysis (stats, exports)
// read the prefix through it.
func (a *Analysis) Subs() []*SubComputation {
	out := make([]*SubComputation, 0, a.NumVertices())
	for t, n := range a.lens {
		for i := 0; i < n; i++ {
			sc, _ := a.g.Sub(SubID{Thread: t, Alpha: uint64(i)})
			out = append(out, sc)
		}
	}
	return out
}

// ExportJSON writes a deterministic JSON document of the analysis: the
// per-thread vertex counts of the analyzed prefix and every derived edge
// in the canonical order. Two analyses over the same prefix — however
// they were built, batch or folded — export byte-identical documents;
// the incremental equivalence property tests pin exactly that. The
// epoch number is deliberately excluded: it describes how the analysis
// was reached, not what it contains.
func (a *Analysis) ExportJSON(w io.Writer) error {
	doc := struct {
		ThreadLens []int  `json:"thread_lens"`
		Edges      []Edge `json:"edges"`
	}{ThreadLens: a.lens, Edges: a.Edges()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: export analysis: %w", err)
	}
	return nil
}

// kindIn reports whether k is in kinds (empty kinds means all).
func kindIn(k EdgeKind, kinds []EdgeKind) bool {
	if len(kinds) == 0 {
		return true
	}
	for _, want := range kinds {
		if k == want {
			return true
		}
	}
	return false
}

// closure runs a DFS from id over the selected edge kinds, following
// either predecessor or successor edges, and returns the visited vertex
// ids (excluding id), ordered by (thread, alpha). It checks ctx every
// cancelCheckEvery visited vertices and returns ctx's error (with the
// partial result discarded) once the context is done.
func (a *Analysis) closure(ctx context.Context, id SubID, kinds []EdgeKind, forward bool) ([]SubID, error) {
	start, ok := a.vertexIndex(id)
	if !ok {
		return nil, nil
	}
	seen := make([]bool, a.NumVertices())
	seen[start] = true
	stack := []SubID{id}
	var out []SubID
	var runs [][]edgeRef
	popped := 0
	visit := func(_ edgeRef, e *Edge) bool {
		if !kindIn(e.Kind, kinds) {
			return true
		}
		next := e.From
		if forward {
			next = e.To
		}
		ni, ok := a.vertexIndex(next)
		if !ok || seen[ni] {
			return true
		}
		seen[ni] = true
		out = append(out, next)
		stack = append(stack, next)
		return true
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if popped++; popped%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if forward {
			a.visitSuccs(cur, &runs, visit)
		} else {
			a.visitPreds(cur, visit)
		}
	}
	sortSubIDs(out)
	return out, nil
}

// Ancestors returns the backward closure of id over the selected edge
// kinds (all kinds if none given), excluding id itself, ordered by
// (thread, alpha).
func (a *Analysis) Ancestors(id SubID, kinds ...EdgeKind) []SubID {
	out, _ := a.closure(context.Background(), id, kinds, false)
	return out
}

// AncestorsCtx is Ancestors with cancellation: it stops the traversal and
// returns ctx's error once the context is done.
func (a *Analysis) AncestorsCtx(ctx context.Context, id SubID, kinds ...EdgeKind) ([]SubID, error) {
	return a.closure(ctx, id, kinds, false)
}

// Descendants returns the forward closure of id over the selected edge
// kinds, excluding id itself.
func (a *Analysis) Descendants(id SubID, kinds ...EdgeKind) []SubID {
	out, _ := a.closure(context.Background(), id, kinds, true)
	return out
}

// DescendantsCtx is Descendants with cancellation.
func (a *Analysis) DescendantsCtx(ctx context.Context, id SubID, kinds ...EdgeKind) ([]SubID, error) {
	return a.closure(ctx, id, kinds, true)
}

// Slice returns the backward program slice of id: every sub-computation
// whose execution may have affected id, through any dependency kind. This
// is the query the paper's debugging case study builds on (§VIII).
func (a *Analysis) Slice(id SubID) []SubID {
	return a.Ancestors(id)
}

// SliceCtx is Slice with cancellation.
func (a *Analysis) SliceCtx(ctx context.Context, id SubID) ([]SubID, error) {
	return a.AncestorsCtx(ctx, id)
}

// PageLineage explains where the contents of page p seen by reader `at`
// may have come from: the maximal writers of p that happen-before `at`,
// each paired with its own data-dependency ancestors.
func (a *Analysis) PageLineage(p uint64, at SubID) []Lineage {
	out, _ := a.PageLineageCtx(context.Background(), p, at)
	return out
}

// PageLineageCtx is PageLineage with cancellation: the upstream-closure
// walks stop once the context is done.
func (a *Analysis) PageLineageCtx(ctx context.Context, p uint64, at SubID) ([]Lineage, error) {
	if _, ok := a.vertexIndex(at); !ok {
		return nil, nil
	}
	var out []Lineage
	var walkErr error
	a.visitPreds(at, func(_ edgeRef, e *Edge) bool {
		if e.Kind != EdgeData {
			return true
		}
		for _, page := range e.Pages {
			if page == p {
				up, err := a.AncestorsCtx(ctx, e.From, EdgeData)
				if err != nil {
					walkErr = err
					return false
				}
				out = append(out, Lineage{
					Writer:    e.From,
					Page:      p,
					Upstream:  up,
					ViaObject: e.Object,
				})
				break
			}
		}
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return out, nil
}

// Lineage is one provenance explanation for a page read.
type Lineage struct {
	// Writer is the sub-computation whose write may be the source.
	Writer SubID
	// Page is the page in question.
	Page uint64
	// Upstream lists Writer's own transitive data-dependency sources.
	Upstream []SubID
	// ViaObject names the sync object on the edge, if any.
	ViaObject string
}

// TaintedBy computes forward information flow: all sub-computations that
// transitively consumed data written by source (the DIFT case study's
// primitive, §VIII). Flow propagates over data edges.
func (a *Analysis) TaintedBy(source SubID) []SubID {
	return a.Descendants(source, EdgeData)
}

// TaintedByCtx is TaintedBy with cancellation.
func (a *Analysis) TaintedByCtx(ctx context.Context, source SubID) ([]SubID, error) {
	return a.DescendantsCtx(ctx, source, EdgeData)
}

// Path returns one dependency chain from `from` to `to` — the "why does B
// depend on A" debugging query (§VIII) — as the sequence of edges of a
// shortest such chain over the selected kinds (all kinds if none given).
// It returns nil if no chain exists.
func (a *Analysis) Path(from, to SubID, kinds ...EdgeKind) []Edge {
	out, _ := a.PathCtx(context.Background(), from, to, kinds...)
	return out
}

// pathUnset marks a vertex BFS has not reached; any other parent value
// is the edgeRef that first reached it (ctrlRef for a control edge).
const pathUnset edgeRef = -1

// PathCtx is Path with cancellation: the BFS stops and returns ctx's
// error once the context is done.
func (a *Analysis) PathCtx(ctx context.Context, from, to SubID, kinds ...EdgeKind) ([]Edge, error) {
	src, ok := a.vertexIndex(from)
	if !ok {
		return nil, nil
	}
	dst, ok := a.vertexIndex(to)
	if !ok {
		return nil, nil
	}
	if src == dst {
		return nil, nil
	}
	// BFS forward from src; parent remembers the edge that first reached
	// each vertex.
	parent := make([]edgeRef, a.NumVertices())
	for i := range parent {
		parent[i] = pathUnset
	}
	queue := []SubID{from}
	var runs [][]edgeRef
	found := false
	popped := 0
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		if popped++; popped%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		a.visitSuccs(cur, &runs, func(ref edgeRef, e *Edge) bool {
			if !kindIn(e.Kind, kinds) {
				return true
			}
			ni, ok := a.vertexIndex(e.To)
			if !ok || ni == src || parent[ni] != pathUnset {
				return true
			}
			parent[ni] = ref
			if ni == dst {
				found = true
				return false
			}
			queue = append(queue, e.To)
			return true
		})
	}
	if !found {
		return nil, nil
	}
	var chain []Edge
	for cur := to; cur != from; {
		vi, _ := a.vertexIndex(cur)
		var e Edge
		if r := parent[vi]; r == ctrlRef {
			e = Edge{From: SubID{Thread: cur.Thread, Alpha: cur.Alpha - 1}, To: cur, Kind: EdgeControl}
		} else {
			e = *a.ar.edge(r)
		}
		chain = append(chain, e)
		cur = e.From
	}
	slices.Reverse(chain)
	return chain, nil
}

// Verify checks structural invariants of the recorded CPG:
//
//  1. every edge agrees with the vector-clock happens-before order;
//  2. the combined edge relation is acyclic;
//  3. read/write sets only appear on recorded vertices: every vertex
//     occupies the (thread, alpha) slot its ID names, and every data
//     edge's pages are contained in the writer's write set and the
//     reader's read set — no edge can smuggle in pages its endpoints
//     never recorded.
//
// It returns nil if the graph is a valid CPG. A failure whose implicated
// vertices lie inside a recorded trace-loss gap comes back wrapping
// ErrUnverifiable instead: the degraded recording cannot establish the
// invariant there, which is distinct from a witnessed violation.
func (a *Analysis) Verify() error {
	return a.VerifyCtx(context.Background())
}

// VerifyCtx is Verify with cancellation: the edge sweep and the
// acyclicity check stop and return ctx's error once the context is done.
func (a *Analysis) VerifyCtx(ctx context.Context) error {
	// Invariant 3a: stored vertices sit at their recorded slots. Only the
	// analyzed prefix is checked — vertices sealed after the fold belong
	// to a later epoch's analysis.
	for t := 0; t < len(a.lens); t++ {
		seq := a.g.ThreadSeq(t)
		if len(seq) > a.lens[t] {
			seq = seq[:a.lens[t]]
		}
		for i, sc := range seq {
			if want := (SubID{Thread: t, Alpha: uint64(i)}); sc.ID != want {
				return a.gapVerdict(
					fmt.Errorf("core: vertex at slot %v records ID %v", want, sc.ID), want)
			}
		}
	}
	for ei, e := range a.Edges() {
		if ei%cancelCheckEvery == cancelCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		sa, ok := a.g.Sub(e.From)
		if !ok {
			return a.gapVerdict(fmt.Errorf("core: edge from unknown vertex %v", e.From), e.From, e.To)
		}
		sb, ok := a.g.Sub(e.To)
		if !ok {
			return a.gapVerdict(fmt.Errorf("core: edge to unknown vertex %v", e.To), e.From, e.To)
		}
		// Invariant 3b: data-edge pages come from the endpoints' sets.
		if e.Kind == EdgeData {
			if len(e.Pages) == 0 {
				return a.gapVerdict(
					fmt.Errorf("core: data edge %v -> %v carries no pages", e.From, e.To),
					e.From, e.To)
			}
			for _, p := range e.Pages {
				if !sa.WriteSet.Contains(p) {
					return a.gapVerdict(
						fmt.Errorf("core: data edge %v -> %v page %d not in writer's write set",
							e.From, e.To, p),
						e.From, e.To)
				}
				if !sb.ReadSet.Contains(p) {
					return a.gapVerdict(
						fmt.Errorf("core: data edge %v -> %v page %d not in reader's read set",
							e.From, e.To, p),
						e.From, e.To)
				}
			}
		}
		if e.From.Thread == e.To.Thread {
			if e.From.Alpha >= e.To.Alpha {
				return a.gapVerdict(
					fmt.Errorf("core: intra-thread edge %v -> %v against program order", e.From, e.To),
					e.From, e.To)
			}
			continue
		}
		if ord := sa.Clock.Compare(sb.Clock); ord != vclock.Before {
			return a.gapVerdict(
				fmt.Errorf("core: %s edge %v -> %v has clock order %v, want ->",
					e.Kind, e.From, e.To, ord),
				e.From, e.To)
		}
	}
	return a.checkAcyclic(ctx)
}

// checkAcyclic runs Kahn's algorithm over the edge relation: control
// in-degrees come from the prefix lens, sync and data in-degrees from a
// direct arena sweep, and the removal wave walks the overlay adjacency.
func (a *Analysis) checkAcyclic(ctx context.Context) error {
	n := a.NumVertices()
	indeg := make([]int32, n)
	for t, ln := range a.lens {
		for i := 1; i < ln; i++ {
			indeg[a.base[t]+int32(i)]++
		}
	}
	for i := range a.ar.sync {
		if vi, ok := a.vertexIndex(a.ar.sync[i].To); ok {
			indeg[vi]++
		}
	}
	for i := range a.ar.data {
		if vi, ok := a.vertexIndex(a.ar.data[i].To); ok {
			indeg[vi]++
		}
	}
	var queue []int32
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, int32(i))
		}
	}
	var runs [][]edgeRef
	removed := 0
	var ctxErr error
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		if removed%cancelCheckEvery == 0 {
			if ctxErr = ctx.Err(); ctxErr != nil {
				return ctxErr
			}
		}
		a.visitSuccs(a.idAt(cur), &runs, func(_ edgeRef, e *Edge) bool {
			vi, ok := a.vertexIndex(e.To)
			if !ok {
				return true
			}
			indeg[vi]--
			if indeg[vi] == 0 {
				queue = append(queue, vi)
			}
			return true
		})
	}
	if removed != n {
		err := fmt.Errorf("core: CPG contains a cycle (%d of %d vertices sorted)", removed, n)
		// A cycle has no single implicated vertex; over a degraded
		// recording it cannot be pinned on observed behaviour.
		if a.Degraded() {
			return fmt.Errorf("%w: %v", ErrUnverifiable, err)
		}
		return err
	}
	return nil
}

// sortSubIDs orders ids by (thread, alpha). The pre-columnar core used an
// insertion sort here, which made Slice/TaintedBy quadratic on wide
// closures (BenchmarkSliceWide pins the fix).
func sortSubIDs(ids []SubID) {
	slices.SortFunc(ids, func(a, b SubID) int {
		if a.Thread != b.Thread {
			return a.Thread - b.Thread
		}
		switch {
		case a.Alpha < b.Alpha:
			return -1
		case a.Alpha > b.Alpha:
			return 1
		default:
			return 0
		}
	})
}
