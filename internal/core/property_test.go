package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomExecution simulates a serialized interleaving of nThreads threads
// performing random page accesses and lock transfers over nLocks mutexes,
// producing a recorded CPG. Serializing the interleaving makes the test
// deterministic per seed while still exploring arbitrary sync orders.
func randomExecution(t *testing.T, r *rand.Rand, nThreads, nLocks, steps int) *Graph {
	t.Helper()
	g := NewGraph(nThreads)
	recs := make([]*Recorder, nThreads)
	for i := range recs {
		recs[i] = mustRecorder(t, g, i)
	}
	site := g.InternSite("b")
	lockObj := g.InternObject("lock")
	locks := make([]*SyncObject, nLocks)
	held := make([]int, nLocks) // -1 = free, else thread
	for i := range locks {
		locks[i] = g.NewSyncObject("lock", false)
		held[i] = -1
	}
	for s := 0; s < steps; s++ {
		th := r.Intn(nThreads)
		rec := recs[th]
		switch r.Intn(4) {
		case 0:
			rec.OnRead(uint64(r.Intn(12)))
		case 1:
			rec.OnWrite(uint64(r.Intn(12)))
		case 2:
			rec.OnBranch(site, r.Intn(2) == 0)
		case 3:
			l := r.Intn(nLocks)
			if held[l] == th {
				// Release it.
				sc, err := rec.EndSub(SyncEvent{Kind: SyncRelease, Object: lockObj}, 0)
				if err != nil {
					t.Fatal(err)
				}
				rec.Release(locks[l], sc)
				held[l] = -1
			} else if held[l] == -1 {
				// Acquire it.
				if _, err := rec.EndSub(SyncEvent{Kind: SyncAcquire, Object: lockObj}, 0); err != nil {
					t.Fatal(err)
				}
				rec.Acquire(locks[l])
				held[l] = th
			}
		}
	}
	// Close all threads.
	for _, rec := range recs {
		if _, err := rec.EndSub(SyncEvent{Kind: SyncNone}, 0); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestQuickRandomExecutionsVerify(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomExecution(t, r, 2+r.Intn(4), 1+r.Intn(3), 50+r.Intn(200))
		return g.Analyze().Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickDataEdgesConsistent(t *testing.T) {
	// Every data edge must (a) respect happens-before, (b) share at
	// least one page between the writer's write set and the reader's
	// read set, and (c) not be hidden by an intermediate writer.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomExecution(t, r, 2+r.Intn(3), 2, 100+r.Intn(150))
		for _, e := range g.DataEdges() {
			if !g.HappensBefore(e.From, e.To) {
				return false
			}
			sf, _ := g.Sub(e.From)
			st, _ := g.Sub(e.To)
			if len(e.Pages) == 0 {
				return false
			}
			for _, p := range e.Pages {
				if !sf.WriteSet.Contains(p) || !st.ReadSet.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickMaximalWriterRule(t *testing.T) {
	// For any data edge (m -> n, page p), no writer w of p may satisfy
	// m -> w -> n.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomExecution(t, r, 3, 1, 150)
		subs := g.Subs()
		for _, e := range g.DataEdges() {
			for _, p := range e.Pages {
				for _, w := range subs {
					if w.ID == e.From || w.ID == e.To || !w.WriteSet.Contains(p) {
						continue
					}
					if g.HappensBefore(e.From, w.ID) && g.HappensBefore(w.ID, e.To) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickHappensBeforeMatchesEdgeReachability(t *testing.T) {
	// Vector-clock happens-before must equal reachability over
	// control+sync edges (the clocks are redundant with the recorded
	// schedule — the decentralization claim of §IV-B).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomExecution(t, r, 2+r.Intn(3), 1+r.Intn(2), 120)
		a := g.Analyze()
		subs := g.Subs()
		reach := make(map[SubID]map[SubID]bool)
		for _, sc := range subs {
			reach[sc.ID] = make(map[SubID]bool)
			for _, d := range a.Descendants(sc.ID, EdgeControl, EdgeSync) {
				reach[sc.ID][d] = true
			}
		}
		for _, x := range subs {
			for _, y := range subs {
				if x.ID == y.ID {
					continue
				}
				hb := g.HappensBefore(x.ID, y.ID)
				if hb != reach[x.ID][y.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQuickSliceContainsDataAncestors(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomExecution(t, r, 3, 2, 120)
		a := g.Analyze()
		for _, sc := range g.Subs() {
			slice := a.Slice(sc.ID)
			inSlice := make(map[SubID]bool, len(slice))
			for _, id := range slice {
				inSlice[id] = true
			}
			for _, anc := range a.Ancestors(sc.ID, EdgeData) {
				if !inSlice[anc] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickExportRoundTripPreservesEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomExecution(t, r, 3, 2, 100)
		d := g.Dump()
		g2, err := FromDump(d)
		if err != nil {
			return false
		}
		e1, e2 := g.Edges(), g2.Edges()
		if len(e1) != len(e2) {
			return false
		}
		for i := range e1 {
			if e1[i].From != e2[i].From || e1[i].To != e2[i].To || e1[i].Kind != e2[i].Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
