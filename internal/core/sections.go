package core

// The on-disk CPG format (internal/cpgfile) serializes an Analysis as
// columnar sections — vertices, sync/data adjacency, gaps — and loads
// them back without re-deriving anything. This file is the exported
// surface that makes the round trip possible from outside the package:
// extracting the canonical sections of an Analysis, appending restored
// vertices and sync-edge log entries to a Graph, and assembling an
// Analysis directly over pre-derived sections (the load-side mirror of
// newAnalysis, which batch Analyze and the incremental fold share).

import "fmt"

// ThreadLens returns the per-thread vertex counts of the analyzed
// prefix — the dense-index layout serializers persist alongside the
// edge sections.
func (a *Analysis) ThreadLens() []int {
	out := make([]int, len(a.lens))
	copy(out, a.lens)
	return out
}

// EdgeSections returns the canonical sync and data edge sections of the
// analysis, each in the canonical sorted order. Together with the
// control edges (fully determined by ThreadLens and never stored) they
// reproduce exactly the sequence Edges returns. Both slices are fresh
// copies the caller may keep.
func (a *Analysis) EdgeSections() (syncEdges, dataEdges []Edge) {
	syncSeq, dataSeq := canonicalRefSeqs(a.ar, a.succ, a.layers)
	syncEdges = make([]Edge, 0, len(syncSeq))
	for _, r := range syncSeq {
		syncEdges = append(syncEdges, *a.ar.edge(r))
	}
	dataEdges = make([]Edge, 0, len(dataSeq))
	for _, r := range dataSeq {
		dataEdges = append(dataEdges, *a.ar.edge(r))
	}
	return syncEdges, dataEdges
}

// AppendSub appends a restored sub-computation to its thread's shard —
// the deserialization mirror of the EndSub append path. Alphas must
// arrive dense and in order per thread, exactly as FromDump feeds them.
func (g *Graph) AppendSub(sc *SubComputation) error { return g.add(sc) }

// RestoreSyncEdge re-records a release -> acquire schedule dependency in
// the acquiring thread's edge log (deserialization path; the object ref
// must come from this graph's interner).
func (g *Graph) RestoreSyncEdge(from, to SubID, object ObjRef) {
	g.addSyncEdge(from, to, object)
}

// PageSetFromSorted builds a PageSet from pages in strictly ascending
// order — the deserialization fast path, exported for section decoders.
// Non-ascending input is rejected rather than repaired: on-disk sections
// are canonical by construction, so disorder means corruption.
func PageSetFromSorted(pages []uint64) (PageSet, error) {
	for i := 1; i < len(pages); i++ {
		if pages[i] <= pages[i-1] {
			return PageSet{}, fmt.Errorf("core: pages not strictly ascending at index %d", i)
		}
	}
	return pageSetFromSorted(pages), nil
}

// EdgeCanonicalLess reports the canonical edge order — (From, To,
// Kind, Object) — exported so section decoders can validate stored
// order themselves and name the offending section in their errors.
func EdgeCanonicalLess(a, b Edge) bool { return edgeLess(a, b) }

// NewAnalysisFromSections assembles a sealed Analysis over pre-derived
// canonical edge sections, skipping derivation entirely — the load path
// for on-disk CPGs, whose data edges were derived once at write time.
// lens must cover exactly the graph's recorded prefix, and both edge
// sections must be canonically sorted with every endpoint inside the
// prefix; violations are corruption and fail loudly rather than
// producing an index that silently mis-answers queries. Completeness
// comes from the graph's recorded gaps, as in every other construction
// path.
func NewAnalysisFromSections(g *Graph, lens []int, epoch uint64, syncEdges, dataEdges []Edge) (*Analysis, error) {
	if len(lens) != g.Threads() {
		return nil, fmt.Errorf("core: section lens cover %d threads, graph has %d", len(lens), g.Threads())
	}
	for t, n := range lens {
		if n < 0 || n != g.shardLen(t) {
			return nil, fmt.Errorf("core: section len %d for thread %d, graph holds %d vertices",
				n, t, g.shardLen(t))
		}
	}
	if err := checkSection("sync", syncEdges, EdgeSync, lens); err != nil {
		return nil, err
	}
	if err := checkSection("data", dataEdges, EdgeData, lens); err != nil {
		return nil, err
	}
	return newAnalysis(g, syncEdges, dataEdges, lens, epoch), nil
}

// checkSection validates one stored edge section: uniform kind,
// canonical order, endpoints inside the prefix.
func checkSection(name string, edges []Edge, kind EdgeKind, lens []int) error {
	for i := range edges {
		e := &edges[i]
		if e.Kind != kind {
			return fmt.Errorf("core: %s section edge %d has kind %v", name, i, e.Kind)
		}
		if !subInPrefix(e.From, lens) || !subInPrefix(e.To, lens) {
			return fmt.Errorf("core: %s section edge %d (%v -> %v) outside the vertex prefix",
				name, i, e.From, e.To)
		}
		if i > 0 && edgeLess(*e, edges[i-1]) {
			return fmt.Errorf("core: %s section out of canonical order at edge %d", name, i)
		}
	}
	return nil
}
