package core

import "sort"

// This file is the storage layer behind Analysis: two append-only edge
// arenas (sync, data) plus a sealed-base + per-epoch-delta adjacency
// overlay. The batch Analyze seals everything into one base; the
// incremental fold appends each epoch's edges to the shared arenas and
// stacks a small overlay layer on top, so sealing an epoch costs
// O(delta) instead of re-materializing O(graph) flat state. Compaction
// (collapse layers, reseal the base) runs on geometric thresholds,
// keeping the per-epoch cost amortized O(delta · log) while every
// already-published Analysis keeps its own immutable view.
//
// Why an overlay works at all: every edge materialized in an epoch has
// its To among that epoch's new vertices (control edges by
// construction; data edges are derived only for new readers; sync
// edges are logged at Acquire before the acquiring vertex seals and
// deferred until it does — and From always happens-before To, so From
// is already inside the closed cut). A vertex's predecessor list is
// therefore final at its seal epoch — per-thread append-only storage —
// while only successor lists of old vertices grow, which is exactly
// what the layered successor index absorbs.

// edgeRef names one derived edge in an Analysis's arenas: an index into
// the sync arena, or an index into the data arena tagged with
// dataRefBit. Control edges are never stored — they are fully derived
// from the prefix lens — and traversals report them as ctrlRef.
type edgeRef int32

const (
	dataRefBit edgeRef = 1 << 30
	ctrlRef    edgeRef = -2
)

// arenaPair bundles the two edge arenas a ref can point into. Views
// held by an Analysis are slice-header snapshots: later epochs append
// beyond the captured lengths (disjoint addresses), never in place.
type arenaPair struct {
	sync []Edge
	data []Edge
}

// edge resolves a ref to its arena entry.
func (ar arenaPair) edge(r edgeRef) *Edge {
	if r&dataRefBit != 0 {
		return &ar.data[r&^dataRefBit]
	}
	return &ar.sync[r]
}

// refSeq builds the identity ref sequence [lo, lo+n) over one arena.
func refSeq(lo, n int, data bool) []edgeRef {
	if n == 0 {
		return nil
	}
	out := make([]edgeRef, n)
	for i := range out {
		out[i] = edgeRef(lo + i)
		if data {
			out[i] |= dataRefBit
		}
	}
	return out
}

// vertexRange returns the subrange of a canonically sorted ref sequence
// whose edges leave id.
func (ar arenaPair) vertexRange(seq []edgeRef, id SubID) []edgeRef {
	lo := sort.Search(len(seq), func(i int) bool {
		return !ar.edge(seq[i]).From.Less(id)
	})
	hi := lo + sort.Search(len(seq)-lo, func(i int) bool {
		return id.Less(ar.edge(seq[lo+i]).From)
	})
	return seq[lo:hi]
}

// mergeRefSeqs k-way merges canonically sorted ref sequences into one.
// Ties keep input order (earlier sequence first); equal-comparing edges
// are byte-identical under the derivation, so any tie order exports the
// same bytes. With at most one non-empty input the slice is returned as
// is (callers treat the result as read-only or copy it).
func (ar arenaPair) mergeRefSeqs(seqs ...[]edgeRef) []edgeRef {
	live := seqs[:0]
	total := 0
	for _, s := range seqs {
		if len(s) > 0 {
			live = append(live, s)
			total += len(s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	out := make([]edgeRef, 0, total)
	for {
		best := -1
		var bestE *Edge
		for i, s := range live {
			if len(s) == 0 {
				continue
			}
			e := ar.edge(s[0])
			if best < 0 || edgeLess(*e, *bestE) {
				best, bestE = i, e
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, live[best][0])
		live[best] = live[best][1:]
	}
}

// succIndex is a sealed CSR over the successor adjacency of an arena
// prefix. It snapshots the lens it was built over, so dense indexing
// stays valid even as the analyzed prefix grows past it. A canonically
// sorted ref sequence is From-major in dense-vertex order, so the CSR
// refs array IS the sorted sequence and per-vertex runs come out
// (To, Kind, Object)-sorted for free.
type succIndex struct {
	lens []int
	base []int32
	// syncOff/syncSeq and dataOff/dataSeq are the two per-section CSRs.
	syncOff []int32
	syncSeq []edgeRef
	dataOff []int32
	dataSeq []edgeRef
}

// buildSuccIndex seals the given canonical ref sequences into a CSR
// over the prefix bounded by lens. Refs whose From lies outside the
// prefix (possible only in hand-built graphs; Verify reports them) are
// left out of the adjacency, matching the pre-overlay newAnalysis.
func buildSuccIndex(ar arenaPair, syncSeq, dataSeq []edgeRef, lens []int) *succIndex {
	idx := &succIndex{lens: append([]int(nil), lens...)}
	idx.base = make([]int32, len(lens)+1)
	for t, n := range lens {
		idx.base[t+1] = idx.base[t] + int32(n)
	}
	nv := int(idx.base[len(lens)])
	build := func(seq []edgeRef) ([]int32, []edgeRef) {
		off := make([]int32, nv+1)
		kept := make([]edgeRef, 0, len(seq))
		for _, r := range seq {
			if vi, ok := idx.vi(ar.edge(r).From); ok {
				off[vi+1]++
				kept = append(kept, r)
			}
		}
		for i := 0; i < nv; i++ {
			off[i+1] += off[i]
		}
		return off, kept
	}
	idx.syncOff, idx.syncSeq = build(syncSeq)
	idx.dataOff, idx.dataSeq = build(dataSeq)
	return idx
}

// vi maps a SubID to the index's own dense numbering (which can trail
// the current analysis prefix).
func (idx *succIndex) vi(id SubID) (int32, bool) {
	if id.Thread < 0 || id.Thread >= len(idx.lens) || id.Alpha >= uint64(idx.lens[id.Thread]) {
		return 0, false
	}
	return idx.base[id.Thread] + int32(id.Alpha), true
}

// run returns id's successor refs in the selected section.
func (idx *succIndex) run(id SubID, data bool) []edgeRef {
	v, ok := idx.vi(id)
	if !ok {
		return nil
	}
	if data {
		return idx.dataSeq[idx.dataOff[v]:idx.dataOff[v+1]]
	}
	return idx.syncSeq[idx.syncOff[v]:idx.syncOff[v+1]]
}

// refCount is the total adjacency size of the sealed index.
func (idx *succIndex) refCount() int { return len(idx.syncSeq) + len(idx.dataSeq) }

// succLayer is one unsealed overlay: the refs of edges appended since
// the base was sealed, each section in canonical order. A fresh layer
// covers one epoch (a contiguous arena range); collapsed layers merge
// several.
type succLayer struct {
	syncSeq []edgeRef
	dataSeq []edgeRef
}

func (l *succLayer) seq(data bool) []edgeRef {
	if data {
		return l.dataSeq
	}
	return l.syncSeq
}

func (l *succLayer) refCount() int { return len(l.syncSeq) + len(l.dataSeq) }

// canonicalRefSeqs merges a base + overlay stack back into one globally
// sorted ref sequence per section — the lazy flat view and the
// compactor share it.
func canonicalRefSeqs(ar arenaPair, succ *succIndex, layers []succLayer) (syncSeq, dataSeq []edgeRef) {
	var syncs, datas [][]edgeRef
	if succ != nil {
		syncs = append(syncs, succ.syncSeq)
		datas = append(datas, succ.dataSeq)
	}
	for i := range layers {
		syncs = append(syncs, layers[i].syncSeq)
		datas = append(datas, layers[i].dataSeq)
	}
	return ar.mergeRefSeqs(syncs...), ar.mergeRefSeqs(datas...)
}

// buildPredIndex counting-sorts canonical ref sequences by To into
// per-thread predecessor arrays: predOff[t] has lens[t]+1 offsets into
// predRef[t], and each vertex's refs are [sync From-ascending][data
// From-ascending] — exactly the order the canonical full edge sequence
// delivers incoming edges in. Refs whose To lies outside the prefix are
// left out, as in the sealed successor index.
func buildPredIndex(ar arenaPair, syncSeq, dataSeq []edgeRef, lens []int) ([][]int32, [][]edgeRef) {
	predOff := make([][]int32, len(lens))
	predRef := make([][]edgeRef, len(lens))
	fill := make([][]int32, len(lens))
	for t, n := range lens {
		predOff[t] = make([]int32, n+1)
		fill[t] = make([]int32, n)
	}
	count := func(seq []edgeRef) {
		for _, r := range seq {
			if to := ar.edge(r).To; subInPrefix(to, lens) {
				predOff[to.Thread][to.Alpha+1]++
			}
		}
	}
	count(syncSeq)
	count(dataSeq)
	for t, n := range lens {
		off := predOff[t]
		for i := 0; i < n; i++ {
			off[i+1] += off[i]
		}
		predRef[t] = make([]edgeRef, off[n])
	}
	place := func(seq []edgeRef) {
		for _, r := range seq {
			to := ar.edge(r).To
			if !subInPrefix(to, lens) {
				continue
			}
			t, i := to.Thread, to.Alpha
			predRef[t][predOff[t][i]+fill[t][i]] = r
			fill[t][i]++
		}
	}
	place(syncSeq)
	place(dataSeq)
	return predOff, predRef
}

// Compaction thresholds. Layers collapse into one once maxSuccLayers
// stack up (bounds the per-lookup merge width); the base reseals once
// the overlay both clears succCompactFloor refs and reaches half the
// base's size (geometric cadence: total reseal work over N edges is
// O(N log N), so the per-epoch amortized cost stays proportional to the
// delta).
const (
	maxSuccLayers    = 8
	succCompactFloor = 1024
)

// incStore is the shared edge store an IncrementalAnalyzer grows across
// epochs. All state is append-only or replaced wholesale, so the view
// captured for an earlier epoch never observes later extension.
type incStore struct {
	ar arenaPair
	// predOff[t]/predRef[t] are the per-thread predecessor arrays; a
	// vertex's slot is written once, at its seal epoch.
	predOff [][]int32
	predRef [][]edgeRef
	// succ is the sealed successor base (nil until first reseal);
	// layers are the unsealed epochs on top of it.
	succ      *succIndex
	layers    []succLayer
	layerRefs int
}

func newIncStore(threads int) *incStore {
	st := &incStore{
		predOff: make([][]int32, threads),
		predRef: make([][]edgeRef, threads),
	}
	for t := range st.predOff {
		st.predOff[t] = []int32{0}
	}
	return st
}

// extend appends one epoch's new edges (each slice canonically sorted)
// and returns the epoch's immutable Analysis view.
func (st *incStore) extend(g *Graph, newSync, newData []Edge, lens, prevLens []int, epoch uint64) *Analysis {
	syncLo, dataLo := len(st.ar.sync), len(st.ar.data)
	st.ar.sync = append(st.ar.sync, newSync...)
	st.ar.data = append(st.ar.data, newData...)
	layer := succLayer{
		syncSeq: refSeq(syncLo, len(newSync), false),
		dataSeq: refSeq(dataLo, len(newData), true),
	}
	if n := layer.refCount(); n > 0 {
		st.layers = append(st.layers, layer)
		st.layerRefs += n
	}
	st.appendPreds(newSync, newData, edgeRef(syncLo), edgeRef(dataLo)|dataRefBit, lens, prevLens)
	st.compact(lens)
	return st.view(g, lens, epoch)
}

// appendPreds writes the epoch's edges into their To vertices'
// predecessor slots. The derivation guarantees every To seals this very
// epoch (see the file comment), so the normal path is pure append;
// hand-built graphs can violate the discipline through arbitrary sync
// logs, and then the predecessor arrays are rebuilt from the canonical
// sequences instead (old views keep their replaced slices).
func (st *incStore) appendPreds(newSync, newData []Edge, syncLo, dataLo edgeRef, lens, prevLens []int) {
	for i := range newSync {
		if newSync[i].To.Alpha < uint64(prevLens[newSync[i].To.Thread]) {
			syncSeq, dataSeq := canonicalRefSeqs(st.ar, st.succ, st.layers)
			st.predOff, st.predRef = buildPredIndex(st.ar, syncSeq, dataSeq, lens)
			return
		}
	}
	counts := make([][]int32, len(lens))
	for t := range lens {
		if n := lens[t] - prevLens[t]; n > 0 {
			counts[t] = make([]int32, n)
		}
	}
	for i := range newSync {
		to := newSync[i].To
		counts[to.Thread][to.Alpha-uint64(prevLens[to.Thread])]++
	}
	for i := range newData {
		to := newData[i].To
		counts[to.Thread][to.Alpha-uint64(prevLens[to.Thread])]++
	}
	fill := make([][]int32, len(lens))
	for t := range lens {
		if counts[t] == nil {
			continue
		}
		off := st.predOff[t]
		last := off[len(off)-1]
		for _, c := range counts[t] {
			last += c
			off = append(off, last)
		}
		st.predOff[t] = off
		if need := int(last) - len(st.predRef[t]); need > 0 {
			st.predRef[t] = append(st.predRef[t], make([]edgeRef, need)...)
		}
		fill[t] = make([]int32, len(counts[t]))
		for i := range fill[t] {
			fill[t][i] = st.predOff[t][prevLens[t]+i]
		}
	}
	// Sync before data per vertex, each section scanned in canonical
	// order: the slots come out [sync From-asc][data From-asc].
	for i := range newSync {
		to := newSync[i].To
		k := to.Alpha - uint64(prevLens[to.Thread])
		st.predRef[to.Thread][fill[to.Thread][k]] = syncLo + edgeRef(i)
		fill[to.Thread][k]++
	}
	for i := range newData {
		to := newData[i].To
		k := to.Alpha - uint64(prevLens[to.Thread])
		st.predRef[to.Thread][fill[to.Thread][k]] = dataLo + edgeRef(i)
		fill[to.Thread][k]++
	}
}

// compact bounds the overlay: reseal the base when the overlay has
// grown to a constant fraction of it, otherwise collapse the layer
// stack when it gets too deep. Published views hold the old base
// pointer and their own copy of the layer list, so both operations are
// invisible to earlier epochs.
func (st *incStore) compact(lens []int) {
	baseRefs := 0
	if st.succ != nil {
		baseRefs = st.succ.refCount()
	}
	if st.layerRefs > succCompactFloor && st.layerRefs*2 > baseRefs {
		syncSeq, dataSeq := canonicalRefSeqs(st.ar, st.succ, st.layers)
		st.succ = buildSuccIndex(st.ar, syncSeq, dataSeq, lens)
		st.layers = nil
		st.layerRefs = 0
		return
	}
	if len(st.layers) >= maxSuccLayers {
		merged := succLayer{
			syncSeq: st.ar.mergeRefSeqs(layerSeqs(st.layers, false)...),
			dataSeq: st.ar.mergeRefSeqs(layerSeqs(st.layers, true)...),
		}
		st.layers = []succLayer{merged}
	}
}

func layerSeqs(layers []succLayer, data bool) [][]edgeRef {
	out := make([][]edgeRef, len(layers))
	for i := range layers {
		out[i] = layers[i].seq(data)
	}
	return out
}

// view captures the current store state as an epoch's immutable
// Analysis: arena slice-header snapshots, per-thread predecessor prefix
// views, the sealed base pointer, and a copy of the layer stack.
func (st *incStore) view(g *Graph, lens []int, epoch uint64) *Analysis {
	a := &Analysis{g: g, epoch: epoch, lens: append([]int(nil), lens...)}
	a.comp = summarizeGaps(g.gapsForPrefix(lens))
	a.base = make([]int32, len(lens)+1)
	for t, n := range lens {
		a.base[t+1] = a.base[t] + int32(n)
	}
	a.ar = st.ar
	a.predOff = make([][]int32, len(lens))
	a.predRef = make([][]edgeRef, len(lens))
	for t, n := range lens {
		off := st.predOff[t]
		a.predOff[t] = off[: n+1 : n+1]
		a.predRef[t] = st.predRef[t][:off[n]:off[n]]
	}
	a.succ = st.succ
	a.layers = append([]succLayer(nil), st.layers...)
	return a
}

// visitSuccs walks id's outgoing edges in the canonical per-vertex
// order — the synthesized control edge first, then the sync section,
// then the data section, each section k-way merged across the base and
// the overlay layers. fn returning false stops the walk; visitSuccs
// reports whether it ran to completion. The Edge pointer is valid only
// for the duration of the callback. scratch is per-traversal run-list
// scratch, reused across visits.
func (a *Analysis) visitSuccs(id SubID, scratch *[][]edgeRef, fn func(ref edgeRef, e *Edge) bool) bool {
	if int(id.Alpha)+1 < a.lens[id.Thread] {
		ctrl := Edge{From: id, To: SubID{Thread: id.Thread, Alpha: id.Alpha + 1}, Kind: EdgeControl}
		if !fn(ctrlRef, &ctrl) {
			return false
		}
	}
	return a.visitSuccSection(id, false, scratch, fn) &&
		a.visitSuccSection(id, true, scratch, fn)
}

func (a *Analysis) visitSuccSection(id SubID, data bool, scratch *[][]edgeRef, fn func(ref edgeRef, e *Edge) bool) bool {
	runs := (*scratch)[:0]
	defer func() { *scratch = runs[:0] }()
	if a.succ != nil {
		if run := a.succ.run(id, data); len(run) > 0 {
			runs = append(runs, run)
		}
	}
	for i := range a.layers {
		if run := a.ar.vertexRange(a.layers[i].seq(data), id); len(run) > 0 {
			runs = append(runs, run)
		}
	}
	switch len(runs) {
	case 0:
		return true
	case 1:
		for _, r := range runs[0] {
			if !fn(r, a.ar.edge(r)) {
				return false
			}
		}
		return true
	}
	for {
		best := -1
		var bestE *Edge
		for i, run := range runs {
			if len(run) == 0 {
				continue
			}
			e := a.ar.edge(run[0])
			if best < 0 || edgeLess(*e, *bestE) {
				best, bestE = i, e
			}
		}
		if best < 0 {
			return true
		}
		r := runs[best][0]
		runs[best] = runs[best][1:]
		if !fn(r, bestE) {
			return false
		}
	}
}

// visitPreds walks id's incoming edges in the canonical per-vertex
// order — control first, then the stored [sync][data] slot. Same
// callback contract as visitSuccs.
func (a *Analysis) visitPreds(id SubID, fn func(ref edgeRef, e *Edge) bool) bool {
	if id.Alpha > 0 {
		ctrl := Edge{From: SubID{Thread: id.Thread, Alpha: id.Alpha - 1}, To: id, Kind: EdgeControl}
		if !fn(ctrlRef, &ctrl) {
			return false
		}
	}
	off := a.predOff[id.Thread]
	for _, r := range a.predRef[id.Thread][off[id.Alpha]:off[id.Alpha+1]] {
		if !fn(r, a.ar.edge(r)) {
			return false
		}
	}
	return true
}
