package core

import (
	"bytes"
	"strings"
	"testing"
)

// mustRecorder builds a recorder or fails the test.
func mustRecorder(t *testing.T, g *Graph, thread int) *Recorder {
	t.Helper()
	r, err := NewRecorder(g, thread, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// endSub closes the current sub-computation or fails the test.
func endSub(t *testing.T, r *Recorder, ev SyncEvent) *SubComputation {
	t.Helper()
	sc, err := r.EndSub(ev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestRecorderLifecycle(t *testing.T) {
	g := NewGraph(2)
	r := mustRecorder(t, g, 0)
	if r.Alpha() != 0 || r.Current() != (SubID{Thread: 0, Alpha: 0}) {
		t.Fatalf("initial state: alpha=%d", r.Alpha())
	}
	r.OnRead(10)
	r.OnWrite(11)
	r.OnInstructions(5)
	r.OnBranch(g.InternSite("loop"), true)
	r.OnInstructions(3)
	r.OnIndirect(g.InternSite("dispatch"), g.InternSite("handler"))
	sc := endSub(t, r, SyncEvent{Kind: SyncRelease, Object: g.InternObject("m")})

	if !sc.ReadSet.Contains(10) || !sc.WriteSet.Contains(11) {
		t.Error("read/write sets not recorded")
	}
	if len(sc.Thunks) != 2 {
		t.Fatalf("thunks = %d, want 2", len(sc.Thunks))
	}
	if g.SiteName(sc.Thunks[0].Site) != "loop" || !sc.Thunks[0].Taken || sc.Thunks[0].Index != 0 {
		t.Errorf("thunk 0 = %+v", sc.Thunks[0])
	}
	if !sc.Thunks[1].Indirect || g.SiteName(sc.Thunks[1].Target) != "handler" || sc.Thunks[1].Index != 1 {
		t.Errorf("thunk 1 = %+v", sc.Thunks[1])
	}
	if sc.Thunks[0].Instructions != 5 || sc.Thunks[1].Instructions != 3 {
		t.Errorf("instruction counts = %d, %d", sc.Thunks[0].Instructions, sc.Thunks[1].Instructions)
	}
	if sc.Instructions != 8 {
		t.Errorf("sub instructions = %d", sc.Instructions)
	}
	if sc.End.Kind != SyncRelease || g.ObjectName(sc.End.Object) != "m" {
		t.Errorf("end event = %+v", sc.End)
	}
	// Next sub-computation has alpha 1, fresh thunk counter.
	if r.Alpha() != 1 {
		t.Errorf("alpha after EndSub = %d", r.Alpha())
	}
	r.OnBranch(g.InternSite("x"), false)
	sc2 := endSub(t, r, SyncEvent{Kind: SyncNone})
	if sc2.Thunks[0].Index != 0 {
		t.Error("thunk counter not reset across sub-computations")
	}
	if g.NumSubs() != 2 {
		t.Errorf("graph has %d subs", g.NumSubs())
	}
}

func TestRecorderClockSemantics(t *testing.T) {
	// Algorithm 2: startSub sets Ct[t] = alpha and stamps the sub.
	g := NewGraph(3)
	r := mustRecorder(t, g, 1)
	sc0 := endSub(t, r, SyncEvent{Kind: SyncRelease, Object: g.InternObject("s")})
	if got := sc0.Clock.Get(1); got != 1 {
		t.Errorf("sub 0 clock[1] = %d, want 1 (1-based slots)", got)
	}
	sc1 := endSub(t, r, SyncEvent{Kind: SyncNone})
	if got := sc1.Clock.Get(1); got != 2 {
		t.Errorf("sub 1 clock[1] = %d, want 2", got)
	}
	if !sc0.Clock.HappensBefore(sc1.Clock) {
		t.Error("program order not reflected in clocks")
	}
}

func TestRecorderThreadSlotRange(t *testing.T) {
	g := NewGraph(2)
	if _, err := NewRecorder(g, 2, 0); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := NewRecorder(g, -1, 0); err == nil {
		t.Error("negative slot accepted")
	}
}

// buildFigure1 reproduces the paper's Figure 1 execution:
//
//	T1.a: lock(); reads {y}, writes {x,y}; unlock()     (release)
//	T2.a: lock(); reads {x}, writes {y}; unlock()       (acquire+release)
//	T1.b: lock(); reads {y}, writes {y}; unlock()       (acquire)
//
// using pages x=100, y=101. The lock transfers T1.a -> T2.a -> T1.b.
func buildFigure1(t *testing.T) (*Graph, *SyncObject) {
	t.Helper()
	g := NewGraph(2)
	lock := g.NewSyncObject("lock", false)

	t1 := mustRecorder(t, g, 0)
	t2 := mustRecorder(t, g, 1)

	// T1.a executes and releases the lock.
	t1.OnRead(101)
	t1.OnWrite(100)
	t1.OnWrite(101)
	t1.OnBranch(g.InternSite("flag.if"), true)
	t1a := endSub(t, t1, SyncEvent{Kind: SyncRelease, Object: g.InternObject("lock")})
	t1.Release(lock, t1a)

	// T2.a acquires, executes, releases.
	t2.Acquire(lock)
	t2.OnRead(100)
	t2.OnWrite(101)
	t2a := endSub(t, t2, SyncEvent{Kind: SyncRelease, Object: g.InternObject("lock")})
	t2.Release(lock, t2a)

	// T1.b acquires and executes.
	t1.Acquire(lock)
	t1.OnRead(101)
	t1.OnWrite(101)
	endSub(t, t1, SyncEvent{Kind: SyncNone})
	endSub(t, t2, SyncEvent{Kind: SyncNone})
	return g, lock
}

func TestFigure1HappensBefore(t *testing.T) {
	g, _ := buildFigure1(t)
	t1a := SubID{Thread: 0, Alpha: 0}
	t1b := SubID{Thread: 0, Alpha: 1}
	t2a := SubID{Thread: 1, Alpha: 0}

	if !g.HappensBefore(t1a, t2a) {
		t.Error("T1.a must happen before T2.a (lock transfer)")
	}
	if !g.HappensBefore(t2a, t1b) {
		t.Error("T2.a must happen before T1.b")
	}
	if !g.HappensBefore(t1a, t1b) {
		t.Error("program order T1.a -> T1.b missing")
	}
	if g.HappensBefore(t2a, t1a) || g.HappensBefore(t1b, t2a) {
		t.Error("happens-before inverted")
	}
}

func TestFigure1SyncEdges(t *testing.T) {
	g, _ := buildFigure1(t)
	edges := g.SyncEdges()
	want := map[string]bool{
		"T0.0->T1.0": false, // T1.a -> T2.a
		"T1.0->T0.1": false, // T2.a -> T1.b
	}
	for _, e := range edges {
		key := e.From.String() + "->" + e.To.String()
		if _, ok := want[key]; ok {
			want[key] = true
		}
		if e.Object != "lock" {
			t.Errorf("edge %s object = %q", key, e.Object)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing sync edge %s (have %v)", k, edges)
		}
	}
}

func TestFigure1DataEdges(t *testing.T) {
	g, _ := buildFigure1(t)
	edges := g.DataEdges()
	// Expected update-use flows:
	//   T1.a writes y(101) -> T2.a ... wait, T2.a reads x(100): T1.a
	//   writes x -> T2.a reads x: edge T0.0 -> T1.0 on page 100.
	//   T2.a writes y -> T1.b reads y: edge T1.0 -> T0.1 on page 101.
	//   T1.a's write of y is hidden from T1.b by T2.a's later write,
	//   so NO direct edge T0.0 -> T0.1 for page 101.
	type ek struct {
		from, to string
		page     uint64
	}
	found := make(map[ek]bool)
	for _, e := range edges {
		for _, p := range e.Pages {
			found[ek{e.From.String(), e.To.String(), p}] = true
		}
	}
	if !found[ek{"T0.0", "T1.0", 100}] {
		t.Errorf("missing data edge T1.a -x-> T2.a; edges: %+v", edges)
	}
	if !found[ek{"T1.0", "T0.1", 101}] {
		t.Errorf("missing data edge T2.a -y-> T1.b; edges: %+v", edges)
	}
	if found[ek{"T0.0", "T0.1", 101}] {
		t.Error("T1.a's y write must be hidden from T1.b by T2.a's write (maximal-writer rule)")
	}
}

func TestFigure1Verify(t *testing.T) {
	g, _ := buildFigure1(t)
	if err := g.Analyze().Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestFigure1Queries(t *testing.T) {
	g, _ := buildFigure1(t)
	a := g.Analyze()
	t1b := SubID{Thread: 0, Alpha: 1}

	// Slice of T1.b must include everything that precedes it.
	slice := a.Slice(t1b)
	if len(slice) != 2 {
		t.Fatalf("slice = %v, want 2 ancestors", slice)
	}

	// Lineage of page 101 (y) at T1.b: writer T2.a, whose own upstream
	// includes T1.a (T2.a read x written by T1.a).
	lin := a.PageLineage(101, t1b)
	if len(lin) != 1 {
		t.Fatalf("lineage = %+v", lin)
	}
	if lin[0].Writer != (SubID{Thread: 1, Alpha: 0}) {
		t.Errorf("lineage writer = %v", lin[0].Writer)
	}
	if len(lin[0].Upstream) != 1 || lin[0].Upstream[0] != (SubID{Thread: 0, Alpha: 0}) {
		t.Errorf("lineage upstream = %v", lin[0].Upstream)
	}

	// Taint: data written by T1.a flows to T2.a and then T1.b.
	taint := a.TaintedBy(SubID{Thread: 0, Alpha: 0})
	if len(taint) != 2 {
		t.Errorf("taint set = %v", taint)
	}
}

func TestMutexReplacesReleasers(t *testing.T) {
	g := NewGraph(3)
	m := g.NewSyncObject("m", false)
	r0 := mustRecorder(t, g, 0)
	r1 := mustRecorder(t, g, 1)
	r2 := mustRecorder(t, g, 2)

	s0 := endSub(t, r0, SyncEvent{Kind: SyncRelease, Object: g.InternObject("m")})
	r0.Release(m, s0)
	s1 := endSub(t, r1, SyncEvent{Kind: SyncRelease, Object: g.InternObject("m")})
	r1.Release(m, s1)

	// r2 acquires: with mutex semantics only the LAST release forms an
	// explicit schedule edge.
	r2.Acquire(m)
	// Close every thread's in-progress sub-computation so the graph is
	// complete before verification (thread exit does this in real runs).
	for _, r := range []*Recorder{r0, r1, r2} {
		endSub(t, r, SyncEvent{Kind: SyncNone})
	}
	edges := g.SyncEdges()
	if len(edges) != 1 {
		t.Fatalf("edges = %+v, want 1", edges)
	}
	if edges[0].From != s1.ID {
		t.Errorf("edge from %v, want %v (last releaser)", edges[0].From, s1.ID)
	}
	// But the clock still orders BOTH releasers before the acquirer
	// (CS accumulates), which Verify checks.
	if err := g.Analyze().Verify(); err != nil {
		t.Error(err)
	}
}

func TestBarrierAccumulatesReleasers(t *testing.T) {
	g := NewGraph(3)
	b := g.NewSyncObject("bar", true)
	recs := []*Recorder{mustRecorder(t, g, 0), mustRecorder(t, g, 1), mustRecorder(t, g, 2)}

	// All three arrive (release), then all three depart (acquire).
	for _, r := range recs {
		sc := endSub(t, r, SyncEvent{Kind: SyncRelease, Object: g.InternObject("bar")})
		r.Release(b, sc)
	}
	for _, r := range recs {
		r.Acquire(b)
	}
	for _, r := range recs {
		endSub(t, r, SyncEvent{Kind: SyncNone})
	}
	edges := g.SyncEdges()
	// Each departure synchronizes with all arrivals except its own
	// program-order predecessor: 3 departures x 2 foreign arrivals.
	if len(edges) != 6 {
		t.Fatalf("barrier edges = %d, want 6: %+v", len(edges), edges)
	}
	if err := g.Analyze().Verify(); err != nil {
		t.Error(err)
	}
	b.ResetReleasers()
	recs[0].Acquire(b)
	if got := len(g.SyncEdges()); got != 6 {
		t.Errorf("edges after reset+acquire = %d, want 6", got)
	}
}

func TestGraphOutOfOrderAlphaRejected(t *testing.T) {
	g := NewGraph(1)
	sc := &SubComputation{ID: SubID{Thread: 0, Alpha: 5}}
	if err := g.add(sc); err == nil {
		t.Error("out-of-order alpha accepted")
	}
}

func TestControlEdges(t *testing.T) {
	g := NewGraph(1)
	r := mustRecorder(t, g, 0)
	for i := 0; i < 3; i++ {
		endSub(t, r, SyncEvent{Kind: SyncNone})
	}
	edges := g.ControlEdges()
	if len(edges) != 2 {
		t.Fatalf("control edges = %d, want 2", len(edges))
	}
	for i, e := range edges {
		if e.From.Alpha != uint64(i) || e.To.Alpha != uint64(i+1) || e.Kind != EdgeControl {
			t.Errorf("edge %d = %+v", i, e)
		}
	}
}

func TestConcurrentDetection(t *testing.T) {
	g := NewGraph(2)
	r0 := mustRecorder(t, g, 0)
	r1 := mustRecorder(t, g, 1)
	a := endSub(t, r0, SyncEvent{Kind: SyncNone})
	b := endSub(t, r1, SyncEvent{Kind: SyncNone})
	if !g.Concurrent(a.ID, b.ID) {
		t.Error("unsynchronized subs must be concurrent")
	}
	if g.Concurrent(a.ID, a.ID) {
		t.Error("a vertex is not concurrent with itself")
	}
}

func TestExportGobRoundTrip(t *testing.T) {
	g, _ := buildFigure1(t)
	var buf bytes.Buffer
	if err := g.EncodeGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func TestExportJSONRoundTrip(t *testing.T) {
	g, _ := buildFigure1(t)
	var buf bytes.Buffer
	if err := g.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumSubs() != b.NumSubs() {
		t.Fatalf("sub count %d vs %d", a.NumSubs(), b.NumSubs())
	}
	as, bs := a.Subs(), b.Subs()
	for i := range as {
		if as[i].ID != bs[i].ID {
			t.Errorf("sub %d id %v vs %v", i, as[i].ID, bs[i].ID)
		}
		if !as[i].Clock.Equals(bs[i].Clock) {
			t.Errorf("sub %v clock %v vs %v", as[i].ID, as[i].Clock, bs[i].Clock)
		}
		if as[i].ReadSet.Len() != bs[i].ReadSet.Len() || as[i].WriteSet.Len() != bs[i].WriteSet.Len() {
			t.Errorf("sub %v sets differ", as[i].ID)
		}
		if len(as[i].Thunks) != len(bs[i].Thunks) {
			t.Errorf("sub %v thunks differ", as[i].ID)
		}
	}
	ae, be := a.SyncEdges(), b.SyncEdges()
	if len(ae) != len(be) {
		t.Fatalf("sync edges %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i].From != be[i].From || ae[i].To != be[i].To {
			t.Errorf("edge %d: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := buildFigure1(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph CPG", "cluster_t0", "cluster_t1", "style=dashed", "style=bold"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if SyncAcquire.String() != "acquire" || SyncRelease.String() != "release" || SyncNone.String() != "none" {
		t.Error("SyncOpKind strings")
	}
	if EdgeControl.String() != "control" || EdgeSync.String() != "sync" || EdgeData.String() != "data" || EdgeKind(0).String() != "unknown" {
		t.Error("EdgeKind strings")
	}
	if (SubID{Thread: 2, Alpha: 5}).String() != "T2.5" {
		t.Error("SubID string")
	}
}
