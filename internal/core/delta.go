package core

import "fmt"

// An EpochDelta is the serializable difference between two consecutive
// fold epochs: exactly what FoldDelta consumed that the previous
// FoldDelta had not yet emitted. It is the unit the crash-durability
// journal appends per epoch, and — by design — the epoch-delta wire
// format a future distributed fabric would stream: self-contained,
// order-dependent, and replayable.
//
// Interned refs inside Subs and Sync are journal-scoped: they resolve
// against the symbol table built by interning every delta's Symbols in
// sequence. SymBase pins each delta to the table length it extends, so
// replay detects reordered, skipped, or cross-run records instead of
// silently mis-resolving names.
type EpochDelta struct {
	// Epoch is the fold epoch this delta seals (1 for the first fold).
	Epoch uint64
	// Lens is the folded prefix after this epoch: thread t's vertices
	// [0, Lens[t]) are analyzed. On replay the shard lengths must land
	// exactly here, which cross-checks the vertex payload.
	Lens []int
	// SymBase is the interner length the Symbols extend (ref of
	// Symbols[0]). Ref 0, the empty string every NewGraph pre-interns,
	// is never carried.
	SymBase uint32
	// Symbols are the strings interned since the previous delta, in ref
	// order.
	Symbols []string
	// Subs are the vertices the epoch's cut captured, ordered by
	// (thread, alpha).
	Subs []*SubComputation
	// Sync are the sync-edge log entries first seen by this epoch, in
	// acquiring-thread order. An entry may reference a vertex a later
	// epoch captures; the replay fold defers it exactly like the live
	// fold did.
	Sync []DeltaSyncEdge
	// Gaps are the trace-loss intervals first seen by this epoch.
	Gaps []DeltaGap
}

// DeltaSyncEdge is the stored form of one schedule-dependency log entry
// (the exported mirror of syncEdgeRec).
type DeltaSyncEdge struct {
	From, To SubID
	Object   ObjRef
}

// DeltaGap is one trace-loss interval with its owning thread.
type DeltaGap struct {
	Thread int
	Gap    Gap
}

// ApplyDelta appends one epoch delta to g — the replay half of
// FoldDelta. Deltas must be applied in epoch order against a graph
// built from them alone; following each ApplyDelta with one Fold on a
// single IncrementalAnalyzer reproduces the recording's per-epoch
// Analyses byte-for-byte.
//
// Every field is validated before it mutates g: symbol continuity,
// interned-ref range, thread range, per-thread alpha density, and the
// final shard lengths against Lens. Journal recovery feeds ApplyDelta
// records that passed a CRC check but may still be forged or stale
// (fuzzing, mixed runs), so a malformed delta must error, never panic
// and never half-apply semantic nonsense.
func ApplyDelta(g *Graph, d *EpochDelta) error {
	if d == nil {
		return fmt.Errorf("core: nil epoch delta")
	}
	if len(d.Lens) != g.threads {
		return fmt.Errorf("core: delta lens for %d threads, graph has %d", len(d.Lens), g.threads)
	}
	// Symbols first: every ref below resolves against the table as
	// extended through this delta.
	if got := g.interner.Len(); int(d.SymBase) != got {
		return fmt.Errorf("core: delta symbol base %d, graph table has %d (reordered or cross-run delta)", d.SymBase, got)
	}
	for i, s := range d.Symbols {
		want := uint32(int(d.SymBase) + i)
		if got := g.interner.Intern(s); got != want {
			return fmt.Errorf("core: delta symbol %d (%q) interned as ref %d, want %d (duplicate in tail)", i, s, got, want)
		}
	}
	nsym := uint32(g.interner.Len())
	badRef := func(r uint32) bool { return r >= nsym }
	for _, sc := range d.Subs {
		if sc == nil {
			return fmt.Errorf("core: delta contains nil sub-computation")
		}
		if badRef(uint32(sc.End.Object)) {
			return fmt.Errorf("core: sub %v end-object ref %d out of range [0,%d)", sc.ID, sc.End.Object, nsym)
		}
		for _, th := range sc.Thunks {
			if badRef(uint32(th.Site)) || badRef(uint32(th.Target)) {
				return fmt.Errorf("core: sub %v thunk %d site/target ref out of range [0,%d)", sc.ID, th.Index, nsym)
			}
		}
		// add enforces thread range and per-thread alpha density.
		if err := g.add(sc); err != nil {
			return err
		}
	}
	for _, e := range d.Sync {
		if g.shard(e.To.Thread) == nil {
			return fmt.Errorf("core: delta sync edge to out-of-range thread %d", e.To.Thread)
		}
		if badRef(uint32(e.Object)) {
			return fmt.Errorf("core: delta sync edge object ref %d out of range [0,%d)", e.Object, nsym)
		}
		g.addSyncEdge(e.From, e.To, e.Object)
	}
	for _, dg := range d.Gaps {
		if g.shard(dg.Thread) == nil {
			return fmt.Errorf("core: delta gap on out-of-range thread %d", dg.Thread)
		}
		g.AddGap(dg.Thread, dg.Gap)
	}
	for t, want := range d.Lens {
		if want < 0 {
			return fmt.Errorf("core: delta lens[%d] = %d is negative", t, want)
		}
		if got := g.shardLen(t); got != want {
			return fmt.Errorf("core: thread %d has %d vertices after delta, lens say %d", t, got, want)
		}
	}
	return nil
}
