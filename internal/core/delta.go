package core

import "fmt"

// An EpochDelta is the serializable difference between two consecutive
// fold epochs: exactly what FoldDelta consumed that the previous
// FoldDelta had not yet emitted. It is the unit the crash-durability
// journal appends per epoch, and — by design — the epoch-delta wire
// format a future distributed fabric would stream: self-contained,
// order-dependent, and replayable.
//
// Interned refs inside Subs and Sync are journal-scoped: they resolve
// against the symbol table built by interning every delta's Symbols in
// sequence. SymBase pins each delta to the table length it extends, so
// replay detects reordered, skipped, or cross-run records instead of
// silently mis-resolving names.
type EpochDelta struct {
	// Epoch is the fold epoch this delta seals (1 for the first fold).
	Epoch uint64
	// Lens is the folded prefix after this epoch: thread t's vertices
	// [0, Lens[t]) are analyzed. On replay the shard lengths must land
	// exactly here, which cross-checks the vertex payload.
	Lens []int
	// SymBase is the interner length the Symbols extend (ref of
	// Symbols[0]). Ref 0, the empty string every NewGraph pre-interns,
	// is never carried.
	SymBase uint32
	// Symbols are the strings interned since the previous delta, in ref
	// order.
	Symbols []string
	// Subs are the vertices the epoch's cut captured, ordered by
	// (thread, alpha).
	Subs []*SubComputation
	// Sync are the sync-edge log entries first seen by this epoch, in
	// acquiring-thread order. An entry may reference a vertex a later
	// epoch captures; the replay fold defers it exactly like the live
	// fold did.
	Sync []DeltaSyncEdge
	// Gaps are the trace-loss intervals first seen by this epoch.
	Gaps []DeltaGap
}

// DeltaSyncEdge is the stored form of one schedule-dependency log entry
// (the exported mirror of syncEdgeRec).
type DeltaSyncEdge struct {
	From, To SubID
	Object   ObjRef
}

// DeltaGap is one trace-loss interval with its owning thread.
type DeltaGap struct {
	Thread int
	Gap    Gap
}

// ValidateDelta checks that d is a well-formed extension of g without
// mutating either: symbol continuity against the interner, interned-ref
// range, thread range, per-thread alpha density, and the final shard
// lengths against Lens. A nil error means ApplyDelta on the same graph
// state cannot fail.
func ValidateDelta(g *Graph, d *EpochDelta) error {
	if d == nil {
		return fmt.Errorf("core: nil epoch delta")
	}
	if len(d.Lens) != g.threads {
		return fmt.Errorf("core: delta lens for %d threads, graph has %d", len(d.Lens), g.threads)
	}
	// Symbols first: every ref below resolves against the table as
	// extended through this delta.
	if got := g.interner.Len(); int(d.SymBase) != got {
		return fmt.Errorf("core: delta symbol base %d, graph table has %d (reordered or cross-run delta)", d.SymBase, got)
	}
	var tail map[string]uint32
	if len(d.Symbols) > 0 {
		tail = make(map[string]uint32, len(d.Symbols))
	}
	for i, s := range d.Symbols {
		want := uint32(int(d.SymBase) + i)
		got, present := g.interner.Find(s)
		if !present {
			got, present = tail[s]
		}
		if present {
			return fmt.Errorf("core: delta symbol %d (%q) interned as ref %d, want %d (duplicate in tail)", i, s, got, want)
		}
		tail[s] = want
	}
	nsym := uint32(int(d.SymBase) + len(d.Symbols))
	badRef := func(r uint32) bool { return r >= nsym }
	// next tracks where each thread's shard would end up, so density
	// and the Lens cross-check run against the delta alone.
	next := make([]uint64, g.threads)
	for t := range next {
		next[t] = uint64(g.shardLen(t))
	}
	for _, sc := range d.Subs {
		if sc == nil {
			return fmt.Errorf("core: delta contains nil sub-computation")
		}
		if badRef(uint32(sc.End.Object)) {
			return fmt.Errorf("core: sub %v end-object ref %d out of range [0,%d)", sc.ID, sc.End.Object, nsym)
		}
		for _, th := range sc.Thunks {
			if badRef(uint32(th.Site)) || badRef(uint32(th.Target)) {
				return fmt.Errorf("core: sub %v thunk %d site/target ref out of range [0,%d)", sc.ID, th.Index, nsym)
			}
		}
		t := sc.ID.Thread
		if t < 0 || t >= g.threads {
			return fmt.Errorf("core: thread slot %d out of range [0,%d)", t, g.threads)
		}
		if sc.ID.Alpha != next[t] {
			return fmt.Errorf("core: thread %d alpha %d out of order (have %d)", t, sc.ID.Alpha, next[t])
		}
		next[t]++
	}
	for _, e := range d.Sync {
		if g.shard(e.To.Thread) == nil {
			return fmt.Errorf("core: delta sync edge to out-of-range thread %d", e.To.Thread)
		}
		if badRef(uint32(e.Object)) {
			return fmt.Errorf("core: delta sync edge object ref %d out of range [0,%d)", e.Object, nsym)
		}
	}
	for _, dg := range d.Gaps {
		if g.shard(dg.Thread) == nil {
			return fmt.Errorf("core: delta gap on out-of-range thread %d", dg.Thread)
		}
	}
	for t, want := range d.Lens {
		if want < 0 {
			return fmt.Errorf("core: delta lens[%d] = %d is negative", t, want)
		}
		if next[t] != uint64(want) {
			return fmt.Errorf("core: thread %d has %d vertices after delta, lens say %d", t, next[t], want)
		}
	}
	return nil
}

// ApplyDelta appends one epoch delta to g — the replay half of
// FoldDelta. Deltas must be applied in epoch order against a graph
// built from them alone; following each ApplyDelta with one Fold on a
// single IncrementalAnalyzer reproduces the recording's per-epoch
// Analyses byte-for-byte.
//
// The apply is atomic: ValidateDelta runs to completion before the
// first mutation, so a rejected delta leaves g byte-for-byte untouched.
// That matters on trust boundaries — journal recovery and the network
// ingest path both feed ApplyDelta records that passed a CRC check but
// may still be forged or stale (fuzzing, mixed runs), and a rejecting
// aggregator keeps serving the last good epoch from the same graph. The
// caller serializes ApplyDelta against other mutators of g.
func ApplyDelta(g *Graph, d *EpochDelta) error {
	if err := ValidateDelta(g, d); err != nil {
		return err
	}
	for _, s := range d.Symbols {
		g.interner.Intern(s)
	}
	for _, sc := range d.Subs {
		// add re-checks thread range and alpha density; validation makes
		// failure impossible, so an error here is a bug, not bad input.
		if err := g.add(sc); err != nil {
			return err
		}
	}
	for _, e := range d.Sync {
		g.addSyncEdge(e.From, e.To, e.Object)
	}
	for _, dg := range d.Gaps {
		g.AddGap(dg.Thread, dg.Gap)
	}
	return nil
}
