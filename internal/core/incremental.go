package core

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// IncrementalAnalyzer folds a still-growing CPG into successive immutable
// Analyses — the live half of the paper's claim that provenance is
// usable *while* the traced program runs. Each Fold call captures the
// vertices and sync edges sealed since the previous epoch and extends
// the accumulated analysis state instead of re-deriving it:
//
//   - the page → writer-runs index (the structure DataEdges builds from
//     scratch on every batch run) persists across epochs and only the new
//     writers are appended to it;
//   - data edges are derived only for the epoch's new readers — fanned
//     out across fold workers with the same work-stealing pattern the
//     batch DataEdges uses (SetFoldWorkers) — using the same
//     per-(reader, thread) happens-before thresholds: a vertex already
//     analyzed can never gain a new *incoming* edge (see the cut
//     argument below), so earlier epochs' derivations are final;
//   - sync edges arrive as sorted runs that each epoch merges into the
//     store, deferring entries whose acquiring sub-computation has not
//     sealed yet (the deferred backlog stays sorted, so an epoch costs
//     one linear partition + merge, never a re-sort of the backlog);
//   - the epoch's Analysis is built by appending the new edges to the
//     shared arenas and stacking one overlay layer on the adjacency
//     (csr.go) — per-epoch sealing cost is proportional to the delta,
//     with geometric compaction bounding lookup fan-in, instead of the
//     O(graph) flat rebuild the pre-overlay fold paid;
//   - the interned symbol table is the graph's own append-only interner,
//     so materialized names never need recomputing.
//
// The result is observably identical to what Graph.Analyze would build
// over the same prefix; the equivalence property tests pin the two
// byte-identical. NewReferenceAnalyzer retains the serial
// full-rebuild-per-epoch fold as the executable reference those tests
// (and the benchmarks) compare against.
//
// # Why folding is sound: causally consistent cuts
//
// A fold must not analyze a reader before all its potential writers are
// visible, or it would derive an update-use edge from a hidden (stale)
// writer and freeze it into every later epoch. Fold therefore closes the
// captured per-thread lengths under happens-before: a sealed
// sub-computation's clock component Ct[u] names the latest thread-u
// vertex it has observed, and the recording discipline publishes a
// vertex to its shard (EndSub) before its clock can flow to any other
// thread (Release → Acquire). So extending the cut until lens[u] ≥
// Ct[u] for every captured vertex only ever pulls vertices already
// present in the shards, and the resulting prefix is closed: every
// happens-before predecessor of an included vertex is included. Under a
// closed cut, a writer sealed later cannot happen-before an
// already-included reader — which is exactly what makes per-epoch
// derivations final.
//
// An IncrementalAnalyzer is safe to drive from one goroutine while any
// number of recording threads append to the graph; Fold itself is
// serialized internally.
type IncrementalAnalyzer struct {
	g *Graph

	epoch uint64
	// lens is the folded prefix: thread t's vertices [0, lens[t]) are
	// analyzed; prevLens is the previous epoch's prefix, snapshotted at
	// the top of each fold.
	lens     []int
	prevLens []int
	// seqs mirrors the folded prefix per thread (append-only, so slices
	// handed to earlier epochs stay valid).
	seqs [][]*SubComputation
	// syncSeen counts the consumed entries of each shard's sync-edge log.
	syncSeen []int
	// pendingSync holds materialized log entries seen before their
	// endpoints sealed, in canonical sorted order.
	pendingSync []Edge
	// writers is the persistent page → writer-runs index: for each page,
	// one run per writing thread with alphas ascending.
	writers map[uint64][]incRun

	// st accumulates the arenas and the adjacency overlay across epochs.
	// The reference analyzer instead re-merges flat sections per epoch
	// (syncEdges/dataEdges) and rebuilds everything through newAnalysis.
	st        *incStore
	reference bool
	syncEdges []Edge
	dataEdges []Edge

	// workers caps the fold's data-edge derivation fan-out (0 =
	// GOMAXPROCS); workerHook, when set, runs at the start of every
	// derivation worker (fault injection hooks in, here).
	workers    int
	workerHook func(worker int)

	// gapsSeen and symSeen track how much of the gap lists and the
	// interner the delta capture (FoldDelta) has already emitted. Plain
	// Fold leaves them untouched, so an analyzer driven by FoldDelta
	// emits every item exactly once.
	gapsSeen []int
	symSeen  int

	// scratch serves the serial derivation path; parallel workers carry
	// their own.
	scratch incScratch
}

// incRun is one thread's writers of one page, alphas ascending.
type incRun struct {
	thread int32
	alphas []int32
}

// incCand identifies one candidate writer during derivation.
type incCand struct {
	thread int32
	alpha  int32
}

// incScratch is one derivation worker's reusable per-reader scratch.
type incScratch struct {
	cands    []incCand
	accFrom  []incCand
	accPages [][]uint64
}

// NewIncrementalAnalyzer prepares an empty fold state over g. No epoch
// exists until the first Fold.
func NewIncrementalAnalyzer(g *Graph) *IncrementalAnalyzer {
	n := g.Threads()
	return &IncrementalAnalyzer{
		g:        g,
		lens:     make([]int, n),
		seqs:     make([][]*SubComputation, n),
		syncSeen: make([]int, n),
		writers:  make(map[uint64][]incRun),
		st:       newIncStore(n),
		gapsSeen: make([]int, n),
		// Ref 0 is the "" every NewGraph interns; deltas never carry it,
		// so replay against a fresh graph starts aligned.
		symSeen: 1,
	}
}

// NewReferenceAnalyzer prepares a fold state that derives serially and
// rebuilds the full flat Analysis every epoch — the pre-overlay fold,
// kept as the executable reference the equivalence property tests and
// the IncrementalAnalyzeLarge benchmarks measure the incremental path
// against. Its per-epoch cost is O(graph); do not use it live.
func NewReferenceAnalyzer(g *Graph) *IncrementalAnalyzer {
	inc := NewIncrementalAnalyzer(g)
	inc.reference = true
	inc.st = nil
	return inc
}

// SetFoldWorkers caps the number of worker goroutines Fold fans the
// data-edge derivation across: 0 (the default) means GOMAXPROCS,
// negative values are treated as 0, 1 forces the serial path. Small
// epochs use fewer workers regardless (one per foldWorkerGrain new
// readers). Takes effect at the next Fold; not safe to call
// concurrently with Fold. Reference analyzers always derive serially.
func (inc *IncrementalAnalyzer) SetFoldWorkers(n int) {
	if n < 0 {
		n = 0
	}
	inc.workers = n
}

// SetWorkerHook installs h to run at the start of every derivation
// worker of every fold (with the worker's index), including the serial
// path's worker 0. Fault injection uses it to delay or crash folds
// inside the workers; a panic escaping h propagates out of Fold on the
// calling goroutine after the remaining workers drain, never as a
// goroutine crash. Not safe to call concurrently with Fold.
func (inc *IncrementalAnalyzer) SetWorkerHook(h func(worker int)) {
	inc.workerHook = h
}

// Graph returns the graph being folded.
func (inc *IncrementalAnalyzer) Graph() *Graph { return inc.g }

// Epoch returns the number of completed folds.
func (inc *IncrementalAnalyzer) Epoch() uint64 { return inc.epoch }

// Fold seals one epoch: it captures everything recorded since the last
// fold, extends the analysis state, and returns the new epoch's
// Analysis. Calling Fold with nothing new still produces a (cheap) new
// epoch over the unchanged prefix. Fold must not be called concurrently
// with itself; recording threads may keep appending throughout.
func (inc *IncrementalAnalyzer) Fold() *Analysis {
	a, _ := inc.fold(false)
	return a
}

// FoldDelta seals one epoch exactly like Fold and additionally captures
// the epoch's delta: everything the fold consumed that the previous
// FoldDelta had not yet emitted — the cut's new vertices, the sync-edge
// log tails, the gap-list tails, and the interner additions. Replaying
// the delta sequence with ApplyDelta + Fold on a fresh graph rebuilds
// byte-identical per-epoch Analyses (the journal recovery path). Mixing
// Fold and FoldDelta on one analyzer would leave the skipped epochs'
// state out of every delta; drive a journaled analyzer through
// FoldDelta exclusively.
func (inc *IncrementalAnalyzer) FoldDelta() (*Analysis, *EpochDelta) {
	return inc.fold(true)
}

func (inc *IncrementalAnalyzer) fold(capture bool) (*Analysis, *EpochDelta) {
	inc.prevLens = append(inc.prevLens[:0], inc.lens...)
	newSubs := inc.captureCut()
	var d *EpochDelta
	if capture {
		d = &EpochDelta{Subs: newSubs}
		// Gap tails ride in the epoch that first folds after they were
		// recorded; they carry no interned refs, so order within the
		// delta does not matter.
		for t := range inc.gapsSeen {
			gaps := inc.g.ThreadGapList(t)
			for _, gp := range gaps[inc.gapsSeen[t]:] {
				d.Gaps = append(d.Gaps, DeltaGap{Thread: t, Gap: gp})
			}
			inc.gapsSeen[t] = len(gaps)
		}
	}

	// Extend the writer index with every new vertex before deriving any
	// reader: a new reader's writers may be new vertices of this same
	// epoch.
	for _, sc := range newSubs {
		th := int32(sc.ID.Thread)
		for _, p := range sc.WriteSet.view() {
			runs := inc.writers[p]
			found := false
			for i := range runs {
				if runs[i].thread == th {
					runs[i].alphas = append(runs[i].alphas, int32(sc.ID.Alpha))
					found = true
					break
				}
			}
			if !found {
				inc.writers[p] = append(runs, incRun{thread: th, alphas: []int32{int32(sc.ID.Alpha)}})
			}
		}
	}

	// Derive the new readers' incoming data edges; everything older is
	// final (closed cut: no new writer can happen-before an old reader).
	newData := inc.deriveNewData(newSubs)
	newSync := inc.consumeSyncLogs(d)

	inc.epoch++
	var a *Analysis
	if inc.reference {
		inc.dataEdges = mergeSortedEdges(inc.dataEdges, newData)
		inc.syncEdges = mergeSortedEdges(inc.syncEdges, newSync)
		a = newAnalysis(inc.g, inc.syncEdges, inc.dataEdges, slices.Clone(inc.lens), inc.epoch)
	} else {
		a = inc.st.extend(inc.g, newSync, newData, inc.lens, inc.prevLens, inc.epoch)
	}
	if capture {
		// The interner tail comes last: every ref the captured vertices
		// and sync edges use was interned before its user sealed, so
		// capturing the table after the cut guarantees coverage.
		d.Symbols = inc.g.interner.Tail(inc.symSeen)
		d.SymBase = uint32(inc.symSeen)
		inc.symSeen += len(d.Symbols)
		d.Epoch = inc.epoch
		d.Lens = slices.Clone(inc.lens)
	}
	return a, d
}

// consumeSyncLogs folds the shards' sync-edge logs: entries whose
// endpoints are both sealed join the epoch (returned sorted), the rest
// are deferred (an acquire logs its edge before the acquiring
// sub-computation seals). Both the fresh tail and the deferred backlog
// are sorted runs, so one epoch costs a sort of the fresh entries plus
// linear partitions and merges — the backlog is never re-sorted,
// however many epochs it survives (the deferred-acquirer regression
// test pins this path).
func (inc *IncrementalAnalyzer) consumeSyncLogs(d *EpochDelta) []Edge {
	var fresh []Edge
	for t := range inc.syncSeen {
		tail := inc.g.syncEdgeTail(t, inc.syncSeen[t])
		inc.syncSeen[t] += len(tail)
		for _, rec := range tail {
			if d != nil {
				d.Sync = append(d.Sync, DeltaSyncEdge{From: rec.From, To: rec.To, Object: rec.Object})
			}
			fresh = append(fresh, Edge{
				From:   rec.From,
				To:     rec.To,
				Kind:   EdgeSync,
				Object: inc.g.ObjectName(rec.Object),
			})
		}
	}
	sortEdges(fresh)
	backlogReady, backlogDefer := partitionSyncReady(inc.pendingSync, inc.lens)
	freshReady, freshDefer := partitionSyncReady(fresh, inc.lens)
	inc.pendingSync = mergeSortedEdges(backlogDefer, freshDefer)
	return mergeSortedEdges(backlogReady, freshReady)
}

// partitionSyncReady splits a sorted entry run into the entries whose
// endpoints are both inside the prefix and the still-deferred rest,
// preserving order (so both halves stay sorted).
func partitionSyncReady(entries []Edge, lens []int) (ready, deferred []Edge) {
	for _, e := range entries {
		if subInPrefix(e.From, lens) && subInPrefix(e.To, lens) {
			ready = append(ready, e)
		} else {
			deferred = append(deferred, e)
		}
	}
	return ready, deferred
}

// foldWorkerGrain is the number of new readers that justifies one fold
// worker: epochs with fewer than two grains derive serially, and the
// fan-out never exceeds ceil(new readers / grain) regardless of the
// configured worker count.
const foldWorkerGrain = 64

// deriveNewData derives the epoch's new readers' incoming data edges,
// returned canonically sorted. With more than one effective worker the
// readers fan out across goroutines on an atomic work counter — the
// same pattern batch deriveDataEdges uses — with per-worker scratch;
// per-reader results land in a fixed slot each, so the assembled
// sequence is deterministic whatever the interleaving. A worker panic
// (the workload's or an injected one) is re-raised on the calling
// goroutine after all workers drain.
func (inc *IncrementalAnalyzer) deriveNewData(newSubs []*SubComputation) []Edge {
	workers := inc.workers
	if workers <= 0 {
		workers = runtimeWorkers()
	}
	if inc.reference {
		workers = 1
	}
	if maxw := (len(newSubs) + foldWorkerGrain - 1) / foldWorkerGrain; workers > maxw {
		workers = maxw
	}
	if workers <= 1 {
		if h := inc.workerHook; h != nil {
			h(0)
		}
		var out []Edge
		for _, sc := range newSubs {
			out = append(out, inc.scratch.readerEdges(inc, sc)...)
		}
		sortEdges(out)
		return out
	}
	perReader := make([][]Edge, len(newSubs))
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicked any
	sawPanic := false
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !sawPanic {
						sawPanic, panicked = true, r
					}
					panicMu.Unlock()
				}
			}()
			if h := inc.workerHook; h != nil {
				h(wid)
			}
			var sc incScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= len(newSubs) {
					return
				}
				perReader[i] = sc.readerEdges(inc, newSubs[i])
			}
		}(w)
	}
	wg.Wait()
	if sawPanic {
		panic(panicked)
	}
	total := 0
	for _, es := range perReader {
		total += len(es)
	}
	out := make([]Edge, 0, total)
	for _, es := range perReader {
		out = append(out, es...)
	}
	sortEdges(out)
	return out
}

// captureCut advances inc.lens to a causally closed snapshot of the
// shard lengths, pulls the newly covered vertices into inc.seqs, and
// returns them sorted by (thread, alpha).
func (inc *IncrementalAnalyzer) captureCut() []*SubComputation {
	target := make([]int, len(inc.lens))
	for t := range target {
		target[t] = inc.g.shardLen(t)
		if target[t] < inc.lens[t] {
			target[t] = inc.lens[t]
		}
	}
	var newSubs []*SubComputation
	for {
		grew := false
		for t := range inc.seqs {
			have := len(inc.seqs[t])
			if have >= target[t] {
				continue
			}
			tail := inc.g.threadTail(t, have, target[t])
			if len(tail) < target[t]-have {
				// threadTail clamps to the live shard; shrink the target
				// so a hand-built graph that never publishes the wanted
				// vertices cannot spin this loop.
				target[t] = have + len(tail)
			}
			inc.seqs[t] = append(inc.seqs[t], tail...)
			newSubs = append(newSubs, tail...)
			if len(tail) > 0 {
				grew = true
			}
			for _, sc := range tail {
				for u := range target {
					need := int(sc.Clock.Get(u))
					if need <= target[u] {
						continue
					}
					// The recording discipline publishes a vertex before
					// its clock flows anywhere, so the needed vertices
					// are already in the shard; the clamp only guards
					// hand-built graphs that break that discipline.
					if n := inc.g.shardLen(u); need > n {
						need = n
					}
					if need > target[u] {
						target[u] = need
					}
				}
			}
		}
		if !grew {
			break
		}
	}
	for t := range target {
		// threadTail clamps to the live shard, so seqs can trail a
		// hand-built target; the folded prefix is what was actually
		// pulled.
		inc.lens[t] = len(inc.seqs[t])
	}
	sort.Slice(newSubs, func(i, j int) bool { return newSubs[i].ID.Less(newSubs[j].ID) })
	return newSubs
}

// readerEdges derives reader n's incoming data edges against the folded
// prefix — the incremental counterpart of dataWorker.readerEdges, with
// the identical threshold logic: thread u's candidate writer is the
// latest one with alpha ≤ n.Clock[u]-1 (program order for n's own
// thread), and a candidate m is hidden iff another candidate has seen
// m's tick. The analyzer state it reads (writers, seqs) is frozen for
// the duration of the derivation, so any number of workers can share
// it; all mutable state lives in the scratch.
func (sc *incScratch) readerEdges(inc *IncrementalAnalyzer, n *SubComputation) []Edge {
	sc.accFrom = sc.accFrom[:0]
	sc.accPages = sc.accPages[:0]
	for _, p := range n.ReadSet.view() {
		runs := inc.writers[p]
		if runs == nil {
			continue
		}
		sc.cands = sc.cands[:0]
		for _, run := range runs {
			var lim int32
			if int(run.thread) == n.ID.Thread {
				lim = int32(n.ID.Alpha) - 1
			} else {
				lim = int32(n.Clock.Get(int(run.thread))) - 1
			}
			seq := run.alphas
			if len(seq) == 0 || seq[0] > lim {
				continue
			}
			lo, hi := 1, len(seq)
			for lo < hi {
				mid := (lo + hi) / 2
				if seq[mid] <= lim {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			sc.cands = append(sc.cands, incCand{thread: run.thread, alpha: seq[lo-1]})
		}
		for _, m := range sc.cands {
			hidden := false
			for _, m2 := range sc.cands {
				if m2 != m && int32(inc.seqs[m2.thread][m2.alpha].Clock.Get(int(m.thread))) >= m.alpha+1 {
					hidden = true
					break
				}
			}
			if hidden {
				continue
			}
			slot := -1
			for k, f := range sc.accFrom {
				if f == m {
					slot = k
					break
				}
			}
			if slot < 0 {
				sc.accFrom = append(sc.accFrom, m)
				sc.accPages = append(sc.accPages, nil)
				slot = len(sc.accFrom) - 1
			}
			// Pages arrive ascending from the read-set view, so each
			// list comes out sorted without a final sort.
			sc.accPages[slot] = append(sc.accPages[slot], p)
		}
	}
	if len(sc.accFrom) == 0 {
		return nil
	}
	out := make([]Edge, len(sc.accFrom))
	for k, m := range sc.accFrom {
		out[k] = Edge{
			From:  SubID{Thread: int(m.thread), Alpha: uint64(m.alpha)},
			To:    n.ID,
			Kind:  EdgeData,
			Pages: sc.accPages[k],
		}
	}
	return out
}

// mergeSortedEdges merges two canonically sorted edge runs into a fresh
// slice (left-biased on ties, which preserves the multiset order
// sortEdges would produce). The inputs are never mutated, so earlier
// epochs' analyses keep their views.
func mergeSortedEdges(a, b []Edge) []Edge {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]Edge, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if edgeLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
