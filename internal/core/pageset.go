package core

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// pageSetInline is the number of pages a PageSet holds without allocating.
// Synchronization-heavy executions produce mostly small read/write sets
// (a few pages touched between two sync calls); those now cost zero
// allocations and fit in the SubComputation itself.
const pageSetInline = 6

// PageSet is a set of page IDs — the representation of a sub-computation's
// read set (Lt[α].R) and write set (Lt[α].W). INSPECTOR tracks data flow
// at memory-page granularity (§V-A): per-word tracking would require
// instrumenting every load/store, which the paper rejects as "extremely
// inefficient with current hardware".
//
// The representation is a small-inline-array → sorted-slice hybrid: up to
// pageSetInline pages live in a fixed array inside the struct, and larger
// sets spill to one sorted slice. Both forms are kept in ascending order,
// so membership is a short scan or binary search, set iteration is already
// sorted (DataEdges consumes it directly), and serialization is canonical
// — unlike the retained map reference form, PageSetMap, whose iteration
// (and therefore gob encoding) order is randomized.
//
// Inserting out of ascending order into a spilled set pays a memmove, so
// a sub-computation touching k pages in random order costs O(k²/2) word
// moves in the worst case (ascending order — sequential scans — is O(1)
// per insert). The page-granularity design bounds k: the largest set any
// of the twelve workloads records at the large input size is 513 pages
// (pca), ≈ 1 MB of moves per sub-computation. If future workloads record
// tens of thousands of pages between sync points, give the spill an
// unsorted insertion tail consolidated at EndSub rather than reverting
// to the map.
//
// A PageSet is a value with interior pointers once spilled: copy it with
// Clone, not by assignment, if the copy will be mutated.
type PageSet struct {
	n      int
	inline [pageSetInline]uint64
	spill  []uint64
}

// NewPageSet returns an empty set.
func NewPageSet() PageSet { return PageSet{} }

// view returns the set's pages in ascending order, aliasing the
// underlying storage. Callers must not mutate the set while holding it.
func (s *PageSet) view() []uint64 {
	if s.spill != nil {
		return s.spill
	}
	return s.inline[:s.n]
}

// Add inserts page p.
func (s *PageSet) Add(p uint64) {
	if s.spill == nil {
		i := 0
		for i < s.n && s.inline[i] < p {
			i++
		}
		if i < s.n && s.inline[i] == p {
			return
		}
		if s.n < pageSetInline {
			copy(s.inline[i+1:s.n+1], s.inline[i:s.n])
			s.inline[i] = p
			s.n++
			return
		}
		// Spill: move the inline pages (and p, in order) to a slice.
		sp := make([]uint64, 0, 4*pageSetInline)
		sp = append(sp, s.inline[:i]...)
		sp = append(sp, p)
		sp = append(sp, s.inline[i:]...)
		s.spill = sp
		s.n++
		return
	}
	// Ascending-append fast path: sequential scans (the dominant access
	// pattern of the paper's workloads) touch pages in increasing order,
	// so the common insert is O(1).
	if p > s.spill[len(s.spill)-1] {
		s.spill = append(s.spill, p)
		s.n++
		return
	}
	i, found := slices.BinarySearch(s.spill, p)
	if found {
		return
	}
	s.spill = slices.Insert(s.spill, i, p)
	s.n++
}

// Contains reports membership.
func (s PageSet) Contains(p uint64) bool {
	if s.spill == nil {
		for i := 0; i < s.n; i++ {
			if s.inline[i] == p {
				return true
			}
			if s.inline[i] > p {
				return false
			}
		}
		return false
	}
	_, found := slices.BinarySearch(s.spill, p)
	return found
}

// Len returns the set size.
func (s PageSet) Len() int { return s.n }

// Intersect returns the pages present in both sets, ascending.
func (s PageSet) Intersect(other PageSet) []uint64 {
	a, b := s.view(), other.view()
	var out []uint64
	for len(a) > 0 && len(b) > 0 {
		switch {
		case a[0] == b[0]:
			out = append(out, a[0])
			a, b = a[1:], b[1:]
		case a[0] < b[0]:
			a = a[1:]
		default:
			b = b[1:]
		}
	}
	return out
}

// Intersects reports whether the sets share any page.
func (s PageSet) Intersects(other PageSet) bool {
	a, b := s.view(), other.view()
	for len(a) > 0 && len(b) > 0 {
		switch {
		case a[0] == b[0]:
			return true
		case a[0] < b[0]:
			a = a[1:]
		default:
			b = b[1:]
		}
	}
	return false
}

// Sorted returns the pages in ascending order as an independent slice,
// never nil (the JSON form relies on empty sets rendering as []).
func (s PageSet) Sorted() []uint64 {
	out := make([]uint64, 0, s.n)
	return append(out, s.view()...)
}

// Clone returns an independent copy.
func (s PageSet) Clone() PageSet {
	out := s
	if s.spill != nil {
		out.spill = append([]uint64(nil), s.spill...)
	}
	return out
}

// pageSetFromSorted builds a set from pages already in strictly ascending
// order (deserialization fast path).
func pageSetFromSorted(pages []uint64) PageSet {
	var s PageSet
	s.n = len(pages)
	if len(pages) <= pageSetInline {
		copy(s.inline[:], pages)
		return s
	}
	s.spill = append([]uint64(nil), pages...)
	return s
}

// GobEncode encodes the set canonically: a uvarint count, the first page
// as a uvarint, then uvarint deltas between consecutive (strictly
// ascending) pages. Deterministic and compact, unlike the map reference
// form whose gob bytes depended on iteration order.
func (s PageSet) GobEncode() ([]byte, error) {
	pages := s.view()
	buf := make([]byte, 0, 2+2*len(pages))
	buf = binary.AppendUvarint(buf, uint64(len(pages)))
	prev := uint64(0)
	for i, p := range pages {
		if i == 0 {
			buf = binary.AppendUvarint(buf, p)
		} else {
			buf = binary.AppendUvarint(buf, p-prev)
		}
		prev = p
	}
	return buf, nil
}

// GobDecode reads the GobEncode form.
func (s *PageSet) GobDecode(data []byte) error {
	*s = PageSet{}
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("core: corrupt PageSet encoding")
	}
	data = data[k:]
	// Every encoded page costs at least one byte, so a count beyond the
	// remaining payload is corrupt — reject it before allocating (a
	// forged count must not panic make).
	if n > uint64(len(data)) {
		return fmt.Errorf("core: corrupt PageSet encoding: count %d exceeds payload", n)
	}
	pages := make([]uint64, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, k := binary.Uvarint(data)
		if k <= 0 {
			return fmt.Errorf("core: corrupt PageSet encoding")
		}
		data = data[k:]
		if i == 0 {
			prev = d
		} else {
			if d == 0 || prev+d < prev {
				return fmt.Errorf("core: corrupt PageSet encoding: non-ascending pages")
			}
			prev += d
		}
		pages = append(pages, prev)
	}
	*s = pageSetFromSorted(pages)
	return nil
}
