package core

import "sort"

// PageSet is a set of page IDs — the representation of a sub-computation's
// read set (Lt[α].R) and write set (Lt[α].W). INSPECTOR tracks data flow
// at memory-page granularity (§V-A): per-word tracking would require
// instrumenting every load/store, which the paper rejects as "extremely
// inefficient with current hardware".
type PageSet map[uint64]struct{}

// NewPageSet returns an empty set.
func NewPageSet() PageSet { return make(PageSet) }

// Add inserts page p.
func (s PageSet) Add(p uint64) { s[p] = struct{}{} }

// Contains reports membership.
func (s PageSet) Contains(p uint64) bool {
	_, ok := s[p]
	return ok
}

// Len returns the set size.
func (s PageSet) Len() int { return len(s) }

// Intersect returns the pages present in both sets.
func (s PageSet) Intersect(other PageSet) []uint64 {
	small, large := s, other
	if len(other) < len(s) {
		small, large = other, s
	}
	var out []uint64
	for p := range small {
		if large.Contains(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Intersects reports whether the sets share any page.
func (s PageSet) Intersects(other PageSet) bool {
	small, large := s, other
	if len(other) < len(s) {
		small, large = other, s
	}
	for p := range small {
		if large.Contains(p) {
			return true
		}
	}
	return false
}

// Sorted returns the pages in ascending order.
func (s PageSet) Sorted() []uint64 {
	out := make([]uint64, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy.
func (s PageSet) Clone() PageSet {
	out := make(PageSet, len(s))
	for p := range s {
		out[p] = struct{}{}
	}
	return out
}
