package core

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MarshalJSON renders a PageSet as a sorted array of page IDs.
func (s PageSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Sorted())
}

// UnmarshalJSON reads the array form back into a set.
func (s *PageSet) UnmarshalJSON(data []byte) error {
	var pages []uint64
	if err := json.Unmarshal(data, &pages); err != nil {
		return err
	}
	out := NewPageSet()
	for _, p := range pages {
		out.Add(p)
	}
	*s = out
	return nil
}

// Dump is the serializable form of a Graph.
type Dump struct {
	Threads   int
	Subs      []*SubComputation
	SyncEdges []Edge
}

// Dump extracts the graph's full state.
func (g *Graph) Dump() *Dump {
	return &Dump{
		Threads:   g.Threads(),
		Subs:      g.Subs(),
		SyncEdges: g.SyncEdges(),
	}
}

// FromDump reconstructs a Graph.
func FromDump(d *Dump) (*Graph, error) {
	g := NewGraph(d.Threads)
	subs := make([]*SubComputation, len(d.Subs))
	copy(subs, d.Subs)
	sort.Slice(subs, func(i, j int) bool { return subs[i].ID.Less(subs[j].ID) })
	for _, sc := range subs {
		if err := g.add(sc); err != nil {
			return nil, err
		}
	}
	g.mu.Lock()
	g.syncEdges = append(g.syncEdges, d.SyncEdges...)
	g.mu.Unlock()
	return g, nil
}

// EncodeGob serializes the graph in gob format.
func (g *Graph) EncodeGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(g.Dump()); err != nil {
		return fmt.Errorf("core: encode CPG: %w", err)
	}
	return nil
}

// DecodeGob reads a graph serialized by EncodeGob.
func DecodeGob(r io.Reader) (*Graph, error) {
	var d Dump
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: decode CPG: %w", err)
	}
	return FromDump(&d)
}

// EncodeJSON serializes the graph as JSON (for cpg-query and debugging).
func (g *Graph) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g.Dump()); err != nil {
		return fmt.Errorf("core: encode CPG json: %w", err)
	}
	return nil
}

// DecodeJSON reads a graph serialized by EncodeJSON.
func DecodeJSON(r io.Reader) (*Graph, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: decode CPG json: %w", err)
	}
	return FromDump(&d)
}

// WriteDOT renders the CPG in Graphviz DOT form: one cluster per thread,
// solid edges for program order, dashed for schedule dependencies,
// bold for data dependencies.
func (g *Graph) WriteDOT(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("digraph CPG {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	threads := make(map[int][]*SubComputation)
	for _, sc := range g.Subs() {
		threads[sc.ID.Thread] = append(threads[sc.ID.Thread], sc)
	}
	var order []int
	for t := range threads {
		order = append(order, t)
	}
	sort.Ints(order)
	for _, t := range order {
		p("  subgraph cluster_t%d {\n    label=\"thread %d\";\n", t, t)
		for _, sc := range threads[t] {
			p("    %q [label=\"%s\\nR:%d W:%d\\nend:%s %s\"];\n",
				sc.ID.String(), sc.ID.String(),
				sc.ReadSet.Len(), sc.WriteSet.Len(),
				sc.End.Kind, sc.End.Object)
		}
		p("  }\n")
	}
	for _, e := range g.Edges() {
		switch e.Kind {
		case EdgeControl:
			p("  %q -> %q;\n", e.From.String(), e.To.String())
		case EdgeSync:
			p("  %q -> %q [style=dashed, label=%q];\n", e.From.String(), e.To.String(), e.Object)
		case EdgeData:
			p("  %q -> %q [style=bold, color=blue, label=\"%d pages\"];\n",
				e.From.String(), e.To.String(), len(e.Pages))
		}
	}
	p("}\n")
	if err != nil {
		return fmt.Errorf("core: write DOT: %w", err)
	}
	return nil
}
