package core

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sort"

	"github.com/repro/inspector/internal/vclock"
	"github.com/repro/inspector/internal/vtime"
)

// MarshalJSON renders a PageSet as a sorted array of page IDs.
func (s PageSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Sorted())
}

// UnmarshalJSON reads the array form back into a set.
func (s *PageSet) UnmarshalJSON(data []byte) error {
	var pages []uint64
	if err := json.Unmarshal(data, &pages); err != nil {
		return err
	}
	out := NewPageSet()
	for _, p := range pages {
		out.Add(p)
	}
	*s = out
	return nil
}

// The wire types below are the serialized forms of the graph. They mirror
// the in-memory structures field for field but materialize every interned
// ref as its string — refs are process-local, strings are the contract.
// Field names and order reproduce the pre-columnar export exactly, so the
// JSON artifacts are byte-identical to the seed implementation's; the gob
// artifacts additionally became deterministic (the seed's map-backed page
// sets encoded in random iteration order).

// wireThunk is the serialized Thunk, with materialized site labels.
type wireThunk struct {
	Index        uint64
	Site         string
	Taken        bool
	Indirect     bool
	Target       string
	Instructions uint64
}

// wireSyncEvent is the serialized SyncEvent, with a materialized object
// name.
type wireSyncEvent struct {
	Kind   SyncOpKind
	Object string
}

// wireSub is the serialized SubComputation. Page sets are sorted slices
// (never nil: the JSON form renders empty sets as []); Thunks stays nil
// for branchless sub-computations (rendered as null).
type wireSub struct {
	ID            SubID
	Clock         vclock.Clock
	ReadSet       []uint64
	WriteSet      []uint64
	Thunks        []wireThunk
	End           wireSyncEvent
	Start, Finish vtime.Cycles
	Instructions  uint64
}

// Dump is the serializable form of a Graph.
type Dump struct {
	Threads   int
	Subs      []*wireSub
	SyncEdges []Edge
	// Gaps records per-thread trace-loss intervals. Nil for complete
	// recordings, which keeps the JSON artifact byte-identical to the
	// pre-gap format (omitempty) — only degraded graphs carry the field.
	Gaps []ThreadGaps `json:",omitempty"`
}

// Dump extracts the graph's full state in wire form.
func (g *Graph) Dump() *Dump {
	subs := g.Subs()
	out := make([]*wireSub, len(subs))
	for i, sc := range subs {
		ws := &wireSub{
			ID:           sc.ID,
			Clock:        sc.Clock,
			ReadSet:      sc.ReadSet.Sorted(),
			WriteSet:     sc.WriteSet.Sorted(),
			End:          wireSyncEvent{Kind: sc.End.Kind, Object: g.ObjectName(sc.End.Object)},
			Start:        sc.Start,
			Finish:       sc.Finish,
			Instructions: sc.Instructions,
		}
		if len(sc.Thunks) > 0 {
			ws.Thunks = make([]wireThunk, len(sc.Thunks))
			for j, th := range sc.Thunks {
				ws.Thunks[j] = wireThunk{
					Index:        th.Index,
					Site:         g.SiteName(th.Site),
					Taken:        th.Taken,
					Indirect:     th.Indirect,
					Target:       g.SiteName(th.Target),
					Instructions: th.Instructions,
				}
			}
		}
		out[i] = ws
	}
	return &Dump{
		Threads:   g.Threads(),
		Subs:      out,
		SyncEdges: g.SyncEdges(),
		Gaps:      g.Gaps(),
	}
}

// FromDump reconstructs a Graph, re-interning every symbol.
func FromDump(d *Dump) (*Graph, error) {
	g := NewGraph(d.Threads)
	subs := make([]*wireSub, len(d.Subs))
	copy(subs, d.Subs)
	sort.Slice(subs, func(i, j int) bool { return subs[i].ID.Less(subs[j].ID) })
	for _, ws := range subs {
		sc := &SubComputation{
			ID:           ws.ID,
			Clock:        ws.Clock,
			ReadSet:      pageSetFromSorted(sortedPages(ws.ReadSet)),
			WriteSet:     pageSetFromSorted(sortedPages(ws.WriteSet)),
			End:          SyncEvent{Kind: ws.End.Kind, Object: g.InternObject(ws.End.Object)},
			Start:        ws.Start,
			Finish:       ws.Finish,
			Instructions: ws.Instructions,
		}
		if len(ws.Thunks) > 0 {
			sc.Thunks = make([]Thunk, len(ws.Thunks))
			for j, th := range ws.Thunks {
				sc.Thunks[j] = Thunk{
					Index:        th.Index,
					Site:         g.InternSite(th.Site),
					Taken:        th.Taken,
					Indirect:     th.Indirect,
					Target:       g.InternSite(th.Target),
					Instructions: th.Instructions,
				}
			}
		}
		if err := g.add(sc); err != nil {
			return nil, err
		}
	}
	for _, e := range d.SyncEdges {
		if g.shard(e.To.Thread) == nil {
			return nil, fmt.Errorf("core: sync edge to out-of-range thread %d", e.To.Thread)
		}
		g.addSyncEdge(e.From, e.To, g.InternObject(e.Object))
	}
	for _, tg := range d.Gaps {
		if g.shard(tg.Thread) == nil {
			return nil, fmt.Errorf("core: gap on out-of-range thread %d", tg.Thread)
		}
		for _, gp := range tg.Gaps {
			g.AddGap(tg.Thread, gp)
		}
	}
	return g, nil
}

// sortedPages returns pages sorted and deduplicated (wire input from our
// own encoders is already both; tolerate hand-edited files).
func sortedPages(pages []uint64) []uint64 {
	strict := true
	for i := 1; i < len(pages); i++ {
		if pages[i] <= pages[i-1] {
			strict = false
			break
		}
	}
	if strict {
		return pages
	}
	out := slices.Clone(pages)
	slices.Sort(out)
	return slices.Compact(out)
}

// EncodeGob serializes the graph in gob format.
func (g *Graph) EncodeGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(g.Dump()); err != nil {
		return fmt.Errorf("core: encode CPG: %w", err)
	}
	return nil
}

// DecodeGob reads a graph serialized by EncodeGob.
func DecodeGob(r io.Reader) (*Graph, error) {
	var d Dump
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: decode CPG: %w", err)
	}
	return FromDump(&d)
}

// EncodeJSON serializes the graph as JSON (for cpg-query and debugging).
func (g *Graph) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g.Dump()); err != nil {
		return fmt.Errorf("core: encode CPG json: %w", err)
	}
	return nil
}

// DecodeJSON reads a graph serialized by EncodeJSON.
func DecodeJSON(r io.Reader) (*Graph, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: decode CPG json: %w", err)
	}
	return FromDump(&d)
}

// WriteDOT renders the CPG in Graphviz DOT form: one cluster per thread,
// solid edges for program order, dashed for schedule dependencies,
// bold for data dependencies.
func (g *Graph) WriteDOT(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("digraph CPG {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	threads := make(map[int][]*SubComputation)
	for _, sc := range g.Subs() {
		threads[sc.ID.Thread] = append(threads[sc.ID.Thread], sc)
	}
	var order []int
	for t := range threads {
		order = append(order, t)
	}
	sort.Ints(order)
	for _, t := range order {
		p("  subgraph cluster_t%d {\n    label=\"thread %d\";\n", t, t)
		for _, sc := range threads[t] {
			p("    %q [label=\"%s\\nR:%d W:%d\\nend:%s %s\"];\n",
				sc.ID.String(), sc.ID.String(),
				sc.ReadSet.Len(), sc.WriteSet.Len(),
				sc.End.Kind, g.ObjectName(sc.End.Object))
		}
		p("  }\n")
	}
	for _, e := range g.Edges() {
		switch e.Kind {
		case EdgeControl:
			p("  %q -> %q;\n", e.From.String(), e.To.String())
		case EdgeSync:
			p("  %q -> %q [style=dashed, label=%q];\n", e.From.String(), e.To.String(), e.Object)
		case EdgeData:
			p("  %q -> %q [style=bold, color=blue, label=\"%d pages\"];\n",
				e.From.String(), e.To.String(), len(e.Pages))
		}
	}
	p("}\n")
	if err != nil {
		return fmt.Errorf("core: write DOT: %w", err)
	}
	return nil
}
