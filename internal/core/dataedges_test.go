package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// edgesEqual compares edge slices including page lists.
func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To ||
			a[i].Kind != b[i].Kind || a[i].Object != b[i].Object ||
			len(a[i].Pages) != len(b[i].Pages) {
			return false
		}
		for j := range a[i].Pages {
			if a[i].Pages[j] != b[i].Pages[j] {
				return false
			}
		}
	}
	return true
}

// TestQuickDataEdgesMatchReference pins the indexed parallel derivation
// to the retained reference implementation: identical edges (including
// page lists) on random executions, at every worker count.
func TestQuickDataEdgesMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomExecution(t, r, 2+r.Intn(4), 1+r.Intn(3), 100+r.Intn(300))
		subs := g.Subs()
		want := dataEdgesReference(subs)
		for _, workers := range []int{1, 2, 8} {
			if !edgesEqual(deriveDataEdges(subs, workers), want) {
				return false
			}
		}
		return edgesEqual(g.DataEdges(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDataEdgesParallelDeterministic re-derives the same large graph
// repeatedly with the production worker count and asserts byte-stable
// output (the worker pool must not leak scheduling into results).
func TestDataEdgesParallelDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := randomExecution(t, r, 6, 2, 2000)
	subs := g.Subs()
	want := deriveDataEdges(subs, 1)
	for i := 0; i < 4; i++ {
		if !edgesEqual(deriveDataEdges(subs, 8), want) {
			t.Fatalf("parallel derivation diverged on round %d", i)
		}
	}
}

// TestQuickAnalysisClosureMatchesMapAdjacency pins the CSR traversals to
// a straightforward map-of-slices adjacency built inside the test (the
// shape the pre-columnar Analysis stored).
func TestQuickAnalysisClosureMatchesMapAdjacency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomExecution(t, r, 2+r.Intn(3), 2, 100+r.Intn(150))
		a := g.Analyze()
		preds := make(map[SubID][]Edge)
		succs := make(map[SubID][]Edge)
		for _, e := range a.Edges() {
			preds[e.To] = append(preds[e.To], e)
			succs[e.From] = append(succs[e.From], e)
		}
		refClosure := func(id SubID, forward bool, kinds ...EdgeKind) []SubID {
			seen := map[SubID]bool{id: true}
			stack := []SubID{id}
			var out []SubID
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				adj := preds[cur]
				if forward {
					adj = succs[cur]
				}
				for _, e := range adj {
					next := e.From
					if forward {
						next = e.To
					}
					if !kindIn(e.Kind, kinds) || seen[next] {
						continue
					}
					seen[next] = true
					out = append(out, next)
					stack = append(stack, next)
				}
			}
			sortSubIDs(out)
			return out
		}
		idsEqual := func(a, b []SubID) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		for _, sc := range g.Subs() {
			if !idsEqual(a.Ancestors(sc.ID), refClosure(sc.ID, false)) {
				return false
			}
			if !idsEqual(a.Descendants(sc.ID), refClosure(sc.ID, true)) {
				return false
			}
			if !idsEqual(a.TaintedBy(sc.ID), refClosure(sc.ID, true, EdgeData)) {
				return false
			}
			if !idsEqual(a.Ancestors(sc.ID, EdgeControl, EdgeSync), refClosure(sc.ID, false, EdgeControl, EdgeSync)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
