package core

import "github.com/repro/inspector/internal/intern"

// SiteRef is an interned branch-site label (or indirect-transfer target).
// The hot recording path stores refs, never strings: a Thunk carries two
// 4-byte refs where it used to carry two 16-byte string headers, and
// comparing or hashing a site is integer work. Ref 0 always names the
// empty string.
type SiteRef uint32

// ObjRef is an interned synchronization-object name, with the same
// conventions as SiteRef.
type ObjRef uint32

// Interner is the string intern table backing a Graph's site and object
// symbols (the implementation lives in internal/intern so lower layers —
// internal/image's label table — can reuse it without depending on the
// provenance core; the image keeps its own instance because its ids
// double as synthetic instruction addresses, see DESIGN.md).
//
// Intern order — and therefore the numeric value of a ref — may differ
// between runs of a multithreaded program. Nothing exported depends on
// it: every serialization materializes the string form.
type Interner = intern.Interner

// NewInterner returns an empty interner.
func NewInterner() *Interner { return intern.New() }
