package core

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// buildChain records n sub-computations on one thread: a pure control
// chain T0.0 -> T0.1 -> ... -> T0.(n-1), with a data dependency riding
// along (every sub reads and rewrites page 7).
func buildChain(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph(1)
	r := mustRecorder(t, g, 0)
	ev := SyncEvent{Kind: SyncRelease, Object: g.InternObject("l")}
	for i := 0; i < n; i++ {
		r.OnRead(7)
		r.OnWrite(7)
		endSub(t, r, ev)
	}
	return g
}

func TestPathEdgeCases(t *testing.T) {
	// from == to: no chain, by definition.
	g, _ := buildFigure1(t)
	a := g.Analyze()
	if got := a.Path(SubID{Thread: 0, Alpha: 0}, SubID{Thread: 0, Alpha: 0}); got != nil {
		t.Errorf("self path = %+v", got)
	}

	// Unreachable pair: three threads with no synchronization between
	// them have no cross-thread edges at all.
	iso := NewGraph(3)
	for slot := 0; slot < 3; slot++ {
		r := mustRecorder(t, iso, slot)
		r.OnWrite(uint64(100 + slot)) // disjoint pages: no data edges
		endSub(t, r, SyncEvent{Kind: SyncNone})
	}
	ia := iso.Analyze()
	if got := ia.Path(SubID{Thread: 0, Alpha: 0}, SubID{Thread: 2, Alpha: 0}); got != nil {
		t.Errorf("path across disconnected threads = %+v", got)
	}

	// Filtered kinds yielding no path: a single-thread chain is connected
	// only by control (and data) edges, so a sync-only search finds
	// nothing even though a chain exists unrestricted.
	chain := buildChain(t, 3).Analyze()
	from, to := SubID{Thread: 0, Alpha: 0}, SubID{Thread: 0, Alpha: 2}
	if got := chain.Path(from, to); len(got) == 0 {
		t.Fatal("unrestricted path missing on a control chain")
	}
	if got := chain.Path(from, to, EdgeSync); got != nil {
		t.Errorf("sync-only path on a syncless chain = %+v", got)
	}
}

// countingCtx is the cancellation test hook: a context whose Err flips to
// Canceled after failAfter calls, counting how often the traversal
// actually probed it. It lets a test observe both that a traversal
// honors cancellation and how promptly it noticed.
type countingCtx struct {
	context.Context
	mu        sync.Mutex
	calls     int
	failAfter int
}

func (c *countingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls >= c.failAfter {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) probes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestQueryCancellationStopsTraversal(t *testing.T) {
	const n = 8192
	a := buildChain(t, n).Analyze()
	last := SubID{Thread: 0, Alpha: n - 1}

	// The full closure visits every ancestor.
	if got := a.Slice(last); len(got) != n-1 {
		t.Fatalf("full slice = %d ids, want %d", len(got), n-1)
	}

	// A context canceled at the first probe stops the walk at the first
	// cancellation check, not after the full 8k-vertex traversal.
	ctx := &countingCtx{Context: context.Background(), failAfter: 1}
	ids, err := a.SliceCtx(ctx, last)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SliceCtx err = %v, want context.Canceled", err)
	}
	if ids != nil {
		t.Errorf("canceled slice returned %d ids", len(ids))
	}
	if got := ctx.probes(); got != 1 {
		t.Errorf("traversal probed ctx %d times after cancellation, want 1", got)
	}

	// Letting a few checks pass before canceling still stops well short
	// of the full walk.
	ctx = &countingCtx{Context: context.Background(), failAfter: 3}
	if _, err := a.SliceCtx(ctx, last); !errors.Is(err, context.Canceled) {
		t.Fatalf("SliceCtx err = %v", err)
	}
	if got, max := ctx.probes(), n/cancelCheckEvery; got >= max {
		t.Errorf("traversal ran to completion: %d probes (full walk would be %d)", got, max)
	}

	// The other traversals honor cancellation the same way.
	if _, err := a.PathCtx(&countingCtx{Context: context.Background(), failAfter: 1},
		SubID{Thread: 0, Alpha: 0}, last); !errors.Is(err, context.Canceled) {
		t.Errorf("PathCtx err = %v", err)
	}
	if _, err := a.TaintedByCtx(&countingCtx{Context: context.Background(), failAfter: 1},
		SubID{Thread: 0, Alpha: 0}); !errors.Is(err, context.Canceled) {
		t.Errorf("TaintedByCtx err = %v", err)
	}
	if _, err := a.PageLineageCtx(&countingCtx{Context: context.Background(), failAfter: 1},
		7, last); !errors.Is(err, context.Canceled) {
		t.Errorf("PageLineageCtx err = %v", err)
	}
	if err := a.VerifyCtx(&countingCtx{Context: context.Background(), failAfter: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("VerifyCtx err = %v", err)
	}

	// A live context changes nothing.
	ids, err = a.SliceCtx(context.Background(), last)
	if err != nil || len(ids) != n-1 {
		t.Errorf("uncanceled SliceCtx = %d ids, %v", len(ids), err)
	}
}

// TestConcurrentReadOnlyQueries fires mixed slice/taint/lineage/path/
// verify traffic at one shared Analysis from many goroutines. Run under
// -race (CI does) this pins the read-only query contract the
// inspector-serve daemon depends on: one immutable Analysis, many
// concurrent clients, no synchronization required.
func TestConcurrentReadOnlyQueries(t *testing.T) {
	g := buildHandoffWeb(t, 4, 64)
	a := g.Analyze()
	lastU := SubID{Thread: 0, Alpha: uint64(g.threadLens()[0] - 1)}

	wantSlice := a.Slice(lastU)
	wantTaint := a.TaintedBy(SubID{Thread: 1, Alpha: 0})

	const goroutines = 32
	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				switch (i + j) % 5 {
				case 0:
					got := a.Slice(lastU)
					if len(got) != len(wantSlice) {
						errs <- errors.New("concurrent slice diverged")
						return
					}
				case 1:
					got := a.TaintedBy(SubID{Thread: 1, Alpha: 0})
					if len(got) != len(wantTaint) {
						errs <- errors.New("concurrent taint diverged")
						return
					}
				case 2:
					a.PageLineage(uint64(i%8), lastU)
				case 3:
					a.Path(SubID{Thread: 1, Alpha: 0}, lastU)
				default:
					if err := a.Verify(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// buildHandoffWeb records a deterministic multi-thread execution: threads
// hand one mutex around round-robin for rounds rounds, each sub reading
// and writing a small rotating page set, producing a dense happens-before
// web with all three edge kinds.
func buildHandoffWeb(t *testing.T, threads, rounds int) *Graph {
	t.Helper()
	g := NewGraph(threads)
	lock := g.NewSyncObject("l", false)
	recs := make([]*Recorder, threads)
	for i := range recs {
		recs[i] = mustRecorder(t, g, i)
	}
	ev := SyncEvent{Kind: SyncRelease, Object: lock.Ref()}
	for round := 0; round < rounds; round++ {
		r := recs[round%threads]
		p := uint64(round % 8)
		r.OnRead(p)
		r.OnWrite((p + 1) % 8)
		sc := endSub(t, r, ev)
		r.Release(lock, sc)
		recs[(round+1)%threads].Acquire(lock)
	}
	for _, r := range recs {
		endSub(t, r, SyncEvent{Kind: SyncNone})
	}
	return g
}
