// Package core implements the paper's central contribution: the Concurrent
// Provenance Graph (CPG, §IV-A) and the parallel provenance algorithm that
// builds it (§IV-B, Algorithms 1 and 2).
//
// The CPG is a DAG whose vertices are sub-computations — the instruction
// sequences a thread executes between two pthreads synchronization calls —
// and whose edges record three dependency kinds:
//
//   - control edges: intra-thread program order, refined within each
//     sub-computation by thunks (branch-delimited instruction runs);
//   - synchronization edges: inter-thread happens-before derived from the
//     acquire/release ordering of synchronization operations;
//   - data edges: update-use relationships derived from per-sub-computation
//     page-granularity read/write sets combined with the happens-before
//     partial order.
//
// The algorithm is fully decentralized: each thread maintains a vector
// clock, synchronization objects carry clocks between releasers and
// acquirers, and every completed sub-computation is stamped with its
// thread's clock. Standard vector-clock comparison over those stamps is
// the happens-before relation.
package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/repro/inspector/internal/vclock"
	"github.com/repro/inspector/internal/vtime"
)

// SubID names a sub-computation vertex: thread slot t and index α in the
// thread's execution sequence Lt.
type SubID struct {
	Thread int
	Alpha  uint64
}

// String renders like "T2.5".
func (id SubID) String() string { return fmt.Sprintf("T%d.%d", id.Thread, id.Alpha) }

// Less orders SubIDs lexicographically (thread, then alpha).
func (id SubID) Less(other SubID) bool {
	if id.Thread != other.Thread {
		return id.Thread < other.Thread
	}
	return id.Alpha < other.Alpha
}

// Thunk is one branch-delimited instruction run within a sub-computation
// (Lt[α].∆[β]). It records the control-path decision that terminated it.
type Thunk struct {
	// Index is β, the thunk counter within the sub-computation.
	Index uint64
	// Site labels the branch site that ended the thunk.
	Site string
	// Taken is the conditional outcome (conditional sites).
	Taken bool
	// Indirect marks an indirect transfer; Target names its destination.
	Indirect bool
	Target   string
	// Instructions counts instructions retired within the thunk.
	Instructions uint64
}

// SyncOpKind classifies the synchronization operation that ended a
// sub-computation, in the acquire/release model of §IV.
type SyncOpKind uint8

// Synchronization operation kinds.
const (
	// SyncNone marks sub-computations ended by thread termination.
	SyncNone SyncOpKind = iota
	// SyncAcquire is lock(), sem_wait(), cond_wait() wake-up, barrier
	// departure, or thread start.
	SyncAcquire
	// SyncRelease is unlock(), sem_post(), cond_signal(), barrier
	// arrival, or thread exit.
	SyncRelease
)

// String names the kind.
func (k SyncOpKind) String() string {
	switch k {
	case SyncAcquire:
		return "acquire"
	case SyncRelease:
		return "release"
	default:
		return "none"
	}
}

// SyncEvent describes the synchronization call at a sub-computation
// boundary.
type SyncEvent struct {
	Kind   SyncOpKind
	Object string
}

// SubComputation is a CPG vertex.
type SubComputation struct {
	ID SubID
	// Clock is Lt[α].C: the thread clock captured when the
	// sub-computation started, positioning it in the partial order.
	Clock vclock.Clock
	// ReadSet and WriteSet are the page-granularity access sets.
	ReadSet  PageSet
	WriteSet PageSet
	// Thunks is the recorded control path (∆).
	Thunks []Thunk
	// End is the synchronization event that terminated it.
	End SyncEvent
	// Start and Finish are virtual times bounding the execution.
	Start, Finish vtime.Cycles
	// Instructions counts instructions retired.
	Instructions uint64
}

// EdgeKind classifies CPG edges.
type EdgeKind uint8

// Edge kinds.
const (
	// EdgeControl is intra-thread program order.
	EdgeControl EdgeKind = iota + 1
	// EdgeSync is a release -> acquire schedule dependency.
	EdgeSync
	// EdgeData is an update-use data dependency.
	EdgeData
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeControl:
		return "control"
	case EdgeSync:
		return "sync"
	case EdgeData:
		return "data"
	default:
		return "unknown"
	}
}

// Edge is one CPG edge.
type Edge struct {
	From, To SubID
	Kind     EdgeKind
	// Object names the synchronization object for sync edges.
	Object string
	// Pages lists the shared pages for data edges.
	Pages []uint64
}

// Graph is the Concurrent Provenance Graph under construction or analysis.
// Methods are safe for concurrent use by the recording threads.
type Graph struct {
	mu        sync.RWMutex
	threads   int
	seqs      map[int][]*SubComputation
	syncEdges []Edge
}

// NewGraph creates an empty CPG for up to threads thread slots.
func NewGraph(threads int) *Graph {
	return &Graph{
		threads: threads,
		seqs:    make(map[int][]*SubComputation),
	}
}

// Threads returns the thread-slot capacity.
func (g *Graph) Threads() int { return g.threads }

// add appends a completed sub-computation to its thread sequence. The
// recorder guarantees alphas are dense per thread.
func (g *Graph) add(sc *SubComputation) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := g.seqs[sc.ID.Thread]
	if uint64(len(seq)) != sc.ID.Alpha {
		return fmt.Errorf("core: thread %d alpha %d out of order (have %d)",
			sc.ID.Thread, sc.ID.Alpha, len(seq))
	}
	g.seqs[sc.ID.Thread] = append(seq, sc)
	return nil
}

// addSyncEdge records a release -> acquire schedule dependency.
func (g *Graph) addSyncEdge(from, to SubID, object string) {
	g.mu.Lock()
	g.syncEdges = append(g.syncEdges, Edge{From: from, To: to, Kind: EdgeSync, Object: object})
	g.mu.Unlock()
}

// Sub returns the vertex with the given ID.
func (g *Graph) Sub(id SubID) (*SubComputation, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seq := g.seqs[id.Thread]
	if id.Alpha >= uint64(len(seq)) {
		return nil, false
	}
	return seq[id.Alpha], true
}

// ThreadSeq returns thread t's sub-computation sequence Lt.
func (g *Graph) ThreadSeq(t int) []*SubComputation {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*SubComputation, len(g.seqs[t]))
	copy(out, g.seqs[t])
	return out
}

// Subs returns every vertex, ordered by (thread, alpha).
func (g *Graph) Subs() []*SubComputation {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []*SubComputation
	threads := make([]int, 0, len(g.seqs))
	for t := range g.seqs {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	for _, t := range threads {
		out = append(out, g.seqs[t]...)
	}
	return out
}

// NumSubs returns the vertex count.
func (g *Graph) NumSubs() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, seq := range g.seqs {
		n += len(seq)
	}
	return n
}

// ControlEdges derives the intra-thread program-order edges.
func (g *Graph) ControlEdges() []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Edge
	for t, seq := range g.seqs {
		for i := 1; i < len(seq); i++ {
			out = append(out, Edge{
				From: SubID{Thread: t, Alpha: uint64(i - 1)},
				To:   SubID{Thread: t, Alpha: uint64(i)},
				Kind: EdgeControl,
			})
		}
	}
	sortEdges(out)
	return out
}

// SyncEdges returns the recorded schedule-dependency edges.
func (g *Graph) SyncEdges() []Edge {
	g.mu.RLock()
	out := make([]Edge, len(g.syncEdges))
	copy(out, g.syncEdges)
	g.mu.RUnlock()
	sortEdges(out)
	return out
}

// HappensBefore reports whether a happens-before b using the recorded
// vector clocks (same-thread order included).
func (g *Graph) HappensBefore(a, b SubID) bool {
	if a.Thread == b.Thread {
		return a.Alpha < b.Alpha
	}
	sa, ok := g.Sub(a)
	if !ok {
		return false
	}
	sb, ok := g.Sub(b)
	if !ok {
		return false
	}
	switch sa.Clock.Compare(sb.Clock) {
	case vclock.Before:
		return true
	case vclock.Equal:
		// Equal clocks across threads can only happen for initial
		// zero-clock subs; order them by thread slot for determinism.
		return false
	default:
		return false
	}
}

// Concurrent reports whether neither vertex happens-before the other.
func (g *Graph) Concurrent(a, b SubID) bool {
	return !g.HappensBefore(a, b) && !g.HappensBefore(b, a) && a != b
}

// DataEdges derives the update-use edges (§IV-A III): for every reader n
// and page p in its read set, an edge from each maximal writer m (under
// happens-before) with p in its write set and m -> n. Writers hidden by a
// later writer of the same page that still precedes the reader are
// excluded, so each edge names a write that may actually have produced
// the value read.
//
// Two structural facts keep this tractable on sync-heavy executions with
// tens of thousands of vertices: (1) a thread's writers of a page are
// totally ordered by program order, so at most the *latest* one that
// happens-before n can be maximal — earlier ones are hidden by it; and
// (2) "happens-before n" is monotone along a thread's sequence (if a
// later sub-computation precedes n, so do all earlier ones), so the
// latest qualifying writer per thread is found by binary search. The
// maximal filter then runs over at most one candidate per thread.
func (g *Graph) DataEdges() []Edge {
	subs := g.Subs()
	hb := func(a, b *SubComputation) bool {
		if a.ID.Thread == b.ID.Thread {
			return a.ID.Alpha < b.ID.Alpha
		}
		return a.Clock.Compare(b.Clock) == vclock.Before
	}
	// writersByPage[p][t] = thread t's writers of p in program order
	// (Subs() is (thread, alpha)-sorted, so appends preserve order).
	writersByPage := make(map[uint64]map[int][]*SubComputation)
	for _, sc := range subs {
		for p := range sc.WriteSet {
			byT := writersByPage[p]
			if byT == nil {
				byT = make(map[int][]*SubComputation)
				writersByPage[p] = byT
			}
			byT[sc.ID.Thread] = append(byT[sc.ID.Thread], sc)
		}
	}
	type key struct {
		from, to SubID
	}
	pages := make(map[key][]uint64)
	var cands []*SubComputation
	for _, n := range subs {
		for p := range n.ReadSet {
			byT := writersByPage[p]
			if byT == nil {
				continue
			}
			cands = cands[:0]
			for _, seq := range byT {
				// Binary search for the first writer NOT before n; the
				// candidate is its predecessor. n itself never
				// satisfies hb(n, n), so self-writes are excluded.
				lo, hi := 0, len(seq)
				for lo < hi {
					mid := (lo + hi) / 2
					if hb(seq[mid], n) {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo > 0 {
					cands = append(cands, seq[lo-1])
				}
			}
			for _, m := range cands {
				hidden := false
				for _, m2 := range cands {
					if m2 != m && hb(m, m2) {
						hidden = true
						break
					}
				}
				if !hidden {
					k := key{from: m.ID, to: n.ID}
					pages[k] = append(pages[k], p)
				}
			}
		}
	}
	out := make([]Edge, 0, len(pages))
	for k, ps := range pages {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		out = append(out, Edge{From: k.from, To: k.to, Kind: EdgeData, Pages: ps})
	}
	sortEdges(out)
	return out
}

// Edges returns control, sync, and data edges combined.
func (g *Graph) Edges() []Edge {
	out := g.ControlEdges()
	out = append(out, g.SyncEdges()...)
	out = append(out, g.DataEdges()...)
	return out
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From.Less(b.From)
		}
		if a.To != b.To {
			return a.To.Less(b.To)
		}
		return a.Kind < b.Kind
	})
}
