package core

import (
	"fmt"
	"sort"
	"sync"

	"github.com/repro/inspector/internal/vclock"
	"github.com/repro/inspector/internal/vtime"
)

// SubID names a sub-computation vertex: thread slot t and index α in the
// thread's execution sequence Lt.
type SubID struct {
	Thread int
	Alpha  uint64
}

// String renders like "T2.5".
func (id SubID) String() string { return fmt.Sprintf("T%d.%d", id.Thread, id.Alpha) }

// Less orders SubIDs lexicographically (thread, then alpha).
func (id SubID) Less(other SubID) bool {
	if id.Thread != other.Thread {
		return id.Thread < other.Thread
	}
	return id.Alpha < other.Alpha
}

// Thunk is one branch-delimited instruction run within a sub-computation
// (Lt[α].∆[β]). It records the control-path decision that terminated it.
// Sites and targets are interned refs into the owning Graph's Interner
// (16 bytes of string header replaced by 4 bytes each); Graph.SiteName
// recovers the labels, and exports materialize them transparently.
type Thunk struct {
	// Index is β, the thunk counter within the sub-computation.
	Index uint64
	// Site labels the branch site that ended the thunk.
	Site SiteRef
	// Taken is the conditional outcome (conditional sites).
	Taken bool
	// Indirect marks an indirect transfer; Target names its destination
	// (ref 0, the empty string, when unresolved).
	Indirect bool
	Target   SiteRef
	// Instructions counts instructions retired within the thunk.
	Instructions uint64
}

// SyncOpKind classifies the synchronization operation that ended a
// sub-computation, in the acquire/release model of §IV.
type SyncOpKind uint8

// Synchronization operation kinds.
const (
	// SyncNone marks sub-computations ended by thread termination.
	SyncNone SyncOpKind = iota
	// SyncAcquire is lock(), sem_wait(), cond_wait() wake-up, barrier
	// departure, or thread start.
	SyncAcquire
	// SyncRelease is unlock(), sem_post(), cond_signal(), barrier
	// arrival, or thread exit.
	SyncRelease
)

// String names the kind.
func (k SyncOpKind) String() string {
	switch k {
	case SyncAcquire:
		return "acquire"
	case SyncRelease:
		return "release"
	default:
		return "none"
	}
}

// SyncEvent describes the synchronization call at a sub-computation
// boundary. Object is the interned name of the synchronization object
// (Graph.ObjectName recovers the string).
type SyncEvent struct {
	Kind   SyncOpKind
	Object ObjRef
}

// SubComputation is a CPG vertex.
type SubComputation struct {
	ID SubID
	// Clock is Lt[α].C: the thread clock captured when the
	// sub-computation started, positioning it in the partial order.
	Clock vclock.Clock
	// ReadSet and WriteSet are the page-granularity access sets.
	ReadSet  PageSet
	WriteSet PageSet
	// Thunks is the recorded control path (∆).
	Thunks []Thunk
	// End is the synchronization event that terminated it.
	End SyncEvent
	// Start and Finish are virtual times bounding the execution.
	Start, Finish vtime.Cycles
	// Instructions counts instructions retired.
	Instructions uint64
}

// EdgeKind classifies CPG edges.
type EdgeKind uint8

// Edge kinds.
const (
	// EdgeControl is intra-thread program order.
	EdgeControl EdgeKind = iota + 1
	// EdgeSync is a release -> acquire schedule dependency.
	EdgeSync
	// EdgeData is an update-use data dependency.
	EdgeData
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeControl:
		return "control"
	case EdgeSync:
		return "sync"
	case EdgeData:
		return "data"
	default:
		return "unknown"
	}
}

// Edge is one CPG edge, in query/export form: Object carries the
// materialized synchronization-object name. The in-graph sync-edge logs
// store interned refs (syncEdgeRec); edges are materialized when derived.
type Edge struct {
	From, To SubID
	Kind     EdgeKind
	// Object names the synchronization object for sync edges.
	Object string
	// Pages lists the shared pages for data edges.
	Pages []uint64
}

// syncEdgeRec is the stored form of a schedule-dependency edge.
type syncEdgeRec struct {
	From, To SubID
	Object   ObjRef
}

// graphShard holds one thread slot's vertex sequence and the sync edges
// whose acquiring side is that thread. Both are appended only by the
// owning thread's Recorder, so the shard mutex is uncontended on the
// recording path; it exists to order appends against concurrent readers
// (queries, the snapshot facility). The trailing pad keeps adjacent
// shards off each other's cache lines.
type graphShard struct {
	mu        sync.RWMutex
	seq       []*SubComputation
	syncEdges []syncEdgeRec
	// gaps records intervals of trace loss on this thread (see gaps.go);
	// empty for complete recordings.
	gaps []Gap
	_    [56]byte
}

// Graph is the Concurrent Provenance Graph under construction or analysis.
// Methods are safe for concurrent use by the recording threads; each
// thread's appends touch only its own shard (the algorithm's
// decentralization property, §IV-B, reflected in the store layout).
type Graph struct {
	threads  int
	interner *Interner
	shards   []graphShard
}

// NewGraph creates an empty CPG for up to threads thread slots.
func NewGraph(threads int) *Graph {
	g := &Graph{
		threads:  threads,
		interner: NewInterner(),
		shards:   make([]graphShard, threads),
	}
	// Ref 0 is the empty string, so zero-valued SiteRef/ObjRef fields
	// materialize as "".
	g.interner.Intern("")
	return g
}

// Threads returns the thread-slot capacity.
func (g *Graph) Threads() int { return g.threads }

// InternSite interns a branch-site label (or indirect target).
func (g *Graph) InternSite(label string) SiteRef { return SiteRef(g.interner.Intern(label)) }

// SiteName returns the label for an interned site ref.
func (g *Graph) SiteName(ref SiteRef) string { return g.interner.Name(uint32(ref)) }

// InternObject interns a synchronization-object name.
func (g *Graph) InternObject(name string) ObjRef { return ObjRef(g.interner.Intern(name)) }

// ObjectName returns the name for an interned object ref.
func (g *Graph) ObjectName(ref ObjRef) string { return g.interner.Name(uint32(ref)) }

// Symbols returns the graph's symbol table in ref order (snapshots embed
// it so offline consumers can resolve refs without the live graph).
func (g *Graph) Symbols() []string { return g.interner.Snapshot() }

// shard returns the shard for thread t, or nil if out of range.
func (g *Graph) shard(t int) *graphShard {
	if t < 0 || t >= len(g.shards) {
		return nil
	}
	return &g.shards[t]
}

// add appends a completed sub-computation to its thread's shard. The
// recorder guarantees alphas are dense per thread. This is the EndSub
// append path: it takes only the owning shard's (uncontended) lock.
func (g *Graph) add(sc *SubComputation) error {
	sh := g.shard(sc.ID.Thread)
	if sh == nil {
		return fmt.Errorf("core: thread slot %d out of range [0,%d)", sc.ID.Thread, g.threads)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if uint64(len(sh.seq)) != sc.ID.Alpha {
		return fmt.Errorf("core: thread %d alpha %d out of order (have %d)",
			sc.ID.Thread, sc.ID.Alpha, len(sh.seq))
	}
	sh.seq = append(sh.seq, sc)
	return nil
}

// addSyncEdge records a release -> acquire schedule dependency in the
// acquiring thread's edge log.
func (g *Graph) addSyncEdge(from, to SubID, object ObjRef) {
	sh := g.shard(to.Thread)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	sh.syncEdges = append(sh.syncEdges, syncEdgeRec{From: from, To: to, Object: object})
	sh.mu.Unlock()
}

// Sub returns the vertex with the given ID.
func (g *Graph) Sub(id SubID) (*SubComputation, bool) {
	sh := g.shard(id.Thread)
	if sh == nil {
		return nil, false
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if id.Alpha >= uint64(len(sh.seq)) {
		return nil, false
	}
	return sh.seq[id.Alpha], true
}

// ThreadSeq returns thread t's sub-computation sequence Lt.
func (g *Graph) ThreadSeq(t int) []*SubComputation {
	sh := g.shard(t)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	out := make([]*SubComputation, len(sh.seq))
	copy(out, sh.seq)
	sh.mu.RUnlock()
	return out
}

// Subs returns every vertex, ordered by (thread, alpha).
func (g *Graph) Subs() []*SubComputation {
	out := make([]*SubComputation, 0, g.NumSubs())
	for t := range g.shards {
		sh := &g.shards[t]
		sh.mu.RLock()
		out = append(out, sh.seq...)
		sh.mu.RUnlock()
	}
	return out
}

// NumSubs returns the vertex count.
func (g *Graph) NumSubs() int {
	n := 0
	for t := range g.shards {
		sh := &g.shards[t]
		sh.mu.RLock()
		n += len(sh.seq)
		sh.mu.RUnlock()
	}
	return n
}

// shardLen returns thread t's current sequence length.
func (g *Graph) shardLen(t int) int {
	sh := g.shard(t)
	if sh == nil {
		return 0
	}
	sh.mu.RLock()
	n := len(sh.seq)
	sh.mu.RUnlock()
	return n
}

// threadTail copies thread t's sub-computations with alpha in [lo, hi),
// clamped to the shard's current length. The incremental fold uses it to
// pull exactly the vertices sealed since the previous epoch.
func (g *Graph) threadTail(t, lo, hi int) []*SubComputation {
	sh := g.shard(t)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if hi > len(sh.seq) {
		hi = len(sh.seq)
	}
	if lo >= hi {
		return nil
	}
	out := make([]*SubComputation, hi-lo)
	copy(out, sh.seq[lo:hi])
	return out
}

// syncEdgeTail copies thread t's sync-edge log entries from index `from`
// on. Logs are append-only, so successive calls with the previous return
// length see each entry exactly once.
func (g *Graph) syncEdgeTail(t, from int) []syncEdgeRec {
	sh := g.shard(t)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if from >= len(sh.syncEdges) {
		return nil
	}
	out := make([]syncEdgeRec, len(sh.syncEdges)-from)
	copy(out, sh.syncEdges[from:])
	return out
}

// prefixSubs returns the vertices of the prefix bounded by lens, ordered
// by (thread, alpha).
func (g *Graph) prefixSubs(lens []int) []*SubComputation {
	total := 0
	for _, n := range lens {
		total += n
	}
	out := make([]*SubComputation, 0, total)
	for t, n := range lens {
		out = append(out, g.threadTail(t, 0, n)...)
	}
	return out
}

// threadLens returns the per-shard sequence lengths (the dense-index
// layout the Analysis CSR uses).
func (g *Graph) threadLens() []int {
	out := make([]int, len(g.shards))
	for t := range g.shards {
		sh := &g.shards[t]
		sh.mu.RLock()
		out[t] = len(sh.seq)
		sh.mu.RUnlock()
	}
	return out
}

// ControlEdges derives the intra-thread program-order edges, ordered by
// (thread, alpha) by construction.
func (g *Graph) ControlEdges() []Edge {
	var out []Edge
	for t := range g.shards {
		sh := &g.shards[t]
		sh.mu.RLock()
		n := len(sh.seq)
		sh.mu.RUnlock()
		for i := 1; i < n; i++ {
			out = append(out, Edge{
				From: SubID{Thread: t, Alpha: uint64(i - 1)},
				To:   SubID{Thread: t, Alpha: uint64(i)},
				Kind: EdgeControl,
			})
		}
	}
	return out
}

// SyncEdges returns the recorded schedule-dependency edges with
// materialized object names, sorted by (From, To, Kind, Object).
func (g *Graph) SyncEdges() []Edge {
	out := []Edge{} // non-nil even when empty: the JSON dump renders []
	for t := range g.shards {
		sh := &g.shards[t]
		sh.mu.RLock()
		for _, rec := range sh.syncEdges {
			out = append(out, Edge{
				From:   rec.From,
				To:     rec.To,
				Kind:   EdgeSync,
				Object: g.ObjectName(rec.Object),
			})
		}
		sh.mu.RUnlock()
	}
	sortEdges(out)
	return out
}

// HappensBefore reports whether a happens-before b using the recorded
// vector clocks (same-thread order included).
func (g *Graph) HappensBefore(a, b SubID) bool {
	if a.Thread == b.Thread {
		return a.Alpha < b.Alpha
	}
	sa, ok := g.Sub(a)
	if !ok {
		return false
	}
	sb, ok := g.Sub(b)
	if !ok {
		return false
	}
	switch sa.Clock.Compare(sb.Clock) {
	case vclock.Before:
		return true
	case vclock.Equal:
		// Equal clocks across threads can only happen for initial
		// zero-clock subs; order them by thread slot for determinism.
		return false
	default:
		return false
	}
}

// Concurrent reports whether neither vertex happens-before the other.
func (g *Graph) Concurrent(a, b SubID) bool {
	return !g.HappensBefore(a, b) && !g.HappensBefore(b, a) && a != b
}

// Edges returns control, sync, and data edges combined.
func (g *Graph) Edges() []Edge {
	out := g.ControlEdges()
	out = append(out, g.SyncEdges()...)
	out = append(out, g.DataEdges()...)
	return out
}

// sortEdges orders edges by (From, To, Kind, Object). The object
// tiebreaker is unreachable for edges derived from one graph (a single
// acquire binds to one fresh sub-computation, so (From, To, Kind) is
// unique) but keeps the order total for hand-built inputs.
func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool { return edgeLess(edges[i], edges[j]) })
}

// edgeLess is the canonical edge order shared by sortEdges and the
// incremental fold's sorted-run merge.
func edgeLess(a, b Edge) bool {
	if a.From != b.From {
		return a.From.Less(b.From)
	}
	if a.To != b.To {
		return a.To.Less(b.To)
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Object < b.Object
}
