package core

import "fmt"

// Trace loss is a first-class property of the hardware channel the paper
// records from: Intel PT overflows its AUX ring under load (the OVF
// packet exists for exactly this), traces truncate when a process dies
// mid-write, and a crashed workload leaves its last sub-computation
// unsealed. A CPG built from such a trace is not wrong — every vertex
// and edge it does contain was really observed — but it may be missing
// control path detail inside the affected intervals. Gaps record those
// intervals in the graph itself, so every consumer downstream (analysis,
// verification, the query wire) can distinguish "complete" from
// "degraded" instead of silently treating them alike.

// GapKind classifies why a trace interval is uncertain.
type GapKind uint8

// Gap kinds.
const (
	// GapAuxLoss marks trace bytes dropped by the AUX ring (or any
	// lossy sink): the decoder will resync past an OVF, losing the
	// branch history in between.
	GapAuxLoss GapKind = iota + 1
	// GapTruncated marks a trace that ended mid-stream (the recording
	// process died before the final flush).
	GapTruncated
	// GapPanic marks a sub-computation whose workload body panicked:
	// the interval was being recorded when the thread unwound, so its
	// access sets and control path are partial.
	GapPanic
)

// String names the gap kind.
func (k GapKind) String() string {
	switch k {
	case GapAuxLoss:
		return "aux-loss"
	case GapTruncated:
		return "truncated"
	case GapPanic:
		return "panic"
	default:
		return "unknown"
	}
}

// Gap marks one per-thread interval of sub-computation indices
// [FromAlpha, ToAlpha] whose recorded detail is uncertain because trace
// data was lost while they executed. The vertices themselves remain in
// the graph (boundaries come from the instrumentation layer, not the
// trace), but their thunk sequences may be incomplete.
type Gap struct {
	FromAlpha uint64
	ToAlpha   uint64
	Kind      GapKind
	// Bytes counts the trace bytes lost over the interval (0 when the
	// loss is structural rather than byte-counted, e.g. a panic).
	Bytes uint64
}

// String renders like "T?.3-5 aux-loss (128 bytes)" without the thread.
func (gp Gap) String() string {
	if gp.Bytes > 0 {
		return fmt.Sprintf("α%d-%d %s (%d bytes)", gp.FromAlpha, gp.ToAlpha, gp.Kind, gp.Bytes)
	}
	return fmt.Sprintf("α%d-%d %s", gp.FromAlpha, gp.ToAlpha, gp.Kind)
}

// ThreadGaps pairs one thread slot with its recorded gap intervals, in
// the order they were recorded (FromAlpha ascending, since the recording
// thread appends them in program order).
type ThreadGaps struct {
	Thread int
	Gaps   []Gap
}

// AddGap records a trace-loss interval on thread t. Like vertex appends,
// gaps are recorded by the owning thread, so the shard lock is
// uncontended on the recording path.
func (g *Graph) AddGap(t int, gp Gap) {
	sh := g.shard(t)
	if sh == nil {
		return
	}
	sh.mu.Lock()
	sh.gaps = append(sh.gaps, gp)
	sh.mu.Unlock()
}

// ThreadGapList returns thread t's recorded gap intervals.
func (g *Graph) ThreadGapList(t int) []Gap {
	sh := g.shard(t)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if len(sh.gaps) == 0 {
		return nil
	}
	out := make([]Gap, len(sh.gaps))
	copy(out, sh.gaps)
	return out
}

// Gaps returns every thread's gap intervals, thread ascending, omitting
// threads with none. Nil means the recording was complete.
func (g *Graph) Gaps() []ThreadGaps {
	var out []ThreadGaps
	for t := range g.shards {
		if gaps := g.ThreadGapList(t); len(gaps) > 0 {
			out = append(out, ThreadGaps{Thread: t, Gaps: gaps})
		}
	}
	return out
}

// Degraded reports whether any trace loss was recorded.
func (g *Graph) Degraded() bool {
	for t := range g.shards {
		sh := &g.shards[t]
		sh.mu.RLock()
		n := len(sh.gaps)
		sh.mu.RUnlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// Completeness summarizes how much of a recording the graph can vouch
// for. The zero value of the counting fields plus Complete=true is the
// common case: no trace loss anywhere.
type Completeness struct {
	// Complete is true when no gap intervals were recorded.
	Complete bool
	// GapThreads counts threads with at least one gap.
	GapThreads int
	// GapIntervals counts recorded gap intervals across all threads.
	GapIntervals int
	// LostBytes totals the trace bytes the gaps account for.
	LostBytes uint64
	// Gaps is the per-thread detail (nil when Complete).
	Gaps []ThreadGaps
}

// summarizeGaps folds per-thread gap lists into a Completeness.
func summarizeGaps(gaps []ThreadGaps) Completeness {
	c := Completeness{Complete: len(gaps) == 0, Gaps: gaps}
	for _, tg := range gaps {
		c.GapThreads++
		c.GapIntervals += len(tg.Gaps)
		for _, gp := range tg.Gaps {
			c.LostBytes += gp.Bytes
		}
	}
	return c
}

// Completeness summarizes the graph's recorded trace loss.
func (g *Graph) Completeness() Completeness {
	return summarizeGaps(g.Gaps())
}

// gapsForPrefix snapshots the gap intervals that touch the vertex prefix
// bounded by lens, clamping intervals to the prefix. Gaps recorded
// entirely beyond the prefix belong to a later epoch's analysis and are
// excluded, so live folds report completeness consistent with the
// prefix their cursors refer to.
func (g *Graph) gapsForPrefix(lens []int) []ThreadGaps {
	var out []ThreadGaps
	for t := 0; t < len(lens) && t < len(g.shards); t++ {
		var kept []Gap
		for _, gp := range g.ThreadGapList(t) {
			if gp.FromAlpha >= uint64(lens[t]) {
				continue
			}
			if gp.ToAlpha >= uint64(lens[t]) {
				gp.ToAlpha = uint64(lens[t]) - 1
			}
			kept = append(kept, gp)
		}
		if len(kept) > 0 {
			out = append(out, ThreadGaps{Thread: t, Gaps: kept})
		}
	}
	return out
}
