package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/repro/inspector/internal/vclock"
)

// DataEdges derives the update-use edges (§IV-A III): for every reader n
// and page p in its read set, an edge from each maximal writer m (under
// happens-before) with p in its write set and m -> n. Writers hidden by a
// later writer of the same page that still precedes the reader are
// excluded, so each edge names a write that may actually have produced
// the value read.
//
// Three structural facts make this fast on sync-heavy executions with
// tens of thousands of vertices: (1) a thread's writers of a page are
// totally ordered by program order, so at most the *latest* one that
// happens-before n can be maximal — earlier ones are hidden by it;
// (2) "happens-before n" is monotone along a thread's sequence, so the
// boundary — the latest sub-computation of thread t ordered before n —
// is found by binary search; and (3) that boundary is independent of the
// page, so it is computed once per (reader, thread) and every per-page
// writer lookup reduces to an integer binary search within the page's
// writer run. Vector-clock comparisons thus drop from one search per
// (reader, page, thread) to one per (reader, thread).
//
// The derivation is indexed and parallel: one pass builds a page →
// writer-runs index (each run is one thread's writers of the page in
// program order), then a bounded worker pool derives every reader's
// edges independently. dataEdgesReference retains the original
// map-of-maps single-threaded derivation as the executable
// specification; property tests assert the two never diverge.
func (g *Graph) DataEdges() []Edge {
	return deriveDataEdges(g.Subs(), runtimeWorkers())
}

// runtimeWorkers is the derivation worker-pool bound.
func runtimeWorkers() int { return runtime.GOMAXPROCS(0) }

// hbSubs is the happens-before relation over materialized vertices.
func hbSubs(a, b *SubComputation) bool {
	if a.ID.Thread == b.ID.Thread {
		return a.ID.Alpha < b.ID.Alpha
	}
	return a.Clock.Compare(b.Clock) == vclock.Before
}

// writerRun is one thread's writers of one page, ascending by alpha
// (values are indices into the subs slice).
type writerRun struct {
	thread int32
	subs   []int32
}

// buildWriterIndex builds the page → writer-runs index in one pass. subs
// is (thread, alpha)-ordered, so appends land grouped by thread and
// ascending within each run.
func buildWriterIndex(subs []*SubComputation) map[uint64][]writerRun {
	index := make(map[uint64][]writerRun)
	for i, sc := range subs {
		th := int32(sc.ID.Thread)
		for _, p := range sc.WriteSet.view() {
			runs := index[p]
			if k := len(runs) - 1; k >= 0 && runs[k].thread == th {
				runs[k].subs = append(runs[k].subs, int32(i))
			} else {
				runs = append(runs, writerRun{thread: th, subs: []int32{int32(i)}})
			}
			index[p] = runs
		}
	}
	return index
}

// threadRange is one thread's contiguous index range in the subs slice.
type threadRange struct{ start, end int32 }

// threadRanges maps thread slot -> index range (subs is (thread, alpha)-
// ordered, so ranges are contiguous).
func threadRanges(subs []*SubComputation) []threadRange {
	maxT := -1
	for _, sc := range subs {
		if sc.ID.Thread > maxT {
			maxT = sc.ID.Thread
		}
	}
	out := make([]threadRange, maxT+1)
	for i := range out {
		out[i] = threadRange{start: -1, end: -1}
	}
	for i, sc := range subs {
		t := sc.ID.Thread
		if out[t].start < 0 {
			out[t].start = int32(i)
		}
		out[t].end = int32(i) + 1
	}
	return out
}

// dataWorker is one derivation worker's reusable scratch state.
//
// It exploits the standard vector-clock theorem the recording discipline
// guarantees (every sub-computation ticks its own component at start, and
// components only flow through synchronization): for a sub-computation m
// on thread t, m happens-before n exactly when n's clock has seen m's
// tick — n.Clock[t] ≥ m.Clock[t]. Thread t's sub α carries clock[t] =
// α+1, so "the latest writer of thread t ordered before n" is a pure
// integer threshold read off one component of the reader's clock: alpha ≤
// n.Clock[t]-1 (same-thread: program order). No O(threads) clock
// comparison appears anywhere in the derivation; dataEdgesReference keeps
// the full-comparison form and the property tests hold the two equal.
type dataWorker struct {
	subs   []*SubComputation
	index  map[uint64][]writerRun
	ranges []threadRange

	cands []int32
	// accFrom/accPages accumulate pages per maximal writer for one
	// reader; accFrom is reused, the page slices escape into edges.
	accFrom  []int32
	accPages [][]uint64
}

func newDataWorker(subs []*SubComputation, index map[uint64][]writerRun, ranges []threadRange) *dataWorker {
	return &dataWorker{subs: subs, index: index, ranges: ranges}
}

// hbLimitIdx returns the largest subs index within thread t whose
// sub-computation happens-before reader n (at index ni), or
// ranges[t].start-1 if none.
func (w *dataWorker) hbLimitIdx(t int32, n *SubComputation, ni int32) int32 {
	if int(t) == n.ID.Thread {
		return ni - 1
	}
	r := w.ranges[t]
	seen := int32(n.Clock.Get(int(t))) // α+1 of the latest sub of t seen by n
	lim := r.start + seen - 1
	if lim >= r.end {
		lim = r.end - 1
	}
	return lim
}

// readerEdges derives reader ni's incoming data edges.
func (w *dataWorker) readerEdges(ni int32) []Edge {
	n := w.subs[ni]
	w.accFrom = w.accFrom[:0]
	w.accPages = w.accPages[:0]
	for _, p := range n.ReadSet.view() {
		runs := w.index[p]
		if runs == nil {
			continue
		}
		w.cands = w.cands[:0]
		for _, run := range runs {
			// The candidate is the last writer at or below the
			// happens-before limit — an integer search; n itself sits
			// above its own limit, so self-writes are excluded.
			lim := w.hbLimitIdx(run.thread, n, ni)
			seq := run.subs
			if seq[0] > lim {
				continue
			}
			lo, hi := 1, len(seq)
			for lo < hi {
				mid := (lo + hi) / 2
				if seq[mid] <= lim {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			w.cands = append(w.cands, seq[lo-1])
		}
		for _, m := range w.cands {
			// m (on thread tm) is hidden iff some other candidate m2 has
			// seen m's tick: m2.Clock[tm] ≥ m.Clock[tm] = alpha(m)+1.
			mSub := w.subs[m]
			mTick := m - w.ranges[mSub.ID.Thread].start + 1
			hidden := false
			for _, m2 := range w.cands {
				if m2 != m && int32(w.subs[m2].Clock.Get(mSub.ID.Thread)) >= mTick {
					hidden = true
					break
				}
			}
			if hidden {
				continue
			}
			slot := -1
			for k, f := range w.accFrom {
				if f == m {
					slot = k
					break
				}
			}
			if slot < 0 {
				w.accFrom = append(w.accFrom, m)
				w.accPages = append(w.accPages, nil)
				slot = len(w.accFrom) - 1
			}
			// The outer loop visits pages ascending, so each list comes
			// out sorted without a final sort.
			w.accPages[slot] = append(w.accPages[slot], p)
		}
	}
	if len(w.accFrom) == 0 {
		return nil
	}
	out := make([]Edge, len(w.accFrom))
	for k, m := range w.accFrom {
		out[k] = Edge{From: w.subs[m].ID, To: n.ID, Kind: EdgeData, Pages: w.accPages[k]}
	}
	return out
}

// deriveDataEdges runs the indexed derivation with up to workers
// goroutines. The output is independent of worker count: every reader's
// edges are derived in isolation and the final sort imposes the total
// (From, To, Kind) order, under which data-edge keys are unique.
func deriveDataEdges(subs []*SubComputation, workers int) []Edge {
	index := buildWriterIndex(subs)
	ranges := threadRanges(subs)
	perReader := make([][]Edge, len(subs))
	if workers > len(subs)/256 {
		workers = len(subs) / 256 // keep chunks coarse enough to matter
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := newDataWorker(subs, index, ranges)
				for {
					ni := int(next.Add(1)) - 1
					if ni >= len(subs) {
						return
					}
					perReader[ni] = w.readerEdges(int32(ni))
				}
			}()
		}
		wg.Wait()
	} else {
		w := newDataWorker(subs, index, ranges)
		for ni := range subs {
			perReader[ni] = w.readerEdges(int32(ni))
		}
	}
	total := 0
	for _, es := range perReader {
		total += len(es)
	}
	out := make([]Edge, 0, total)
	for _, es := range perReader {
		out = append(out, es...)
	}
	sortEdges(out)
	return out
}

// dataEdgesReference is the retained pre-columnar derivation: the
// executable specification deriveDataEdges is property-tested against.
func dataEdgesReference(subs []*SubComputation) []Edge {
	// writersByPage[p][t] = thread t's writers of p in program order.
	writersByPage := make(map[uint64]map[int][]*SubComputation)
	for _, sc := range subs {
		for _, p := range sc.WriteSet.Sorted() {
			byT := writersByPage[p]
			if byT == nil {
				byT = make(map[int][]*SubComputation)
				writersByPage[p] = byT
			}
			byT[sc.ID.Thread] = append(byT[sc.ID.Thread], sc)
		}
	}
	type key struct {
		from, to SubID
	}
	pages := make(map[key][]uint64)
	var cands []*SubComputation
	for _, n := range subs {
		for _, p := range n.ReadSet.Sorted() {
			byT := writersByPage[p]
			if byT == nil {
				continue
			}
			cands = cands[:0]
			for _, seq := range byT {
				// Binary search for the first writer NOT before n; the
				// candidate is its predecessor. n itself never
				// satisfies hb(n, n), so self-writes are excluded.
				lo, hi := 0, len(seq)
				for lo < hi {
					mid := (lo + hi) / 2
					if hbSubs(seq[mid], n) {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo > 0 {
					cands = append(cands, seq[lo-1])
				}
			}
			for _, m := range cands {
				hidden := false
				for _, m2 := range cands {
					if m2 != m && hbSubs(m, m2) {
						hidden = true
						break
					}
				}
				if !hidden {
					k := key{from: m.ID, to: n.ID}
					pages[k] = append(pages[k], p)
				}
			}
		}
	}
	out := make([]Edge, 0, len(pages))
	for k, ps := range pages {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		out = append(out, Edge{From: k.from, To: k.to, Kind: EdgeData, Pages: ps})
	}
	sortEdges(out)
	return out
}
