package core_test

// The CPG-core benchmark suite. Scenario bodies live in
// internal/core/cpgbench — shared verbatim with `inspector-bench
// -experiment cpg`, which snapshots them into the committed
// BENCH_cpg.json (baseline = the pre-columnar core). See ROADMAP.md
// ("perf trajectory convention") for the regeneration workflow.

import (
	"sync"
	"testing"

	"github.com/repro/inspector/internal/core/cpgbench"
)

// cases memoizes cpgbench.Cases(): its fixtures (three random graphs and
// two analyses) are read-only across scenarios, so each benchmark — and
// the CI 1-iteration smoke — pays the setup once, not per lookup.
var cases = sync.OnceValue(cpgbench.Cases)

// liveCases memoizes the live-pipeline scenarios the same way.
var liveCases = sync.OnceValue(cpgbench.LiveCases)

// largeCases memoizes the large-graph live scenarios. The schedule
// itself is drawn lazily inside cpgbench, so merely listing these costs
// nothing.
var largeCases = sync.OnceValue(cpgbench.LargeCases)

// runCase looks a scenario up by name so benchmark names stay stable
// even if the case list reorders.
func runCase(b *testing.B, name string) {
	b.Helper()
	all := append(cases(), liveCases()...)
	for _, c := range append(all, largeCases()...) {
		if c.Name == name {
			b.ReportAllocs()
			b.ResetTimer()
			c.Fn(b)
			return
		}
	}
	b.Fatalf("no cpgbench case %q", name)
}

// BenchmarkEndSub measures the vertex-append path: one op records 1000
// sub-computations (4 reads, 4 writes, 2 branches each) into a fresh
// graph through a single recorder.
func BenchmarkEndSub(b *testing.B) { runCase(b, "EndSub/serial") }

// BenchmarkEndSubParallel records the same 1000 sub-computations per op
// split across 8 concurrent recorders — the decentralization check: with
// per-thread shards this should approach EndSub/8, where the global
// RWMutex of the pre-columnar store kept it at EndSub or worse.
func BenchmarkEndSubParallel(b *testing.B) { runCase(b, "EndSub/parallel8") }

// BenchmarkDataEdges measures the update-use derivation over a
// 2000-vertex, 64-page random execution.
func BenchmarkDataEdges(b *testing.B) { runCase(b, "DataEdges/sparse") }

// BenchmarkDataEdgesDense is the high-sharing variant (24 pages, 4
// accesses per sub-computation).
func BenchmarkDataEdgesDense(b *testing.B) { runCase(b, "DataEdges/dense") }

// BenchmarkAnalyze measures full analysis construction (edge derivation
// plus CSR adjacency).
func BenchmarkAnalyze(b *testing.B) { runCase(b, "Analyze/sparse") }

// BenchmarkSliceWide measures a backward slice whose closure spans
// nearly the whole 4000-vertex graph — the regression guard for the
// quadratic insertion sort that used to live in sortSubIDs.
func BenchmarkSliceWide(b *testing.B) { runCase(b, "Slice/wide") }

// BenchmarkVerify measures the full invariant check (clock order,
// acyclicity, and the data-edge page-containment of invariant 3).
func BenchmarkVerify(b *testing.B) { runCase(b, "Verify/sparse") }

// BenchmarkPageSetAdd measures the read/write-set hot path: 96 inserts
// (with duplicates) over a 1024-page range.
func BenchmarkPageSetAdd(b *testing.B) { runCase(b, "PageSet/add") }

// BenchmarkIncrementalAnalyze measures the live pipeline's cumulative
// analysis cost over the DataEdges/sparse execution folded at an
// 8-epoch cadence; the /1 and /64 variants bracket it. Compare against
// BenchmarkReAnalyze at the same cadence: the fold derives each
// vertex's edges once, the naive re-Analyze pays the whole prefix at
// every epoch.
func BenchmarkIncrementalAnalyze(b *testing.B)   { runCase(b, "IncrementalAnalyze/epochs8") }
func BenchmarkIncrementalAnalyze1(b *testing.B)  { runCase(b, "IncrementalAnalyze/epochs1") }
func BenchmarkIncrementalAnalyze64(b *testing.B) { runCase(b, "IncrementalAnalyze/epochs64") }

// BenchmarkReAnalyze is the naive live baseline: one full batch Analyze
// at every epoch boundary of the same schedule.
func BenchmarkReAnalyze(b *testing.B)   { runCase(b, "ReAnalyze/epochs8") }
func BenchmarkReAnalyze64(b *testing.B) { runCase(b, "ReAnalyze/epochs64") }

// BenchmarkIncrementalAnalyzeParallel runs the same fold with the
// data-edge derivation fanned across 8 workers (the -fold-workers /
// Options.FoldWorkers path); on a single-core box it measures the
// fan-out overhead, on a multi-core one the speedup.
func BenchmarkIncrementalAnalyzeParallel(b *testing.B) {
	runCase(b, "IncrementalAnalyzeParallel/epochs8")
}
func BenchmarkIncrementalAnalyzeParallel64(b *testing.B) {
	runCase(b, "IncrementalAnalyzeParallel/epochs64")
}

// BenchmarkIncrementalAnalyzeLarge scales the fold comparison to a
// 2^20-step (>=10^6-vertex) execution at a 64-epoch cadence: /serial is
// the retained full-rebuild reference fold, /workers1 and /workers8 the
// incremental delta-overlay fold at a fixed derivation fan-out.
func BenchmarkIncrementalAnalyzeLarge(b *testing.B) {
	runCase(b, "IncrementalAnalyzeLarge/serial")
}
func BenchmarkIncrementalAnalyzeLargeWorkers1(b *testing.B) {
	runCase(b, "IncrementalAnalyzeLarge/workers1")
}
func BenchmarkIncrementalAnalyzeLargeWorkers8(b *testing.B) {
	runCase(b, "IncrementalAnalyzeLarge/workers8")
}
