package core_test

// Tests of the epoch-delta capture/replay pair behind the crash-durable
// journal. The load-bearing property: replaying a FoldDelta sequence —
// ApplyDelta then Fold per delta, on a fresh graph — reproduces the
// recording's per-epoch Analyses byte-for-byte and its final graph dump
// exactly. That equivalence is what makes journal recovery a faithful
// reconstruction rather than a best-effort approximation.

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"github.com/repro/inspector/internal/core"
)

// dumpJSON renders a graph through the deterministic full-dump export.
func dumpJSON(t *testing.T, g *core.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	return buf.Bytes()
}

// gobRoundTrip pushes a delta through gob, the journal's record payload
// encoding, so replay sees exactly what a recovered record would carry.
func gobRoundTrip(t *testing.T, d *core.EpochDelta) *core.EpochDelta {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		t.Fatalf("encode delta: %v", err)
	}
	out := new(core.EpochDelta)
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode delta: %v", err)
	}
	return out
}

// TestIncrementalDeltaReplayMatchesFold is the replay-equivalence
// property, across 1 and 4 threads and random fold prefixes: each
// FoldDelta's Analysis must export byte-identically to the Analysis a
// replica produces by ApplyDelta + Fold of the (gob round-tripped)
// delta, and after the final epoch the replica graph's dump must match
// the original's.
func TestIncrementalDeltaReplayMatchesFold(t *testing.T) {
	for _, threads := range []int{1, 4} {
		for seed := int64(0); seed < 8; seed++ {
			lr := newLiveRecording(t, threads, 48, seed)
			inc := core.NewIncrementalAnalyzer(lr.g)

			replica := core.NewGraph(threads)
			rinc := core.NewIncrementalAnalyzer(replica)

			foldR := rand.New(rand.NewSource(seed*7731 + 5))
			steps := 60 + int(seed)*17
			replay := func(s int) {
				a, d := inc.FoldDelta()
				if d.Epoch != a.Epoch() {
					t.Fatalf("threads=%d seed=%d step=%d: delta epoch %d, analysis epoch %d",
						threads, seed, s, d.Epoch, a.Epoch())
				}
				if err := core.ApplyDelta(replica, gobRoundTrip(t, d)); err != nil {
					t.Fatalf("threads=%d seed=%d step=%d: ApplyDelta: %v", threads, seed, s, err)
				}
				ra := rinc.Fold()
				if ra.Epoch() != a.Epoch() {
					t.Fatalf("threads=%d seed=%d step=%d: replica epoch %d, want %d",
						threads, seed, s, ra.Epoch(), a.Epoch())
				}
				if got, want := exportBytes(t, ra), exportBytes(t, a); !bytes.Equal(got, want) {
					t.Fatalf("threads=%d seed=%d step=%d: epoch %d replay diverges from fold",
						threads, seed, s, a.Epoch())
				}
			}
			for s := 0; s < steps; s++ {
				lr.step(t, 48)
				if foldR.Intn(9) == 0 {
					replay(s)
				}
			}
			lr.finish(t)
			replay(steps)
			if got, want := dumpJSON(t, replica), dumpJSON(t, lr.g); !bytes.Equal(got, want) {
				t.Fatalf("threads=%d seed=%d: replica dump diverges from original", threads, seed)
			}
		}
	}
}

// TestIncrementalDeltaCarriesGaps pins gap-interval capture: a gap
// recorded mid-run must ride exactly one delta and reappear in the
// replica's dump.
func TestIncrementalDeltaCarriesGaps(t *testing.T) {
	lr := newLiveRecording(t, 2, 16, 3)
	inc := core.NewIncrementalAnalyzer(lr.g)
	replica := core.NewGraph(2)
	rinc := core.NewIncrementalAnalyzer(replica)

	lr.step(t, 16)
	lr.g.AddGap(1, core.Gap{FromAlpha: 0, ToAlpha: 2, Kind: core.GapAuxLoss, Bytes: 64})
	_, d1 := inc.FoldDelta()
	if len(d1.Gaps) != 1 || d1.Gaps[0].Thread != 1 || d1.Gaps[0].Gap.Kind != core.GapAuxLoss {
		t.Fatalf("first delta gaps = %+v, want the one aux-loss gap on thread 1", d1.Gaps)
	}
	lr.step(t, 16)
	_, d2 := inc.FoldDelta()
	if len(d2.Gaps) != 0 {
		t.Fatalf("second delta re-emits gaps: %+v", d2.Gaps)
	}
	lr.finish(t)
	_, d3 := inc.FoldDelta()
	for _, d := range []*core.EpochDelta{d1, d2, d3} {
		if err := core.ApplyDelta(replica, d); err != nil {
			t.Fatalf("ApplyDelta: %v", err)
		}
		rinc.Fold()
	}
	if got, want := dumpJSON(t, replica), dumpJSON(t, lr.g); !bytes.Equal(got, want) {
		t.Fatal("replica dump (with gaps) diverges from original")
	}
	if !replica.Degraded() {
		t.Fatal("replica lost the gap marking")
	}
}

// TestApplyDeltaRejectsMalformed covers the validation surface: replay
// input passed a CRC but may still be forged or misordered, and must
// error rather than panic or mis-resolve.
func TestApplyDeltaRejectsMalformed(t *testing.T) {
	record := func() []*core.EpochDelta {
		lr := newLiveRecording(t, 2, 16, 9)
		inc := core.NewIncrementalAnalyzer(lr.g)
		var out []*core.EpochDelta
		for s := 0; s < 6; s++ {
			lr.step(t, 16)
			_, d := inc.FoldDelta()
			out = append(out, d)
		}
		lr.finish(t)
		_, d := inc.FoldDelta()
		return append(out, d)
	}
	deltas := record()

	apply := func(t *testing.T, ds ...*core.EpochDelta) error {
		t.Helper()
		g := core.NewGraph(2)
		var err error
		for _, d := range ds {
			if err = core.ApplyDelta(g, d); err != nil {
				return err
			}
		}
		return nil
	}

	if err := apply(t, deltas...); err != nil {
		t.Fatalf("clean replay rejected: %v", err)
	}
	if err := apply(t, nil); err == nil {
		t.Error("nil delta accepted")
	}
	if err := apply(t, deltas[1]); err == nil {
		t.Error("skipped first delta accepted (symbol base / alpha order must trip)")
	}
	if err := apply(t, deltas[0], deltas[0]); err == nil {
		t.Error("replayed duplicate delta accepted")
	}

	corrupt := func(mutate func(*core.EpochDelta)) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(deltas[0]); err != nil {
			t.Fatal(err)
		}
		d := new(core.EpochDelta)
		if err := gob.NewDecoder(&buf).Decode(d); err != nil {
			t.Fatal(err)
		}
		mutate(d)
		return apply(t, d)
	}
	if err := corrupt(func(d *core.EpochDelta) { d.Lens = d.Lens[:1] }); err == nil {
		t.Error("short lens accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) { d.Lens[0] += 3 }); err == nil {
		t.Error("inflated lens accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) { d.SymBase = 0 }); err == nil {
		t.Error("symbol base 0 (re-carrying ref 0) accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) { d.Symbols = append(d.Symbols, d.Symbols[0]) }); err == nil {
		t.Error("duplicate symbol tail accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) { d.Subs[0].End.Object = 1 << 20 }); err == nil {
		t.Error("out-of-range object ref accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) { d.Subs[0].ID.Thread = 7 }); err == nil {
		t.Error("out-of-range thread accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) { d.Subs[0] = nil }); err == nil {
		t.Error("nil sub accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) {
		d.Sync = append(d.Sync, core.DeltaSyncEdge{To: core.SubID{Thread: 5}})
	}); err == nil {
		t.Error("sync edge to out-of-range thread accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) {
		d.Sync = append(d.Sync, core.DeltaSyncEdge{Object: 1 << 20})
	}); err == nil {
		t.Error("sync edge with out-of-range object accepted")
	}
	if err := corrupt(func(d *core.EpochDelta) {
		d.Gaps = append(d.Gaps, core.DeltaGap{Thread: 9})
	}); err == nil {
		t.Error("gap on out-of-range thread accepted")
	}
}

// TestApplyDeltaAtomic pins the trust-boundary guarantee the network
// ingest path leans on: a rejected delta leaves the graph byte-for-byte
// untouched — no interned symbols, no appended vertices, no gaps — no
// matter how late in the delta the defect sits, and the graph still
// accepts the genuine delta afterwards.
func TestApplyDeltaAtomic(t *testing.T) {
	lr := newLiveRecording(t, 2, 16, 11)
	inc := core.NewIncrementalAnalyzer(lr.g)
	var deltas []*core.EpochDelta
	for s := 0; s < 6; s++ {
		lr.step(t, 16)
		_, d := inc.FoldDelta()
		deltas = append(deltas, d)
	}
	lr.finish(t)
	_, d := inc.FoldDelta()
	deltas = append(deltas, d)

	g := core.NewGraph(2)
	for _, d := range deltas[:3] {
		if err := core.ApplyDelta(g, gobRoundTrip(t, d)); err != nil {
			t.Fatalf("ApplyDelta prefix: %v", err)
		}
	}
	before := dumpJSON(t, g)
	symsBefore := len(g.Symbols())

	// Each mutation trips validation at a different (and deliberately
	// late) stage, after earlier fields would already have been applied
	// under a validate-as-you-go scheme.
	next := deltas[3]
	mutations := map[string]func(*core.EpochDelta){
		"inflated lens (last check)": func(d *core.EpochDelta) { d.Lens[len(d.Lens)-1] += 3 },
		"gap on bad thread":          func(d *core.EpochDelta) { d.Gaps = append(d.Gaps, core.DeltaGap{Thread: 9}) },
		"sync edge to bad thread": func(d *core.EpochDelta) {
			d.Sync = append(d.Sync, core.DeltaSyncEdge{To: core.SubID{Thread: 5}})
		},
		"alpha out of order": func(d *core.EpochDelta) {
			if len(d.Subs) > 0 {
				d.Subs[len(d.Subs)-1].ID.Alpha += 7
			} else {
				d.Lens[0]++
			}
		},
		"duplicate symbol tail": func(d *core.EpochDelta) {
			if len(d.Symbols) > 0 {
				d.Symbols = append(d.Symbols, d.Symbols[0])
			} else {
				d.Symbols = append(d.Symbols, "", "")
			}
		},
	}
	for name, mutate := range mutations {
		bad := gobRoundTrip(t, next)
		mutate(bad)
		if err := core.ApplyDelta(g, bad); err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if got := dumpJSON(t, g); !bytes.Equal(got, before) {
			t.Fatalf("%s: rejected delta mutated the graph", name)
		}
		if got := len(g.Symbols()); got != symsBefore {
			t.Fatalf("%s: rejected delta grew the symbol table (%d -> %d)", name, symsBefore, got)
		}
	}

	// The untouched graph must still take the genuine continuation.
	for _, d := range deltas[3:] {
		if err := core.ApplyDelta(g, gobRoundTrip(t, d)); err != nil {
			t.Fatalf("ApplyDelta after rejections: %v", err)
		}
	}
	if got, want := dumpJSON(t, g), dumpJSON(t, lr.g); !bytes.Equal(got, want) {
		t.Fatal("final dump diverges after rejected-delta interleaving")
	}
}
