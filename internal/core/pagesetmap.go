package core

import "sort"

// PageSetMap is the reference page-set representation: the plain
// map[uint64]struct{} the pre-columnar core used. The hot paths use the
// hybrid PageSet; the map form is retained as the executable
// specification, and property tests (pageset_test.go) drive both through
// random operation sequences asserting they never diverge — the same
// convention internal/mem keeps for diffReference and internal/image for
// EdgeMap.
type PageSetMap map[uint64]struct{}

// NewPageSetMap returns an empty reference set.
func NewPageSetMap() PageSetMap { return make(PageSetMap) }

// Add inserts page p.
func (s PageSetMap) Add(p uint64) { s[p] = struct{}{} }

// Contains reports membership.
func (s PageSetMap) Contains(p uint64) bool {
	_, ok := s[p]
	return ok
}

// Len returns the set size.
func (s PageSetMap) Len() int { return len(s) }

// Intersect returns the pages present in both sets, ascending.
func (s PageSetMap) Intersect(other PageSetMap) []uint64 {
	small, large := s, other
	if len(other) < len(s) {
		small, large = other, s
	}
	var out []uint64
	for p := range small {
		if large.Contains(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Intersects reports whether the sets share any page.
func (s PageSetMap) Intersects(other PageSetMap) bool {
	small, large := s, other
	if len(other) < len(s) {
		small, large = other, s
	}
	for p := range small {
		if large.Contains(p) {
			return true
		}
	}
	return false
}

// Sorted returns the pages in ascending order.
func (s PageSetMap) Sorted() []uint64 {
	out := make([]uint64, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy.
func (s PageSetMap) Clone() PageSetMap {
	out := make(PageSetMap, len(s))
	for p := range s {
		out[p] = struct{}{}
	}
	return out
}
