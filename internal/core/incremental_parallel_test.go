package core_test

// Tests of the parallel fold path: SetFoldWorkers fans the fold's
// data-edge derivation across workers, and nothing about the result may
// depend on the fan-out. The equivalence oracle is NewReferenceAnalyzer
// — the retained serial full-rebuild fold — plus the batch Analyze.

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/repro/inspector/internal/core"
)

// TestIncrementalParallelMatchesReferenceOverRandomPrefixes folds the
// same random executions through the reference analyzer and the
// incremental analyzer at every worker fan-out, at shared random fold
// points, and requires byte-identical exports at each epoch — across 1
// and 4 recording threads and FoldWorkers in {1, 4, GOMAXPROCS}.
func TestIncrementalParallelMatchesReferenceOverRandomPrefixes(t *testing.T) {
	for _, threads := range []int{1, 4} {
		for _, workers := range []int{1, 4, 0} { // 0 = GOMAXPROCS
			for seed := int64(0); seed < 4; seed++ {
				lr := newLiveRecording(t, threads, 48, seed)
				ref := core.NewReferenceAnalyzer(lr.g)
				inc := core.NewIncrementalAnalyzer(lr.g)
				inc.SetFoldWorkers(workers)
				foldR := rand.New(rand.NewSource(seed*1301 + int64(workers)))
				steps := 50 + int(seed)*13
				for s := 0; s < steps; s++ {
					lr.step(t, 48)
					if foldR.Intn(7) != 0 {
						continue
					}
					want := exportBytes(t, ref.Fold())
					got := exportBytes(t, inc.Fold())
					if !bytes.Equal(got, want) {
						t.Fatalf("threads=%d workers=%d seed=%d step=%d: parallel fold diverges from reference",
							threads, workers, seed, s)
					}
				}
				lr.finish(t)
				want := exportBytes(t, ref.Fold())
				got := exportBytes(t, inc.Fold())
				if !bytes.Equal(got, want) {
					t.Fatalf("threads=%d workers=%d seed=%d: final parallel fold diverges from reference",
						threads, workers, seed)
				}
				if batch := exportBytes(t, lr.g.Analyze()); !bytes.Equal(want, batch) {
					t.Fatalf("threads=%d workers=%d seed=%d: reference fold diverges from batch",
						threads, workers, seed)
				}
			}
		}
	}
}

// TestIncrementalParallelWorkerFanOut pins that the parallel path
// actually runs: with enough new vertices per epoch and FoldWorkers=4,
// the worker hook must observe more than one distinct worker, and with
// FoldWorkers=1 exactly one.
func TestIncrementalParallelWorkerFanOut(t *testing.T) {
	record := func(workers int) map[int]bool {
		g := core.NewGraph(2)
		rec, err := core.NewRecorder(g, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			rec.OnRead(uint64(i % 64))
			rec.OnWrite(uint64((i + 7) % 64))
			if _, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
				t.Fatal(err)
			}
		}
		inc := core.NewIncrementalAnalyzer(g)
		inc.SetFoldWorkers(workers)
		seen := map[int]bool{}
		var mu sync.Mutex
		inc.SetWorkerHook(func(worker int) {
			mu.Lock()
			seen[worker] = true
			mu.Unlock()
		})
		inc.Fold()
		return seen
	}
	if seen := record(1); len(seen) != 1 || !seen[0] {
		t.Fatalf("FoldWorkers=1: hook saw workers %v, want exactly {0}", seen)
	}
	if seen := record(4); len(seen) < 2 {
		t.Fatalf("FoldWorkers=4 over 300 new vertices: hook saw workers %v, want >1", seen)
	}
}

// TestIncrementalParallelFoldRacedQueries races concurrent recorders,
// parallel folds, and mixed queries against published epochs (run under
// -race in CI): every published Analysis must stay internally
// consistent while recording continues, and after quiesce the final
// parallel fold must export byte-identically to both the serial
// reference fold and the batch Analyze.
func TestIncrementalParallelFoldRacedQueries(t *testing.T) {
	const threads = 4
	g := core.NewGraph(threads)
	lock := g.NewSyncObject("l", false)
	inc := core.NewIncrementalAnalyzer(g)
	inc.SetFoldWorkers(4)

	var published atomic.Pointer[core.Analysis]
	published.Store(inc.Fold())

	var wg sync.WaitGroup
	for slot := 0; slot < threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			rec, err := core.NewRecorder(g, slot, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 250; i++ {
				rec.OnRead(uint64((slot*31 + i) % 64))
				rec.OnWrite(uint64((slot*17 + i) % 64))
				sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}, 0)
				if err != nil {
					t.Error(err)
					return
				}
				rec.Release(lock, sc)
				rec.Acquire(lock)
			}
			if _, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
				t.Error(err)
			}
		}(slot)
	}

	recorded := make(chan struct{})
	go func() { wg.Wait(); close(recorded) }()

	// Query workers hammer whichever epoch is newest with a mix of
	// traversals while folds keep publishing fresher ones.
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < 3; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := published.Load()
				if a.NumVertices() == 0 {
					runtime.Gosched()
					continue
				}
				subs := a.Subs()
				target := subs[(q*13+i)%len(subs)].ID
				switch (q + i) % 3 {
				case 0:
					a.Slice(target)
				case 1:
					a.TaintedBy(target)
				case 2:
					a.PageLineage(uint64(i%64), target)
				}
			}
		}(q)
	}

	for alive := true; alive; {
		select {
		case <-recorded:
			alive = false
		default:
		}
		a := inc.Fold()
		if err := a.Verify(); err != nil {
			t.Fatalf("epoch %d invalid during recording: %v", a.Epoch(), err)
		}
		published.Store(a)
	}
	close(stop)
	qwg.Wait()

	final := exportBytes(t, inc.Fold())
	ref := core.NewReferenceAnalyzer(g)
	if want := exportBytes(t, ref.Fold()); !bytes.Equal(final, want) {
		t.Fatal("final parallel fold diverges from serial reference after quiesce")
	}
	if want := exportBytes(t, g.Analyze()); !bytes.Equal(final, want) {
		t.Fatal("final parallel fold diverges from batch after quiesce")
	}
}

// TestIncrementalDeferredAcquirerManyEpochs pins the deferred sync-edge
// backlog across many epochs: seven threads acquire mutexes and stay
// open while thread 0 keeps sealing epochs (the backlog is re-examined
// and carried forward every fold), then the acquirers seal one per
// epoch, draining the backlog from the middle of its sorted order. The
// epoch export must match the batch analysis at every step — the
// regression guard for the backlog merge that once re-sorted (and could
// mis-order) the carried edges each fold.
func TestIncrementalDeferredAcquirerManyEpochs(t *testing.T) {
	const threads = 8
	g := core.NewGraph(threads)
	recs := make([]*core.Recorder, threads)
	for i := range recs {
		rec, err := core.NewRecorder(g, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
	}
	inc := core.NewIncrementalAnalyzer(g)
	inc.SetFoldWorkers(4)

	check := func(stage string, epoch int) {
		a := inc.Fold()
		if got, want := exportBytes(t, a), exportBytes(t, g.Analyze()); !bytes.Equal(got, want) {
			t.Fatalf("%s epoch %d: fold diverges from batch with deferred backlog", stage, epoch)
		}
	}

	// Thread 0 releases one mutex per peer; each peer acquires it and
	// leaves its first sub-computation open, parking one deferred edge.
	own := g.NewSyncObject("own", false)
	for k := 1; k < threads; k++ {
		m := g.NewSyncObject("m"+string(rune('0'+k)), false)
		sc, err := recs[0].EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: m.Ref()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs[0].Release(m, sc)
		recs[k].Acquire(m)
	}

	// Epochs with the backlog parked: thread 0 keeps sealing (its own
	// release/acquire chain adds fresh ready edges that must merge with
	// the carried backlog, not disturb it).
	for e := 0; e < 8; e++ {
		for i := 0; i < 3; i++ {
			recs[0].OnWrite(uint64(e*8 + i))
			sc, err := recs[0].EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: own.Ref()}, 0)
			if err != nil {
				t.Fatal(err)
			}
			recs[0].Release(own, sc)
			recs[0].Acquire(own)
		}
		check("parked", e)
	}

	// Drain: one acquirer seals per epoch, releasing one deferred edge
	// from the middle of the sorted backlog each fold.
	for k := 1; k < threads; k++ {
		if _, err := recs[k].EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
			t.Fatal(err)
		}
		check("drain", k)
	}
	if _, err := recs[0].EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}

	a := inc.Fold()
	syncs := 0
	for _, e := range a.Edges() {
		if e.Kind == core.EdgeSync && e.To.Alpha == 0 && e.To.Thread != 0 {
			syncs++
		}
	}
	if syncs != threads-1 {
		t.Fatalf("drained backlog produced %d acquirer edges, want %d", syncs, threads-1)
	}
	if got, want := exportBytes(t, a), exportBytes(t, g.Analyze()); !bytes.Equal(got, want) {
		t.Fatal("final fold diverges from batch")
	}
}
