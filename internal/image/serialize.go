package image

// Image serialization: a line-oriented sidecar format so post-hoc
// decoders (cmd/pt-dump -events) can reconstruct control flow from a
// perf session file alone. The real toolchain reads the program binary
// for this (§V-B: "access to executables and linked libraries"); the
// synthetic image stands in for the binary, so it travels as a sidecar
// next to the perfdata file.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// serializeHeader identifies and versions the sidecar format.
const serializeHeader = "# inspector-image/v1"

// WriteTo serializes the image as one "id<TAB>kind<TAB>label" line per
// site, in ID order, implementing io.WriterTo.
func (im *Image) WriteTo(w io.Writer) (int64, error) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintln(bw, serializeHeader)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, s := range im.sites {
		n, err := fmt.Fprintf(bw, "%d\t%d\t%s\n", s.ID, s.Kind, s.Label)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadImage reconstructs an image serialized by WriteTo. Site IDs are
// dense and sequential, so reconstruction preserves every address.
func ReadImage(r io.Reader) (*Image, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("image: empty sidecar")
	}
	if got := strings.TrimSpace(sc.Text()); got != serializeHeader {
		return nil, fmt.Errorf("image: bad sidecar header %q", got)
	}
	im := New()
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("image: sidecar line %d: want id\\tkind\\tlabel", line)
		}
		id, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("image: sidecar line %d: bad id: %w", line, err)
		}
		kind, err := strconv.ParseUint(parts[1], 10, 8)
		if err != nil || (SiteKind(kind) != Conditional && SiteKind(kind) != Indirect) {
			return nil, fmt.Errorf("image: sidecar line %d: bad kind %q", line, parts[1])
		}
		s, err := im.Site(parts[2], SiteKind(kind))
		if err != nil {
			return nil, fmt.Errorf("image: sidecar line %d: %w", line, err)
		}
		if uint64(s.ID) != id {
			return nil, fmt.Errorf("image: sidecar line %d: id %d out of sequence (got %d)", line, id, s.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("image: read sidecar: %w", err)
	}
	return im, nil
}
