// Package image models the program binary image that Intel PT decoding
// requires. A hardware PT decoder cannot interpret the trace alone: TNT
// packets carry only taken/not-taken bits, so the decoder must walk the
// program's control-flow graph (the executable and its libraries) to know
// *which* branch each bit belongs to. The paper (§V-B) tracks mmap events
// for exactly this reason: "to map the trace onto binaries, it needs
// access to executables and linked libraries of the application".
//
// In this reproduction, workloads execute through a virtual CPU that
// announces labelled branch sites. The Image assigns each label a stable
// synthetic instruction address and records the control-flow edges the
// execution reveals. The PT decoder (internal/pt) then reconstructs the
// exact executed path from the packet stream plus this image, never from
// side channels: any successor the CFG cannot predict is carried in the
// trace itself as a TIP/FUP packet, just as real PT carries indirect
// branch targets.
package image

import (
	"fmt"
	"sort"
	"sync"
)

// CodeBase is the synthetic text-segment base address. Branch sites are
// laid out every 16 bytes above it, emulating instruction spacing.
const CodeBase = 0x40_0000

// SiteSpacing is the synthetic distance between consecutive branch sites.
const SiteSpacing = 16

// SiteID densely identifies a branch site within one image.
type SiteID uint32

// NoSite is the sentinel for "no such site".
const NoSite SiteID = ^SiteID(0)

// SiteKind classifies a branch site the way PT packet generation does:
// conditional branches produce TNT bits; indirect transfers (indirect
// jumps, calls through pointers, returns) produce TIP packets.
type SiteKind uint8

// Site kinds.
const (
	// Conditional sites produce one TNT bit per execution.
	Conditional SiteKind = iota + 1
	// Indirect sites produce a TIP packet carrying the target.
	Indirect
)

// String names the kind.
func (k SiteKind) String() string {
	switch k {
	case Conditional:
		return "cond"
	case Indirect:
		return "indirect"
	default:
		return "unknown"
	}
}

// Site is one branch instruction in the synthetic program.
type Site struct {
	ID    SiteID
	Label string
	Kind  SiteKind
}

// Addr returns the site's synthetic instruction address.
func (s *Site) Addr() uint64 {
	return CodeBase + uint64(s.ID)*SiteSpacing
}

// Image is the synthetic binary image: the set of branch sites and the
// address mapping a PT decoder needs. It is shared by all threads of a
// run and safe for concurrent use.
type Image struct {
	mu      sync.RWMutex
	sites   []*Site
	byLabel map[string]SiteID
}

// New returns an empty image.
func New() *Image {
	return &Image{byLabel: make(map[string]SiteID)}
}

// Site returns the site for label, registering it on first use. Kind must
// be consistent across registrations of the same label.
func (im *Image) Site(label string, kind SiteKind) (*Site, error) {
	im.mu.RLock()
	if id, ok := im.byLabel[label]; ok {
		s := im.sites[id]
		im.mu.RUnlock()
		if s.Kind != kind {
			return nil, fmt.Errorf("image: site %q registered as %v, requested %v", label, s.Kind, kind)
		}
		return s, nil
	}
	im.mu.RUnlock()

	im.mu.Lock()
	defer im.mu.Unlock()
	if id, ok := im.byLabel[label]; ok {
		s := im.sites[id]
		if s.Kind != kind {
			return nil, fmt.Errorf("image: site %q registered as %v, requested %v", label, s.Kind, kind)
		}
		return s, nil
	}
	s := &Site{ID: SiteID(len(im.sites)), Label: label, Kind: kind}
	im.sites = append(im.sites, s)
	im.byLabel[label] = s.ID
	return s, nil
}

// MustSite is Site but panics on kind conflicts; for use at workload setup
// where a conflict is a programming error in the workload itself.
func (im *Image) MustSite(label string, kind SiteKind) *Site {
	s, err := im.Site(label, kind)
	if err != nil {
		panic(err)
	}
	return s
}

// ByID returns the site with the given ID, or nil.
func (im *Image) ByID(id SiteID) *Site {
	im.mu.RLock()
	defer im.mu.RUnlock()
	if int(id) >= len(im.sites) {
		return nil
	}
	return im.sites[id]
}

// ByAddr returns the site whose synthetic address is addr, or nil.
func (im *Image) ByAddr(addr uint64) *Site {
	if addr < CodeBase || (addr-CodeBase)%SiteSpacing != 0 {
		return nil
	}
	return im.ByID(SiteID((addr - CodeBase) / SiteSpacing))
}

// ByLabel returns the site registered under label, or nil.
func (im *Image) ByLabel(label string) *Site {
	im.mu.RLock()
	defer im.mu.RUnlock()
	if id, ok := im.byLabel[label]; ok {
		return im.sites[id]
	}
	return nil
}

// Len returns the number of registered sites.
func (im *Image) Len() int {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return len(im.sites)
}

// Labels returns all registered labels in sorted order.
func (im *Image) Labels() []string {
	im.mu.RLock()
	out := make([]string, 0, len(im.byLabel))
	for l := range im.byLabel {
		out = append(out, l)
	}
	im.mu.RUnlock()
	sort.Strings(out)
	return out
}

// EdgeKey identifies one outcome of a conditional site for CFG-edge
// tables: (site, taken) -> successor.
type EdgeKey struct {
	Site  SiteID
	Taken bool
}

// EdgeTable is a per-trace control-flow-edge cache. Both the PT encoder
// and decoder maintain one incrementally and identically, which is what
// makes the compressed trace self-describing: a successor present in the
// table is elided from the trace (a bare TNT bit suffices); a missing or
// deviating successor is carried in-band by a FUP packet.
type EdgeTable map[EdgeKey]SiteID

// Lookup returns the recorded successor, if any.
func (t EdgeTable) Lookup(site SiteID, taken bool) (SiteID, bool) {
	id, ok := t[EdgeKey{Site: site, Taken: taken}]
	return id, ok
}

// Record stores successor for (site, taken) and reports whether the entry
// changed (was absent or held a different successor).
func (t EdgeTable) Record(site SiteID, taken bool, succ SiteID) bool {
	k := EdgeKey{Site: site, Taken: taken}
	old, ok := t[k]
	if ok && old == succ {
		return false
	}
	t[k] = succ
	return true
}
