// Package image models the program binary image that Intel PT decoding
// requires. A hardware PT decoder cannot interpret the trace alone: TNT
// packets carry only taken/not-taken bits, so the decoder must walk the
// program's control-flow graph (the executable and its libraries) to know
// *which* branch each bit belongs to. The paper (§V-B) tracks mmap events
// for exactly this reason: "to map the trace onto binaries, it needs
// access to executables and linked libraries of the application".
//
// In this reproduction, workloads execute through a virtual CPU that
// announces labelled branch sites. The Image assigns each label a stable
// synthetic instruction address and records the control-flow edges the
// execution reveals. The PT decoder (internal/pt) then reconstructs the
// exact executed path from the packet stream plus this image, never from
// side channels: any successor the CFG cannot predict is carried in the
// trace itself as a TIP/FUP packet, just as real PT carries indirect
// branch targets.
package image

import (
	"fmt"
	"sort"
	"sync"

	"github.com/repro/inspector/internal/intern"
)

// CodeBase is the synthetic text-segment base address. Branch sites are
// laid out every 16 bytes above it, emulating instruction spacing.
const CodeBase = 0x40_0000

// SiteSpacing is the synthetic distance between consecutive branch sites.
const SiteSpacing = 16

// SiteID densely identifies a branch site within one image.
type SiteID uint32

// NoSite is the sentinel for "no such site".
const NoSite SiteID = ^SiteID(0)

// SiteKind classifies a branch site the way PT packet generation does:
// conditional branches produce TNT bits; indirect transfers (indirect
// jumps, calls through pointers, returns) produce TIP packets.
type SiteKind uint8

// Site kinds.
const (
	// Conditional sites produce one TNT bit per execution.
	Conditional SiteKind = iota + 1
	// Indirect sites produce a TIP packet carrying the target.
	Indirect
)

// String names the kind.
func (k SiteKind) String() string {
	switch k {
	case Conditional:
		return "cond"
	case Indirect:
		return "indirect"
	default:
		return "unknown"
	}
}

// Site is one branch instruction in the synthetic program.
type Site struct {
	ID    SiteID
	Label string
	Kind  SiteKind
}

// Addr returns the site's synthetic instruction address.
func (s *Site) Addr() uint64 {
	return CodeBase + uint64(s.ID)*SiteSpacing
}

// Image is the synthetic binary image: the set of branch sites and the
// address mapping a PT decoder needs. It is shared by all threads of a
// run and safe for concurrent use.
//
// The label table is an intern.Interner — the same string-intern machinery
// that backs the CPG's symbol table — whose dense ids double as SiteIDs.
// The image deliberately keeps its *own* interner rather than sharing the
// graph's instance: SiteIDs feed the synthetic address scheme (Site.Addr)
// and therefore the trace bytes, so they must be assigned only by site
// registration order, never perturbed by sync-object names the graph
// interns alongside.
type Image struct {
	mu       sync.RWMutex
	interner *intern.Interner
	sites    []*Site
}

// New returns an empty image.
func New() *Image {
	return &Image{interner: intern.New()}
}

// Site returns the site for label, registering it on first use. Kind must
// be consistent across registrations of the same label.
func (im *Image) Site(label string, kind SiteKind) (*Site, error) {
	if id, ok := im.interner.Find(label); ok {
		im.mu.RLock()
		s := im.sites[id]
		im.mu.RUnlock()
		if s.Kind != kind {
			return nil, fmt.Errorf("image: site %q registered as %v, requested %v", label, s.Kind, kind)
		}
		return s, nil
	}

	im.mu.Lock()
	defer im.mu.Unlock()
	if id, ok := im.interner.Find(label); ok {
		s := im.sites[id]
		if s.Kind != kind {
			return nil, fmt.Errorf("image: site %q registered as %v, requested %v", label, s.Kind, kind)
		}
		return s, nil
	}
	id := im.interner.Intern(label)
	if int(id) != len(im.sites) {
		// The interner is private to the image, so ids track the site
		// slice exactly; a gap means a bug, not a recoverable state.
		panic(fmt.Sprintf("image: interner id %d does not match site count %d", id, len(im.sites)))
	}
	s := &Site{ID: SiteID(id), Label: label, Kind: kind}
	im.sites = append(im.sites, s)
	return s, nil
}

// MustSite is Site but panics on kind conflicts; for use at workload setup
// where a conflict is a programming error in the workload itself.
func (im *Image) MustSite(label string, kind SiteKind) *Site {
	s, err := im.Site(label, kind)
	if err != nil {
		panic(err)
	}
	return s
}

// ByID returns the site with the given ID, or nil.
func (im *Image) ByID(id SiteID) *Site {
	im.mu.RLock()
	defer im.mu.RUnlock()
	if int(id) >= len(im.sites) {
		return nil
	}
	return im.sites[id]
}

// AddrToID maps a synthetic instruction address to its SiteID. It is
// the pure inverse of Site.Addr, shared by every address resolver (the
// image's ByAddr, the PT decoder's lock-free site cache) so the address
// scheme lives in one place.
func AddrToID(addr uint64) (SiteID, bool) {
	if addr < CodeBase || (addr-CodeBase)%SiteSpacing != 0 {
		return NoSite, false
	}
	return SiteID((addr - CodeBase) / SiteSpacing), true
}

// ByAddr returns the site whose synthetic address is addr, or nil.
func (im *Image) ByAddr(addr uint64) *Site {
	id, ok := AddrToID(addr)
	if !ok {
		return nil
	}
	return im.ByID(id)
}

// ByLabel returns the site registered under label, or nil.
func (im *Image) ByLabel(label string) *Site {
	id, ok := im.interner.Find(label)
	if !ok {
		return nil
	}
	im.mu.RLock()
	defer im.mu.RUnlock()
	return im.sites[id]
}

// Len returns the number of registered sites.
func (im *Image) Len() int {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return len(im.sites)
}

// Labels returns all registered labels in sorted order.
func (im *Image) Labels() []string {
	out := im.interner.Snapshot()
	sort.Strings(out)
	return out
}

// EdgeKey identifies one outcome of a conditional site for CFG-edge
// tables: (site, taken) -> successor.
type EdgeKey struct {
	Site  SiteID
	Taken bool
}

// EdgeMap is the reference control-flow-edge table: a plain map from
// (site, taken) to successor. The hot paths use the dense EdgeTable
// below; the map form is retained as the executable specification, and
// property tests (internal/pt, this package) assert the two never
// diverge. A checked EdgeTable carries an EdgeMap shadow that
// cross-validates every operation.
type EdgeMap map[EdgeKey]SiteID

// Lookup returns the recorded successor, if any.
func (m EdgeMap) Lookup(site SiteID, taken bool) (SiteID, bool) {
	id, ok := m[EdgeKey{Site: site, Taken: taken}]
	return id, ok
}

// Record stores successor for (site, taken) and reports whether the entry
// changed (was absent or held a different successor).
func (m EdgeMap) Record(site SiteID, taken bool, succ SiteID) bool {
	k := EdgeKey{Site: site, Taken: taken}
	old, ok := m[k]
	if ok && old == succ {
		return false
	}
	m[k] = succ
	return true
}

// EdgeTable is a per-trace control-flow-edge cache. Both the PT encoder
// and decoder maintain one incrementally and identically, which is what
// makes the compressed trace self-describing: a successor present in the
// table is elided from the trace (a bare TNT bit suffices); a missing or
// deviating successor is carried in-band by a FUP packet.
//
// Site IDs are dense (the Image allocates them sequentially), so the
// table is a flat slice indexed by SiteID<<1|taken with NoSite marking
// absent entries — every per-branch lookup is one bounds check and one
// load, no hashing. The map-based EdgeMap remains the reference
// implementation.
type EdgeTable struct {
	succ []SiteID
	// ref, when non-nil, shadows every operation through the reference
	// EdgeMap and panics on divergence. Property tests enable it; the
	// production constructors leave it nil.
	ref EdgeMap
}

// NewEdgeTable creates an empty dense edge table.
func NewEdgeTable() *EdgeTable { return &EdgeTable{} }

// NewCheckedEdgeTable creates an edge table that cross-validates every
// Lookup/Record against the reference EdgeMap, for property tests.
func NewCheckedEdgeTable() *EdgeTable { return &EdgeTable{ref: make(EdgeMap)} }

// edgeIndex flattens (site, taken) into the dense index.
func edgeIndex(site SiteID, taken bool) int {
	idx := int(site) << 1
	if taken {
		idx |= 1
	}
	return idx
}

// Lookup returns the recorded successor, if any.
func (t *EdgeTable) Lookup(site SiteID, taken bool) (SiteID, bool) {
	var id SiteID
	ok := false
	if idx := edgeIndex(site, taken); idx < len(t.succ) && t.succ[idx] != NoSite {
		id, ok = t.succ[idx], true
	}
	if t.ref != nil {
		refID, refOK := t.ref.Lookup(site, taken)
		if refID != id || refOK != ok {
			panic(fmt.Sprintf("image: EdgeTable.Lookup(%d,%v) = (%d,%v), reference says (%d,%v)",
				site, taken, id, ok, refID, refOK))
		}
	}
	return id, ok
}

// Record stores successor for (site, taken) and reports whether the entry
// changed (was absent or held a different successor).
func (t *EdgeTable) Record(site SiteID, taken bool, succ SiteID) bool {
	idx := edgeIndex(site, taken)
	for len(t.succ) <= idx {
		t.succ = append(t.succ, NoSite)
	}
	changed := t.succ[idx] != succ
	t.succ[idx] = succ
	if t.ref != nil {
		if refChanged := t.ref.Record(site, taken, succ); refChanged != changed {
			panic(fmt.Sprintf("image: EdgeTable.Record(%d,%v,%d) changed=%v, reference says %v",
				site, taken, succ, changed, refChanged))
		}
	}
	return changed
}

// Len returns the number of recorded edges.
func (t *EdgeTable) Len() int {
	n := 0
	for _, s := range t.succ {
		if s != NoSite {
			n++
		}
	}
	return n
}
