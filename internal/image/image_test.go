package image

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSiteRegistrationIdempotent(t *testing.T) {
	im := New()
	a, err := im.Site("loop.head", Conditional)
	if err != nil {
		t.Fatal(err)
	}
	b, err := im.Site("loop.head", Conditional)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same label returned different sites")
	}
	if im.Len() != 1 {
		t.Errorf("Len = %d, want 1", im.Len())
	}
}

func TestSiteKindConflict(t *testing.T) {
	im := New()
	if _, err := im.Site("x", Conditional); err != nil {
		t.Fatal(err)
	}
	if _, err := im.Site("x", Indirect); err == nil {
		t.Error("kind conflict not detected")
	}
}

func TestMustSitePanicsOnConflict(t *testing.T) {
	im := New()
	im.MustSite("x", Conditional)
	defer func() {
		if recover() == nil {
			t.Error("MustSite did not panic on conflict")
		}
	}()
	im.MustSite("x", Indirect)
}

func TestAddressMapping(t *testing.T) {
	im := New()
	s1 := im.MustSite("a", Conditional)
	s2 := im.MustSite("b", Indirect)
	if s1.Addr() != CodeBase {
		t.Errorf("first site addr = %#x, want %#x", s1.Addr(), uint64(CodeBase))
	}
	if s2.Addr() != CodeBase+SiteSpacing {
		t.Errorf("second site addr = %#x", s2.Addr())
	}
	if got := im.ByAddr(s2.Addr()); got != s2 {
		t.Errorf("ByAddr(%#x) = %v, want s2", s2.Addr(), got)
	}
	if got := im.ByAddr(s2.Addr() + 1); got != nil {
		t.Error("unaligned address resolved to a site")
	}
	if got := im.ByAddr(0x100); got != nil {
		t.Error("address below code base resolved")
	}
	if got := im.ByAddr(CodeBase + 100*SiteSpacing); got != nil {
		t.Error("address past last site resolved")
	}
}

func TestByIDAndLabel(t *testing.T) {
	im := New()
	s := im.MustSite("kmeans.assign", Conditional)
	if im.ByID(s.ID) != s {
		t.Error("ByID mismatch")
	}
	if im.ByID(999) != nil {
		t.Error("ByID out of range should be nil")
	}
	if im.ByLabel("kmeans.assign") != s {
		t.Error("ByLabel mismatch")
	}
	if im.ByLabel("nope") != nil {
		t.Error("unknown label should be nil")
	}
}

func TestLabelsSorted(t *testing.T) {
	im := New()
	im.MustSite("z", Conditional)
	im.MustSite("a", Conditional)
	im.MustSite("m", Indirect)
	got := im.Labels()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Labels[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestConcurrentRegistration(t *testing.T) {
	im := New()
	var wg sync.WaitGroup
	const threads = 8
	const perThread = 100
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perThread; j++ {
				// All threads register the same labels.
				im.MustSite(fmt.Sprintf("site%02d", j%20), Conditional)
			}
		}()
	}
	wg.Wait()
	if im.Len() != 20 {
		t.Errorf("Len = %d, want 20 (duplicates must dedupe)", im.Len())
	}
	// IDs must be dense and addresses unique.
	seen := make(map[uint64]bool)
	for i := 0; i < im.Len(); i++ {
		s := im.ByID(SiteID(i))
		if s == nil {
			t.Fatalf("missing site %d", i)
		}
		if seen[s.Addr()] {
			t.Errorf("duplicate address %#x", s.Addr())
		}
		seen[s.Addr()] = true
	}
}

func TestEdgeTable(t *testing.T) {
	// Checked mode shadows the dense slice with the reference EdgeMap
	// and panics on any divergence, so this exercises both.
	tbl := NewCheckedEdgeTable()
	if _, ok := tbl.Lookup(1, true); ok {
		t.Error("empty table lookup succeeded")
	}
	if !tbl.Record(1, true, 2) {
		t.Error("first record should report change")
	}
	if tbl.Record(1, true, 2) {
		t.Error("identical record should not report change")
	}
	if !tbl.Record(1, true, 3) {
		t.Error("deviating record should report change")
	}
	got, ok := tbl.Lookup(1, true)
	if !ok || got != 3 {
		t.Errorf("Lookup = %d,%v; want 3,true", got, ok)
	}
	// taken and not-taken are independent edges.
	tbl.Record(1, false, 9)
	gotT, _ := tbl.Lookup(1, true)
	gotF, _ := tbl.Lookup(1, false)
	if gotT != 3 || gotF != 9 {
		t.Errorf("edges = %d/%d, want 3/9", gotT, gotF)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}
}

// TestQuickEdgeTableMatchesMap drives random operation sequences through
// the dense table and the reference map independently and requires
// identical observable behaviour.
func TestQuickEdgeTableMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dense := NewEdgeTable()
		ref := make(EdgeMap)
		for i := 0; i < 200; i++ {
			site := SiteID(r.Intn(64))
			taken := r.Intn(2) == 1
			if r.Intn(3) == 0 {
				succ := SiteID(r.Intn(64))
				if dense.Record(site, taken, succ) != ref.Record(site, taken, succ) {
					return false
				}
			} else {
				dID, dOK := dense.Lookup(site, taken)
				rID, rOK := ref.Lookup(site, taken)
				if dOK != rOK || (dOK && dID != rID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSiteKindString(t *testing.T) {
	if Conditional.String() != "cond" || Indirect.String() != "indirect" {
		t.Error("kind strings wrong")
	}
	if SiteKind(0).String() != "unknown" {
		t.Error("zero kind should be unknown")
	}
}
