package image

import (
	"bytes"
	"strings"
	"testing"
)

func TestImageSerializeRoundTrip(t *testing.T) {
	im := New()
	a := im.MustSite("loop.head", Conditional)
	b := im.MustSite("dispatch", Indirect)
	c := im.MustSite("odd label with spaces", Conditional)

	var buf bytes.Buffer
	if _, err := im.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != im.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), im.Len())
	}
	for _, want := range []*Site{a, b, c} {
		s := got.ByLabel(want.Label)
		if s == nil || s.ID != want.ID || s.Kind != want.Kind || s.Addr() != want.Addr() {
			t.Errorf("site %q = %+v, want %+v", want.Label, s, want)
		}
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a header\n",
		"# inspector-image/v1\nxyz\n",
		"# inspector-image/v1\n5\t1\tskipped-id\n",
		"# inspector-image/v1\n0\t9\tbad-kind\n",
	} {
		if _, err := ReadImage(strings.NewReader(in)); err == nil {
			t.Errorf("ReadImage(%q) accepted", in)
		}
	}
}
