package pt_test

// Benchmark suite for the branch-trace pipeline hot loop. The scenario
// bodies live in internal/pt/ptbench — shared verbatim with
// `inspector-bench -experiment pt` — so `go test -bench` and the
// committed BENCH_pt.json snapshot (see ROADMAP.md for the regeneration
// convention) always measure the same thing. This file only maps the
// shared cases onto go-test benchmark names.

import (
	"strings"
	"testing"

	"github.com/repro/inspector/internal/pt/ptbench"
)

// benchCase finds the shared scenario by its snapshot row name.
func benchCase(b *testing.B, name string) ptbench.Case {
	b.Helper()
	for _, c := range ptbench.Cases() {
		if c.Name == name {
			return c
		}
	}
	b.Fatalf("no shared scenario %q", name)
	return ptbench.Case{}
}

// BenchmarkEncode measures the per-branch encode cost in the steady
// state where every outcome resolves to a known CFG edge (the pure-TNT
// path every hot loop iteration takes), plus the indirect TIP path.
func BenchmarkEncode(b *testing.B) {
	for _, c := range ptbench.Cases() {
		if sub, ok := strings.CutPrefix(c.Name, "Encode/"); ok {
			b.Run(sub, c.Fn)
		}
	}
}

// BenchmarkDecode measures whole-stream decode throughput over a
// pre-encoded trace of predominantly-TNT branches.
func BenchmarkDecode(b *testing.B) {
	c := benchCase(b, "Decode")
	b.SetBytes(c.Bytes)
	c.Fn(b)
}

// BenchmarkRoundTrip measures the steady-state cost of one branch
// through the full pipeline: encode into the sink, decode the chunk
// back into an event — the per-branch number the acceptance gate
// tracks.
func BenchmarkRoundTrip(b *testing.B) {
	benchCase(b, "RoundTrip").Fn(b)
}
