package pt

// Round-trip property tests for the packed-bit / dense-edge fast path:
// random branch streams, PSB periods {256, 4096}, optional injected ring
// loss. Every stream is decoded twice — once through the production
// dense representations, once with the checked edge table that shadows
// every operation through the reference EdgeMap and panics on divergence
// — and the two event sequences must match exactly (modulo nothing: the
// resync gaps themselves must agree too, since both decoders walk the
// same bytes).

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/repro/inspector/internal/image"
)

// randomEvents generates a random branch stream over a small site set.
func randomEvents(r *rand.Rand) []traceEvent {
	n := 50 + r.Intn(1500)
	nsites := 2 + r.Intn(8)
	events := make([]traceEvent, 0, n)
	for i := 0; i < n; i++ {
		if r.Intn(6) == 0 {
			events = append(events, traceEvent{
				label:    fmt.Sprintf("ind%d", r.Intn(nsites)),
				indirect: true,
			})
		} else {
			events = append(events, traceEvent{
				label: fmt.Sprintf("c%d", r.Intn(nsites)),
				taken: r.Intn(2) == 1,
			})
		}
	}
	return events
}

// encodeLossy drives events through a Tracer into a sink that drops
// dropLen bytes once the trace reaches dropFrom (0 length = lossless),
// under the given PSB period. checked selects the cross-validating edge
// table on the encoder side.
func encodeLossy(t testing.TB, im *image.Image, events []traceEvent, psbPeriod, dropFrom, dropLen int, checked bool) []byte {
	t.Helper()
	sink := newMemSink()
	if dropLen > 0 {
		sink.dropFrom = dropFrom
		sink.dropLen = dropLen
	}
	enc := NewEncoder(sink, EncoderOptions{PSBPeriod: psbPeriod})
	if checked {
		enc.edges = image.NewCheckedEdgeTable()
	}
	tr, err := NewTracer(enc, im, "__exit__")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.indirect {
			tr.OnIndirect(im.MustSite(ev.label, image.Indirect))
		} else {
			tr.OnCond(im.MustSite(ev.label, image.Conditional), ev.taken)
		}
	}
	tr.Close()
	return sink.data
}

// decodeOutcome flattens one decode run — events and errors in arrival
// order — so two runs can be compared verbatim.
type decodeOutcome struct {
	lines []string
	gaps  int
}

// decodeAllOutcomes drains the decoder, recording every event and every
// recoverable error until EOF or the decoder stops making progress.
func decodeAllOutcomes(im *image.Image, data []byte, checked bool) decodeOutcome {
	d := NewDecoder(im, data)
	if checked {
		d.edges = image.NewCheckedEdgeTable()
	}
	var out decodeOutcome
	errStreak := 0
	for {
		ev, err := d.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			out.lines = append(out.lines, "error: "+err.Error())
			errStreak++
			if errStreak > len(data)+16 {
				out.lines = append(out.lines, "error: no progress")
				break
			}
			continue
		}
		errStreak = 0
		out.lines = append(out.lines, ev.String())
	}
	out.gaps = d.Gaps
	return out
}

func (a decodeOutcome) equal(b decodeOutcome) bool {
	if a.gaps != b.gaps || len(a.lines) != len(b.lines) {
		return false
	}
	for i := range a.lines {
		if a.lines[i] != b.lines[i] {
			return false
		}
	}
	return true
}

// checkRoundTripProperty runs one (seed, psbPeriod, loss) scenario and
// reports any violation as an error string (empty = ok).
func checkRoundTripProperty(t testing.TB, seed int64, psbPeriod int, withLoss bool) string {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	im := image.New()
	events := randomEvents(r)
	dropFrom, dropLen := 0, 0
	if withLoss {
		dropFrom = 32 + r.Intn(256)
		dropLen = 1 + r.Intn(96)
	}

	// Encoding must be byte-identical whichever edge representation the
	// encoder carries.
	stream := encodeLossy(t, im, events, psbPeriod, dropFrom, dropLen, false)
	streamChecked := encodeLossy(t, im, events, psbPeriod, dropFrom, dropLen, true)
	if string(stream) != string(streamChecked) {
		return "encoder output differs between dense and checked edge tables"
	}

	// Decoding must produce the identical event/error/gap sequence under
	// both representations (the checked run also panics internally if the
	// dense table ever disagrees with the reference map).
	plain := decodeAllOutcomes(im, stream, false)
	checked := decodeAllOutcomes(im, stream, true)
	if !plain.equal(checked) {
		return "decode outcome differs between dense and checked edge tables"
	}

	if !withLoss {
		// Lossless streams must reproduce the ground truth exactly.
		if plain.gaps != 0 {
			return fmt.Sprintf("lossless decode reported %d gaps", plain.gaps)
		}
		if len(plain.lines) != len(events) {
			return fmt.Sprintf("lossless decode produced %d events, want %d", len(plain.lines), len(events))
		}
		for i, want := range events {
			var wantLine string
			if want.indirect {
				target := "__exit__"
				if i+1 < len(events) {
					target = events[i+1].label
				}
				wantLine = want.label + "->" + target
			} else if want.taken {
				wantLine = want.label + ":t"
			} else {
				wantLine = want.label + ":nt"
			}
			if plain.lines[i] != wantLine {
				return fmt.Sprintf("event %d = %q, want %q", i, plain.lines[i], wantLine)
			}
		}
	}
	return ""
}

func TestQuickRoundTripRepresentations(t *testing.T) {
	for _, psb := range []int{256, 4096} {
		for _, withLoss := range []bool{false, true} {
			psb, withLoss := psb, withLoss
			name := fmt.Sprintf("psb%d_loss%v", psb, withLoss)
			t.Run(name, func(t *testing.T) {
				f := func(seed int64) bool {
					if msg := checkRoundTripProperty(t, seed, psb, withLoss); msg != "" {
						t.Log(msg)
						return false
					}
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestTruncatedAtIndirectSiteEOF pins the decoder's behaviour when the
// trace ends while the current site is indirect (e.g. the closing
// TIP.PGD fell victim to a ring overrun): Next must converge to io.EOF
// rather than returning a non-advancing error forever.
func TestTruncatedAtIndirectSiteEOF(t *testing.T) {
	im := image.New()
	events := []traceEvent{
		{label: "c0", taken: true},
		{label: "ind0", indirect: true},
		{label: "c0", taken: false},
		{label: "ind1", indirect: true},
	}
	sink := newMemSink()
	runTrace(t, im, sink, events, EncoderOptions{})
	// Chop the trace mid-stream so it ends with the decoder waiting for
	// a TIP at an indirect site.
	for cut := len(sink.data) - 1; cut > 0; cut-- {
		d := NewDecoder(im, sink.data[:cut])
		for i := 0; ; i++ {
			_, err := d.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if i > len(sink.data)+16 {
				t.Fatalf("cut=%d: decoder never reaches EOF", cut)
			}
		}
	}
}

// FuzzRoundTrip drives the same property from fuzz inputs, so `go test
// -fuzz=FuzzRoundTrip` explores seeds/periods beyond the quick.Check
// sample and the committed corpus replays as regression tests.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(0), false)
	f.Add(int64(42), uint8(1), true)
	f.Add(int64(-7), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, psbSel uint8, withLoss bool) {
		psb := 256
		if psbSel%2 == 1 {
			psb = 4096
		}
		if msg := checkRoundTripProperty(t, seed, psb, withLoss); msg != "" {
			t.Fatal(msg)
		}
	})
}
