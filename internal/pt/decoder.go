package pt

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"github.com/repro/inspector/internal/image"
)

// Event is one reconstructed control-flow transfer.
type Event struct {
	// Site is the branch site that executed.
	Site *image.Site
	// Taken is the outcome for conditional sites.
	Taken bool
	// Target is the destination for indirect sites.
	Target *image.Site
}

// String renders the event for debugging and pt-dump.
func (ev Event) String() string {
	if ev.Site == nil {
		return "<nil>"
	}
	if ev.Site.Kind == image.Conditional {
		tn := "nt"
		if ev.Taken {
			tn = "t"
		}
		return fmt.Sprintf("%s:%s", ev.Site.Label, tn)
	}
	if ev.Target == nil {
		return ev.Site.Label + "->?"
	}
	return ev.Site.Label + "->" + ev.Target.Label
}

// Decoder reconstructs the executed path from one thread's packet stream
// plus the program image, mirroring the Intel Processor Decoder Library
// integration the paper uses through `perf script`. It maintains the same
// incremental edge table as the Encoder, so the compressed stream is
// sufficient: TNT bits resolve through the table, deviations arrive as
// FUPs, indirect targets as TIPs.
//
// The per-branch loop is engineered flat: TNT bits queue in a packed
// word (one shift per bit), the packet at the cursor is decoded at most
// once (peek caches it for the following consume), CFG successors
// resolve through the dense edge table plus a site-pointer cache that
// bypasses the image's lock, and resynchronization scans with
// bytes.IndexByte instead of a byte-at-a-time loop.
type Decoder struct {
	im   *image.Image
	data []byte
	pos  int

	lastIP uint64
	edges  *image.EdgeTable
	// bitq packs undecoded TNT bits, oldest at bit bitn-1 — consuming a
	// bit is a shift, never a slice move. TNT packets are only pulled
	// when the queue is empty, so one packet's payload (≤47 bits)
	// always fits.
	bitq uint64
	bitn int
	// pk caches the packet decoded by peek so the following consume
	// does not decode it a second time.
	pk      Packet
	pkIP    uint64
	pkValid bool
	// sites caches SiteID -> *Site resolutions so the steady-state path
	// never takes the image's lock.
	sites []*image.Site
	cur   *image.Site
	in    bool
	done  bool

	// Gaps counts lost-data regions skipped by PSB resynchronization.
	Gaps int
	// LastTSC is the most recent TSC payload observed.
	LastTSC uint64
}

// ErrDesync reports that the decoder lost CFG state (usually after a trace
// gap) and could not resolve a successor.
var ErrDesync = errors.New("pt: decoder desynchronized")

// NewDecoder creates a decoder over a complete trace buffer.
func NewDecoder(im *image.Image, data []byte) *Decoder {
	return &Decoder{im: im, data: data, edges: image.NewEdgeTable()}
}

// Reset points the decoder at the next chunk of the same logical packet
// stream, keeping all reconstruction state (edge table, last-IP, current
// site, queued TNT bits) — the AUX-ring drain cycle decodes chunk by
// chunk through this without ever materializing the full trace.
func (d *Decoder) Reset(data []byte) {
	d.data = data
	d.pos = 0
	d.done = false
	d.pkValid = false
}

// Pos returns the cursor's byte offset into the current chunk. Streaming
// consumers use it as a progress measure: a decoder returning errors
// without advancing Pos will never advance.
func (d *Decoder) Pos() int { return d.pos }

// peek decodes the packet at the cursor without consuming it. The
// decoded packet is cached; the next consume reuses it.
func (d *Decoder) peek() (Packet, error) {
	if d.pkValid {
		return d.pk, nil
	}
	if d.pos >= len(d.data) {
		return Packet{}, io.ErrUnexpectedEOF
	}
	p, ip, err := DecodePacket(d.data[d.pos:], d.lastIP)
	if err != nil {
		return p, err
	}
	d.pk, d.pkIP, d.pkValid = p, ip, true
	return p, nil
}

// consume advances past the packet at the cursor, updating lastIP. A
// packet already decoded by peek is not decoded again.
func (d *Decoder) consume() (Packet, error) {
	if !d.pkValid {
		if d.pos >= len(d.data) {
			return Packet{}, io.ErrUnexpectedEOF
		}
		p, ip, err := DecodePacket(d.data[d.pos:], d.lastIP)
		if err != nil {
			return Packet{}, err
		}
		d.pk, d.pkIP = p, ip
	}
	p := d.pk
	d.lastIP = d.pkIP
	d.pos += p.Len
	d.pkValid = false
	if p.Type == PktTSC {
		d.LastTSC = p.TSC
	}
	return p, nil
}

// psbPattern is the full 16-byte PSB synchronization sequence.
var psbPattern = func() [psbLen]byte {
	var p [psbLen]byte
	for i := 0; i < psbLen; i += 2 {
		p[i], p[i+1] = opExt, extPSB
	}
	return p
}()

// resync scans forward for the next PSB boundary after data loss, then
// re-anchors from the bundle's FUP. Returns io.EOF if no PSB remains.
func (d *Decoder) resync() error {
	d.Gaps++
	d.bitq, d.bitn = 0, 0
	d.pkValid = false
	// Candidate PSBs start with the escape byte; let bytes.IndexByte
	// (vectorized) skip the stretches in between instead of walking
	// byte-at-a-time.
	for d.pos+psbLen <= len(d.data) {
		i := bytes.IndexByte(d.data[d.pos:len(d.data)-psbLen+1], opExt)
		if i < 0 {
			break
		}
		d.pos += i
		if d.isPSBAt(d.pos) {
			d.lastIP = 0
			return nil
		}
		d.pos++
	}
	d.pos = len(d.data)
	return io.EOF
}

// isPSBAt reports whether a full PSB pattern starts at offset off.
func (d *Decoder) isPSBAt(off int) bool {
	return bytes.Equal(d.data[off:off+psbLen], psbPattern[:])
}

// handlePSBBundle consumes TSC/FUP/PSBEND following a PSB, re-anchoring
// the current site from the FUP.
func (d *Decoder) handlePSBBundle() error {
	for {
		p, err := d.consume()
		if err != nil {
			return err
		}
		switch p.Type {
		case PktTSC, PktPAD:
			// informational
		case PktFUP:
			s := d.siteAt(p.IP)
			if s == nil {
				return fmt.Errorf("%w: PSB FUP to unknown address %#x", ErrDesync, p.IP)
			}
			d.cur = s
			d.in = true
		case PktPSBEND:
			return nil
		default:
			return fmt.Errorf("%w: unexpected %v inside PSB bundle", ErrBadPacket, p.Type)
		}
	}
}

// nextMeaningful consumes packets until one that drives decoding (TNT,
// TIP, TIP.PGE, TIP.PGD, FUP) arrives, transparently processing PAD, PSB
// bundles, and OVF (which forces a resync).
func (d *Decoder) nextMeaningful() (Packet, error) {
	for {
		p, err := d.consume()
		if err != nil {
			if errors.Is(err, ErrBadPacket) {
				if rerr := d.resync(); rerr != nil {
					return Packet{}, rerr
				}
				continue
			}
			return Packet{}, err
		}
		switch p.Type {
		case PktPAD:
			continue
		case PktPSB:
			if err := d.handlePSBBundle(); err != nil {
				return Packet{}, err
			}
			continue
		case PktOVF:
			if err := d.resync(); err != nil {
				return Packet{}, err
			}
			continue
		default:
			return p, nil
		}
	}
}

// nextBit returns the next TNT bit, pulling TNT packets as needed.
// A TIP.PGD encountered while waiting for bits ends the trace.
func (d *Decoder) nextBit() (bool, bool, error) {
	for d.bitn == 0 {
		p, err := d.nextMeaningful()
		if err != nil {
			return false, false, err
		}
		switch p.Type {
		case PktTNT:
			d.bitq, d.bitn = p.TNT, p.TNTLen
		case PktTIPPGD:
			return false, true, nil
		default:
			return false, false, fmt.Errorf("%w: wanted TNT, got %v", ErrDesync, p.Type)
		}
	}
	d.bitn--
	return d.bitq>>uint(d.bitn)&1 == 1, false, nil
}

// siteByID resolves a SiteID through the decoder's lock-free cache,
// falling back to the image on a miss.
func (d *Decoder) siteByID(id image.SiteID) *image.Site {
	if int(id) < len(d.sites) {
		if s := d.sites[id]; s != nil {
			return s
		}
	}
	s := d.im.ByID(id)
	if s == nil {
		return nil
	}
	for len(d.sites) <= int(id) {
		d.sites = append(d.sites, nil)
	}
	d.sites[id] = s
	return s
}

// siteAt resolves an IP to a site through the cache (synthetic addresses
// map to IDs arithmetically), or nil.
func (d *Decoder) siteAt(ip uint64) *image.Site {
	id, ok := image.AddrToID(ip)
	if !ok {
		return nil
	}
	return d.siteByID(id)
}

// siteAtErr is siteAt with the desync error attached.
func (d *Decoder) siteAtErr(ip uint64) (*image.Site, error) {
	s := d.siteAt(ip)
	if s == nil {
		return nil, fmt.Errorf("%w: no site at %#x", ErrDesync, ip)
	}
	return s, nil
}

// Next returns the next reconstructed event, or io.EOF at end of trace.
// On ErrDesync the caller may call Next again: the decoder will have
// resynchronized at the following PSB if one exists.
func (d *Decoder) Next() (Event, error) {
	if d.done {
		return Event{}, io.EOF
	}
	for !d.in {
		p, err := d.nextMeaningful()
		if err != nil {
			if derr := d.maybeResyncAfter(err); derr != nil {
				return Event{}, derr
			}
			return Event{}, err
		}
		if p.Type == PktTIPPGE {
			s, err := d.siteAtErr(p.IP)
			if err != nil {
				return Event{}, err
			}
			d.cur = s
			d.in = true
		}
	}

	switch d.cur.Kind {
	case image.Conditional:
		taken, end, err := d.nextBit()
		if err != nil {
			if derr := d.maybeResyncAfter(err); derr != nil {
				return Event{}, derr
			}
			return Event{}, err
		}
		if end {
			d.done = true
			return Event{}, io.EOF
		}
		ev := Event{Site: d.cur, Taken: taken}
		succ, err := d.condSuccessor(taken)
		if err != nil {
			if derr := d.maybeResyncAfter(err); derr != nil {
				return Event{}, derr
			}
			return Event{}, err
		}
		d.cur = succ
		return ev, nil

	case image.Indirect:
		p, err := d.nextMeaningful()
		if err != nil {
			// Same error discipline as the conditional path: clean
			// truncation at an indirect site ends the trace (io.EOF)
			// instead of returning a non-advancing error forever, and a
			// desync schedules a resync for the next call.
			if derr := d.maybeResyncAfter(err); derr != nil {
				return Event{}, derr
			}
			return Event{}, err
		}
		switch p.Type {
		case PktTIPPGD:
			d.done = true
			return Event{}, io.EOF
		case PktTIP:
			tgt, err := d.siteAtErr(p.IP)
			if err != nil {
				return Event{}, err
			}
			ev := Event{Site: d.cur, Target: tgt}
			d.cur = tgt
			return ev, nil
		default:
			err := fmt.Errorf("%w: wanted TIP at indirect site %s, got %v", ErrDesync, d.cur.Label, p.Type)
			if derr := d.maybeResyncAfter(err); derr != nil {
				return Event{}, derr
			}
			return Event{}, err
		}

	default:
		return Event{}, fmt.Errorf("%w: site %s has unknown kind", ErrBadPacket, d.cur.Label)
	}
}

// condSuccessor resolves the successor of the conditional branch just
// decoded: a FUP immediately following a drained TNT queue binds a new or
// deviating edge; otherwise the edge table must already hold it. The
// peeked packet stays cached, so the FUP probe costs no extra decode
// when the next packet turns out to be a TNT.
func (d *Decoder) condSuccessor(taken bool) (*image.Site, error) {
	if d.bitn == 0 {
		if p, err := d.peek(); err == nil && p.Type == PktFUP {
			if _, err := d.consume(); err != nil {
				return nil, err
			}
			s, err := d.siteAtErr(p.IP)
			if err != nil {
				return nil, err
			}
			d.edges.Record(d.cur.ID, taken, s.ID)
			return s, nil
		}
	}
	id, ok := d.edges.Lookup(d.cur.ID, taken)
	if !ok {
		return nil, fmt.Errorf("%w: no edge for %s taken=%v", ErrDesync, d.cur.Label, taken)
	}
	s := d.siteByID(id)
	if s == nil {
		return nil, fmt.Errorf("%w: edge to unknown site %d", ErrDesync, id)
	}
	return s, nil
}

// maybeResyncAfter converts a desync error into a resynchronization
// attempt: after it returns nil the caller surfaces the original error,
// and the next call to Next resumes at the following PSB.
func (d *Decoder) maybeResyncAfter(err error) error {
	if !errors.Is(err, ErrDesync) {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			d.done = true
			return io.EOF
		}
		if errors.Is(err, ErrTruncated) {
			// A truncated packet can only sit at the buffer's tail
			// (DecodePacket lengths are self-describing), so the chunk
			// is exhausted: surface the error once, then EOF — never
			// the same non-advancing error forever.
			d.done = true
		}
		return nil
	}
	d.in = false
	if rerr := d.resync(); rerr != nil {
		d.done = true
		return nil
	}
	// Re-anchor from the PSB bundle immediately so in/cur are valid.
	if p, perr := d.consume(); perr == nil && p.Type == PktPSB {
		if berr := d.handlePSBBundle(); berr != nil {
			d.done = true
		}
	}
	return nil
}

// DecodeAll drains the decoder, returning all events.
func DecodeAll(im *image.Image, data []byte) ([]Event, error) {
	d := NewDecoder(im, data)
	var out []Event
	for {
		ev, err := d.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}
