package pt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIPCompressionCodes(t *testing.T) {
	tests := []struct {
		name     string
		target   uint64
		lastIP   uint64
		wantCode byte
		wantLen  int
	}{
		{"same ip", 0x400000, 0x400000, 0, 0},
		{"low 16 differ", 0x400010, 0x400000, 1, 2},
		{"low 32 differ", 0x1400010, 0x400000, 2, 4},
		{"low 48 differ", 0x10_0000_0010, 0x400000, 3, 6},
		{"full", 0x8000_0000_0000_0010, 0x400000, 6, 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			code, payload := ipCompress(tt.target, tt.lastIP)
			if code != tt.wantCode || len(payload) != tt.wantLen {
				t.Errorf("code=%d len=%d, want %d/%d", code, len(payload), tt.wantCode, tt.wantLen)
			}
			got := ipDecompress(code, payload, tt.lastIP)
			if got != tt.target {
				t.Errorf("decompress = %#x, want %#x", got, tt.target)
			}
		})
	}
}

func TestQuickIPCompressionRoundTrip(t *testing.T) {
	f := func(target, last uint64) bool {
		code, payload := ipCompress(target, last)
		return ipDecompress(code, payload, last) == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTNTEncodingRoundTrip(t *testing.T) {
	cases := [][]bool{
		{true},
		{false},
		{true, false, true},
		{true, true, true, true, true, true}, // max short
		{false, false, false, false, false, false, false}, // long
		make([]bool, 47), // max long
	}
	for i := range cases[5] {
		cases[5][i] = i%3 == 0
	}
	for _, bits := range cases {
		buf, err := appendTNTBools(nil, bits)
		if err != nil {
			t.Fatalf("appendTNTBools(%v): %v", bits, err)
		}
		p, _, err := DecodePacket(buf, 0)
		if err != nil {
			t.Fatalf("DecodePacket: %v", err)
		}
		if p.Type != PktTNT {
			t.Fatalf("type = %v", p.Type)
		}
		got := p.TNTBits()
		if len(got) != len(bits) {
			t.Fatalf("got %d bits, want %d", len(got), len(bits))
		}
		for j := range bits {
			if got[j] != bits[j] {
				t.Errorf("bit %d = %v, want %v", j, got[j], bits[j])
			}
			if p.TNTBit(j) != bits[j] {
				t.Errorf("TNTBit(%d) = %v, want %v", j, p.TNTBit(j), bits[j])
			}
		}
		if len(bits) <= 6 && len(buf) != 1 {
			t.Errorf("short TNT length = %d, want 1", len(buf))
		}
	}
}

func TestTNTTooManyBits(t *testing.T) {
	if _, err := appendTNTBools(nil, make([]bool, 48)); !errors.Is(err, ErrTooMany) {
		t.Errorf("48 bits: err = %v", err)
	}
}

func TestTNTEmptyIsNoop(t *testing.T) {
	buf, err := appendTNTBools([]byte{0xAA}, nil)
	if err != nil || len(buf) != 1 {
		t.Errorf("empty TNT: buf=%v err=%v", buf, err)
	}
}

func TestQuickTNTRoundTrip(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8%47) + 1
		bits := make([]bool, n)
		var packed uint64
		for i := range bits {
			bits[i] = r.Intn(2) == 1
			packed <<= 1
			if bits[i] {
				packed |= 1
			}
		}
		buf, err := appendTNTBools(nil, bits)
		if err != nil {
			return false
		}
		// The packed form must produce byte-identical wire output.
		buf2, err := appendTNT(nil, packed, n)
		if err != nil || !bytes.Equal(buf, buf2) {
			return false
		}
		p, _, err := DecodePacket(buf, 0)
		if err != nil || p.Type != PktTNT || p.TNTLen != n {
			return false
		}
		for i := range bits {
			if p.TNTBit(i) != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTNTPackedMatchesReference pins the packed extraction against
// the retained []bool reference decoder for every possible payload value.
func TestQuickTNTPackedMatchesReference(t *testing.T) {
	f := func(v uint64) bool {
		v &= 1<<48 - 1 // long TNT payloads carry at most 47 bits + stop
		ref := tntBitsRef(v)
		bits, n := tntUnpack(v)
		if n != len(ref) {
			return false
		}
		p := Packet{Type: PktTNT, TNT: bits, TNTLen: n}
		for i, b := range ref {
			if p.TNTBit(i) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickIPPacketMatchesReference pins the in-place IP packet append
// against the allocating ipCompress reference. Independent random pairs
// would almost never share high bits, so each trial also derives lastIP
// values from the target by perturbing only the bits below each
// compression boundary — every 0/2/4/6/8-byte branch is exercised every
// run.
func TestQuickIPPacketMatchesReference(t *testing.T) {
	check := func(target, last uint64) bool {
		code, payload := ipCompress(target, last)
		want := append([]byte{code<<5 | tipSubTIP}, payload...)
		got, newIP := appendIPPacket(nil, tipSubTIP, target, last)
		return newIP == target && bytes.Equal(got, want)
	}
	f := func(target, perturb uint64) bool {
		for _, last := range []uint64{
			target,                            // code 0: unchanged
			target ^ perturb&0xFFFF,           // code 1: low 16 differ
			target ^ perturb&0xFFFF_FFFF,      // code 2: low 32 differ
			target ^ perturb&0xFFFF_FFFF_FFFF, // code 3: low 48 differ
			perturb,                           // code 6: anything
		} {
			if !check(target, last) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPSBRoundTrip(t *testing.T) {
	buf := appendPSB(nil)
	if len(buf) != psbLen {
		t.Fatalf("PSB length = %d, want %d", len(buf), psbLen)
	}
	p, ip, err := DecodePacket(buf, 0xdead)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != PktPSB || p.Len != psbLen {
		t.Errorf("packet = %+v", p)
	}
	if ip != 0 {
		t.Errorf("PSB must reset lastIP, got %#x", ip)
	}
}

func TestTSCRoundTrip(t *testing.T) {
	buf := appendTSC(nil, 0x123456789ABC)
	p, _, err := DecodePacket(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != PktTSC || p.TSC != 0x123456789ABC {
		t.Errorf("packet = %+v", p)
	}
}

func TestTSCTruncatesTo56Bits(t *testing.T) {
	buf := appendTSC(nil, 0xFF_12345678_9ABCDE)
	p, _, err := DecodePacket(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.TSC != 0x12345678_9ABCDE {
		t.Errorf("TSC = %#x, want 56-bit truncation", p.TSC)
	}
}

func TestTIPFamilyRoundTrip(t *testing.T) {
	subs := []struct {
		sub  byte
		want PacketType
	}{
		{tipSubTIP, PktTIP},
		{tipSubPGE, PktTIPPGE},
		{tipSubPGD, PktTIPPGD},
		{tipSubFUP, PktFUP},
	}
	for _, s := range subs {
		buf, newIP := appendIPPacket(nil, s.sub, 0x400123, 0x400000)
		if newIP != 0x400123 {
			t.Errorf("lastIP after append = %#x", newIP)
		}
		p, ip, err := DecodePacket(buf, 0x400000)
		if err != nil {
			t.Fatalf("%v: %v", s.want, err)
		}
		if p.Type != s.want || p.IP != 0x400123 || ip != 0x400123 {
			t.Errorf("%v: packet=%+v ip=%#x", s.want, p, ip)
		}
	}
}

func TestDecodeSpecials(t *testing.T) {
	// PAD
	p, _, err := DecodePacket([]byte{0x00}, 0)
	if err != nil || p.Type != PktPAD {
		t.Errorf("PAD: %+v %v", p, err)
	}
	// PSBEND
	p, _, err = DecodePacket([]byte{0x02, 0x23}, 0)
	if err != nil || p.Type != PktPSBEND {
		t.Errorf("PSBEND: %+v %v", p, err)
	}
	// OVF
	p, _, err = DecodePacket([]byte{0x02, 0xF3}, 0)
	if err != nil || p.Type != PktOVF {
		t.Errorf("OVF: %+v %v", p, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodePacket(nil, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty: %v", err)
	}
	if _, _, err := DecodePacket([]byte{0x19, 0x01}, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("short TSC: %v", err)
	}
	if _, _, err := DecodePacket([]byte{0x02}, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("lone ext: %v", err)
	}
	if _, _, err := DecodePacket([]byte{0x02, 0x99}, 0); !errors.Is(err, ErrBadPacket) {
		t.Errorf("bad ext: %v", err)
	}
	// TIP wanting 8 payload bytes but only 2 present.
	if _, _, err := DecodePacket([]byte{6<<5 | tipSubTIP, 0x01, 0x02}, 0); !errors.Is(err, ErrTruncated) {
		t.Errorf("short TIP: %v", err)
	}
	// Broken PSB pattern.
	bad := appendPSB(nil)
	bad[7] = 0x00
	if _, _, err := DecodePacket(bad, 0); !errors.Is(err, ErrBadPacket) {
		t.Errorf("broken PSB: %v", err)
	}
}

func TestPacketTypeString(t *testing.T) {
	all := []PacketType{PktPAD, PktPSB, PktPSBEND, PktOVF, PktTNT, PktTIP, PktTIPPGE, PktTIPPGD, PktFUP, PktTSC}
	for _, ty := range all {
		if ty.String() == "UNKNOWN" {
			t.Errorf("type %d renders UNKNOWN", ty)
		}
	}
	if PacketType(99).String() != "UNKNOWN" {
		t.Error("unknown type should render UNKNOWN")
	}
}
