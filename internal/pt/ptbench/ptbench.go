// Package ptbench is the shared branch-trace benchmark harness: one set
// of scenario bodies consumed both by internal/pt's go-test suite and by
// `inspector-bench -experiment pt`, so the committed BENCH_pt.json
// snapshot measures exactly what `go test -bench` measures and the two
// can never drift apart. Everything drives the public pt API only, so
// the same scenarios remain valid across encoder/decoder rewrites.
package ptbench

import (
	"errors"
	"io"
	"testing"

	"github.com/repro/inspector/internal/image"
	"github.com/repro/inspector/internal/pt"
)

// Sink is an appending ByteSink whose buffer the scenarios reuse.
type Sink struct{ Data []byte }

// WriteTrace implements pt.ByteSink.
func (s *Sink) WriteTrace(b []byte) int {
	s.Data = append(s.Data, b...)
	return len(b)
}

// Chain registers n conditional sites forming a ring.
func Chain(im *image.Image, n int) []*image.Site {
	sites := make([]*image.Site, n)
	for i := range sites {
		sites[i] = im.MustSite("bench.c"+string(rune('a'+i)), image.Conditional)
	}
	return sites
}

// Branch drives branch i of the steady-state pattern: site i%len,
// outcome flipping every full lap, successor always the next site. Each
// (site, outcome) pair maps to one stable successor, so after the first
// two laps every branch costs exactly one TNT bit.
func Branch(enc *pt.Encoder, sites []*image.Site, i int) {
	n := len(sites)
	enc.CondBranch(sites[i%n], (i/n)%2 == 0, sites[(i+1)%n])
}

// Prime warms both edge outcomes of every site and flushes.
func Prime(enc *pt.Encoder, sites []*image.Site) int {
	n := 2 * len(sites)
	for i := 0; i < n; i++ {
		Branch(enc, sites, i)
	}
	enc.Flush()
	return n
}

// Drain decodes everything remaining in the decoder, returning the
// event count.
func Drain(dec *pt.Decoder) (int, error) {
	n := 0
	for {
		_, err := dec.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		n++
	}
}

// Case is one benchmark scenario.
type Case struct {
	// Name follows the BENCH_pt.json row naming ("Encode/tnt", ...).
	Name string
	// Bytes, when non-zero, is the payload size per op for MB/s.
	Bytes int64
	Fn    func(b *testing.B)
}

// Cases returns the branch-trace scenarios: per-branch encode cost in
// the steady state (pure-TNT and indirect), whole-stream decode
// throughput, and the per-branch full-pipeline round trip the
// acceptance gate tracks.
func Cases() []Case {
	var cases []Case

	cases = append(cases, Case{
		Name: "Encode/tnt",
		Fn: func(b *testing.B) {
			im := image.New()
			sites := Chain(im, 8)
			sink := &Sink{Data: make([]byte, 0, 1<<20)}
			enc := pt.NewEncoder(sink, pt.EncoderOptions{})
			base := Prime(enc, sites)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Branch(enc, sites, base+i)
				if len(sink.Data) > 1<<20 {
					sink.Data = sink.Data[:0]
				}
			}
		},
	})

	cases = append(cases, Case{
		Name: "Encode/indirect",
		Fn: func(b *testing.B) {
			im := image.New()
			s1 := im.MustSite("bench.ind.a", image.Indirect)
			s2 := im.MustSite("bench.ind.b", image.Indirect)
			sink := &Sink{Data: make([]byte, 0, 1<<20)}
			enc := pt.NewEncoder(sink, pt.EncoderOptions{})
			enc.IndirectBranch(s1, s2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.IndirectBranch(s1, s2)
				if len(sink.Data) > 1<<20 {
					sink.Data = sink.Data[:0]
				}
			}
		},
	})

	// Decode: a pre-encoded stream of predominantly-TNT branches.
	const decodeBranches = 60000
	{
		im := image.New()
		sites := Chain(im, 8)
		sink := &Sink{}
		enc := pt.NewEncoder(sink, pt.EncoderOptions{})
		for i := 0; i < decodeBranches; i++ {
			Branch(enc, sites, i)
		}
		enc.End()
		stream := sink.Data
		cases = append(cases, Case{
			Name:  "Decode",
			Bytes: int64(len(stream)),
			Fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d := pt.NewDecoder(im, stream)
					n, err := Drain(d)
					if err != nil {
						b.Fatal(err)
					}
					if n != decodeBranches {
						b.Fatalf("decoded %d events, want %d", n, decodeBranches)
					}
				}
			},
		})
	}

	// RoundTrip: per op = one branch encoded into the sink and decoded
	// back into an event; the decoder persists across chunks (Reset),
	// mirroring an AUX-ring consumer chasing the producer. The batch is
	// a multiple of 6 so TNT packets flush on the boundary.
	cases = append(cases, Case{
		Name: "RoundTrip",
		Fn: func(b *testing.B) {
			const batch = 6000
			im := image.New()
			sites := Chain(im, 8)
			sink := &Sink{Data: make([]byte, 0, 1<<20)}
			enc := pt.NewEncoder(sink, pt.EncoderOptions{})
			dec := pt.NewDecoder(im, nil)
			next := Prime(enc, sites)
			dec.Reset(sink.Data)
			if n, err := Drain(dec); err != nil || n != next {
				b.Fatalf("prime: %d events (%v), want %d", n, err, next)
			}
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for done < b.N {
				n := batch
				if b.N-done < n {
					n = b.N - done
				}
				sink.Data = sink.Data[:0]
				for i := 0; i < n; i++ {
					Branch(enc, sites, next)
					next++
				}
				enc.Flush()
				dec.Reset(sink.Data)
				got, err := Drain(dec)
				if err != nil {
					b.Fatal(err)
				}
				if got != n {
					b.Fatalf("decoded %d events, want %d", got, n)
				}
				done += n
			}
		},
	})
	return cases
}
