package pt

import (
	"github.com/repro/inspector/internal/image"
)

// ByteSink receives encoded trace bytes. The perf AUX ring buffer
// implements it; a bytes-based sink is used in tests.
type ByteSink interface {
	// WriteTrace appends b to the trace. It reports the number of bytes
	// accepted; fewer than len(b) means the ring overran and data was
	// lost (full-trace mode with a slow consumer).
	WriteTrace(b []byte) int
}

// Stats aggregates encoder output statistics; Table 9 is computed from
// these plus the workload's virtual runtime.
type Stats struct {
	Bytes      uint64
	Packets    uint64
	TNTPackets uint64
	TNTBits    uint64
	TIPs       uint64
	FUPs       uint64
	PSBs       uint64
	Branches   uint64
	LostBytes  uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Bytes += other.Bytes
	s.Packets += other.Packets
	s.TNTPackets += other.TNTPackets
	s.TNTBits += other.TNTBits
	s.TIPs += other.TIPs
	s.FUPs += other.FUPs
	s.PSBs += other.PSBs
	s.Branches += other.Branches
	s.LostBytes += other.LostBytes
}

// EncoderOptions configure an Encoder.
type EncoderOptions struct {
	// PSBPeriod is the approximate byte interval between PSB sync
	// points. Zero selects the default (4 KiB, a typical hardware
	// setting).
	PSBPeriod int
	// TSC supplies the timestamp recorded alongside each PSB; nil
	// disables TSC packets.
	TSC func() uint64
}

// DefaultPSBPeriod is the default byte distance between PSBs.
const DefaultPSBPeriod = 4096

// Encoder turns one thread's branch events into a compressed PT packet
// stream. It owns the per-trace last-IP compression state and the CFG
// edge table; the matching Decoder reconstructs both incrementally from
// the stream itself, so the stream is self-describing given the program
// image.
//
// An Encoder is owned by one thread and is not safe for concurrent use —
// exactly like a hardware PT unit, which traces one logical core into one
// buffer (the paper gives each forked "thread" process its own trace via
// the perf cgroup filter).
type Encoder struct {
	sink   ByteSink
	edges  *image.EdgeTable
	lastIP uint64

	// bits packs the pending TNT outcomes, oldest at bit nbits-1 — the
	// same layout as the wire payload, so flushing is a mask and an OR.
	bits  uint64
	nbits int
	buf   []byte
	stats Stats

	psbPeriod int
	sincePSB  int
	needPSB   bool
	started   bool
	tsc       func() uint64
}

// NewEncoder creates an encoder writing to sink.
func NewEncoder(sink ByteSink, opts EncoderOptions) *Encoder {
	period := opts.PSBPeriod
	if period <= 0 {
		period = DefaultPSBPeriod
	}
	return &Encoder{
		sink:      sink,
		edges:     image.NewEdgeTable(),
		buf:       make([]byte, 0, 64),
		psbPeriod: period,
		tsc:       opts.TSC,
	}
}

// Stats returns a copy of the output statistics.
func (e *Encoder) Stats() Stats { return e.stats }

// BytesWritten returns the bytes accepted by the sink so far — the one
// Stats field the per-branch accounting path reads, accessor-ized so
// callers need not copy the whole struct every branch.
func (e *Encoder) BytesWritten() uint64 { return e.stats.Bytes }

// LostBytes returns the trace bytes the sink refused so far (AUX ring
// overruns, or injected loss in fault-injection runs). The threading
// layer polls it at sub-computation boundaries to mark trace gaps in
// the CPG, so the accessor avoids copying the whole Stats struct.
func (e *Encoder) LostBytes() uint64 { return e.stats.LostBytes }

// emit sends buffered packet bytes to the sink, accounting loss.
func (e *Encoder) emit() {
	if len(e.buf) == 0 {
		return
	}
	n := e.sink.WriteTrace(e.buf)
	e.stats.Bytes += uint64(n)
	if n < len(e.buf) {
		e.stats.LostBytes += uint64(len(e.buf) - n)
	}
	e.sincePSB += len(e.buf)
	if e.sincePSB >= e.psbPeriod {
		e.needPSB = true
		e.sincePSB = 0
	}
	e.buf = e.buf[:0]
}

// flushTNT packs pending TNT bits into packets. The pending word never
// exceeds maxShortBits in the branch path (CondBranch flushes at the
// short-packet boundary), but the loop handles any count up to 64 by
// emitting oldest-first chunks, mirroring the wire layout exactly.
func (e *Encoder) flushTNT() {
	for e.nbits > 0 {
		n := e.nbits
		if n > maxLongBits {
			n = maxLongBits
		}
		chunk := e.bits >> uint(e.nbits-n) // oldest n bits
		var err error
		e.buf, err = appendTNT(e.buf, chunk, n)
		if err != nil {
			// Unreachable: n is clamped to maxLongBits.
			panic(err)
		}
		e.stats.TNTPackets++
		e.stats.TNTBits += uint64(n)
		e.stats.Packets++
		e.nbits -= n
		e.bits &= 1<<uint(e.nbits) - 1
	}
}

// maybePSB inserts a PSB bundle re-anchoring the decoder at site s. A PSB
// resets last-IP compression on both sides and carries a FUP with the
// current position so a consumer that lost data can resynchronize — the
// property INSPECTOR's snapshot facility (§VI) relies on.
func (e *Encoder) maybePSB(s *image.Site) {
	if !e.needPSB {
		return
	}
	e.needPSB = false
	e.flushTNT()
	e.buf = appendPSB(e.buf)
	e.stats.PSBs++
	e.stats.Packets++
	e.lastIP = 0
	if e.tsc != nil {
		e.buf = appendTSC(e.buf, e.tsc())
		e.stats.Packets++
	}
	e.buf, e.lastIP = appendIPPacket(e.buf, tipSubFUP, s.Addr(), e.lastIP)
	e.stats.Packets++
	e.stats.FUPs++
	e.buf = append(e.buf, opExt, extPSBEND)
	e.stats.Packets++
	e.emit()
}

// begin emits TIP.PGE anchoring the trace at the first executed site.
func (e *Encoder) begin(s *image.Site) {
	e.buf, e.lastIP = appendIPPacket(e.buf, tipSubPGE, s.Addr(), e.lastIP)
	e.stats.Packets++
	e.started = true
	e.emit()
}

// CondBranch records a conditional branch at site s with the given
// outcome, whose execution continued at site next. If the CFG edge
// (s, taken) -> next is already in the edge table the outcome costs one
// TNT bit; otherwise the deviation is carried in-band by a FUP packet
// and recorded in the table.
func (e *Encoder) CondBranch(s *image.Site, taken bool, next *image.Site) {
	if !e.started {
		e.begin(s)
	}
	e.maybePSB(s)
	e.stats.Branches++
	e.bits <<= 1
	if taken {
		e.bits |= 1
	}
	e.nbits++
	if succ, ok := e.edges.Lookup(s.ID, taken); ok && succ == next.ID {
		if e.nbits >= maxShortBits {
			e.flushTNT()
			e.emit()
		}
		return
	}
	// Deviation: flush bits so this branch's bit is last in-stream, then
	// bind the successor with a FUP.
	e.edges.Record(s.ID, taken, next.ID)
	e.flushTNT()
	e.buf, e.lastIP = appendIPPacket(e.buf, tipSubFUP, next.Addr(), e.lastIP)
	e.stats.Packets++
	e.stats.FUPs++
	e.emit()
}

// IndirectBranch records an indirect transfer at site s landing at
// target. Indirect targets are always carried in-band as TIP packets,
// as in hardware PT.
func (e *Encoder) IndirectBranch(s *image.Site, target *image.Site) {
	if !e.started {
		e.begin(s)
	}
	e.maybePSB(s)
	e.stats.Branches++
	e.flushTNT()
	e.buf, e.lastIP = appendIPPacket(e.buf, tipSubTIP, target.Addr(), e.lastIP)
	e.stats.Packets++
	e.stats.TIPs++
	e.emit()
}

// Flush packs any pending TNT bits into packets and pushes buffered
// bytes to the sink without closing the trace. The AUX-ring consumer
// uses it to force a packet boundary before draining (snapshot capture,
// chunked decode); the per-branch path never calls it.
func (e *Encoder) Flush() {
	e.flushTNT()
	e.emit()
}

// End flushes pending state and closes the trace with TIP.PGD.
func (e *Encoder) End() {
	e.flushTNT()
	e.buf, e.lastIP = appendIPPacket(e.buf, tipSubPGD, 0, e.lastIP)
	e.stats.Packets++
	e.emit()
}

// Tracer adapts a stream of raw "branch executed" events into Encoder
// calls. The successor of a branch is only known when the *next* branch
// executes, so the tracer buffers one pending event; Close completes the
// final pending branch against a per-trace exit site.
type Tracer struct {
	enc  *Encoder
	im   *image.Image
	exit *image.Site

	pending      *image.Site
	pendingTaken bool
	havePending  bool
	pendingKind  image.SiteKind
}

// NewTracer builds a tracer for one thread. The exit label names the
// synthetic site that terminates the trace (unique per thread).
func NewTracer(enc *Encoder, im *image.Image, exitLabel string) (*Tracer, error) {
	exit, err := im.Site(exitLabel, image.Indirect)
	if err != nil {
		return nil, err
	}
	return &Tracer{enc: enc, im: im, exit: exit}, nil
}

// complete finishes the pending branch with the given successor.
func (t *Tracer) complete(succ *image.Site) {
	if !t.havePending {
		return
	}
	if t.pendingKind == image.Conditional {
		t.enc.CondBranch(t.pending, t.pendingTaken, succ)
	} else {
		t.enc.IndirectBranch(t.pending, succ)
	}
	t.havePending = false
}

// OnCond records execution of a conditional branch at site s.
func (t *Tracer) OnCond(s *image.Site, taken bool) {
	t.complete(s)
	t.pending = s
	t.pendingTaken = taken
	t.pendingKind = image.Conditional
	t.havePending = true
}

// OnIndirect records execution of an indirect transfer at site s.
func (t *Tracer) OnIndirect(s *image.Site) {
	t.complete(s)
	t.pending = s
	t.pendingKind = image.Indirect
	t.havePending = true
}

// Close completes the final pending branch against the exit site and ends
// the trace.
func (t *Tracer) Close() {
	t.complete(t.exit)
	t.enc.End()
}

// Exit returns the tracer's exit site.
func (t *Tracer) Exit() *image.Site { return t.exit }
