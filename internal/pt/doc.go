// Package pt implements a software model of Intel Processor Trace: the
// compressed packet grammar (PSB, TNT, TIP, FUP, TSC, OVF, PAD), a
// per-thread trace encoder with TNT bit-packing and last-IP compression,
// and a decoder that reconstructs the executed control-flow path by
// walking the program image — the same division of labour as the hardware
// PT unit plus the Intel Processor Decoder Library used by the paper
// (§V-B).
//
// Packet encodings follow the Intel SDM layouts where practical:
//
//	PAD      0x00
//	PSB      (0x02 0x82) x 8 — 16-byte synchronization boundary
//	PSBEND   0x02 0x23
//	OVF      0x02 0xF3 — overflow, data lost upstream of the ring
//	Long TNT 0x02 0xA3 + 6-byte payload, up to 47 taken/not-taken bits
//	Short TNT one byte, bit0 = 0, 1..6 TNT bits plus a stop bit
//	TIP      (ipBytes<<5)|0x0D + compressed IP — indirect branch target
//	TIP.PGE  (ipBytes<<5)|0x11 + compressed IP — trace enable
//	TIP.PGD  (ipBytes<<5)|0x01 + compressed IP — trace disable
//	FUP      (ipBytes<<5)|0x1D + compressed IP — bound control-flow update
//	TSC      0x19 + 7-byte little-endian timestamp
//
// IP payloads use last-IP compression: the encoder sends only the low 2,
// 4, or 6 bytes when the upper bytes match the previously sent IP, or a
// full 8 bytes otherwise; code 0 means "IP unchanged".
//
// # Contract
//
// An Encoder is owned by one recording thread and writes through a
// ByteSink (the perf AUX ring); it is allocation-free on the per-branch
// path and its byte output is pinned — trace bytes are part of the
// drift-checked artifact surface, so any encoding change must be
// deliberate and re-pinned. The Decoder consumes a trace against the
// program image either wholesale (DecodeAll) or as a resumable stream
// (Next/Reset for chunked decoding); after ring loss (OVF) it resyncs
// at the next PSB. Round-trip property and fuzz tests hold
// encoder→decoder to exact branch-event reconstruction.
//
// See DESIGN.md, section "The branch-trace fast path".
package pt
