package pt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/repro/inspector/internal/image"
)

// memSink is an in-memory ByteSink with optional loss injection.
type memSink struct {
	data     []byte
	dropFrom int // byte offset to start dropping at; -1 = never
	dropLen  int
	dropped  int
}

func newMemSink() *memSink { return &memSink{dropFrom: -1} }

func (m *memSink) WriteTrace(b []byte) int {
	if m.dropFrom >= 0 && len(m.data) >= m.dropFrom && m.dropped < m.dropLen {
		// Swallow bytes to simulate a consumer that fell behind.
		take := m.dropLen - m.dropped
		if take > len(b) {
			take = len(b)
		}
		m.dropped += take
		rest := b[take:]
		m.data = append(m.data, rest...)
		return len(b) // encoder believes all written; loss is downstream
	}
	m.data = append(m.data, b...)
	return len(b)
}

// traceEvent is the ground truth used to drive encoders in tests.
type traceEvent struct {
	label    string
	indirect bool
	taken    bool
}

// runTrace executes events through a Tracer and returns the raw stream.
func runTrace(t *testing.T, im *image.Image, sink *memSink, events []traceEvent, opts EncoderOptions) {
	t.Helper()
	enc := NewEncoder(sink, opts)
	tr, err := NewTracer(enc, im, "__exit__")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.indirect {
			tr.OnIndirect(im.MustSite(ev.label, image.Indirect))
		} else {
			tr.OnCond(im.MustSite(ev.label, image.Conditional), ev.taken)
		}
	}
	tr.Close()
}

// checkDecode verifies the decoded events equal the driven events, with
// successors matching the next driven site (or the exit site at the end).
func checkDecode(t *testing.T, im *image.Image, data []byte, events []traceEvent) {
	t.Helper()
	got, err := DecodeAll(im, data)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i, want := range events {
		ev := got[i]
		if ev.Site.Label != want.label {
			t.Fatalf("event %d site = %s, want %s", i, ev.Site.Label, want.label)
		}
		if want.indirect {
			wantTarget := "__exit__"
			if i+1 < len(events) {
				wantTarget = events[i+1].label
			}
			if ev.Target == nil || ev.Target.Label != wantTarget {
				t.Fatalf("event %d target = %v, want %s", i, ev.Target, wantTarget)
			}
		} else if ev.Taken != want.taken {
			t.Fatalf("event %d taken = %v, want %v", i, ev.Taken, want.taken)
		}
	}
}

func TestRoundTripSimpleLoop(t *testing.T) {
	im := image.New()
	var events []traceEvent
	for i := 0; i < 20; i++ {
		events = append(events, traceEvent{label: "loop.head", taken: i < 19})
	}
	sink := newMemSink()
	runTrace(t, im, sink, events, EncoderOptions{})
	checkDecode(t, im, sink.data, events)
}

func TestRoundTripAlternatingBranches(t *testing.T) {
	im := image.New()
	var events []traceEvent
	for i := 0; i < 50; i++ {
		events = append(events,
			traceEvent{label: "a", taken: i%2 == 0},
			traceEvent{label: "b", taken: i%3 == 0},
		)
	}
	sink := newMemSink()
	runTrace(t, im, sink, events, EncoderOptions{})
	checkDecode(t, im, sink.data, events)
}

func TestRoundTripIndirects(t *testing.T) {
	im := image.New()
	events := []traceEvent{
		{label: "dispatch", indirect: true},
		{label: "case1", taken: true},
		{label: "dispatch", indirect: true},
		{label: "case2", taken: false},
		{label: "ret", indirect: true},
	}
	sink := newMemSink()
	runTrace(t, im, sink, events, EncoderOptions{})
	checkDecode(t, im, sink.data, events)
}

func TestRoundTripDeviatingSuccessors(t *testing.T) {
	// Same (site, outcome) flowing to different successors across
	// iterations: forces FUP deviations.
	im := image.New()
	var events []traceEvent
	for i := 0; i < 10; i++ {
		events = append(events, traceEvent{label: "head", taken: true})
		if i%2 == 0 {
			events = append(events, traceEvent{label: "even.body", taken: i%4 == 0})
		} else {
			events = append(events, traceEvent{label: "odd.body", taken: i%3 == 0})
		}
	}
	sink := newMemSink()
	runTrace(t, im, sink, events, EncoderOptions{})
	checkDecode(t, im, sink.data, events)
}

func TestRoundTripWithPSBs(t *testing.T) {
	im := image.New()
	var events []traceEvent
	for i := 0; i < 3000; i++ {
		events = append(events, traceEvent{label: fmt.Sprintf("s%d", i%7), taken: i%5 != 0})
	}
	sink := newMemSink()
	var ts uint64
	runTrace(t, im, sink, events, EncoderOptions{
		PSBPeriod: 64,
		TSC:       func() uint64 { ts += 100; return ts },
	})
	checkDecode(t, im, sink.data, events)

	// PSBs must actually have been emitted.
	d := NewDecoder(im, sink.data)
	if _, err := DecodeAll(im, sink.data); err != nil {
		t.Fatal(err)
	}
	_ = d
}

func TestCompressionDensity(t *testing.T) {
	// A predictable loop should approach 6 branches per TNT byte.
	im := image.New()
	var events []traceEvent
	const n = 6000
	for i := 0; i < n; i++ {
		events = append(events, traceEvent{label: "hot", taken: true})
	}
	sink := newMemSink()
	runTrace(t, im, sink, events, EncoderOptions{})
	bytesPerBranch := float64(len(sink.data)) / float64(n)
	if bytesPerBranch > 0.25 {
		t.Errorf("bytes/branch = %.3f, want < 0.25 for a predictable loop", bytesPerBranch)
	}
}

func TestEncoderStats(t *testing.T) {
	im := image.New()
	events := []traceEvent{
		{label: "a", taken: true},
		{label: "b", indirect: true},
		{label: "a", taken: false},
	}
	sink := newMemSink()
	enc := NewEncoder(sink, EncoderOptions{})
	tr, err := NewTracer(enc, im, "__exit__")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.indirect {
			tr.OnIndirect(im.MustSite(ev.label, image.Indirect))
		} else {
			tr.OnCond(im.MustSite(ev.label, image.Conditional), ev.taken)
		}
	}
	tr.Close()
	st := enc.Stats()
	if st.Branches != 3 {
		t.Errorf("Branches = %d, want 3", st.Branches)
	}
	if st.TNTBits != 2 {
		t.Errorf("TNTBits = %d, want 2", st.TNTBits)
	}
	if st.TIPs != 1 {
		t.Errorf("TIPs = %d, want 1", st.TIPs)
	}
	if st.Bytes == 0 || st.Bytes != uint64(len(sink.data)) {
		t.Errorf("Bytes = %d, sink has %d", st.Bytes, len(sink.data))
	}
	var sum Stats
	sum.Add(st)
	sum.Add(st)
	if sum.Branches != 6 {
		t.Errorf("Stats.Add: Branches = %d, want 6", sum.Branches)
	}
}

func TestDecoderResyncAfterGap(t *testing.T) {
	im := image.New()
	var events []traceEvent
	for i := 0; i < 4000; i++ {
		events = append(events, traceEvent{label: fmt.Sprintf("s%d", i%5), taken: i%2 == 0})
	}
	sink := newMemSink()
	sink.dropFrom = 200 // drop a chunk mid-trace
	sink.dropLen = 64
	runTrace(t, im, sink, events, EncoderOptions{PSBPeriod: 128})

	d := NewDecoder(im, sink.data)
	var decoded int
	var desyncs int
	for {
		_, err := d.Next()
		if err == nil {
			decoded++
			continue
		}
		if err.Error() == "EOF" || decoded > len(events) {
			break
		}
		desyncs++
		if desyncs > 100 {
			t.Fatalf("decoder cannot recover: %v", err)
		}
	}
	if d.Gaps == 0 {
		t.Error("decoder reported no gaps despite data loss")
	}
	// Most of the trace must still decode.
	if decoded < len(events)/2 {
		t.Errorf("decoded only %d/%d events after gap", decoded, len(events))
	}
}

func TestQuickRoundTripRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := image.New()
		n := 20 + r.Intn(400)
		events := make([]traceEvent, 0, n)
		nsites := 2 + r.Intn(8)
		for i := 0; i < n; i++ {
			if r.Intn(6) == 0 {
				events = append(events, traceEvent{
					label:    fmt.Sprintf("ind%d", r.Intn(nsites)),
					indirect: true,
				})
			} else {
				events = append(events, traceEvent{
					label: fmt.Sprintf("c%d", r.Intn(nsites)),
					taken: r.Intn(2) == 1,
				})
			}
		}
		sink := newMemSink()
		enc := NewEncoder(sink, EncoderOptions{PSBPeriod: 64 + r.Intn(512)})
		tr, err := NewTracer(enc, im, "__exit__")
		if err != nil {
			return false
		}
		for _, ev := range events {
			if ev.indirect {
				tr.OnIndirect(im.MustSite(ev.label, image.Indirect))
			} else {
				tr.OnCond(im.MustSite(ev.label, image.Conditional), ev.taken)
			}
		}
		tr.Close()
		got, err := DecodeAll(im, sink.data)
		if err != nil || len(got) != len(events) {
			return false
		}
		for i, want := range events {
			if got[i].Site.Label != want.label {
				return false
			}
			if !want.indirect && got[i].Taken != want.taken {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEventString(t *testing.T) {
	im := image.New()
	c := im.MustSite("c", image.Conditional)
	ind := im.MustSite("i", image.Indirect)
	if (Event{Site: c, Taken: true}).String() != "c:t" {
		t.Error("cond taken string")
	}
	if (Event{Site: c}).String() != "c:nt" {
		t.Error("cond not-taken string")
	}
	if (Event{Site: ind, Target: c}).String() != "i->c" {
		t.Error("indirect string")
	}
	if (Event{Site: ind}).String() != "i->?" {
		t.Error("indirect no-target string")
	}
	if (Event{}).String() != "<nil>" {
		t.Error("nil event string")
	}
}
