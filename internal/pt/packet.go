package pt

import (
	"encoding/binary"
	"errors"
	"fmt"
	mathbits "math/bits"
)

// PacketType enumerates the packet kinds this model generates.
type PacketType uint8

// Packet types.
const (
	PktPAD PacketType = iota + 1
	PktPSB
	PktPSBEND
	PktOVF
	PktTNT
	PktTIP
	PktTIPPGE
	PktTIPPGD
	PktFUP
	PktTSC
)

// String names the packet type as the Intel tooling does.
func (t PacketType) String() string {
	switch t {
	case PktPAD:
		return "PAD"
	case PktPSB:
		return "PSB"
	case PktPSBEND:
		return "PSBEND"
	case PktOVF:
		return "OVF"
	case PktTNT:
		return "TNT"
	case PktTIP:
		return "TIP"
	case PktTIPPGE:
		return "TIP.PGE"
	case PktTIPPGD:
		return "TIP.PGD"
	case PktFUP:
		return "FUP"
	case PktTSC:
		return "TSC"
	default:
		return "UNKNOWN"
	}
}

// Packet is one decoded packet.
type Packet struct {
	Type PacketType
	// IP is the reconstructed instruction pointer for TIP/FUP family
	// packets (after last-IP decompression).
	IP uint64
	// TNT packs the taken/not-taken payload of TNT packets: the oldest
	// bit sits at position TNTLen-1, the newest at bit 0 — exactly the
	// wire payload below the stop bit. Decoding a packet never
	// materializes a []bool; consumers shift bits out of this word.
	TNT uint64
	// TNTLen is the number of valid bits in TNT.
	TNTLen int
	// TSC is the timestamp payload for TSC packets.
	TSC uint64
	// Len is the encoded length in bytes.
	Len int
}

// TNTBit returns TNT bit i, oldest first.
func (p Packet) TNTBit(i int) bool {
	return p.TNT>>uint(p.TNTLen-1-i)&1 == 1
}

// TNTBits materializes the packed TNT payload as a []bool, oldest
// first — the reference representation, used by dump tooling and tests;
// hot paths consume TNT/TNTLen directly.
func (p Packet) TNTBits() []bool {
	if p.TNTLen == 0 {
		return nil
	}
	bits := make([]bool, p.TNTLen)
	for i := range bits {
		bits[i] = p.TNTBit(i)
	}
	return bits
}

// Opcode bytes and TIP-family sub-opcodes.
const (
	opPad        = 0x00
	opExt        = 0x02 // extended-opcode escape
	extPSB       = 0x82
	extPSBEND    = 0x23
	extOVF       = 0xF3
	extLongTNT   = 0xA3
	opTSC        = 0x19
	tipSubTIP    = 0x0D
	tipSubPGE    = 0x11
	tipSubPGD    = 0x01
	tipSubFUP    = 0x1D
	tipSubMask   = 0x1F
	psbLen       = 16
	longTNTLen   = 8 // 2 header + 6 payload
	tscLen       = 8 // 1 header + 7 payload
	maxShortBits = 6
	maxLongBits  = 47
)

// Errors returned by the packet layer.
var (
	ErrTruncated = errors.New("pt: truncated packet")
	ErrBadPacket = errors.New("pt: malformed packet")
	ErrTooMany   = errors.New("pt: too many TNT bits for one packet")
)

// ipCompress selects the smallest IPBytes code able to carry target given
// lastIP, returning the code and payload bytes.
func ipCompress(target, lastIP uint64) (code byte, payload []byte) {
	if target == lastIP {
		return 0, nil
	}
	switch {
	case target>>16 == lastIP>>16:
		p := make([]byte, 2)
		binary.LittleEndian.PutUint16(p, uint16(target))
		return 1, p
	case target>>32 == lastIP>>32:
		p := make([]byte, 4)
		binary.LittleEndian.PutUint32(p, uint32(target))
		return 2, p
	case target>>48 == lastIP>>48:
		p := make([]byte, 6)
		binary.LittleEndian.PutUint16(p, uint16(target))
		binary.LittleEndian.PutUint32(p[2:], uint32(target>>16))
		return 3, p
	default:
		p := make([]byte, 8)
		binary.LittleEndian.PutUint64(p, target)
		return 6, p
	}
}

// ipPayloadLen returns the payload byte count for an IPBytes code.
func ipPayloadLen(code byte) (int, error) {
	switch code {
	case 0:
		return 0, nil
	case 1:
		return 2, nil
	case 2:
		return 4, nil
	case 3:
		return 6, nil
	case 6:
		return 8, nil
	default:
		return 0, fmt.Errorf("%w: IPBytes code %d", ErrBadPacket, code)
	}
}

// ipDecompress reconstructs the full IP from a compressed payload and the
// decoder's last IP.
func ipDecompress(code byte, payload []byte, lastIP uint64) uint64 {
	switch code {
	case 0:
		return lastIP
	case 1:
		return lastIP&^uint64(0xFFFF) | uint64(binary.LittleEndian.Uint16(payload))
	case 2:
		return lastIP&^uint64(0xFFFF_FFFF) | uint64(binary.LittleEndian.Uint32(payload))
	case 3:
		low := uint64(binary.LittleEndian.Uint16(payload))
		mid := uint64(binary.LittleEndian.Uint32(payload[2:]))
		return lastIP&^uint64(0xFFFF_FFFF_FFFF) | mid<<16 | low
	default: // 6
		return binary.LittleEndian.Uint64(payload)
	}
}

// appendIPPacket appends a TIP-family packet for target to dst and returns
// the extended buffer plus the new lastIP. The payload bytes are appended
// in place — no intermediate slice — so the per-branch emit path stays
// allocation-free; ipCompress remains the reference form.
func appendIPPacket(dst []byte, sub byte, target, lastIP uint64) ([]byte, uint64) {
	switch {
	case target == lastIP:
		dst = append(dst, 0<<5|sub)
	case target>>16 == lastIP>>16:
		dst = append(dst, 1<<5|sub, byte(target), byte(target>>8))
	case target>>32 == lastIP>>32:
		dst = append(dst, 2<<5|sub,
			byte(target), byte(target>>8), byte(target>>16), byte(target>>24))
	case target>>48 == lastIP>>48:
		dst = append(dst, 3<<5|sub,
			byte(target), byte(target>>8), byte(target>>16), byte(target>>24),
			byte(target>>32), byte(target>>40))
	default:
		dst = append(dst, 6<<5|sub,
			byte(target), byte(target>>8), byte(target>>16), byte(target>>24),
			byte(target>>32), byte(target>>40), byte(target>>48), byte(target>>56))
	}
	return dst, target
}

// appendTNT appends a TNT packet carrying the n oldest-first bits packed
// in v (oldest at bit n-1). It chooses the short form when the bits fit
// in one byte. Returns an error if more than maxLongBits are supplied.
func appendTNT(dst []byte, v uint64, n int) ([]byte, error) {
	if n == 0 {
		return dst, nil
	}
	if n > maxLongBits {
		return dst, ErrTooMany
	}
	w := v | 1<<uint(n) // stop bit above the oldest payload bit
	if n <= maxShortBits {
		return append(dst, byte(w<<1)), nil
	}
	dst = append(dst, opExt, extLongTNT,
		byte(w), byte(w>>8), byte(w>>16), byte(w>>24), byte(w>>32), byte(w>>40))
	return dst, nil
}

// appendTNTBools is the reference []bool form of appendTNT, retained for
// the representation-equivalence property tests.
func appendTNTBools(dst []byte, bits []bool) ([]byte, error) {
	var v uint64
	for _, b := range bits {
		v <<= 1
		if b {
			v |= 1
		}
	}
	return appendTNT(dst, v, len(bits))
}

// tntUnpack splits the wire payload value (stop bit above oldest) into
// the packed bits and their count.
func tntUnpack(v uint64) (bits uint64, n int) {
	top := mathbits.Len64(v) - 1 // stop-bit position
	if top < 0 {
		return 0, 0
	}
	return v &^ (1 << uint(top)), top
}

// tntBitsRef extracts TNT bits (oldest first) from the packed payload
// value as a []bool — the reference decoder form, used by property tests
// to pin the packed representation.
func tntBitsRef(v uint64) []bool {
	if v == 0 {
		return nil
	}
	top := 63
	for top > 0 && v>>(uint(top))&1 == 0 {
		top--
	}
	bits := make([]bool, top)
	for i := 0; i < top; i++ {
		bits[i] = v>>(uint(top-1-i))&1 == 1
	}
	return bits
}

// appendPSB appends the 16-byte PSB pattern.
func appendPSB(dst []byte) []byte {
	for i := 0; i < psbLen/2; i++ {
		dst = append(dst, opExt, extPSB)
	}
	return dst
}

// appendTSC appends a TSC packet with the low 56 bits of ts.
func appendTSC(dst []byte, ts uint64) []byte {
	dst = append(dst, opTSC)
	for i := 0; i < 7; i++ {
		dst = append(dst, byte(ts>>(8*i)))
	}
	return dst
}

// DecodePacket parses the packet at the head of buf given the decoder's
// current lastIP, returning the packet and the updated lastIP.
func DecodePacket(buf []byte, lastIP uint64) (Packet, uint64, error) {
	if len(buf) == 0 {
		return Packet{}, lastIP, ErrTruncated
	}
	b0 := buf[0]
	switch {
	case b0 == opPad:
		return Packet{Type: PktPAD, Len: 1}, lastIP, nil
	case b0 == opTSC:
		if len(buf) < tscLen {
			return Packet{}, lastIP, ErrTruncated
		}
		var ts uint64
		for i := 0; i < 7; i++ {
			ts |= uint64(buf[1+i]) << (8 * i)
		}
		return Packet{Type: PktTSC, TSC: ts, Len: tscLen}, lastIP, nil
	case b0 == opExt:
		if len(buf) < 2 {
			return Packet{}, lastIP, ErrTruncated
		}
		switch buf[1] {
		case extPSB:
			if len(buf) < psbLen {
				return Packet{}, lastIP, ErrTruncated
			}
			for i := 0; i < psbLen; i += 2 {
				if buf[i] != opExt || buf[i+1] != extPSB {
					return Packet{}, lastIP, fmt.Errorf("%w: broken PSB pattern", ErrBadPacket)
				}
			}
			// PSB resets last-IP compression state.
			return Packet{Type: PktPSB, Len: psbLen}, 0, nil
		case extPSBEND:
			return Packet{Type: PktPSBEND, Len: 2}, lastIP, nil
		case extOVF:
			return Packet{Type: PktOVF, Len: 2}, lastIP, nil
		case extLongTNT:
			if len(buf) < longTNTLen {
				return Packet{}, lastIP, ErrTruncated
			}
			var v uint64
			for i := 0; i < 6; i++ {
				v |= uint64(buf[2+i]) << (8 * i)
			}
			bits, n := tntUnpack(v)
			return Packet{Type: PktTNT, TNT: bits, TNTLen: n, Len: longTNTLen}, lastIP, nil
		default:
			return Packet{}, lastIP, fmt.Errorf("%w: ext opcode %#x", ErrBadPacket, buf[1])
		}
	case b0&1 == 0:
		// Short TNT: bit0 = 0, payload in bits 7..1.
		v := uint64(b0 >> 1)
		if v == 0 {
			return Packet{}, lastIP, fmt.Errorf("%w: empty short TNT", ErrBadPacket)
		}
		bits, n := tntUnpack(v)
		return Packet{Type: PktTNT, TNT: bits, TNTLen: n, Len: 1}, lastIP, nil
	default:
		sub := b0 & tipSubMask
		var typ PacketType
		switch sub {
		case tipSubTIP:
			typ = PktTIP
		case tipSubPGE:
			typ = PktTIPPGE
		case tipSubPGD:
			typ = PktTIPPGD
		case tipSubFUP:
			typ = PktFUP
		default:
			return Packet{}, lastIP, fmt.Errorf("%w: opcode %#x", ErrBadPacket, b0)
		}
		code := b0 >> 5
		n, err := ipPayloadLen(code)
		if err != nil {
			return Packet{}, lastIP, err
		}
		if len(buf) < 1+n {
			return Packet{}, lastIP, ErrTruncated
		}
		ip := ipDecompress(code, buf[1:1+n], lastIP)
		return Packet{Type: typ, IP: ip, Len: 1 + n}, ip, nil
	}
}
