package pt

// Fuzz target for the decoder's resync machinery: arbitrary (and
// arbitrarily corrupted) byte streams must never panic the decoder or
// wedge it in a no-progress loop — the worst allowed outcome is an
// error stream and a gap count. CI runs this briefly on every push
// (go test -fuzz=FuzzDecoderResync -fuzztime=10s ./internal/pt/).

import (
	"errors"
	"io"
	"testing"

	"github.com/repro/inspector/internal/image"
)

// fuzzImage builds a small fixed site set so decoded IPs can resolve;
// unresolvable IPs are part of what the fuzzer explores.
func fuzzImage() *image.Image {
	im := image.New()
	im.MustSite("__exit__", image.Indirect)
	im.MustSite("a", image.Conditional)
	im.MustSite("b", image.Conditional)
	im.MustSite("i0", image.Indirect)
	return im
}

func FuzzDecoderResync(f *testing.F) {
	im := fuzzImage()

	// Seed with a well-formed stream and a few truncated/flipped
	// variants so the fuzzer starts near the interesting boundary.
	events := []traceEvent{
		{label: "a", taken: true},
		{label: "i0", indirect: true},
		{label: "b", taken: false},
		{label: "a", taken: false},
	}
	data := encodeLossy(f, im, events, 16, 0, 0, false)
	f.Add(data)
	if len(data) > 4 {
		f.Add(data[:len(data)/2])
		f.Add(data[2:])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x82}) // PSB prefix fragment

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(im, data)
		errStreak := 0
		for steps := 0; ; steps++ {
			if steps > 4*len(data)+64 {
				t.Fatalf("decoder made no termination progress after %d steps on %d bytes", steps, len(data))
			}
			_, err := d.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				errStreak++
				// Each recoverable error must eventually advance the
				// cursor; a decoder stuck at one offset would loop
				// forever in DecodeAll.
				if errStreak > len(data)+16 {
					t.Fatalf("decoder wedged at pos %d/%d", d.Pos(), len(data))
				}
				continue
			}
			errStreak = 0
		}
		if d.Pos() > len(data) {
			t.Fatalf("decoder ran past the buffer: pos %d > %d", d.Pos(), len(data))
		}
	})
}
