// Package harness regenerates the paper's evaluation section (§VII):
// every table and figure is produced by one method of Harness, running
// the twelve benchmark applications natively (the pthreads baseline) and
// under INSPECTOR on the deterministic virtual-time substrate.
//
//	Figure 5  — provenance overhead vs native, threads in {2,4,8,16}
//	Figure 6  — overhead breakdown: threading library vs OS/PT support
//	Table 7   — runtime statistics: page faults, faults/sec (Figure 7 in
//	            the paper's numbering, rendered as a table)
//	Figure 8  — overhead scaling with input size (S/M/L), 16 threads
//	Table 9   — provenance log: size, lz4-compressed size, ratio,
//	            bandwidth, branch rate (Figure 9 in the paper)
//
// Reports are memoized per (app, mode, threads, size) so figures sharing
// configurations do not rerun workloads.
package harness

import (
	"fmt"
	"sync"

	"github.com/repro/inspector/internal/lz4"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
)

// Options configure a harness.
type Options struct {
	// Size is the input scale for Figures 5-6 and the tables (Figure 8
	// always sweeps S/M/L). Default Medium.
	Size workloads.Size
	// Threads is the Figure 5 sweep. Default {2, 4, 8, 16}.
	Threads []int
	// BreakdownThreads is the thread count for Figure 6 and the tables
	// (the paper uses 16). Default 16.
	BreakdownThreads int
	// Seed makes input generation deterministic. Default 1.
	Seed int64
	// Apps restricts the workload set (nil = all twelve).
	Apps []string
}

func (o Options) normalize() Options {
	if o.Size == 0 {
		o.Size = workloads.Medium
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{2, 4, 8, 16}
	}
	if o.BreakdownThreads == 0 {
		o.BreakdownThreads = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// runKey identifies one memoized execution.
type runKey struct {
	app     string
	mode    threading.Mode
	threads int
	size    workloads.Size
}

// runValue is a memoized result.
type runValue struct {
	rep *threading.Report
	// compressed is the lz4-compressed trace size (inspector runs).
	compressed uint64
	// inputBytes is the mapped input size.
	inputBytes uint64
}

// Harness runs experiments with memoized results.
type Harness struct {
	opts Options

	mu    sync.Mutex
	cache map[runKey]*runValue
}

// New creates a harness.
func New(opts Options) *Harness {
	return &Harness{opts: opts.normalize(), cache: make(map[runKey]*runValue)}
}

// apps resolves the workload set.
func (h *Harness) apps() ([]workloads.Workload, error) {
	if len(h.opts.Apps) == 0 {
		return workloads.All(), nil
	}
	out := make([]workloads.Workload, 0, len(h.opts.Apps))
	for _, name := range h.opts.Apps {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// run executes (or recalls) one configuration.
func (h *Harness) run(app string, mode threading.Mode, threads int, size workloads.Size) (*runValue, error) {
	key := runKey{app: app, mode: mode, threads: threads, size: size}
	h.mu.Lock()
	if v, ok := h.cache[key]; ok {
		h.mu.Unlock()
		return v, nil
	}
	h.mu.Unlock()

	w, err := workloads.Get(app)
	if err != nil {
		return nil, err
	}
	cfg := workloads.Config{Size: size, Threads: threads, Seed: h.opts.Seed}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    app,
		Mode:       mode,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", app, err)
	}
	if err := w.Run(rt, cfg); err != nil {
		return nil, fmt.Errorf("harness: %s [%v t=%d %v]: %w", app, mode, threads, size, err)
	}
	// Assemble the report through the runtime's last main thread: Run
	// already returned it, but workloads own the Run call; rerun the
	// aggregation through the session/graph surfaces instead.
	rep := rt.LastReport()
	v := &runValue{rep: rep, inputBytes: rt.InputBytes()}
	if mode == threading.ModeInspector {
		v.compressed = compressTraces(rt)
	}
	h.mu.Lock()
	h.cache[key] = v
	h.mu.Unlock()
	return v, nil
}

// compressTraces lz4-compresses every stream's stored trace and returns
// the total compressed size (Table 9's "Compressed" column).
func compressTraces(rt *threading.Runtime) uint64 {
	var total uint64
	for _, pid := range rt.Session().PIDs() {
		stream, ok := rt.Session().Stream(pid)
		if !ok {
			continue
		}
		c := lz4.Compress(nil, stream.Trace())
		total += uint64(len(c))
	}
	return total
}
