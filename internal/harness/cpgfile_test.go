package harness

// Round-trip property tests for the on-disk columnar CPG format: for
// every workload the gob artifact and the cpgfile artifact must describe
// the same graph — gob -> DecodeGob -> Analyze -> cpgfile.Write ->
// {Load, Mapped} must export a byte-identical analysis document. The
// chaos round proves the serving path's -lenient contract against files
// damaged through the faultinject cpgfile points.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/cpgfile"
	"github.com/repro/inspector/internal/faultinject"
	"github.com/repro/inspector/internal/workloads"
	"github.com/repro/inspector/provenance"
)

// exportAnalysisJSON renders the canonical analysis document.
func exportAnalysisJSON(t *testing.T, a *core.Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	return buf.Bytes()
}

// roundTripCPGFile writes the analysis as a columnar file and asserts
// both read paths reproduce the reference document byte for byte.
func roundTripCPGFile(t *testing.T, a *core.Analysis, label string) {
	t.Helper()
	want := exportAnalysisJSON(t, a)
	path := filepath.Join(t.TempDir(), "run.cpg")
	if err := cpgfile.Write(path, a, cpgfile.Meta{RunID: label}); err != nil {
		t.Fatalf("%s: Write: %v", label, err)
	}

	loaded, hdr, err := cpgfile.Load(path)
	if err != nil {
		t.Fatalf("%s: Load: %v", label, err)
	}
	if hdr.RunID != label || hdr.Degraded != a.Degraded() {
		t.Fatalf("%s: header = %+v", label, hdr)
	}
	if got := exportAnalysisJSON(t, loaded); !bytes.Equal(want, got) {
		t.Fatalf("%s: Load export differs from source analysis", label)
	}

	m, err := cpgfile.Open(path)
	if err != nil {
		t.Fatalf("%s: Open: %v", label, err)
	}
	defer m.Close()
	mapped, _, err := m.Analysis()
	if err != nil {
		t.Fatalf("%s: Mapped analysis: %v", label, err)
	}
	if got := exportAnalysisJSON(t, mapped); !bytes.Equal(want, got) {
		t.Fatalf("%s: Mapped export differs from source analysis", label)
	}
}

// TestCPGFileRoundTripAcrossWorkloads sweeps every workload, single- and
// multi-thread: the gob export decodes, analyzes, serializes to the
// columnar format, and reads back identically through both paths — then
// again with gaps recorded, so degraded graphs survive the format too.
func TestCPGFileRoundTripAcrossWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	for _, app := range workloads.Names() {
		for _, threads := range []int{1, 4} {
			t.Run(app+"/t"+strconv.Itoa(threads), func(t *testing.T) {
				_, _, gobB, _ := exportCPG(t, app, threads)
				g, err := core.DecodeGob(bytes.NewReader(gobB))
				if err != nil {
					t.Fatalf("decode gob: %v", err)
				}
				roundTripCPGFile(t, g.Analyze(), app)

				g.AddGap(0, core.Gap{FromAlpha: 0, ToAlpha: 1, Kind: core.GapAuxLoss, Bytes: 64})
				degraded := g.Analyze()
				if !degraded.Degraded() {
					t.Fatal("gap did not mark the analysis degraded")
				}
				roundTripCPGFile(t, degraded, app+"-degraded")
			})
		}
	}
}

// writeCPGThrough encodes the analysis through a faultinject-wrapped
// writer straight to disk (no atomic rename — the point is to keep the
// damaged artifact), returning the write error, if any.
func writeCPGThrough(t *testing.T, path string, a *core.Analysis, in *faultinject.Injector) error {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	encErr := cpgfile.Encode(in.WrapCPGFile(f), a, cpgfile.Meta{RunID: filepath.Base(path)})
	if cerr := f.Close(); encErr == nil {
		encErr = cerr
	}
	return encErr
}

// TestChaosCPGFileLenientSkipsCorruptFiles drops a torn and a silently
// bit-flipped columnar file (both produced through the cpgfile fault
// points) into a directory of healthy ones. Strict open must fail naming
// a damaged file; lenient open must skip exactly the damaged pair by
// name and serve the healthy neighbors with answers byte-identical to
// engines built directly from the source analyses.
func TestChaosCPGFileLenientSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	_, _, gobB, _ := exportCPG(t, "histogram", 1)
	g, err := core.DecodeGob(bytes.NewReader(gobB))
	if err != nil {
		t.Fatal(err)
	}
	a := g.Analyze()

	healthy := []string{"run-a", "run-b", "run-c"}
	for _, id := range healthy {
		if err := cpgfile.Write(filepath.Join(dir, id+".cpg"), a, cpgfile.Meta{RunID: id}); err != nil {
			t.Fatal(err)
		}
	}

	// A crash mid-export: half the bytes land, the write errors.
	torn := faultinject.New(mustSchedule(t, "cpgfile-torn:count=1"))
	if err := writeCPGThrough(t, filepath.Join(dir, "torn.cpg"), a, torn); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	if torn.Fired(faultinject.CPGFileTorn) == 0 {
		t.Fatal("torn point never fired")
	}

	// Silent media corruption: every byte written, one flipped, no error.
	flip := faultinject.New(mustSchedule(t, "cpgfile-bit-flip:after=1,count=1"))
	if err := writeCPGThrough(t, filepath.Join(dir, "flipped.cpg"), a, flip); err != nil {
		t.Fatalf("bit-flip write must report success, got %v", err)
	}
	if flip.Fired(faultinject.CPGFileBitFlip) == 0 {
		t.Fatal("bit-flip point never fired")
	}

	if _, err := provenance.OpenDir(dir, provenance.StoreOptions{}); err == nil {
		t.Fatal("strict OpenDir accepted a directory with damaged files")
	}

	var logs []string
	store, err := provenance.OpenDir(dir, provenance.StoreOptions{
		Lenient: true,
		Logf:    func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatalf("lenient OpenDir: %v", err)
	}
	defer store.Close()

	if got := store.IDs(); len(got) != len(healthy) {
		t.Fatalf("lenient store ids = %v, want %v", got, healthy)
	}
	skipped := map[string]bool{}
	for _, line := range logs {
		for _, name := range []string{"torn.cpg", "flipped.cpg"} {
			if bytes.Contains([]byte(line), []byte(name)) {
				skipped[name] = true
			}
		}
	}
	if len(logs) != 2 || !skipped["torn.cpg"] || !skipped["flipped.cpg"] {
		t.Fatalf("lenient skip logs = %q, want both damaged files named", logs)
	}

	// Survivors answer byte-identically to an engine built from source.
	want := exportAnalysisJSON(t, a)
	for _, id := range healthy {
		loaded, _, err := cpgfile.Load(filepath.Join(dir, id+".cpg"))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got := exportAnalysisJSON(t, loaded); !bytes.Equal(want, got) {
			t.Fatalf("%s: survivor drifted from source analysis", id)
		}
	}
}

// mustSchedule parses a fault schedule spec.
func mustSchedule(t *testing.T, spec string) faultinject.Schedule {
	t.Helper()
	s, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
