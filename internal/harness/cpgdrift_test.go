package harness

// Cross-workload CPG export drift test. The columnar core refactor (interned
// sites, compact page sets, sharded vertex store) must not move a single byte
// of the exported provenance artifacts: testdata/cpg_drift.json pins the
// SHA-256 of the JSON and DOT exports of every workload, single- and
// multi-thread, as produced by the pre-refactor (seed) implementation.
//
// The JSON dump contains the complete graph state (IDs, clocks, read/write
// sets, thunks with site labels, sync events, virtual times, sync edges), so
// JSON byte-identity is full semantic identity. Two caveats, both properties
// of the seed rather than of the refactor:
//
//   - Multi-thread runs of mutex-contended workloads are scheduling-dependent
//     (which thread wins a lock changes the recorded vector clocks), so their
//     exports legitimately differ run to run. The update mode runs every
//     configuration three times and byte-pins only the stable ones; unstable
//     configurations are pinned on their deterministic counters (vertex
//     count) and still get the gob self-consistency checks.
//   - The gob artifact cannot be byte-pinned against the seed at all: the
//     seed's map-backed PageSet made gob bytes depend on map iteration order.
//     The refactor fixes that (sorted page sets encode canonically); here gob
//     is held to byte-determinism across encodes and to decoding back to
//     exactly the JSON-pinned content.
//
// Regenerate after an intentional format change with:
//
//	go test ./internal/harness -run TestCPGExportDriftAgainstSeed -update-cpg-drift

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
)

var updateCPGDrift = flag.Bool("update-cpg-drift", false,
	"rewrite testdata/cpg_drift.json from the current implementation")

const driftPath = "testdata/cpg_drift.json"

// driftEntry pins one workload configuration. Stable configurations carry
// export hashes; scheduling-dependent ones only their deterministic counters.
type driftEntry struct {
	App     string `json:"app"`
	Threads int    `json:"threads"`
	Subs    int    `json:"subs"`
	// Stable marks runs whose exports are byte-reproducible (three
	// consecutive seed runs agreed).
	Stable  bool   `json:"stable"`
	JSONSHA string `json:"json_sha256,omitempty"`
	DOTSHA  string `json:"dot_sha256,omitempty"`
}

type driftFile struct {
	Note    string       `json:"note"`
	Size    string       `json:"size"`
	Seed    int64        `json:"seed"`
	Entries []driftEntry `json:"entries"`
}

// exportCPG runs one configuration under INSPECTOR and returns the three
// export artifacts plus the vertex count.
func exportCPG(t *testing.T, app string, threads int) (jsonB, dotB, gobB []byte, subs int) {
	t.Helper()
	w, err := workloads.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: threads, Seed: 1}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    app,
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(rt, cfg); err != nil {
		t.Fatalf("%s t=%d: %v", app, threads, err)
	}
	var jw, dw, gw bytes.Buffer
	if err := rt.Graph().EncodeJSON(&jw); err != nil {
		t.Fatal(err)
	}
	if err := rt.Graph().WriteDOT(&dw); err != nil {
		t.Fatal(err)
	}
	if err := rt.Graph().EncodeGob(&gw); err != nil {
		t.Fatal(err)
	}
	return jw.Bytes(), dw.Bytes(), gw.Bytes(), rt.Graph().NumSubs()
}

func sha(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

func updateDriftFile(t *testing.T) {
	df := driftFile{
		Note: "SHA-256 of CPG exports as produced by the pre-refactor (seed) core; " +
			"stable=false marks scheduling-dependent multi-thread runs (pinned on counters only); " +
			"see cpgdrift_test.go for the regeneration command",
		Size: "small",
		Seed: 1,
	}
	for _, app := range workloads.Names() {
		for _, threads := range []int{1, 4} {
			ent := driftEntry{App: app, Threads: threads, Stable: true}
			for rep := 0; rep < 3; rep++ {
				jsonB, dotB, _, subs := exportCPG(t, app, threads)
				js, ds := sha(jsonB), sha(dotB)
				if rep == 0 {
					ent.JSONSHA, ent.DOTSHA, ent.Subs = js, ds, subs
					continue
				}
				if subs != ent.Subs {
					t.Fatalf("%s t=%d: vertex count varies across seed runs (%d vs %d)",
						app, threads, subs, ent.Subs)
				}
				if js != ent.JSONSHA || ds != ent.DOTSHA {
					ent.Stable = false
				}
			}
			if !ent.Stable {
				ent.JSONSHA, ent.DOTSHA = "", ""
			}
			df.Entries = append(df.Entries, ent)
		}
	}
	data, err := json.MarshalIndent(df, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(driftPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(driftPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stable := 0
	for _, e := range df.Entries {
		if e.Stable {
			stable++
		}
	}
	t.Logf("wrote %s (%d entries, %d byte-pinned)", driftPath, len(df.Entries), stable)
}

func TestCPGExportDriftAgainstSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	if *updateCPGDrift {
		updateDriftFile(t)
		return
	}

	data, err := os.ReadFile(driftPath)
	if err != nil {
		t.Fatalf("missing pinned hashes (run with -update-cpg-drift to create): %v", err)
	}
	var df driftFile
	if err := json.Unmarshal(data, &df); err != nil {
		t.Fatal(err)
	}
	for _, want := range df.Entries {
		want := want
		t.Run(want.App+"/t"+strconv.Itoa(want.Threads), func(t *testing.T) {
			jsonB, dotB, gobB, subs := exportCPG(t, want.App, want.Threads)
			if subs != want.Subs {
				t.Errorf("sub-computations = %d, seed recorded %d", subs, want.Subs)
			}
			if want.Stable {
				if got := sha(jsonB); got != want.JSONSHA {
					t.Errorf("JSON export drifted from seed: sha %s, want %s", got, want.JSONSHA)
				}
				if got := sha(dotB); got != want.DOTSHA {
					t.Errorf("DOT export drifted from seed: sha %s, want %s", got, want.DOTSHA)
				}
			}
			// Gob must decode back to exactly this run's content...
			g, err := core.DecodeGob(bytes.NewReader(gobB))
			if err != nil {
				t.Fatalf("decode gob: %v", err)
			}
			var rejson bytes.Buffer
			if err := g.EncodeJSON(&rejson); err != nil {
				t.Fatal(err)
			}
			if got := sha(rejson.Bytes()); got != sha(jsonB) {
				t.Errorf("gob round-trip disagrees with the JSON export")
			}
			// ...and, unlike the seed's map-backed encoding, be deterministic:
			// re-encoding the decoded graph reproduces the bytes exactly.
			var regob bytes.Buffer
			if err := g.EncodeGob(&regob); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gobB, regob.Bytes()) {
				t.Error("gob export is not byte-deterministic")
			}
		})
	}
}
