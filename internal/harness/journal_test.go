package harness

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/journal"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
)

// journaledRun executes one workload with a journal recorder attached,
// capturing the per-epoch in-process analysis exports, and returns the
// runtime's graph plus those exports. When seal is false the journal is
// abandoned without a seal record, as a killed process would leave it.
func journaledRun(t *testing.T, app string, threads int, dir string, seal bool) (*core.Graph, [][]byte) {
	t.Helper()
	w, err := workloads.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: threads, Seed: 1}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    app,
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	jw, err := journal.Create(journal.Options{
		Dir: dir, Threads: rt.Graph().Threads(), App: app, Fsync: journal.PolicyNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := journal.NewRecorder(rt.Graph(), jw, 1)
	var exports [][]byte
	rec.OnEpoch = func(a *core.Analysis, _ *core.EpochDelta) {
		var buf bytes.Buffer
		if err := a.ExportJSON(&buf); err != nil {
			t.Errorf("epoch export: %v", err)
			return
		}
		exports = append(exports, buf.Bytes())
	}
	rt.RegisterCommitHook(rec.CommitHook())
	if err := w.Run(rt, cfg); err != nil {
		t.Fatal(err)
	}
	if seal {
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	} else if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	return rt.Graph(), exports
}

// TestJournalReplayMatchesInProcessFold is the tentpole property at the
// workload level: for real multithreaded recordings, replaying the
// journal reproduces the in-process incremental analysis byte for byte —
// the full recovery equals the runtime's final graph, and recovery
// stopped at any epoch equals the fold the run itself produced at that
// epoch.
func TestJournalReplayMatchesInProcessFold(t *testing.T) {
	for _, threads := range []int{1, 4} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			dir := t.TempDir()
			g, exports := journaledRun(t, "histogram", threads, dir, true)

			rep, err := journal.Recover(dir, journal.RecoverOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sealed || rep.Degraded() {
				t.Fatalf("clean run journal: sealed=%v degraded=%v", rep.Sealed, rep.Degraded())
			}
			if rep.Epoch != uint64(len(exports)) {
				t.Fatalf("recovered %d epochs, journaled %d", rep.Epoch, len(exports))
			}
			var want, got bytes.Buffer
			if err := g.EncodeJSON(&want); err != nil {
				t.Fatal(err)
			}
			if err := rep.Graph.EncodeJSON(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatal("full recovery diverges from the runtime's graph")
			}

			// Random prefixes: replay-at-epoch == the run's own fold.
			r := rand.New(rand.NewSource(int64(threads)))
			for i := 0; i < 8; i++ {
				e := 1 + r.Intn(len(exports))
				at, err := journal.Recover(dir, journal.RecoverOptions{MaxEpoch: uint64(e)})
				if err != nil {
					t.Fatalf("epoch %d: %v", e, err)
				}
				var buf bytes.Buffer
				if err := at.Analysis.ExportJSON(&buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), exports[e-1]) {
					t.Fatalf("threads=%d epoch %d: replay diverges from in-process fold", threads, e)
				}
			}
		})
	}
}

// TestJournalUnsealedRunRecoversDegraded pins the failure-model side: a
// journal a dead process left behind recovers to the last durable epoch
// and says so — unsealed, degraded, a truncated-tail gap — instead of
// impersonating a complete run.
func TestJournalUnsealedRunRecoversDegraded(t *testing.T) {
	dir := t.TempDir()
	_, exports := journaledRun(t, "histogram", 2, dir, false)

	rep, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sealed {
		t.Fatal("unsealed journal recovered as sealed")
	}
	if !rep.Degraded() {
		t.Fatal("unsealed journal not marked degraded")
	}
	if rep.Epoch != uint64(len(exports)) {
		t.Fatalf("recovered %d epochs, journaled %d", rep.Epoch, len(exports))
	}
	var sawTrunc bool
	for _, tg := range rep.Graph.Gaps() {
		for _, gap := range tg.Gaps {
			if gap.Kind == core.GapTruncated {
				sawTrunc = true
			}
		}
	}
	if !sawTrunc {
		t.Fatal("no truncated-tail gap on the recovered graph")
	}
	// Degradation marking must not bend the analysis itself: the export
	// still matches the run's final fold.
	var buf bytes.Buffer
	if err := rep.Analysis.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), exports[len(exports)-1]) {
		t.Fatal("degraded recovery diverges from the last journaled fold")
	}
}

// killPoints reads the kill-recover sweep width from KILL_POINTS (the
// chaos CI job widens it); the default keeps plain `go test ./...`
// quick.
func killPoints() int {
	if s := os.Getenv("KILL_POINTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 3
}
