package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
)

// paperParams reproduces Table 7's dataset/parameter column for context.
var paperParams = map[string]string{
	"blackscholes":      "16 in_64K.txt prices.txt",
	"canneal":           "15 10000 2000 100000.nets 32",
	"histogram":         "large.bmp",
	"kmeans":            "-d 3 -c 500 -p 50000 -s 500",
	"linear_regression": "key_file_500MB.txt",
	"matrix_multiply":   "2000 2000",
	"pca":               "-r 4000 -c 4000 -s 100",
	"reverse_index":     "datafiles",
	"streamcluster":     "2 5 1 10 10 5 none output.txt 16",
	"string_match":      "key_file_500MB.txt",
	"swaptions":         "-ns 128 -sm 50000 -nt 16",
	"word_count":        "word_100MB.txt",
}

// Fig5Row is one application's overhead curve (Figure 5).
type Fig5Row struct {
	App string
	// Overhead maps thread count -> inspector time / native time.
	Overhead map[int]float64
	// WorkOverhead maps thread count -> inspector work / native work
	// (the companion work-measurement plot the paper links).
	WorkOverhead map[int]float64
}

// Figure5 measures provenance overhead against native execution across
// the thread sweep.
func (h *Harness) Figure5() ([]Fig5Row, error) {
	apps, err := h.apps()
	if err != nil {
		return nil, err
	}
	out := make([]Fig5Row, 0, len(apps))
	for _, w := range apps {
		row := Fig5Row{
			App:          w.Name(),
			Overhead:     make(map[int]float64),
			WorkOverhead: make(map[int]float64),
		}
		for _, th := range h.opts.Threads {
			nat, err := h.run(w.Name(), threading.ModeNative, th, h.opts.Size)
			if err != nil {
				return nil, err
			}
			insp, err := h.run(w.Name(), threading.ModeInspector, th, h.opts.Size)
			if err != nil {
				return nil, err
			}
			row.Overhead[th] = ratio(float64(insp.rep.Time), float64(nat.rep.Time))
			row.WorkOverhead[th] = ratio(float64(insp.rep.Work), float64(nat.rep.Work))
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig6Row is one application's overhead breakdown (Figure 6).
type Fig6Row struct {
	App string
	// Total is the end-to-end overhead factor at the breakdown thread
	// count.
	Total float64
	// ThreadingLib and OSSupport split the overhead above 1x between
	// the threading library (faults, commits, clocks, spawns) and the
	// OS support for Intel PT, proportionally to measured cycles.
	ThreadingLib float64
	OSSupport    float64
	// DominantComponent names which side dominates, the qualitative
	// claim of §VII-B.
	DominantComponent string
}

// Figure6 computes the overhead breakdown at BreakdownThreads.
func (h *Harness) Figure6() ([]Fig6Row, error) {
	apps, err := h.apps()
	if err != nil {
		return nil, err
	}
	out := make([]Fig6Row, 0, len(apps))
	for _, w := range apps {
		th := h.opts.BreakdownThreads
		nat, err := h.run(w.Name(), threading.ModeNative, th, h.opts.Size)
		if err != nil {
			return nil, err
		}
		insp, err := h.run(w.Name(), threading.ModeInspector, th, h.opts.Size)
		if err != nil {
			return nil, err
		}
		total := ratio(float64(insp.rep.Time), float64(nat.rep.Time))
		extra := total - 1
		if extra < 0 {
			extra = 0
		}
		tc := float64(insp.rep.ThreadingCycles)
		pc := float64(insp.rep.PTCycles)
		row := Fig6Row{App: w.Name(), Total: total}
		if tc+pc > 0 {
			row.ThreadingLib = extra * tc / (tc + pc)
			row.OSSupport = extra * pc / (tc + pc)
		}
		row.DominantComponent = "pt"
		if row.ThreadingLib > row.OSSupport {
			row.DominantComponent = "threading"
		}
		out = append(out, row)
	}
	return out, nil
}

// Table7Row is one application's runtime statistics (the paper's
// Figure 7 table).
type Table7Row struct {
	App          string
	Params       string
	PageFaults   uint64
	FaultsPerSec float64
}

// Table7 gathers fault statistics at BreakdownThreads.
func (h *Harness) Table7() ([]Table7Row, error) {
	apps, err := h.apps()
	if err != nil {
		return nil, err
	}
	out := make([]Table7Row, 0, len(apps))
	for _, w := range apps {
		insp, err := h.run(w.Name(), threading.ModeInspector, h.opts.BreakdownThreads, h.opts.Size)
		if err != nil {
			return nil, err
		}
		out = append(out, Table7Row{
			App:          w.Name(),
			Params:       paperParams[w.Name()],
			PageFaults:   insp.rep.Faults(),
			FaultsPerSec: insp.rep.FaultsPerSec(),
		})
	}
	return out, nil
}

// Fig8Point is one (size, overhead) sample of the input-scaling curve.
type Fig8Point struct {
	Size     workloads.Size
	Overhead float64
	InputMB  float64
}

// Fig8Row is one application's input-scaling behaviour (Figure 8).
type Fig8Row struct {
	App    string
	Points []Fig8Point
}

// Fig8Apps are the four applications the paper sweeps in Figure 8.
var Fig8Apps = []string{"histogram", "linear_regression", "string_match", "word_count"}

// Figure8 sweeps input sizes at BreakdownThreads for the four Figure 8
// applications.
func (h *Harness) Figure8() ([]Fig8Row, error) {
	out := make([]Fig8Row, 0, len(Fig8Apps))
	for _, app := range Fig8Apps {
		row := Fig8Row{App: app}
		for _, size := range []workloads.Size{workloads.Small, workloads.Medium, workloads.Large} {
			nat, err := h.run(app, threading.ModeNative, h.opts.BreakdownThreads, size)
			if err != nil {
				return nil, err
			}
			insp, err := h.run(app, threading.ModeInspector, h.opts.BreakdownThreads, size)
			if err != nil {
				return nil, err
			}
			row.Points = append(row.Points, Fig8Point{
				Size:     size,
				Overhead: ratio(float64(insp.rep.Time), float64(nat.rep.Time)),
				InputMB:  float64(insp.inputBytes) / 1e6,
			})
		}
		out = append(out, row)
	}
	return out, nil
}

// Table9Row is one application's provenance-log statistics (the paper's
// Figure 9 table).
type Table9Row struct {
	App            string
	SizeMB         float64
	CompressedMB   float64
	Ratio          float64
	BandwidthMBps  float64
	BranchesPerSec float64
}

// Table9 gathers space-overhead statistics at BreakdownThreads.
func (h *Harness) Table9() ([]Table9Row, error) {
	apps, err := h.apps()
	if err != nil {
		return nil, err
	}
	out := make([]Table9Row, 0, len(apps))
	for _, w := range apps {
		insp, err := h.run(w.Name(), threading.ModeInspector, h.opts.BreakdownThreads, h.opts.Size)
		if err != nil {
			return nil, err
		}
		row := Table9Row{
			App:            w.Name(),
			SizeMB:         float64(insp.rep.TraceBytes) / 1e6,
			CompressedMB:   float64(insp.compressed) / 1e6,
			BandwidthMBps:  insp.rep.TraceBandwidthMBps(),
			BranchesPerSec: insp.rep.BranchesPerSec(),
		}
		if insp.compressed > 0 {
			row.Ratio = float64(insp.rep.TraceBytes) / float64(insp.compressed)
		}
		out = append(out, row)
	}
	return out, nil
}

// Results bundles every experiment.
type Results struct {
	Fig5   []Fig5Row
	Fig6   []Fig6Row
	Table7 []Table7Row
	Fig8   []Fig8Row
	Table9 []Table9Row
}

// All runs every experiment.
func (h *Harness) All() (*Results, error) {
	var (
		res Results
		err error
	)
	if res.Fig5, err = h.Figure5(); err != nil {
		return nil, err
	}
	if res.Fig6, err = h.Figure6(); err != nil {
		return nil, err
	}
	if res.Table7, err = h.Table7(); err != nil {
		return nil, err
	}
	if res.Fig8, err = h.Figure8(); err != nil {
		return nil, err
	}
	if res.Table9, err = h.Table9(); err != nil {
		return nil, err
	}
	return &res, nil
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// WriteFigure5 renders Figure 5 as text.
func (h *Harness) WriteFigure5(w io.Writer, rows []Fig5Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Figure 5: provenance overhead w.r.t. native execution (size=%v)\n", h.opts.Size)
	fmt.Fprint(tw, "application")
	for _, th := range h.opts.Threads {
		fmt.Fprintf(tw, "\t%dT", th)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprint(tw, r.App)
		for _, th := range h.opts.Threads {
			fmt.Fprintf(tw, "\t%.2fx", r.Overhead[th])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteWork renders the companion work-overhead measurement the paper
// publishes alongside Figure 5 ("the corresponding work measurement plot
// is available here: web-link"): total CPU work of INSPECTOR relative to
// native, per thread count.
func (h *Harness) WriteWork(w io.Writer, rows []Fig5Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Work overhead w.r.t. native execution (size=%v)\n", h.opts.Size)
	fmt.Fprint(tw, "application")
	for _, th := range h.opts.Threads {
		fmt.Fprintf(tw, "\t%dT", th)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprint(tw, r.App)
		for _, th := range h.opts.Threads {
			fmt.Fprintf(tw, "\t%.2fx", r.WorkOverhead[th])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteFigure6 renders Figure 6 as text.
func (h *Harness) WriteFigure6(w io.Writer, rows []Fig6Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Figure 6: overhead breakdown at %d threads\n", h.opts.BreakdownThreads)
	fmt.Fprintln(tw, "application\ttotal\tthreading-lib\tOS/PT support\tdominant")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2fx\t+%.2f\t+%.2f\t%s\n",
			r.App, r.Total, r.ThreadingLib, r.OSSupport, r.DominantComponent)
	}
	return tw.Flush()
}

// WriteTable7 renders Table 7 as text.
func (h *Harness) WriteTable7(w io.Writer, rows []Table7Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table 7: runtime statistics at %d threads\n", h.opts.BreakdownThreads)
	fmt.Fprintln(tw, "application\tdataset/params (paper)\tpage faults\tfaults/sec")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2E\t%.2E\n", r.App, r.Params, float64(r.PageFaults), r.FaultsPerSec)
	}
	return tw.Flush()
}

// WriteFigure8 renders Figure 8 as text.
func (h *Harness) WriteFigure8(w io.Writer, rows []Fig8Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Figure 8: overhead vs input size at %d threads\n", h.opts.BreakdownThreads)
	fmt.Fprintln(tw, "application\tsmall\tmedium\tlarge\tinput MB (S/M/L)")
	for _, r := range rows {
		var o [3]float64
		var mb [3]float64
		for i, p := range r.Points {
			o[i] = p.Overhead
			mb[i] = p.InputMB
		}
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%.2fx\t%.1f/%.1f/%.1f\n",
			r.App, o[0], o[1], o[2], mb[0], mb[1], mb[2])
	}
	return tw.Flush()
}

// WriteTable9 renders Table 9 as text.
func (h *Harness) WriteTable9(w io.Writer, rows []Table9Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Table 9: provenance log space overheads at %d threads\n", h.opts.BreakdownThreads)
	fmt.Fprintln(tw, "application\tsize MB\tcompressed MB\tratio\tMB/sec\tbranch instr/sec")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1fx\t%.1f\t%.2E\n",
			r.App, r.SizeMB, r.CompressedMB, r.Ratio, r.BandwidthMBps, r.BranchesPerSec)
	}
	return tw.Flush()
}

// WriteAll renders every experiment.
func (h *Harness) WriteAll(w io.Writer, res *Results) error {
	if err := h.WriteFigure5(w, res.Fig5); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := h.WriteFigure6(w, res.Fig6); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := h.WriteTable7(w, res.Table7); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := h.WriteFigure8(w, res.Fig8); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return h.WriteTable9(w, res.Table9)
}
