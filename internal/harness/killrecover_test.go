package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
)

// buildTool compiles one command into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "github.com/repro/inspector/cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", name, err, out)
	}
	return bin
}

// recoverSummary runs inspector-recover -summary-json and decodes it.
type recoverSummary struct {
	RunID    string `json:"run_id"`
	Epoch    uint64 `json:"epoch"`
	Sealed   bool   `json:"sealed"`
	Degraded bool   `json:"degraded"`
	Torn     string `json:"torn"`
}

func recoverJSON(t *testing.T, bin, dir string, extra ...string) recoverSummary {
	t.Helper()
	args := append([]string{"-journal", dir, "-summary-json"}, extra...)
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("inspector-recover %v: %v", args, err)
	}
	var s recoverSummary
	if err := json.Unmarshal(out, &s); err != nil {
		t.Fatalf("summary JSON: %v\n%s", err, out)
	}
	return s
}

// TestKillRecoverSweep is the crash-durability acceptance check. A
// child inspector-run is SIGKILLed at randomized commit boundaries (the
// deterministic "crash" fault point — a real kill signal, not a panic:
// no deferred cleanup, no exports, no journal seal). For every kill
// point, recovering the orphaned journal must reproduce, byte for byte,
// what the uninterrupted run's journal replays to at the same epoch —
// and must say it is degraded, never silently short, never a crash.
//
// The sweep runs single-threaded: the drift corpus already pins
// single-thread runs as fully deterministic, which makes "the same
// epoch of a different process's run" a meaningful byte-level oracle.
func TestKillRecoverSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and forks children")
	}
	binDir := t.TempDir()
	runBin := buildTool(t, binDir, "inspector-run")
	recoverBin := buildTool(t, binDir, "inspector-recover")

	// kmeans seals ~50 single-thread commits at the small size — enough
	// boundaries for a meaningful sweep while each child stays fast.
	workArgs := []string{"-app", "kmeans", "-threads", "1", "-size", "small", "-seed", "1"}

	// Reference: the same workload, uninterrupted.
	refDir := filepath.Join(t.TempDir(), "ref")
	refCmd := exec.Command(runBin, append(workArgs, "-journal", refDir, "-journal-fsync", "none")...)
	if out, err := refCmd.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	ref := recoverJSON(t, recoverBin, refDir)
	if !ref.Sealed || ref.Degraded {
		t.Fatalf("reference journal: %+v", ref)
	}
	// The run journals one epoch per commit plus a final fold at close;
	// a kill at commit K+1 (crash:after=K) therefore recovers exactly
	// epoch K+1, and K ranges over the commits.
	commits := int(ref.Epoch) - 1
	if commits < 2 {
		t.Fatalf("reference run sealed only %d epochs — too short to sweep", ref.Epoch)
	}

	points := killPoints()
	for i := 0; i < points; i++ {
		// Spread kill points across the run: first commit, last commit,
		// then evenly between.
		k := 0
		switch {
		case i == 1:
			k = commits - 1
		case i > 1:
			k = (i - 1) * commits / points
		}
		t.Run(fmt.Sprintf("crash-after-%d", k), func(t *testing.T) {
			killDir := filepath.Join(t.TempDir(), "killed")
			cmd := exec.Command(runBin, append(workArgs,
				"-journal", killDir, "-journal-fsync", "none",
				"-faults", "crash:after="+strconv.Itoa(k)+",count=1")...)
			out, err := cmd.CombinedOutput()
			var exit *exec.ExitError
			if !errors.As(err, &exit) {
				t.Fatalf("killed run exited with %v (SIGKILL expected)\n%s", err, out)
			}
			ws, ok := exit.Sys().(syscall.WaitStatus)
			if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
				t.Fatalf("child died with %v, want SIGKILL\n%s", exit, out)
			}

			got := recoverJSON(t, recoverBin, killDir)
			if got.Sealed || !got.Degraded {
				t.Fatalf("killed journal summary: %+v (want unsealed + degraded)", got)
			}
			if got.Epoch != uint64(k+1) {
				t.Fatalf("recovered epoch %d after a kill at commit %d, want %d", got.Epoch, k+1, k+1)
			}

			// Byte-level oracle: the killed run's recovery equals the
			// reference journal replayed to the same epoch.
			killedOut := filepath.Join(t.TempDir(), "killed.json")
			refOut := filepath.Join(t.TempDir(), "ref.json")
			if out, err := exec.Command(recoverBin,
				"-journal", killDir, "-q", "-analysis", killedOut).CombinedOutput(); err != nil {
				t.Fatalf("recover killed: %v\n%s", err, out)
			}
			if out, err := exec.Command(recoverBin,
				"-journal", refDir, "-q", "-epoch", strconv.Itoa(k+1), "-analysis", refOut).CombinedOutput(); err != nil {
				t.Fatalf("recover reference prefix: %v\n%s", err, out)
			}
			a, err := os.ReadFile(killedOut)
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(refOut)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("kill at commit %d: recovered analysis diverges from the uninterrupted run's epoch %d", k+1, k+1)
			}
		})
	}
}
