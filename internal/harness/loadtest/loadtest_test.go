package loadtest

import "testing"

// TestLoadSmoke is the CI soak: M=2 recorders × N=8 clients, run under
// -race. The contract is Run's own pass criterion — zero dropped
// epochs, byte-identical exports — plus evidence the load actually
// happened.
func TestLoadSmoke(t *testing.T) {
	rep, err := Run(Options{Recorders: 2, Clients: 8, Steps: 120, Seed: 42})
	if err != nil {
		t.Fatalf("soak failed: %v (report %+v)", err, rep)
	}
	if rep.DroppedEpochs != 0 || rep.Mismatched != 0 {
		t.Fatalf("contract: %d dropped epochs, %d mismatched exports", rep.DroppedEpochs, rep.Mismatched)
	}
	if rep.Epochs == 0 {
		t.Fatal("no epochs ingested; the soak recorded nothing")
	}
	if rep.Queries == 0 {
		t.Fatal("no queries completed; the clients never ran")
	}
	t.Logf("soak: %d epochs @ %.0f frames/s, %d queries (p50 %dns, p99 %dns)",
		rep.Epochs, rep.FramesPerSec, rep.Queries, rep.QueryP50Ns, rep.QueryP99Ns)
}
