// Package loadtest soaks the distributed provenance fabric: M streaming
// recorders and N query/watch clients against one aggregator, all in
// process. The pass criteria are the fabric's contract, not vague
// throughput: zero dropped epochs (every source sealed exactly at its
// recorder's final epoch) and byte-identical exports (aggregator fold ==
// recorder fold for every source). The report carries ingest and query
// throughput plus query latency quantiles for inspector-bench
// -experiment fabric.
package loadtest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/provenance"
)

// Options size the soak.
type Options struct {
	// Recorders is M, the streaming recorder count (default 2).
	Recorders int
	// Clients is N, the query/watch client count (default 4).
	Clients int
	// Steps is the sub-computations each recorder seals (default 200).
	Steps int
	// Threads is each recorder's graph width (default 2).
	Threads int
	// Every folds one epoch per N seals (default 2).
	Every uint64
	// Batch bounds deltas per upload (default 8).
	Batch int
	// Seed makes the synthetic workloads deterministic (default 1).
	Seed int64
}

func (o Options) normalize() Options {
	if o.Recorders <= 0 {
		o.Recorders = 2
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Steps <= 0 {
		o.Steps = 200
	}
	if o.Threads <= 0 {
		o.Threads = 2
	}
	if o.Every == 0 {
		o.Every = 2
	}
	if o.Batch <= 0 {
		o.Batch = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Report is one soak's outcome.
type Report struct {
	// Recorders/Clients echo the effective options.
	Recorders int `json:"recorders"`
	Clients   int `json:"clients"`
	// Epochs is the total epochs folded and shipped across sources.
	Epochs uint64 `json:"epochs"`
	// IngestSecs is the wall time of the recording+upload phase.
	IngestSecs float64 `json:"ingest_secs"`
	// FramesPerSec is delta frames ingested per second.
	FramesPerSec float64 `json:"frames_per_sec"`
	// Queries is the total queries the clients completed.
	Queries int `json:"queries"`
	// QueryP50Ns and QueryP99Ns are query latency quantiles.
	QueryP50Ns int64 `json:"query_p50_ns"`
	QueryP99Ns int64 `json:"query_p99_ns"`
	// DroppedEpochs counts epochs a recorder folded that the aggregator
	// does not hold. The contract demands zero.
	DroppedEpochs uint64 `json:"dropped_epochs"`
	// Mismatched counts sources whose aggregator export differs from the
	// recorder's local fold. The contract demands zero.
	Mismatched int `json:"mismatched"`
}

// recorderResult is one recorder's ground truth.
type recorderResult struct {
	source string
	epoch  uint64
	export []byte
	err    error
}

// driveRecorder runs one synthetic workload through a StreamRecorder.
func driveRecorder(baseURL, source string, opts Options, seed int64) recorderResult {
	res := recorderResult{source: source}
	g := core.NewGraph(opts.Threads)
	c := &provenance.Client{BaseURL: baseURL, MaxRetries: 8, RetryBase: time.Millisecond}
	sr, err := provenance.NewStreamRecorder(g, c, provenance.StreamOptions{
		Source: source,
		RunID:  source,
		App:    "loadtest",
		Every:  opts.Every,
		Batch:  opts.Batch,
	})
	if err != nil {
		res.err = err
		return res
	}
	hook := sr.CommitHook()
	recs := make([]*core.Recorder, opts.Threads)
	for i := range recs {
		if recs[i], err = core.NewRecorder(g, i, 0); err != nil {
			res.err = err
			return res
		}
	}
	locks := []*core.SyncObject{g.NewSyncObject("m0", false), g.NewSyncObject("m1", false)}
	r := rand.New(rand.NewSource(seed))
	seal := func(rec *core.Recorder, lock *core.SyncObject) error {
		ev := core.SyncEvent{Kind: core.SyncNone}
		if lock != nil {
			ev = core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}
		}
		sc, err := rec.EndSub(ev, 0)
		if err != nil {
			return err
		}
		if lock != nil {
			rec.Release(lock, sc)
			rec.Acquire(lock)
		}
		hook(sc.ID)
		return nil
	}
	for s := 0; s < opts.Steps; s++ {
		rec := recs[r.Intn(opts.Threads)]
		rec.OnRead(uint64(r.Intn(64)))
		rec.OnWrite(uint64(r.Intn(64)))
		if err := seal(rec, locks[r.Intn(len(locks))]); err != nil {
			res.err = err
			return res
		}
	}
	for _, rec := range recs {
		if err := seal(rec, nil); err != nil {
			res.err = err
			return res
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sr.Close(ctx); err != nil {
		res.err = err
		return res
	}
	res.epoch = sr.Epoch()
	var buf bytes.Buffer
	if err := sr.Analysis().ExportJSON(&buf); err != nil {
		res.err = err
		return res
	}
	res.export = buf.Bytes()
	return res
}

// clientLoop hammers the aggregator with stats queries and epoch
// watches until stop closes, recording query latencies.
func clientLoop(baseURL string, sources []string, seed int64, stop <-chan struct{}) []int64 {
	c := &provenance.Client{BaseURL: baseURL, MaxRetries: 4, RetryBase: time.Millisecond}
	r := rand.New(rand.NewSource(seed))
	var lat []int64
	ctx := context.Background()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return lat
		default:
		}
		src := sources[r.Intn(len(sources))]
		if i%4 == 3 {
			// Watch: ride the push wire for the next epoch. Sources that
			// are not bound yet answer 404; that is part of the load.
			if st, err := c.WaitEpoch(ctx, src, 1+uint64(r.Intn(50)), 50*time.Millisecond); err == nil && st.Closed {
				continue
			}
			continue
		}
		start := time.Now()
		if _, err := c.Stats(ctx, src); err == nil {
			lat = append(lat, time.Since(start).Nanoseconds())
		}
	}
}

// quantile picks the q-quantile of sorted ns latencies (0 when empty).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Run executes one soak and verifies the zero-loss, byte-identity
// contract. A contract violation is reported in the Report (and as an
// error), so benchmarks and tests share one pass criterion.
func Run(opts Options) (*Report, error) {
	opts = opts.normalize()
	hub := provenance.NewIngestHub(provenance.IngestOptions{})
	ts := httptest.NewServer(provenance.NewServer(nil, provenance.ServerOptions{Ingest: hub}))
	defer ts.Close()

	sources := make([]string, opts.Recorders)
	for i := range sources {
		sources[i] = fmt.Sprintf("rec-%d", i)
	}

	stop := make(chan struct{})
	var cwg sync.WaitGroup
	lats := make([][]int64, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			lats[i] = clientLoop(ts.URL, sources, opts.Seed+int64(1000+i), stop)
		}(i)
	}

	start := time.Now()
	results := make([]recorderResult, opts.Recorders)
	var rwg sync.WaitGroup
	for i := 0; i < opts.Recorders; i++ {
		rwg.Add(1)
		go func(i int) {
			defer rwg.Done()
			results[i] = driveRecorder(ts.URL, sources[i], opts, opts.Seed+int64(i))
		}(i)
	}
	rwg.Wait()
	ingestSecs := time.Since(start).Seconds()
	close(stop)
	cwg.Wait()

	rep := &Report{Recorders: opts.Recorders, Clients: opts.Clients, IngestSecs: ingestSecs}
	c := &provenance.Client{BaseURL: ts.URL}
	ctx := context.Background()
	for _, res := range results {
		if res.err != nil {
			return rep, fmt.Errorf("recorder %s: %w", res.source, res.err)
		}
		rep.Epochs += res.epoch
		st, found, err := c.IngestOffset(ctx, res.source)
		if err != nil {
			return rep, fmt.Errorf("offset %s: %w", res.source, err)
		}
		switch {
		case !found:
			rep.DroppedEpochs += res.epoch
		case st.NextEpoch < res.epoch+1:
			rep.DroppedEpochs += res.epoch + 1 - st.NextEpoch
		case !st.Sealed:
			return rep, fmt.Errorf("source %s not sealed (next=%d)", res.source, st.NextEpoch)
		}
		got, err := c.Export(ctx, res.source)
		if err != nil {
			return rep, fmt.Errorf("export %s: %w", res.source, err)
		}
		if !bytes.Equal(got, res.export) {
			rep.Mismatched++
		}
	}
	if ingestSecs > 0 {
		rep.FramesPerSec = float64(rep.Epochs) / ingestSecs
	}
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.Queries = len(all)
	rep.QueryP50Ns = quantile(all, 0.50)
	rep.QueryP99Ns = quantile(all, 0.99)
	if rep.DroppedEpochs > 0 || rep.Mismatched > 0 {
		return rep, fmt.Errorf("fabric contract violated: %d dropped epochs, %d mismatched exports",
			rep.DroppedEpochs, rep.Mismatched)
	}
	return rep, nil
}
