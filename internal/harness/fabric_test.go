package harness

// Cross-workload fabric conformance sweep — the tentpole's correctness
// anchor. Every workload, single- and multi-thread, is recorded once
// with its epoch-delta stream captured; the stream is then fed to an
// aggregator (inspector-serve -ingest machinery) three ways — clean,
// through a fault-injected network (disconnects mid-body, duplicate
// deliveries, reordering, slow sinks), and as a kill+resume (a prefix
// upload, then a full journal-style resend from epoch 1) — and the
// aggregator's export must be byte-identical to the recorder's own
// incremental fold at the same epoch in all three.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/faultinject"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/wire"
	"github.com/repro/inspector/internal/workloads"
	"github.com/repro/inspector/provenance"
)

// fabricCapture is one recorded run: its stream identity, delta
// sequence, and the recorder-side reference export.
type fabricCapture struct {
	hello  wire.Hello
	deltas []*core.EpochDelta
	export []byte
}

func (fc *fabricCapture) finalEpoch() uint64 {
	return fc.deltas[len(fc.deltas)-1].Epoch
}

// captureFabricRun executes one workload with a fold-every-few-seals
// commit hook — the exact discipline provenance.StreamRecorder uses —
// and keeps the delta stream plus the final fold's export bytes.
func captureFabricRun(t *testing.T, app string, threads int) *fabricCapture {
	t.Helper()
	w, err := workloads.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: threads, Seed: 1}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    app,
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	fc := &fabricCapture{hello: wire.Hello{
		RunID:   fmt.Sprintf("%s-t%d-s1", app, threads),
		App:     app,
		Threads: rt.Graph().Threads(),
	}}
	inc := core.NewIncrementalAnalyzer(rt.Graph())
	var mu sync.Mutex
	seals := 0
	rt.RegisterCommitHook(func(core.SubID) {
		mu.Lock()
		defer mu.Unlock()
		seals++
		if seals%4 == 0 {
			_, d := inc.FoldDelta()
			fc.deltas = append(fc.deltas, d)
		}
	})
	if err := w.Run(rt, cfg); err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	a, d := inc.FoldDelta()
	fc.deltas = append(fc.deltas, d)
	var buf bytes.Buffer
	if err := a.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fc.export = buf.Bytes()
	return fc
}

// newAggregator stands up an ingest-mode server.
func newAggregator(t *testing.T) *httptest.Server {
	t.Helper()
	hub := provenance.NewIngestHub(provenance.IngestOptions{})
	ts := httptest.NewServer(provenance.NewServer(nil, provenance.ServerOptions{Ingest: hub}))
	t.Cleanup(ts.Close)
	return ts
}

// aggregatorExport uploads with the given client and fetches the final
// export bytes.
func aggregatorExport(t *testing.T, c *provenance.Client, fc *fabricCapture, batch int) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := provenance.UploadDeltas(ctx, c, "w", fc.hello, fc.deltas, batch,
		&wire.Seal{FinalEpoch: fc.finalEpoch()})
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if !st.Sealed || st.NextEpoch != fc.finalEpoch()+1 {
		t.Fatalf("final status = %+v, want sealed at next=%d", st, fc.finalEpoch()+1)
	}
	got, err := c.Export(ctx, "w")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestFabricAggregatorMatchesLocalFold is the sweep: every workload at
// 1 and 4 threads, three delivery scenarios, zero byte drift allowed.
func TestFabricAggregatorMatchesLocalFold(t *testing.T) {
	for _, app := range workloads.Names() {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s-t%d", app, threads), func(t *testing.T) {
				fc := captureFabricRun(t, app, threads)

				// Clean delivery.
				ts := newAggregator(t)
				got := aggregatorExport(t, &provenance.Client{BaseURL: ts.URL}, fc, 7)
				if !bytes.Equal(got, fc.export) {
					t.Fatal("clean: aggregator export != local fold")
				}

				// Through a faulted network: the client's retry loop plus
				// the server's dedup must absorb disconnects, duplicates,
				// reordering, and slowness with zero drift.
				in := faultinject.New(faultinject.Schedule{Rules: []faultinject.Rule{
					{Point: faultinject.NetDisconnect, After: 1, Every: 3, Count: 4},
					{Point: faultinject.NetDuplicate, Every: 2},
					{Point: faultinject.NetReorder, After: 2, Every: 5, Count: 2},
					{Point: faultinject.NetSlow, Every: 4},
				}})
				ts = newAggregator(t)
				fc2 := &provenance.Client{
					BaseURL:    ts.URL,
					HTTPClient: &http.Client{Transport: in.WrapRoundTripper(nil)},
					MaxRetries: 12,
					RetryBase:  time.Millisecond,
				}
				got = aggregatorExport(t, fc2, fc, 3)
				if !bytes.Equal(got, fc.export) {
					t.Fatalf("faulted (%s): aggregator export != local fold", in.Summary())
				}

				// Kill + resume: a prefix lands, the recorder dies, and the
				// journal-replay path resends everything from epoch 1. The
				// prefix dedups, the tail applies, the bytes match.
				ts = newAggregator(t)
				c := &provenance.Client{BaseURL: ts.URL}
				ctx := context.Background()
				prefix := len(fc.deltas) / 2
				if prefix > 0 {
					if _, err := provenance.UploadDeltas(ctx, c, "w", fc.hello, fc.deltas[:prefix], 5, nil); err != nil {
						t.Fatal(err)
					}
				}
				st, err := provenance.UploadDeltas(ctx, &provenance.Client{BaseURL: ts.URL}, "w",
					fc.hello, fc.deltas, 5, &wire.Seal{FinalEpoch: fc.finalEpoch()})
				if err != nil {
					t.Fatal(err)
				}
				if st.Duplicates != prefix {
					t.Fatalf("resume acknowledged %d duplicates, want %d", st.Duplicates, prefix)
				}
				got, err = c.Export(ctx, "w")
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, fc.export) {
					t.Fatal("kill+resume: aggregator export != local fold")
				}
			})
		}
	}
}
