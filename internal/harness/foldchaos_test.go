package harness

// The fold-worker chaos round: slow-fold faults fire inside the
// parallel fold's derivation workers, and on odd seeds some of those
// hits escalate to worker panics. The invariants are liveness and
// degradation, not output bytes — a stalled or crashed worker must
// never deadlock the LiveEngine (the workload finishes, WaitEpoch
// callers wake, Close returns), the last good epoch stays servable
// throughout, and a run with zero injected panics must still converge
// on the complete graph.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/faultinject"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
	"github.com/repro/inspector/provenance"
)

// foldChaosResult captures one schedule's observable outcome.
type foldChaosResult struct {
	runErr   error
	closeErr error
	panics   int64
	fired    uint64
	epoch    uint64
	export   []byte
	batch    []byte
}

// foldChaosRun records one workload under a live engine whose fold
// workers are slowed and (panicky=true) occasionally crashed. The whole
// run executes under a watchdog: a deadlocked fold shows up as a test
// timeout here, not a hung suite.
func foldChaosRun(t *testing.T, seed int, panicky bool) foldChaosResult {
	t.Helper()
	w, err := workloads.Get("histogram")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: 2, Seed: 1}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    "histogram",
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}

	in := faultinject.New(faultinject.Schedule{Rules: []faultinject.Rule{
		// After stays at 0/1: folds coalesce, so a fast run may only hit
		// the point a handful of times and a deep After would starve it.
		{Point: faultinject.SlowFold, After: uint64(seed % 2), Every: uint64(1 + seed%4)},
	}})
	var res foldChaosResult
	var panics atomic.Int64
	hook := func(worker int) {
		if !in.Fire(faultinject.SlowFold) {
			return
		}
		if panicky && panics.Load() < 3 && (int64(worker)+panics.Load())%2 == 0 {
			panics.Add(1)
			panic(fmt.Sprintf("chaos: injected fold-worker %d panic", worker))
		}
		time.Sleep(50 * time.Microsecond)
	}
	eng := provenance.NewLiveEngine(rt.Graph(),
		provenance.EngineOptions{FoldWorkers: 4, FoldWorkerHook: hook})
	rt.RegisterCommitHook(func(core.SubID) { eng.Notify() })

	// A waiter asking for an unreachable epoch proves the close path
	// wakes blocked subscribers even when folds are crashing.
	waiterDone := make(chan error, 1)
	go func() {
		_, err := eng.WaitEpoch(context.Background(), 1<<60)
		waiterDone <- err
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		res.runErr = w.Run(rt, cfg)
		res.closeErr = eng.Close()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("seed %d panicky=%v: workload+close did not finish: fold pipeline deadlocked", seed, panicky)
	}
	select {
	case err := <-waiterDone:
		if !errors.Is(err, provenance.ErrLiveClosed) {
			t.Fatalf("seed %d panicky=%v: blocked WaitEpoch returned %v, want ErrLiveClosed", seed, panicky, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("seed %d panicky=%v: WaitEpoch caller still blocked after Close", seed, panicky)
	}

	res.panics = panics.Load()
	res.fired = in.Fired(faultinject.SlowFold)
	e := eng.Engine()
	if e == nil {
		t.Fatalf("seed %d panicky=%v: live engine lost its servable epoch", seed, panicky)
	}
	res.epoch = e.Epoch()
	var buf bytes.Buffer
	if err := e.Analysis().ExportJSON(&buf); err != nil {
		t.Fatalf("seed %d panicky=%v: served epoch failed to export: %v", seed, panicky, err)
	}
	res.export = buf.Bytes()
	buf.Reset()
	if err := rt.Graph().Analyze().ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	res.batch = buf.Bytes()
	return res
}

// TestChaosFoldWorkerSlowAndPanic sweeps seeded schedules twice — slow
// workers only, then slow workers with injected panics. Invariants per
// schedule:
//
//  1. the workload always finishes and the engine always closes — a
//     slow or dead fold worker never wedges recording or shutdown;
//  2. with no panics, Close reports success and the final epoch is the
//     complete graph (export identical to batch Analyze);
//  3. with panics, Close surfaces the first fold failure while the
//     engine still serves the last good epoch, whose export is a valid
//     analysis the batch oracle verifies against only when the final
//     fold happened to succeed.
func TestChaosFoldWorkerSlowAndPanic(t *testing.T) {
	n := chaosSchedules()
	if n > 25 {
		n = n / 4 // each round records a full workload; keep the CI sweep bounded
	}
	for seed := 0; seed < n; seed++ {
		res := foldChaosRun(t, seed, false)
		if res.runErr != nil {
			t.Fatalf("seed %d: slow fold workers broke the workload: %v", seed, res.runErr)
		}
		if res.closeErr != nil {
			t.Fatalf("seed %d: slow fold workers surfaced a fold error: %v", seed, res.closeErr)
		}
		if res.fired == 0 {
			t.Fatalf("seed %d: slow-fold schedule never fired; nothing exercised", seed)
		}
		if !bytes.Equal(res.export, res.batch) {
			t.Errorf("seed %d: final epoch (after clean close) differs from batch analysis", seed)
		}

		res = foldChaosRun(t, seed, true)
		if res.runErr != nil {
			t.Fatalf("seed %d: panicking fold worker broke the workload: %v", seed, res.runErr)
		}
		if res.panics > 0 && res.closeErr == nil {
			t.Errorf("seed %d: %d injected fold panics but Close reported success", seed, res.panics)
		}
		if res.epoch < 1 {
			t.Errorf("seed %d: no servable epoch after fold panics", seed)
		}
		if res.closeErr == nil && !bytes.Equal(res.export, res.batch) {
			t.Errorf("seed %d: clean close but served epoch differs from batch analysis", seed)
		}
	}
}
