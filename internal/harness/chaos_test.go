package harness

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/faultinject"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
)

// chaosResult captures everything the chaos invariants assert over.
type chaosResult struct {
	runErr     error
	jsonExport []byte
	summary    string
	dropped    uint64
	comp       core.Completeness
}

// chaosRun executes one workload under a fault schedule and returns the
// observable outcome. Panics are injected at commit boundaries; AUX loss
// through the lossy sink wrapper. It never lets a fault crash the test
// process — that escape is itself the failure the suite exists to catch.
func chaosRun(t *testing.T, app string, threads int, sched faultinject.Schedule) chaosResult {
	t.Helper()
	w, err := workloads.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: threads, Seed: 1}
	in := faultinject.New(sched)
	rt, err := threading.NewRuntime(threading.Options{
		AppName:       app,
		Mode:          threading.ModeInspector,
		MaxThreads:    w.MaxThreads(cfg),
		WrapTraceSink: in.WrapSink,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.RegisterCommitHook(func(id core.SubID) {
		if in.Fire(faultinject.WorkloadPanic) {
			panic(fmt.Sprintf("chaos: injected panic after %v", id))
		}
	})
	res := chaosResult{runErr: w.Run(rt, cfg)}
	var buf bytes.Buffer
	if err := rt.Graph().EncodeJSON(&buf); err != nil {
		t.Fatalf("degraded graph failed to export: %v", err)
	}
	res.jsonExport = buf.Bytes()
	res.summary = in.Summary()
	res.dropped = in.DroppedBytes()
	res.comp = rt.Graph().Completeness()
	return res
}

// chaosSchedules reads the sweep width from CHAOS_SCHEDULES (the chaos
// CI job sets 100); the default keeps plain `go test ./...` quick.
func chaosSchedules() int {
	if s := os.Getenv("CHAOS_SCHEDULES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 25
}

// TestChaosRandomizedSchedules sweeps seeded random fault schedules over
// a single-thread workload (single-thread keeps a panicking thread from
// stranding peers on a workload lock, and makes the whole run — and
// therefore its export — deterministic). Invariants per schedule:
//
//  1. no fault escapes as a process crash — a panic surfaces only as
//     ErrWorkloadPanic from Run;
//  2. the graph's completeness accounting matches the injected loss
//     byte-for-byte;
//  3. the same schedule reproduces the same faults, the same summary,
//     and a byte-identical CPG export.
func TestChaosRandomizedSchedules(t *testing.T) {
	n := chaosSchedules()
	for seed := 0; seed < n; seed++ {
		sched := faultinject.Randomized(int64(seed), faultinject.AuxLoss, faultinject.WorkloadPanic)
		res := chaosRun(t, "histogram", 1, sched)
		if res.runErr != nil && !errors.Is(res.runErr, threading.ErrWorkloadPanic) {
			t.Fatalf("seed %d: fault escaped as %v", seed, res.runErr)
		}
		if res.dropped > 0 && res.comp.Complete {
			t.Errorf("seed %d: %d bytes dropped but graph claims complete", seed, res.dropped)
		}
		if res.comp.LostBytes != res.dropped {
			t.Errorf("seed %d: graph accounts %d lost bytes, injector dropped %d",
				seed, res.comp.LostBytes, res.dropped)
		}
		if res.runErr != nil && res.comp.Complete {
			t.Errorf("seed %d: recovered panic left no incompleteness mark", seed)
		}

		again := chaosRun(t, "histogram", 1, sched)
		if again.summary != res.summary {
			t.Errorf("seed %d: fault sequence not reproducible: %q vs %q", seed, again.summary, res.summary)
		}
		if !bytes.Equal(again.jsonExport, res.jsonExport) {
			t.Errorf("seed %d: same schedule produced different CPG exports", seed)
		}
	}
}

// TestChaosLosslessIsByteIdenticalToSeed pins the compatibility half of
// the tentpole: running under an injector whose schedule never fires
// must yield the exact bytes a run without any injector yields — the
// degraded-trace machinery is invisible until loss actually happens.
func TestChaosLosslessIsByteIdenticalToSeed(t *testing.T) {
	empty := chaosRun(t, "histogram", 1, faultinject.Schedule{})
	if empty.runErr != nil {
		t.Fatal(empty.runErr)
	}
	if !empty.comp.Complete || empty.summary != "" {
		t.Fatalf("empty schedule still faulted: %+v %q", empty.comp, empty.summary)
	}

	w, err := workloads.Get("histogram")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: 1, Seed: 1}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    "histogram",
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(rt, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Graph().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), empty.jsonExport) {
		t.Error("wrapped-but-lossless run differs from the bare run")
	}
}

// TestChaosMultiThreadAuxLoss exercises loss under real concurrency
// (4 threads, guaranteed firing): the run must finish without error and
// the degraded marking must be consistent with the drop accounting.
// Panic injection is deliberately absent — a panicking thread may hold a
// workload mutex, which is a workload deadlock, not a pipeline bug.
func TestChaosMultiThreadAuxLoss(t *testing.T) {
	sched := faultinject.Schedule{Rules: []faultinject.Rule{
		{Point: faultinject.AuxLoss, After: 10, Every: 4},
	}}
	res := chaosRun(t, "histogram", 4, sched)
	if res.runErr != nil {
		t.Fatalf("aux loss broke the run: %v", res.runErr)
	}
	if res.dropped == 0 {
		t.Fatal("schedule never fired; nothing exercised")
	}
	if res.comp.Complete || res.comp.LostBytes != res.dropped {
		t.Errorf("completeness %+v inconsistent with %d dropped bytes", res.comp, res.dropped)
	}
}
