package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
)

// fastHarness restricts to three representative apps at small size so the
// test suite stays quick: one well-behaved app, one threading-dominated
// outlier, and the false-sharing case.
func fastHarness() *Harness {
	return New(Options{
		Size:             workloads.Small,
		Threads:          []int{2, 4},
		BreakdownThreads: 4,
		Apps:             []string{"histogram", "reverse_index", "linear_regression"},
	})
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Size != workloads.Medium || len(o.Threads) != 4 || o.BreakdownThreads != 16 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestRunMemoizes(t *testing.T) {
	h := fastHarness()
	a, err := h.run("histogram", threading.ModeNative, 2, workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.run("histogram", threading.ModeNative, 2, workloads.Small)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical configs were re-run")
	}
}

func TestRunUnknownApp(t *testing.T) {
	h := New(Options{Apps: []string{"nope"}})
	if _, err := h.Figure5(); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestFigure5Shape(t *testing.T) {
	h := fastHarness()
	rows, err := h.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string]Fig5Row{}
	for _, r := range rows {
		byApp[r.App] = r
		for _, th := range []int{2, 4} {
			if r.Overhead[th] <= 0 {
				t.Errorf("%s overhead[%d] = %f", r.App, th, r.Overhead[th])
			}
		}
	}
	// The paper's headline shape: reverse_index is an outlier while
	// histogram stays low, and linear_regression beats native.
	if byApp["reverse_index"].Overhead[4] < 3*byApp["histogram"].Overhead[4] {
		t.Errorf("reverse_index (%.1fx) not clearly above histogram (%.1fx)",
			byApp["reverse_index"].Overhead[4], byApp["histogram"].Overhead[4])
	}
	if byApp["linear_regression"].Overhead[2] >= 1.1 {
		t.Errorf("linear_regression overhead %.2fx; expected near/below native",
			byApp["linear_regression"].Overhead[2])
	}
}

func TestFigure6Breakdown(t *testing.T) {
	h := fastHarness()
	rows, err := h.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("%s total = %f", r.App, r.Total)
		}
		// Components must sum to the overhead above 1x (within float
		// tolerance), except when the app beats native.
		if r.Total > 1 {
			sum := r.ThreadingLib + r.OSSupport
			if diff := sum - (r.Total - 1); diff > 0.01 || diff < -0.01 {
				t.Errorf("%s: components %.3f vs extra %.3f", r.App, sum, r.Total-1)
			}
		}
		if r.App == "reverse_index" && r.DominantComponent != "threading" {
			t.Errorf("reverse_index dominant = %s, want threading (§VII-B)", r.DominantComponent)
		}
	}
}

func TestTable7Faults(t *testing.T) {
	h := fastHarness()
	rows, err := h.Table7()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Table7Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.PageFaults == 0 || r.FaultsPerSec <= 0 {
			t.Errorf("%s: faults=%d rate=%f", r.App, r.PageFaults, r.FaultsPerSec)
		}
		if r.Params == "" {
			t.Errorf("%s: missing paper params", r.App)
		}
	}
	// The allocator-churning app must out-fault the streaming scan.
	if byApp["reverse_index"].PageFaults <= byApp["histogram"].PageFaults {
		t.Errorf("reverse_index faults (%d) not above histogram (%d)",
			byApp["reverse_index"].PageFaults, byApp["histogram"].PageFaults)
	}
}

func TestFigure8InputScaling(t *testing.T) {
	h := New(Options{
		Size:             workloads.Small,
		Threads:          []int{4},
		BreakdownThreads: 8,
	})
	rows, err := h.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig8Apps) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Fig8Apps))
	}
	for _, r := range rows {
		if len(r.Points) != 3 {
			t.Fatalf("%s: %d points", r.App, len(r.Points))
		}
		// Input sizes must grow S < M < L.
		if !(r.Points[0].InputMB < r.Points[1].InputMB && r.Points[1].InputMB < r.Points[2].InputMB) {
			t.Errorf("%s input sizes not increasing: %+v", r.App, r.Points)
		}
		// The paper's claim: the gap narrows with bigger inputs. Allow
		// slack but L must not exceed S by more than 15%.
		if r.Points[2].Overhead > r.Points[0].Overhead*1.15 {
			t.Errorf("%s overhead grows with input: S=%.2f L=%.2f",
				r.App, r.Points[0].Overhead, r.Points[2].Overhead)
		}
	}
}

func TestTable9Space(t *testing.T) {
	h := fastHarness()
	rows, err := h.Table9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SizeMB <= 0 {
			t.Errorf("%s: empty trace", r.App)
		}
		if r.Ratio < 1 {
			t.Errorf("%s: compression ratio %.2f < 1", r.App, r.Ratio)
		}
		if r.BandwidthMBps <= 0 || r.BranchesPerSec <= 0 {
			t.Errorf("%s: rates %f %f", r.App, r.BandwidthMBps, r.BranchesPerSec)
		}
	}
}

func TestAllAndWriters(t *testing.T) {
	h := fastHarness()
	res, err := h.All()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteAll(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 5", "Figure 6", "Table 7", "Figure 8", "Table 9", "histogram", "reverse_index"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
